package nonmask

import (
	"nonmask/internal/constraint"
	"nonmask/internal/core"
	"nonmask/internal/ctheory"
	"nonmask/internal/daemon"
	"nonmask/internal/fault"
	"nonmask/internal/gcl"
	"nonmask/internal/metrics"
	"nonmask/internal/program"
	"nonmask/internal/sim"
	"nonmask/internal/verify"
)

// Program model (internal/program).
type (
	// Domain is a finite variable domain: bool, integer range, or enum.
	Domain = program.Domain
	// DomainKind discriminates domain shapes.
	DomainKind = program.DomainKind
	// VarID identifies a declared variable.
	VarID = program.VarID
	// VarSpec is one variable declaration.
	VarSpec = program.VarSpec
	// Schema is a program's variable table.
	Schema = program.Schema
	// State assigns a value to every variable.
	State = program.State
	// Predicate is a named state predicate.
	Predicate = program.Predicate
	// Action is one guarded command.
	Action = program.Action
	// ActionKind distinguishes closure, convergence and fault actions.
	ActionKind = program.ActionKind
	// Program is a finite set of variables and actions.
	Program = program.Program
)

// Action kinds (paper Section 3).
const (
	// Closure actions perform the intended computation when S holds.
	Closure = program.Closure
	// Convergence actions reestablish violated constraints.
	Convergence = program.Convergence
	// Fault actions represent the faults themselves.
	Fault = program.Fault
)

// Domain constructors.
var (
	// Bool returns the boolean domain.
	Bool = program.Bool
	// IntRange returns the integer domain min..max.
	IntRange = program.IntRange
	// Enum returns a labeled finite domain.
	Enum = program.Enum
)

// Schema and model constructors.
var (
	// NewSchema returns an empty variable table.
	NewSchema = program.NewSchema
	// NewPredicate builds a named predicate with a declared support.
	NewPredicate = program.NewPredicate
	// NewAction builds a guarded command with a declared footprint.
	NewAction = program.NewAction
	// NewProgram returns an empty program over a schema.
	NewProgram = program.New
	// True is the constant-true predicate (the stabilizing fault-span).
	True = program.True
	// False is the constant-false predicate.
	False = program.False
	// And conjoins predicates.
	And = program.And
	// Or disjoins predicates.
	Or = program.Or
	// Not negates a predicate.
	Not = program.Not
	// RandomState draws a uniformly random state.
	RandomState = program.RandomState
)

// Design method (internal/core, internal/constraint, internal/ctheory).
type (
	// Design is a candidate triple (p, S, T) with its constraint
	// decomposition and convergence actions.
	Design = core.Design
	// DesignBuilder constructs a Design incrementally.
	DesignBuilder = core.Builder
	// Constraint pairs one conjunct of S with its convergence action.
	Constraint = constraint.Constraint
	// ConstraintSet is an ordered, layered collection of constraints.
	ConstraintSet = constraint.Set
	// ConstraintGraph is the Section 4 interference graph.
	ConstraintGraph = constraint.Graph
	// TheoremID names one of the paper's sufficient conditions.
	TheoremID = ctheory.TheoremID
	// TheoremReport is the outcome of checking a theorem's antecedents.
	TheoremReport = ctheory.Report
	// VerifyResult bundles exact model-checking verdicts for a design.
	VerifyResult = core.VerifyResult
)

// The paper's theorems.
const (
	// Theorem1 covers out-tree constraint graphs (Section 5).
	Theorem1 = ctheory.Theorem1
	// Theorem2 covers self-looping graphs with linear orders (Section 6).
	Theorem2 = ctheory.Theorem2
	// Theorem3 covers layered partitions (Section 7).
	Theorem3 = ctheory.Theorem3
)

// Design constructors.
var (
	// NewDesign starts a design with a fresh schema.
	NewDesign = core.NewDesign
	// NewDesignWithSchema starts a design over an existing schema.
	NewDesignWithSchema = core.NewDesignWithSchema
	// BuildConstraintGraph constructs the Section 4 constraint graph.
	BuildConstraintGraph = constraint.BuildGraph
)

// Verification (internal/verify).
type (
	// VerifyOptions configures the checker: state cap, worker count,
	// strategy, deadline.
	VerifyOptions = verify.Options
	// VerifyOption is a functional option for Check.
	VerifyOption = verify.Option
	// Report bundles everything Check decides about a candidate triple.
	Report = verify.Report
	// Space is an enumerated state space with S/T membership.
	Space = verify.Space
	// ConvergenceResult reports a convergence verdict with witnesses.
	ConvergenceResult = verify.ConvergenceResult
	// ClosureViolation is a step escaping a closed predicate.
	ClosureViolation = verify.ClosureViolation
	// PreserveResult reports a preservation verdict.
	PreserveResult = verify.PreserveResult
	// Strategy selects exhaustive or projected preservation checking.
	Strategy = verify.Strategy
	// Classification is masking vs nonmasking (Section 3).
	Classification = verify.Classification
	// SpanResult is a computed fault-span.
	SpanResult = verify.SpanResult
)

// Verification strategies and classifications.
const (
	// Exhaustive enumerates the full state space.
	Exhaustive = verify.Exhaustive
	// Projected enumerates only footprints and supports.
	Projected = verify.Projected
	// Masking means S = T.
	Masking = verify.Masking
	// Nonmasking means S is a strict subset of T.
	Nonmasking = verify.Nonmasking
)

// Verification entry points.
var (
	// Check is the unified verification entry point: enumeration, closure,
	// convergence under both daemons, and classification in one call,
	// configured by functional options and cancellable by context.
	Check = verify.Check
	// WithWorkers shards the checker's passes across n goroutines.
	WithWorkers = verify.WithWorkers
	// WithMaxStates caps the enumerated state space.
	WithMaxStates = verify.WithMaxStates
	// WithStrategy records the preservation strategy on the report.
	WithStrategy = verify.WithStrategy
	// WithDeadline bounds the wall-clock time of a Check call.
	WithDeadline = verify.WithDeadline
	// WithFaults makes Check compute the fault-span of the given fault
	// actions and use it as T.
	WithFaults = verify.WithFaults
	// WithMetrics makes Check additionally run the quantitative
	// tolerance-metrics passes (distance profile, worst/expected
	// stabilization time, per-constraint recovery costs).
	WithMetrics = verify.WithMetrics
	// WithConstraints supplies the invariant conjuncts the metrics break
	// recovery costs down by.
	WithConstraints = verify.WithConstraints
)

// Tolerance metrics (internal/verify, DESIGN §10).
type (
	// ToleranceMetrics is the quantitative tolerance analysis attached to
	// Report.Metrics by WithMetrics.
	ToleranceMetrics = verify.ToleranceMetrics
	// ConstraintCost is one constraint's recovery cost.
	ConstraintCost = verify.ConstraintCost
	// ConstraintSpec names one invariant conjunct for the cost breakdown.
	ConstraintSpec = verify.ConstraintSpec
)

// Execution (internal/daemon, internal/fault, internal/sim).
type (
	// Daemon schedules enabled actions.
	Daemon = daemon.Daemon
	// Injector perturbs states to model faults.
	Injector = fault.Injector
	// FaultSchedule lists timed injections for simulation runs.
	FaultSchedule = fault.Schedule
	// FaultEvent is one scheduled injection.
	FaultEvent = fault.Event
	// Runner drives a program under a daemon with fault injection.
	Runner = sim.Runner
	// RunResult describes one simulation run.
	RunResult = sim.Result
	// Batch aggregates many runs.
	Batch = sim.Batch
	// Trace records a run's state sequence.
	Trace = sim.Trace
	// SyncResult reports an exhaustive synchronous-daemon analysis.
	SyncResult = sim.SyncResult
	// LeadsToResult reports a progress (leads-to) verdict.
	LeadsToResult = verify.LeadsToResult
	// StairResult reports a convergence-stair verification.
	StairResult = verify.StairResult
	// VariantViolation is a step on which a claimed variant fails.
	VariantViolation = verify.VariantViolation
	// CorruptVars randomizes K variables per injection.
	CorruptVars = fault.CorruptVars
	// CorruptGroups randomizes the variables of K groups (nodes).
	CorruptGroups = fault.CorruptGroups
	// ResetTo restores variables to a snapshot.
	ResetTo = fault.ResetTo
)

// Daemon constructors.
var (
	// NewRoundRobin cycles through actions in program order (weakly fair).
	NewRoundRobin = daemon.NewRoundRobin
	// NewRandomDaemon picks uniformly among enabled actions.
	NewRandomDaemon = daemon.NewRandom
	// NewAdversarialDaemon greedily maximizes a metric (unfair).
	NewAdversarialDaemon = daemon.NewAdversarial
	// ViolationMetric counts violated predicates, for adversaries at scale.
	ViolationMetric = daemon.ViolationMetric
	// FaultActions represents per-variable corruption as fault actions.
	FaultActions = fault.Actions
	// RandomStates draws arbitrary initial states for stabilization runs.
	RandomStates = sim.RandomStates
	// CorruptedStates perturbs a good state with an injector.
	CorruptedStates = sim.CorruptedStates
	// SyncStep executes one fully synchronous round.
	SyncStep = sim.SyncStep
	// SyncExhaustive decides stabilization under the synchronous daemon.
	SyncExhaustive = sim.SyncExhaustive
)

// GCL front end (internal/gcl).
type (
	// GCLModule is a compiled guarded-command source file.
	GCLModule = gcl.Module
	// GCLFile is a parsed guarded-command source file.
	GCLFile = gcl.File
)

// GCL entry points.
var (
	// LoadGCL parses and compiles guarded-command source.
	LoadGCL = gcl.Load
	// ParseGCL parses guarded-command source.
	ParseGCL = gcl.Parse
	// PrintGCL renders a parsed file back to source.
	PrintGCL = gcl.Print
)

// Reporting (internal/metrics).
type (
	// Table renders fixed-width experiment tables.
	Table = metrics.Table
	// Summary holds order statistics over a sample.
	Summary = metrics.Summary
)

// Reporting constructors.
var (
	// NewTable returns a table with a title and column headers.
	NewTable = metrics.NewTable
	// Summarize computes order statistics.
	Summarize = metrics.Summarize
)
