module nonmask

go 1.22
