// Package nonmask is a library for designing, validating, verifying, and
// executing nonmasking fault-tolerant programs by constraint satisfaction,
// reproducing Arora, Gouda & Varghese, "Constraint Satisfaction as a Basis
// for Designing Nonmasking Fault-Tolerance" (1994).
//
// # The method
//
// A program tolerates faults nonmaskingly when its input-output relation is
// violated only temporarily: formally, a program p with invariant S and
// fault-span T is T-tolerant for S iff S and T are closed in p and every
// computation from T reaches S. The paper's design method is:
//
//  1. Partition the invariant S into constraints that can each be
//     independently checked and established (their conjunction with T is S).
//  2. For each constraint c, add a convergence action
//     "¬c -> establish c while preserving T".
//  3. Validate that the convergence actions cannot interfere forever, using
//     the constraint graph: Theorem 1 (out-trees), Theorem 2 (self-looping
//     graphs with a per-node linear order), Theorem 3 (layered partitions).
//
// # What the library provides
//
//   - The guarded-command program model (Design, Builder, Action,
//     Predicate, Schema) and a textual front end for the paper's notation
//     (LoadGCL).
//   - Machine-checked theorem validation (Validate) and exact model
//     checking of closure and convergence under unfair and weakly fair
//     daemons (Design.Verify), including fault-span computation.
//   - Execution: schedulers/daemons, fault injection, a simulator for
//     large instances, and a goroutine-per-node message-passing runtime
//     realizing the paper's low-atomicity refinement.
//   - The paper's worked designs as ready-made protocols: the stabilizing
//     diffusing computation, Dijkstra's token ring (path and mod-K ring
//     forms), the x/y/z running example, and the applications it motivates
//     (spanning tree, distributed reset, mutual exclusion, termination
//     detection) under internal/protocols, re-exported by examples.
//
// # Quickstart
//
// Build a design from constraints and validate it:
//
//	b := nonmask.NewDesign("example")
//	x := b.Schema().MustDeclare("x", nonmask.IntRange(0, 4))
//	y := b.Schema().MustDeclare("y", nonmask.IntRange(0, 4))
//	neq := nonmask.NewPredicate("x!=y", []nonmask.VarID{x, y},
//		func(st *nonmask.State) bool { return st.Get(x) != st.Get(y) })
//	fix := nonmask.NewAction("fix-y", nonmask.Convergence,
//		[]nonmask.VarID{x, y}, []nonmask.VarID{y},
//		func(st *nonmask.State) bool { return st.Get(x) == st.Get(y) },
//		func(st *nonmask.State) { st.Set(y, (st.Get(y)+1)%5) })
//	b.Constraint(0, neq, fix)
//	d, err := b.Build()
//	// d.Validate(...) applies Theorems 1-3; d.Verify(...) model-checks.
//
// See examples/ for complete programs and EXPERIMENTS.md for the
// paper-claim reproduction suite.
package nonmask
