package nonmask_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"nonmask"
)

// buildPair constructs a two-variable design through the public facade
// only: S = (y = x) with the convergence action copying x to y.
func buildPair(t *testing.T) (*nonmask.Design, nonmask.VarID, nonmask.VarID) {
	t.Helper()
	b := nonmask.NewDesign("pair")
	x := b.Schema().MustDeclare("x", nonmask.IntRange(0, 3))
	y := b.Schema().MustDeclare("y", nonmask.IntRange(0, 3))
	b.Closure(nonmask.NewAction("advance", nonmask.Closure,
		[]nonmask.VarID{x, y}, []nonmask.VarID{x, y},
		func(st *nonmask.State) bool { return st.Get(x) == st.Get(y) },
		func(st *nonmask.State) {
			v := (st.Get(x) + 1) % 4
			st.Set(x, v)
			st.Set(y, v)
		}))
	eq := nonmask.NewPredicate("y = x", []nonmask.VarID{x, y},
		func(st *nonmask.State) bool { return st.Get(y) == st.Get(x) })
	b.Constraint(0, eq, nonmask.NewAction("sync", nonmask.Convergence,
		[]nonmask.VarID{x, y}, []nonmask.VarID{y},
		func(st *nonmask.State) bool { return st.Get(y) != st.Get(x) },
		func(st *nonmask.State) { st.Set(y, st.Get(x)) }))
	d, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return d, x, y
}

func TestFacadeDesignWorkflow(t *testing.T) {
	d, _, _ := buildPair(t)

	report, all, err := d.Validate(nonmask.Exhaustive, nonmask.VerifyOptions{})
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if report == nil {
		t.Fatalf("no theorem applies; %d reports", len(all))
	}

	res, err := d.Verify(nonmask.VerifyOptions{})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.Tolerant() {
		t.Error("design not tolerant")
	}
	if res.Classification != nonmask.Nonmasking {
		t.Errorf("classification = %v", res.Classification)
	}
}

func TestFacadeSimulation(t *testing.T) {
	d, _, _ := buildPair(t)
	p := d.TolerantProgram()
	r := &nonmask.Runner{
		P: p, S: d.S,
		D:        nonmask.NewRoundRobin(p),
		MaxSteps: 1000,
		StopAtS:  true,
	}
	rng := rand.New(rand.NewSource(1))
	batch := r.RunMany(100, rng, nonmask.RandomStates(d.Schema))
	if batch.ConvergenceRate() != 1 {
		t.Errorf("rate = %v", batch.ConvergenceRate())
	}
	s := nonmask.Summarize(intsToFloats(batch.Steps))
	if s.Max > 1 {
		t.Errorf("pair should converge in one step, max = %v", s.Max)
	}
}

func TestFacadeFaultSpan(t *testing.T) {
	d, x, y := buildPair(t)
	// Faults may corrupt y only; the span from S must stay within x-domain
	// times y-domain but only states reachable by corrupting y.
	faults := nonmask.FaultActions(d.Schema, []nonmask.VarID{y})
	if len(faults) != 4 {
		t.Fatalf("fault actions = %d, want 4", len(faults))
	}
	rep, err := nonmask.Check(context.Background(), d.TolerantProgram(), d.S, nil,
		nonmask.WithFaults(faults...))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if rep.Span == nil {
		t.Fatal("Check with WithFaults returned no span")
	}
	// From y-corruption of S states, every (x, y) combination is reachable
	// (the program itself advances x).
	if rep.Span.States != 16 {
		t.Errorf("span = %d states, want 16", rep.Span.States)
	}
	_ = x
}

func TestFacadeGCL(t *testing.T) {
	m, err := nonmask.LoadGCL(`
program tiny;
var x : 0..3;
invariant I : x = 0;
action fix convergence establishes I : x != 0 -> x := 0;
`)
	if err != nil {
		t.Fatalf("LoadGCL: %v", err)
	}
	if m.Design == nil {
		t.Fatal("no design")
	}
	f, err := nonmask.ParseGCL("program p; var b : bool; action a : b -> b := false;")
	if err != nil {
		t.Fatalf("ParseGCL: %v", err)
	}
	out := nonmask.PrintGCL(f)
	if !strings.Contains(out, "program p;") {
		t.Errorf("PrintGCL = %q", out)
	}
}

func TestFacadeConstraintGraph(t *testing.T) {
	d, _, _ := buildPair(t)
	cg, err := nonmask.BuildConstraintGraph(d.Set.Constraints)
	if err != nil {
		t.Fatalf("BuildConstraintGraph: %v", err)
	}
	if _, ok := cg.IsOutTree(); !ok {
		t.Error("pair graph not an out-tree")
	}
}

func TestFacadeTable(t *testing.T) {
	tbl := nonmask.NewTable("t", "a", "b")
	tbl.AddRow("1", "2")
	if !strings.Contains(tbl.String(), "1") {
		t.Error("table rendering broken")
	}
}

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}

// ExampleDesignBuilder demonstrates the paper's design workflow end to end
// through the public API.
func ExampleDesignBuilder() {
	b := nonmask.NewDesign("example")
	x := b.Schema().MustDeclare("x", nonmask.IntRange(0, 4))
	y := b.Schema().MustDeclare("y", nonmask.IntRange(0, 4))

	// Constraint of S with its convergence action "¬c -> establish c".
	neq := nonmask.NewPredicate("x != y", []nonmask.VarID{x, y},
		func(st *nonmask.State) bool { return st.Get(x) != st.Get(y) })
	fix := nonmask.NewAction("fix-y", nonmask.Convergence,
		[]nonmask.VarID{x, y}, []nonmask.VarID{y},
		func(st *nonmask.State) bool { return st.Get(x) == st.Get(y) },
		func(st *nonmask.State) { st.Set(y, (st.Get(y)+1)%5) })
	b.Constraint(0, neq, fix)

	d, _ := b.Build()
	report, _, _ := d.Validate(nonmask.Exhaustive, nonmask.VerifyOptions{})
	res, _ := d.Verify(nonmask.VerifyOptions{})
	fmt.Println(report.Theorem)
	fmt.Println(res.Unfair.Converges, res.Classification)
	// Output:
	// Theorem 1 (out-tree)
	// true nonmasking
}

// ExampleLoadGCL compiles a program written in the paper's notation and
// model-checks it.
func ExampleLoadGCL() {
	m, _ := nonmask.LoadGCL(`
program countdown;
var x : 0..5;
invariant DONE : x = 0;
action step convergence establishes DONE : x != 0 -> x := x - 1;
`)
	res, _ := m.Design.Verify(nonmask.VerifyOptions{})
	fmt.Println(res.Unfair.Summary())
	// Output:
	// converges under arbitrary daemon: worst 5 steps, mean 3.00 (|T∧¬S| = 5 states)
}
