// Distributed-reset demo: the diffusing-computation application the paper
// names in Section 5.1, built as a Theorem 1-validated design. A reset
// request at the root installs a fresh epoch at every node via the red
// wave; corruption mid-reset is repaired by the convergence actions and a
// retried reset completes correctly.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"nonmask"
	"nonmask/internal/protocols/diffusing"
	"nonmask/internal/protocols/reset"
)

func main() {
	tree := diffusing.Random(10, 4)
	inst, err := reset.New(tree)
	if err != nil {
		log.Fatal(err)
	}
	prog := inst.Design.TolerantProgram()
	fmt.Printf("distributed reset on a random tree of %d nodes (versions mod %d)\n\n",
		tree.N(), reset.Versions)

	// Validate once: the design is Theorem 1 fault-tolerant.
	report, _, err := inst.Design.Validate(nonmask.Projected, nonmask.VerifyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design validated by: %v\n\n", report.Theorem)

	run := func(st *nonmask.State, label string) *nonmask.State {
		r := &nonmask.Runner{
			P: prog, S: inst.Design.S,
			D:        nonmask.NewRoundRobin(prog),
			MaxSteps: 4000,
		}
		res := r.Run(st, nil)
		fmt.Printf("%-28s versions %s  completed=%v  (closure %d / convergence %d steps)\n",
			label, versions(inst, res.Final), inst.Completed(res.Final),
			res.ActionCounts[nonmask.Closure], res.ActionCounts[nonmask.Convergence])
		return res.Final
	}

	st := inst.Quiet()
	fmt.Printf("%-28s versions %s\n", "initial:", versions(inst, st))
	st = run(inst.Request(st), "reset #1:")
	st = run(inst.Request(st), "reset #2:")

	// Corrupt half the nodes mid-flight, then reset again.
	rng := rand.New(rand.NewSource(11))
	bad := inst.Request(st)
	(&nonmask.CorruptGroups{Groups: inst.Groups, K: 5}).Inject(bad, rng)
	fmt.Printf("%-28s versions %s\n", "5 nodes corrupted:", versions(inst, bad))
	st = run(bad, "reset #3 (after faults):")
	fmt.Println("  (a fault may corrupt the request flag itself, so reset #3 can end")
	fmt.Println("   incomplete — nonmasking tolerance repairs the wave invariant, and")
	fmt.Println("   the retried request below installs a consistent epoch)")
	st = run(inst.Request(st), "reset #4 (retry):")
	_ = st
}

// versions renders each node's version digit.
func versions(inst *reset.Instance, st *nonmask.State) string {
	var b strings.Builder
	for _, v := range inst.V {
		fmt.Fprintf(&b, "%d", st.Get(v))
	}
	return b.String()
}
