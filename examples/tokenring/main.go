// Token-ring demo: Dijkstra's stabilizing K-state ring (paper Section 7.1)
// driving a mutual-exclusion service. Shows the privilege rotating in
// legitimate operation, then a corruption creating multiple privileges —
// the nonmasking violation window — and the ring healing itself.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"nonmask"
	"nonmask/internal/protocols/mutex"
)

func main() {
	const nodes = 8 // ring of 8 nodes: N = 7
	svc, err := mutex.New(nodes-1, nodes+1)
	if err != nil {
		log.Fatal(err)
	}
	ring := svc.Ring
	fmt.Printf("mutual exclusion on Dijkstra's ring: %d nodes, K = %d\n\n", nodes, ring.K)

	// Phase 1: legitimate rotation.
	fmt.Println("--- legitimate operation (token rotates) ---")
	st := ring.AllZero()
	d := nonmask.NewRoundRobin(ring.P)
	for step := 0; step < 16; step++ {
		fmt.Printf("step %2d  %s\n", step, privileges(svc, st))
		enabled := ring.P.Enabled(st)
		st = d.Pick(st, enabled, step).Apply(st)
	}

	// Phase 2: corrupt the counters, creating several privileges.
	fmt.Println("\n--- after corrupting every node ---")
	rng := rand.New(rand.NewSource(3))
	bad := st.Clone()
	(&nonmask.CorruptGroups{Groups: ring.Groups}).Inject(bad, rng)
	st = bad
	healedAt := -1
	for step := 0; step < 120; step++ {
		count := ring.PrivilegeCount(st)
		if step < 12 || (healedAt == -1 && count == 1) {
			fmt.Printf("step %2d  %s  (%d privileged)\n", step, privileges(svc, st), count)
		}
		if count == 1 && healedAt == -1 && ring.S.Holds(st) {
			healedAt = step
			break
		}
		enabled := ring.P.Enabled(st)
		st = d.Pick(st, enabled, step).Apply(st)
	}
	fmt.Printf("\nmutual exclusion restored after %d steps — and, by closure, holds forever after\n", healedAt)

	// Phase 3: quantify the violation window statistically.
	stats := svc.Measure(nil, nonmask.NewRandomDaemon(9), 4000,
		nonmask.FaultSchedule{{Step: 1000, Inj: &nonmask.CorruptGroups{Groups: ring.Groups, K: 4}}},
		rng)
	fmt.Printf("\n4000-step run with a 4-node fault at step 1000:\n")
	fmt.Printf("  unsafe steps (2+ could enter CS): %d\n", stats.UnsafeSteps)
	fmt.Printf("  safe again from step:             %d\n", stats.FirstSafe)
	entries := make([]string, len(stats.Entries))
	for j, e := range stats.Entries {
		entries[j] = fmt.Sprintf("%d", e)
	}
	fmt.Printf("  CS opportunities per node:        [%s]\n", strings.Join(entries, " "))
}

// privileges renders which nodes hold a privilege: * marks privileged.
func privileges(svc *mutex.Service, st *nonmask.State) string {
	var b strings.Builder
	for j := 0; j <= svc.Ring.N; j++ {
		if svc.MayEnter(st, j) {
			b.WriteByte('*')
		} else {
			b.WriteByte('.')
		}
	}
	return b.String()
}
