// Diffusing-computation demo: the paper's Section 5.1 stabilizing wave on
// a rooted tree, visualized step by step, with a mid-run fault corrupting
// half the nodes and the convergence actions repairing the damage.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"nonmask"
	"nonmask/internal/protocols/diffusing"
)

func main() {
	tree := diffusing.Binary(15)
	inst, err := diffusing.New(tree)
	if err != nil {
		log.Fatal(err)
	}
	prog := inst.Design.TolerantProgram()
	fmt.Printf("stabilizing diffusing computation on a binary tree of %d nodes\n", tree.N())
	fmt.Printf("S = conjunction of %d constraints R.j; fault-span T = true\n\n", inst.Design.Set.Len())

	rng := rand.New(rand.NewSource(7))
	runner := &nonmask.Runner{
		P: prog, S: inst.Design.S,
		D:        nonmask.NewRoundRobin(prog),
		MaxSteps: 400,
		Faults: nonmask.FaultSchedule{
			{Step: 200, Inj: &nonmask.CorruptGroups{Groups: inst.Groups, K: 8}},
		},
		OnStep: func(step int, st *nonmask.State, a *nonmask.Action) {
			if step%20 == 0 || step == 200 {
				marker := ""
				if step == 200 {
					marker = "  <-- 8 nodes corrupted here"
				}
				fmt.Printf("step %3d  %s  S=%v%s\n", step, colors(inst, st),
					inst.Design.S.Holds(st), marker)
			}
		},
	}
	res := runner.Run(inst.AllGreen(), rng)

	fmt.Printf("\nfinal: %s\n", colors(inst, res.Final))
	fmt.Printf("closure actions: %d, convergence actions: %d\n",
		res.ActionCounts[nonmask.Closure], res.ActionCounts[nonmask.Convergence])
	fmt.Printf("S holds at the end: %v\n", inst.Design.S.Holds(res.Final))
	fmt.Println("\nconvergence actions fired only after the fault — nonmasking tolerance:")
	fmt.Println("the wave invariant was violated temporarily and reestablished.")
}

// colors renders the tree's color vector: R for red, g for green, with the
// session bit as case of the separator.
func colors(inst *diffusing.Instance, st *nonmask.State) string {
	var b strings.Builder
	for j := range inst.C {
		if st.Get(inst.C[j]) == diffusing.Red {
			b.WriteByte('R')
		} else {
			b.WriteByte('g')
		}
	}
	return b.String()
}
