// Message-passing demo: the low-atomicity refinement of the paper's
// Section 8 remark, run as a real concurrent system — one goroutine per
// node, lossy duplicating links, cached neighbor state — recovering from
// full-state corruption.
package main

import (
	"fmt"
	"time"

	"nonmask/internal/protocols/diffusing"
	"nonmask/internal/runtime"
)

func main() {
	fmt.Println("message-passing refinements (goroutine per node, unreliable links)")
	fmt.Println()

	fmt.Println("--- Dijkstra ring, 16 nodes, 20% loss, 10% duplication ---")
	ring := &runtime.RingProtocol{N: 15, K: 17}
	net := runtime.NewNetwork(ring, runtime.Config{
		Seed:            1,
		LossProb:        0.20,
		DupProb:         0.10,
		RetransmitEvery: 200 * time.Microsecond,
	})
	net.Corrupt(16, runtime.CorruptRing(17))
	res := net.Run(20 * time.Second)
	fmt.Printf("converged: %v after %d monitor updates in %v\n",
		res.Converged, res.Updates, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("final counters: %v\n\n", flat(res.Final))

	fmt.Println("--- diffusing wave, binary tree of 31 nodes, 20% loss ---")
	tree := diffusing.Binary(31)
	tnet := runtime.NewNetwork(runtime.NewTreeProtocol(tree.Parent), runtime.Config{
		Seed:            2,
		LossProb:        0.20,
		DupProb:         0.10,
		RetransmitEvery: 200 * time.Microsecond,
	})
	tnet.Corrupt(31, runtime.CorruptTree())
	tres := tnet.Run(20 * time.Second)
	fmt.Printf("converged: %v after %d monitor updates in %v\n",
		tres.Converged, tres.Updates, tres.Elapsed.Round(time.Millisecond))
	fmt.Println()
	fmt.Println("each node read only its cached copies of neighbor registers — the")
	fmt.Println("high-atomicity guarded commands refined to asynchronous message passing")
}

func flat(all [][]int32) []int32 {
	out := make([]int32, len(all))
	for i, regs := range all {
		out[i] = regs[0]
	}
	return out
}
