// Quickstart: design a nonmasking fault-tolerant program from scratch with
// the paper's method, validate it with the theorems, model-check it, and
// watch it recover from injected faults.
//
// The toy system keeps three replicas of a register consistent with a
// primary: S = (r1 = p) && (r2 = p) && (r3 = p). Each constraint gets its
// own convergence action (copy from the primary), so the constraint graph
// is the out-tree {p} -> {r1}, {p} -> {r2}, {p} -> {r3} and Theorem 1
// applies. The closure action bumps the primary and all replicas together.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"nonmask"
)

func main() {
	// 1. Declare variables.
	b := nonmask.NewDesign("replicated-register")
	schema := b.Schema()
	p := schema.MustDeclare("p", nonmask.IntRange(0, 7))
	replicas := make([]nonmask.VarID, 3)
	for i := range replicas {
		replicas[i] = schema.MustDeclare(fmt.Sprintf("r%d", i+1), nonmask.IntRange(0, 7))
	}

	// 2. One closure action: advance the register everywhere at once.
	all := append([]nonmask.VarID{p}, replicas...)
	b.Closure(nonmask.NewAction("advance", nonmask.Closure, all, all,
		func(st *nonmask.State) bool {
			for _, r := range replicas {
				if st.Get(r) != st.Get(p) {
					return false
				}
			}
			return true
		},
		func(st *nonmask.State) {
			v := (st.Get(p) + 1) % 8
			st.Set(p, v)
			for _, r := range replicas {
				st.Set(r, v)
			}
		}))

	// 3. One constraint + convergence action per replica.
	for i, r := range replicas {
		r := r
		pred := nonmask.NewPredicate(fmt.Sprintf("r%d = p", i+1),
			[]nonmask.VarID{p, r},
			func(st *nonmask.State) bool { return st.Get(r) == st.Get(p) })
		fix := nonmask.NewAction(fmt.Sprintf("sync-r%d", i+1), nonmask.Convergence,
			[]nonmask.VarID{p, r}, []nonmask.VarID{r},
			func(st *nonmask.State) bool { return st.Get(r) != st.Get(p) },
			func(st *nonmask.State) { st.Set(r, st.Get(p)) })
		b.Constraint(0, pred, fix)
	}

	design, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 4. Validate with the paper's sufficient conditions.
	report, _, err := design.Validate(nonmask.Exhaustive, nonmask.VerifyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if report == nil {
		log.Fatal("no theorem applies — revisit the convergence actions")
	}
	fmt.Printf("validated by %v\n", report.Theorem)

	// 5. Model-check ground truth: closure + convergence from EVERY state.
	res, err := design.Verify(nonmask.VerifyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closure ok: %v\n", res.Closure == nil)
	fmt.Printf("convergence (arbitrary daemon): %s\n", res.Unfair.Summary())
	fmt.Printf("classification: %v\n", res.Classification)

	// 6. Run it with fault injection: corrupt everything, watch recovery.
	prog := design.TolerantProgram()
	runner := &nonmask.Runner{
		P: prog, S: design.S,
		D:        nonmask.NewRoundRobin(prog),
		MaxSteps: 10_000,
		StopAtS:  true,
	}
	rng := rand.New(rand.NewSource(1))
	batch := runner.RunMany(1000, rng, nonmask.RandomStates(schema))
	steps := nonmask.Summarize(floats(batch.Steps))
	fmt.Printf("1000 corrupted starts: %d converged, steps mean %.2f max %.0f\n",
		batch.ConvergedRuns, steps.Mean, steps.Max)
}

func floats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
