package nonmask_test

// The benchmark harness regenerates every experiment table of
// EXPERIMENTS.md (one Benchmark per paper claim, E1..E10 plus ablations
// A1..A3) and adds microbenchmarks for the core machinery. Run with
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark reports the experiment's wall-clock cost per
// regeneration; the tables themselves are printed by cmd/csbench.

import (
	"math/rand"
	"testing"

	"nonmask"
	"nonmask/internal/daemon"
	"nonmask/internal/experiments"
	"nonmask/internal/protocols/diffusing"
	"nonmask/internal/protocols/tokenring"
	"nonmask/internal/sim"
	"nonmask/internal/verify"
)

// runExperiment benchmarks one registered experiment end to end.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkE1_ConstraintGraphXYZ(b *testing.B)   { runExperiment(b, "E1") }
func BenchmarkE2_XYZConvergence(b *testing.B)       { runExperiment(b, "E2") }
func BenchmarkE3_DiffusingStabilizing(b *testing.B) { runExperiment(b, "E3") }
func BenchmarkE4_DiffusingWave(b *testing.B)        { runExperiment(b, "E4") }
func BenchmarkE5_DiffusingConvergence(b *testing.B) { runExperiment(b, "E5") }
func BenchmarkE6_SelfLoopOrdering(b *testing.B)     { runExperiment(b, "E6") }
func BenchmarkE7_TokenRingStabilizing(b *testing.B) { runExperiment(b, "E7") }
func BenchmarkE8_TokenRingKBound(b *testing.B)      { runExperiment(b, "E8") }
func BenchmarkE9_UnfairConvergence(b *testing.B)    { runExperiment(b, "E9") }
func BenchmarkE10_MessagePassing(b *testing.B)      { runExperiment(b, "E10") }
func BenchmarkA1_EstablishStatements(b *testing.B)  { runExperiment(b, "A1") }
func BenchmarkA2_CombinedActions(b *testing.B)      { runExperiment(b, "A2") }
func BenchmarkA3_DaemonSensitivity(b *testing.B)    { runExperiment(b, "A3") }
func BenchmarkX1_ComposedFairness(b *testing.B)     { runExperiment(b, "X1") }
func BenchmarkX2_Availability(b *testing.B)         { runExperiment(b, "X2") }
func BenchmarkX3_ThreeState(b *testing.B)           { runExperiment(b, "X3") }
func BenchmarkX4_Synchronous(b *testing.B)          { runExperiment(b, "X4") }

// --- microbenchmarks for the core machinery ---

// BenchmarkActionStep measures one guard evaluation + action application.
func BenchmarkActionStep(b *testing.B) {
	inst, err := tokenring.NewRing(31, 33)
	if err != nil {
		b.Fatal(err)
	}
	st := inst.AllZero()
	a := inst.P.Actions[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if next, fired := a.Step(st); fired {
			st = next
		}
	}
}

// BenchmarkStateIndex measures mixed-radix state encoding (the model
// checker's hot path).
func BenchmarkStateIndex(b *testing.B) {
	inst, err := diffusing.New(diffusing.Binary(10))
	if err != nil {
		b.Fatal(err)
	}
	schema := inst.Design.Schema
	st := inst.AllGreen()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := schema.Index(st)
		st = schema.StateAt(idx)
	}
}

// BenchmarkModelCheckDiffusing measures a full stabilization proof (space
// construction + closure + convergence) for the binary-7 diffusing tree:
// 16384 states.
func BenchmarkModelCheckDiffusing(b *testing.B) {
	inst, err := diffusing.New(diffusing.Binary(7))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := inst.Design.Verify(verify.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Unfair.Converges {
			b.Fatal("not convergent")
		}
	}
}

// BenchmarkTheoremValidation measures the full Theorem 1 antecedent check
// (projected preservation) for a 31-node diffusing tree.
func BenchmarkTheoremValidation(b *testing.B) {
	inst, err := diffusing.New(diffusing.Binary(31))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _, err := inst.Design.Validate(verify.Projected, verify.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if r == nil {
			b.Fatal("no theorem applies")
		}
	}
}

// BenchmarkSimulationSteps measures raw simulation throughput
// (steps/second) on a 255-node diffusing tree under the random daemon.
func BenchmarkSimulationSteps(b *testing.B) {
	inst, err := diffusing.New(diffusing.Binary(255))
	if err != nil {
		b.Fatal(err)
	}
	p := inst.Design.TolerantProgram()
	r := &sim.Runner{
		P: p, S: inst.Design.S,
		D:        daemon.NewRandom(1),
		MaxSteps: b.N,
		StopAtS:  false,
	}
	b.ReportAllocs()
	b.ResetTimer()
	res := r.Run(inst.AllGreen(), rand.New(rand.NewSource(2)))
	_ = res
}

// BenchmarkGCLCompile measures parsing + compiling the diffusing program
// from source.
func BenchmarkGCLCompile(b *testing.B) {
	src := `
program diffusing;
const N = 5;
const P = [0, 0, 0, 1, 1];
var c[N]  : {green, red};
var sn[N] : bool;
invariant R for j in 1..N-1 :
    (c[j] = c[P[j]] && sn[j] = sn[P[j]]) || (c[j] = green && c[P[j]] = red);
action initiate closure : c[0] = green -> c[0], sn[0] := red, !sn[0];
action fix for j in 1..N-1 convergence establishes R :
    !((c[j] = c[P[j]] && sn[j] = sn[P[j]]) || (c[j] = green && c[P[j]] = red))
        -> c[j], sn[j] := c[P[j]], sn[P[j]];
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := nonmask.LoadGCL(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultInjection measures one whole-system corruption.
func BenchmarkFaultInjection(b *testing.B) {
	inst, err := diffusing.New(diffusing.Binary(255))
	if err != nil {
		b.Fatal(err)
	}
	inj := &nonmask.CorruptGroups{Groups: inst.Groups}
	st := inst.AllGreen()
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.Inject(st, rng)
	}
}
