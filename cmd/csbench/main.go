// Command csbench regenerates the paper-claim reproduction suite: every
// experiment in EXPERIMENTS.md (E1..E10), every ablation (A1..A3), and
// every extension (X1..X4), as indexed in DESIGN.md.
//
// Usage:
//
//	csbench            # run everything
//	csbench -e E5      # run one experiment
//	csbench -list      # list experiments
//	csbench -json      # also write BENCH_<date>.json (machine-readable)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"nonmask/internal/experiments"
	"nonmask/internal/obs"
	"nonmask/internal/program"
	"nonmask/internal/protocols/diffusing"
	"nonmask/internal/protocols/tokenring"
	"nonmask/internal/verify"
)

// benchExperiment is one experiment's wall time in the JSON report.
type benchExperiment struct {
	ID        string  `json:"id"`
	Title     string  `json:"title"`
	PaperRef  string  `json:"paper_ref"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// benchProbe is one end-to-end verify.Check measurement: the instance's
// state and enabled-edge counts, the successor index's byte size, the
// whole check's wall time, and the per-pass spans (see EXPERIMENTS.md,
// "Machine-readable benchmark record").
type benchProbe struct {
	Name      string         `json:"name"`
	States    int64          `json:"states"`
	Edges     int64          `json:"edges"`
	Bytes     int64          `json:"bytes"`
	ElapsedMS float64        `json:"elapsed_ms"`
	Passes    []obs.PassStat `json:"passes"`
}

// benchReport is the top-level BENCH_<date>.json document.
type benchReport struct {
	Generated   string            `json:"generated"`
	GoVersion   string            `json:"go_version"`
	NumCPU      int               `json:"num_cpu"`
	Experiments []benchExperiment `json:"experiments"`
	Probes      []benchProbe      `json:"probes"`
}

func main() {
	var (
		one      = flag.String("e", "", "run a single experiment by id (e.g. E5)")
		list     = flag.Bool("list", false, "list experiments and exit")
		jsonOut  = flag.Bool("json", false, "write BENCH_<date>.json with wall times and perf probes")
		jsonPath = flag.String("o", "", "override the -json output path")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-70s [%s]\n", e.ID, e.Title, e.PaperRef)
		}
		return
	}

	todo := experiments.All()
	if *one != "" {
		e, err := experiments.ByID(*one)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		todo = []*experiments.Experiment{e}
	}

	report := benchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
	failed := 0
	for _, e := range todo {
		start := time.Now()
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failed++
			continue
		}
		elapsed := time.Since(start)
		fmt.Printf("%s\n", tbl)
		fmt.Printf("[%s done in %v — %s]\n\n", e.ID, elapsed.Round(time.Millisecond), e.PaperRef)
		report.Experiments = append(report.Experiments, benchExperiment{
			ID: e.ID, Title: e.Title, PaperRef: e.PaperRef,
			ElapsedMS: float64(elapsed) / float64(time.Millisecond),
		})
	}
	if *jsonOut {
		if err := writeBenchJSON(&report, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// writeBenchJSON runs the perf probes, fills the report, and writes it to
// path (default BENCH_<date>.json in the working directory).
func writeBenchJSON(report *benchReport, path string) error {
	probes, err := runProbes()
	if err != nil {
		return fmt.Errorf("perf probes: %w", err)
	}
	report.Probes = probes
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d experiments, %d probes)\n",
		path, len(report.Experiments), len(report.Probes))
	return nil
}

// runProbes measures the checker end-to-end on the three instances the
// performance claims in README/DESIGN are made on: the 1M-state diffusing
// tree, Dijkstra's 5.7M-state printed ring, and a 2M-state path instance
// of the token-ring family.
func runProbes() ([]benchProbe, error) {
	type target struct {
		name    string
		prog    *program.Program
		s, t    *program.Predicate
		options []verify.Option
	}
	var targets []target

	diff, err := diffusing.New(diffusing.Binary(10))
	if err != nil {
		return nil, err
	}
	d := diff.Design
	targets = append(targets, target{"diffusing-binary10", d.TolerantProgram(), d.S, d.T, nil})

	ring, err := tokenring.NewRing(7, 7)
	if err != nil {
		return nil, err
	}
	targets = append(targets, target{"tokenring-ring-n7k7", ring.P, ring.S, nil, nil})

	path, err := tokenring.NewPath(6, 8)
	if err != nil {
		return nil, err
	}
	pd := path.Design
	targets = append(targets, target{"tokenring-path-n6k8", pd.TolerantProgram(), pd.S, pd.T, nil})

	ctx := context.Background()
	var probes []benchProbe
	for _, tg := range targets {
		collector := &obs.Collector{}
		opts := append([]verify.Option{verify.WithTracer(collector)}, tg.options...)
		start := time.Now()
		rep, err := verify.Check(ctx, tg.prog, tg.s, tg.t, opts...)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tg.name, err)
		}
		probe := benchProbe{
			Name:      tg.name,
			States:    rep.Space.Count,
			ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
			Passes:    collector.Passes(),
		}
		for _, p := range probe.Passes {
			if p.Pass == verify.PassSuccTable {
				probe.Edges, probe.Bytes = p.Edges, p.Bytes
			}
		}
		probes = append(probes, probe)
	}
	return probes, nil
}
