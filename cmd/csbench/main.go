// Command csbench regenerates the paper-claim reproduction suite: every
// experiment in EXPERIMENTS.md (E1..E10), every ablation (A1..A3), and
// every extension (X1..X4), as indexed in DESIGN.md.
//
// Usage:
//
//	csbench            # run everything
//	csbench -e E5      # run one experiment
//	csbench -list      # list experiments
//	csbench -json      # also write BENCH_<date>.json (machine-readable)
//	csbench -json -heavy                  # include the beyond-RAM probes
//	csbench -json -probes-only -probe ring -o new.json
//	csbench -guard old.json,new.json      # fail on >5% probe regressions
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"nonmask/internal/experiments"
	"nonmask/internal/obs"
	"nonmask/internal/program"
	"nonmask/internal/protocols/diffusing"
	"nonmask/internal/protocols/registry"
	"nonmask/internal/protocols/tokenring"
	"nonmask/internal/verify"
)

// benchExperiment is one experiment's wall time in the JSON report.
type benchExperiment struct {
	ID        string  `json:"id"`
	Title     string  `json:"title"`
	PaperRef  string  `json:"paper_ref"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// benchProbe is one end-to-end verify.Check measurement: the instance's
// state and enabled-edge counts, the successor index's byte size, the
// whole check's wall time, and the per-pass spans (see EXPERIMENTS.md,
// "Machine-readable benchmark record"). Probes on the scaling ladder
// additionally record the space tier ("quotient", "spill"), the full
// state count behind a quotient, and the tier's memory/disk footprints:
// quotient_bytes is the canonical-lookup bookkeeping, segment_bytes the
// resident mmap'd CSR segments, spooled_bytes the frontier-run traffic.
type benchProbe struct {
	Name          string         `json:"name"`
	Mode          string         `json:"mode,omitempty"`
	States        int64          `json:"states"`
	FullStates    int64          `json:"full_states,omitempty"`
	Edges         int64          `json:"edges"`
	Bytes         int64          `json:"bytes"`
	QuotientBytes int64          `json:"quotient_bytes,omitempty"`
	SegmentBytes  int64          `json:"segment_bytes,omitempty"`
	SpooledBytes  int64          `json:"spooled_bytes,omitempty"`
	ElapsedMS     float64        `json:"elapsed_ms"`
	Passes        []obs.PassStat `json:"passes"`
}

// benchReport is the top-level BENCH_<date>.json document.
type benchReport struct {
	Generated   string            `json:"generated"`
	GoVersion   string            `json:"go_version"`
	NumCPU      int               `json:"num_cpu"`
	Experiments []benchExperiment `json:"experiments"`
	Probes      []benchProbe      `json:"probes"`
}

func main() {
	var (
		one        = flag.String("e", "", "run a single experiment by id (e.g. E5)")
		list       = flag.Bool("list", false, "list experiments and exit")
		jsonOut    = flag.Bool("json", false, "write BENCH_<date>.json with wall times and perf probes")
		jsonPath   = flag.String("o", "", "override the -json output path")
		heavy      = flag.Bool("heavy", false, "include the beyond-RAM probes: the 43M-state rotation-quotient ring and the beyond-budget spill-vs-fallback pair (the fallback side alone runs ~1h on one core)")
		probesOnly = flag.Bool("probes-only", false, "skip the experiment suite and run only the perf probes (implies -json)")
		probePat   = flag.String("probe", "", "run only probes whose name contains this substring")
		probeBest  = flag.Int("probe-best", 1, "repetitions per probe; the fastest run is recorded")
		guard      = flag.String("guard", "", "compare two bench JSON files (\"old.json,new.json\") and fail if any probe present in both slowed beyond -tolerance; no probes are run")
		tolerance  = flag.Float64("tolerance", 0.05, "allowed relative slowdown per probe for -guard")
	)
	flag.Parse()

	if *guard != "" {
		if err := runGuard(*guard, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "csbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-70s [%s]\n", e.ID, e.Title, e.PaperRef)
		}
		return
	}

	todo := experiments.All()
	if *one != "" {
		e, err := experiments.ByID(*one)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		todo = []*experiments.Experiment{e}
	}
	if *probesOnly {
		todo = nil
		*jsonOut = true
	}

	report := benchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
	failed := 0
	for _, e := range todo {
		start := time.Now()
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failed++
			continue
		}
		elapsed := time.Since(start)
		fmt.Printf("%s\n", tbl)
		fmt.Printf("[%s done in %v — %s]\n\n", e.ID, elapsed.Round(time.Millisecond), e.PaperRef)
		report.Experiments = append(report.Experiments, benchExperiment{
			ID: e.ID, Title: e.Title, PaperRef: e.PaperRef,
			ElapsedMS: float64(elapsed) / float64(time.Millisecond),
		})
	}
	if *jsonOut {
		if err := writeBenchJSON(&report, *jsonPath, *probePat, *heavy, *probeBest); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runGuard is the CI regression gate: it loads the committed baseline and
// a fresh bench JSON and fails if any probe appearing in both slowed by
// more than the tolerance. Probes only in one file (new heavy probes, a
// filtered re-run) are ignored, so the gate keeps working across probe
// additions.
func runGuard(spec string, tolerance float64) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-guard wants \"old.json,new.json\", got %q", spec)
	}
	load := func(path string) (map[string]float64, error) {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rep benchReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out := make(map[string]float64, len(rep.Probes))
		for _, p := range rep.Probes {
			out[p.Name] = p.ElapsedMS
		}
		return out, nil
	}
	old, err := load(parts[0])
	if err != nil {
		return err
	}
	cur, err := load(parts[1])
	if err != nil {
		return err
	}
	regressed := 0
	compared := 0
	for name, was := range old {
		now, ok := cur[name]
		if !ok {
			continue
		}
		compared++
		ratio := now / was
		verdict := "ok"
		if now > was*(1+tolerance) {
			verdict = "REGRESSED"
			regressed++
		}
		fmt.Printf("%-40s %9.0fms -> %9.0fms  %+.1f%%  %s\n",
			name, was, now, (ratio-1)*100, verdict)
	}
	if compared == 0 {
		return fmt.Errorf("no probe names shared between %s and %s", parts[0], parts[1])
	}
	if regressed > 0 {
		return fmt.Errorf("%d of %d probes slowed beyond %.0f%%", regressed, compared, tolerance*100)
	}
	fmt.Printf("guard ok: %d probes within %.0f%%\n", compared, tolerance*100)
	return nil
}

// writeBenchJSON runs the perf probes, fills the report, and writes it to
// path (default BENCH_<date>.json in the working directory).
func writeBenchJSON(report *benchReport, path, filter string, heavy bool, best int) error {
	probes, err := runProbes(filter, heavy, best)
	if err != nil {
		return fmt.Errorf("perf probes: %w", err)
	}
	report.Probes = probes
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d experiments, %d probes)\n",
		path, len(report.Experiments), len(report.Probes))
	return nil
}

// probeTarget is one probe's instance plus the checker configuration it
// runs under.
type probeTarget struct {
	name string
	prog *program.Program
	s, t *program.Predicate
	// options configure the space tier; a tracer is prepended per run.
	options []verify.Option
	// spill marks targets that need a private temp directory for segment
	// files, created per run and removed after.
	spill bool
}

// fastTargets are the three in-RAM instances the performance claims in
// README/DESIGN are made on: the 1M-state diffusing tree, Dijkstra's
// 5.7M-state printed ring, and a 2M-state path instance of the
// token-ring family. The CI bench guard compares exactly these.
func fastTargets() ([]probeTarget, error) {
	var targets []probeTarget

	diff, err := diffusing.New(diffusing.Binary(10))
	if err != nil {
		return nil, err
	}
	d := diff.Design
	targets = append(targets, probeTarget{name: "diffusing-binary10", prog: d.TolerantProgram(), s: d.S, t: d.T})

	ring, err := tokenring.NewRing(7, 7)
	if err != nil {
		return nil, err
	}
	targets = append(targets, probeTarget{name: "tokenring-ring-n7k7", prog: ring.P, s: ring.S})

	path, err := tokenring.NewPath(6, 8)
	if err != nil {
		return nil, err
	}
	pd := path.Design
	targets = append(targets, probeTarget{name: "tokenring-path-n6k8", prog: pd.TolerantProgram(), s: pd.S, t: pd.T})
	return targets, nil
}

// heavyTargets are the beyond-RAM ladder probes:
//
//   - tokenring-ring-n7k9-quotient: 9^8 = 43,046,721 full states whose
//     full CSR costs 1.26 GB; the value-rotation quotient checks the same
//     verdict on 9^7 representatives with ~1/9 the index memory.
//   - diffusing-binary13-{spill,fallback}: 4^13 = 67,108,864 states whose
//     full CSR (~3.4 GB) busts the 2 GiB in-RAM budget. The pair runs the
//     metrics suite — the passes that re-stream the transition graph —
//     once on mmap'd CSR segments and once on the on-the-fly fallback the
//     same instance used before the spill tier existed.
func heavyTargets() ([]probeTarget, error) {
	var targets []probeTarget

	ring, err := registry.Build("tokenring-ring", registry.Params{N: 7, K: 9})
	if err != nil {
		return nil, err
	}
	if ring.Symmetry == nil {
		return nil, fmt.Errorf("tokenring-ring advertises no symmetry group")
	}
	targets = append(targets, probeTarget{
		name: "tokenring-ring-n7k9-quotient", prog: ring.Program, s: ring.S, t: ring.T,
		options: []verify.Option{
			verify.WithSpaceMode(verify.SpaceQuotient),
			verify.WithSymmetry(ring.Symmetry),
		},
	})

	diff, err := diffusing.New(diffusing.Binary(13))
	if err != nil {
		return nil, err
	}
	d := diff.Design
	targets = append(targets,
		probeTarget{
			name: "diffusing-binary13-spill-metrics", prog: d.TolerantProgram(), s: d.S, t: d.T,
			options: []verify.Option{
				verify.WithSpaceMode(verify.SpaceSpill),
				verify.WithMetrics(),
				verify.WithMaxStates(1 << 27),
			},
			spill: true,
		},
		probeTarget{
			name: "diffusing-binary13-fallback-metrics", prog: d.TolerantProgram(), s: d.S, t: d.T,
			options: []verify.Option{
				verify.WithSpaceMode(verify.SpaceFull),
				verify.WithMetrics(),
				verify.WithMaxStates(1 << 27),
			},
		},
	)
	return targets, nil
}

// runProbes measures the checker end-to-end on each selected target,
// keeping the fastest of best repetitions.
func runProbes(filter string, heavy bool, best int) ([]benchProbe, error) {
	targets, err := fastTargets()
	if err != nil {
		return nil, err
	}
	if heavy {
		ht, err := heavyTargets()
		if err != nil {
			return nil, err
		}
		targets = append(targets, ht...)
	}
	if best < 1 {
		best = 1
	}

	var probes []benchProbe
	for _, tg := range targets {
		if filter != "" && !strings.Contains(tg.name, filter) {
			continue
		}
		var fastest *benchProbe
		for rep := 0; rep < best; rep++ {
			probe, err := runProbe(tg)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", tg.name, err)
			}
			if fastest == nil || probe.ElapsedMS < fastest.ElapsedMS {
				fastest = probe
			}
		}
		fmt.Printf("probe %-40s %12d states %9.0fms\n", fastest.Name, fastest.States, fastest.ElapsedMS)
		probes = append(probes, *fastest)
	}
	return probes, nil
}

// runProbe executes one measured Check, collecting the pass spans and the
// space tier's footprint counters.
func runProbe(tg probeTarget) (*benchProbe, error) {
	collector := &obs.Collector{}
	opts := append([]verify.Option{verify.WithTracer(collector)}, tg.options...)
	if tg.spill {
		dir, err := os.MkdirTemp("", "csbench-spill-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		opts = append(opts, verify.WithSpillDir(dir))
	}
	start := time.Now()
	rep, err := verify.Check(context.Background(), tg.prog, tg.s, tg.t, opts...)
	if err != nil {
		return nil, err
	}
	defer rep.Close()
	probe := &benchProbe{
		Name:      tg.name,
		States:    rep.Space.Count,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
		Passes:    collector.Passes(),
	}
	if mode := rep.Space.Mode(); mode != verify.SpaceFull {
		probe.Mode = mode.String()
	}
	if rep.Space.FullCount != rep.Space.Count {
		probe.FullStates = rep.Space.FullCount
	}
	_, probe.QuotientBytes = rep.Space.QuotientStats()
	probe.SegmentBytes, probe.SpooledBytes = rep.Space.SpillStats()
	for _, p := range probe.Passes {
		if p.Pass == verify.PassSuccTable {
			probe.Edges, probe.Bytes = p.Edges, p.Bytes
		}
	}
	return probe, nil
}
