// Command csbench regenerates the paper-claim reproduction suite: every
// experiment in EXPERIMENTS.md (E1..E10) and every ablation (A1..A3), as
// indexed in DESIGN.md.
//
// Usage:
//
//	csbench            # run everything
//	csbench -e E5      # run one experiment
//	csbench -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nonmask/internal/experiments"
)

func main() {
	var (
		one  = flag.String("e", "", "run a single experiment by id (e.g. E5)")
		list = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-70s [%s]\n", e.ID, e.Title, e.PaperRef)
		}
		return
	}

	todo := experiments.All()
	if *one != "" {
		e, err := experiments.ByID(*one)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		todo = []*experiments.Experiment{e}
	}

	failed := 0
	for _, e := range todo {
		start := time.Now()
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Printf("%s\n", tbl)
		fmt.Printf("[%s done in %v — %s]\n\n", e.ID, time.Since(start).Round(time.Millisecond), e.PaperRef)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
