package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"nonmask/internal/metrics"
	"nonmask/internal/obs"
	"nonmask/internal/protocols/registry"
	"nonmask/internal/service"
	"nonmask/internal/service/client"
)

// loadMix is the self-benchmark's workload: a handful of distinct
// instances cycled by every client, so after the first lap almost every
// submission is a cache hit — the mixed cached/uncached profile a shared
// verification service sees in practice.
var loadMix = []service.JobSpec{
	{Protocol: "tokenring-ring", Params: registry.Params{N: 3, K: 5}},
	{Protocol: "tokenring-path", Params: registry.Params{N: 3, K: 5}},
	{Protocol: "threestate", Params: registry.Params{N: 5}},
	{Protocol: "fourstate", Params: registry.Params{N: 4}},
	{Protocol: "diffusing", Params: registry.Params{N: 5, Tree: "binary"}},
	{Protocol: "xyz", Params: registry.Params{Variant: "out-tree"}},
	{Protocol: "composed", Params: registry.Params{N: 3, Graph: "line"}},
}

// runLoad starts an in-process server on a loopback port and hammers it
// with jobs concurrent submissions from clients goroutines, then prints
// latency and counter tables. It exercises the same HTTP path as external
// traffic (real sockets, JSON both ways).
func runLoad(cfg service.Config, jobs, clients int) error {
	if jobs <= 0 || clients <= 0 {
		return fmt.Errorf("load mode needs positive -load-jobs and -load-clients")
	}
	svc := service.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	fmt.Printf("csserved -load: %d jobs, %d clients, mix of %d instances, queue %d, executors %d\n",
		jobs, clients, len(loadMix), cfg.QueueSize, cfg.Executors)

	// Live progress rides the server's own event firehose over the real
	// SSE path — the same stream an operator would curl mid-run. The
	// watcher ends when drain closes the bus below.
	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	watched := make(chan int, 1)
	go func() { watched <- watchLoad(watchCtx, ts.URL, jobs) }()

	var (
		mu        sync.Mutex
		submitMS  []float64 // submit round trip (admission or cache hit)
		totalMS   []float64 // submit → terminal state
		hits      int
		retries   int
		failures  []string
		wg        sync.WaitGroup
		next      = make(chan int)
		transport = &http.Transport{MaxIdleConnsPerHost: clients}
	)
	go func() {
		for i := 0; i < jobs; i++ {
			next <- i
		}
		close(next)
	}()

	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := client.New(ts.URL, &http.Client{Transport: transport})
			ctx := context.Background()
			for i := range next {
				spec := loadMix[i%len(loadMix)]
				t0 := time.Now()
				st, err := c.Submit(ctx, spec)
				if apiErr, ok := err.(*client.APIError); ok && apiErr.IsRetryable() {
					// Queue full: back off and resubmit — the client-side
					// half of the admission-control contract.
					mu.Lock()
					retries++
					mu.Unlock()
					time.Sleep(5 * time.Millisecond)
					st, err = c.Submit(ctx, spec)
				}
				if err != nil {
					mu.Lock()
					failures = append(failures, err.Error())
					mu.Unlock()
					continue
				}
				submitted := time.Since(t0)
				if st.State != service.StateDone {
					st, err = c.Wait(ctx, st.ID)
				}
				total := time.Since(t0)
				mu.Lock()
				submitMS = append(submitMS, float64(submitted.Microseconds())/1000)
				totalMS = append(totalMS, float64(total.Microseconds())/1000)
				if st.Cached {
					hits++
				}
				if err != nil || st.State != service.StateDone {
					failures = append(failures, fmt.Sprintf("job %s: state %s err %v", st.ID, st.State, err))
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain after load: %w", err)
	}
	// Drain closed the bus, which ends the firehose stream cleanly; the
	// watcher hands back how many terminal job events it streamed.
	seen := <-watched
	fmt.Printf("csserved -load: %d terminal job events streamed over /v1/events\n", seen)

	sub := metrics.Summarize(submitMS)
	tot := metrics.Summarize(totalMS)
	check := svc.Metrics().LatencySummary()
	tbl := metrics.NewTable(
		fmt.Sprintf("latency (ms) — %d jobs in %v (%.0f jobs/s)",
			len(totalMS), elapsed.Round(time.Millisecond), float64(len(totalMS))/elapsed.Seconds()),
		"path", "n", "min", "median", "mean", "p95", "p99", "max")
	row := func(name string, s metrics.Summary) {
		tbl.AddRow(name, fmt.Sprint(s.N),
			fmt.Sprintf("%.3f", s.Min), fmt.Sprintf("%.3f", s.Median), fmt.Sprintf("%.3f", s.Mean),
			fmt.Sprintf("%.3f", s.P95), fmt.Sprintf("%.3f", s.P99), fmt.Sprintf("%.3f", s.Max))
	}
	row("submit", sub)
	row("submit+wait", tot)
	row("check (server)", metrics.Summary{
		N: check.N, Min: check.Min * 1000, Max: check.Max * 1000, Mean: check.Mean * 1000,
		Std: check.Std * 1000, Median: check.Median * 1000, P95: check.P95 * 1000, P99: check.P99 * 1000,
	})
	tbl.Note("%d/%d cache hits, %d retries after 429, %d failures",
		hits, len(totalMS), retries, len(failures))
	fmt.Print(tbl.String())

	m := svc.Metrics()
	counters := metrics.NewTable("server counters",
		"submitted", "completed", "failed", "canceled", "rejected", "cache hits", "cache misses")
	counters.AddRow(
		fmt.Sprint(m.Submitted.Load()), fmt.Sprint(m.Completed.Load()), fmt.Sprint(m.Failed.Load()),
		fmt.Sprint(m.Canceled.Load()), fmt.Sprint(m.Rejected.Load()),
		fmt.Sprint(m.CacheHits.Load()), fmt.Sprint(m.CacheMisses.Load()))
	fmt.Print(counters.String())

	if len(failures) > 0 {
		for i, f := range failures {
			if i >= 5 {
				fmt.Printf("... and %d more failures\n", len(failures)-5)
				break
			}
			fmt.Println("failure:", f)
		}
		return fmt.Errorf("%d of %d jobs failed", len(failures), jobs)
	}
	return nil
}

// watchLoad tails the server's job firehose (GET /v1/events?types=job),
// printing a live completion line at every tenth of the workload. It
// returns the number of terminal job events streamed; the feed ends when
// drain closes the event bus or ctx is canceled.
func watchLoad(ctx context.Context, base string, total int) (terminal int) {
	c := client.New(base, nil)
	w, err := c.WatchEvents(ctx, 0, obs.EventJob)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csserved -load: event watch:", err)
		return 0
	}
	defer w.Close()
	step := total / 10
	if step < 1 {
		step = 1
	}
	for {
		ev, done, err := w.Next()
		if done || err != nil {
			return terminal
		}
		if ev.Type == obs.EventJob && service.JobState(ev.State).Terminal() {
			terminal++
			if terminal%step == 0 {
				fmt.Fprintf(os.Stderr, "csserved -load: %d/%d jobs finished (live via /v1/events)\n",
					terminal, total)
			}
		}
	}
}
