// Command csserved serves verification jobs over HTTP: GCL sources or
// named built-in protocol instances are compiled, queued, model-checked
// through verify.Check, and content-address cached, so repeated
// submissions of the same instance are answered in microseconds.
//
// Usage:
//
//	csserved                                  # serve on 127.0.0.1:8080
//	csserved -addr :9090 -queue 128 -executors 8
//	csserved -store ./verdicts                # crash-safe persistent results
//	csserved -log debug -pprof                # per-pass spans + /debug/pprof/
//	csserved -load -load-jobs 200 -load-clients 8   # self-benchmark
//	csserved -peers http://a:8080,http://b:8080 -self http://a:8080 \
//	         -cluster-token secret -store ./verdicts   # replica of a cluster
//
// Endpoints: POST /v1/jobs, GET /v1/jobs[?limit=&offset=],
// GET /v1/jobs/{id}[?wait=2s], DELETE /v1/jobs/{id}, POST /v1/batches,
// GET /v1/batches/{id}[?wait=5s], DELETE /v1/batches/{id},
// GET /v1/jobs/{id}/events and /v1/batches/{id}/events (SSE streams,
// replay + live tail), GET /v1/events (SSE firehose, ?types= filters),
// GET /v1/protocols, GET /v1/version, GET /healthz (liveness),
// GET /readyz (readiness; 503 while draining), POST /v1/replicate
// (peer anti-entropy), GET /metrics (including per-pass latency
// histograms). With -pprof, net/http/pprof is mounted under
// /debug/pprof/.
//
// With -peers, the server is one replica of a static cluster: job
// fingerprints map to owner nodes by rendezvous hashing, submissions
// and id-addressed reads are forwarded or proxied to the owner, and
// (with -store) an anti-entropy loop converges every replica's verdict
// store, so any node answers for any cached fingerprint even after the
// owner dies. -tokens-file adds bearer-token tenants with per-tenant
// rate limits and in-flight quotas; jobs may submit with
// options.priority "high" to preempt queue order.
//
// With -store DIR, every verdict is written through to an append-only,
// CRC-checksummed log in DIR, recovered on boot, and served read-through
// on cache misses, so a restarted server answers previously checked
// instances without re-verification.
//
// SIGINT/SIGTERM drain gracefully: new submissions get 503, queued jobs
// are canceled, in-flight checks finish (up to -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nonmask/internal/cluster"
	"nonmask/internal/service"
	"nonmask/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		queueSize    = flag.Int("queue", 64, "job queue bound; submissions beyond it get 429")
		executors    = flag.Int("executors", 4, "concurrent check executors")
		checkWorkers = flag.Int("check-workers", 0, "default verify workers per check (0 = all CPUs)")
		maxStates    = flag.Int64("max-states", 0, "default state-space cap (0 = verify default)")
		maxDeadline  = flag.Duration("max-deadline", 60*time.Second, "per-job wall-clock budget cap")
		spillDir     = flag.String("spill-dir", "", "directory for the checker's disk tier (CSR segments, frontier runs) when jobs escalate to spill mode (empty = OS temp dir)")
		cacheSize    = flag.Int("cache", 1024, "content-addressed result cache entries")
		recordTTL    = flag.Duration("record-ttl", 0, "finished job record retention (0 = 15m default, negative disables the sweep)")
		storeDir     = flag.String("store", "", "persistent verdict store directory; verdicts survive restarts and warm the cache (empty = memory only)")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight checks")
		logLevel     = flag.String("log", "info", "structured log level on stderr: debug | info | warn | error | off (debug includes per-pass spans and request logs)")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the service address")
		eventHist    = flag.Int("event-history", 0, "retained events per stream for SSE replay (0 = 1024 default)")
		eventBuf     = flag.Int("event-buffer", 0, "per-subscriber event buffer; slow consumers drop beyond it (0 = 256 default)")
		progressIvl  = flag.Duration("progress-interval", 0, "progress event sampling interval (0 = 250ms default, negative disables)")
		heartbeat    = flag.Duration("heartbeat", 0, "SSE keepalive comment interval (0 = 15s default)")

		peers        = flag.String("peers", "", "comma-separated replica base URLs (self included) for cluster mode; empty = single node")
		self         = flag.String("self", "", "this node's advertised base URL; must appear in -peers")
		clusterToken = flag.String("cluster-token", "", "shared secret peers authenticate forwarded and replication calls with")
		tokensFile   = flag.String("tokens-file", "", "bearer-token file enabling tenant auth: \"<token> <tenant> [quota=N] [rate=R] [burst=B]\" per line")
		replicateIvl = flag.Duration("replicate-interval", 0, "anti-entropy pull cadence between replica stores (0 = 2s default; needs -peers and -store)")
		drainGrace   = flag.Duration("drain-grace", 0, "how long shutdown keeps admitting after /readyz drops, so routers stop sending first")

		load        = flag.Bool("load", false, "self-benchmark: hammer an in-process server and print a latency table")
		loadJobs    = flag.Int("load-jobs", 200, "load mode: total submissions")
		loadClients = flag.Int("load-clients", 8, "load mode: concurrent clients")
	)
	flag.Parse()

	logger, err := buildLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csserved:", err)
		os.Exit(2)
	}

	cfg := service.Config{
		QueueSize:        *queueSize,
		Executors:        *executors,
		CheckWorkers:     *checkWorkers,
		MaxStates:        *maxStates,
		MaxDeadline:      *maxDeadline,
		SpillDir:         *spillDir,
		CacheSize:        *cacheSize,
		RecordTTL:        *recordTTL,
		EventHistory:     *eventHist,
		EventBuffer:      *eventBuf,
		ProgressInterval: *progressIvl,
		Heartbeat:        *heartbeat,
		Logger:           logger,
		ClusterToken:     *clusterToken,
		DrainGrace:       *drainGrace,
	}
	if *tokensFile != "" {
		tenants, err := service.LoadTenantsFile(*tokensFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "csserved: tokens file:", err)
			os.Exit(1)
		}
		cfg.Tenants = tenants
		fmt.Printf("csserved: auth on: %d tenants loaded from %s\n", len(tenants.Names()), *tokensFile)
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{Logger: logger})
		if err != nil {
			fmt.Fprintln(os.Stderr, "csserved: open store:", err)
			os.Exit(1)
		}
		defer st.Close()
		stats := st.Stats()
		fmt.Printf("csserved: store %s: %d verdicts recovered", *storeDir, stats.RecoveredRecords)
		if stats.SkippedCorrupt > 0 || stats.TruncatedBytes > 0 {
			fmt.Printf(" (%d corrupt records skipped, %d torn-tail bytes truncated)",
				stats.SkippedCorrupt, stats.TruncatedBytes)
		}
		fmt.Println()
		cfg.Store = st
	}

	if *peers != "" {
		cl, err := cluster.New(cluster.Config{
			Self:              *self,
			Peers:             strings.Split(*peers, ","),
			ClusterToken:      *clusterToken,
			Store:             cfg.Store,
			ReplicateInterval: *replicateIvl,
			Logger:            logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "csserved:", err)
			os.Exit(1)
		}
		cfg.NodeName = cl.NodeName()
		cfg.Router = cl
		cl.Start()
		defer cl.Close()
		fmt.Printf("csserved: cluster node %s of %v\n", cl.NodeName(), cl.Nodes())
	}

	if *load {
		if err := runLoad(cfg, *loadJobs, *loadClients); err != nil {
			fmt.Fprintln(os.Stderr, "csserved:", err)
			os.Exit(1)
		}
		return
	}
	if err := serve(*addr, cfg, *drainWait, *pprofOn); err != nil {
		fmt.Fprintln(os.Stderr, "csserved:", err)
		os.Exit(1)
	}
}

// buildLogger makes the stderr text logger for -log, or a discarding one
// for "off" (service.Config treats a nil Logger as discard).
func buildLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	case "off":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown -log level %q (want debug | info | warn | error | off)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

func serve(addr string, cfg service.Config, drainWait time.Duration, pprofOn bool) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	svc := service.New(cfg)
	handler := svc.Handler()
	if pprofOn {
		// Opt-in only: the profiling endpoints expose stacks and heap
		// contents, so they stay off unless -pprof is set.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	httpSrv := &http.Server{Handler: handler}

	// The bound address line is load-bearing: the CI smoke test (and any
	// script using port 0) scrapes the port from it.
	fmt.Printf("csserved: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Println("csserved: draining (queued jobs canceled, in-flight checks finishing)")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	// Drain the job queue first so in-flight checks finish, then close the
	// HTTP side (which waits for response writers).
	svcErr := svc.Shutdown(drainCtx)
	httpErr := httpSrv.Shutdown(drainCtx)
	if svcErr != nil {
		return fmt.Errorf("drain: %w", svcErr)
	}
	if httpErr != nil && !errors.Is(httpErr, http.ErrServerClosed) {
		return fmt.Errorf("http shutdown: %w", httpErr)
	}
	fmt.Println("csserved: drained, bye")
	return nil
}
