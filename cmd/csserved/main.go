// Command csserved serves verification jobs over HTTP: GCL sources or
// named built-in protocol instances are compiled, queued, model-checked
// through verify.Check, and content-address cached, so repeated
// submissions of the same instance are answered in microseconds.
//
// Usage:
//
//	csserved                                  # serve on 127.0.0.1:8080
//	csserved -addr :9090 -queue 128 -executors 8
//	csserved -load -load-jobs 200 -load-clients 8   # self-benchmark
//
// Endpoints: POST /v1/jobs, GET /v1/jobs/{id}[?wait=2s],
// DELETE /v1/jobs/{id}, GET /v1/protocols, GET /healthz, GET /metrics.
//
// SIGINT/SIGTERM drain gracefully: new submissions get 503, queued jobs
// are canceled, in-flight checks finish (up to -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nonmask/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		queueSize    = flag.Int("queue", 64, "job queue bound; submissions beyond it get 429")
		executors    = flag.Int("executors", 4, "concurrent check executors")
		checkWorkers = flag.Int("check-workers", 0, "default verify workers per check (0 = all CPUs)")
		maxStates    = flag.Int64("max-states", 0, "default state-space cap (0 = verify default)")
		maxDeadline  = flag.Duration("max-deadline", 60*time.Second, "per-job wall-clock budget cap")
		cacheSize    = flag.Int("cache", 1024, "content-addressed result cache entries")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight checks")

		load        = flag.Bool("load", false, "self-benchmark: hammer an in-process server and print a latency table")
		loadJobs    = flag.Int("load-jobs", 200, "load mode: total submissions")
		loadClients = flag.Int("load-clients", 8, "load mode: concurrent clients")
	)
	flag.Parse()

	cfg := service.Config{
		QueueSize:    *queueSize,
		Executors:    *executors,
		CheckWorkers: *checkWorkers,
		MaxStates:    *maxStates,
		MaxDeadline:  *maxDeadline,
		CacheSize:    *cacheSize,
	}

	if *load {
		if err := runLoad(cfg, *loadJobs, *loadClients); err != nil {
			fmt.Fprintln(os.Stderr, "csserved:", err)
			os.Exit(1)
		}
		return
	}
	if err := serve(*addr, cfg, *drainWait); err != nil {
		fmt.Fprintln(os.Stderr, "csserved:", err)
		os.Exit(1)
	}
}

func serve(addr string, cfg service.Config, drainWait time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	svc := service.New(cfg)
	httpSrv := &http.Server{Handler: svc.Handler()}

	// The bound address line is load-bearing: the CI smoke test (and any
	// script using port 0) scrapes the port from it.
	fmt.Printf("csserved: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Println("csserved: draining (queued jobs canceled, in-flight checks finishing)")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	// Drain the job queue first so in-flight checks finish, then close the
	// HTTP side (which waits for response writers).
	svcErr := svc.Shutdown(drainCtx)
	httpErr := httpSrv.Shutdown(drainCtx)
	if svcErr != nil {
		return fmt.Errorf("drain: %w", svcErr)
	}
	if httpErr != nil && !errors.Is(httpErr, http.ErrServerClosed) {
		return fmt.Errorf("http shutdown: %w", httpErr)
	}
	fmt.Println("csserved: drained, bye")
	return nil
}
