// Command csverify validates and model-checks a built-in protocol
// instance: it reports which of the paper's theorems (1, 2, 3) applies to
// the design, the exact closure/convergence verdicts under arbitrary and
// weakly fair daemons, and the masking/nonmasking classification.
//
// Instances come from the shared catalog in internal/protocols/registry —
// the same catalog csserved serves over HTTP — so `csverify -protocol X`
// and `POST /v1/jobs {"protocol":"X"}` check the identical program.
//
// Usage:
//
//	csverify -protocol diffusing -n 7
//	csverify -protocol tokenring-path -n 3 -k 4
//	csverify -protocol tokenring-ring -n 4 -k 6
//	csverify -protocol spanningtree -n 4 -graph complete
//	csverify -protocol xyz -variant out-tree
//	csverify -protocol composed -n 4 -graph ring
//	csverify -protocol threestate -n 5 -json
//	csverify -watch http://127.0.0.1:8080 j-17
//	csverify -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"nonmask/internal/core"
	"nonmask/internal/obs"
	"nonmask/internal/protocols/registry"
	"nonmask/internal/saboteur"
	"nonmask/internal/service"
	"nonmask/internal/service/client"
	"nonmask/internal/store"
	"nonmask/internal/verify"
)

func main() {
	var (
		protocol  = flag.String("protocol", "diffusing", "protocol name (see -list): "+strings.Join(registry.Names(), " | "))
		n         = flag.Int("n", 5, "instance size (nodes; ring/path: highest index)")
		k         = flag.Int("k", 0, "counter domain size for token rings (default n+2)")
		tree      = flag.String("tree", "binary", "tree shape for tree protocols: chain | star | binary | random")
		graphStr  = flag.String("graph", "line", "graph for graph protocols: line | ring | complete | grid")
		variant   = flag.String("variant", "out-tree", "xyz variant: interfering | out-tree | ordered")
		seed      = flag.Int64("seed", 1, "seed for random topologies")
		strategy  = flag.String("strategy", "projected", "preservation strategy: projected | exhaustive")
		workers   = flag.Int("workers", 0, "goroutines sharding the checker's passes (0 = all CPUs, 1 = sequential)")
		maxStates = flag.Int64("max-states", 0, fmt.Sprintf("state-space cap (0 = default %d)", verify.DefaultMaxStates))
		spaceMode = flag.String("space-mode", "auto", "state-space tier: auto (escalate full -> quotient -> spill as the instance outgrows RAM) | full | quotient | spill")
		spillDir  = flag.String("spill-dir", "", "directory for the disk tier's CSR segments and frontier runs (empty = OS temp dir)")
		quotMap   = flag.String("quotient-map", "fingerprint", "quotient representative lookup: fingerprint (64-bit, refuses on collision) | exact (binary search)")
		jsonOut   = flag.Bool("json", false, "emit the machine-readable service.Result JSON instead of prose")
		measure   = flag.Bool("measure", false, "additionally run the quantitative tolerance metrics (distance profile, worst/expected stabilization time, per-constraint recovery costs)")
		storeDir  = flag.String("store", "", "persistent verdict store directory shared with csserved; hits skip the check")
		sabotage  = flag.Int("sabotage", 0, "fault budget k: additionally search for the worst k-fault schedule (0 = off)")
		objective = flag.String("objective", "recovery", "saboteur objective: recovery | escape")
		budget    = flag.Int64("budget", 0, fmt.Sprintf("saboteur node-expansion budget (0 = default %d)", saboteur.DefaultBudget))
		witOut    = flag.String("witness-out", "", "write the saboteur witness JSON to this file (replay with cssim -replay)")
		trace     = flag.Bool("trace", false, "print the per-pass span table (states, frontier, wall time) on stderr")
		progress  = flag.Bool("progress", false, "stream live per-pass progress lines on stderr")
		watch     = flag.String("watch", "", "tail a remote csserved job's event stream: -watch URL JOB-ID")
		list      = flag.Bool("list", false, "list the protocol catalog and exit")
	)
	flag.Parse()

	if *watch != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: csverify -watch URL JOB-ID")
			os.Exit(2)
		}
		if err := runWatch(*watch, flag.Arg(0)); err != nil {
			fmt.Fprintln(os.Stderr, "csverify:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range registry.Entries() {
			fmt.Printf("%-16s %s (defaults: %s)\n", e.Name, e.Description, e.Normalize(registry.Params{}))
		}
		return
	}

	opts := verify.Options{Workers: *workers, MaxStates: *maxStates, Metrics: *measure, SpillDir: *spillDir}
	if *strategy == "exhaustive" {
		opts.Strategy = verify.Exhaustive
	} else {
		opts.Strategy = verify.Projected
	}
	var flagErr error
	if opts.SpaceMode, flagErr = verify.ParseSpaceMode(*spaceMode); flagErr != nil {
		fmt.Fprintln(os.Stderr, "csverify:", flagErr)
		os.Exit(2)
	}
	if opts.QuotientMap, flagErr = verify.ParseQuotientMap(*quotMap); flagErr != nil {
		fmt.Fprintln(os.Stderr, "csverify:", flagErr)
		os.Exit(2)
	}
	// -trace collects every pass span the check emits (including stair and
	// fair-convergence follow-ups, which inherit the options' tracer) and
	// prints the table after the verdict; -progress samples the hot loops'
	// shared counter twice a second. Both write stderr, so -json output
	// stays parseable.
	var collector *obs.Collector
	if *trace {
		collector = &obs.Collector{}
		opts.Tracer = collector
	}
	stopProgress := func() {}
	if *progress {
		p := &obs.Progress{}
		opts.Progress = p
		stopProgress = p.Watch(500*time.Millisecond, func(s obs.Snapshot) {
			printSnapshot("csverify", s)
		})
	}

	params := registry.Params{N: *n, K: *k, Tree: *tree, Graph: *graphStr, Variant: *variant, Seed: *seed}
	var err error
	switch {
	case *sabotage != 0:
		if *storeDir != "" {
			err = fmt.Errorf("-sabotage does not combine with -store (witnesses are not store records)")
		} else {
			sabOpts := saboteur.Options{K: *sabotage, Objective: *objective, Budget: *budget}
			err = runSabotage(*protocol, params, opts, sabOpts, *jsonOut, *witOut)
		}
	case *storeDir != "":
		err = runStored(*protocol, params, opts, *jsonOut, *storeDir)
	default:
		err = run(*protocol, params, opts, *jsonOut)
	}
	stopProgress()
	if collector != nil {
		fmt.Fprint(os.Stderr, obs.FormatTable(collector.Passes()))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "csverify:", err)
		os.Exit(1)
	}
}

// runWatch tails a remote job's SSE stream: the same per-pass lines
// -progress prints locally, the same span table -trace prints, but fed by
// a csserved across the network. The stream replays retained history
// first, so attaching after completion still renders the full run.
func runWatch(baseURL, jobID string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	c := client.New(baseURL, nil)
	state, detail, stats, err := c.TailJob(ctx, jobID, 0, os.Stderr)
	if err != nil {
		return err
	}
	if len(stats) > 0 {
		fmt.Fprint(os.Stderr, obs.FormatTable(stats))
	}
	fmt.Printf("job %s: %s", jobID, state)
	if detail != "" {
		fmt.Printf(" (%s)", detail)
	}
	fmt.Println()
	if state != service.StateDone {
		return fmt.Errorf("job finished %s", state)
	}
	return nil
}

// printSnapshot renders one -progress ticker line.
func printSnapshot(prefix string, s obs.Snapshot) {
	if s.Pass == "" {
		return
	}
	if s.Total > 0 {
		fmt.Fprintf(os.Stderr, "%s: %-16s %d/%d states in %v (%s/s)\n",
			prefix, s.Pass, s.Done, s.Total, s.Elapsed.Round(time.Millisecond), rateString(s.Rate()))
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %-16s %d states in %v (%s/s)\n",
		prefix, s.Pass, s.Done, s.Elapsed.Round(time.Millisecond), rateString(s.Rate()))
}

// byteString compacts a byte count for the disk-tier summary line.
func byteString(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// rateString compacts a states/second figure for the ticker line.
func rateString(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.1fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	default:
		return fmt.Sprintf("%.0f", r)
	}
}

// applySymmetry attaches the instance's advertised symmetry group to the
// options under the same soundness policy csserved applies: no quotient
// under the saboteur (the witness must replay on concrete states) and no
// quotient when per-constraint metrics run on a layered design (the
// constraint predicates are permuted by the group, not preserved — see
// registry.Instance.Symmetry). Auto mode silently stays on the full/spill
// ladder in those cases; an explicit -space-mode quotient errors with the
// reason.
func applySymmetry(opts verify.Options, inst *registry.Instance, sabotage bool) (verify.Options, error) {
	sym := inst.Symmetry
	switch {
	case sabotage:
		if opts.SpaceMode == verify.SpaceQuotient {
			return opts, fmt.Errorf("-space-mode quotient does not combine with -sabotage: the fault-schedule witness must replay on concrete states, not orbit representatives")
		}
		sym = nil
	case opts.Metrics && len(registry.ConstraintSpecs(inst)) > 0:
		if opts.SpaceMode == verify.SpaceQuotient {
			return opts, fmt.Errorf("-space-mode quotient does not combine with -measure on a layered design: per-constraint recovery costs are not symmetry-invariant")
		}
		sym = nil
	}
	if opts.SpaceMode == verify.SpaceQuotient && sym == nil {
		return opts, fmt.Errorf("%s advertises no symmetry group; -space-mode quotient needs one", inst.Name)
	}
	opts.Symmetry = sym
	return opts, nil
}

func run(protocol string, params registry.Params, opts verify.Options, jsonOut bool) error {
	inst, err := registry.Build(protocol, params)
	if err != nil {
		return err
	}
	if jsonOut {
		if opts, err = applySymmetry(opts, inst, false); err != nil {
			return err
		}
		return verifyJSON(inst, opts)
	}
	if inst.Design != nil {
		// The prose design path runs theorem validation and per-constraint
		// closure/preservation scans, which evaluate node-indexed predicates
		// the quotient does not preserve; it never engages the symmetry
		// tier. The unified Check path behind -json does.
		if opts.SpaceMode == verify.SpaceQuotient {
			return fmt.Errorf("the design-validation output evaluates per-constraint predicates, which are not symmetry-invariant; use -json for the quotient check")
		}
		return verifyDesign(inst.Design, opts)
	}
	if opts, err = applySymmetry(opts, inst, false); err != nil {
		return err
	}
	return verifyPlain(inst, opts)
}

// runSabotage checks the instance, then runs the adversarial
// fault-schedule search on the same enumerated space and reports the
// worst k-fault schedule it proved. The witness (when the schedule does
// damage) can be written out for cssim -replay.
func runSabotage(protocol string, params registry.Params, opts verify.Options,
	sabOpts saboteur.Options, jsonOut bool, witOut string) error {
	normalized, err := registry.Normalize(protocol, params)
	if err != nil {
		return err
	}
	// Same pre-queue gate the service applies: the search enumerates the
	// full space, so the advertised bound is enforced up front.
	if err := registry.ValidateAnalyses(protocol, normalized,
		[]string{registry.AnalysisSaboteur}, opts.MaxStates); err != nil {
		return err
	}
	inst, err := registry.Build(protocol, normalized)
	if err != nil {
		return err
	}
	if opts, err = applySymmetry(opts, inst, true); err != nil {
		return err
	}
	ctx := context.Background()
	rep, err := verify.Check(ctx, inst.Program, inst.S, inst.T,
		verify.WithOptions(opts), verify.WithConstraints(registry.ConstraintSpecs(inst)...))
	if err != nil {
		return err
	}
	defer rep.Close()
	sabRes, err := saboteur.Search(ctx, rep.Space, sabOpts)
	if err != nil {
		return err
	}
	if w := sabRes.Witness; w != nil {
		// Stamp the catalog identity so the witness file alone rebuilds
		// the instance.
		w.Protocol = protocol
		w.Params = &normalized
		if witOut != "" {
			enc, err := w.Encode()
			if err != nil {
				return err
			}
			if err := os.WriteFile(witOut, enc, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "csverify: witness (%d fault + %d recovery steps) written to %s\n",
				len(w.Steps), len(w.Recovery), witOut)
		}
	} else if witOut != "" {
		fmt.Fprintf(os.Stderr, "csverify: no witness to write (no %d-fault schedule does damage)\n", sabRes.K)
	}
	if jsonOut {
		res := service.ResultFromReport(inst.Name, rep)
		res.Saboteur = service.SaboteurResultFrom(sabRes)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Printf("program %s: %d states\n", inst.Name, rep.Space.Count)
	fmt.Printf("convergence: %s\n", rep.Unfair.Summary())
	status := "optimal within k"
	if !sabRes.Optimal {
		status = fmt.Sprintf("budget %d exhausted, incumbent only", sabOpts.Budget)
	}
	switch sabRes.Objective {
	case saboteur.ObjectiveEscape:
		if sabRes.Escaped {
			fmt.Printf("saboteur: escape with %d faults (%s; expanded %d nodes)\n",
				sabRes.Cost, status, sabRes.Expanded)
		} else {
			fmt.Printf("saboteur: T confines every %d-fault schedule (%s; expanded %d nodes)\n",
				sabRes.K, status, sabRes.Expanded)
		}
	default:
		fmt.Printf("saboteur: worst %d-fault schedule forces %d recovery steps (%s; expanded %d nodes, %d rounds, Δmax %d)\n",
			sabRes.K, sabRes.Cost, status, sabRes.Expanded, sabRes.Rounds, sabRes.DeltaMax)
	}
	fmt.Printf("search time: %v\n", sabRes.Elapsed)
	return nil
}

// runStored checks a protocol instance through the shared persistent
// verdict store: the key is the same content-address csserved uses
// (protocol + normalized params + semantic options), so a verdict computed
// by either tool answers the other without re-verification. A store hit
// skips the check entirely; a miss runs it and appends the verdict.
func runStored(protocol string, params registry.Params, opts verify.Options, jsonOut bool, dir string) error {
	normalized, err := registry.Normalize(protocol, params)
	if err != nil {
		return err
	}
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return fmt.Errorf("open store: %w", err)
	}
	defer st.Close()

	key := service.FingerprintProtocol(protocol, normalized, opts)
	if raw, ok := st.Get(key); ok {
		var res service.Result
		if err := json.Unmarshal(raw, &res); err == nil {
			res.Cached = true
			fmt.Fprintf(os.Stderr, "csverify: verdict served from store %s (key %.12s…)\n", dir, key)
			return emitResult(&res, jsonOut)
		}
		// An undecodable record is treated as a miss; the fresh verdict
		// overwrites it below.
	}

	inst, err := registry.Build(protocol, normalized)
	if err != nil {
		return err
	}
	if opts, err = applySymmetry(opts, inst, false); err != nil {
		return err
	}
	count, ok := inst.Program.Schema.StateCount()
	if !ok || count > effectiveCap(opts) {
		return fmt.Errorf("state space too large to enumerate (%d states)", count)
	}
	rep, err := verify.Check(context.Background(), inst.Program, inst.S, inst.T,
		verify.WithOptions(opts), verify.WithConstraints(registry.ConstraintSpecs(inst)...))
	if err != nil {
		return err
	}
	defer rep.Close()
	res := service.ResultFromReport(inst.Name, rep)
	raw, err := json.Marshal(res)
	if err != nil {
		return err
	}
	if err := st.Put(key, raw); err != nil {
		return fmt.Errorf("store verdict: %w", err)
	}
	return emitResult(res, jsonOut)
}

// emitResult renders a stored-or-fresh Result: the shared JSON encoding
// with -json, a compact verdict summary otherwise.
func emitResult(res *service.Result, jsonOut bool) error {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Printf("program %s: %d states (|S|=%d, |T|=%d), classification: %s\n",
		res.Program, res.States, res.StatesS, res.StatesT, res.Classification)
	if res.ClosureOK {
		fmt.Println("closure: S and T closed")
	} else {
		fmt.Printf("closure: VIOLATED — %s\n", res.Closure)
	}
	if res.Unfair != nil {
		fmt.Printf("convergence: %s\n", res.Unfair.Summary)
	}
	if res.Fair != nil {
		fmt.Printf("fair convergence: %s\n", res.Fair.Summary)
	}
	if m := res.Metrics; m != nil {
		fmt.Printf("distance profile: max %d, mean %.2f (unreachable %d)\n",
			m.MaxDistance, m.MeanDistance, m.UnreachableStates)
		if m.WorstMeasured {
			fmt.Printf("worst-case stabilization: %d steps (mean %.2f)\n", m.WorstSteps, m.MeanWorstSteps)
		}
		if m.ExpectedMeasured {
			fmt.Printf("expected stabilization: %.2f steps (mean %.2f)\n", m.ExpectedSteps, m.MeanExpectedSteps)
		}
		for _, c := range m.Constraints {
			fmt.Printf("constraint %q: measured=%v worst=%d stable=%d\n",
				c.Name, c.Measured, c.WorstSteps, c.StableStates)
		}
	}
	fmt.Printf("verdict: %s (original check: %.1fms, workers=%d, cached=%v)\n",
		res.Verdict, res.ElapsedMS, res.Workers, res.Cached)
	return nil
}

// effectiveCap resolves the zero-means-default convention for the
// enumeration pre-checks below.
func effectiveCap(opts verify.Options) int64 {
	if opts.MaxStates > 0 {
		return opts.MaxStates
	}
	return verify.DefaultMaxStates
}

// verifyJSON checks the instance and emits the same service.Result wire
// encoding csserved returns, so scripts can consume one format from both.
func verifyJSON(inst *registry.Instance, opts verify.Options) error {
	count, ok := inst.Program.Schema.StateCount()
	if !ok || count > effectiveCap(opts) {
		return fmt.Errorf("state space too large to enumerate (%d states)", count)
	}
	rep, err := verify.Check(context.Background(), inst.Program, inst.S, inst.T,
		verify.WithOptions(opts), verify.WithConstraints(registry.ConstraintSpecs(inst)...))
	if err != nil {
		return err
	}
	defer rep.Close()
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(service.ResultFromReport(inst.Name, rep))
}

func verifyDesign(d *core.Design, opts verify.Options) error {
	fmt.Printf("design %s: %d variables, %d closure actions, %d constraints\n",
		d.Name, d.Schema.Len(), len(d.Closure), d.Set.Len())
	fmt.Println()

	fmt.Println("=== theorem validation (sufficient conditions) ===")
	applicable, all, err := d.Validate(opts.Strategy, opts)
	if err != nil {
		return err
	}
	if applicable != nil {
		fmt.Printf("%s\n", applicable)
		if applicable.Graph != nil {
			fmt.Println("constraint graph:")
			fmt.Print(applicable.Graph.String(d.Schema))
		}
	} else {
		fmt.Println("no sufficient condition applies; reports:")
		for _, r := range all {
			fmt.Printf("%s\n", r)
		}
	}

	fmt.Println()
	fmt.Println("=== exact model checking ===")
	count, ok := d.Schema.StateCount()
	if !ok || count > effectiveCap(opts) {
		fmt.Printf("state space too large to enumerate (%d states); use cssim instead\n", count)
		return nil
	}
	specs := make([]verify.ConstraintSpec, 0, len(d.Set.Constraints))
	for _, c := range d.Set.Constraints {
		specs = append(specs, verify.ConstraintSpec{Name: c.Pred.Name, Pred: c.Pred})
	}
	res, err := d.VerifyContext(context.Background(),
		verify.WithOptions(opts), verify.WithConstraints(specs...))
	if err != nil {
		return err
	}
	fmt.Printf("state space: %d states, classification: %v\n", count, res.Classification)
	if res.Closure != nil {
		fmt.Printf("closure: VIOLATED — %v\n", res.Closure)
	} else {
		fmt.Println("closure: S and T closed in p ∪ q")
	}
	fmt.Printf("convergence: %s\n", res.Unfair.Summary())
	if !res.Unfair.Converges && res.FairOnly != nil {
		fmt.Printf("fair convergence: %s\n", res.FairOnly.Summary())
	}
	if res.Tolerant() {
		fmt.Println("verdict: the program is T-tolerant for S")
	} else {
		fmt.Println("verdict: the program is NOT T-tolerant for S")
	}
	if res.Report != nil && res.Report.Metrics != nil {
		fmt.Println("\n=== tolerance metrics ===")
		fmt.Print(res.Report.Metrics.Summary())
	}
	return nil
}

// verifyPlain model-checks a plain instance (no layered design) through
// the unified Check entry point, adding the convergence-stair report for
// instances that declare one (the composed protocol).
func verifyPlain(inst *registry.Instance, opts verify.Options) error {
	count, ok := inst.Program.Schema.StateCount()
	if !ok || count > effectiveCap(opts) {
		return fmt.Errorf("state space too large to enumerate (%d states)", count)
	}
	ctx := context.Background()
	rep, err := verify.Check(ctx, inst.Program, inst.S, inst.T,
		verify.WithOptions(opts), verify.WithConstraints(registry.ConstraintSpecs(inst)...))
	if err != nil {
		return err
	}
	defer rep.Close()
	fmt.Printf("program %s: %d states\n", inst.Name, count)
	if sym := rep.Space.Symmetry(); sym != nil {
		reps, _ := rep.Space.QuotientStats()
		fmt.Printf("symmetry %s: quotient of %d orbit representatives\n", sym.Name, reps)
	}
	if seg, spooled := rep.Space.SpillStats(); seg+spooled > 0 {
		fmt.Printf("disk tier: %s of CSR segments, %s spooled through frontier runs\n",
			byteString(seg), byteString(spooled))
	}
	if rep.Closure != nil {
		fmt.Printf("closure: VIOLATED — %v\n", rep.Closure)
	} else {
		fmt.Println("closure: S closed")
	}
	fmt.Printf("convergence: %s\n", rep.Unfair.Summary())
	fair := rep.Fair
	if len(inst.Stair) > 0 && fair == nil {
		// The stair report below speaks about the fair daemon; compute its
		// verdict even when the arbitrary daemon already converges.
		if fair, err = rep.Space.CheckFairConvergenceContext(ctx); err != nil {
			return err
		}
	}
	if fair != nil {
		fmt.Printf("fair convergence: %s\n", fair.Summary())
	}
	if len(inst.Stair) > 0 {
		stair, err := rep.Space.CheckStairContext(ctx, inst.Stair, true)
		if err != nil {
			return err
		}
		fmt.Printf("convergence stair (true -> ... -> S, fair): ok=%v\n", stair.OK)
		for _, step := range stair.Steps {
			fmt.Printf("  %s -> %s: closed=%v converges=%v %s\n",
				step.From, step.To, step.Closed, step.Converges, step.Detail)
		}
	}
	if rep.Metrics != nil {
		fmt.Println("=== tolerance metrics ===")
		fmt.Print(rep.Metrics.Summary())
	}
	fmt.Printf("checked %d states in %v (workers=%d)\n", count, rep.Elapsed, rep.Options.Workers)
	return nil
}
