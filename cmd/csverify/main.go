// Command csverify validates and model-checks a built-in protocol
// instance: it reports which of the paper's theorems (1, 2, 3) applies to
// the design, the exact closure/convergence verdicts under arbitrary and
// weakly fair daemons, and the masking/nonmasking classification.
//
// Usage:
//
//	csverify -protocol diffusing -n 7
//	csverify -protocol tokenring-path -n 3 -k 4
//	csverify -protocol tokenring-ring -n 4 -k 6
//	csverify -protocol spanningtree -n 4 -graph complete
//	csverify -protocol xyz -variant out-tree
//	csverify -protocol reset -n 4
//	csverify -protocol termination -n 5
//	csverify -protocol snapshot -n 4
//	csverify -protocol threestate -n 5
//	csverify -protocol fourstate -n 5
//	csverify -protocol composed -n 4 -graph ring
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"nonmask/internal/core"
	"nonmask/internal/program"
	"nonmask/internal/protocols/composed"
	"nonmask/internal/protocols/diffusing"
	"nonmask/internal/protocols/fourstate"
	"nonmask/internal/protocols/reset"
	"nonmask/internal/protocols/snapshot"
	"nonmask/internal/protocols/spanningtree"
	"nonmask/internal/protocols/termination"
	"nonmask/internal/protocols/threestate"
	"nonmask/internal/protocols/tokenring"
	"nonmask/internal/protocols/xyz"
	"nonmask/internal/verify"
)

func main() {
	var (
		protocol  = flag.String("protocol", "diffusing", "protocol: diffusing | tokenring-path | tokenring-ring | threestate | fourstate | spanningtree | composed | xyz | reset | termination | snapshot")
		n         = flag.Int("n", 5, "instance size (nodes; ring/path: highest index)")
		k         = flag.Int("k", 0, "counter domain size for token rings (default n+2)")
		tree      = flag.String("tree", "binary", "tree shape for tree protocols: chain | star | binary | random")
		graphStr  = flag.String("graph", "line", "graph for spanningtree: line | ring | complete | grid")
		variant   = flag.String("variant", "out-tree", "xyz variant: interfering | out-tree | ordered")
		seed      = flag.Int64("seed", 1, "seed for random topologies")
		strategy  = flag.String("strategy", "projected", "preservation strategy: projected | exhaustive")
		workers   = flag.Int("workers", 0, "goroutines sharding the checker's passes (0 = all CPUs, 1 = sequential)")
		maxStates = flag.Int64("max-states", 0, fmt.Sprintf("state-space cap (0 = default %d)", verify.DefaultMaxStates))
	)
	flag.Parse()

	opts := verify.Options{Workers: *workers, MaxStates: *maxStates}
	if err := run(*protocol, *n, *k, *tree, *graphStr, *variant, *seed, *strategy, opts); err != nil {
		fmt.Fprintln(os.Stderr, "csverify:", err)
		os.Exit(1)
	}
}

func pickTree(shape string, n int, seed int64) (diffusing.Tree, error) {
	switch shape {
	case "chain":
		return diffusing.Chain(n), nil
	case "star":
		return diffusing.Star(n), nil
	case "binary":
		return diffusing.Binary(n), nil
	case "random":
		return diffusing.Random(n, seed), nil
	default:
		return diffusing.Tree{}, fmt.Errorf("unknown tree shape %q", shape)
	}
}

func run(protocol string, n, k int, tree, graphStr, variant string, seed int64, strategy string, opts verify.Options) error {
	strat := verify.Projected
	if strategy == "exhaustive" {
		strat = verify.Exhaustive
	}
	opts.Strategy = strat
	if k == 0 {
		k = n + 2
	}

	var design *core.Design
	switch protocol {
	case "diffusing":
		tr, err := pickTree(tree, n, seed)
		if err != nil {
			return err
		}
		inst, err := diffusing.New(tr)
		if err != nil {
			return err
		}
		design = inst.Design
	case "tokenring-path":
		inst, err := tokenring.NewPath(n, k)
		if err != nil {
			return err
		}
		design = inst.Design
	case "tokenring-ring":
		return verifyRing(n, k, opts)
	case "spanningtree":
		var g spanningtree.Graph
		switch graphStr {
		case "line":
			g = spanningtree.Line(n)
		case "ring":
			g = spanningtree.Ring(n)
		case "complete":
			g = spanningtree.Complete(n)
		case "grid":
			g = spanningtree.Grid(n, n)
		default:
			return fmt.Errorf("unknown graph %q", graphStr)
		}
		inst, err := spanningtree.New(g)
		if err != nil {
			return err
		}
		design = inst.Design
	case "xyz":
		var v xyz.Variant
		switch variant {
		case "interfering":
			v = xyz.Interfering
		case "out-tree":
			v = xyz.OutTree
		case "ordered":
			v = xyz.Ordered
		default:
			return fmt.Errorf("unknown xyz variant %q", variant)
		}
		inst, err := xyz.New(v)
		if err != nil {
			return err
		}
		design = inst.Design
	case "reset":
		tr, err := pickTree(tree, n, seed)
		if err != nil {
			return err
		}
		inst, err := reset.New(tr)
		if err != nil {
			return err
		}
		design = inst.Design
	case "termination":
		tr, err := pickTree(tree, n, seed)
		if err != nil {
			return err
		}
		inst, err := termination.New(tr)
		if err != nil {
			return err
		}
		design = inst.Design
	case "snapshot":
		tr, err := pickTree(tree, n, seed)
		if err != nil {
			return err
		}
		inst, err := snapshot.New(tr)
		if err != nil {
			return err
		}
		design = inst.Design
	case "threestate":
		inst, err := threestate.New(n)
		if err != nil {
			return err
		}
		return verifyPlain(inst.P, inst.S, opts)
	case "fourstate":
		inst, err := fourstate.New(n)
		if err != nil {
			return err
		}
		return verifyPlain(inst.P, inst.S, opts)
	case "composed":
		var g spanningtree.Graph
		switch graphStr {
		case "line":
			g = spanningtree.Line(n)
		case "ring":
			g = spanningtree.Ring(n)
		case "complete":
			g = spanningtree.Complete(n)
		case "grid":
			g = spanningtree.Grid(n, n)
		default:
			return fmt.Errorf("unknown graph %q", graphStr)
		}
		inst, err := composed.New(g)
		if err != nil {
			return err
		}
		return verifyComposed(inst, opts)
	default:
		return fmt.Errorf("unknown protocol %q", protocol)
	}

	return verifyDesign(design, opts)
}

// effectiveCap resolves the zero-means-default convention for the
// enumeration pre-checks below.
func effectiveCap(opts verify.Options) int64 {
	if opts.MaxStates > 0 {
		return opts.MaxStates
	}
	return verify.DefaultMaxStates
}

func verifyDesign(d *core.Design, opts verify.Options) error {
	fmt.Printf("design %s: %d variables, %d closure actions, %d constraints\n",
		d.Name, d.Schema.Len(), len(d.Closure), d.Set.Len())
	fmt.Println()

	fmt.Println("=== theorem validation (sufficient conditions) ===")
	applicable, all, err := d.Validate(opts.Strategy, opts)
	if err != nil {
		return err
	}
	if applicable != nil {
		fmt.Printf("%s\n", applicable)
		if applicable.Graph != nil {
			fmt.Println("constraint graph:")
			fmt.Print(applicable.Graph.String(d.Schema))
		}
	} else {
		fmt.Println("no sufficient condition applies; reports:")
		for _, r := range all {
			fmt.Printf("%s\n", r)
		}
	}

	fmt.Println()
	fmt.Println("=== exact model checking ===")
	count, ok := d.Schema.StateCount()
	if !ok || count > effectiveCap(opts) {
		fmt.Printf("state space too large to enumerate (%d states); use cssim instead\n", count)
		return nil
	}
	res, err := d.VerifyContext(context.Background(), verify.WithOptions(opts))
	if err != nil {
		return err
	}
	fmt.Printf("state space: %d states, classification: %v\n", count, res.Classification)
	if res.Closure != nil {
		fmt.Printf("closure: VIOLATED — %v\n", res.Closure)
	} else {
		fmt.Println("closure: S and T closed in p ∪ q")
	}
	fmt.Printf("convergence: %s\n", res.Unfair.Summary())
	if !res.Unfair.Converges && res.FairOnly != nil {
		fmt.Printf("fair convergence: %s\n", res.FairOnly.Summary())
	}
	if res.Tolerant() {
		fmt.Println("verdict: the program is T-tolerant for S")
	} else {
		fmt.Println("verdict: the program is NOT T-tolerant for S")
	}
	return nil
}

// verifyRing handles the mod-K ring, which is a plain program with an
// invariant rather than a layered design.
func verifyRing(n, k int, opts verify.Options) error {
	inst, err := tokenring.NewRing(n, k)
	if err != nil {
		return err
	}
	fmt.Printf("program %s: %d nodes, K=%d\n", inst.P.Name, n+1, k)
	return verifyPlain(inst.P, inst.S, opts)
}

// verifyPlain model-checks a plain program against its invariant through
// the unified Check entry point.
func verifyPlain(p *program.Program, S *program.Predicate, opts verify.Options) error {
	count, ok := p.Schema.StateCount()
	if !ok || count > effectiveCap(opts) {
		return fmt.Errorf("state space too large to enumerate (%d states)", count)
	}
	rep, err := verify.Check(context.Background(), p, S, nil, verify.WithOptions(opts))
	if err != nil {
		return err
	}
	if rep.Closure != nil {
		fmt.Printf("closure: VIOLATED — %v\n", rep.Closure)
	} else {
		fmt.Println("closure: S closed")
	}
	fmt.Printf("convergence: %s\n", rep.Unfair.Summary())
	if rep.Fair != nil {
		fmt.Printf("fair convergence: %s\n", rep.Fair.Summary())
	}
	fmt.Printf("checked %d states in %v (workers=%d)\n", count, rep.Elapsed, rep.Options.Workers)
	return nil
}

// verifyComposed reports the composition's two-daemon story and its stair.
func verifyComposed(inst *composed.Instance, opts verify.Options) error {
	count, ok := inst.P.Schema.StateCount()
	if !ok || count > effectiveCap(opts) {
		return fmt.Errorf("state space too large to enumerate (%d states)", count)
	}
	ctx := context.Background()
	rep, err := verify.Check(ctx, inst.P, inst.S, nil, verify.WithOptions(opts))
	if err != nil {
		return err
	}
	fmt.Printf("program %s: %d states\n", inst.P.Name, count)
	fmt.Printf("convergence (arbitrary daemon): %s\n", rep.Unfair.Summary())
	fair := rep.Fair
	if fair == nil {
		if fair, err = rep.Space.CheckFairConvergenceContext(ctx); err != nil {
			return err
		}
	}
	fmt.Printf("convergence (weakly fair daemon): %s\n", fair.Summary())
	stair, err := rep.Space.CheckStairContext(ctx, []*program.Predicate{inst.TreeOK}, true)
	if err != nil {
		return err
	}
	fmt.Printf("convergence stair (true -> tree -> S, fair): ok=%v\n", stair.OK)
	for _, step := range stair.Steps {
		fmt.Printf("  %s -> %s: closed=%v converges=%v %s\n",
			step.From, step.To, step.Closed, step.Converges, step.Detail)
	}
	return nil
}
