// Command gclrun parses, validates and checks a guarded-command (.gcl)
// source file written in the paper's Section 2 notation: it prints the
// compiled program's structure, applies the paper's theorems when the
// invariants carry establishing convergence actions, and model-checks
// closure and convergence exactly when the state space is enumerable.
//
// Usage:
//
//	gclrun testdata/diffusing.gcl
//	gclrun -print testdata/tokenring.gcl      # pretty-print only
//	gclrun -strategy exhaustive file.gcl
//	gclrun -workers 1 -max-states 1000000 file.gcl
//	gclrun -json file.gcl                     # service.Result JSON
//	gclrun -trace -progress file.gcl          # pass table + live ticker on stderr
//	gclrun -remote http://127.0.0.1:8080 file.gcl   # submit to csserved, watch live
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"nonmask/internal/gcl"
	"nonmask/internal/obs"
	"nonmask/internal/service"
	"nonmask/internal/service/client"
	"nonmask/internal/verify"
)

func main() {
	var (
		printOnly = flag.Bool("print", false, "parse and pretty-print, then exit")
		strategy  = flag.String("strategy", "projected", "preservation strategy: projected | exhaustive")
		workers   = flag.Int("workers", 0, "goroutines sharding the checker's passes (0 = all CPUs, 1 = sequential)")
		maxStates = flag.Int64("max-states", 0, fmt.Sprintf("state-space cap (0 = default %d)", verify.DefaultMaxStates))
		spaceMode = flag.String("space-mode", "auto", "state-space tier: auto (escalate full -> spill as the instance outgrows RAM) | full | spill (quotient needs a catalog protocol; GCL sources advertise no symmetry)")
		spillDir  = flag.String("spill-dir", "", "directory for the disk tier's CSR segments and frontier runs (empty = OS temp dir)")
		jsonOut   = flag.Bool("json", false, "emit the machine-readable service.Result JSON instead of prose")
		measure   = flag.Bool("measure", false, "additionally run the quantitative tolerance metrics (distance profile, worst/expected stabilization time, per-constraint recovery costs)")
		trace     = flag.Bool("trace", false, "print the per-pass span table (states, frontier, wall time) on stderr")
		progress  = flag.Bool("progress", false, "stream live per-pass progress lines on stderr")
		remote    = flag.String("remote", "", "submit the source to a csserved at this URL and watch its event stream instead of checking locally")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gclrun [-print] [-json] [-trace] [-progress] [-remote URL] [-strategy s] [-workers n] [-max-states n] <file.gcl>")
		os.Exit(2)
	}
	if *remote != "" {
		if err := runRemote(*remote, flag.Arg(0), *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "gclrun:", err)
			os.Exit(1)
		}
		return
	}
	opts := verify.Options{Workers: *workers, MaxStates: *maxStates, Metrics: *measure, SpillDir: *spillDir}
	if *strategy == "exhaustive" {
		opts.Strategy = verify.Exhaustive
	} else {
		opts.Strategy = verify.Projected
	}
	var flagErr error
	if opts.SpaceMode, flagErr = verify.ParseSpaceMode(*spaceMode); flagErr != nil {
		fmt.Fprintln(os.Stderr, "gclrun:", flagErr)
		os.Exit(2)
	}
	if opts.SpaceMode == verify.SpaceQuotient {
		// Mirrors the service's rejection: the quotient tier needs an
		// advertised automorphism group, which only catalog protocols carry.
		fmt.Fprintln(os.Stderr, "gclrun: -space-mode quotient needs an advertised symmetry group; GCL sources have none (use csverify -protocol for catalog instances)")
		os.Exit(2)
	}
	// Both observability streams write stderr, keeping -json stdout clean.
	var collector *obs.Collector
	if *trace {
		collector = &obs.Collector{}
		opts.Tracer = collector
	}
	stopProgress := func() {}
	if *progress {
		p := &obs.Progress{}
		opts.Progress = p
		stopProgress = p.Watch(500*time.Millisecond, printSnapshot)
	}
	err := run(flag.Arg(0), *printOnly, *jsonOut, opts)
	stopProgress()
	if collector != nil {
		fmt.Fprint(os.Stderr, obs.FormatTable(collector.Passes()))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gclrun:", err)
		os.Exit(1)
	}
}

// runRemote ships the GCL source to a csserved as a job and tails its
// event stream: the replayed history plus live pass spans and progress,
// the final pass table, and the result fetched once the stream ends at
// the terminal job event.
func runRemote(baseURL, path string, jsonOut bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	c := client.New(baseURL, nil)
	st, err := c.Submit(ctx, service.JobSpec{Source: string(src)})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gclrun: submitted %s to %s\n", st.ID, baseURL)
	state, detail, stats, err := c.TailJob(ctx, st.ID, 0, os.Stderr)
	if err != nil {
		return err
	}
	if len(stats) > 0 {
		fmt.Fprint(os.Stderr, obs.FormatTable(stats))
	}
	final, err := c.Job(ctx, st.ID, 0)
	if err != nil {
		return err
	}
	if jsonOut && final.Result != nil {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(final.Result)
	}
	fmt.Printf("job %s: %s", st.ID, state)
	if detail != "" {
		fmt.Printf(" (%s)", detail)
	}
	fmt.Println()
	if state != service.StateDone {
		return fmt.Errorf("job finished %s: %s", state, final.Error)
	}
	return nil
}

// printSnapshot renders one -progress ticker line.
func printSnapshot(s obs.Snapshot) {
	if s.Pass == "" {
		return
	}
	if s.Total > 0 {
		fmt.Fprintf(os.Stderr, "gclrun: %-16s %d/%d states in %v\n",
			s.Pass, s.Done, s.Total, s.Elapsed.Round(time.Millisecond))
		return
	}
	fmt.Fprintf(os.Stderr, "gclrun: %-16s %d states in %v\n",
		s.Pass, s.Done, s.Elapsed.Round(time.Millisecond))
}

// effectiveCap resolves the zero-means-default state cap.
func effectiveCap(opts verify.Options) int64 {
	if opts.MaxStates > 0 {
		return opts.MaxStates
	}
	return verify.DefaultMaxStates
}

func run(path string, printOnly, jsonOut bool, opts verify.Options) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	file, err := gcl.Parse(string(src))
	if err != nil {
		return err
	}
	if printOnly {
		fmt.Print(gcl.Print(file))
		return nil
	}
	m, err := gcl.Compile(file)
	if err != nil {
		return err
	}

	// The metrics passes break recovery costs down by the module's compiled
	// invariant conjuncts (one spec per invariant declaration).
	specs := make([]verify.ConstraintSpec, 0, len(m.Set.Constraints))
	for _, c := range m.Set.Constraints {
		specs = append(specs, verify.ConstraintSpec{Name: c.Pred.Name, Pred: c.Pred})
	}

	if jsonOut {
		count, ok := m.Schema.StateCount()
		if !ok || count > effectiveCap(opts) {
			return fmt.Errorf("state space too large to enumerate (%d states)", count)
		}
		rep, err := verify.Check(context.Background(), m.Program, m.S, m.T,
			verify.WithOptions(opts), verify.WithConstraints(specs...))
		if err != nil {
			return err
		}
		defer rep.Close()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(service.ResultFromReport(m.Name, rep))
	}

	fmt.Printf("program %s: %d variables, %d actions, %d constraints\n",
		m.Name, m.Schema.Len(), len(m.Program.Actions), m.Set.Len())
	fmt.Print(m.Program.DescribeActions())

	if m.Design == nil {
		fmt.Println("\nno complete invariant/convergence pairing (add 'establishes' clauses);")
		fmt.Println("skipping theorem validation")
	} else {
		fmt.Println("\n=== theorem validation ===")
		applicable, all, err := m.Design.Validate(opts.Strategy, opts)
		if err != nil {
			return err
		}
		if applicable != nil {
			fmt.Printf("%s", applicable)
			if applicable.Graph != nil {
				fmt.Println("constraint graph:")
				fmt.Print(applicable.Graph.String(m.Schema))
			}
		} else {
			fmt.Println("no sufficient condition applies; reports:")
			for _, r := range all {
				fmt.Printf("%s\n", r)
			}
		}
	}

	count, ok := m.Schema.StateCount()
	if !ok || count > effectiveCap(opts) {
		fmt.Printf("\nstate space too large to enumerate (%d states); stopping at validation\n", count)
		return nil
	}
	fmt.Println("\n=== exact model checking ===")
	rep, err := verify.Check(context.Background(), m.Program, m.S, m.T,
		verify.WithOptions(opts), verify.WithConstraints(specs...))
	if err != nil {
		return err
	}
	defer rep.Close()
	fmt.Printf("state space: %d states, |S| = %d, |T| = %d\n", count, rep.Space.CountS(), rep.Space.CountT())
	if rep.Closure != nil {
		fmt.Printf("closure: VIOLATED — %v\n", rep.Closure)
	} else {
		fmt.Println("closure: S and T closed")
	}
	fmt.Printf("convergence: %s\n", rep.Unfair.Summary())
	if rep.Fair != nil {
		fmt.Printf("fair convergence: %s\n", rep.Fair.Summary())
	}
	if rep.Metrics != nil {
		fmt.Println("\n=== tolerance metrics ===")
		fmt.Print(rep.Metrics.Summary())
	}
	fmt.Printf("checked %d states in %v (workers=%d)\n", count, rep.Elapsed, rep.Options.Workers)
	return nil
}
