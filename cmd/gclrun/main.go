// Command gclrun parses, validates and checks a guarded-command (.gcl)
// source file written in the paper's Section 2 notation: it prints the
// compiled program's structure, applies the paper's theorems when the
// invariants carry establishing convergence actions, and model-checks
// closure and convergence exactly when the state space is enumerable.
//
// Usage:
//
//	gclrun testdata/diffusing.gcl
//	gclrun -print testdata/tokenring.gcl      # pretty-print only
//	gclrun -strategy exhaustive file.gcl
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"nonmask/internal/gcl"
	"nonmask/internal/program"
	"nonmask/internal/verify"
)

func main() {
	var (
		printOnly = flag.Bool("print", false, "parse and pretty-print, then exit")
		strategy  = flag.String("strategy", "projected", "preservation strategy: projected | exhaustive")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gclrun [-print] [-strategy s] <file.gcl>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *printOnly, *strategy); err != nil {
		fmt.Fprintln(os.Stderr, "gclrun:", err)
		os.Exit(1)
	}
}

func run(path string, printOnly bool, strategy string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	file, err := gcl.Parse(string(src))
	if err != nil {
		return err
	}
	if printOnly {
		fmt.Print(gcl.Print(file))
		return nil
	}
	m, err := gcl.Compile(file)
	if err != nil {
		return err
	}

	fmt.Printf("program %s: %d variables, %d actions, %d constraints\n",
		m.Name, m.Schema.Len(), len(m.Program.Actions), m.Set.Len())
	fmt.Print(m.Program.DescribeActions())

	if m.Design == nil {
		fmt.Println("\nno complete invariant/convergence pairing (add 'establishes' clauses);")
		fmt.Println("skipping theorem validation")
	} else {
		strat := verify.Projected
		if strategy == "exhaustive" {
			strat = verify.Exhaustive
		}
		fmt.Println("\n=== theorem validation ===")
		applicable, all, err := m.Design.Validate(strat, verify.Options{})
		if err != nil {
			return err
		}
		if applicable != nil {
			fmt.Printf("%s", applicable)
			if applicable.Graph != nil {
				fmt.Println("constraint graph:")
				fmt.Print(applicable.Graph.String(m.Schema))
			}
		} else {
			fmt.Println("no sufficient condition applies; reports:")
			for _, r := range all {
				fmt.Printf("%s\n", r)
			}
		}
	}

	count, ok := m.Schema.StateCount()
	if !ok || count > verify.DefaultMaxStates {
		fmt.Printf("\nstate space too large to enumerate (%d states); stopping at validation\n", count)
		return nil
	}
	fmt.Println("\n=== exact model checking ===")
	rep, err := verify.Check(context.Background(), m.Program, m.S, m.T)
	if err != nil {
		return err
	}
	fmt.Printf("state space: %d states, |S| = %d, |T| = %d\n", count, rep.Space.CountS(), rep.Space.CountT())
	if rep.Closure != nil {
		fmt.Printf("closure: VIOLATED — %v\n", rep.Closure)
	} else {
		fmt.Println("closure: S and T closed")
	}
	fmt.Printf("convergence: %s\n", rep.Unfair.Summary())
	if rep.Fair != nil {
		fmt.Printf("fair convergence: %s\n", rep.Fair.Summary())
	}
	_ = program.True()
	return nil
}
