// Command cssim simulates a protocol under a chosen daemon with fault
// injection and reports convergence statistics — the statistical
// counterpart of csverify for instances beyond exhaustive enumeration.
//
// Usage:
//
//	cssim -protocol diffusing -n 255 -runs 100
//	cssim -protocol tokenring-ring -n 127 -daemon adversarial
//	cssim -protocol spanningtree -n 6 -graph grid -daemon random
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"nonmask/internal/daemon"
	"nonmask/internal/fault"
	"nonmask/internal/metrics"
	"nonmask/internal/program"
	"nonmask/internal/protocols/diffusing"
	"nonmask/internal/protocols/spanningtree"
	"nonmask/internal/protocols/tokenring"
	"nonmask/internal/sim"
)

func main() {
	var (
		protocol = flag.String("protocol", "diffusing", "protocol: diffusing | tokenring-ring | spanningtree")
		n        = flag.Int("n", 63, "instance size")
		k        = flag.Int("k", 0, "ring counter space (default n+2)")
		tree     = flag.String("tree", "binary", "tree shape: chain | star | binary | random")
		graphStr = flag.String("graph", "grid", "spanningtree graph: line | ring | complete | grid")
		dmn      = flag.String("daemon", "random", "daemon: round-robin | random | adversarial")
		runs     = flag.Int("runs", 100, "number of runs")
		maxSteps = flag.Int("max-steps", 5_000_000, "step budget per run")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if err := run(*protocol, *n, *k, *tree, *graphStr, *dmn, *runs, *maxSteps, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "cssim:", err)
		os.Exit(1)
	}
}

func run(protocol string, n, k int, tree, graphStr, dmn string, runs, maxSteps int, seed int64) error {
	if k == 0 {
		k = n + 2
	}
	var (
		p     *program.Program
		S     *program.Predicate
		preds []*program.Predicate
	)
	switch protocol {
	case "diffusing":
		var tr diffusing.Tree
		switch tree {
		case "chain":
			tr = diffusing.Chain(n)
		case "star":
			tr = diffusing.Star(n)
		case "binary":
			tr = diffusing.Binary(n)
		case "random":
			tr = diffusing.Random(n, seed)
		default:
			return fmt.Errorf("unknown tree %q", tree)
		}
		inst, err := diffusing.New(tr)
		if err != nil {
			return err
		}
		p, S = inst.Design.TolerantProgram(), inst.Design.S
		for _, c := range inst.Design.Set.Constraints {
			preds = append(preds, c.Pred)
		}
	case "tokenring-ring":
		inst, err := tokenring.NewRing(n, k)
		if err != nil {
			return err
		}
		p, S = inst.P, inst.S
		preds = []*program.Predicate{inst.S}
	case "spanningtree":
		var g spanningtree.Graph
		switch graphStr {
		case "line":
			g = spanningtree.Line(n)
		case "ring":
			g = spanningtree.Ring(n)
		case "complete":
			g = spanningtree.Complete(n)
		case "grid":
			g = spanningtree.Grid(n, n)
		default:
			return fmt.Errorf("unknown graph %q", graphStr)
		}
		inst, err := spanningtree.New(g)
		if err != nil {
			return err
		}
		p, S = inst.Design.TolerantProgram(), inst.Design.S
		for _, c := range inst.Design.Set.Constraints {
			preds = append(preds, c.Pred)
		}
	default:
		return fmt.Errorf("unknown protocol %q", protocol)
	}

	var d daemon.Daemon
	switch dmn {
	case "round-robin":
		d = daemon.NewRoundRobin(p)
	case "random":
		d = daemon.NewRandom(seed)
	case "adversarial":
		d = daemon.NewAdversarial("adversarial", daemon.ViolationMetric(preds))
	default:
		return fmt.Errorf("unknown daemon %q", dmn)
	}

	fmt.Printf("simulating %s under %s daemon: %d runs from uniformly random states\n",
		p.Name, d.Name(), runs)
	r := &sim.Runner{P: p, S: S, D: d, MaxSteps: maxSteps, StopAtS: true}
	rng := rand.New(rand.NewSource(seed))
	batch := r.RunMany(runs, rng, sim.RandomStates(p.Schema))

	s := metrics.Summarize(metrics.IntsToFloats(batch.Steps))
	fmt.Printf("converged: %d/%d (%.0f%%)\n", batch.ConvergedRuns, batch.Runs, 100*batch.ConvergenceRate())
	if batch.ConvergedRuns > 0 {
		fmt.Printf("steps to converge: mean %.1f, median %.0f, p95 %.1f, max %.0f\n",
			s.Mean, s.Median, s.P95, s.Max)
	}

	// One fault-injected run showing recovery from mid-run corruption.
	var groups [][]program.VarID
	for v := 0; v < p.Schema.Len(); v++ {
		groups = append(groups, []program.VarID{program.VarID(v)})
	}
	r2 := &sim.Runner{
		P: p, S: S, D: d, MaxSteps: maxSteps, StopAtS: true,
		Faults: fault.Schedule{{Step: 0, Inj: &fault.CorruptVars{}}},
	}
	res := r2.Run(p.Schema.NewState(), rng)
	fmt.Printf("recovery after corrupting every variable: %s\n", res)
	_ = groups
	return nil
}
