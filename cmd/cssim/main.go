// Command cssim simulates a protocol under a chosen daemon with fault
// injection and reports convergence statistics — the statistical
// counterpart of csverify for instances beyond exhaustive enumeration.
//
// Instances come from the shared catalog in internal/protocols/registry —
// the same catalog csverify checks and csserved serves — so cssim accepts
// the identical -protocol and parameter spellings. Unlike the service,
// cssim does not enforce the registry's advertised parameter bounds:
// simulation never requires enumerating the state space, so instance sizes
// far past the verification guards (e.g. -n 255) are exactly its point.
// When an instance does fit the verifier's cap, cssim enumerates it once
// and reports the checker's exact observables alongside the samples: the
// shortest-path distance-to-invariant of the metrics passes, and (under
// -daemon adversarial) the true worst-case schedule instead of the
// violated-constraint heuristic.
//
// Usage:
//
//	cssim -protocol diffusing -n 255 -runs 100
//	cssim -protocol tokenring-ring -n 127 -daemon adversarial
//	cssim -protocol spanningtree -n 6 -graph grid -daemon random
//	cssim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"nonmask/internal/daemon"
	"nonmask/internal/fault"
	"nonmask/internal/metrics"
	"nonmask/internal/program"
	"nonmask/internal/protocols/registry"
	"nonmask/internal/saboteur"
	"nonmask/internal/sim"
	"nonmask/internal/verify"
)

func main() {
	var (
		protocol = flag.String("protocol", "diffusing", "protocol name (see -list): "+strings.Join(registry.Names(), " | "))
		n        = flag.Int("n", 63, "instance size (nodes; ring/path: highest index)")
		k        = flag.Int("k", 0, "counter domain size for token rings (default n+2)")
		tree     = flag.String("tree", "binary", "tree shape for tree protocols: chain | star | binary | random")
		graphStr = flag.String("graph", "grid", "graph for graph protocols: line | ring | complete | grid")
		variant  = flag.String("variant", "out-tree", "xyz variant: interfering | out-tree | ordered")
		dmn      = flag.String("daemon", "random", "daemon: round-robin | random | adversarial")
		runs     = flag.Int("runs", 100, "number of runs")
		maxSteps = flag.Int("max-steps", 5_000_000, "step budget per run")
		seed     = flag.Int64("seed", 1, "random seed (runs and random topologies)")
		replay   = flag.String("replay", "", "replay a saboteur witness file (csverify -witness-out) and confirm its claimed cost")
		list     = flag.Bool("list", false, "list the protocol catalog and exit")
	)
	flag.Parse()

	if *replay != "" {
		if err := runReplay(*replay, *runs, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "cssim:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range registry.Entries() {
			fmt.Printf("%-16s %s (defaults: %s)\n", e.Name, e.Description, e.Normalize(registry.Params{}))
		}
		return
	}

	params := registry.Params{N: *n, K: *k, Tree: *tree, Graph: *graphStr, Variant: *variant, Seed: *seed}
	if err := run(*protocol, params, *dmn, *runs, *maxSteps, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "cssim:", err)
		os.Exit(1)
	}
}

// runReplay deterministically re-executes a saboteur witness and
// confirms the claimed recovery cost three independent ways: the
// program-level step-by-step replay (guards, assignments, span
// membership), a fresh adversarial-daemon simulation from the witness's
// peak state driven by the re-enumerated worst-case distance table, and
// a random-daemon sample from the same peak showing the schedule really
// is adversarial. Any mismatch exits non-zero.
func runReplay(path string, runs int, seed int64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	w, err := saboteur.DecodeWitness(raw)
	if err != nil {
		return err
	}
	if w.Protocol == "" {
		return fmt.Errorf("witness carries no protocol identity; re-synthesize it with csverify -sabotage -witness-out")
	}
	params := registry.Params{}
	if w.Params != nil {
		params = *w.Params
	}
	inst, err := registry.Build(w.Protocol, params)
	if err != nil {
		return err
	}
	fmt.Printf("replaying %s witness for %s: objective %s, k=%d, claimed cost %d\n",
		path, inst.Name, w.Objective, w.K, w.Cost)

	rp, err := w.Replay(inst.Program, inst.S, inst.T)
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	if rp.Cost != w.Cost {
		return fmt.Errorf("replayed cost %d != claimed %d", rp.Cost, w.Cost)
	}
	fmt.Printf("step-by-step replay: ok (%d fault + %d recovery steps, cost %d)\n",
		len(w.Steps), len(w.Recovery), rp.Cost)

	if w.Objective == saboteur.ObjectiveEscape {
		fmt.Printf("escape confirmed: %d faults leave the declared span T\n", rp.Cost)
		return nil
	}

	// Independent confirmation: re-enumerate the space, rebuild the exact
	// worst-case table, and let the adversarial daemon run free from the
	// witness's peak state — it must need exactly the claimed steps.
	_, worst := exactTables(inst)
	if worst == nil {
		return fmt.Errorf("instance not enumerable; cannot confirm the recovery cost exactly")
	}
	r := &sim.Runner{P: inst.Program, S: inst.S,
		D: daemon.NewWorstCase(inst.Program.Schema, worst), StopAtS: true}
	res := r.Run(rp.Peak, rand.New(rand.NewSource(seed)))
	if !res.Converged || res.Steps != w.Cost {
		return fmt.Errorf("adversarial simulation from the peak took %d steps (converged=%v), claimed %d",
			res.Steps, res.Converged, w.Cost)
	}
	fmt.Printf("adversarial simulation from peak: %d steps (matches)\n", res.Steps)

	// A random daemon from the same peak shows the margin the adversary
	// bought: its mean must not beat the proven worst case.
	if runs > 0 {
		rng := rand.New(rand.NewSource(seed))
		rr := &sim.Runner{P: inst.Program, S: inst.S, D: daemon.NewRandom(seed), StopAtS: true}
		steps := make([]float64, 0, runs)
		for i := 0; i < runs; i++ {
			if rres := rr.Run(rp.Peak, rng); rres.Converged {
				steps = append(steps, float64(rres.Steps))
			}
		}
		if len(steps) > 0 {
			s := metrics.Summarize(steps)
			fmt.Printf("random daemon from the same peak (%d runs): mean %.1f steps, max %.0f (adversarial schedule forces %d)\n",
				len(steps), s.Mean, s.Max, w.Cost)
		}
	}
	return nil
}

// violationPreds picks the predicates the adversarial daemon tries to keep
// violated: the design's constraint set when the instance is layered, the
// declared convergence stair plus the invariant otherwise.
func violationPreds(inst *registry.Instance) []*program.Predicate {
	if inst.Design != nil {
		preds := make([]*program.Predicate, 0, inst.Design.Set.Len())
		for _, c := range inst.Design.Set.Constraints {
			preds = append(preds, c.Pred)
		}
		return preds
	}
	preds := append([]*program.Predicate{}, inst.Stair...)
	return append(preds, inst.S)
}

// exactTables enumerates the instance's state space when it fits the
// verifier's default cap and returns the two exact distance tables the
// checker's metrics passes define: the shortest-path distance to S (the
// distance observable) and the worst-case variant table (the adversarial
// schedule). Both are nil when the instance is beyond enumeration or the
// space cannot be built — cssim then falls back to heuristics.
func exactTables(inst *registry.Instance) (distObs func(*program.State) int, worst []int32) {
	p := inst.Program
	count, ok := p.Schema.StateCount()
	if !ok || count > verify.DefaultMaxStates {
		return nil, nil
	}
	T := inst.T
	if T == nil {
		T = program.True()
	}
	sp, err := verify.NewSpaceContext(context.Background(), p, inst.S, T, verify.Options{})
	if err != nil {
		return nil, nil
	}
	if dist, err := sp.DistancesContext(context.Background()); err == nil {
		distObs = func(st *program.State) int { return int(dist[p.Schema.Index(st)]) }
	}
	if tab, ok := sp.WorstDistances(); ok {
		worst = tab
	}
	return distObs, worst
}

func run(protocol string, params registry.Params, dmn string, runs, maxSteps int, seed int64) error {
	inst, err := registry.Build(protocol, params)
	if err != nil {
		return err
	}
	p, S := inst.Program, inst.S
	distObs, worst := exactTables(inst)

	var d daemon.Daemon
	switch dmn {
	case "round-robin":
		d = daemon.NewRoundRobin(p)
	case "random":
		d = daemon.NewRandom(seed)
	case "adversarial":
		if worst != nil {
			d = daemon.NewWorstCase(p.Schema, worst)
			fmt.Println("adversarial daemon: exact worst-case distance table (instance enumerable)")
		} else {
			d = daemon.NewAdversarial("adversarial", daemon.ViolationMetric(violationPreds(inst)))
			fmt.Println("adversarial daemon: violated-constraint heuristic (instance beyond enumeration)")
		}
	default:
		return fmt.Errorf("unknown daemon %q (want round-robin | random | adversarial)", dmn)
	}

	fmt.Printf("simulating %s under %s daemon: %d runs from uniformly random states\n",
		p.Name, d.Name(), runs)
	r := &sim.Runner{P: p, S: S, D: d, MaxSteps: maxSteps, StopAtS: true, Distance: distObs}
	rng := rand.New(rand.NewSource(seed))

	// With the exact table available, score each run's starting state so
	// the sampled report carries the same distance observable as the
	// checker's distance profile (csverify -measure).
	next := sim.RandomStates(p.Schema)
	var initDist []float64
	if distObs != nil {
		inner := next
		next = func(i int, rng *rand.Rand) *program.State {
			st := inner(i, rng)
			if d := distObs(st); d >= 0 {
				initDist = append(initDist, float64(d))
			}
			return st
		}
	}
	batch := r.RunMany(runs, rng, next)

	s := metrics.Summarize(metrics.IntsToFloats(batch.Steps))
	fmt.Printf("converged: %d/%d (%.0f%%)\n", batch.ConvergedRuns, batch.Runs, 100*batch.ConvergenceRate())
	if batch.ConvergedRuns > 0 {
		fmt.Printf("steps to converge: mean %.1f, median %.0f, p95 %.1f, max %.0f\n",
			s.Mean, s.Median, s.P95, s.Max)
	}
	if len(initDist) > 0 {
		ds := metrics.Summarize(initDist)
		fmt.Printf("distance to S at start (exact shortest path): mean %.1f, median %.0f, max %.0f\n",
			ds.Mean, ds.Median, ds.Max)
	}

	// One fault-injected run showing recovery from mid-run corruption,
	// with the peak observed distance when the exact table is available.
	r2 := &sim.Runner{
		P: p, S: S, D: d, MaxSteps: maxSteps, StopAtS: true, Distance: distObs,
		Faults: fault.Schedule{{Step: 0, Inj: &fault.CorruptVars{}}},
	}
	peak := -1
	if distObs != nil {
		r2.OnTick = func(step int, st *program.State) {
			if d := distObs(st); d > peak {
				peak = d
			}
		}
	}
	res := r2.Run(p.Schema.NewState(), rng)
	if peak >= 0 {
		fmt.Printf("recovery after corrupting every variable: %s (peak distance %d)\n", res, peak)
	} else {
		fmt.Printf("recovery after corrupting every variable: %s\n", res)
	}
	return nil
}
