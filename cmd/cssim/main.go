// Command cssim simulates a protocol under a chosen daemon with fault
// injection and reports convergence statistics — the statistical
// counterpart of csverify for instances beyond exhaustive enumeration.
//
// Instances come from the shared catalog in internal/protocols/registry —
// the same catalog csverify checks and csserved serves — so cssim accepts
// the identical -protocol and parameter spellings. Unlike the service,
// cssim does not enforce the registry's advertised parameter bounds:
// simulation never enumerates the state space, so instance sizes far past
// the verification guards (e.g. -n 255) are exactly its point.
//
// Usage:
//
//	cssim -protocol diffusing -n 255 -runs 100
//	cssim -protocol tokenring-ring -n 127 -daemon adversarial
//	cssim -protocol spanningtree -n 6 -graph grid -daemon random
//	cssim -list
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"nonmask/internal/daemon"
	"nonmask/internal/fault"
	"nonmask/internal/metrics"
	"nonmask/internal/program"
	"nonmask/internal/protocols/registry"
	"nonmask/internal/sim"
)

func main() {
	var (
		protocol = flag.String("protocol", "diffusing", "protocol name (see -list): "+strings.Join(registry.Names(), " | "))
		n        = flag.Int("n", 63, "instance size (nodes; ring/path: highest index)")
		k        = flag.Int("k", 0, "counter domain size for token rings (default n+2)")
		tree     = flag.String("tree", "binary", "tree shape for tree protocols: chain | star | binary | random")
		graphStr = flag.String("graph", "grid", "graph for graph protocols: line | ring | complete | grid")
		variant  = flag.String("variant", "out-tree", "xyz variant: interfering | out-tree | ordered")
		dmn      = flag.String("daemon", "random", "daemon: round-robin | random | adversarial")
		runs     = flag.Int("runs", 100, "number of runs")
		maxSteps = flag.Int("max-steps", 5_000_000, "step budget per run")
		seed     = flag.Int64("seed", 1, "random seed (runs and random topologies)")
		list     = flag.Bool("list", false, "list the protocol catalog and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range registry.Entries() {
			fmt.Printf("%-16s %s (defaults: %s)\n", e.Name, e.Description, e.Normalize(registry.Params{}))
		}
		return
	}

	params := registry.Params{N: *n, K: *k, Tree: *tree, Graph: *graphStr, Variant: *variant, Seed: *seed}
	if err := run(*protocol, params, *dmn, *runs, *maxSteps, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "cssim:", err)
		os.Exit(1)
	}
}

// violationPreds picks the predicates the adversarial daemon tries to keep
// violated: the design's constraint set when the instance is layered, the
// declared convergence stair plus the invariant otherwise.
func violationPreds(inst *registry.Instance) []*program.Predicate {
	if inst.Design != nil {
		preds := make([]*program.Predicate, 0, inst.Design.Set.Len())
		for _, c := range inst.Design.Set.Constraints {
			preds = append(preds, c.Pred)
		}
		return preds
	}
	preds := append([]*program.Predicate{}, inst.Stair...)
	return append(preds, inst.S)
}

func run(protocol string, params registry.Params, dmn string, runs, maxSteps int, seed int64) error {
	inst, err := registry.Build(protocol, params)
	if err != nil {
		return err
	}
	p, S := inst.Program, inst.S

	var d daemon.Daemon
	switch dmn {
	case "round-robin":
		d = daemon.NewRoundRobin(p)
	case "random":
		d = daemon.NewRandom(seed)
	case "adversarial":
		d = daemon.NewAdversarial("adversarial", daemon.ViolationMetric(violationPreds(inst)))
	default:
		return fmt.Errorf("unknown daemon %q (want round-robin | random | adversarial)", dmn)
	}

	fmt.Printf("simulating %s under %s daemon: %d runs from uniformly random states\n",
		p.Name, d.Name(), runs)
	r := &sim.Runner{P: p, S: S, D: d, MaxSteps: maxSteps, StopAtS: true}
	rng := rand.New(rand.NewSource(seed))
	batch := r.RunMany(runs, rng, sim.RandomStates(p.Schema))

	s := metrics.Summarize(metrics.IntsToFloats(batch.Steps))
	fmt.Printf("converged: %d/%d (%.0f%%)\n", batch.ConvergedRuns, batch.Runs, 100*batch.ConvergenceRate())
	if batch.ConvergedRuns > 0 {
		fmt.Printf("steps to converge: mean %.1f, median %.0f, p95 %.1f, max %.0f\n",
			s.Mean, s.Median, s.P95, s.Max)
	}

	// One fault-injected run showing recovery from mid-run corruption.
	r2 := &sim.Runner{
		P: p, S: S, D: d, MaxSteps: maxSteps, StopAtS: true,
		Faults: fault.Schedule{{Step: 0, Inj: &fault.CorruptVars{}}},
	}
	res := r2.Run(p.Schema.NewState(), rng)
	fmt.Printf("recovery after corrupting every variable: %s\n", res)
	return nil
}
