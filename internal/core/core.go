// Package core implements the paper's design method for nonmasking
// fault-tolerant programs (Section 3).
//
// The workflow mirrors the paper exactly:
//
//  1. Start from a candidate triple (p, S, T): closure actions p that
//     preserve S and T, an invariant S, and a fault-span T.
//  2. Partition S into constraints that can each be independently checked
//     and established; S is the conjunction of the constraints with T.
//  3. For each constraint c, design a convergence action
//     "¬c -> establish c while preserving T".
//  4. Validate convergence via the constraint graph using the sufficient
//     conditions of Theorems 1-3 (internal/ctheory), or exactly via the
//     model checker (internal/verify).
//
// A Design bundles the triple; Builder constructs one incrementally.
package core

import (
	"context"
	"fmt"

	"nonmask/internal/constraint"
	"nonmask/internal/ctheory"
	"nonmask/internal/program"
	"nonmask/internal/verify"
)

// Design is a completed candidate triple with its constraint decomposition:
// the paper's (p ∪ q, S, T) where p is the closure actions and q the
// convergence actions attached to the constraints.
type Design struct {
	// Name identifies the design in reports.
	Name string
	// Schema declares the program's variables.
	Schema *program.Schema
	// Closure holds the closure actions (the candidate program p).
	Closure []*program.Action
	// Set holds the constraints of S with their convergence actions.
	Set *constraint.Set
	// T is the fault-span. For stabilizing designs T is true.
	T *program.Predicate
	// S is the invariant: the conjunction of the constraints with T.
	S *program.Predicate
}

// Builder constructs a Design incrementally.
type Builder struct {
	name    string
	schema  *program.Schema
	closure []*program.Action
	set     *constraint.Set
	t       *program.Predicate
	err     error
}

// NewDesign starts a design with a fresh schema.
func NewDesign(name string) *Builder {
	return NewDesignWithSchema(name, program.NewSchema())
}

// NewDesignWithSchema starts a design over an existing schema (used by
// front ends such as internal/gcl that declare variables before building
// the design).
func NewDesignWithSchema(name string, schema *program.Schema) *Builder {
	return &Builder{
		name:   name,
		schema: schema,
		set:    constraint.NewSet(),
		t:      program.True(),
	}
}

// Schema exposes the design's schema for variable declaration.
func (b *Builder) Schema() *program.Schema { return b.schema }

// FaultSpan sets T. Unset means true (stabilizing design).
func (b *Builder) FaultSpan(t *program.Predicate) *Builder {
	b.t = t
	return b
}

// Closure adds closure actions. Their Kind must be program.Closure.
func (b *Builder) Closure(actions ...*program.Action) *Builder {
	for _, a := range actions {
		if a.Kind != program.Closure {
			b.fail(fmt.Errorf("core: action %q has kind %s, want closure", a.Name, a.Kind))
			return b
		}
		b.closure = append(b.closure, a)
	}
	return b
}

// Constraint adds one constraint of S with its convergence action at the
// given layer (0 for single-layer designs).
func (b *Builder) Constraint(layer int, pred *program.Predicate, conv *program.Action) *Builder {
	if conv != nil && conv.Kind != program.Convergence {
		b.fail(fmt.Errorf("core: action %q has kind %s, want convergence", conv.Name, conv.Kind))
		return b
	}
	b.set.Add(&constraint.Constraint{Pred: pred, Action: conv, Layer: layer})
	return b
}

// Target declares the S-conjunct a layer establishes when it is weaker than
// the conjunction of the layer's constraints (see constraint.LayerTarget;
// the paper's token ring uses this for its second conjunct).
func (b *Builder) Target(layer int, target *program.Predicate) *Builder {
	b.set.SetTarget(layer, target)
	return b
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build finalizes the design. It validates structure (nonempty schema and
// constraint set, well-typed actions) and computes S = T ∧ constraints.
func (b *Builder) Build() (*Design, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.schema.Len() == 0 {
		return nil, fmt.Errorf("core: design %q declares no variables", b.name)
	}
	if err := b.set.Validate(); err != nil {
		return nil, fmt.Errorf("core: design %q: %w", b.name, err)
	}
	d := &Design{
		Name:    b.name,
		Schema:  b.schema,
		Closure: b.closure,
		Set:     b.set,
		T:       b.t,
	}
	conj := b.set.TargetConjunction("")
	d.S = program.And("S("+b.name+")", b.t, conj)
	// Sanity-check the assembled programs.
	if err := d.TolerantProgram().Validate(); err != nil {
		return nil, fmt.Errorf("core: design %q: %w", b.name, err)
	}
	return d, nil
}

// ClosureProgram returns the candidate program p (closure actions only).
func (d *Design) ClosureProgram() *program.Program {
	p := program.New(d.Name+"/closure", d.Schema)
	p.Add(d.Closure...)
	return p
}

// TolerantProgram returns the augmented program p ∪ q: closure actions
// followed by all convergence actions.
func (d *Design) TolerantProgram() *program.Program {
	p := program.New(d.Name, d.Schema)
	p.Add(d.Closure...)
	p.Add(d.Set.ConvergenceActions()...)
	return p
}

// TheoryInput converts the design for the theorem checkers.
func (d *Design) TheoryInput(strategy verify.Strategy, opts verify.Options) *ctheory.Input {
	return &ctheory.Input{
		Closure:  d.Closure,
		T:        d.T,
		Set:      d.Set,
		Schema:   d.Schema,
		Strategy: strategy,
		Opts:     opts,
	}
}

// Validate runs the paper's sufficient conditions (Theorems 1, 2, 3 in
// order) and returns the first applicable report, plus every report tried.
func (d *Design) Validate(strategy verify.Strategy, opts verify.Options) (*ctheory.Report, []*ctheory.Report, error) {
	return ctheory.Validate(d.TheoryInput(strategy, opts))
}

// VerifyResult bundles the exact model-checking verdicts for a design.
type VerifyResult struct {
	// Closure is nil when S and T are closed in the tolerant program.
	Closure *verify.ClosureViolation
	// Unfair is the convergence verdict under the arbitrary daemon.
	Unfair *verify.ConvergenceResult
	// FairOnly is set when unfair convergence fails; it reports whether
	// the weaker, fair-daemon convergence holds instead.
	FairOnly *verify.ConvergenceResult
	// Classification is masking or nonmasking (Section 3).
	Classification verify.Classification
	// Report is the underlying verify.Check report, carrying the
	// enumerated space, timing, and effective options.
	Report *verify.Report
}

// Tolerant reports whether the design met the paper's definition: closure
// plus convergence (under the fair daemon at least).
func (r *VerifyResult) Tolerant() bool {
	if r.Closure != nil {
		return false
	}
	if r.Unfair.Converges {
		return true
	}
	return r.FairOnly != nil && r.FairOnly.Converges
}

// Verify model-checks the design exactly: closure of S and T, convergence
// under the arbitrary daemon, and — when that fails — convergence under the
// fair daemon. Only feasible for enumerable instances.
func (d *Design) Verify(opts verify.Options) (*VerifyResult, error) {
	return d.VerifyContext(context.Background(), verify.WithOptions(opts))
}

// VerifyContext model-checks the design through verify.Check with
// cancellation and functional options (WithWorkers, WithMaxStates,
// WithDeadline, ...).
func (d *Design) VerifyContext(ctx context.Context, options ...verify.Option) (*VerifyResult, error) {
	rep, err := verify.Check(ctx, d.TolerantProgram(), d.S, d.T, options...)
	if err != nil {
		return nil, err
	}
	return &VerifyResult{
		Closure:        rep.Closure,
		Unfair:         rep.Unfair,
		FairOnly:       rep.Fair,
		Classification: rep.Classification,
		Report:         rep,
	}, nil
}

// Space builds the design's verification space for custom checks.
func (d *Design) Space(opts verify.Options) (*verify.Space, error) {
	return verify.NewSpaceContext(context.Background(), d.TolerantProgram(), d.S, d.T, opts)
}
