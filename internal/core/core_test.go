package core

import (
	"strings"
	"testing"

	"nonmask/internal/ctheory"
	"nonmask/internal/program"
	"nonmask/internal/verify"
)

// buildCounter constructs a design: closure increments x toward max, the
// single constraint pins y to 0.
func buildCounter(t *testing.T) *Design {
	t.Helper()
	b := NewDesign("counter")
	s := b.Schema()
	x := s.MustDeclare("x", program.IntRange(0, 4))
	y := s.MustDeclare("y", program.IntRange(0, 4))
	b.Closure(program.NewAction("inc", program.Closure,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) < 4 },
		func(st *program.State) { st.Set(x, st.Get(x)+1) }))
	yZero := program.NewPredicate("y=0", []program.VarID{y},
		func(st *program.State) bool { return st.Get(y) == 0 })
	b.Constraint(0, yZero, program.NewAction("fix-y", program.Convergence,
		[]program.VarID{y}, []program.VarID{y},
		func(st *program.State) bool { return st.Get(y) != 0 },
		func(st *program.State) { st.Set(y, 0) }))
	d, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return d
}

func TestBuildAssemblesPrograms(t *testing.T) {
	d := buildCounter(t)
	if got := len(d.ClosureProgram().Actions); got != 1 {
		t.Errorf("closure program has %d actions, want 1", got)
	}
	tp := d.TolerantProgram()
	if got := len(tp.Actions); got != 2 {
		t.Errorf("tolerant program has %d actions, want 2", got)
	}
	if err := tp.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// S = T && y=0, with T = true.
	st := d.Schema.NewState()
	if !d.S.Holds(st) {
		t.Error("S fails at y=0")
	}
	st.Set(d.Schema.MustLookup("y"), 3)
	if d.S.Holds(st) {
		t.Error("S holds at y=3")
	}
	if !d.T.IsConstTrue() {
		t.Error("default T is not true")
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("no variables", func(t *testing.T) {
		if _, err := NewDesign("empty").Build(); err == nil {
			t.Error("Build succeeded with no variables")
		}
	})
	t.Run("no constraints", func(t *testing.T) {
		b := NewDesign("d")
		b.Schema().MustDeclare("x", program.Bool())
		if _, err := b.Build(); err == nil {
			t.Error("Build succeeded with no constraints")
		}
	})
	t.Run("wrong closure kind", func(t *testing.T) {
		b := NewDesign("d")
		s := b.Schema()
		x := s.MustDeclare("x", program.Bool())
		b.Closure(program.NewAction("a", program.Convergence,
			[]program.VarID{x}, []program.VarID{x},
			func(*program.State) bool { return false }, func(*program.State) {}))
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "want closure") {
			t.Errorf("Build error = %v", err)
		}
	})
	t.Run("wrong convergence kind", func(t *testing.T) {
		b := NewDesign("d")
		s := b.Schema()
		x := s.MustDeclare("x", program.Bool())
		pred := program.NewPredicate("p", []program.VarID{x},
			func(*program.State) bool { return true })
		b.Constraint(0, pred, program.NewAction("a", program.Closure,
			[]program.VarID{x}, []program.VarID{x},
			func(*program.State) bool { return false }, func(*program.State) {}))
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "want convergence") {
			t.Errorf("Build error = %v", err)
		}
	})
}

func TestVerifyTolerant(t *testing.T) {
	d := buildCounter(t)
	res, err := d.Verify(verify.Options{})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.Tolerant() {
		t.Error("design not tolerant")
	}
	if res.Closure != nil {
		t.Errorf("closure violation: %v", res.Closure)
	}
	if !res.Unfair.Converges {
		t.Errorf("unfair convergence failed: %s", res.Unfair.Summary())
	}
	if res.Classification != verify.Nonmasking {
		t.Errorf("classification = %v", res.Classification)
	}
}

func TestValidatePicksTheorem(t *testing.T) {
	d := buildCounter(t)
	r, all, err := d.Validate(verify.Exhaustive, verify.Options{})
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Single constraint whose action reads only what it writes: the graph
	// is a self-loop — not an out-tree, so Theorem 2 is the first to apply.
	if r == nil || r.Theorem != ctheory.Theorem2 {
		t.Errorf("validated by %v (reports %d), want Theorem 2", r, len(all))
	}
}

func TestFaultSpanSetting(t *testing.T) {
	b := NewDesign("spanned")
	s := b.Schema()
	x := s.MustDeclare("x", program.IntRange(0, 4))
	T := program.NewPredicate("x<=2", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) <= 2 })
	b.FaultSpan(T)
	xZero := program.NewPredicate("x=0", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == 0 })
	b.Constraint(0, xZero, program.NewAction("fix", program.Convergence,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) != 0 },
		func(st *program.State) { st.Set(x, 0) }))
	d, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	st := d.Schema.NewState()
	st.Set(x, 3)
	if d.T.Holds(st) {
		t.Error("T holds at x=3")
	}
	if d.S.Holds(st) {
		t.Error("S holds at x=3")
	}
	res, err := d.Verify(verify.Options{})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.Tolerant() {
		t.Error("design not tolerant")
	}
}

func TestVerifyResultFairFallback(t *testing.T) {
	// A design convergent only under fairness: a stuttering closure action
	// plus the productive convergence action.
	b := NewDesign("stutter")
	s := b.Schema()
	x := s.MustDeclare("x", program.IntRange(0, 1))
	b.Closure(program.NewAction("noop", program.Closure,
		[]program.VarID{x}, nil,
		func(st *program.State) bool { return st.Get(x) == 0 },
		func(*program.State) {}))
	xOne := program.NewPredicate("x=1", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == 1 })
	b.Constraint(0, xOne, program.NewAction("go", program.Convergence,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) != 1 },
		func(st *program.State) { st.Set(x, 1) }))
	d, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := d.Verify(verify.Options{})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res.Unfair.Converges {
		t.Error("stutter design converges unfairly?")
	}
	if res.FairOnly == nil || !res.FairOnly.Converges {
		t.Error("fair fallback did not converge")
	}
	if !res.Tolerant() {
		t.Error("fairly-convergent design not reported tolerant")
	}
}
