package gcl

import (
	"strings"
	"testing"
)

func TestParseMinimal(t *testing.T) {
	f, err := Parse("program p; var x : bool; action a : x -> x := false;")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Name != "p" || len(f.Vars) != 1 || len(f.Actions) != 1 {
		t.Errorf("file = %+v", f)
	}
	a := f.Actions[0]
	if a.Kind != "closure" || len(a.LHS) != 1 || a.LHS[0].Name != "x" {
		t.Errorf("action = %+v", a)
	}
}

func TestParseDeclarations(t *testing.T) {
	src := `
program full;
const N = 3;
const P = [0, 0, 1];
var c[N] : {green, red};
var sn[N] : bool;
var k : 0..N-1;
faultspan : k < 2;
invariant R layer 1 for j in 1..N-1 : c[j] = c[P[j]];
target 1 : k = 0;
action fix for j in 1..N-1 convergence establishes R : c[j] != c[P[j]] -> c[j] := c[P[j]];
action idle : false -> skip;
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(f.Consts) != 2 || f.Consts[1].Elems == nil {
		t.Errorf("consts = %+v", f.Consts)
	}
	if len(f.Vars) != 3 {
		t.Errorf("vars = %d", len(f.Vars))
	}
	if f.Span == nil {
		t.Error("faultspan missing")
	}
	if len(f.Targets) != 1 || f.Targets[0].Layer != 1 {
		t.Errorf("targets = %+v", f.Targets)
	}
	inv := f.Invs[0]
	if inv.Layer != 1 || inv.Param != "j" {
		t.Errorf("invariant = %+v", inv)
	}
	fix := f.Actions[0]
	if fix.Kind != "convergence" || fix.Establishes != "R" || fix.Param != "j" {
		t.Errorf("fix = %+v", fix)
	}
	idle := f.Actions[1]
	if len(idle.LHS) != 0 {
		t.Errorf("skip action has assignments: %+v", idle)
	}
}

func TestParsePrecedence(t *testing.T) {
	f, err := Parse("program p; var x : 0..9; action a : x + 2 * 3 = 7 || x < 1 && x > 0 -> skip;")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// Top must be ||, left (=), right (&&).
	or, ok := f.Actions[0].Guard.(*Binary)
	if !ok || or.Op != tokOr {
		t.Fatalf("top = %T", f.Actions[0].Guard)
	}
	eq, ok := or.L.(*Binary)
	if !ok || eq.Op != tokEq {
		t.Fatalf("or.L = %+v", or.L)
	}
	// eq.L is x + (2*3).
	add, ok := eq.L.(*Binary)
	if !ok || add.Op != tokPlus {
		t.Fatalf("eq.L = %+v", eq.L)
	}
	if mul, ok := add.R.(*Binary); !ok || mul.Op != tokStar {
		t.Fatalf("add.R = %+v", add.R)
	}
	if and, ok := or.R.(*Binary); !ok || and.Op != tokAnd {
		t.Fatalf("or.R = %+v", or.R)
	}
}

func TestParseQuantifier(t *testing.T) {
	f, err := Parse("program p; var c[3] : bool; action a : forall k in 0..2 : (c[k]) -> skip;")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	q, ok := f.Actions[0].Guard.(*Quant)
	if !ok || !q.ForAll || q.Param != "k" {
		t.Fatalf("guard = %+v", f.Actions[0].Guard)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name, src, substr string
	}{
		{"no program", "var x : bool;", "expected 'program'"},
		{"missing semi", "program p", "expected ';'"},
		{"bad decl", "program p; flub;", "expected declaration"},
		{"unbalanced assign", "program p; var x : bool; var y : bool; action a : x -> x, y := true;", "2 targets from 1"},
		{"duplicate faultspan", "program p; faultspan : true; faultspan : true;", "duplicate faultspan"},
		{"missing arrow", "program p; action a : true skip;", "expected '->'"},
		{"bad expression", "program p; action a : -> skip;", "expected expression"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatal("Parse succeeded")
			}
			if !strings.Contains(err.Error(), tt.substr) {
				t.Errorf("error %q, want substring %q", err, tt.substr)
			}
		})
	}
}

func TestPrintRoundTrip(t *testing.T) {
	srcs := []string{
		"program p; var x : bool; action a : x -> x := false;",
		`program q;
const N = 3;
const P = [0, 0, 1];
var c[N] : {green, red};
var sn[N] : bool;
faultspan : true;
invariant R layer 2 for j in 1..N-1 : (c[j] = c[P[j]] && sn[j] = sn[P[j]]) || (c[j] = green && c[P[j]] = red);
target 2 : c[0] = green;
action fix for j in 1..N-1 convergence establishes R : c[j] != c[P[j]] -> c[j], sn[j] := c[P[j]], sn[P[j]];
action probe : exists k in 0..N-1 : (c[k] = red) -> skip;
action arith : (1 + 2) * 3 - 4 mod 2 = 7 && !(true || false) -> skip;`,
	}
	for _, src := range srcs {
		f1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		printed := Print(f1)
		f2, err := Parse(printed)
		if err != nil {
			t.Fatalf("Parse(Print):\n%s\nerror: %v", printed, err)
		}
		if Print(f2) != printed {
			t.Errorf("print not a fixed point:\n%s\nvs\n%s", printed, Print(f2))
		}
	}
}
