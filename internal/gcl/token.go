// Package gcl implements the guarded-command language of the paper's
// Section 2: programs are finite sets of variables over finite domains and
// finite sets of actions "guard -> statement". The package provides a
// lexer, parser, static checker, and compiler to program.Program /
// core.Design values, plus a pretty-printer, so the paper's printed
// programs can be written down verbatim (see testdata/*.gcl) and fed to the
// model checker and simulator.
//
// The surface syntax follows the paper with ASCII operators:
//
//	program diffusing;
//	const N = 3;
//	const P = [0, 0, 1];
//	var c[N] : {green, red};
//	var sn[N] : bool;
//
//	invariant R for j in 1..N-1 :
//	    (c[j] = c[P[j]] && sn[j] = sn[P[j]]) || (c[j] = green && c[P[j]] = red);
//
//	action initiate closure :
//	    c[0] = green -> c[0], sn[0] := red, !sn[0];
//	action fix for j in 1..N-1 convergence establishes R :
//	    !((c[j] = c[P[j]] && sn[j] = sn[P[j]]) || (c[j] = green && c[P[j]] = red))
//	    -> c[j], sn[j] := c[P[j]], sn[P[j]];
//
// Enum labels (green, red) are bound as global integer constants by their
// declaration order, so expressions compare them like integers.
package gcl

import "fmt"

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokNumber
	tokString

	// Keywords.
	tokProgram
	tokConst
	tokVar
	tokInvariant
	tokFaultspan
	tokAction
	tokFor
	tokIn
	tokLayer
	tokClosure
	tokConvergence
	tokFault
	tokEstablishes
	tokTarget
	tokTrue
	tokFalse
	tokSkip
	tokForall
	tokExists
	tokMod
	tokBool

	// Punctuation and operators.
	tokSemi     // ;
	tokColon    // :
	tokComma    // ,
	tokLParen   // (
	tokRParen   // )
	tokLBracket // [
	tokRBracket // ]
	tokLBrace   // {
	tokRBrace   // }
	tokArrow    // ->
	tokAssign   // :=
	tokDotDot   // ..
	tokOr       // ||
	tokAnd      // &&
	tokNot      // !
	tokEq       // =
	tokNeq      // !=
	tokLt       // <
	tokLe       // <=
	tokGt       // >
	tokGe       // >=
	tokPlus     // +
	tokMinus    // -
	tokStar     // *
	tokSlash    // /
)

var keywords = map[string]tokenKind{
	"program":     tokProgram,
	"const":       tokConst,
	"var":         tokVar,
	"invariant":   tokInvariant,
	"faultspan":   tokFaultspan,
	"action":      tokAction,
	"for":         tokFor,
	"in":          tokIn,
	"layer":       tokLayer,
	"closure":     tokClosure,
	"convergence": tokConvergence,
	"fault":       tokFault,
	"establishes": tokEstablishes,
	"target":      tokTarget,
	"true":        tokTrue,
	"false":       tokFalse,
	"skip":        tokSkip,
	"forall":      tokForall,
	"exists":      tokExists,
	"mod":         tokMod,
	"bool":        tokBool,
}

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokSemi:
		return "';'"
	case tokColon:
		return "':'"
	case tokComma:
		return "','"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokArrow:
		return "'->'"
	case tokAssign:
		return "':='"
	case tokDotDot:
		return "'..'"
	case tokOr:
		return "'||'"
	case tokAnd:
		return "'&&'"
	case tokNot:
		return "'!'"
	case tokEq:
		return "'='"
	case tokNeq:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	default:
		for name, kk := range keywords {
			if kk == k {
				return "'" + name + "'"
			}
		}
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// token is one lexical token.
type token struct {
	kind tokenKind
	text string
	num  int32
	pos  Pos
}

// Error is a positioned gcl error.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("gcl:%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
