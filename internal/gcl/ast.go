package gcl

// File is a parsed gcl source file.
type File struct {
	Name    string
	Consts  []*ConstDecl
	Vars    []*VarDecl
	Invs    []*InvariantDecl
	Targets []*TargetDecl
	Span    *FaultspanDecl
	Actions []*ActionDecl
}

// ConstDecl declares an integer constant or constant array.
type ConstDecl struct {
	Pos   Pos
	Name  string
	Value Expr   // scalar form; nil for arrays
	Elems []Expr // array form; nil for scalars
}

// VarDecl declares a variable or variable array.
type VarDecl struct {
	Pos  Pos
	Name string
	// Size is the array length expression; nil for scalars.
	Size Expr
	Type TypeExpr
}

// TypeExpr is a variable domain: bool, a range, or an enum label set.
type TypeExpr struct {
	Pos Pos
	// Bool marks the boolean domain.
	Bool bool
	// Lo..Hi bound an integer range domain (when Bool is false and Labels
	// is empty).
	Lo, Hi Expr
	// Labels list an enum domain.
	Labels []string
}

// InvariantDecl declares one (possibly parameterized) constraint family.
type InvariantDecl struct {
	Pos   Pos
	Name  string
	Layer int
	// Param quantifies the family; empty for a single constraint.
	Param  string
	Lo, Hi Expr // parameter range (when Param != "")
	Body   Expr
}

// TargetDecl declares the S-conjunct a layer establishes when it is weaker
// than the conjunction of the layer's invariants (the paper's token ring:
// "we propose to satisfy the second conjunct by satisfying the constraints
// x.j = x.(j+1)").
type TargetDecl struct {
	Pos   Pos
	Layer int
	Body  Expr
}

// FaultspanDecl declares the fault-span predicate T.
type FaultspanDecl struct {
	Pos  Pos
	Body Expr
}

// ActionDecl declares one (possibly parameterized) action family.
type ActionDecl struct {
	Pos  Pos
	Name string
	// Param quantifies the family; empty for a single action.
	Param  string
	Lo, Hi Expr
	// Kind is "closure" (default), "convergence" or "fault".
	Kind string
	// Establishes names the invariant family this convergence action
	// establishes (convergence actions only).
	Establishes string
	Guard       Expr
	// LHS/RHS form the multi-assignment; both empty for skip.
	LHS []*VarRef
	RHS []Expr
}

// Expr is an expression node.
type Expr interface {
	pos() Pos
}

// NumLit is an integer literal.
type NumLit struct {
	Pos Pos
	Val int32
}

// BoolLit is true or false.
type BoolLit struct {
	Pos Pos
	Val bool
}

// VarRef references a scalar name or an indexed array element. At parse
// time the name may denote a variable, a constant, an enum label, or a
// bound parameter; resolution happens in the checker.
type VarRef struct {
	Pos   Pos
	Name  string
	Index Expr // nil for scalars
}

// Unary is !x or -x.
type Unary struct {
	Pos Pos
	Op  tokenKind
	X   Expr
}

// Binary is a binary operation.
type Binary struct {
	Pos  Pos
	Op   tokenKind
	L, R Expr
}

// Quant is forall/exists param in lo..hi : (body).
type Quant struct {
	Pos    Pos
	ForAll bool
	Param  string
	Lo, Hi Expr
	Body   Expr
}

func (e *NumLit) pos() Pos  { return e.Pos }
func (e *BoolLit) pos() Pos { return e.Pos }
func (e *VarRef) pos() Pos  { return e.Pos }
func (e *Unary) pos() Pos   { return e.Pos }
func (e *Binary) pos() Pos  { return e.Pos }
func (e *Quant) pos() Pos   { return e.Pos }

// exprs that implement Expr
var (
	_ Expr = (*NumLit)(nil)
	_ Expr = (*BoolLit)(nil)
	_ Expr = (*VarRef)(nil)
	_ Expr = (*Unary)(nil)
	_ Expr = (*Binary)(nil)
	_ Expr = (*Quant)(nil)
)
