package gcl

import (
	"fmt"

	"nonmask/internal/constraint"
	"nonmask/internal/core"
	"nonmask/internal/program"
)

// Module is a compiled gcl file.
type Module struct {
	// Name is the program name from the source.
	Name string
	// Schema declares the compiled variables.
	Schema *program.Schema
	// Program holds every compiled action (closure, convergence, fault).
	Program *program.Program
	// Set holds the compiled invariants as constraints; constraints whose
	// invariant has an establishing convergence action carry it.
	Set *constraint.Set
	// T is the fault-span (true when the source has no faultspan decl).
	T *program.Predicate
	// S is T conjoined with all invariants.
	S *program.Predicate
	// Design is the assembled candidate triple; nil when some invariant
	// lacks an establishing convergence action (the module is still
	// runnable and checkable through Program and S).
	Design *core.Design
}

// typ is the static type of an expression.
type typ int

const (
	typInt typ = iota + 1
	typBool
)

func (t typ) String() string {
	if t == typBool {
		return "bool"
	}
	return "int"
}

// cexpr is a compiled expression: quantifier bindings live in q.
type cexpr func(st *program.State, q []int32) int32

// varSym is a declared variable or array.
type varSym struct {
	base program.VarID
	// size is the array length, or -1 for scalars.
	size int
	dom  program.Domain
}

// compiler holds symbol tables.
type compiler struct {
	file   *File
	schema *program.Schema
	consts map[string]int32
	arrays map[string][]int32 // const arrays
	enums  map[string]int32   // enum labels as global constants
	vars   map[string]*varSym
}

// Compile type-checks and compiles a parsed file.
func Compile(f *File) (*Module, error) {
	c := &compiler{
		file:   f,
		schema: program.NewSchema(),
		consts: map[string]int32{},
		arrays: map[string][]int32{},
		enums:  map[string]int32{},
		vars:   map[string]*varSym{},
	}
	if err := c.declareConsts(); err != nil {
		return nil, err
	}
	if err := c.declareVars(); err != nil {
		return nil, err
	}
	m := &Module{Name: f.Name, Schema: c.schema}

	// Fault span.
	m.T = program.True()
	if f.Span != nil {
		pred, err := c.compilePredicate("T", f.Span.Body, nil)
		if err != nil {
			return nil, err
		}
		m.T = pred
	}

	// Invariants: expand parameter families into individual constraints.
	type invKey struct {
		name  string
		param int32
	}
	constraintOf := map[invKey]*constraint.Constraint{}
	set := constraint.NewSet()
	for _, inv := range f.Invs {
		insts, err := c.expand(inv.Pos, inv.Param, inv.Lo, inv.Hi)
		if err != nil {
			return nil, err
		}
		for _, pv := range insts {
			env := map[string]int32{}
			label := inv.Name
			if inv.Param != "" {
				env[inv.Param] = pv
				label = fmt.Sprintf("%s[%d]", inv.Name, pv)
			}
			pred, err := c.compilePredicate(label, inv.Body, env)
			if err != nil {
				return nil, err
			}
			cst := &constraint.Constraint{Pred: pred, Layer: inv.Layer}
			set.Add(cst)
			constraintOf[invKey{inv.Name, pv}] = cst
		}
	}
	m.Set = set

	// Layer targets.
	for _, td := range f.Targets {
		pred, err := c.compilePredicate(fmt.Sprintf("target[layer %d]", td.Layer), td.Body, nil)
		if err != nil {
			return nil, err
		}
		set.SetTarget(td.Layer, pred)
	}

	// Actions.
	prog := program.New(f.Name, c.schema)
	for _, act := range f.Actions {
		insts, err := c.expand(act.Pos, act.Param, act.Lo, act.Hi)
		if err != nil {
			return nil, err
		}
		kind := program.Closure
		switch act.Kind {
		case "convergence":
			kind = program.Convergence
		case "fault":
			kind = program.Fault
		}
		if act.Establishes != "" && kind != program.Convergence {
			return nil, errf(act.Pos, "action %q: only convergence actions may establish an invariant", act.Name)
		}
		for _, pv := range insts {
			env := map[string]int32{}
			label := act.Name
			if act.Param != "" {
				env[act.Param] = pv
				label = fmt.Sprintf("%s(%d)", act.Name, pv)
			}
			a, err := c.compileAction(label, kind, act, env)
			if err != nil {
				return nil, err
			}
			prog.Add(a)
			if act.Establishes != "" {
				cst, ok := constraintOf[invKey{act.Establishes, pv}]
				if !ok {
					return nil, errf(act.Pos,
						"action %q establishes unknown invariant instance %s[%d]",
						act.Name, act.Establishes, pv)
				}
				if cst.Action != nil {
					return nil, errf(act.Pos,
						"invariant instance %s[%d] established by two actions",
						act.Establishes, pv)
				}
				cst.Action = a
			}
		}
	}
	m.Program = prog
	if err := prog.Validate(); err != nil {
		return nil, err
	}

	m.S = program.And("S("+f.Name+")", m.T, set.TargetConjunction(""))

	// Assemble a core.Design when the pairing is complete.
	if set.Len() > 0 && set.Validate() == nil {
		b := core.NewDesignWithSchema(f.Name, c.schema)
		b.FaultSpan(m.T)
		for _, a := range prog.OfKind(program.Closure) {
			b.Closure(a)
		}
		for _, cst := range set.Constraints {
			b.Constraint(cst.Layer, cst.Pred, cst.Action)
		}
		for _, t := range set.Targets {
			b.Target(t.Layer, t.Target)
		}
		d, err := b.Build()
		if err != nil {
			return nil, errf(Pos{}, "assembling design: %v", err)
		}
		m.Design = d
	}
	return m, nil
}

// Load parses and compiles gcl source.
func Load(src string) (*Module, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(f)
}

// declareConsts evaluates const declarations in order and binds enum
// labels from variable declarations as constants.
func (c *compiler) declareConsts() error {
	for _, d := range c.file.Consts {
		if _, dup := c.consts[d.Name]; dup {
			return errf(d.Pos, "constant %q redeclared", d.Name)
		}
		if _, dup := c.arrays[d.Name]; dup {
			return errf(d.Pos, "constant %q redeclared", d.Name)
		}
		if d.Value != nil {
			v, err := c.constEval(d.Value, nil)
			if err != nil {
				return err
			}
			c.consts[d.Name] = v
			continue
		}
		vals := make([]int32, len(d.Elems))
		for i, e := range d.Elems {
			v, err := c.constEval(e, nil)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		c.arrays[d.Name] = vals
	}
	// Enum labels: first binding wins; conflicting positions are errors.
	for _, d := range c.file.Vars {
		for i, label := range d.Type.Labels {
			if prev, ok := c.enums[label]; ok {
				if prev != int32(i) {
					return errf(d.Type.Pos,
						"enum label %q bound to %d here but %d earlier", label, i, prev)
				}
				continue
			}
			if _, clash := c.consts[label]; clash {
				return errf(d.Type.Pos, "enum label %q collides with a constant", label)
			}
			c.enums[label] = int32(i)
		}
	}
	return nil
}

func (c *compiler) declareVars() error {
	for _, d := range c.file.Vars {
		if _, dup := c.vars[d.Name]; dup {
			return errf(d.Pos, "variable %q redeclared", d.Name)
		}
		if _, clash := c.consts[d.Name]; clash {
			return errf(d.Pos, "variable %q collides with a constant", d.Name)
		}
		if _, clash := c.enums[d.Name]; clash {
			return errf(d.Pos, "variable %q collides with an enum label", d.Name)
		}
		dom, err := c.domainOf(d.Type)
		if err != nil {
			return err
		}
		sym := &varSym{size: -1, dom: dom}
		if d.Size != nil {
			n, err := c.constEval(d.Size, nil)
			if err != nil {
				return err
			}
			if n <= 0 {
				return errf(d.Pos, "array %q has non-positive size %d", d.Name, n)
			}
			ids, err := c.schema.DeclareArray(d.Name, int(n), dom)
			if err != nil {
				return errf(d.Pos, "%v", err)
			}
			sym.base = ids[0]
			sym.size = int(n)
		} else {
			id, err := c.schema.Declare(d.Name, dom)
			if err != nil {
				return errf(d.Pos, "%v", err)
			}
			sym.base = id
		}
		c.vars[d.Name] = sym
	}
	return nil
}

func (c *compiler) domainOf(t TypeExpr) (program.Domain, error) {
	switch {
	case t.Bool:
		return program.Bool(), nil
	case len(t.Labels) > 0:
		return program.Enum(t.Labels...), nil
	default:
		lo, err := c.constEval(t.Lo, nil)
		if err != nil {
			return program.Domain{}, err
		}
		hi, err := c.constEval(t.Hi, nil)
		if err != nil {
			return program.Domain{}, err
		}
		if hi < lo {
			return program.Domain{}, errf(t.Pos, "empty range %d..%d", lo, hi)
		}
		return program.IntRange(lo, hi), nil
	}
}

// constEval evaluates an expression that must not read program variables.
// env binds action/invariant parameters.
func (c *compiler) constEval(e Expr, env map[string]int32) (int32, error) {
	switch n := e.(type) {
	case *NumLit:
		return n.Val, nil
	case *BoolLit:
		if n.Val {
			return 1, nil
		}
		return 0, nil
	case *VarRef:
		if v, ok := env[n.Name]; ok && n.Index == nil {
			return v, nil
		}
		if v, ok := c.consts[n.Name]; ok && n.Index == nil {
			return v, nil
		}
		if v, ok := c.enums[n.Name]; ok && n.Index == nil {
			return v, nil
		}
		if arr, ok := c.arrays[n.Name]; ok {
			if n.Index == nil {
				return 0, errf(n.Pos, "constant array %q used without index", n.Name)
			}
			idx, err := c.constEval(n.Index, env)
			if err != nil {
				return 0, err
			}
			if idx < 0 || int(idx) >= len(arr) {
				return 0, errf(n.Pos, "index %d out of range for %q (length %d)", idx, n.Name, len(arr))
			}
			return arr[idx], nil
		}
		if _, isVar := c.vars[n.Name]; isVar {
			return 0, errf(n.Pos, "variable %q not allowed in constant expression", n.Name)
		}
		return 0, errf(n.Pos, "undefined name %q", n.Name)
	case *Unary:
		v, err := c.constEval(n.X, env)
		if err != nil {
			return 0, err
		}
		if n.Op == tokMinus {
			return -v, nil
		}
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	case *Binary:
		l, err := c.constEval(n.L, env)
		if err != nil {
			return 0, err
		}
		r, err := c.constEval(n.R, env)
		if err != nil {
			return 0, err
		}
		return applyBinary(n.Pos, n.Op, l, r)
	default:
		return 0, errf(e.pos(), "expression not constant")
	}
}

func applyBinary(pos Pos, op tokenKind, l, r int32) (int32, error) {
	b := func(v bool) int32 {
		if v {
			return 1
		}
		return 0
	}
	switch op {
	case tokPlus:
		return l + r, nil
	case tokMinus:
		return l - r, nil
	case tokStar:
		return l * r, nil
	case tokSlash:
		if r == 0 {
			return 0, errf(pos, "division by zero")
		}
		return l / r, nil
	case tokMod:
		if r == 0 {
			return 0, errf(pos, "mod by zero")
		}
		v := l % r
		if v < 0 {
			v += r
		}
		return v, nil
	case tokEq:
		return b(l == r), nil
	case tokNeq:
		return b(l != r), nil
	case tokLt:
		return b(l < r), nil
	case tokLe:
		return b(l <= r), nil
	case tokGt:
		return b(l > r), nil
	case tokGe:
		return b(l >= r), nil
	case tokAnd:
		return b(l != 0 && r != 0), nil
	case tokOr:
		return b(l != 0 || r != 0), nil
	default:
		return 0, errf(pos, "unsupported operator %s", op)
	}
}

// expand enumerates a parameter range (or the single unparameterized
// instance, signalled by an empty param name).
func (c *compiler) expand(pos Pos, param string, lo, hi Expr) ([]int32, error) {
	if param == "" {
		return []int32{0}, nil
	}
	loV, err := c.constEval(lo, nil)
	if err != nil {
		return nil, err
	}
	hiV, err := c.constEval(hi, nil)
	if err != nil {
		return nil, err
	}
	if hiV < loV {
		return nil, errf(pos, "empty parameter range %d..%d", loV, hiV)
	}
	out := make([]int32, 0, hiV-loV+1)
	for v := loV; v <= hiV; v++ {
		out = append(out, v)
	}
	return out, nil
}
