package gcl

import (
	"nonmask/internal/program"
)

// scope carries the static context of one expression compilation.
type scope struct {
	c *compiler
	// params binds action/invariant parameters to their expansion values.
	params map[string]int32
	// quants maps quantifier variable names to stack depths.
	quants []string
	// reads accumulates the variables the expression may read.
	reads map[program.VarID]bool
}

func (s *scope) quantDepth(name string) (int, bool) {
	// Innermost binding wins.
	for i := len(s.quants) - 1; i >= 0; i-- {
		if s.quants[i] == name {
			return i, true
		}
	}
	return 0, false
}

func (s *scope) addRead(id program.VarID) { s.reads[id] = true }

func (s *scope) addReadAll(sym *varSym) {
	n := sym.size
	if n < 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		s.reads[sym.base+program.VarID(i)] = true
	}
}

// compileExpr compiles an expression to a closure and its static type.
func (s *scope) compileExpr(e Expr) (cexpr, typ, error) {
	switch n := e.(type) {
	case *NumLit:
		v := n.Val
		return func(*program.State, []int32) int32 { return v }, typInt, nil

	case *BoolLit:
		v := int32(0)
		if n.Val {
			v = 1
		}
		return func(*program.State, []int32) int32 { return v }, typBool, nil

	case *VarRef:
		return s.compileVarRef(n, false)

	case *Unary:
		x, xt, err := s.compileExpr(n.X)
		if err != nil {
			return nil, 0, err
		}
		switch n.Op {
		case tokNot:
			if xt != typBool {
				return nil, 0, errf(n.Pos, "operator ! needs a bool operand, got %s", xt)
			}
			return func(st *program.State, q []int32) int32 {
				if x(st, q) == 0 {
					return 1
				}
				return 0
			}, typBool, nil
		case tokMinus:
			if xt != typInt {
				return nil, 0, errf(n.Pos, "unary - needs an int operand, got %s", xt)
			}
			return func(st *program.State, q []int32) int32 { return -x(st, q) }, typInt, nil
		default:
			return nil, 0, errf(n.Pos, "unsupported unary operator")
		}

	case *Binary:
		l, lt, err := s.compileExpr(n.L)
		if err != nil {
			return nil, 0, err
		}
		r, rt, err := s.compileExpr(n.R)
		if err != nil {
			return nil, 0, err
		}
		switch n.Op {
		case tokAnd, tokOr:
			if lt != typBool || rt != typBool {
				return nil, 0, errf(n.Pos, "operator %s needs bool operands, got %s and %s", n.Op, lt, rt)
			}
			if n.Op == tokAnd {
				return func(st *program.State, q []int32) int32 {
					if l(st, q) == 0 {
						return 0
					}
					return r(st, q)
				}, typBool, nil
			}
			return func(st *program.State, q []int32) int32 {
				if l(st, q) != 0 {
					return 1
				}
				return r(st, q)
			}, typBool, nil

		case tokEq, tokNeq:
			// Equality is typed but polymorphic: both sides must agree.
			if lt != rt {
				return nil, 0, errf(n.Pos, "operator %s compares %s with %s", n.Op, lt, rt)
			}
		case tokLt, tokLe, tokGt, tokGe, tokPlus, tokMinus, tokStar, tokSlash, tokMod:
			if lt != typInt || rt != typInt {
				return nil, 0, errf(n.Pos, "operator %s needs int operands, got %s and %s", n.Op, lt, rt)
			}
		default:
			return nil, 0, errf(n.Pos, "unsupported operator")
		}
		op := n.Op
		pos := n.Pos
		outType := typBool
		switch op {
		case tokPlus, tokMinus, tokStar, tokSlash, tokMod:
			outType = typInt
		}
		return func(st *program.State, q []int32) int32 {
			v, err := applyBinary(pos, op, l(st, q), r(st, q))
			if err != nil {
				panic(err)
			}
			return v
		}, outType, nil

	case *Quant:
		lo, err := s.c.constEval(n.Lo, s.params)
		if err != nil {
			return nil, 0, err
		}
		hi, err := s.c.constEval(n.Hi, s.params)
		if err != nil {
			return nil, 0, err
		}
		if _, shadow := s.quantDepth(n.Param); shadow {
			return nil, 0, errf(n.Pos, "quantifier variable %q shadows an outer quantifier", n.Param)
		}
		if _, shadow := s.params[n.Param]; shadow {
			return nil, 0, errf(n.Pos, "quantifier variable %q shadows a parameter", n.Param)
		}
		s.quants = append(s.quants, n.Param)
		body, bt, err := s.compileExpr(n.Body)
		s.quants = s.quants[:len(s.quants)-1]
		if err != nil {
			return nil, 0, err
		}
		if bt != typBool {
			return nil, 0, errf(n.Pos, "quantifier body must be bool, got %s", bt)
		}
		forAll := n.ForAll
		return func(st *program.State, q []int32) int32 {
			q = append(q, 0)
			for v := lo; v <= hi; v++ {
				q[len(q)-1] = v
				b := body(st, q) != 0
				if forAll && !b {
					return 0
				}
				if !forAll && b {
					return 1
				}
			}
			if forAll {
				return 1
			}
			return 0
		}, typBool, nil
	}
	return nil, 0, errf(e.pos(), "unsupported expression")
}

// compileVarRef resolves a name reference. When write is true the name must
// be a program variable with a parameter-constant index, and the resolved
// variable ID is returned via the second closure mechanism (see
// resolveLValue).
func (s *scope) compileVarRef(n *VarRef, write bool) (cexpr, typ, error) {
	// Quantifier variable?
	if depth, ok := s.quantDepth(n.Name); ok {
		if n.Index != nil {
			return nil, 0, errf(n.Pos, "quantifier variable %q is not an array", n.Name)
		}
		return func(_ *program.State, q []int32) int32 { return q[depth] }, typInt, nil
	}
	// Action/invariant parameter?
	if v, ok := s.params[n.Name]; ok {
		if n.Index != nil {
			return nil, 0, errf(n.Pos, "parameter %q is not an array", n.Name)
		}
		return func(*program.State, []int32) int32 { return v }, typInt, nil
	}
	// Scalar constant or enum label?
	if v, ok := s.c.consts[n.Name]; ok && n.Index == nil {
		return func(*program.State, []int32) int32 { return v }, typInt, nil
	}
	if v, ok := s.c.enums[n.Name]; ok && n.Index == nil {
		return func(*program.State, []int32) int32 { return v }, typInt, nil
	}
	// Constant array?
	if arr, ok := s.c.arrays[n.Name]; ok {
		if n.Index == nil {
			return nil, 0, errf(n.Pos, "constant array %q used without index", n.Name)
		}
		idx, constIdx, err := s.compileIndex(n, len(arr))
		if err != nil {
			return nil, 0, err
		}
		if constIdx >= 0 {
			v := arr[constIdx]
			return func(*program.State, []int32) int32 { return v }, typInt, nil
		}
		pos := n.Pos
		name := n.Name
		length := len(arr)
		return func(st *program.State, q []int32) int32 {
			i := idx(st, q)
			if i < 0 || int(i) >= length {
				panic(errf(pos, "index %d out of range for %q (length %d)", i, name, length))
			}
			return arr[i]
		}, typInt, nil
	}
	// Program variable.
	sym, ok := s.c.vars[n.Name]
	if !ok {
		return nil, 0, errf(n.Pos, "undefined name %q", n.Name)
	}
	t := typInt
	if sym.dom.Kind == program.KindBool {
		t = typBool
	}
	if sym.size < 0 {
		if n.Index != nil {
			return nil, 0, errf(n.Pos, "variable %q is not an array", n.Name)
		}
		id := sym.base
		s.addRead(id)
		return func(st *program.State, _ []int32) int32 { return st.Get(id) }, t, nil
	}
	if n.Index == nil {
		return nil, 0, errf(n.Pos, "array %q used without index", n.Name)
	}
	idx, constIdx, err := s.compileIndex(n, sym.size)
	if err != nil {
		return nil, 0, err
	}
	if constIdx >= 0 {
		id := sym.base + program.VarID(constIdx)
		s.addRead(id)
		return func(st *program.State, _ []int32) int32 { return st.Get(id) }, t, nil
	}
	// Dynamic index: conservatively reads the whole array.
	s.addReadAll(sym)
	base := sym.base
	size := sym.size
	pos := n.Pos
	name := n.Name
	return func(st *program.State, q []int32) int32 {
		i := idx(st, q)
		if i < 0 || int(i) >= size {
			panic(errf(pos, "index %d out of range for %q (length %d)", i, name, size))
		}
		return st.Get(base + program.VarID(i))
	}, t, nil
}

// compileIndex compiles an index expression; when the index is constant
// under the current parameters (no quantifier variables or program state),
// its value is returned as constIdx >= 0 and validated against length.
func (s *scope) compileIndex(n *VarRef, length int) (idx cexpr, constIdx int32, err error) {
	if v, cerr := s.c.constEval(n.Index, s.params); cerr == nil {
		if v < 0 || int(v) >= length {
			return nil, 0, errf(n.Pos, "index %d out of range for %q (length %d)", v, n.Name, length)
		}
		return nil, v, nil
	}
	e, t, err := s.compileExpr(n.Index)
	if err != nil {
		return nil, 0, err
	}
	if t != typInt {
		return nil, 0, errf(n.Pos, "index must be int, got %s", t)
	}
	return e, -1, nil
}

// compilePredicate compiles a boolean expression into a named predicate.
func (c *compiler) compilePredicate(name string, e Expr, params map[string]int32) (*program.Predicate, error) {
	s := &scope{c: c, params: params, reads: map[program.VarID]bool{}}
	body, t, err := s.compileExpr(e)
	if err != nil {
		return nil, err
	}
	if t != typBool {
		return nil, errf(e.pos(), "predicate %q must be bool, got %s", name, t)
	}
	vars := make([]program.VarID, 0, len(s.reads))
	for id := range s.reads {
		vars = append(vars, id)
	}
	return program.NewPredicate(name, vars, func(st *program.State) bool {
		return body(st, nil) != 0
	}), nil
}

// resolveLValue resolves an assignment target to a concrete variable ID.
// LValue indices must be constant under the action's parameters.
func (s *scope) resolveLValue(n *VarRef) (program.VarID, error) {
	sym, ok := s.c.vars[n.Name]
	if !ok {
		return 0, errf(n.Pos, "undefined variable %q in assignment", n.Name)
	}
	if sym.size < 0 {
		if n.Index != nil {
			return 0, errf(n.Pos, "variable %q is not an array", n.Name)
		}
		return sym.base, nil
	}
	if n.Index == nil {
		return 0, errf(n.Pos, "array %q assigned without index", n.Name)
	}
	v, err := s.c.constEval(n.Index, s.params)
	if err != nil {
		return 0, errf(n.Pos, "assignment index must be constant: %v", err)
	}
	if v < 0 || int(v) >= sym.size {
		return 0, errf(n.Pos, "index %d out of range for %q (length %d)", v, n.Name, sym.size)
	}
	return sym.base + program.VarID(v), nil
}

// compileAction compiles one expanded action instance.
func (c *compiler) compileAction(name string, kind program.ActionKind,
	d *ActionDecl, params map[string]int32) (*program.Action, error) {
	gs := &scope{c: c, params: params, reads: map[program.VarID]bool{}}
	guard, gt, err := gs.compileExpr(d.Guard)
	if err != nil {
		return nil, err
	}
	if gt != typBool {
		return nil, errf(d.Guard.pos(), "guard of %q must be bool, got %s", name, gt)
	}

	bs := &scope{c: c, params: params, reads: map[program.VarID]bool{}}
	var targets []program.VarID
	var rhs []cexpr
	for i, lv := range d.LHS {
		id, err := bs.resolveLValue(lv)
		if err != nil {
			return nil, err
		}
		for _, prev := range targets {
			if prev == id {
				return nil, errf(lv.Pos, "variable assigned twice in action %q", name)
			}
		}
		targets = append(targets, id)
		e, et, err := bs.compileExpr(d.RHS[i])
		if err != nil {
			return nil, err
		}
		wantBool := c.schema.Spec(id).Dom.Kind == program.KindBool
		if wantBool && et != typBool {
			return nil, errf(d.RHS[i].pos(), "assigning %s to bool variable in %q", et, name)
		}
		if !wantBool && et == typBool {
			return nil, errf(d.RHS[i].pos(), "assigning bool to int variable in %q", name)
		}
		rhs = append(rhs, e)
	}

	reads := map[program.VarID]bool{}
	for id := range gs.reads {
		reads[id] = true
	}
	for id := range bs.reads {
		reads[id] = true
	}
	readList := make([]program.VarID, 0, len(reads))
	for id := range reads {
		readList = append(readList, id)
	}
	writeList := append([]program.VarID(nil), targets...)

	body := func(st *program.State) {
		// Parallel assignment: evaluate all RHS against the old state.
		vals := make([]int32, len(rhs))
		for i, e := range rhs {
			vals[i] = e(st, nil)
		}
		for i, id := range targets {
			st.Set(id, vals[i])
		}
	}
	return program.NewAction(name, kind, readList, writeList,
		func(st *program.State) bool { return guard(st, nil) != 0 },
		body), nil
}
