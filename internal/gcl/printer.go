package gcl

import (
	"fmt"
	"strings"
)

// Print renders a parsed file back to gcl surface syntax. Print and Parse
// round-trip: Parse(Print(f)) yields a structurally identical file.
func Print(f *File) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s;\n", f.Name)
	for _, d := range f.Consts {
		if d.Value != nil {
			fmt.Fprintf(&b, "const %s = %s;\n", d.Name, printExpr(d.Value))
			continue
		}
		parts := make([]string, len(d.Elems))
		for i, e := range d.Elems {
			parts[i] = printExpr(e)
		}
		fmt.Fprintf(&b, "const %s = [%s];\n", d.Name, strings.Join(parts, ", "))
	}
	for _, d := range f.Vars {
		if d.Size != nil {
			fmt.Fprintf(&b, "var %s[%s] : %s;\n", d.Name, printExpr(d.Size), printType(d.Type))
		} else {
			fmt.Fprintf(&b, "var %s : %s;\n", d.Name, printType(d.Type))
		}
	}
	if f.Span != nil {
		fmt.Fprintf(&b, "faultspan : %s;\n", printExpr(f.Span.Body))
	}
	for _, d := range f.Targets {
		fmt.Fprintf(&b, "target %d : %s;\n", d.Layer, printExpr(d.Body))
	}
	for _, d := range f.Invs {
		fmt.Fprintf(&b, "invariant %s", d.Name)
		if d.Layer != 0 {
			fmt.Fprintf(&b, " layer %d", d.Layer)
		}
		if d.Param != "" {
			fmt.Fprintf(&b, " for %s in %s..%s", d.Param, printExpr(d.Lo), printExpr(d.Hi))
		}
		fmt.Fprintf(&b, " : %s;\n", printExpr(d.Body))
	}
	for _, d := range f.Actions {
		fmt.Fprintf(&b, "action %s", d.Name)
		if d.Param != "" {
			fmt.Fprintf(&b, " for %s in %s..%s", d.Param, printExpr(d.Lo), printExpr(d.Hi))
		}
		fmt.Fprintf(&b, " %s", d.Kind)
		if d.Establishes != "" {
			fmt.Fprintf(&b, " establishes %s", d.Establishes)
		}
		fmt.Fprintf(&b, " : %s ->", printExpr(d.Guard))
		if len(d.LHS) == 0 {
			b.WriteString(" skip")
		} else {
			lhs := make([]string, len(d.LHS))
			for i, lv := range d.LHS {
				lhs[i] = printExpr(lv)
			}
			rhs := make([]string, len(d.RHS))
			for i, e := range d.RHS {
				rhs[i] = printExpr(e)
			}
			fmt.Fprintf(&b, " %s := %s", strings.Join(lhs, ", "), strings.Join(rhs, ", "))
		}
		b.WriteString(";\n")
	}
	return b.String()
}

func printType(t TypeExpr) string {
	switch {
	case t.Bool:
		return "bool"
	case len(t.Labels) > 0:
		return "{" + strings.Join(t.Labels, ", ") + "}"
	default:
		return printExpr(t.Lo) + ".." + printExpr(t.Hi)
	}
}

// opText renders an operator token.
func opText(op tokenKind) string {
	switch op {
	case tokOr:
		return "||"
	case tokAnd:
		return "&&"
	case tokEq:
		return "="
	case tokNeq:
		return "!="
	case tokLt:
		return "<"
	case tokLe:
		return "<="
	case tokGt:
		return ">"
	case tokGe:
		return ">="
	case tokPlus:
		return "+"
	case tokMinus:
		return "-"
	case tokStar:
		return "*"
	case tokSlash:
		return "/"
	case tokMod:
		return "mod"
	case tokNot:
		return "!"
	default:
		return "?"
	}
}

// precedence for parenthesization decisions.
func prec(op tokenKind) int {
	switch op {
	case tokOr:
		return 1
	case tokAnd:
		return 2
	case tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
		return 3
	case tokPlus, tokMinus:
		return 4
	case tokStar, tokSlash, tokMod:
		return 5
	default:
		return 6
	}
}

func printExpr(e Expr) string {
	return printPrec(e, 0)
}

func printPrec(e Expr, outer int) string {
	switch n := e.(type) {
	case *NumLit:
		return fmt.Sprintf("%d", n.Val)
	case *BoolLit:
		if n.Val {
			return "true"
		}
		return "false"
	case *VarRef:
		if n.Index == nil {
			return n.Name
		}
		return fmt.Sprintf("%s[%s]", n.Name, printExpr(n.Index))
	case *Unary:
		return opText(n.Op) + printPrec(n.X, 6)
	case *Binary:
		p := prec(n.Op)
		// Comparison operators are non-associative: always wrap compared
		// comparisons. Same-precedence children print unwrapped on the
		// left (left associativity) and wrapped on the right.
		s := printPrec(n.L, p) + " " + opText(n.Op) + " " + printPrec(n.R, p+1)
		if p < outer {
			return "(" + s + ")"
		}
		return s
	case *Quant:
		kw := "exists"
		if n.ForAll {
			kw = "forall"
		}
		return fmt.Sprintf("%s %s in %s..%s : (%s)",
			kw, n.Param, printExpr(n.Lo), printExpr(n.Hi), printExpr(n.Body))
	default:
		return "?"
	}
}
