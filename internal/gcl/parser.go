package gcl

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a gcl source file.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.file()
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) at(k tokenKind) bool {
	return p.cur().kind == k
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k tokenKind) (token, bool) {
	if p.at(k) {
		return p.advance(), true
	}
	return token{}, false
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.at(k) {
		return p.advance(), nil
	}
	t := p.cur()
	return token{}, errf(t.pos, "expected %s, found %s", k, describe(t))
}

func describe(t token) string {
	switch t.kind {
	case tokIdent, tokNumber:
		return "'" + t.text + "'"
	default:
		return t.kind.String()
	}
}

func (p *parser) file() (*File, error) {
	f := &File{}
	if _, err := p.expect(tokProgram); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	f.Name = name.text
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	for !p.at(tokEOF) {
		switch p.cur().kind {
		case tokConst:
			d, err := p.constDecl()
			if err != nil {
				return nil, err
			}
			f.Consts = append(f.Consts, d)
		case tokVar:
			d, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			f.Vars = append(f.Vars, d)
		case tokInvariant:
			d, err := p.invariantDecl()
			if err != nil {
				return nil, err
			}
			f.Invs = append(f.Invs, d)
		case tokTarget:
			d, err := p.targetDecl()
			if err != nil {
				return nil, err
			}
			f.Targets = append(f.Targets, d)
		case tokFaultspan:
			d, err := p.faultspanDecl()
			if err != nil {
				return nil, err
			}
			if f.Span != nil {
				return nil, errf(d.Pos, "duplicate faultspan declaration")
			}
			f.Span = d
		case tokAction:
			d, err := p.actionDecl()
			if err != nil {
				return nil, err
			}
			f.Actions = append(f.Actions, d)
		default:
			return nil, errf(p.cur().pos, "expected declaration, found %s", describe(p.cur()))
		}
	}
	return f, nil
}

func (p *parser) constDecl() (*ConstDecl, error) {
	kw := p.advance() // const
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEq); err != nil {
		return nil, err
	}
	d := &ConstDecl{Pos: kw.pos, Name: name.text}
	if _, ok := p.accept(tokLBracket); ok {
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Elems = append(d.Elems, e)
			if _, ok := p.accept(tokComma); !ok {
				break
			}
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
	} else {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Value = e
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) varDecl() (*VarDecl, error) {
	kw := p.advance() // var
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Pos: kw.pos, Name: name.text}
	if _, ok := p.accept(tokLBracket); ok {
		size, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Size = size
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	ty, err := p.typeExpr()
	if err != nil {
		return nil, err
	}
	d.Type = ty
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) typeExpr() (TypeExpr, error) {
	pos := p.cur().pos
	if _, ok := p.accept(tokBool); ok {
		return TypeExpr{Pos: pos, Bool: true}, nil
	}
	if _, ok := p.accept(tokLBrace); ok {
		var labels []string
		for {
			id, err := p.expect(tokIdent)
			if err != nil {
				return TypeExpr{}, err
			}
			labels = append(labels, id.text)
			if _, ok := p.accept(tokComma); !ok {
				break
			}
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return TypeExpr{}, err
		}
		return TypeExpr{Pos: pos, Labels: labels}, nil
	}
	lo, err := p.expr()
	if err != nil {
		return TypeExpr{}, err
	}
	if _, err := p.expect(tokDotDot); err != nil {
		return TypeExpr{}, err
	}
	hi, err := p.expr()
	if err != nil {
		return TypeExpr{}, err
	}
	return TypeExpr{Pos: pos, Lo: lo, Hi: hi}, nil
}

// paramClause parses an optional "for j in lo..hi".
func (p *parser) paramClause() (param string, lo, hi Expr, err error) {
	if _, ok := p.accept(tokFor); !ok {
		return "", nil, nil, nil
	}
	id, err := p.expect(tokIdent)
	if err != nil {
		return "", nil, nil, err
	}
	if _, err := p.expect(tokIn); err != nil {
		return "", nil, nil, err
	}
	lo, err = p.expr()
	if err != nil {
		return "", nil, nil, err
	}
	if _, err := p.expect(tokDotDot); err != nil {
		return "", nil, nil, err
	}
	hi, err = p.expr()
	if err != nil {
		return "", nil, nil, err
	}
	return id.text, lo, hi, nil
}

func (p *parser) invariantDecl() (*InvariantDecl, error) {
	kw := p.advance() // invariant
	d := &InvariantDecl{Pos: kw.pos}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	d.Name = name.text
	if _, ok := p.accept(tokLayer); ok {
		n, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		d.Layer = int(n.num)
	}
	d.Param, d.Lo, d.Hi, err = p.paramClause()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	d.Body, err = p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) targetDecl() (*TargetDecl, error) {
	kw := p.advance() // target
	n, err := p.expect(tokNumber)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	body, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return &TargetDecl{Pos: kw.pos, Layer: int(n.num), Body: body}, nil
}

func (p *parser) faultspanDecl() (*FaultspanDecl, error) {
	kw := p.advance() // faultspan
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	body, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return &FaultspanDecl{Pos: kw.pos, Body: body}, nil
}

func (p *parser) actionDecl() (*ActionDecl, error) {
	kw := p.advance() // action
	d := &ActionDecl{Pos: kw.pos, Kind: "closure"}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	d.Name = name.text
	d.Param, d.Lo, d.Hi, err = p.paramClause()
	if err != nil {
		return nil, err
	}
	switch p.cur().kind {
	case tokClosure:
		p.advance()
	case tokConvergence:
		p.advance()
		d.Kind = "convergence"
	case tokFault:
		p.advance()
		d.Kind = "fault"
	}
	if _, ok := p.accept(tokEstablishes); ok {
		id, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		d.Establishes = id.text
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	d.Guard, err = p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return nil, err
	}
	if _, ok := p.accept(tokSkip); !ok {
		for {
			lv, err := p.varRef()
			if err != nil {
				return nil, err
			}
			d.LHS = append(d.LHS, lv)
			if _, ok := p.accept(tokComma); !ok {
				break
			}
		}
		if _, err := p.expect(tokAssign); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.RHS = append(d.RHS, e)
			if _, ok := p.accept(tokComma); !ok {
				break
			}
		}
		if len(d.LHS) != len(d.RHS) {
			return nil, errf(d.Pos, "action %q assigns %d targets from %d expressions",
				d.Name, len(d.LHS), len(d.RHS))
		}
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) varRef() (*VarRef, error) {
	id, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	v := &VarRef{Pos: id.pos, Name: id.text}
	if _, ok := p.accept(tokLBracket); ok {
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		v.Index = idx
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// Expression grammar, loosest to tightest:
// or -> and -> comparison -> additive -> multiplicative -> unary -> primary.

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokOr) {
		op := p.advance()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Pos: op.pos, Op: tokOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokAnd) {
		op := p.advance()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Pos: op.pos, Op: tokAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().kind {
	case tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
		op := p.advance()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &Binary{Pos: op.pos, Op: op.kind, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokPlus) || p.at(tokMinus) {
		op := p.advance()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Pos: op.pos, Op: op.kind, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.at(tokStar) || p.at(tokSlash) || p.at(tokMod) {
		op := p.advance()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Pos: op.pos, Op: op.kind, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	switch p.cur().kind {
	case tokNot, tokMinus:
		op := p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: op.pos, Op: op.kind, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		return &NumLit{Pos: t.pos, Val: t.num}, nil
	case tokTrue:
		p.advance()
		return &BoolLit{Pos: t.pos, Val: true}, nil
	case tokFalse:
		p.advance()
		return &BoolLit{Pos: t.pos, Val: false}, nil
	case tokIdent:
		return p.varRef()
	case tokLParen:
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokForall, tokExists:
		p.advance()
		id, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokIn); err != nil {
			return nil, err
		}
		lo, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokDotDot); err != nil {
			return nil, err
		}
		hi, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		body, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &Quant{Pos: t.pos, ForAll: t.kind == tokForall, Param: id.text,
			Lo: lo, Hi: hi, Body: body}, nil
	}
	return nil, errf(t.pos, "expected expression, found %s", describe(t))
}
