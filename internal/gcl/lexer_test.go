package gcl

import (
	"strings"
	"testing"
)

func kindsOf(t *testing.T, src string) []tokenKind {
	t.Helper()
	toks, err := lexAll(src)
	if err != nil {
		t.Fatalf("lexAll(%q): %v", src, err)
	}
	out := make([]tokenKind, len(toks))
	for i, tok := range toks {
		out[i] = tok.kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	got := kindsOf(t, "program p; var x : 0..4;")
	want := []tokenKind{tokProgram, tokIdent, tokSemi, tokVar, tokIdent,
		tokColon, tokNumber, tokDotDot, tokNumber, tokSemi, tokEOF}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	got := kindsOf(t, "-> := .. || && ! != <= >= < > = + - * / mod")
	want := []tokenKind{tokArrow, tokAssign, tokDotDot, tokOr, tokAnd,
		tokNot, tokNeq, tokLe, tokGe, tokLt, tokGt, tokEq,
		tokPlus, tokMinus, tokStar, tokSlash, tokMod, tokEOF}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	got := kindsOf(t, "x // all of this ignored ->\n y")
	want := []tokenKind{tokIdent, tokIdent, tokEOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := lexAll("forall forallx")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokForall {
		t.Errorf("token 0 = %v, want forall keyword", toks[0].kind)
	}
	if toks[1].kind != tokIdent || toks[1].text != "forallx" {
		t.Errorf("token 1 = %v %q", toks[1].kind, toks[1].text)
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lexAll("0 42 2147483647")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].num != 0 || toks[1].num != 42 || toks[2].num != 2147483647 {
		t.Errorf("numbers = %d %d %d", toks[0].num, toks[1].num, toks[2].num)
	}
	if _, err := lexAll("99999999999"); err == nil {
		t.Error("out-of-range number lexed")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := lexAll("x\n  y")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].pos.Line != 1 || toks[0].pos.Col != 1 {
		t.Errorf("x at %v", toks[0].pos)
	}
	if toks[1].pos.Line != 2 || toks[1].pos.Col != 3 {
		t.Errorf("y at %v", toks[1].pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"#", "|x", "&y", "a . b", `"unterminated`} {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lexAll(%q) succeeded", src)
		} else if !strings.Contains(err.Error(), "gcl:") {
			t.Errorf("error %v lacks position prefix", err)
		}
	}
}

func TestLexString(t *testing.T) {
	toks, err := lexAll(`"hello world"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokString || toks[0].text != "hello world" {
		t.Errorf("string token = %v %q", toks[0].kind, toks[0].text)
	}
}
