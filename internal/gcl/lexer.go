package gcl

import (
	"strconv"
	"unicode"
)

// lexer tokenizes gcl source. Comments run from "//" to end of line.
type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() rune {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) here() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	pos := l.here()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	r := l.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		start := l.pos
		for l.pos < len(l.src) && (unicode.IsLetter(l.peek()) || unicode.IsDigit(l.peek()) || l.peek() == '_') {
			l.advance()
		}
		text := string(l.src[start:l.pos])
		if kw, ok := keywords[text]; ok {
			return token{kind: kw, text: text, pos: pos}, nil
		}
		return token{kind: tokIdent, text: text, pos: pos}, nil

	case unicode.IsDigit(r):
		start := l.pos
		for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
			l.advance()
		}
		text := string(l.src[start:l.pos])
		n, err := strconv.ParseInt(text, 10, 32)
		if err != nil {
			return token{}, errf(pos, "number %q out of range", text)
		}
		return token{kind: tokNumber, text: text, num: int32(n), pos: pos}, nil

	case r == '"':
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && l.peek() != '"' && l.peek() != '\n' {
			l.advance()
		}
		if l.pos >= len(l.src) || l.peek() != '"' {
			return token{}, errf(pos, "unterminated string")
		}
		text := string(l.src[start:l.pos])
		l.advance()
		return token{kind: tokString, text: text, pos: pos}, nil
	}

	l.advance()
	two := func(second rune, both, single tokenKind) (token, error) {
		if l.peek() == second {
			l.advance()
			return token{kind: both, pos: pos}, nil
		}
		if single == 0 {
			return token{}, errf(pos, "unexpected character %q", string(r))
		}
		return token{kind: single, pos: pos}, nil
	}
	switch r {
	case ';':
		return token{kind: tokSemi, pos: pos}, nil
	case ',':
		return token{kind: tokComma, pos: pos}, nil
	case '(':
		return token{kind: tokLParen, pos: pos}, nil
	case ')':
		return token{kind: tokRParen, pos: pos}, nil
	case '[':
		return token{kind: tokLBracket, pos: pos}, nil
	case ']':
		return token{kind: tokRBracket, pos: pos}, nil
	case '{':
		return token{kind: tokLBrace, pos: pos}, nil
	case '}':
		return token{kind: tokRBrace, pos: pos}, nil
	case '+':
		return token{kind: tokPlus, pos: pos}, nil
	case '*':
		return token{kind: tokStar, pos: pos}, nil
	case '/':
		return token{kind: tokSlash, pos: pos}, nil
	case '=':
		return token{kind: tokEq, pos: pos}, nil
	case '-':
		return two('>', tokArrow, tokMinus)
	case ':':
		return two('=', tokAssign, tokColon)
	case '.':
		return two('.', tokDotDot, 0)
	case '|':
		return two('|', tokOr, 0)
	case '&':
		return two('&', tokAnd, 0)
	case '!':
		return two('=', tokNeq, tokNot)
	case '<':
		return two('=', tokLe, tokLt)
	case '>':
		return two('=', tokGe, tokGt)
	}
	return token{}, errf(pos, "unexpected character %q", string(r))
}

// lexAll tokenizes the whole source, ending with an EOF token.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
