package gcl

import (
	"math/rand"
	"testing"

	"nonmask/internal/program"
)

// randExpr generates a random expression over variables x (scalar int),
// b (scalar bool) and c (bool array of 3), with the requested type.
func randExpr(rng *rand.Rand, depth int, wantBool bool) Expr {
	if depth <= 0 {
		if wantBool {
			switch rng.Intn(3) {
			case 0:
				return &BoolLit{Val: rng.Intn(2) == 0}
			case 1:
				return &VarRef{Name: "b"}
			default:
				return &VarRef{Name: "c", Index: &NumLit{Val: int32(rng.Intn(3))}}
			}
		}
		switch rng.Intn(2) {
		case 0:
			return &NumLit{Val: int32(rng.Intn(10))}
		default:
			return &VarRef{Name: "x"}
		}
	}
	if wantBool {
		switch rng.Intn(6) {
		case 0:
			return &Unary{Op: tokNot, X: randExpr(rng, depth-1, true)}
		case 1:
			return &Binary{Op: tokAnd, L: randExpr(rng, depth-1, true), R: randExpr(rng, depth-1, true)}
		case 2:
			return &Binary{Op: tokOr, L: randExpr(rng, depth-1, true), R: randExpr(rng, depth-1, true)}
		case 3:
			cmp := []tokenKind{tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe}[rng.Intn(6)]
			return &Binary{Op: cmp, L: randExpr(rng, depth-1, false), R: randExpr(rng, depth-1, false)}
		case 4:
			return &Quant{ForAll: rng.Intn(2) == 0, Param: "q",
				Lo: &NumLit{Val: 0}, Hi: &NumLit{Val: 2},
				Body: &VarRef{Name: "c", Index: &VarRef{Name: "q"}}}
		default:
			return &BoolLit{Val: true}
		}
	}
	op := []tokenKind{tokPlus, tokMinus, tokStar, tokSlash, tokMod}[rng.Intn(5)]
	return &Binary{Op: op, L: randExpr(rng, depth-1, false), R: randExpr(rng, depth-1, false)}
}

// TestPrinterParseRoundTripRandom: for random guard expressions, the file
// survives Print -> Parse -> Print as a fixed point, and — when it
// compiles — the original and reparsed programs have identical guard
// semantics on every state.
func TestPrinterParseRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 300; trial++ {
		guard := randExpr(rng, 3, true)
		f1 := &File{
			Name: "rt",
			Vars: []*VarDecl{
				{Name: "x", Type: TypeExpr{Lo: &NumLit{Val: 0}, Hi: &NumLit{Val: 9}}},
				{Name: "b", Type: TypeExpr{Bool: true}},
				{Name: "c", Size: &NumLit{Val: 3}, Type: TypeExpr{Bool: true}},
			},
			Actions: []*ActionDecl{{Name: "a", Kind: "closure", Guard: guard}},
		}
		printed := Print(f1)
		f2, err := Parse(printed)
		if err != nil {
			t.Fatalf("trial %d: Parse(Print) failed:\n%s\nerr: %v", trial, printed, err)
		}
		again := Print(f2)
		if again != printed {
			t.Fatalf("trial %d: print not a fixed point:\n%s\nvs\n%s", trial, printed, again)
		}
		// Semantic agreement. Division/mod by zero may legitimately fail
		// at compile (const folds) or panic at eval; skip those trials.
		m1, err1 := Compile(f1)
		m2, err2 := Compile(f2)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: compile disagreement: %v vs %v\n%s", trial, err1, err2, printed)
		}
		if err1 != nil {
			continue
		}
		a1 := m1.Program.Actions[0]
		a2 := m2.Program.Actions[0]
		count, _ := m1.Schema.StateCount()
		for i := int64(0); i < count; i++ {
			st1 := m1.Schema.StateAt(i)
			st2 := m2.Schema.StateAt(i)
			g1, p1 := evalGuard(a1, st1)
			g2, p2 := evalGuard(a2, st2)
			if g1 != g2 || p1 != p2 {
				t.Fatalf("trial %d: guards disagree at state %d:\n%s", trial, i, printed)
			}
		}
	}
}

// evalGuard evaluates a guard, reporting panics (division by zero in
// non-constant subexpressions) as a flag rather than failing.
func evalGuard(a *program.Action, st *program.State) (val, panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	return a.Enabled(st), false
}
