package gcl

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nonmask/internal/ctheory"
	"nonmask/internal/program"
	"nonmask/internal/protocols/threestate"
	"nonmask/internal/verify"
)

func mustLoad(t *testing.T, src string) *Module {
	t.Helper()
	m, err := Load(src)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return m
}

func loadTestdata(t *testing.T, name string) *Module {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return mustLoad(t, string(src))
}

func TestCompileCounter(t *testing.T) {
	m := mustLoad(t, `
program counter;
var x : 0..4;
invariant DONE : x = 4;
action step convergence establishes DONE : x != 4 -> x := x + 1;
`)
	if m.Name != "counter" || m.Schema.Len() != 1 {
		t.Fatalf("module = %+v", m)
	}
	st := m.Schema.NewState()
	a := m.Program.Actions[0]
	if !a.Enabled(st) {
		t.Fatal("step disabled at x=0")
	}
	next := a.Apply(st)
	if next.Get(0) != 1 {
		t.Errorf("after step x = %d", next.Get(0))
	}
	if m.S.Holds(st) {
		t.Error("S holds at x=0")
	}
	st.Set(0, 4)
	if !m.S.Holds(st) {
		t.Error("S fails at x=4")
	}
	if m.Design == nil {
		t.Error("design not assembled")
	}
}

func TestCompileEnumAndBool(t *testing.T) {
	m := mustLoad(t, `
program eb;
var c : {green, red};
var b : bool;
invariant I : c = green && !b;
action a convergence establishes I : c = red || b -> c, b := green, false;
`)
	st := m.Schema.NewState()
	if !m.S.Holds(st) {
		t.Error("S fails at green/false")
	}
	st.Set(0, 1) // red
	if m.S.Holds(st) {
		t.Error("S holds at red")
	}
	a := m.Program.Actions[0]
	if !a.Enabled(st) {
		t.Fatal("fix disabled")
	}
	if next := a.Apply(st); next.Get(0) != 0 || next.Get(1) != 0 {
		t.Errorf("fix result = %s", next)
	}
}

func TestCompileParallelAssignment(t *testing.T) {
	// Swap relies on old-state evaluation of the RHS.
	m := mustLoad(t, `
program swap;
var x : 0..9;
var y : 0..9;
invariant I : true;
action sw convergence establishes I : false -> x, y := y, x;
action doit closure : x != y -> x, y := y, x;
`)
	st := m.Schema.NewState()
	st.Set(0, 3)
	st.Set(1, 7)
	var doit *program.Action
	for _, a := range m.Program.Actions {
		if a.Name == "doit" {
			doit = a
		}
	}
	next := doit.Apply(st)
	if next.Get(0) != 7 || next.Get(1) != 3 {
		t.Errorf("swap = %s", next)
	}
}

func TestCompileQuantifiers(t *testing.T) {
	m := mustLoad(t, `
program q;
var c[4] : bool;
invariant ALL : forall k in 0..3 : (c[k]);
action any convergence establishes ALL : exists k in 0..3 : (!c[k]) -> c[0], c[1], c[2], c[3] := true, true, true, true;
`)
	st := m.Schema.NewState() // all false
	if m.S.Holds(st) {
		t.Error("forall holds with all false")
	}
	a := m.Program.Actions[0]
	if !a.Enabled(st) {
		t.Error("exists fails with all false")
	}
	next := a.Apply(st)
	if !m.S.Holds(next) {
		t.Error("forall fails with all true")
	}
	if a.Enabled(next) {
		t.Error("exists holds with all true")
	}
}

func TestCompileConstArraysAndParams(t *testing.T) {
	m := mustLoad(t, `
program arr;
const N = 3;
const P = [0, 0, 1];
var d[N] : 0..5;
invariant R for j in 1..N-1 : d[j] = d[P[j]] + 1;
action fix for j in 1..N-1 convergence establishes R : d[j] != d[P[j]] + 1 -> d[j] := d[P[j]] + 1;
`)
	if m.Set.Len() != 2 {
		t.Fatalf("constraints = %d, want 2", m.Set.Len())
	}
	if got := len(m.Program.Actions); got != 2 {
		t.Fatalf("actions = %d, want 2", got)
	}
	// Convergence establishes S from d = [0,0,0]: fix(1): d1 := 1,
	// fix(2): d2 := d1+1 = 2.
	st := m.Schema.NewState()
	for _, a := range m.Program.Actions {
		if a.Enabled(st) {
			st = a.Apply(st)
		}
	}
	for _, a := range m.Program.Actions {
		if a.Enabled(st) {
			st = a.Apply(st)
		}
	}
	if !m.S.Holds(st) {
		t.Errorf("S fails after fixes: %s", st)
	}
}

func TestCompileReadWriteSets(t *testing.T) {
	m := mustLoad(t, `
program rw;
var a : 0..3;
var b : 0..3;
var c : 0..3;
invariant I : a = 0;
action f convergence establishes I : a != 0 -> a := 0;
action g closure : a < b -> c := b;
`)
	var g *program.Action
	for _, a := range m.Program.Actions {
		if a.Name == "g" {
			g = a
		}
	}
	aID := m.Schema.MustLookup("a")
	bID := m.Schema.MustLookup("b")
	cID := m.Schema.MustLookup("c")
	wantReads := []program.VarID{aID, bID}
	if len(g.Reads) != 2 || g.Reads[0] != wantReads[0] || g.Reads[1] != wantReads[1] {
		t.Errorf("g.Reads = %v, want %v", g.Reads, wantReads)
	}
	if len(g.Writes) != 1 || g.Writes[0] != cID {
		t.Errorf("g.Writes = %v, want [%d]", g.Writes, cID)
	}
	// Audit confirms the sets dynamically.
	rng := rand.New(rand.NewSource(1))
	if err := m.Program.Audit(rng, 200); err != nil {
		t.Error(err)
	}
}

func TestCompileErrors(t *testing.T) {
	tests := []struct {
		name, src, substr string
	}{
		{"undefined var", "program p; action a : zz = 1 -> skip;", "undefined name"},
		{"type mismatch and", "program p; var x : 0..3; action a : x && x > 1 -> skip;", "bool operands"},
		{"type mismatch cmp", "program p; var b : bool; action a : b < true -> skip;", "int operands"},
		{"eq across types", "program p; var b : bool; var x : 0..3; action a : b = x -> skip;", "compares"},
		{"guard not bool", "program p; var x : 0..3; action a : x + 1 -> skip;", "must be bool"},
		{"assign bool to int", "program p; var x : 0..3; action a : true -> x := true;", "bool to int"},
		{"assign int to bool", "program p; var b : bool; action a : true -> b := 3;", "to bool variable"},
		{"const index oob", "program p; const A = [1, 2]; var x : 0..3; action a : A[5] = 1 -> skip;", "out of range"},
		{"var index oob", "program p; var c[2] : bool; action a : c[7] -> skip;", "out of range"},
		{"dup variable", "program p; var x : bool; var x : bool;", "redeclared"},
		{"dup const", "program p; const N = 1; const N = 2;", "redeclared"},
		{"enum conflict", "program p; var a : {g, r}; var b : {r, g};", "bound to"},
		{"var in const expr", "program p; var x : 0..3; var y[x] : bool;", "not allowed in constant"},
		{"establish unknown", "program p; var x : bool; action a convergence establishes Z : x -> x := false;", "unknown invariant"},
		{"establish on closure", "program p; var x : bool; invariant I : x; action a establishes I : !x -> x := true;", "only convergence"},
		{"double establish", "program p; var x : bool; invariant I : x; action a convergence establishes I : !x -> x := true; action b convergence establishes I : !x -> x := true;", "two actions"},
		{"empty range type", "program p; var x : 5..2;", "empty range"},
		{"nonpositive array", "program p; const N = 0; var c[N] : bool;", "non-positive"},
		{"double assign", "program p; var x : 0..3; action a : true -> x, x := 1, 2;", "assigned twice"},
		{"quant shadows param", "program p; var c[3] : bool; action a for j in 0..2 : forall j in 0..2 : (c[j]) -> skip;", "shadows"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Load(tt.src)
			if err == nil {
				t.Fatal("Load succeeded")
			}
			if !strings.Contains(err.Error(), tt.substr) {
				t.Errorf("error %q, want substring %q", err, tt.substr)
			}
		})
	}
}

// TestDiffusingGCLStabilizes loads the paper's Section 5.1 program from
// testdata and model-checks it end to end: Theorem 1 applies and the
// program is stabilizing.
func TestDiffusingGCLStabilizes(t *testing.T) {
	m := loadTestdata(t, "diffusing.gcl")
	if m.Design == nil {
		t.Fatal("design not assembled")
	}
	r, _, err := m.Design.Validate(verify.Projected, verify.Options{})
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if r == nil || r.Theorem != ctheory.Theorem1 {
		t.Fatalf("validated by %v, want Theorem 1", r)
	}
	res, err := m.Design.Verify(verify.Options{})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res.Closure != nil || !res.Unfair.Converges {
		t.Fatalf("not stabilizing: closure=%v conv=%s", res.Closure, res.Unfair.Summary())
	}
}

// TestTokenRingGCLStabilizes loads the Section 7.1 layered program and
// checks Theorem 3 applicability plus ground-truth stabilization.
func TestTokenRingGCLStabilizes(t *testing.T) {
	m := loadTestdata(t, "tokenring.gcl")
	if m.Design == nil {
		t.Fatal("design not assembled")
	}
	r, all, err := m.Design.Validate(verify.Exhaustive, verify.Options{})
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if r == nil {
		for _, rep := range all {
			t.Logf("%s", rep)
		}
		t.Fatal("no theorem applies")
	}
	if r.Theorem != ctheory.Theorem3 {
		t.Errorf("validated by %v, want Theorem 3", r.Theorem)
	}
	res, err := m.Design.Verify(verify.Options{})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res.Closure != nil || !res.Unfair.Converges {
		t.Fatalf("not stabilizing: closure=%v conv=%s", res.Closure, res.Unfair.Summary())
	}
}

// TestXYZGCL loads the Section 4 example and checks Theorem 1.
func TestXYZGCL(t *testing.T) {
	m := loadTestdata(t, "xyz.gcl")
	if m.Design == nil {
		t.Fatal("design not assembled")
	}
	r, _, err := m.Design.Validate(verify.Exhaustive, verify.Options{})
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if r == nil || r.Theorem != ctheory.Theorem1 {
		t.Fatalf("validated by %v, want Theorem 1", r)
	}
}

// TestGCLDiffusingMatchesGoDiffusing cross-checks the two front ends: the
// gcl program and the Go-constructed design have the same number of
// actions, constraints, and the same invariant truth value on sampled
// states (modulo variable order, which matches by construction).
func TestGCLDiffusingMatchesGoDiffusing(t *testing.T) {
	m := loadTestdata(t, "diffusing.gcl")
	if got, want := len(m.Program.Actions), 2*4+5+1; got != want {
		// initiate + 4 propagate + 5 reflect + 4 fix = 14.
		t.Logf("action count %d (informational, want %d)", got, want)
	}
	if m.Set.Len() != 4 {
		t.Errorf("constraints = %d, want 4", m.Set.Len())
	}
	count, ok := m.Schema.StateCount()
	if !ok || count != 1024 {
		t.Errorf("state count = %d, want 4^5 = 1024", count)
	}
}

func TestModuleWithoutEstablishesHasNoDesign(t *testing.T) {
	m := mustLoad(t, `
program free;
var x : 0..3;
invariant I : x = 0;
action fix convergence : x != 0 -> x := 0;
`)
	if m.Design != nil {
		t.Error("design assembled without establishes pairing")
	}
	if m.Program == nil || m.S == nil {
		t.Error("program/S missing")
	}
}

func TestFaultspanCompiles(t *testing.T) {
	m := mustLoad(t, `
program spanned;
var x : 0..9;
faultspan : x <= 3;
invariant I : x = 0;
action fix convergence establishes I : x != 0 && x <= 3 -> x := 0;
`)
	st := m.Schema.NewState()
	st.Set(0, 5)
	if m.T.Holds(st) {
		t.Error("T holds at x=5")
	}
	res, err := m.Design.Verify(verify.Options{})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.Tolerant() {
		t.Error("spanned design not tolerant")
	}
}

func TestRuntimeIndexPanics(t *testing.T) {
	m := mustLoad(t, `
program oob;
var c[3] : 0..3;
var i : 0..9;
invariant I : true;
action probe convergence establishes I : false -> skip;
action a closure : c[i] = 0 -> i := 0;
`)
	var a *program.Action
	for _, act := range m.Program.Actions {
		if act.Name == "a" {
			a = act
		}
	}
	st := m.Schema.NewState()
	st.Set(m.Schema.MustLookup("i"), 7)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range dynamic index did not panic")
		}
	}()
	a.Enabled(st)
}

// TestThreeStateGCLMatchesGoConstruction cross-validates the gcl compiler
// against the Go-built protocol: the transition relations of
// testdata/threestate.gcl and internal/protocols/threestate must agree on
// every state. (The invariant in the .gcl file is a placeholder — the
// exactly-one-privilege predicate is not first-order expressible in gcl's
// little expression language; the Go instance supplies it.)
func TestThreeStateGCLMatchesGoConstruction(t *testing.T) {
	m := loadTestdata(t, "threestate.gcl")
	goInst, err := threestate.New(4)
	if err != nil {
		t.Fatalf("threestate.New: %v", err)
	}
	if m.Schema.Len() != goInst.P.Schema.Len() {
		t.Fatalf("schema sizes differ: %d vs %d", m.Schema.Len(), goInst.P.Schema.Len())
	}
	count, _ := m.Schema.StateCount()
	for i := int64(0); i < count; i++ {
		gclSt := m.Schema.StateAt(i)
		goSt := goInst.P.Schema.StateAt(i)
		a := successorIndexSet(m.Program, gclSt)
		b := successorIndexSet(goInst.P, goSt)
		if len(a) != len(b) {
			t.Fatalf("state %s: %d vs %d successors", gclSt, len(a), len(b))
		}
		for k := range a {
			if !b[k] {
				t.Fatalf("state %s: successor sets differ", gclSt)
			}
		}
	}
	// And the gcl program stabilizes to the Go instance's invariant.
	sp, err := verify.NewSpaceContext(context.Background(), m.Program, goInst.S, program.True(), verify.Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	if res := sp.CheckConvergence(); !res.Converges {
		t.Fatalf("gcl three-state not stabilizing: %s", res.Summary())
	}
}

func successorIndexSet(p *program.Program, st *program.State) map[int64]bool {
	out := map[int64]bool{}
	for _, a := range p.Actions {
		if a.Guard(st) {
			out[p.Schema.Index(a.Apply(st))] = true
		}
	}
	return out
}
