package gcl

import (
	"context"
	"strings"
	"testing"

	"nonmask/internal/program"
	"nonmask/internal/verify"
)

// TestFaultActionsCompile exercises the fault kind end to end: fault
// actions compile, carry the Fault kind, and drive fault-span computation.
func TestFaultActionsCompile(t *testing.T) {
	m := mustLoad(t, `
program faulty;
var x : 0..3;
invariant I : x = 0;
action fix convergence establishes I : x != 0 -> x := 0;
action zap fault : x < 3 -> x := 3;
`)
	faults := m.Program.OfKind(program.Fault)
	if len(faults) != 1 || faults[0].Name != "zap" {
		t.Fatalf("fault actions = %v", faults)
	}
	// Span from S under program + fault: {0, 3} (zap jumps to 3, fix
	// returns to 0).
	core := program.New("core", m.Schema)
	core.Add(m.Program.OfKind(program.Convergence)...)
	res, err := verify.FaultSpanContext(context.Background(), core, faults, m.S, verify.Options{})
	if err != nil {
		t.Fatalf("FaultSpan: %v", err)
	}
	if res.States != 2 {
		t.Errorf("span = %d states, want 2", res.States)
	}
}

// TestConstEvalCornerCases covers const-expression evaluation: unary
// minus, division, mod of negatives (mathematical, non-negative result),
// boolean consts, nested arrays.
func TestConstEvalCornerCases(t *testing.T) {
	m := mustLoad(t, `
program consts;
const A = -3;
const B = 7 / 2;
const C = (0 - 5) mod 3;
const D = true && !false;
const E = [A + 4, B, C];
var x : 0..9;
invariant I : x = E[2];
action fix convergence establishes I : x != E[2] -> x := E[2];
`)
	// A = -3, B = 3, C = (-5 mod 3) = 1, E = [1, 3, 1].
	st := m.Schema.NewState()
	st.Set(0, 1)
	if !m.S.Holds(st) {
		t.Error("S should hold at x = C = 1")
	}
	st.Set(0, 2)
	if m.S.Holds(st) {
		t.Error("S holds at x = 2")
	}
	_ = m
}

func TestConstEvalErrors(t *testing.T) {
	tests := []struct{ name, src, substr string }{
		{"div zero", "program p; const A = 1 / 0; var x : bool;", "division by zero"},
		{"mod zero", "program p; const A = 1 mod 0; var x : bool;", "mod by zero"},
		{"const array no index", "program p; const A = [1]; const B = A; var x : bool;", "without index"},
		{"const array oob", "program p; const A = [1]; const B = A[3]; var x : bool;", "out of range"},
		{"undefined in const", "program p; const A = Zz + 1; var x : bool;", "undefined name"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Load(tt.src)
			if err == nil || !strings.Contains(err.Error(), tt.substr) {
				t.Errorf("Load error = %v, want %q", err, tt.substr)
			}
		})
	}
}

// TestTargetDeclFlowsToDesign: the target declaration reaches the design's
// S computation.
func TestTargetDeclFlowsToDesign(t *testing.T) {
	m := mustLoad(t, `
program targeted;
var x : 0..3;
var y : 0..3;
invariant EQ layer 1 for j in 0..0 : x = y;
target 1 : x <= y;
invariant BASE : x = 0;
action fb convergence establishes BASE : x != 0 -> x := 0;
action fe for j in 0..0 convergence establishes EQ : x != y -> y := x;
`)
	st := m.Schema.NewState()
	st.Set(m.Schema.MustLookup("y"), 2) // x=0, y=2: helper x=y fails, target x<=y holds
	if !m.S.Holds(st) {
		t.Error("S should use the declared target, not the helper")
	}
	if m.Design == nil {
		t.Fatal("design missing")
	}
	if len(m.Set.Targets) != 1 {
		t.Errorf("targets = %d", len(m.Set.Targets))
	}
}

// TestParserMoreErrors covers declaration-level error paths.
func TestParserMoreErrors(t *testing.T) {
	tests := []struct{ name, src string }{
		{"bad target layer", "program p; target x : true;"},
		{"bad target colon", "program p; target 1 true;"},
		{"var missing colon", "program p; var x bool;"},
		{"var bad size", "program p; var x[ : bool;"},
		{"bad range dots", "program p; var x : 0...3;"},
		{"param missing in", "program p; invariant I for j 0..2 : true;"},
		{"invariant no name", "program p; invariant : true;"},
		{"faultspan no colon", "program p; faultspan true;"},
		{"quant missing paren", "program p; var c[2] : bool; action a : forall k in 0..1 : c[k] -> skip;"},
		{"establishes no name", "program p; var x : bool; action a convergence establishes : x -> skip;"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.src); err == nil {
				t.Error("Parse succeeded")
			}
		})
	}
}

// TestTokenKindStrings covers the diagnostic rendering used in parse
// errors.
func TestTokenKindStrings(t *testing.T) {
	kinds := []tokenKind{tokEOF, tokIdent, tokNumber, tokString, tokSemi,
		tokColon, tokComma, tokLParen, tokRParen, tokLBracket, tokRBracket,
		tokLBrace, tokRBrace, tokArrow, tokAssign, tokDotDot, tokOr, tokAnd,
		tokNot, tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe, tokPlus, tokMinus,
		tokStar, tokSlash, tokProgram, tokConst, tokVar, tokInvariant,
		tokFaultspan, tokAction, tokFor, tokIn, tokLayer, tokClosure,
		tokConvergence, tokFault, tokEstablishes, tokTarget, tokTrue,
		tokFalse, tokSkip, tokForall, tokExists, tokMod, tokBool}
	for _, k := range kinds {
		if s := k.String(); s == "" || strings.HasPrefix(s, "token(") {
			t.Errorf("kind %d has no rendering: %q", int(k), s)
		}
	}
	if !strings.HasPrefix(tokenKind(999).String(), "token(") {
		t.Error("unknown kind should fall back to token(n)")
	}
}

// TestPrinterAllOperators round-trips every operator and construct.
func TestPrinterAllOperators(t *testing.T) {
	src := `program ops;
var x : 0..9;
var b : bool;
action a : x + 1 - 2 * 3 / 4 mod 5 >= 0 && (x < 9 || x > 0) && x <= 8 && x != 7 && !b && -x = 0 -> skip;
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	printed := Print(f)
	f2, err := Parse(printed)
	if err != nil {
		t.Fatalf("Parse(Print):\n%s\n%v", printed, err)
	}
	if Print(f2) != printed {
		t.Errorf("not a fixed point:\n%s\nvs\n%s", printed, Print(f2))
	}
}

// TestCompiledFaultSpanDecl: the faultspan declaration restricts T and the
// model checker confirms convergence only from T.
func TestCompiledFaultSpanDecl(t *testing.T) {
	m := mustLoad(t, `
program spanny;
var x : 0..9;
faultspan : x <= 4;
invariant I : x <= 1;
action fix convergence establishes I : x > 1 && x <= 4 -> x := x - 1;
`)
	sp, err := verify.NewSpaceContext(context.Background(), m.Program, m.S, m.T, verify.Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	res := sp.CheckConvergence()
	if !res.Converges {
		t.Errorf("not convergent from T: %s", res.Summary())
	}
	// Worst case: from x=4 down to x=1 is 3 steps.
	if res.WorstSteps != 3 {
		t.Errorf("worst steps = %d, want 3", res.WorstSteps)
	}
}
