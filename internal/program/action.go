package program

import (
	"fmt"
	"math/rand"
	"strings"
)

// ActionKind classifies actions per the paper's design method (Section 3):
// closure actions perform the intended computation when the invariant holds;
// convergence actions reestablish violated constraints; fault actions model
// the faults themselves ("all classes of faults can be represented as
// actions that change the program state").
type ActionKind int

// Action kinds. They start at one so the zero value is detectably unset.
const (
	Closure ActionKind = iota + 1
	Convergence
	Fault
)

// String returns a human-readable kind name.
func (k ActionKind) String() string {
	switch k {
	case Closure:
		return "closure"
	case Convergence:
		return "convergence"
	case Fault:
		return "fault"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is one guarded command: <guard> -> <statement>. Reads and Writes
// are the declared footprint: Guard may read only Reads; Body may read only
// Reads and write only Writes. Written variables are conventionally also
// listed in Reads when the body reads their old value.
//
// Honest footprints are what make constraint graphs (paper Section 4)
// meaningful; AuditAction checks them dynamically.
type Action struct {
	Name  string
	Kind  ActionKind
	Reads []VarID
	// Writes is the set of variables the body may assign.
	Writes []VarID
	Guard  func(*State) bool
	Body   func(*State)
}

// NewAction builds an action with a canonicalized footprint.
func NewAction(name string, kind ActionKind, reads, writes []VarID,
	guard func(*State) bool, body func(*State)) *Action {
	r := make([]VarID, len(reads))
	copy(r, reads)
	w := make([]VarID, len(writes))
	copy(w, writes)
	return &Action{
		Name:   name,
		Kind:   kind,
		Reads:  SortVarIDs(r),
		Writes: SortVarIDs(w),
		Guard:  guard,
		Body:   body,
	}
}

// Enabled reports whether the action's guard holds at s (paper Section 2).
func (a *Action) Enabled(s *State) bool { return a.Guard(s) }

// Apply executes the action's statement on a copy of s and returns the
// copy. It does not check the guard; callers that model execution steps
// must check Enabled first.
func (a *Action) Apply(s *State) *State {
	next := s.Clone()
	a.Body(next)
	return next
}

// ApplyInto executes the action's statement on a copy of src placed in
// dst, avoiding Apply's per-call allocation. src and dst must be states of
// the same schema; dst is overwritten. It is the hot-loop form used by the
// successor-table construction in internal/verify.
func (a *Action) ApplyInto(src, dst *State) {
	copy(dst.vals, src.vals)
	a.Body(dst)
}

// Step executes the action if enabled. The boolean result reports whether
// the action was enabled (and hence executed).
func (a *Action) Step(s *State) (*State, bool) {
	if !a.Guard(s) {
		return s, false
	}
	return a.Apply(s), true
}

// Footprint returns the union of the action's reads and writes.
func (a *Action) Footprint() []VarID {
	all := make([]VarID, 0, len(a.Reads)+len(a.Writes))
	all = append(all, a.Reads...)
	all = append(all, a.Writes...)
	return SortVarIDs(all)
}

// String renders the action as "name: kind(reads -> writes)".
func (a *Action) String() string {
	return fmt.Sprintf("%s [%s]", a.Name, a.Kind)
}

// Program is a finite set of variables and a finite set of actions
// (paper Section 2).
type Program struct {
	Name    string
	Schema  *Schema
	Actions []*Action
}

// New returns an empty program over the given schema.
func New(name string, schema *Schema) *Program {
	return &Program{Name: name, Schema: schema}
}

// Add appends actions to the program and returns the program for chaining.
func (p *Program) Add(actions ...*Action) *Program {
	p.Actions = append(p.Actions, actions...)
	return p
}

// OfKind returns the actions of the given kind, in program order.
func (p *Program) OfKind(k ActionKind) []*Action {
	var out []*Action
	for _, a := range p.Actions {
		if a.Kind == k {
			out = append(out, a)
		}
	}
	return out
}

// Enabled returns the actions enabled at s, in program order.
func (p *Program) Enabled(s *State) []*Action {
	var out []*Action
	for _, a := range p.Actions {
		if a.Guard(s) {
			out = append(out, a)
		}
	}
	return out
}

// EnabledCount returns the number of actions enabled at s without
// allocating.
func (p *Program) EnabledCount(s *State) int {
	n := 0
	for _, a := range p.Actions {
		if a.Guard(s) {
			n++
		}
	}
	return n
}

// Union returns a new program containing the actions of p followed by the
// given extra actions — the paper's augmented program "p ∪ {ca.1 ... ca.n}".
func (p *Program) Union(name string, extra ...*Action) *Program {
	q := New(name, p.Schema)
	q.Actions = append(q.Actions, p.Actions...)
	q.Actions = append(q.Actions, extra...)
	return q
}

// Validate performs static sanity checks: a nonempty schema, actions with
// guards and bodies, footprints referencing declared variables, and unique
// action names.
func (p *Program) Validate() error {
	if p.Schema == nil || p.Schema.Len() == 0 {
		return fmt.Errorf("program %q: empty schema", p.Name)
	}
	names := make(map[string]bool, len(p.Actions))
	for i, a := range p.Actions {
		if a.Name == "" {
			return fmt.Errorf("program %q: action %d has no name", p.Name, i)
		}
		if names[a.Name] {
			return fmt.Errorf("program %q: duplicate action name %q", p.Name, a.Name)
		}
		names[a.Name] = true
		if a.Guard == nil || a.Body == nil {
			return fmt.Errorf("program %q: action %q lacks guard or body", p.Name, a.Name)
		}
		if a.Kind != Closure && a.Kind != Convergence && a.Kind != Fault {
			return fmt.Errorf("program %q: action %q has invalid kind %d", p.Name, a.Name, int(a.Kind))
		}
		for _, id := range a.Footprint() {
			if int(id) < 0 || int(id) >= p.Schema.Len() {
				return fmt.Errorf("program %q: action %q references undeclared variable %d",
					p.Name, a.Name, id)
			}
		}
	}
	return nil
}

// AuditAction dynamically checks an action's declared footprint on n random
// states: the body must leave all non-Write variables unchanged, and the
// guard and body must be insensitive to the values of non-Read variables.
// It returns the first violation found, or nil.
func AuditAction(schema *Schema, a *Action, rng *rand.Rand, n int) error {
	writes := make(map[VarID]bool, len(a.Writes))
	for _, id := range a.Writes {
		writes[id] = true
	}
	reads := make(map[VarID]bool, len(a.Reads))
	for _, id := range a.Reads {
		reads[id] = true
	}
	for trial := 0; trial < n; trial++ {
		s := randomState(schema, rng)
		// Bodies are only ever executed when the guard holds; an action may
		// legitimately leave the domain if applied from a state where it is
		// disabled, so the audit respects guards throughout.
		enabled := a.Guard(s)
		var next *State
		if enabled {
			// Writes audit: body changes only declared writes.
			next = a.Apply(s)
			for id := 0; id < schema.Len(); id++ {
				if next.vals[id] != s.vals[id] && !writes[VarID(id)] {
					return fmt.Errorf("action %q wrote undeclared variable %s",
						a.Name, schema.Spec(VarID(id)).Name)
				}
			}
		}
		// Reads audit: perturb one non-read variable; guard result and the
		// projection of the body's effect onto Writes must not change.
		if schema.Len() == 0 {
			continue
		}
		id := VarID(rng.Intn(schema.Len()))
		if reads[id] || writes[id] {
			continue
		}
		dom := schema.Spec(id).Dom
		if dom.Size() < 2 {
			continue
		}
		perturbed := s.Clone()
		for {
			v := dom.Min + int32(rng.Int63n(dom.Size()))
			if v != s.vals[id] {
				perturbed.vals[id] = v
				break
			}
		}
		if enabled != a.Guard(perturbed) {
			return fmt.Errorf("action %q guard reads undeclared variable %s",
				a.Name, schema.Spec(id).Name)
		}
		if !enabled {
			continue
		}
		pnext := a.Apply(perturbed)
		for _, w := range a.Writes {
			if pnext.vals[w] != next.vals[w] {
				return fmt.Errorf("action %q body reads undeclared variable %s",
					a.Name, schema.Spec(id).Name)
			}
		}
	}
	return nil
}

// AuditPredicate dynamically checks a predicate's declared support on n
// random states: perturbing a variable outside Vars must not change the
// predicate's value.
func AuditPredicate(schema *Schema, p *Predicate, rng *rand.Rand, n int) error {
	if p == nil {
		return nil
	}
	support := make(map[VarID]bool, len(p.Vars))
	for _, id := range p.Vars {
		support[id] = true
	}
	for trial := 0; trial < n; trial++ {
		s := randomState(schema, rng)
		if schema.Len() == 0 {
			continue
		}
		id := VarID(rng.Intn(schema.Len()))
		if support[id] {
			continue
		}
		dom := schema.Spec(id).Dom
		if dom.Size() < 2 {
			continue
		}
		perturbed := s.Clone()
		for {
			v := dom.Min + int32(rng.Int63n(dom.Size()))
			if v != s.vals[id] {
				perturbed.vals[id] = v
				break
			}
		}
		if p.Eval(s) != p.Eval(perturbed) {
			return fmt.Errorf("predicate %q reads undeclared variable %s",
				p.Name, schema.Spec(id).Name)
		}
	}
	return nil
}

// Audit runs AuditAction over every action of the program.
func (p *Program) Audit(rng *rand.Rand, trialsPerAction int) error {
	for _, a := range p.Actions {
		if err := AuditAction(p.Schema, a, rng, trialsPerAction); err != nil {
			return err
		}
	}
	return nil
}

// randomState draws a uniformly random state of the schema.
func randomState(schema *Schema, rng *rand.Rand) *State {
	st := schema.NewState()
	for i := 0; i < schema.Len(); i++ {
		dom := schema.Spec(VarID(i)).Dom
		st.vals[i] = dom.Min + int32(rng.Int63n(dom.Size()))
	}
	return st
}

// RandomState draws a uniformly random state of the schema. It is the
// exported form of the sampler used by the audits, shared by fault
// injectors and simulation harnesses.
func RandomState(schema *Schema, rng *rand.Rand) *State {
	return randomState(schema, rng)
}

// DescribeActions renders a one-line-per-action listing of the program,
// grouped by kind, for CLI output.
func (p *Program) DescribeActions() string {
	var b strings.Builder
	for _, kind := range []ActionKind{Closure, Convergence, Fault} {
		actions := p.OfKind(kind)
		if len(actions) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s actions (%d):\n", kind, len(actions))
		for _, a := range actions {
			fmt.Fprintf(&b, "  %s\n", a.Name)
		}
	}
	return b.String()
}
