package program

import (
	"math/rand"
	"strings"
	"testing"
)

// incProgram builds the schema and a single action "x<4 -> x:=x+1".
func incProgram(t *testing.T) (*Program, VarID) {
	t.Helper()
	s := NewSchema()
	x := s.MustDeclare("x", IntRange(0, 4))
	p := New("inc", s)
	p.Add(NewAction("inc-x", Closure,
		[]VarID{x}, []VarID{x},
		func(st *State) bool { return st.Get(x) < 4 },
		func(st *State) { st.Set(x, st.Get(x)+1) },
	))
	return p, x
}

func TestActionEnabledAndApply(t *testing.T) {
	p, x := incProgram(t)
	a := p.Actions[0]
	st := p.Schema.NewState()
	if !a.Enabled(st) {
		t.Fatal("action disabled at x=0")
	}
	next := a.Apply(st)
	if next.Get(x) != 1 {
		t.Errorf("after apply x = %d, want 1", next.Get(x))
	}
	if st.Get(x) != 0 {
		t.Error("Apply mutated its input state")
	}
	st.Set(x, 4)
	if a.Enabled(st) {
		t.Error("action enabled at x=4")
	}
}

func TestActionStep(t *testing.T) {
	p, x := incProgram(t)
	a := p.Actions[0]
	st := p.Schema.NewState()
	st.Set(x, 4)
	next, fired := a.Step(st)
	if fired {
		t.Error("Step fired a disabled action")
	}
	if next != st {
		t.Error("Step on disabled action returned a different state")
	}
	st.Set(x, 2)
	next, fired = a.Step(st)
	if !fired || next.Get(x) != 3 {
		t.Errorf("Step = (%v, %v), want x=3 fired", next, fired)
	}
}

func TestActionFootprintCanonical(t *testing.T) {
	a := NewAction("a", Closure, []VarID{3, 1, 3}, []VarID{2, 1}, nil, nil)
	wantReads := []VarID{1, 3}
	for i, id := range a.Reads {
		if id != wantReads[i] {
			t.Fatalf("Reads = %v, want %v", a.Reads, wantReads)
		}
	}
	fp := a.Footprint()
	want := []VarID{1, 2, 3}
	if len(fp) != len(want) {
		t.Fatalf("Footprint = %v, want %v", fp, want)
	}
	for i := range fp {
		if fp[i] != want[i] {
			t.Fatalf("Footprint = %v, want %v", fp, want)
		}
	}
}

func TestActionKindString(t *testing.T) {
	tests := []struct {
		k    ActionKind
		want string
	}{
		{Closure, "closure"},
		{Convergence, "convergence"},
		{Fault, "fault"},
		{ActionKind(0), "ActionKind(0)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.k), got, tt.want)
		}
	}
}

func TestProgramOfKindAndEnabled(t *testing.T) {
	s := NewSchema()
	x := s.MustDeclare("x", IntRange(0, 4))
	p := New("p", s)
	cl := NewAction("up", Closure, []VarID{x}, []VarID{x},
		func(st *State) bool { return st.Get(x) < 4 },
		func(st *State) { st.Set(x, st.Get(x)+1) })
	cv := NewAction("reset", Convergence, []VarID{x}, []VarID{x},
		func(st *State) bool { return st.Get(x) > 2 },
		func(st *State) { st.Set(x, 0) })
	p.Add(cl, cv)

	if got := p.OfKind(Closure); len(got) != 1 || got[0] != cl {
		t.Errorf("OfKind(Closure) = %v", got)
	}
	if got := p.OfKind(Fault); got != nil {
		t.Errorf("OfKind(Fault) = %v, want nil", got)
	}

	st := p.Schema.NewState()
	st.Set(x, 3)
	enabled := p.Enabled(st)
	if len(enabled) != 2 {
		t.Fatalf("Enabled at x=3 = %d actions, want 2", len(enabled))
	}
	if p.EnabledCount(st) != 2 {
		t.Errorf("EnabledCount = %d, want 2", p.EnabledCount(st))
	}
	st.Set(x, 4)
	if got := p.Enabled(st); len(got) != 1 || got[0] != cv {
		t.Errorf("Enabled at x=4 = %v, want [reset]", got)
	}
}

func TestProgramUnion(t *testing.T) {
	p, x := incProgram(t)
	extra := NewAction("conv", Convergence, []VarID{x}, []VarID{x},
		func(st *State) bool { return false },
		func(st *State) {})
	q := p.Union("augmented", extra)
	if len(q.Actions) != 2 {
		t.Fatalf("union has %d actions, want 2", len(q.Actions))
	}
	if len(p.Actions) != 1 {
		t.Error("Union mutated the original program")
	}
	if q.Name != "augmented" || q.Schema != p.Schema {
		t.Error("Union name/schema wrong")
	}
}

func TestProgramValidate(t *testing.T) {
	p, x := incProgram(t)
	if err := p.Validate(); err != nil {
		t.Errorf("valid program failed Validate: %v", err)
	}

	tests := []struct {
		name   string
		mutate func(*Program)
		substr string
	}{
		{"empty name", func(q *Program) { q.Actions[0].Name = "" }, "no name"},
		{"nil guard", func(q *Program) { q.Actions[0].Guard = nil }, "lacks guard"},
		{"bad kind", func(q *Program) { q.Actions[0].Kind = 0 }, "invalid kind"},
		{"bad var", func(q *Program) { q.Actions[0].Writes = []VarID{99} }, "undeclared"},
		{"duplicate name", func(q *Program) {
			q.Add(NewAction("inc-x", Closure, []VarID{x}, []VarID{x},
				func(*State) bool { return false }, func(*State) {}))
		}, "duplicate"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			q, _ := incProgram(t)
			tt.mutate(q)
			err := q.Validate()
			if err == nil || !strings.Contains(err.Error(), tt.substr) {
				t.Errorf("Validate() = %v, want error containing %q", err, tt.substr)
			}
		})
	}

	empty := New("empty", NewSchema())
	if err := empty.Validate(); err == nil {
		t.Error("empty-schema program passed Validate")
	}
}

func TestAuditActionCatchesUndeclaredWrite(t *testing.T) {
	s := NewSchema()
	x := s.MustDeclare("x", IntRange(0, 4))
	y := s.MustDeclare("y", IntRange(0, 4))
	// Claims to write only x but also writes y.
	bad := NewAction("bad", Closure, []VarID{x}, []VarID{x},
		func(st *State) bool { return true },
		func(st *State) {
			st.Set(x, 0)
			st.Set(y, 0)
		})
	rng := rand.New(rand.NewSource(7))
	err := AuditAction(s, bad, rng, 100)
	if err == nil || !strings.Contains(err.Error(), "wrote undeclared") {
		t.Errorf("AuditAction = %v, want undeclared-write error", err)
	}
}

func TestAuditActionCatchesUndeclaredGuardRead(t *testing.T) {
	s := NewSchema()
	x := s.MustDeclare("x", IntRange(0, 4))
	y := s.MustDeclare("y", IntRange(0, 4))
	// Guard reads y but declares only x.
	bad := NewAction("bad", Closure, []VarID{x}, []VarID{x},
		func(st *State) bool { return st.Get(y) > 2 },
		func(st *State) { st.Set(x, 0) })
	rng := rand.New(rand.NewSource(7))
	err := AuditAction(s, bad, rng, 500)
	if err == nil || !strings.Contains(err.Error(), "guard reads undeclared") {
		t.Errorf("AuditAction = %v, want undeclared-guard-read error", err)
	}
}

func TestAuditActionCatchesUndeclaredBodyRead(t *testing.T) {
	s := NewSchema()
	x := s.MustDeclare("x", IntRange(0, 4))
	y := s.MustDeclare("y", IntRange(0, 4))
	bad := NewAction("bad", Closure, []VarID{x}, []VarID{x},
		func(st *State) bool { return true },
		func(st *State) { st.Set(x, st.Get(y)) })
	rng := rand.New(rand.NewSource(7))
	err := AuditAction(s, bad, rng, 500)
	if err == nil || !strings.Contains(err.Error(), "body reads undeclared") {
		t.Errorf("AuditAction = %v, want undeclared-body-read error", err)
	}
}

func TestAuditActionPassesHonestAction(t *testing.T) {
	p, _ := incProgram(t)
	rng := rand.New(rand.NewSource(7))
	if err := p.Audit(rng, 200); err != nil {
		t.Errorf("honest action failed audit: %v", err)
	}
}

func TestAuditPredicate(t *testing.T) {
	s := NewSchema()
	x := s.MustDeclare("x", IntRange(0, 4))
	y := s.MustDeclare("y", IntRange(0, 4))
	rng := rand.New(rand.NewSource(7))

	honest := NewPredicate("x small", []VarID{x}, func(st *State) bool { return st.Get(x) < 2 })
	if err := AuditPredicate(s, honest, rng, 300); err != nil {
		t.Errorf("honest predicate failed audit: %v", err)
	}

	dishonest := NewPredicate("lies", []VarID{x}, func(st *State) bool { return st.Get(y) < 2 })
	err := AuditPredicate(s, dishonest, rng, 500)
	if err == nil || !strings.Contains(err.Error(), "reads undeclared") {
		t.Errorf("AuditPredicate = %v, want undeclared-read error", err)
	}

	if err := AuditPredicate(s, nil, rng, 10); err != nil {
		t.Errorf("nil predicate audit: %v", err)
	}
}

func TestDescribeActions(t *testing.T) {
	p, x := incProgram(t)
	p.Add(NewAction("conv", Convergence, []VarID{x}, []VarID{x},
		func(*State) bool { return false }, func(*State) {}))
	out := p.DescribeActions()
	for _, want := range []string{"closure actions (1)", "convergence actions (1)", "inc-x", "conv"} {
		if !strings.Contains(out, want) {
			t.Errorf("DescribeActions missing %q in:\n%s", want, out)
		}
	}
}
