// Package program implements the guarded-command program model of
// Arora, Gouda & Varghese, "Constraint Satisfaction as a Basis for
// Designing Nonmasking Fault-Tolerance" (1994), Section 2.
//
// A program is a finite set of variables over finite domains and a finite
// set of actions of the form
//
//	<guard> -> <statement>
//
// where a guard is a boolean expression over the variables and a statement
// is a terminating multi-assignment. A state assigns a value to every
// variable; a state predicate is a boolean expression over states; a
// computation is a fair, maximal interleaving of enabled actions.
//
// The package keeps the state space finite and explicitly enumerable so the
// model checker in internal/verify can decide closure and convergence
// exactly on paper-sized instances.
package program

import (
	"fmt"
	"strings"
)

// DomainKind discriminates the three supported variable domain shapes.
type DomainKind int

// Domain kinds. They start at one so the zero value is detectably invalid.
const (
	// KindBool is the two-valued boolean domain {false, true}, encoded 0/1.
	KindBool DomainKind = iota + 1
	// KindInt is a contiguous integer range Min..Max inclusive.
	KindInt
	// KindEnum is a finite set of named labels encoded 0..len(Labels)-1.
	KindEnum
)

// String returns a human-readable kind name.
func (k DomainKind) String() string {
	switch k {
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindEnum:
		return "enum"
	default:
		return fmt.Sprintf("DomainKind(%d)", int(k))
	}
}

// Domain describes the finite set of values a variable may take.
// The zero Domain is invalid; construct domains with Bool, IntRange or Enum.
type Domain struct {
	Kind DomainKind
	// Min and Max bound KindInt domains, inclusive on both ends.
	Min, Max int32
	// Labels names the values of a KindEnum domain. Labels[i] is the name
	// of encoded value i.
	Labels []string
}

// Bool returns the boolean domain.
func Bool() Domain { return Domain{Kind: KindBool, Min: 0, Max: 1} }

// IntRange returns the integer domain min..max (inclusive).
// It panics if max < min; domains must be nonempty per the paper's model.
func IntRange(min, max int32) Domain {
	if max < min {
		panic(fmt.Sprintf("program: empty domain %d..%d", min, max))
	}
	return Domain{Kind: KindInt, Min: min, Max: max}
}

// Enum returns a named finite domain. Encoded values are the label indices.
// It panics on an empty label list or duplicate labels.
func Enum(labels ...string) Domain {
	if len(labels) == 0 {
		panic("program: enum domain needs at least one label")
	}
	seen := make(map[string]bool, len(labels))
	for _, l := range labels {
		if seen[l] {
			panic("program: duplicate enum label " + l)
		}
		seen[l] = true
	}
	cp := make([]string, len(labels))
	copy(cp, labels)
	return Domain{Kind: KindEnum, Min: 0, Max: int32(len(labels) - 1), Labels: cp}
}

// Size returns the number of values in the domain.
func (d Domain) Size() int64 {
	if d.Kind == 0 {
		return 0
	}
	return int64(d.Max) - int64(d.Min) + 1
}

// Contains reports whether v is a member of the domain.
func (d Domain) Contains(v int32) bool {
	return d.Kind != 0 && v >= d.Min && v <= d.Max
}

// Clamp returns v forced into the domain by saturation. It is used by fault
// injectors that corrupt values: the paper's fault model perturbs state
// within the variables' domains.
func (d Domain) Clamp(v int32) int32 {
	if v < d.Min {
		return d.Min
	}
	if v > d.Max {
		return d.Max
	}
	return v
}

// ValueString renders an encoded value of this domain for humans:
// booleans as true/false, enums by label, integers as decimal.
func (d Domain) ValueString(v int32) string {
	switch d.Kind {
	case KindBool:
		if v == 0 {
			return "false"
		}
		return "true"
	case KindEnum:
		if int(v) >= 0 && int(v) < len(d.Labels) {
			return d.Labels[int(v)]
		}
	}
	return fmt.Sprintf("%d", v)
}

// Value looks up the encoded value of an enum label. The boolean result
// reports whether the label names a value of this domain.
func (d Domain) Value(label string) (int32, bool) {
	if d.Kind == KindBool {
		switch label {
		case "false":
			return 0, true
		case "true":
			return 1, true
		}
		return 0, false
	}
	for i, l := range d.Labels {
		if l == label {
			return int32(i), true
		}
	}
	return 0, false
}

// String renders the domain in the paper's declaration style,
// e.g. "bool", "0..4", "{green, red}".
func (d Domain) String() string {
	switch d.Kind {
	case KindBool:
		return "bool"
	case KindInt:
		return fmt.Sprintf("%d..%d", d.Min, d.Max)
	case KindEnum:
		return "{" + strings.Join(d.Labels, ", ") + "}"
	default:
		return "invalid"
	}
}

// Equal reports structural equality of two domains.
func (d Domain) Equal(o Domain) bool {
	if d.Kind != o.Kind || d.Min != o.Min || d.Max != o.Max || len(d.Labels) != len(o.Labels) {
		return false
	}
	for i := range d.Labels {
		if d.Labels[i] != o.Labels[i] {
			return false
		}
	}
	return true
}
