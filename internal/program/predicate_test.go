package program

import (
	"testing"
)

func predSchema(t *testing.T) (*Schema, VarID, VarID) {
	t.Helper()
	s := NewSchema()
	x := s.MustDeclare("x", IntRange(0, 4))
	y := s.MustDeclare("y", IntRange(0, 4))
	return s, x, y
}

func TestPredicateHolds(t *testing.T) {
	s, x, _ := predSchema(t)
	p := NewPredicate("x=0", []VarID{x}, func(st *State) bool { return st.Get(x) == 0 })
	st := s.NewState()
	if !p.Holds(st) {
		t.Error("x=0 should hold at initial state")
	}
	st.Set(x, 1)
	if p.Holds(st) {
		t.Error("x=0 holds at x=1")
	}
}

func TestNilPredicateIsTrue(t *testing.T) {
	s, _, _ := predSchema(t)
	var p *Predicate
	if !p.Holds(s.NewState()) {
		t.Error("nil predicate does not hold")
	}
	if !p.IsConstTrue() {
		t.Error("nil predicate not IsConstTrue")
	}
}

func TestTrueFalse(t *testing.T) {
	s, _, _ := predSchema(t)
	st := s.NewState()
	if !True().Holds(st) {
		t.Error("True() does not hold")
	}
	if False().Holds(st) {
		t.Error("False() holds")
	}
	if !True().IsConstTrue() {
		t.Error("True() not IsConstTrue")
	}
	if False().IsConstTrue() {
		t.Error("False() IsConstTrue")
	}
}

func TestAnd(t *testing.T) {
	s, x, y := predSchema(t)
	px := NewPredicate("x<2", []VarID{x}, func(st *State) bool { return st.Get(x) < 2 })
	py := NewPredicate("y<2", []VarID{y}, func(st *State) bool { return st.Get(y) < 2 })
	conj := And("", px, py)

	st := s.NewState()
	if !conj.Holds(st) {
		t.Error("conjunction should hold at (0,0)")
	}
	st.Set(y, 3)
	if conj.Holds(st) {
		t.Error("conjunction holds at (0,3)")
	}
	if conj.Name != "x<2 && y<2" {
		t.Errorf("auto name = %q", conj.Name)
	}
	if len(conj.Vars) != 2 {
		t.Errorf("conjunction support = %v, want both vars", conj.Vars)
	}

	// And of nothing (or only true) is true.
	if !And("", True(), nil).IsConstTrue() {
		t.Error("And(true, nil) not const true")
	}
	named := And("S", px)
	if named.Name != "S" {
		t.Errorf("explicit name = %q, want S", named.Name)
	}
}

func TestOr(t *testing.T) {
	s, x, y := predSchema(t)
	px := NewPredicate("x=4", []VarID{x}, func(st *State) bool { return st.Get(x) == 4 })
	py := NewPredicate("y=4", []VarID{y}, func(st *State) bool { return st.Get(y) == 4 })
	disj := Or("", px, py)

	st := s.NewState()
	if disj.Holds(st) {
		t.Error("disjunction holds at (0,0)")
	}
	st.Set(y, 4)
	if !disj.Holds(st) {
		t.Error("disjunction fails at (0,4)")
	}

	// Or with a true disjunct short-circuits to true.
	if !Or("", px, True()).IsConstTrue() {
		t.Error("Or(p, true) not const true")
	}
	// Or of nothing is false.
	if Or("empty").Holds(st) {
		t.Error("empty Or holds")
	}
}

func TestNotAndImplies(t *testing.T) {
	s, x, _ := predSchema(t)
	px := NewPredicate("x=0", []VarID{x}, func(st *State) bool { return st.Get(x) == 0 })
	st := s.NewState()

	np := Not(px)
	if np.Holds(st) {
		t.Error("!(x=0) holds at x=0")
	}
	st.Set(x, 1)
	if !np.Holds(st) {
		t.Error("!(x=0) fails at x=1")
	}
	if !Not(nil).Eval(st) == false {
		// Not(nil) == Not(true) == false
		t.Error("Not(nil) should be false")
	}

	// x=0 => x<2 is valid everywhere.
	small := NewPredicate("x<2", []VarID{x}, func(st *State) bool { return st.Get(x) < 2 })
	impl := Implies(px, small)
	for v := int32(0); v <= 4; v++ {
		st.Set(x, v)
		if !impl.Holds(st) {
			t.Errorf("x=0 => x<2 fails at x=%d", v)
		}
	}
	// x<2 => x=0 fails at x=1.
	rev := Implies(small, px)
	st.Set(x, 1)
	if rev.Holds(st) {
		t.Error("x<2 => x=0 holds at x=1")
	}
}
