package program

import (
	"math/rand"
	"testing"
)

func twoVarSchema(t *testing.T) (*Schema, VarID, VarID) {
	t.Helper()
	s := NewSchema()
	x := s.MustDeclare("x", IntRange(0, 9))
	y := s.MustDeclare("y", Bool())
	return s, x, y
}

func TestStateGetSet(t *testing.T) {
	s, x, y := twoVarSchema(t)
	st := s.NewState()
	st.Set(x, 7)
	st.SetBool(y, true)
	if st.Get(x) != 7 {
		t.Errorf("Get(x) = %d, want 7", st.Get(x))
	}
	if !st.Bool(y) {
		t.Error("Bool(y) = false, want true")
	}
	st.SetBool(y, false)
	if st.Bool(y) {
		t.Error("Bool(y) = true, want false")
	}
}

func TestStateSetPanicsOutOfDomain(t *testing.T) {
	s, x, _ := twoVarSchema(t)
	st := s.NewState()
	defer func() {
		if recover() == nil {
			t.Error("Set out of domain did not panic")
		}
	}()
	st.Set(x, 10)
}

func TestStateCloneIsIndependent(t *testing.T) {
	s, x, _ := twoVarSchema(t)
	st := s.NewState()
	st.Set(x, 3)
	cp := st.Clone()
	cp.Set(x, 5)
	if st.Get(x) != 3 {
		t.Errorf("original mutated by clone: x = %d, want 3", st.Get(x))
	}
	if cp.Get(x) != 5 {
		t.Errorf("clone x = %d, want 5", cp.Get(x))
	}
}

func TestStateEqualAndKey(t *testing.T) {
	s, x, y := twoVarSchema(t)
	a := s.NewState()
	b := s.NewState()
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Error("identical states compare unequal")
	}
	b.Set(x, 1)
	if a.Equal(b) || a.Key() == b.Key() {
		t.Error("distinct states compare equal")
	}
	b.Set(x, 0)
	b.SetBool(y, true)
	if a.Equal(b) || a.Key() == b.Key() {
		t.Error("distinct states compare equal (bool)")
	}

	other := NewSchema()
	other.MustDeclare("x", IntRange(0, 9))
	other.MustDeclare("y", Bool())
	if a.Equal(other.NewState()) {
		t.Error("states of different schemas compare equal")
	}
}

func TestStateString(t *testing.T) {
	s := NewSchema()
	c := s.MustDeclare("c", Enum("green", "red"))
	sn := s.MustDeclare("sn", Bool())
	st := s.NewState()
	st.Set(c, 1)
	st.SetBool(sn, true)
	want := "{c=red, sn=true}"
	if got := st.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestStateValuesRoundTrip(t *testing.T) {
	s, x, y := twoVarSchema(t)
	st := s.NewState()
	st.Set(x, 4)
	st.SetBool(y, true)
	vals := st.Values()
	vals[0] = 9 // mutating the copy must not affect st
	if st.Get(x) != 4 {
		t.Error("Values() aliases internal storage")
	}

	dst := s.NewState()
	if err := dst.SetValues([]int32{9, 1}); err != nil {
		t.Fatalf("SetValues: %v", err)
	}
	if dst.Get(x) != 9 || !dst.Bool(y) {
		t.Errorf("SetValues result = %s", dst)
	}
	if err := dst.SetValues([]int32{1}); err == nil {
		t.Error("SetValues with wrong length succeeded")
	}
	if err := dst.SetValues([]int32{99, 0}); err == nil {
		t.Error("SetValues out of domain succeeded")
	}
}

func TestRandomStateInDomain(t *testing.T) {
	s := NewSchema()
	s.MustDeclare("a", IntRange(-5, 5))
	s.MustDeclare("b", Enum("p", "q", "r"))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		st := RandomState(s, rng)
		for id := 0; id < s.Len(); id++ {
			if !s.Spec(VarID(id)).Dom.Contains(st.Get(VarID(id))) {
				t.Fatalf("random state value out of domain: %s", st)
			}
		}
	}
}

func TestRandomStateCoversSpace(t *testing.T) {
	s := NewSchema()
	s.MustDeclare("a", IntRange(0, 3))
	rng := rand.New(rand.NewSource(42))
	seen := make(map[int32]bool)
	for i := 0; i < 200; i++ {
		seen[RandomState(s, rng).Get(0)] = true
	}
	if len(seen) != 4 {
		t.Errorf("random sampling hit %d of 4 values", len(seen))
	}
}
