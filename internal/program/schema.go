package program

import (
	"fmt"
	"math"
	"sort"
)

// VarID identifies a variable within a Schema. IDs are dense, starting at 0,
// in declaration order, so they index directly into State value slices.
type VarID int32

// VarSpec describes one declared variable.
type VarSpec struct {
	Name string
	Dom  Domain
}

// Schema is the variable declaration table of a program: an ordered list of
// named variables with finite domains. A Schema is immutable once actions
// and predicates have been built against it; Declare must not race with
// concurrent readers.
type Schema struct {
	specs []VarSpec
	index map[string]VarID
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{index: make(map[string]VarID)}
}

// Declare adds a variable with the given name and domain and returns its ID.
// Declaring a duplicate name or an invalid domain is an error.
func (s *Schema) Declare(name string, d Domain) (VarID, error) {
	if name == "" {
		return 0, fmt.Errorf("program: empty variable name")
	}
	if d.Size() <= 0 {
		return 0, fmt.Errorf("program: variable %q has empty domain", name)
	}
	if _, dup := s.index[name]; dup {
		return 0, fmt.Errorf("program: variable %q already declared", name)
	}
	id := VarID(len(s.specs))
	s.specs = append(s.specs, VarSpec{Name: name, Dom: d})
	s.index[name] = id
	return id, nil
}

// MustDeclare is Declare but panics on error. It is intended for protocol
// constructors whose declarations are statically correct.
func (s *Schema) MustDeclare(name string, d Domain) VarID {
	id, err := s.Declare(name, d)
	if err != nil {
		panic(err)
	}
	return id
}

// DeclareArray declares n variables named name[0] .. name[n-1], all with
// domain d, and returns their IDs in index order.
func (s *Schema) DeclareArray(name string, n int, d Domain) ([]VarID, error) {
	if n <= 0 {
		return nil, fmt.Errorf("program: array %q has non-positive length %d", name, n)
	}
	ids := make([]VarID, n)
	for i := 0; i < n; i++ {
		id, err := s.Declare(fmt.Sprintf("%s[%d]", name, i), d)
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	return ids, nil
}

// MustDeclareArray is DeclareArray but panics on error.
func (s *Schema) MustDeclareArray(name string, n int, d Domain) []VarID {
	ids, err := s.DeclareArray(name, n, d)
	if err != nil {
		panic(err)
	}
	return ids
}

// Len returns the number of declared variables.
func (s *Schema) Len() int { return len(s.specs) }

// Spec returns the declaration of variable id. It panics on an out-of-range
// ID, which always indicates a programming error (IDs come from Declare).
func (s *Schema) Spec(id VarID) VarSpec { return s.specs[id] }

// Lookup finds a variable by name.
func (s *Schema) Lookup(name string) (VarID, bool) {
	id, ok := s.index[name]
	return id, ok
}

// MustLookup finds a variable by name and panics if it is not declared.
func (s *Schema) MustLookup(name string) VarID {
	id, ok := s.index[name]
	if !ok {
		panic("program: undeclared variable " + name)
	}
	return id
}

// Names returns all declared variable names in declaration order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.specs))
	for i, sp := range s.specs {
		out[i] = sp.Name
	}
	return out
}

// StateCount returns the size of the full state space (the product of all
// domain sizes) and whether that product fits in an int64 without overflow.
// Explicit-state enumeration in internal/verify requires ok == true.
func (s *Schema) StateCount() (count int64, ok bool) {
	count = 1
	for _, sp := range s.specs {
		sz := sp.Dom.Size()
		if sz == 0 {
			return 0, false
		}
		if count > math.MaxInt64/sz {
			return 0, false
		}
		count *= sz
	}
	return count, true
}

// NewState returns a state with every variable at the minimum of its domain.
func (s *Schema) NewState() *State {
	st := &State{schema: s, vals: make([]int32, len(s.specs))}
	for i, sp := range s.specs {
		st.vals[i] = sp.Dom.Min
	}
	return st
}

// StateAt decodes a mixed-radix state index (as produced by Index) back
// into a State. It panics if idx is out of range; callers obtain indices
// from StateCount-bounded loops.
func (s *Schema) StateAt(idx int64) *State {
	st := &State{schema: s, vals: make([]int32, len(s.specs))}
	for i := len(s.specs) - 1; i >= 0; i-- {
		sz := s.specs[i].Dom.Size()
		st.vals[i] = s.specs[i].Dom.Min + int32(idx%sz)
		idx /= sz
	}
	if idx != 0 {
		panic("program: state index out of range")
	}
	return st
}

// StateInto decodes a mixed-radix state index into an existing state,
// avoiding StateAt's per-call allocation. It is the hot-loop form used by
// the sharded enumeration passes of internal/verify, where each worker
// owns one scratch state. st must have been created for this schema. It
// panics if idx is out of range.
func (s *Schema) StateInto(idx int64, st *State) {
	for i := len(s.specs) - 1; i >= 0; i-- {
		sz := s.specs[i].Dom.Size()
		st.vals[i] = s.specs[i].Dom.Min + int32(idx%sz)
		idx /= sz
	}
	if idx != 0 {
		panic("program: state index out of range")
	}
}

// Index encodes a state as a mixed-radix integer in 0..StateCount-1.
// It is the inverse of StateAt.
func (s *Schema) Index(st *State) int64 {
	var idx int64
	for i, sp := range s.specs {
		idx = idx*sp.Dom.Size() + int64(st.vals[i]-sp.Dom.Min)
	}
	return idx
}

// SortVarIDs sorts a slice of variable IDs in place and removes duplicates,
// returning the (possibly shorter) slice. It is the canonical form used for
// action footprints and predicate supports.
func SortVarIDs(ids []VarID) []VarID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	var prev VarID = -1
	for _, id := range ids {
		if id != prev {
			out = append(out, id)
			prev = id
		}
	}
	return out
}
