package program

import (
	"fmt"
	"strings"
	"unsafe"
)

// State assigns a value to every variable of a Schema (paper Section 2:
// "a state of p is defined by a value for each variable of p").
//
// States are mutable value containers; the execution and verification layers
// copy-on-write via Clone before applying actions, so a *State held by a
// trace or a visited-set key is never mutated afterwards.
type State struct {
	schema *Schema
	vals   []int32
}

// Schema returns the schema this state is an assignment for.
func (s *State) Schema() *Schema { return s.schema }

// Get returns the value of variable id.
func (s *State) Get(id VarID) int32 { return s.vals[id] }

// Bool returns the value of a boolean-encoded variable as a Go bool.
func (s *State) Bool(id VarID) bool { return s.vals[id] != 0 }

// Set assigns v to variable id. It panics if v is outside the variable's
// domain: the guarded-command model has no out-of-domain states, so writing
// one is always a bug in the action body (or an unclamped fault injector).
func (s *State) Set(id VarID, v int32) {
	if d := s.schema.specs[id].Dom; !d.Contains(v) {
		panic(fmt.Sprintf("program: value %d outside domain %s of %s",
			v, d, s.schema.specs[id].Name))
	}
	s.vals[id] = v
}

// SetBool assigns a boolean value to variable id.
func (s *State) SetBool(id VarID, v bool) {
	if v {
		s.Set(id, 1)
	} else {
		s.Set(id, 0)
	}
}

// Clone returns an independent copy of the state.
func (s *State) Clone() *State {
	vals := make([]int32, len(s.vals))
	copy(vals, s.vals)
	return &State{schema: s.schema, vals: vals}
}

// Equal reports whether two states over the same schema assign the same
// values. States over different schemas are never equal.
func (s *State) Equal(o *State) bool {
	if s.schema != o.schema || len(s.vals) != len(o.vals) {
		return false
	}
	for i := range s.vals {
		if s.vals[i] != o.vals[i] {
			return false
		}
	}
	return true
}

// Key returns a compact string fingerprint usable as a map key. Two states
// over the same schema have equal keys iff they are Equal.
func (s *State) Key() string {
	if len(s.vals) == 0 {
		return ""
	}
	b := unsafe.Slice((*byte)(unsafe.Pointer(&s.vals[0])), len(s.vals)*4)
	return string(b)
}

// Hash64 returns a 64-bit FNV-1a fingerprint of the state's value vector.
// Two Equal states always hash alike; distinct states collide with the
// usual 64-bit birthday odds, so consumers that substitute the hash for
// the identity (the verifier's fingerprint-mapped quotient spaces) must
// detect collisions rather than assume injectivity.
func (s *State) Hash64() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range s.vals {
		u := uint32(v)
		h = (h ^ uint64(u&0xff)) * prime64
		h = (h ^ uint64((u>>8)&0xff)) * prime64
		h = (h ^ uint64((u>>16)&0xff)) * prime64
		h = (h ^ uint64(u>>24)) * prime64
	}
	return h
}

// String renders the state as "name=value" pairs in declaration order,
// using domain-aware value formatting.
func (s *State) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, sp := range s.schema.specs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(sp.Name)
		b.WriteByte('=')
		b.WriteString(sp.Dom.ValueString(s.vals[i]))
	}
	b.WriteByte('}')
	return b.String()
}

// Values returns a copy of the raw value vector in declaration order.
func (s *State) Values() []int32 {
	out := make([]int32, len(s.vals))
	copy(out, s.vals)
	return out
}

// SetValues overwrites the full value vector. The length must match the
// schema and every value must lie in its variable's domain.
func (s *State) SetValues(vals []int32) error {
	if len(vals) != len(s.vals) {
		return fmt.Errorf("program: value vector length %d != schema length %d",
			len(vals), len(s.vals))
	}
	for i, v := range vals {
		if d := s.schema.specs[i].Dom; !d.Contains(v) {
			return fmt.Errorf("program: value %d outside domain %s of %s",
				v, d, s.schema.specs[i].Name)
		}
	}
	copy(s.vals, vals)
	return nil
}
