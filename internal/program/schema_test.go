package program

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSchemaDeclare(t *testing.T) {
	s := NewSchema()
	x, err := s.Declare("x", IntRange(0, 4))
	if err != nil {
		t.Fatalf("Declare(x) error: %v", err)
	}
	y, err := s.Declare("y", Bool())
	if err != nil {
		t.Fatalf("Declare(y) error: %v", err)
	}
	if x == y {
		t.Error("distinct variables got the same ID")
	}
	if s.Len() != 2 {
		t.Errorf("Len() = %d, want 2", s.Len())
	}
	if got := s.Spec(x).Name; got != "x" {
		t.Errorf("Spec(x).Name = %q, want x", got)
	}
	if id, ok := s.Lookup("y"); !ok || id != y {
		t.Errorf("Lookup(y) = %d, %v; want %d, true", id, ok, y)
	}
	if _, ok := s.Lookup("z"); ok {
		t.Error("Lookup(z) found undeclared variable")
	}
}

func TestSchemaDeclareErrors(t *testing.T) {
	s := NewSchema()
	if _, err := s.Declare("", Bool()); err == nil {
		t.Error("Declare with empty name succeeded")
	}
	if _, err := s.Declare("x", Domain{}); err == nil {
		t.Error("Declare with zero domain succeeded")
	}
	if _, err := s.Declare("x", Bool()); err != nil {
		t.Fatalf("Declare(x): %v", err)
	}
	if _, err := s.Declare("x", Bool()); err == nil {
		t.Error("duplicate Declare succeeded")
	}
}

func TestSchemaDeclareArray(t *testing.T) {
	s := NewSchema()
	ids, err := s.DeclareArray("c", 3, Enum("green", "red"))
	if err != nil {
		t.Fatalf("DeclareArray: %v", err)
	}
	if len(ids) != 3 {
		t.Fatalf("got %d ids, want 3", len(ids))
	}
	for i, id := range ids {
		wantName := []string{"c[0]", "c[1]", "c[2]"}[i]
		if got := s.Spec(id).Name; got != wantName {
			t.Errorf("Spec(ids[%d]).Name = %q, want %q", i, got, wantName)
		}
	}
	if _, err := s.DeclareArray("d", 0, Bool()); err == nil {
		t.Error("DeclareArray with length 0 succeeded")
	}
}

func TestSchemaStateCount(t *testing.T) {
	s := NewSchema()
	s.MustDeclare("a", IntRange(0, 4)) // 5
	s.MustDeclare("b", Bool())         // 2
	s.MustDeclare("c", Enum("x", "y", "z"))
	count, ok := s.StateCount()
	if !ok || count != 30 {
		t.Errorf("StateCount() = %d, %v; want 30, true", count, ok)
	}
}

func TestSchemaStateCountOverflow(t *testing.T) {
	// Three variables of ~2e9 values overflow int64 (8e27 states).
	big := NewSchema()
	for i := 0; i < 3; i++ {
		big.MustDeclare(string(rune('a'+i)), IntRange(0, 2_000_000_000))
	}
	if _, ok := big.StateCount(); ok {
		t.Error("StateCount did not report overflow")
	}
}

func TestSchemaIndexRoundTrip(t *testing.T) {
	s := NewSchema()
	s.MustDeclare("a", IntRange(-2, 2)) // 5
	s.MustDeclare("b", Bool())          // 2
	s.MustDeclare("c", Enum("p", "q", "r"))
	count, ok := s.StateCount()
	if !ok {
		t.Fatal("state count overflow")
	}
	seen := make(map[string]bool, count)
	for i := int64(0); i < count; i++ {
		st := s.StateAt(i)
		if got := s.Index(st); got != i {
			t.Fatalf("Index(StateAt(%d)) = %d", i, got)
		}
		k := st.Key()
		if seen[k] {
			t.Fatalf("StateAt(%d) duplicates an earlier state", i)
		}
		seen[k] = true
	}
	if int64(len(seen)) != count {
		t.Errorf("enumerated %d distinct states, want %d", len(seen), count)
	}
}

func TestSchemaStateAtPanicsOutOfRange(t *testing.T) {
	s := NewSchema()
	s.MustDeclare("a", Bool())
	defer func() {
		if recover() == nil {
			t.Error("StateAt(2) did not panic on 2-state schema")
		}
	}()
	s.StateAt(2)
}

func TestNewStateAtDomainMin(t *testing.T) {
	s := NewSchema()
	a := s.MustDeclare("a", IntRange(3, 9))
	b := s.MustDeclare("b", Enum("g", "r"))
	st := s.NewState()
	if st.Get(a) != 3 {
		t.Errorf("new state a = %d, want 3", st.Get(a))
	}
	if st.Get(b) != 0 {
		t.Errorf("new state b = %d, want 0", st.Get(b))
	}
}

func TestSortVarIDs(t *testing.T) {
	tests := []struct {
		in, want []VarID
	}{
		{nil, nil},
		{[]VarID{3, 1, 2}, []VarID{1, 2, 3}},
		{[]VarID{2, 2, 2}, []VarID{2}},
		{[]VarID{5, 1, 5, 1}, []VarID{1, 5}},
	}
	for _, tt := range tests {
		got := SortVarIDs(append([]VarID(nil), tt.in...))
		if len(got) != len(tt.want) {
			t.Errorf("SortVarIDs(%v) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("SortVarIDs(%v) = %v, want %v", tt.in, got, tt.want)
				break
			}
		}
	}
}

// Property: Index is a bijection between random states and 0..count-1.
func TestSchemaIndexBijectionProperty(t *testing.T) {
	s := NewSchema()
	s.MustDeclareArray("x", 4, IntRange(0, 6))
	count, _ := s.StateCount()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := RandomState(s, rng)
		idx := s.Index(st)
		return idx >= 0 && idx < count && s.StateAt(idx).Equal(st)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
