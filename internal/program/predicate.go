package program

import "strings"

// Predicate is a named state predicate: a boolean expression over the
// variables of a program (paper Section 2). Vars is the declared support —
// the set of variables the expression may read. An honest support is what
// lets internal/ctheory decide preservation by enumerating only the
// variables an action and a constraint touch; AuditPredicate checks honesty
// dynamically.
type Predicate struct {
	Name string
	Eval func(*State) bool
	// Vars is the declared support, in canonical sorted order.
	// An empty support means the predicate is constant.
	Vars []VarID
}

// NewPredicate builds a predicate with the given name, support and body.
// The support is canonicalized (sorted, deduplicated).
func NewPredicate(name string, vars []VarID, eval func(*State) bool) *Predicate {
	cp := make([]VarID, len(vars))
	copy(cp, vars)
	return &Predicate{Name: name, Eval: eval, Vars: SortVarIDs(cp)}
}

// True is the constant-true predicate. It is the fault-span of every
// stabilizing program (paper Section 5: "for stabilizing programs, the
// program fault-span T is the state predicate true").
func True() *Predicate {
	return &Predicate{Name: "true", Eval: func(*State) bool { return true }}
}

// False is the constant-false predicate.
func False() *Predicate {
	return &Predicate{Name: "false", Eval: func(*State) bool { return false }}
}

// Holds reports whether the predicate holds at s. A nil predicate is
// interpreted as true, matching the paper's default fault-span.
func (p *Predicate) Holds(s *State) bool {
	if p == nil {
		return true
	}
	return p.Eval(s)
}

// IsConstTrue reports whether the predicate is the literal True (or nil).
func (p *Predicate) IsConstTrue() bool {
	return p == nil || (p.Name == "true" && len(p.Vars) == 0)
}

// And returns the conjunction of the given predicates. The paper's method
// builds the invariant S as the conjunction of its constraints with the
// fault-span T ("their conjunction together with T equivales S").
func And(name string, ps ...*Predicate) *Predicate {
	kept := make([]*Predicate, 0, len(ps))
	var vars []VarID
	for _, p := range ps {
		if p == nil || p.IsConstTrue() {
			continue
		}
		kept = append(kept, p)
		vars = append(vars, p.Vars...)
	}
	if name == "" {
		names := make([]string, len(kept))
		for i, p := range kept {
			names[i] = p.Name
		}
		name = strings.Join(names, " && ")
		if name == "" {
			name = "true"
		}
	}
	if len(kept) == 0 {
		t := True()
		t.Name = name
		return t
	}
	return NewPredicate(name, vars, func(s *State) bool {
		for _, p := range kept {
			if !p.Eval(s) {
				return false
			}
		}
		return true
	})
}

// Or returns the disjunction of the given predicates.
func Or(name string, ps ...*Predicate) *Predicate {
	kept := make([]*Predicate, 0, len(ps))
	var vars []VarID
	for _, p := range ps {
		if p == nil || p.IsConstTrue() {
			t := True()
			if name != "" {
				t.Name = name
			}
			return t
		}
		kept = append(kept, p)
		vars = append(vars, p.Vars...)
	}
	if name == "" {
		names := make([]string, len(kept))
		for i, p := range kept {
			names[i] = "(" + p.Name + ")"
		}
		name = strings.Join(names, " || ")
	}
	if len(kept) == 0 {
		f := False()
		f.Name = name
		return f
	}
	return NewPredicate(name, vars, func(s *State) bool {
		for _, p := range kept {
			if p.Eval(s) {
				return true
			}
		}
		return false
	})
}

// Not returns the negation of p.
func Not(p *Predicate) *Predicate {
	if p == nil {
		return False()
	}
	return NewPredicate("!("+p.Name+")", p.Vars, func(s *State) bool { return !p.Eval(s) })
}

// Implies returns the predicate p => q.
func Implies(p, q *Predicate) *Predicate {
	return Or("("+p.Name+") => ("+q.Name+")", Not(p), q)
}
