package program

import (
	"testing"
	"testing/quick"
)

func TestDomainKinds(t *testing.T) {
	tests := []struct {
		name     string
		dom      Domain
		size     int64
		contains []int32
		excludes []int32
		str      string
	}{
		{"bool", Bool(), 2, []int32{0, 1}, []int32{-1, 2}, "bool"},
		{"int range", IntRange(0, 4), 5, []int32{0, 2, 4}, []int32{-1, 5}, "0..4"},
		{"negative range", IntRange(-3, 3), 7, []int32{-3, 0, 3}, []int32{-4, 4}, "-3..3"},
		{"singleton", IntRange(7, 7), 1, []int32{7}, []int32{6, 8}, "7..7"},
		{"colors", Enum("green", "red"), 2, []int32{0, 1}, []int32{-1, 2}, "{green, red}"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.dom.Size(); got != tt.size {
				t.Errorf("Size() = %d, want %d", got, tt.size)
			}
			for _, v := range tt.contains {
				if !tt.dom.Contains(v) {
					t.Errorf("Contains(%d) = false, want true", v)
				}
			}
			for _, v := range tt.excludes {
				if tt.dom.Contains(v) {
					t.Errorf("Contains(%d) = true, want false", v)
				}
			}
			if got := tt.dom.String(); got != tt.str {
				t.Errorf("String() = %q, want %q", got, tt.str)
			}
		})
	}
}

func TestDomainZeroValueInvalid(t *testing.T) {
	var d Domain
	if d.Size() != 0 {
		t.Errorf("zero Domain Size() = %d, want 0", d.Size())
	}
	if d.Contains(0) {
		t.Error("zero Domain Contains(0) = true, want false")
	}
}

func TestIntRangePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("IntRange(3, 2) did not panic")
		}
	}()
	IntRange(3, 2)
}

func TestEnumPanics(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("Enum() did not panic")
			}
		}()
		Enum()
	})
	t.Run("duplicate", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("Enum with duplicate did not panic")
			}
		}()
		Enum("a", "a")
	})
}

func TestDomainClamp(t *testing.T) {
	d := IntRange(2, 5)
	tests := []struct{ in, want int32 }{
		{1, 2}, {2, 2}, {3, 3}, {5, 5}, {6, 5}, {-100, 2}, {100, 5},
	}
	for _, tt := range tests {
		if got := d.Clamp(tt.in); got != tt.want {
			t.Errorf("Clamp(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestDomainValueString(t *testing.T) {
	tests := []struct {
		dom  Domain
		v    int32
		want string
	}{
		{Bool(), 0, "false"},
		{Bool(), 1, "true"},
		{Enum("green", "red"), 0, "green"},
		{Enum("green", "red"), 1, "red"},
		{Enum("green", "red"), 5, "5"}, // out of range falls back to decimal
		{IntRange(0, 9), 7, "7"},
	}
	for _, tt := range tests {
		if got := tt.dom.ValueString(tt.v); got != tt.want {
			t.Errorf("%s.ValueString(%d) = %q, want %q", tt.dom, tt.v, got, tt.want)
		}
	}
}

func TestDomainValueLookup(t *testing.T) {
	colors := Enum("green", "red")
	if v, ok := colors.Value("red"); !ok || v != 1 {
		t.Errorf("Value(red) = %d, %v; want 1, true", v, ok)
	}
	if _, ok := colors.Value("blue"); ok {
		t.Error("Value(blue) ok = true, want false")
	}
	b := Bool()
	if v, ok := b.Value("true"); !ok || v != 1 {
		t.Errorf("bool Value(true) = %d, %v; want 1, true", v, ok)
	}
	if v, ok := b.Value("false"); !ok || v != 0 {
		t.Errorf("bool Value(false) = %d, %v; want 0, true", v, ok)
	}
	if _, ok := b.Value("maybe"); ok {
		t.Error("bool Value(maybe) ok = true, want false")
	}
}

func TestDomainEqual(t *testing.T) {
	tests := []struct {
		a, b Domain
		want bool
	}{
		{Bool(), Bool(), true},
		{IntRange(0, 4), IntRange(0, 4), true},
		{IntRange(0, 4), IntRange(0, 5), false},
		{Enum("a", "b"), Enum("a", "b"), true},
		{Enum("a", "b"), Enum("a", "c"), false},
		{Bool(), IntRange(0, 1), false},
	}
	for _, tt := range tests {
		if got := tt.a.Equal(tt.b); got != tt.want {
			t.Errorf("%s.Equal(%s) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

// Property: Clamp always lands in the domain, and is the identity on
// members of the domain.
func TestDomainClampProperty(t *testing.T) {
	f := func(lo, span uint8, v int32) bool {
		d := IntRange(int32(lo), int32(lo)+int32(span))
		c := d.Clamp(v)
		if !d.Contains(c) {
			return false
		}
		if d.Contains(v) && c != v {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
