package constraint

import (
	"testing"

	"nonmask/internal/program"
)

// layerFixture builds two layered constraints over a, b with an explicit
// weaker target for layer 1.
func layerFixture(t *testing.T) (*Set, *program.Schema, program.VarID, program.VarID) {
	t.Helper()
	s := program.NewSchema()
	a := s.MustDeclare("a", program.IntRange(0, 3))
	b := s.MustDeclare("b", program.IntRange(0, 3))
	aZero := program.NewPredicate("a=0", []program.VarID{a},
		func(st *program.State) bool { return st.Get(a) == 0 })
	bEqA := program.NewPredicate("b=a", []program.VarID{a, b},
		func(st *program.State) bool { return st.Get(b) == st.Get(a) })
	mk := func(name string, vars []program.VarID) *program.Action {
		return program.NewAction(name, program.Convergence, vars, vars[:1],
			func(*program.State) bool { return false }, func(*program.State) {})
	}
	set := NewSet(
		&Constraint{Pred: aZero, Action: mk("fa", []program.VarID{a}), Layer: 0},
		&Constraint{Pred: bEqA, Action: mk("fb", []program.VarID{b, a}), Layer: 1},
	)
	return set, s, a, b
}

func TestTargetDefaultsToLayerConjunction(t *testing.T) {
	set, s, a, b := layerFixture(t)
	t1 := set.Target(1)
	st := s.NewState()
	if !t1.Holds(st) {
		t.Error("default target fails where layer constraint holds")
	}
	st.Set(b, 2)
	if t1.Holds(st) {
		t.Error("default target holds where layer constraint fails")
	}
	_ = a
}

func TestSetTargetOverrides(t *testing.T) {
	set, s, a, b := layerFixture(t)
	// Weaker target: b <= a + 1.
	weak := program.NewPredicate("b<=a+1", []program.VarID{a, b},
		func(st *program.State) bool { return st.Get(b) <= st.Get(a)+1 })
	set.SetTarget(1, weak)

	st := s.NewState()
	st.Set(b, 1) // b=a+1: helper fails, target holds
	if !set.Target(1).Holds(st) {
		t.Error("explicit target not in effect")
	}
	// Layer 0's target is untouched.
	if !set.Target(0).Holds(st) {
		t.Error("layer 0 target affected")
	}
	// Re-setting replaces rather than appends.
	strict := program.NewPredicate("b=0", []program.VarID{b},
		func(st *program.State) bool { return st.Get(b) == 0 })
	set.SetTarget(1, strict)
	if set.Target(1).Holds(st) {
		t.Error("re-set target not in effect")
	}
	if len(set.Targets) != 1 {
		t.Errorf("Targets has %d entries, want 1", len(set.Targets))
	}
}

func TestTargetConjunction(t *testing.T) {
	set, s, a, b := layerFixture(t)
	weak := program.NewPredicate("b<=a+1", []program.VarID{a, b},
		func(st *program.State) bool { return st.Get(b) <= st.Get(a)+1 })
	set.SetTarget(1, weak)

	S := set.TargetConjunction("S")
	st := s.NewState()
	st.Set(b, 1) // a=0 ✓, b<=a+1 ✓, helper b=a ✗
	if !S.Holds(st) {
		t.Error("target conjunction should use the explicit target")
	}
	// The plain Conjunction still uses the helpers.
	C := set.Conjunction("C")
	if C.Holds(st) {
		t.Error("plain conjunction should use helper constraints")
	}
	st.Set(a, 1)
	st.Set(b, 3)
	if S.Holds(st) {
		t.Error("target conjunction holds where layer 0 fails")
	}
}
