package constraint

import (
	"strings"
	"testing"

	"nonmask/internal/program"
)

// xyzFixture builds the paper's Section 4 running example: variables
// x, y, z with S = (x != y) && (x <= z), over 0..4 domains.
type xyzFixture struct {
	schema  *program.Schema
	x, y, z program.VarID
	neq     *program.Predicate // x != y
	leq     *program.Predicate // x <= z
}

func newXYZ(t *testing.T) *xyzFixture {
	t.Helper()
	s := program.NewSchema()
	f := &xyzFixture{schema: s}
	f.x = s.MustDeclare("x", program.IntRange(0, 4))
	f.y = s.MustDeclare("y", program.IntRange(0, 4))
	f.z = s.MustDeclare("z", program.IntRange(0, 4))
	f.neq = program.NewPredicate("x != y", []program.VarID{f.x, f.y},
		func(st *program.State) bool { return st.Get(f.x) != st.Get(f.y) })
	f.leq = program.NewPredicate("x <= z", []program.VarID{f.x, f.z},
		func(st *program.State) bool { return st.Get(f.x) <= st.Get(f.z) })
	return f
}

// variantB returns the paper's preferred convergence actions: change y if
// x = y; change z to at least x if x exceeds z. Its constraint graph is the
// out-tree printed in Section 4.
func (f *xyzFixture) variantB() []*Constraint {
	fixY := program.NewAction("fix-y", program.Convergence,
		[]program.VarID{f.x, f.y}, []program.VarID{f.y},
		func(st *program.State) bool { return st.Get(f.x) == st.Get(f.y) },
		func(st *program.State) { st.Set(f.y, (st.Get(f.y)+1)%5) })
	fixZ := program.NewAction("fix-z", program.Convergence,
		[]program.VarID{f.x, f.z}, []program.VarID{f.z},
		func(st *program.State) bool { return st.Get(f.x) > st.Get(f.z) },
		func(st *program.State) { st.Set(f.z, st.Get(f.x)) })
	return []*Constraint{
		{Pred: f.neq, Action: fixY},
		{Pred: f.leq, Action: fixZ},
	}
}

// variantA returns the problematic design from Section 6: both convergence
// actions write x, so their edges share a target node.
func (f *xyzFixture) variantA() []*Constraint {
	fixX1 := program.NewAction("fix-x-neq", program.Convergence,
		[]program.VarID{f.x, f.y}, []program.VarID{f.x},
		func(st *program.State) bool { return st.Get(f.x) == st.Get(f.y) },
		func(st *program.State) { st.Set(f.x, (st.Get(f.x)+1)%5) })
	fixX2 := program.NewAction("fix-x-leq", program.Convergence,
		[]program.VarID{f.x, f.z}, []program.VarID{f.x},
		func(st *program.State) bool { return st.Get(f.x) > st.Get(f.z) },
		func(st *program.State) { st.Set(f.x, st.Get(f.z)) })
	return []*Constraint{
		{Pred: f.neq, Action: fixX1},
		{Pred: f.leq, Action: fixX2},
	}
}

func TestBuildGraphPaperExample(t *testing.T) {
	f := newXYZ(t)
	cg, err := BuildGraph(f.variantB())
	if err != nil {
		t.Fatalf("BuildGraph: %v", err)
	}
	// Paper Section 4 figure: nodes {x}, {y}, {z}; edges x->y (x!=y) and
	// x->z (x<=z); an out-tree rooted at {x}.
	if len(cg.Nodes) != 3 {
		t.Fatalf("got %d nodes, want 3: %v", len(cg.Nodes), cg.Nodes)
	}
	root, ok := cg.IsOutTree()
	if !ok {
		t.Fatal("paper graph not recognized as out-tree")
	}
	if len(cg.Nodes[root]) != 1 || cg.Nodes[root][0] != f.x {
		t.Errorf("root label = %v, want {x}", cg.Nodes[root])
	}
	if cg.G.M() != 2 {
		t.Errorf("got %d edges, want 2", cg.G.M())
	}
	str := cg.String(f.schema)
	for _, want := range []string{"{x} -> {y}", "{x} -> {z}", "x != y", "x <= z"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() missing %q:\n%s", want, str)
		}
	}
}

func TestBuildGraphSharedTarget(t *testing.T) {
	f := newXYZ(t)
	cg, err := BuildGraph(f.variantA())
	if err != nil {
		t.Fatalf("BuildGraph: %v", err)
	}
	// Both actions write x: edges y->x and z->x. Not an out-tree
	// (x has indegree 2), but still self-looping (acyclic).
	if _, ok := cg.IsOutTree(); ok {
		t.Error("shared-target graph recognized as out-tree")
	}
	if !cg.IsSelfLooping() {
		t.Error("shared-target graph not self-looping")
	}
	xNode := cg.NodeOf[f.x]
	into := cg.EdgesInto(xNode)
	if len(into) != 2 {
		t.Errorf("EdgesInto(x) = %d constraints, want 2", len(into))
	}
}

func TestBuildGraphRanks(t *testing.T) {
	f := newXYZ(t)
	cg, err := BuildGraph(f.variantB())
	if err != nil {
		t.Fatalf("BuildGraph: %v", err)
	}
	ranks, ok := cg.Ranks()
	if !ok {
		t.Fatal("Ranks failed")
	}
	if ranks[cg.NodeOf[f.x]] != 1 {
		t.Errorf("rank of {x} = %d, want 1", ranks[cg.NodeOf[f.x]])
	}
	if ranks[cg.NodeOf[f.y]] != 2 || ranks[cg.NodeOf[f.z]] != 2 {
		t.Errorf("ranks of {y},{z} = %d,%d; want 2,2",
			ranks[cg.NodeOf[f.y]], ranks[cg.NodeOf[f.z]])
	}
}

func TestBuildGraphErrors(t *testing.T) {
	f := newXYZ(t)
	t.Run("empty", func(t *testing.T) {
		if _, err := BuildGraph(nil); err == nil {
			t.Error("BuildGraph(nil) succeeded")
		}
	})
	t.Run("no writes", func(t *testing.T) {
		c := &Constraint{Pred: f.neq, Action: program.NewAction(
			"noop", program.Convergence, []program.VarID{f.x}, nil,
			func(*program.State) bool { return false }, func(*program.State) {})}
		if _, err := BuildGraph([]*Constraint{c}); err == nil {
			t.Error("BuildGraph with write-free action succeeded")
		}
	})
	t.Run("nil action", func(t *testing.T) {
		if _, err := BuildGraph([]*Constraint{{Pred: f.neq}}); err == nil {
			t.Error("BuildGraph with nil action succeeded")
		}
	})
}

func TestBuildGraphMergesWriteSets(t *testing.T) {
	// An action writing two variables forces them into one node
	// (paper: "all variables written in ac are in the label of w").
	s := program.NewSchema()
	a := s.MustDeclare("a", program.Bool())
	b := s.MustDeclare("b", program.Bool())
	c := s.MustDeclare("c", program.Bool())
	pred := program.NewPredicate("a=b", []program.VarID{a, b},
		func(st *program.State) bool { return st.Get(a) == st.Get(b) })
	act := program.NewAction("sync", program.Convergence,
		[]program.VarID{a, b, c}, []program.VarID{a, b},
		func(st *program.State) bool { return st.Get(a) != st.Get(b) },
		func(st *program.State) { st.Set(b, st.Get(a)) })
	cg, err := BuildGraph([]*Constraint{{Pred: pred, Action: act}})
	if err != nil {
		t.Fatalf("BuildGraph: %v", err)
	}
	if cg.NodeOf[a] != cg.NodeOf[b] {
		t.Error("written variables a, b not merged into one node")
	}
	if cg.NodeOf[c] == cg.NodeOf[a] {
		t.Error("read-only variable c merged into the write node")
	}
	e := cg.G.Edge(0)
	if e.From != cg.NodeOf[c] || e.To != cg.NodeOf[a] {
		t.Errorf("edge = %+v, want {c} -> {a,b}", e)
	}
}

func TestBuildGraphSelfLoopWhenReadsWithinTarget(t *testing.T) {
	// An action that reads only what it writes yields a self-loop.
	s := program.NewSchema()
	a := s.MustDeclare("a", program.IntRange(0, 3))
	pred := program.NewPredicate("a=0", []program.VarID{a},
		func(st *program.State) bool { return st.Get(a) == 0 })
	act := program.NewAction("reset", program.Convergence,
		[]program.VarID{a}, []program.VarID{a},
		func(st *program.State) bool { return st.Get(a) != 0 },
		func(st *program.State) { st.Set(a, 0) })
	cg, err := BuildGraph([]*Constraint{{Pred: pred, Action: act}})
	if err != nil {
		t.Fatalf("BuildGraph: %v", err)
	}
	if cg.G.M() != 1 || cg.G.Edge(0).From != cg.G.Edge(0).To {
		t.Errorf("expected a single self-loop, got %+v", cg.G.Edges())
	}
	if !cg.IsSelfLooping() {
		t.Error("self-loop graph not self-looping")
	}
	if _, ok := cg.IsOutTree(); ok {
		t.Error("self-loop recognized as out-tree")
	}
}

func TestSetBasics(t *testing.T) {
	f := newXYZ(t)
	set := NewSet(f.variantB()...)
	if set.Len() != 2 {
		t.Fatalf("Len = %d, want 2", set.Len())
	}
	if err := set.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	st := f.schema.NewState() // x=y=z=0: x!=y violated, x<=z holds
	if got := set.ViolatedCount(st); got != 1 {
		t.Errorf("ViolatedCount = %d, want 1", got)
	}
	violated := set.Violated(st)
	if len(violated) != 1 || violated[0].Name() != "x != y" {
		t.Errorf("Violated = %v", violated)
	}

	st.Set(f.y, 1) // S holds
	S := set.Conjunction("S")
	if !S.Holds(st) {
		t.Error("S fails where both constraints hold")
	}
	if set.ViolatedCount(st) != 0 {
		t.Error("ViolatedCount != 0 where S holds")
	}

	acts := set.ConvergenceActions()
	if len(acts) != 2 || acts[0].Name != "fix-y" {
		t.Errorf("ConvergenceActions = %v", acts)
	}
}

func TestSetLayers(t *testing.T) {
	f := newXYZ(t)
	cs := f.variantB()
	cs[0].Layer = 0
	cs[1].Layer = 2
	set := NewSet(cs...)
	layers := set.Layers()
	if len(layers) != 3 {
		t.Fatalf("got %d layers, want 3", len(layers))
	}
	if len(layers[0]) != 1 || len(layers[1]) != 0 || len(layers[2]) != 1 {
		t.Errorf("layer sizes = %d,%d,%d; want 1,0,1",
			len(layers[0]), len(layers[1]), len(layers[2]))
	}
}

func TestSetValidateErrors(t *testing.T) {
	f := newXYZ(t)
	if err := NewSet().Validate(); err == nil {
		t.Error("empty set passed Validate")
	}

	cs := f.variantB()
	cs[0].Pred = nil
	if err := NewSet(cs...).Validate(); err == nil {
		t.Error("nil predicate passed Validate")
	}

	cs = f.variantB()
	cs[0].Action.Kind = program.Closure
	if err := NewSet(cs...).Validate(); err == nil {
		t.Error("closure-kind action passed Validate")
	}

	cs = f.variantB()
	cs[1].Layer = -1
	if err := NewSet(cs...).Validate(); err == nil {
		t.Error("negative layer passed Validate")
	}
}

func TestConstraintName(t *testing.T) {
	f := newXYZ(t)
	c := &Constraint{Pred: f.neq}
	if c.Name() != "x != y" {
		t.Errorf("Name = %q", c.Name())
	}
	unnamed := &Constraint{}
	if unnamed.Name() != "<unnamed>" {
		t.Errorf("unnamed Name = %q", unnamed.Name())
	}
}
