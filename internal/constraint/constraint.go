// Package constraint implements the paper's central modelling device
// (Sections 3 and 4): the invariant S is partitioned into a set of
// constraints that can each be independently checked and established by a
// convergence action, and the interference structure among the convergence
// actions is captured by a constraint graph.
//
// A constraint graph (Section 4) is a directed graph in which
//
//	(i)  each node is labeled with a set of variables; labels are mutually
//	     exclusive, and
//	(ii) each edge is labeled with a convergence action ac from node v to
//	     node w such that all variables written by ac are in the label of w
//	     and all variables read by ac are in the union of the labels of v
//	     and w.
//
// Since there is a bijection between constraints and convergence actions,
// the edge is equally labeled by the constraint.
package constraint

import (
	"fmt"
	"strings"

	"nonmask/internal/graph"
	"nonmask/internal/program"
)

// Constraint pairs one conjunct of the invariant with the convergence
// action that independently checks and establishes it (paper Section 3:
// "for each constraint c in S we design a convergence action of the form
// ¬c -> establish c while preserving T").
type Constraint struct {
	// Pred is the constraint predicate (a conjunct of S).
	Pred *program.Predicate
	// Action is the convergence action establishing Pred. Its guard must
	// imply ¬Pred; Set.Validate checks this on sampled states.
	Action *program.Action
	// Layer is the hierarchical partition index used by Theorem 3.
	// Layer 0 is the lowest layer; single-layer designs use 0 throughout.
	Layer int
}

// LayerTarget is the predicate a layer's constraints exist to establish.
// Usually it is simply the conjunction of the layer's constraints, but the
// paper's token ring (Section 7.1) shows the general case: the layer-2
// helper constraints "x.j = x.(j+1)" strictly strengthen the actual
// S-conjunct "x.0 = x.N or x.0 = x.N + 1" ("we propose to satisfy the
// second conjunct by satisfying the constraints x.j = x.(j+1)"). The
// preservation obligations of Theorem 3 then apply only while the target is
// not yet established — once it is, closure of S takes over (the paper:
// "the first closure action is not enabled when the first conjunct holds
// but the second does not").
type LayerTarget struct {
	// Layer is the partition index the target belongs to.
	Layer int
	// Target is the S-conjunct the layer establishes. The conjunction of
	// the layer's constraints must imply it.
	Target *program.Predicate
}

// Name returns the constraint's display name (the predicate's name).
func (c *Constraint) Name() string {
	if c.Pred == nil {
		return "<unnamed>"
	}
	return c.Pred.Name
}

// Set is an ordered collection of constraints, typically all conjuncts of
// one program invariant.
type Set struct {
	Constraints []*Constraint
	// Targets holds explicit layer targets; layers without an entry use
	// the conjunction of their constraints.
	Targets []*LayerTarget
}

// NewSet returns a set containing the given constraints.
func NewSet(cs ...*Constraint) *Set {
	return &Set{Constraints: cs}
}

// SetTarget declares an explicit target for a layer, replacing any earlier
// declaration for the same layer. It returns the set for chaining.
func (s *Set) SetTarget(layer int, target *program.Predicate) *Set {
	for _, t := range s.Targets {
		if t.Layer == layer {
			t.Target = target
			return s
		}
	}
	s.Targets = append(s.Targets, &LayerTarget{Layer: layer, Target: target})
	return s
}

// Target returns layer k's target: the explicit one if declared, otherwise
// the conjunction of the layer's constraints.
func (s *Set) Target(k int) *program.Predicate {
	for _, t := range s.Targets {
		if t.Layer == k {
			return t.Target
		}
	}
	var preds []*program.Predicate
	for _, c := range s.Constraints {
		if c.Layer == k {
			preds = append(preds, c.Pred)
		}
	}
	return program.And(fmt.Sprintf("target[layer %d]", k), preds...)
}

// TargetConjunction returns the conjunction of every layer's target — the
// constraint-derived part of the invariant S. For sets without explicit
// targets it equals Conjunction.
func (s *Set) TargetConjunction(name string) *program.Predicate {
	layers := s.Layers()
	preds := make([]*program.Predicate, len(layers))
	for k := range layers {
		preds[k] = s.Target(k)
	}
	return program.And(name, preds...)
}

// Add appends a constraint and returns the set for chaining.
func (s *Set) Add(c *Constraint) *Set {
	s.Constraints = append(s.Constraints, c)
	return s
}

// Len returns the number of constraints.
func (s *Set) Len() int { return len(s.Constraints) }

// Layers returns the constraints grouped by layer, indexed 0..maxLayer.
// Empty intermediate layers are preserved as empty slices so that layer
// numbers used by Theorem 3 stay aligned.
func (s *Set) Layers() [][]*Constraint {
	max := -1
	for _, c := range s.Constraints {
		if c.Layer > max {
			max = c.Layer
		}
	}
	out := make([][]*Constraint, max+1)
	for _, c := range s.Constraints {
		out[c.Layer] = append(out[c.Layer], c)
	}
	return out
}

// Conjunction returns the conjunction of all constraint predicates.
// Per Section 3, the invariant S is this conjunction together with the
// fault-span T.
func (s *Set) Conjunction(name string) *program.Predicate {
	preds := make([]*program.Predicate, len(s.Constraints))
	for i, c := range s.Constraints {
		preds[i] = c.Pred
	}
	return program.And(name, preds...)
}

// ViolatedCount returns how many constraints do not hold at state st. It is
// the natural "distance from S" observable used by simulation metrics.
func (s *Set) ViolatedCount(st *program.State) int {
	n := 0
	for _, c := range s.Constraints {
		if !c.Pred.Holds(st) {
			n++
		}
	}
	return n
}

// Violated returns the constraints that do not hold at st.
func (s *Set) Violated(st *program.State) []*Constraint {
	var out []*Constraint
	for _, c := range s.Constraints {
		if !c.Pred.Holds(st) {
			out = append(out, c)
		}
	}
	return out
}

// ConvergenceActions returns the convergence actions of all constraints in
// set order.
func (s *Set) ConvergenceActions() []*program.Action {
	out := make([]*program.Action, len(s.Constraints))
	for i, c := range s.Constraints {
		out[i] = c.Action
	}
	return out
}

// Validate performs structural checks on the set: every constraint has a
// predicate and a convergence action of kind Convergence, and layer numbers
// are non-negative.
func (s *Set) Validate() error {
	if len(s.Constraints) == 0 {
		return fmt.Errorf("constraint: empty set")
	}
	for i, c := range s.Constraints {
		if c.Pred == nil || c.Pred.Eval == nil {
			return fmt.Errorf("constraint %d: missing predicate", i)
		}
		if c.Action == nil {
			return fmt.Errorf("constraint %q: missing convergence action", c.Name())
		}
		if c.Action.Kind != program.Convergence {
			return fmt.Errorf("constraint %q: action %q has kind %s, want convergence",
				c.Name(), c.Action.Name, c.Action.Kind)
		}
		if c.Layer < 0 {
			return fmt.Errorf("constraint %q: negative layer %d", c.Name(), c.Layer)
		}
	}
	return nil
}

// Graph is a constraint graph per Section 4, built over a subset of the
// constraints of a Set (Section 7 refines graphs to subsets of convergence
// actions, one per layer).
type Graph struct {
	// Nodes holds the variable label of each graph node, mutually exclusive
	// and in canonical order.
	Nodes [][]program.VarID
	// NodeOf maps each variable that appears in some label to its node.
	NodeOf map[program.VarID]int
	// G is the underlying directed multigraph. Edge i's label is the index
	// of the constraint (within the slice passed to BuildGraph) it
	// represents.
	G *graph.Graph
	// Constraints are the constraints the edges represent, in edge order.
	Constraints []*Constraint
}

// BuildGraph constructs the canonical constraint graph of the given
// constraints' convergence actions.
//
// Construction: the write-set of each action must lie within a single node
// label, so all variables written by one action are merged into one node
// (union-find). Any variables an action reads beyond its target node must
// lie within a single source node, so they are merged likewise. Variables
// never mentioned by any convergence action do not appear in the graph, as
// in the paper ("each node is labeled with a set of variables that appear
// in actions in q").
//
// The result is validated against the Section 4 definition; if some action
// reads variables from more than one node besides its target, construction
// fails with a descriptive error.
func BuildGraph(cs []*Constraint) (*Graph, error) {
	if len(cs) == 0 {
		return nil, fmt.Errorf("constraint: cannot build graph of zero constraints")
	}
	// Collect the variables appearing in the convergence actions.
	uf := newUnionFind()
	for _, c := range cs {
		if c.Action == nil {
			return nil, fmt.Errorf("constraint %q: missing convergence action", c.Name())
		}
		if len(c.Action.Writes) == 0 {
			return nil, fmt.Errorf("constraint %q: convergence action %q writes nothing",
				c.Name(), c.Action.Name)
		}
		for _, v := range c.Action.Reads {
			uf.add(v)
		}
		// Merge all writes of one action into one node.
		w0 := c.Action.Writes[0]
		uf.add(w0)
		for _, w := range c.Action.Writes[1:] {
			uf.add(w)
			uf.union(w0, w)
		}
	}
	// Merge the non-target reads of each action into one source node.
	for _, c := range cs {
		target := uf.find(c.Action.Writes[0])
		var src program.VarID = -1
		for _, r := range c.Action.Reads {
			if uf.find(r) == target {
				continue
			}
			if src < 0 {
				src = r
			} else {
				uf.union(src, r)
			}
		}
	}
	// A merge may have joined a source group with a target group of another
	// action; recompute roots and verify the defining conditions below.
	nodes, nodeOf := uf.groups()
	g := graph.New(len(nodes))
	cg := &Graph{Nodes: nodes, NodeOf: nodeOf, G: g, Constraints: cs}
	for i, c := range cs {
		target := nodeOf[c.Action.Writes[0]]
		for _, w := range c.Action.Writes {
			if nodeOf[w] != target {
				// Cannot happen: writes were unioned. Defensive.
				return nil, fmt.Errorf("constraint %q: writes span nodes", c.Name())
			}
		}
		src := target
		for _, r := range c.Action.Reads {
			n := nodeOf[r]
			if n == target {
				continue
			}
			if src == target {
				src = n
			} else if n != src {
				return nil, fmt.Errorf(
					"constraint %q: action %q reads variables from more than two nodes (%s)",
					c.Name(), c.Action.Name, cg.describeNodes(src, n, target))
			}
		}
		g.AddEdge(src, target, i)
	}
	return cg, nil
}

func (cg *Graph) describeNodes(ids ...int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("node%d", id)
	}
	return strings.Join(parts, ", ")
}

// NodeLabel renders node n's variable label using the schema's names.
func (cg *Graph) NodeLabel(schema *program.Schema, n int) string {
	names := make([]string, len(cg.Nodes[n]))
	for i, v := range cg.Nodes[n] {
		names[i] = schema.Spec(v).Name
	}
	return "{" + strings.Join(names, ", ") + "}"
}

// IsOutTree reports whether the constraint graph is an out-tree
// (Theorem 1's shape condition) and returns the root node when it is.
func (cg *Graph) IsOutTree() (root int, ok bool) { return cg.G.IsOutTree() }

// IsSelfLooping reports whether every cycle of the constraint graph is a
// self-loop (Theorem 2's shape condition).
func (cg *Graph) IsSelfLooping() bool { return cg.G.IsSelfLooping() }

// Ranks returns the node ranks used by the convergence proofs.
func (cg *Graph) Ranks() ([]int, bool) { return cg.G.Ranks() }

// EdgesInto returns the constraints whose edges target node n, in edge
// order — the actions that must be linearly ordered by Theorem 2's third
// antecedent.
func (cg *Graph) EdgesInto(n int) []*Constraint {
	var out []*Constraint
	for _, ei := range cg.G.InEdges(n) {
		out = append(out, cg.Constraints[cg.G.Edge(ei).Label])
	}
	return out
}

// String renders the graph as "node{vars} -> node{vars} [constraint]" lines
// for CLI display, given the schema for variable names.
func (cg *Graph) String(schema *program.Schema) string {
	var b strings.Builder
	for _, e := range cg.G.Edges() {
		fmt.Fprintf(&b, "%s -> %s  [%s]\n",
			cg.NodeLabel(schema, e.From), cg.NodeLabel(schema, e.To),
			cg.Constraints[e.Label].Name())
	}
	return b.String()
}

// unionFind is a small union-find over VarIDs, insertion-ordered so graph
// node numbering is deterministic.
type unionFind struct {
	parent map[program.VarID]program.VarID
	order  []program.VarID
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[program.VarID]program.VarID)}
}

func (u *unionFind) add(v program.VarID) {
	if _, ok := u.parent[v]; !ok {
		u.parent[v] = v
		u.order = append(u.order, v)
	}
}

func (u *unionFind) find(v program.VarID) program.VarID {
	for u.parent[v] != v {
		u.parent[v] = u.parent[u.parent[v]]
		v = u.parent[v]
	}
	return v
}

func (u *unionFind) union(a, b program.VarID) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[rb] = ra
	}
}

// groups returns the variable groups in first-insertion order along with a
// variable->group index map.
func (u *unionFind) groups() ([][]program.VarID, map[program.VarID]int) {
	rootIndex := make(map[program.VarID]int)
	var nodes [][]program.VarID
	nodeOf := make(map[program.VarID]int, len(u.order))
	for _, v := range u.order {
		r := u.find(v)
		idx, ok := rootIndex[r]
		if !ok {
			idx = len(nodes)
			rootIndex[r] = idx
			nodes = append(nodes, nil)
		}
		nodes[idx] = append(nodes[idx], v)
		nodeOf[v] = idx
	}
	for i := range nodes {
		nodes[i] = program.SortVarIDs(nodes[i])
	}
	return nodes, nodeOf
}
