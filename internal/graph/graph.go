// Package graph provides the directed-multigraph algorithms underlying
// constraint graphs (paper Section 4): out-tree recognition (Theorem 1),
// self-looping recognition (Theorem 2), node ranks (the induction metric in
// the proofs of Theorems 1 and 2), strongly connected components (cycle
// analysis for Theorem 3), topological sorting, and DAG longest paths
// (worst-case convergence-step bounds).
//
// Nodes are dense integers 0..N-1; edges carry an integer label chosen by
// the caller (constraint graphs label edges with convergence actions).
package graph

import "fmt"

// Edge is a labeled directed edge.
type Edge struct {
	From, To int
	// Label identifies the edge for the caller (e.g. a constraint index).
	Label int
}

// Graph is a directed multigraph over nodes 0..N-1. The zero Graph has no
// nodes; construct with New.
type Graph struct {
	n     int
	edges []Edge
	// out[v] and in[v] hold indices into edges.
	out, in [][]int
}

// New returns a graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{n: n, out: make([][]int, n), in: make([][]int, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// AddEdge adds a labeled edge from -> to. Parallel edges and self-loops are
// permitted (a constraint graph may have several constraints targeting one
// node). It returns the edge's index.
func (g *Graph) AddEdge(from, to, label int) int {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", from, to, g.n))
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{From: from, To: to, Label: label})
	g.out[from] = append(g.out[from], idx)
	g.in[to] = append(g.in[to], idx)
	return idx
}

// Edge returns the edge with the given index.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// Edges returns a copy of all edges in insertion order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// OutEdges returns the indices of edges leaving v.
func (g *Graph) OutEdges(v int) []int { return g.out[v] }

// InEdges returns the indices of edges entering v.
func (g *Graph) InEdges(v int) []int { return g.in[v] }

// InDegree returns the number of edges entering v, counting self-loops.
func (g *Graph) InDegree(v int) int { return len(g.in[v]) }

// OutDegree returns the number of edges leaving v, counting self-loops.
func (g *Graph) OutDegree(v int) int { return len(g.out[v]) }

// HasSelfLoop reports whether v carries a self-loop edge.
func (g *Graph) HasSelfLoop(v int) bool {
	for _, ei := range g.out[v] {
		if g.edges[ei].To == v {
			return true
		}
	}
	return false
}

// WeaklyConnected reports whether the graph is weakly connected (connected
// when edge directions are ignored). The empty graph and the one-node graph
// are weakly connected.
func (g *Graph) WeaklyConnected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visit := func(w int) {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
		for _, ei := range g.out[v] {
			visit(g.edges[ei].To)
		}
		for _, ei := range g.in[v] {
			visit(g.edges[ei].From)
		}
	}
	return count == g.n
}

// IsOutTree reports whether the graph is an out-tree in the paper's sense
// (Section 5): "a weakly connected directed graph one of whose nodes has
// indegree zero and the remaining of whose nodes have indegree one".
// When it is, the root node is returned.
func (g *Graph) IsOutTree() (root int, ok bool) {
	if g.n == 0 {
		return 0, false
	}
	root = -1
	for v := 0; v < g.n; v++ {
		switch g.InDegree(v) {
		case 0:
			if root >= 0 {
				return 0, false // two roots
			}
			root = v
		case 1:
			// fine
		default:
			return 0, false
		}
	}
	if root < 0 {
		return 0, false // every node has indegree >= 1: a cycle exists
	}
	if !g.WeaklyConnected() {
		return 0, false
	}
	return root, true
}

// IsSelfLooping reports whether every cycle of the graph is a self-loop
// (paper Section 6): the graph with self-loops removed is acyclic.
func (g *Graph) IsSelfLooping() bool {
	_, ok := g.TopoOrder(true)
	return ok
}

// TopoOrder returns a topological order of the nodes. If ignoreSelfLoops is
// true, self-loop edges are disregarded. The boolean result reports whether
// an order exists (i.e. the considered graph is acyclic).
func (g *Graph) TopoOrder(ignoreSelfLoops bool) ([]int, bool) {
	indeg := make([]int, g.n)
	for _, e := range g.edges {
		if ignoreSelfLoops && e.From == e.To {
			continue
		}
		indeg[e.To]++
	}
	queue := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, g.n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, ei := range g.out[v] {
			e := g.edges[ei]
			if ignoreSelfLoops && e.From == e.To {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(order) != g.n {
		return nil, false
	}
	return order, true
}

// Ranks computes the rank of each node as defined in the proof of
// Theorem 1: "the rank of node j is 1 + max{rank of node k | there is an
// edge from k to j and k != j}", with rank 1 for nodes with no incoming
// edges from other nodes. Ranks exist iff the graph is self-looping; the
// boolean result reports that.
func (g *Graph) Ranks() ([]int, bool) {
	order, ok := g.TopoOrder(true)
	if !ok {
		return nil, false
	}
	rank := make([]int, g.n)
	for _, v := range order {
		rank[v] = 1
		for _, ei := range g.in[v] {
			e := g.edges[ei]
			if e.From == e.To {
				continue
			}
			if r := rank[e.From] + 1; r > rank[v] {
				rank[v] = r
			}
		}
	}
	return rank, true
}

// SCCs returns the strongly connected components of the graph in reverse
// topological order (Tarjan's algorithm, iterative). Each component is a
// list of node IDs.
func (g *Graph) SCCs() [][]int {
	const unvisited = -1
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		comps   [][]int
		stack   []int
		counter int
	)
	type frame struct {
		v  int
		ei int // next out-edge position to consider
	}
	for start := 0; start < g.n; start++ {
		if index[start] != unvisited {
			continue
		}
		frames := []frame{{v: start}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(g.out[f.v]) {
				e := g.edges[g.out[f.v][f.ei]]
				f.ei++
				w := e.To
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// All edges of f.v processed: pop frame.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := &frames[len(frames)-1]; low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// LongestPath returns, for each node, the length (in edges) of the longest
// directed path ending at that node, and the overall maximum. It requires
// the graph to be acyclic including self-loops; the boolean result reports
// whether it is.
func (g *Graph) LongestPath() (dist []int, max int, ok bool) {
	order, acyclic := g.TopoOrder(false)
	if !acyclic {
		return nil, 0, false
	}
	dist = make([]int, g.n)
	for _, v := range order {
		for _, ei := range g.in[v] {
			e := g.edges[ei]
			if d := dist[e.From] + 1; d > dist[v] {
				dist[v] = d
			}
		}
		if dist[v] > max {
			max = dist[v]
		}
	}
	return dist, max, true
}

// FindCycle returns a directed cycle as a list of edge indices, or nil if
// the graph is acyclic (self-loops count as cycles).
func (g *Graph) FindCycle() []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, g.n)
	parentEdge := make([]int, g.n)
	for i := range parentEdge {
		parentEdge[i] = -1
	}
	type frame struct {
		v  int
		ei int
	}
	for start := 0; start < g.n; start++ {
		if color[start] != white {
			continue
		}
		frames := []frame{{v: start}}
		color[start] = gray
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(g.out[f.v]) {
				eidx := g.out[f.v][f.ei]
				e := g.edges[eidx]
				f.ei++
				if e.To == f.v {
					return []int{eidx} // self-loop
				}
				switch color[e.To] {
				case white:
					color[e.To] = gray
					parentEdge[e.To] = eidx
					frames = append(frames, frame{v: e.To})
				case gray:
					// Back edge: reconstruct cycle e.To -> ... -> f.v -> e.To.
					cycle := []int{eidx}
					for v := f.v; v != e.To; {
						pe := parentEdge[v]
						cycle = append(cycle, pe)
						v = g.edges[pe].From
					}
					// Reverse into forward order.
					for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
						cycle[i], cycle[j] = cycle[j], cycle[i]
					}
					return cycle
				}
				continue
			}
			color[f.v] = black
			frames = frames[:len(frames)-1]
		}
	}
	return nil
}
