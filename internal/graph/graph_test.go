package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// build constructs a graph from (from,to) pairs; edge i gets label i.
func build(n int, edges ...[2]int) *Graph {
	g := New(n)
	for i, e := range edges {
		g.AddEdge(e[0], e[1], i)
	}
	return g
}

func TestBasicAccessors(t *testing.T) {
	g := build(3, [2]int{0, 1}, [2]int{0, 2}, [2]int{1, 1})
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("N,M = %d,%d; want 3,3", g.N(), g.M())
	}
	if g.OutDegree(0) != 2 || g.InDegree(1) != 2 || g.InDegree(0) != 0 {
		t.Errorf("degrees wrong: out(0)=%d in(1)=%d in(0)=%d",
			g.OutDegree(0), g.InDegree(1), g.InDegree(0))
	}
	if !g.HasSelfLoop(1) || g.HasSelfLoop(0) {
		t.Error("self-loop detection wrong")
	}
	e := g.Edge(1)
	if e.From != 0 || e.To != 2 || e.Label != 1 {
		t.Errorf("Edge(1) = %+v", e)
	}
	if len(g.Edges()) != 3 {
		t.Errorf("Edges() len = %d", len(g.Edges()))
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Error("AddEdge out of range did not panic")
		}
	}()
	g.AddEdge(0, 2, 0)
}

func TestWeaklyConnected(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"empty", New(0), true},
		{"single", New(1), true},
		{"two isolated", New(2), false},
		{"edge joins", build(2, [2]int{0, 1}), true},
		{"direction ignored", build(3, [2]int{1, 0}, [2]int{1, 2}), true},
		{"partial", build(4, [2]int{0, 1}, [2]int{2, 3}), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.WeaklyConnected(); got != tt.want {
				t.Errorf("WeaklyConnected() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIsOutTree(t *testing.T) {
	tests := []struct {
		name     string
		g        *Graph
		wantRoot int
		wantOK   bool
	}{
		{"empty", New(0), 0, false},
		{"single node", New(1), 0, true},
		{"paper xyz graph", build(3, [2]int{0, 1}, [2]int{0, 2}), 0, true},
		{"chain", build(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}), 0, true},
		{"binary tree", build(7, [2]int{0, 1}, [2]int{0, 2}, [2]int{1, 3}, [2]int{1, 4}, [2]int{2, 5}, [2]int{2, 6}), 0, true},
		{"root not node 0", build(3, [2]int{2, 0}, [2]int{2, 1}), 2, true},
		{"two roots / forest", build(4, [2]int{0, 1}, [2]int{2, 3}), 0, false},
		{"cycle", build(3, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 0}), 0, false},
		{"indegree two", build(3, [2]int{0, 2}, [2]int{1, 2}), 0, false},
		{"self-loop breaks it", build(2, [2]int{0, 1}, [2]int{1, 1}), 0, false},
		{"disconnected with root", build(3, [2]int{0, 1}), 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			root, ok := tt.g.IsOutTree()
			if ok != tt.wantOK {
				t.Fatalf("IsOutTree() ok = %v, want %v", ok, tt.wantOK)
			}
			if ok && root != tt.wantRoot {
				t.Errorf("root = %d, want %d", root, tt.wantRoot)
			}
		})
	}
}

func TestIsSelfLooping(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"empty", New(0), true},
		{"acyclic", build(3, [2]int{0, 1}, [2]int{1, 2}), true},
		{"self-loops only", build(3, [2]int{0, 1}, [2]int{1, 1}, [2]int{2, 2}), true},
		{"2-cycle", build(2, [2]int{0, 1}, [2]int{1, 0}), false},
		{"3-cycle", build(3, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 0}), false},
		{"diamond dag", build(4, [2]int{0, 1}, [2]int{0, 2}, [2]int{1, 3}, [2]int{2, 3}), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.IsSelfLooping(); got != tt.want {
				t.Errorf("IsSelfLooping() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRanks(t *testing.T) {
	// Paper proof of Theorem 1: rank 1 for sources, 1+max over non-self preds.
	g := build(5,
		[2]int{0, 1}, // 0 -> 1
		[2]int{0, 2},
		[2]int{1, 3},
		[2]int{2, 3}, // 3 has preds of ranks 2 and 2
		[2]int{3, 4},
		[2]int{4, 4}, // self-loop ignored for ranks
	)
	ranks, ok := g.Ranks()
	if !ok {
		t.Fatal("Ranks() failed on self-looping graph")
	}
	want := []int{1, 2, 2, 3, 4}
	for v, r := range ranks {
		if r != want[v] {
			t.Errorf("rank[%d] = %d, want %d", v, r, want[v])
		}
	}

	if _, ok := build(2, [2]int{0, 1}, [2]int{1, 0}).Ranks(); ok {
		t.Error("Ranks() succeeded on a cyclic graph")
	}
}

func TestTopoOrder(t *testing.T) {
	g := build(4, [2]int{0, 1}, [2]int{0, 2}, [2]int{1, 3}, [2]int{2, 3})
	order, ok := g.TopoOrder(false)
	if !ok {
		t.Fatal("TopoOrder failed on DAG")
	}
	pos := make([]int, 4)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge (%d,%d) violates topological order %v", e.From, e.To, order)
		}
	}
	// Self-loop: fails unless ignored.
	g2 := build(2, [2]int{0, 1}, [2]int{1, 1})
	if _, ok := g2.TopoOrder(false); ok {
		t.Error("TopoOrder(false) succeeded with self-loop")
	}
	if _, ok := g2.TopoOrder(true); !ok {
		t.Error("TopoOrder(true) failed with only self-loops")
	}
}

func TestSCCs(t *testing.T) {
	// Two 2-cycles joined by an edge, plus an isolated node.
	g := build(5,
		[2]int{0, 1}, [2]int{1, 0},
		[2]int{1, 2},
		[2]int{2, 3}, [2]int{3, 2},
	)
	comps := g.SCCs()
	if len(comps) != 3 {
		t.Fatalf("got %d SCCs, want 3: %v", len(comps), comps)
	}
	var sizes []int
	for _, c := range comps {
		sizes = append(sizes, len(c))
	}
	sort.Ints(sizes)
	if sizes[0] != 1 || sizes[1] != 2 || sizes[2] != 2 {
		t.Errorf("SCC sizes = %v, want [1 2 2]", sizes)
	}
	// Reverse topological order: {2,3} must come before {0,1}.
	posOf := func(node int) int {
		for i, c := range comps {
			for _, v := range c {
				if v == node {
					return i
				}
			}
		}
		return -1
	}
	if posOf(2) >= posOf(0) {
		t.Errorf("SCC order not reverse-topological: %v", comps)
	}
}

func TestSCCsSingleBigCycle(t *testing.T) {
	n := 50
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, i)
	}
	comps := g.SCCs()
	if len(comps) != 1 || len(comps[0]) != n {
		t.Errorf("ring SCCs = %d comps", len(comps))
	}
}

func TestLongestPath(t *testing.T) {
	g := build(5, [2]int{0, 1}, [2]int{1, 2}, [2]int{0, 3}, [2]int{3, 4}, [2]int{4, 2})
	dist, max, ok := g.LongestPath()
	if !ok {
		t.Fatal("LongestPath failed on DAG")
	}
	if max != 3 {
		t.Errorf("max = %d, want 3 (0->3->4->2)", max)
	}
	if dist[2] != 3 || dist[1] != 1 || dist[0] != 0 {
		t.Errorf("dist = %v", dist)
	}
	if _, _, ok := build(1, [2]int{0, 0}).LongestPath(); ok {
		t.Error("LongestPath succeeded with self-loop")
	}
}

func TestFindCycle(t *testing.T) {
	t.Run("acyclic returns nil", func(t *testing.T) {
		g := build(3, [2]int{0, 1}, [2]int{1, 2})
		if c := g.FindCycle(); c != nil {
			t.Errorf("FindCycle = %v, want nil", c)
		}
	})
	t.Run("self-loop", func(t *testing.T) {
		g := build(2, [2]int{0, 1}, [2]int{1, 1})
		c := g.FindCycle()
		if len(c) != 1 || g.Edge(c[0]).From != 1 || g.Edge(c[0]).To != 1 {
			t.Errorf("FindCycle = %v", c)
		}
	})
	t.Run("proper cycle is closed walk", func(t *testing.T) {
		g := build(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}, [2]int{3, 1})
		c := g.FindCycle()
		if len(c) < 2 {
			t.Fatalf("FindCycle = %v", c)
		}
		for i, ei := range c {
			next := g.Edge(c[(i+1)%len(c)])
			if g.Edge(ei).To != next.From {
				t.Errorf("cycle edges not contiguous: %v", c)
			}
		}
	})
}

// Property: for random graphs, IsSelfLooping agrees with "FindCycle finds
// only self-loops after removing them", and SCC count is consistent with
// TopoOrder success.
func TestRandomGraphConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := New(n)
		m := rng.Intn(2 * n)
		for i := 0; i < m; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), i)
		}
		// (1) TopoOrder(false) succeeds iff FindCycle returns nil.
		_, acyclic := g.TopoOrder(false)
		if acyclic != (g.FindCycle() == nil) {
			return false
		}
		// (2) Acyclic (incl. self-loops) iff every SCC is a singleton
		//     without a self-loop.
		allTrivial := true
		for _, c := range g.SCCs() {
			if len(c) > 1 || g.HasSelfLoop(c[0]) {
				allTrivial = false
			}
		}
		if acyclic != allTrivial {
			return false
		}
		// (3) Ranks exist iff self-looping.
		_, ranksOK := g.Ranks()
		return ranksOK == g.IsSelfLooping()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
