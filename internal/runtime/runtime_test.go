package runtime

import (
	"math/rand"
	"testing"
	"time"

	"nonmask/internal/protocols/diffusing"
)

func TestRingProtocolAdapter(t *testing.T) {
	r := &RingProtocol{N: 3, K: 5}
	if r.Nodes() != 4 {
		t.Errorf("Nodes = %d", r.Nodes())
	}
	if got := r.Neighbors(0); len(got) != 1 || got[0] != 3 {
		t.Errorf("Neighbors(0) = %v", got)
	}
	if got := r.Neighbors(2); len(got) != 1 || got[0] != 1 {
		t.Errorf("Neighbors(2) = %v", got)
	}
	// Step semantics: node 0 advances when equal to predecessor.
	regs := []int32{2}
	cache := map[int][]int32{3: {2}}
	if !r.Step(0, regs, cache) || regs[0] != 3 {
		t.Errorf("advance: regs = %v", regs)
	}
	if r.Step(0, regs, cache) {
		t.Error("node 0 advanced while unequal")
	}
	// Node 2 copies when different.
	regs = []int32{0}
	cache = map[int][]int32{1: {4}}
	if !r.Step(2, regs, cache) || regs[0] != 4 {
		t.Errorf("copy: regs = %v", regs)
	}
	// No cache, no action.
	if r.Step(2, []int32{0}, map[int][]int32{}) {
		t.Error("stepped without cache")
	}
}

func TestRingLegitimate(t *testing.T) {
	r := &RingProtocol{N: 2, K: 4}
	if !r.Legitimate([][]int32{{0}, {0}, {0}}) {
		t.Error("all-zero not legitimate")
	}
	if !r.Legitimate([][]int32{{1}, {0}, {0}}) {
		t.Error("single-step not legitimate")
	}
	if r.Legitimate([][]int32{{0}, {1}, {0}}) {
		t.Error("three-privilege snapshot legitimate")
	}
}

func TestRingRunsFromLegitimate(t *testing.T) {
	net := NewNetwork(&RingProtocol{N: 4, K: 6}, Config{Seed: 1})
	res := net.Run(2 * time.Second)
	if !res.Converged {
		t.Fatalf("legitimate ring did not report convergence (%d updates)", res.Updates)
	}
}

func TestRingStabilizesAfterCorruption(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		net := NewNetwork(&RingProtocol{N: 9, K: 11}, Config{Seed: seed})
		net.Corrupt(10, CorruptRing(11))
		res := net.Run(5 * time.Second)
		if !res.Converged {
			t.Fatalf("seed %d: corrupted ring did not stabilize (%d updates)", seed, res.Updates)
		}
	}
}

func TestRingStabilizesWithLossAndDup(t *testing.T) {
	net := NewNetwork(&RingProtocol{N: 7, K: 9}, Config{
		Seed:            3,
		LossProb:        0.3,
		DupProb:         0.2,
		RetransmitEvery: 200 * time.Microsecond,
	})
	net.Corrupt(8, CorruptRing(9))
	res := net.Run(10 * time.Second)
	if !res.Converged {
		t.Fatalf("lossy ring did not stabilize (%d updates)", res.Updates)
	}
}

func TestTreeProtocolAdapter(t *testing.T) {
	tr := diffusing.Binary(7)
	p := NewTreeProtocol(tr.Parent)
	if p.Nodes() != 7 {
		t.Errorf("Nodes = %d", p.Nodes())
	}
	// Root's neighbors are its children; an inner node sees parent+kids.
	if got := p.Neighbors(0); len(got) != 2 {
		t.Errorf("Neighbors(0) = %v", got)
	}
	if got := p.Neighbors(1); len(got) != 3 {
		t.Errorf("Neighbors(1) = %v", got)
	}
	if got := p.Neighbors(3); len(got) != 1 || got[0] != 1 {
		t.Errorf("Neighbors(3) = %v", got)
	}
	// Root initiates from green.
	regs := []int32{0, 0}
	if !p.Step(0, regs, nil) || regs[regC] != 1 || regs[regSn] != 1 {
		t.Errorf("initiate: regs = %v", regs)
	}
	// Child copies a red parent with differing session.
	regs = []int32{0, 0}
	cache := map[int][]int32{0: {1, 1}}
	if !p.Step(1, regs, cache) || regs[regC] != 1 || regs[regSn] != 1 {
		t.Errorf("propagate: regs = %v", regs)
	}
	// Leaf reflects immediately once red.
	regs = []int32{1, 1}
	cache = map[int][]int32{1: {1, 1}}
	if !p.Step(3, regs, cache) || regs[regC] != 0 {
		t.Errorf("reflect: regs = %v", regs)
	}
}

func TestTreeRunsFaultFree(t *testing.T) {
	tr := diffusing.Binary(7)
	net := NewNetwork(NewTreeProtocol(tr.Parent), Config{Seed: 5})
	res := net.Run(2 * time.Second)
	if !res.Converged {
		t.Fatalf("fault-free tree did not report convergence (%d updates)", res.Updates)
	}
}

func TestTreeStabilizesAfterCorruption(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		tr := diffusing.Random(15, seed)
		net := NewNetwork(NewTreeProtocol(tr.Parent), Config{Seed: seed})
		net.Corrupt(15, CorruptTree())
		res := net.Run(5 * time.Second)
		if !res.Converged {
			t.Fatalf("seed %d: corrupted tree did not stabilize (%d updates)", seed, res.Updates)
		}
	}
}

func TestTreeStabilizesWithLoss(t *testing.T) {
	tr := diffusing.Binary(15)
	net := NewNetwork(NewTreeProtocol(tr.Parent), Config{
		Seed:            8,
		LossProb:        0.25,
		DupProb:         0.1,
		RetransmitEvery: 200 * time.Microsecond,
	})
	net.Corrupt(15, CorruptTree())
	res := net.Run(10 * time.Second)
	if !res.Converged {
		t.Fatalf("lossy tree did not stabilize (%d updates)", res.Updates)
	}
}

func TestLargerRingScales(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	net := NewNetwork(&RingProtocol{N: 31, K: 33}, Config{Seed: 13})
	net.Corrupt(32, CorruptRing(33))
	res := net.Run(15 * time.Second)
	if !res.Converged {
		t.Fatalf("32-node ring did not stabilize (%d updates)", res.Updates)
	}
}

func TestCorruptOutOfDomainValuesHandled(t *testing.T) {
	// Registers corrupted to arbitrary values must not break the adapters:
	// they normalize modulo their domains.
	r := &RingProtocol{N: 2, K: 3}
	regs := []int32{-7}
	cache := map[int][]int32{2: {1000}}
	r.Step(1, regs, cache) // must not panic
	if !r.Legitimate([][]int32{{-7}, {-7}, {-7}}) {
		t.Error("normalized equal values not legitimate")
	}
}

func TestMidRunFaultRecovery(t *testing.T) {
	// A live fault injected into the running system: the ring converges,
	// the monitor corrupts half the nodes mid-flight, and the system
	// converges again afterwards.
	net := NewNetwork(&RingProtocol{N: 7, K: 9}, Config{
		Seed: 4,
		MidRunFault: &MidRunFault{
			After: 30,
			Nodes: 4,
			Corrupt: func(_ int, regs []int32, rng *rand.Rand) {
				regs[0] = rng.Int31n(9)
			},
		},
	})
	res := net.Run(10 * time.Second)
	if res.FaultFiredAt == 0 {
		t.Fatal("mid-run fault never fired")
	}
	if !res.Converged {
		t.Fatalf("did not reconverge after live fault (fault at update %d, %d updates total)",
			res.FaultFiredAt, res.Updates)
	}
	if res.Updates <= res.FaultFiredAt {
		t.Errorf("no post-fault updates: fault at %d, total %d", res.FaultFiredAt, res.Updates)
	}
}

func TestMidRunFaultOnTree(t *testing.T) {
	tr := diffusing.Binary(15)
	net := NewNetwork(NewTreeProtocol(tr.Parent), Config{
		Seed:     6,
		LossProb: 0.1,
		MidRunFault: &MidRunFault{
			After: 40,
			Nodes: 8,
			Corrupt: func(_ int, regs []int32, rng *rand.Rand) {
				regs[regC] = rng.Int31n(2)
				regs[regSn] = rng.Int31n(2)
			},
		},
	})
	res := net.Run(10 * time.Second)
	if !res.Converged || res.FaultFiredAt == 0 {
		t.Fatalf("tree did not survive live fault: converged=%v faultAt=%d",
			res.Converged, res.FaultFiredAt)
	}
}
