// Package runtime executes protocols as message-passing distributed
// systems: one goroutine per node, unreliable typed links, and cached
// neighbor state. It realizes the low-atomicity refinement the paper
// defers to companion work (Section 8: the high-atomicity actions "may
// be unsuitable for a distributed implementation"; Section 7.1 leaves the
// message-passing refinement "as an exercise to the reader").
//
// Each node holds a vector of int32 registers. A node acts on its own
// registers and a cache of its neighbors' registers, refreshed by
// messages; after each local step (and periodically, to mask message
// loss) the node broadcasts its registers to its neighbors. Links drop
// and duplicate messages with configurable probability.
package runtime

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Protocol adapts a distributed protocol to the runtime.
type Protocol interface {
	// Nodes returns the node count.
	Nodes() int
	// Neighbors returns the nodes whose state node i reads.
	Neighbors(i int) []int
	// LocalLen returns the number of registers node i owns.
	LocalLen(i int) int
	// Init fills node i's initial registers.
	Init(i int, regs []int32)
	// Step executes at most one enabled local action of node i against its
	// registers and the cached neighbor registers, mutating regs in place.
	// It reports whether an action fired. Cache entries may be nil before
	// the first message from that neighbor arrives.
	Step(i int, regs []int32, cache map[int][]int32) bool
	// Legitimate evaluates the global invariant on a snapshot of all
	// nodes' registers.
	Legitimate(all [][]int32) bool
}

// Config tunes the network.
type Config struct {
	// LossProb is the probability a message is dropped.
	LossProb float64
	// DupProb is the probability a delivered message is duplicated.
	DupProb float64
	// Seed drives all randomness; runs with equal seeds and schedules are
	// statistically alike (goroutine interleaving still varies).
	Seed int64
	// RetransmitEvery is the idle rebroadcast period masking message loss.
	// Zero means a millisecond.
	RetransmitEvery time.Duration
	// StableUpdates is how many consecutive legitimate monitor updates
	// count as convergence. Zero means 3 * nodes.
	StableUpdates int
	// MidRunFault, when non-nil, corrupts running nodes once the monitor
	// has processed MidRunAfter updates — live fault injection into the
	// concurrent system, not just a corrupted start.
	MidRunFault *MidRunFault
}

// MidRunFault describes one live injection.
type MidRunFault struct {
	// After is the monitor-update count that triggers the injection.
	After int
	// Nodes is how many (monitor-chosen random) nodes to corrupt.
	Nodes int
	// Corrupt perturbs one victim's registers inside its goroutine.
	Corrupt func(i int, regs []int32, rng *rand.Rand)
}

func (c Config) retransmitEvery() time.Duration {
	if c.RetransmitEvery <= 0 {
		return time.Millisecond
	}
	return c.RetransmitEvery
}

// message carries one node's registers to a neighbor.
type message struct {
	from int
	regs []int32
}

// Network runs one protocol instance.
type Network struct {
	proto Protocol
	cfg   Config

	inboxes []chan message
	updates chan message // node -> monitor
	corrupt []chan func([]int32, *rand.Rand)
	done    chan struct{}
	wg      sync.WaitGroup

	mu   sync.Mutex
	rng  *rand.Rand
	regs [][]int32 // initial registers, then owned by node goroutines
}

// NewNetwork prepares a network; Corrupt may be called before Run to
// perturb initial states.
func NewNetwork(p Protocol, cfg Config) *Network {
	n := p.Nodes()
	net := &Network{
		proto:   p,
		cfg:     cfg,
		inboxes: make([]chan message, n),
		updates: make(chan message, 4*n),
		corrupt: make([]chan func([]int32, *rand.Rand), n),
		done:    make(chan struct{}),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		regs:    make([][]int32, n),
	}
	for i := 0; i < n; i++ {
		net.inboxes[i] = make(chan message, 8*n)
		net.corrupt[i] = make(chan func([]int32, *rand.Rand), 1)
		net.regs[i] = make([]int32, p.LocalLen(i))
		p.Init(i, net.regs[i])
	}
	return net
}

// Corrupt randomizes the registers of k nodes within int8 range (protocol
// adapters must clamp incoming cached values to their domains if they care;
// the bundled adapters interpret registers modulo their domains).
func (net *Network) Corrupt(k int, corrupt func(i int, regs []int32, rng *rand.Rand)) {
	n := net.proto.Nodes()
	if k <= 0 || k > n {
		k = n
	}
	perm := net.rng.Perm(n)
	for _, i := range perm[:k] {
		corrupt(i, net.regs[i], net.rng)
	}
}

// Result reports one network run.
type Result struct {
	// Converged reports whether the monitor saw StableUpdates consecutive
	// legitimate snapshots before the deadline (and after the mid-run
	// fault, when one is configured).
	Converged bool
	// Updates is the number of state updates the monitor processed.
	Updates int
	// FaultFiredAt is the update count at which the mid-run fault was
	// injected, or 0 when none was configured.
	FaultFiredAt int
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration
	// Final is the last snapshot.
	Final [][]int32
}

// Run starts the nodes and blocks until convergence or the deadline. The
// network cannot be reused after Run returns.
func (net *Network) Run(deadline time.Duration) *Result {
	n := net.proto.Nodes()
	start := time.Now()

	// Per-node send RNGs, seeded deterministically.
	for i := 0; i < n; i++ {
		i := i
		rng := rand.New(rand.NewSource(net.cfg.Seed + int64(i)*7919 + 1))
		net.wg.Add(1)
		go net.nodeLoop(i, net.regs[i], rng)
	}

	// Monitor: collect updates, detect stability.
	stable := net.cfg.StableUpdates
	if stable <= 0 {
		stable = 3 * n
	}
	snapshot := make([][]int32, n)
	for i := range snapshot {
		snapshot[i] = make([]int32, len(net.regs[i]))
		copy(snapshot[i], net.regs[i])
	}
	res := &Result{}
	consecutive := 0
	faultPending := net.cfg.MidRunFault != nil
	timer := time.NewTimer(deadline)
	defer timer.Stop()
loop:
	for {
		select {
		case m := <-net.updates:
			copy(snapshot[m.from], m.regs)
			res.Updates++
			if faultPending && res.Updates >= net.cfg.MidRunFault.After {
				faultPending = false
				res.FaultFiredAt = res.Updates
				consecutive = 0
				f := net.cfg.MidRunFault
				k := f.Nodes
				if k <= 0 || k > n {
					k = n
				}
				for _, victim := range net.rng.Perm(n)[:k] {
					victim := victim
					inject := func(regs []int32, rng *rand.Rand) {
						f.Corrupt(victim, regs, rng)
					}
					select {
					case net.corrupt[victim] <- inject:
					default: // injection already pending; skip
					}
				}
			}
			if !faultPending && net.proto.Legitimate(snapshot) {
				consecutive++
				if consecutive >= stable {
					res.Converged = true
					break loop
				}
			} else if !net.proto.Legitimate(snapshot) {
				consecutive = 0
			}
		case <-timer.C:
			break loop
		}
	}
	close(net.done)
	net.wg.Wait()
	res.Elapsed = time.Since(start)
	res.Final = snapshot
	return res
}

// nodeLoop is one node's goroutine: drain messages, act, broadcast.
func (net *Network) nodeLoop(i int, regs []int32, rng *rand.Rand) {
	defer net.wg.Done()
	cache := make(map[int][]int32)
	ticker := time.NewTicker(net.cfg.retransmitEvery())
	defer ticker.Stop()

	broadcast := func() {
		// Inform the monitor first (reliable; loss applies to links only):
		// pushing before the neighbor sends keeps monitor updates causally
		// ordered, so snapshots of quiescent-legitimate systems stay
		// legitimate.
		cp := make([]int32, len(regs))
		copy(cp, regs)
		select {
		case net.updates <- message{from: i, regs: cp}:
		case <-net.done:
		}
		for _, to := range net.neighborsOf(i) {
			net.send(i, to, regs, rng)
		}
	}
	broadcast()

	for {
		// Drain all pending messages without blocking.
		drained := false
		for {
			select {
			case m := <-net.inboxes[i]:
				cache[m.from] = m.regs
				drained = true
			default:
				goto act
			}
		}
	act:
		_ = drained
		fired := false
		for net.proto.Step(i, regs, cache) {
			fired = true
		}
		if fired {
			broadcast()
			continue
		}
		// Nothing to do: wait for input, an injected fault, a retransmit
		// tick, or shutdown.
		select {
		case m := <-net.inboxes[i]:
			cache[m.from] = m.regs
		case f := <-net.corrupt[i]:
			f(regs, rng)
			broadcast()
		case <-ticker.C:
			broadcast()
		case <-net.done:
			return
		}
	}
}

// neighborsOf returns the nodes that read node i's state — i must push to
// them. With symmetric neighbor relations (all bundled adapters) this is
// simply Neighbors(i); for directed relations it is the reverse adjacency.
func (net *Network) neighborsOf(i int) []int {
	var out []int
	for j := 0; j < net.proto.Nodes(); j++ {
		for _, k := range net.proto.Neighbors(j) {
			if k == i {
				out = append(out, j)
			}
		}
	}
	return out
}

// send delivers regs from -> to across the lossy link.
func (net *Network) send(from, to int, regs []int32, rng *rand.Rand) {
	if rng.Float64() < net.cfg.LossProb {
		return
	}
	copies := 1
	if rng.Float64() < net.cfg.DupProb {
		copies = 2
	}
	for c := 0; c < copies; c++ {
		cp := make([]int32, len(regs))
		copy(cp, regs)
		select {
		case net.inboxes[to] <- message{from: from, regs: cp}:
		case <-net.done:
			return
		default:
			// Full inbox: drop (backpressure as loss).
		}
	}
}

// String renders a snapshot for debugging.
func SnapshotString(all [][]int32) string {
	return fmt.Sprintf("%v", all)
}
