package runtime

import (
	"math/rand"
)

// RingProtocol adapts Dijkstra's K-state token ring (Section 7.1) to the
// message-passing runtime. Node j owns one register x.j; node 0 reads node
// N, node j > 0 reads node j-1.
type RingProtocol struct {
	// N is the highest node index (N+1 nodes).
	N int
	// K is the counter modulus.
	K int32
}

// Nodes implements Protocol.
func (r *RingProtocol) Nodes() int { return r.N + 1 }

// Neighbors implements Protocol: each node reads its predecessor.
func (r *RingProtocol) Neighbors(i int) []int {
	if i == 0 {
		return []int{r.N}
	}
	return []int{i - 1}
}

// LocalLen implements Protocol.
func (r *RingProtocol) LocalLen(int) int { return 1 }

// Init implements Protocol: the legitimate all-zero configuration.
func (r *RingProtocol) Init(_ int, regs []int32) { regs[0] = 0 }

// norm interprets an arbitrary (possibly corrupted) register value as a
// counter value in 0..K-1.
func (r *RingProtocol) norm(v int32) int32 {
	v %= r.K
	if v < 0 {
		v += r.K
	}
	return v
}

// Step implements Protocol.
func (r *RingProtocol) Step(i int, regs []int32, cache map[int][]int32) bool {
	pred := r.N
	if i > 0 {
		pred = i - 1
	}
	c, ok := cache[pred]
	if !ok {
		return false
	}
	mine, theirs := r.norm(regs[0]), r.norm(c[0])
	if i == 0 {
		if mine == theirs {
			regs[0] = (mine + 1) % r.K
			return true
		}
		return false
	}
	if mine != theirs {
		regs[0] = theirs
		return true
	}
	return false
}

// Legitimate implements Protocol: exactly one privilege in the snapshot.
func (r *RingProtocol) Legitimate(all [][]int32) bool {
	count := 0
	if r.norm(all[0][0]) == r.norm(all[r.N][0]) {
		count++
	}
	for j := 1; j <= r.N; j++ {
		if r.norm(all[j][0]) != r.norm(all[j-1][0]) {
			count++
		}
	}
	return count == 1
}

// CorruptRing randomizes a ring node's register.
func CorruptRing(k int32) func(int, []int32, *rand.Rand) {
	return func(_ int, regs []int32, rng *rand.Rand) {
		regs[0] = rng.Int31n(k)
	}
}

// TreeProtocol adapts the Section 5.1 diffusing computation to the runtime.
// Node j owns registers [c.j, sn.j]; it reads its parent (wave descent) and
// its children (reflection).
type TreeProtocol struct {
	// Parent is the tree's parent vector (Parent[root] == root).
	Parent []int
	kids   [][]int
}

// NewTreeProtocol builds the adapter and its child lists.
func NewTreeProtocol(parent []int) *TreeProtocol {
	p := &TreeProtocol{Parent: parent, kids: make([][]int, len(parent))}
	for j, pj := range parent {
		if pj != j {
			p.kids[pj] = append(p.kids[pj], j)
		}
	}
	return p
}

// register layout
const (
	regC  = 0
	regSn = 1
)

// Nodes implements Protocol.
func (t *TreeProtocol) Nodes() int { return len(t.Parent) }

// Neighbors implements Protocol: parent plus children.
func (t *TreeProtocol) Neighbors(i int) []int {
	var out []int
	if t.Parent[i] != i {
		out = append(out, t.Parent[i])
	}
	out = append(out, t.kids[i]...)
	return out
}

// LocalLen implements Protocol.
func (t *TreeProtocol) LocalLen(int) int { return 2 }

// Init implements Protocol: all green, equal sessions.
func (t *TreeProtocol) Init(_ int, regs []int32) {
	regs[regC] = 0
	regs[regSn] = 0
}

func normBit(v int32) int32 {
	if v != 0 {
		return 1
	}
	return 0
}

// Step implements Protocol: the combined program of Section 5.1 — initiate
// at the root, copy-parent (propagation merged with convergence), reflect.
func (t *TreeProtocol) Step(i int, regs []int32, cache map[int][]int32) bool {
	c := normBit(regs[regC])
	sn := normBit(regs[regSn])
	root := t.Parent[i] == i

	if !root {
		pc, ok := cache[t.Parent[i]]
		if !ok {
			return false
		}
		pcol, psn := normBit(pc[regC]), normBit(pc[regSn])
		// sn.j != sn.(P.j) or (c.j = red and c.(P.j) = green)
		if sn != psn || (c == 1 && pcol == 0) {
			regs[regC] = pcol
			regs[regSn] = psn
			return true
		}
	} else if c == 0 {
		// Root initiates.
		regs[regC] = 1
		regs[regSn] = 1 - sn
		return true
	}

	// Reflect: red, and every child green with matching session.
	if c == 1 {
		for _, k := range t.kids[i] {
			kc, ok := cache[k]
			if !ok {
				return false
			}
			if normBit(kc[regC]) != 0 || normBit(kc[regSn]) != sn {
				return false
			}
		}
		regs[regC] = 0
		return true
	}
	return false
}

// Legitimate implements Protocol: every non-root node satisfies R.j.
func (t *TreeProtocol) Legitimate(all [][]int32) bool {
	for j, pj := range t.Parent {
		if pj == j {
			continue
		}
		cj, snj := normBit(all[j][regC]), normBit(all[j][regSn])
		cp, snp := normBit(all[pj][regC]), normBit(all[pj][regSn])
		if cj == cp && snj == snp {
			continue
		}
		if cj == 0 && cp == 1 {
			continue
		}
		return false
	}
	return true
}

// CorruptTree randomizes a tree node's registers.
func CorruptTree() func(int, []int32, *rand.Rand) {
	return func(_ int, regs []int32, rng *rand.Rand) {
		regs[regC] = rng.Int31n(2)
		regs[regSn] = rng.Int31n(2)
	}
}

// interface compliance
var (
	_ Protocol = (*RingProtocol)(nil)
	_ Protocol = (*TreeProtocol)(nil)
)
