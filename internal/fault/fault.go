// Package fault models faults for nonmasking fault-tolerance experiments.
// The paper's view (Section 3) is that "all classes of faults can be
// represented as actions that change the program state"; accordingly this
// package provides both fault actions (first-class program.Action values of
// kind Fault, for fault-span computation by the model checker) and fault
// injectors (state transformers applied by the simulator on a schedule).
package fault

import (
	"fmt"
	"math/rand"

	"nonmask/internal/program"
)

// Injector perturbs a state in place. Implementations must keep every value
// inside its variable's domain — the paper's faults corrupt state, they do
// not invent values outside the variables' domains.
type Injector interface {
	// Name identifies the injector in reports.
	Name() string
	// Inject perturbs st in place using rng.
	Inject(st *program.State, rng *rand.Rand)
}

// CorruptVars randomizes up to K of the given variables (all declared
// variables when Vars is nil), drawing fresh uniform values from each
// variable's domain. It models the paper's "faults that arbitrarily corrupt
// the state of any number of nodes" (Section 5.1).
type CorruptVars struct {
	// Vars limits corruption to these variables; nil means all.
	Vars []program.VarID
	// K is the number of variables corrupted per injection; 0 means all of
	// Vars.
	K int
}

// Name implements Injector.
func (c *CorruptVars) Name() string {
	if c.K == 0 {
		return "corrupt-all"
	}
	return fmt.Sprintf("corrupt-%d", c.K)
}

// Inject implements Injector.
func (c *CorruptVars) Inject(st *program.State, rng *rand.Rand) {
	schema := st.Schema()
	vars := c.Vars
	if vars == nil {
		vars = make([]program.VarID, schema.Len())
		for i := range vars {
			vars[i] = program.VarID(i)
		}
	}
	k := c.K
	if k <= 0 || k > len(vars) {
		k = len(vars)
	}
	// Partial Fisher-Yates over a scratch copy picks k distinct victims.
	scratch := make([]program.VarID, len(vars))
	copy(scratch, vars)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(scratch)-i)
		scratch[i], scratch[j] = scratch[j], scratch[i]
		dom := schema.Spec(scratch[i]).Dom
		st.Set(scratch[i], dom.Min+int32(rng.Int63n(dom.Size())))
	}
}

// CorruptGroups randomizes all variables of up to K groups (e.g. the
// per-node variable groups of a distributed protocol): the "corrupt the
// state of k nodes" fault model.
type CorruptGroups struct {
	// Groups are disjoint variable groups, typically one per process.
	Groups [][]program.VarID
	// K is the number of groups corrupted per injection; 0 means all.
	K int
}

// Name implements Injector.
func (c *CorruptGroups) Name() string {
	if c.K == 0 {
		return "corrupt-all-nodes"
	}
	return fmt.Sprintf("corrupt-%d-nodes", c.K)
}

// Inject implements Injector.
func (c *CorruptGroups) Inject(st *program.State, rng *rand.Rand) {
	schema := st.Schema()
	k := c.K
	if k <= 0 || k > len(c.Groups) {
		k = len(c.Groups)
	}
	idx := make([]int, len(c.Groups))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		for _, v := range c.Groups[idx[i]] {
			dom := schema.Spec(v).Dom
			st.Set(v, dom.Min+int32(rng.Int63n(dom.Size())))
		}
	}
}

// ResetTo restores chosen variables to a snapshot state — a crash-and-
// reinitialize fault where a process loses its state and restarts from its
// initial values.
type ResetTo struct {
	// Snapshot supplies the values restored on injection.
	Snapshot *program.State
	// Vars limits the reset to these variables; nil means all.
	Vars []program.VarID
}

// Name implements Injector.
func (r *ResetTo) Name() string { return "crash-reset" }

// Inject implements Injector.
func (r *ResetTo) Inject(st *program.State, rng *rand.Rand) {
	vars := r.Vars
	if vars == nil {
		vars = make([]program.VarID, st.Schema().Len())
		for i := range vars {
			vars[i] = program.VarID(i)
		}
	}
	for _, v := range vars {
		st.Set(v, r.Snapshot.Get(v))
	}
}

// Event schedules one injection at a simulation step.
type Event struct {
	// Step is the step index before which the injection fires.
	Step int
	// Inj performs the perturbation.
	Inj Injector
}

// Schedule is a list of injection events, ordered by Step.
type Schedule []Event

// At returns the injectors scheduled for the given step.
func (s Schedule) At(step int) []Injector {
	var out []Injector
	for _, e := range s {
		if e.Step == step {
			out = append(out, e.Inj)
		}
	}
	return out
}

// Actions converts an injector-free fault description into fault actions
// usable by the model checker: for each variable in vars and each value in
// its domain, a fault action that sets the variable to that value. This is
// the paper's representation of state-corrupting faults as guarded actions.
func Actions(schema *program.Schema, vars []program.VarID) []*program.Action {
	var out []*program.Action
	for _, v := range vars {
		dom := schema.Spec(v).Dom
		name := schema.Spec(v).Name
		for val := dom.Min; val <= dom.Max; val++ {
			val := val
			v := v
			out = append(out, program.NewAction(
				fmt.Sprintf("fault: %s := %s", name, dom.ValueString(val)),
				program.Fault,
				[]program.VarID{v}, []program.VarID{v},
				func(st *program.State) bool { return st.Get(v) != val },
				func(st *program.State) { st.Set(v, val) },
			))
		}
	}
	return out
}

// interface compliance
var (
	_ Injector = (*CorruptVars)(nil)
	_ Injector = (*CorruptGroups)(nil)
	_ Injector = (*ResetTo)(nil)
)
