package fault

import (
	"math/rand"
	"testing"

	"nonmask/internal/program"
)

func nodeSchema(t *testing.T, n int) (*program.Schema, [][]program.VarID) {
	t.Helper()
	s := program.NewSchema()
	groups := make([][]program.VarID, n)
	for i := 0; i < n; i++ {
		c := s.MustDeclare(varName("c", i), program.Enum("green", "red"))
		sn := s.MustDeclare(varName("sn", i), program.Bool())
		groups[i] = []program.VarID{c, sn}
	}
	return s, groups
}

func varName(base string, i int) string {
	return base + "[" + string(rune('0'+i)) + "]"
}

func TestCorruptVarsAll(t *testing.T) {
	s, _ := nodeSchema(t, 4)
	rng := rand.New(rand.NewSource(3))
	inj := &CorruptVars{}
	if inj.Name() != "corrupt-all" {
		t.Errorf("Name = %q", inj.Name())
	}
	// Over many injections every variable should change at least once and
	// all values must stay in domain.
	changed := make([]bool, s.Len())
	for trial := 0; trial < 100; trial++ {
		st := s.NewState()
		inj.Inject(st, rng)
		for v := 0; v < s.Len(); v++ {
			if !s.Spec(program.VarID(v)).Dom.Contains(st.Get(program.VarID(v))) {
				t.Fatal("corrupted value out of domain")
			}
			if st.Get(program.VarID(v)) != s.Spec(program.VarID(v)).Dom.Min {
				changed[v] = true
			}
		}
	}
	for v, ch := range changed {
		if !ch {
			t.Errorf("variable %d never corrupted", v)
		}
	}
}

func TestCorruptVarsK(t *testing.T) {
	s := program.NewSchema()
	ids := s.MustDeclareArray("x", 10, program.IntRange(0, 1000))
	rng := rand.New(rand.NewSource(5))
	inj := &CorruptVars{Vars: ids, K: 3}
	if inj.Name() != "corrupt-3" {
		t.Errorf("Name = %q", inj.Name())
	}
	for trial := 0; trial < 50; trial++ {
		st := s.NewState()
		inj.Inject(st, rng)
		diff := 0
		for _, id := range ids {
			if st.Get(id) != 0 {
				diff++
			}
		}
		// At most K variables may differ (a corruption may redraw the
		// original value, so fewer is possible).
		if diff > 3 {
			t.Fatalf("corrupt-3 changed %d variables", diff)
		}
	}
}

func TestCorruptGroups(t *testing.T) {
	s, groups := nodeSchema(t, 4)
	rng := rand.New(rand.NewSource(9))
	inj := &CorruptGroups{Groups: groups, K: 2}
	if inj.Name() != "corrupt-2-nodes" {
		t.Errorf("Name = %q", inj.Name())
	}
	for trial := 0; trial < 50; trial++ {
		st := s.NewState()
		inj.Inject(st, rng)
		touched := 0
		for _, g := range groups {
			for _, v := range g {
				if st.Get(v) != s.Spec(v).Dom.Min {
					touched++
					break
				}
			}
		}
		if touched > 2 {
			t.Fatalf("corrupt-2-nodes touched %d groups", touched)
		}
	}
	all := &CorruptGroups{Groups: groups}
	if all.Name() != "corrupt-all-nodes" {
		t.Errorf("Name = %q", all.Name())
	}
}

func TestResetTo(t *testing.T) {
	s, _ := nodeSchema(t, 2)
	snapshot := s.NewState()
	snapshot.Set(0, 1) // c[0] = red

	st := s.NewState()
	st.Set(0, 0)
	st.Set(2, 1)
	inj := &ResetTo{Snapshot: snapshot}
	inj.Inject(st, nil)
	if !st.Equal(snapshot) {
		t.Errorf("full reset = %s, want %s", st, snapshot)
	}

	// Partial reset touches only the listed variables.
	st2 := s.NewState()
	st2.Set(0, 0)
	st2.Set(2, 1)
	partial := &ResetTo{Snapshot: snapshot, Vars: []program.VarID{0}}
	partial.Inject(st2, nil)
	if st2.Get(0) != 1 {
		t.Error("partial reset did not restore var 0")
	}
	if st2.Get(2) != 1 {
		t.Error("partial reset clobbered var 2")
	}
	if inj.Name() != "crash-reset" {
		t.Errorf("Name = %q", inj.Name())
	}
}

func TestScheduleAt(t *testing.T) {
	a := &CorruptVars{K: 1}
	b := &CorruptVars{K: 2}
	sch := Schedule{{Step: 0, Inj: a}, {Step: 5, Inj: b}, {Step: 5, Inj: a}}
	if got := sch.At(0); len(got) != 1 || got[0] != a {
		t.Errorf("At(0) = %v", got)
	}
	if got := sch.At(5); len(got) != 2 {
		t.Errorf("At(5) = %d injectors, want 2", len(got))
	}
	if got := sch.At(3); got != nil {
		t.Errorf("At(3) = %v, want nil", got)
	}
}

func TestActionsEnumerateDomain(t *testing.T) {
	s := program.NewSchema()
	c := s.MustDeclare("c", program.Enum("green", "red"))
	acts := Actions(s, []program.VarID{c})
	if len(acts) != 2 {
		t.Fatalf("got %d fault actions, want 2", len(acts))
	}
	st := s.NewState() // c = green
	// The "c := green" action is disabled (no-op faults excluded); the
	// "c := red" action is enabled and sets red.
	var enabled []*program.Action
	for _, a := range acts {
		if a.Kind != program.Fault {
			t.Errorf("action %q kind = %v, want Fault", a.Name, a.Kind)
		}
		if a.Enabled(st) {
			enabled = append(enabled, a)
		}
	}
	if len(enabled) != 1 {
		t.Fatalf("%d fault actions enabled at green, want 1", len(enabled))
	}
	next := enabled[0].Apply(st)
	if next.Get(c) != 1 {
		t.Errorf("fault result c = %d, want 1 (red)", next.Get(c))
	}
}
