package diffusing

import (
	"fmt"

	"nonmask/internal/core"
	"nonmask/internal/program"
)

// Color values for the c variables.
const (
	Green int32 = 0
	Red   int32 = 1
)

// Instance is a diffusing-computation design on one tree.
type Instance struct {
	Tree   Tree
	Design *core.Design
	// C and Sn hold the per-node color and session-number variable IDs.
	C, Sn []program.VarID
	// Groups lists each node's variables, for per-node fault injection.
	Groups [][]program.VarID
	// Combined is the paper's final printed program, in which the
	// propagation closure action and the convergence action are merged
	// into "sn.j != sn.(P.j) or (c.j = red and c.(P.j) = green) ->
	// c.j, sn.j := c.(P.j), sn.(P.j)". It has the same reachable behaviour
	// as Design.TolerantProgram().
	Combined *program.Program
}

// EstablishVariant selects among the paper's establishing statements for
// R.j (Section 5.1: "there are several statements that establish R.j").
type EstablishVariant int

// The two statements the paper discusses.
const (
	// CopyParent is "c.j, sn.j := c.(P.j), sn.(P.j)" — the paper's
	// preference, "since it is identical to the statement of the
	// propagation closure action".
	CopyParent EstablishVariant = iota + 1
	// ConditionalGreen is "if c.(P.j) = red then c.j := green else
	// c.j, sn.j := green, sn.(P.j)".
	ConditionalGreen
)

// String names the variant.
func (v EstablishVariant) String() string {
	if v == ConditionalGreen {
		return "conditional-green"
	}
	return "copy-parent"
}

// New builds the Section 5.1 design for the given tree with the paper's
// preferred (CopyParent) establishing statement.
func New(t Tree) (*Instance, error) { return NewVariant(t, CopyParent) }

// NewVariant builds the design with the chosen establishing statement.
func NewVariant(t Tree, variant EstablishVariant) (*Instance, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := t.N()
	root := t.Root()
	children := t.Children()

	b := core.NewDesign(fmt.Sprintf("diffusing(n=%d)", n))
	s := b.Schema()
	colors := program.Enum("green", "red")
	c := make([]program.VarID, n)
	sn := make([]program.VarID, n)
	groups := make([][]program.VarID, n)
	for j := 0; j < n; j++ {
		c[j] = s.MustDeclare(fmt.Sprintf("c[%d]", j), colors)
		sn[j] = s.MustDeclare(fmt.Sprintf("sn[%d]", j), program.Bool())
		groups[j] = []program.VarID{c[j], sn[j]}
	}

	inst := &Instance{Tree: t, C: c, Sn: sn, Groups: groups}

	// Closure action 1 — initiate at the root:
	//   c.j = green and P.j = j -> c.j, sn.j := red, not sn.j
	cRoot, snRoot := c[root], sn[root]
	initiate := program.NewAction("initiate(root)", program.Closure,
		[]program.VarID{cRoot, snRoot}, []program.VarID{cRoot, snRoot},
		func(st *program.State) bool { return st.Get(cRoot) == Green },
		func(st *program.State) {
			st.Set(cRoot, Red)
			st.SetBool(snRoot, !st.Bool(snRoot))
		})
	b.Closure(initiate)

	// Per non-root node j: the propagation closure action, the reflection
	// closure action, the constraint R.j, and its convergence action.
	for j := 0; j < n; j++ {
		j := j
		pj := t.Parent[j]
		cj, snj := c[j], sn[j]
		cp, snp := c[pj], sn[pj]

		if j != root {
			// Closure action 2 — propagate the wave from P.j to j:
			//   c.j = green and c.(P.j) = red and sn.j != sn.(P.j)
			//     -> c.j, sn.j := c.(P.j), sn.(P.j)
			propagate := program.NewAction(fmt.Sprintf("propagate(%d)", j), program.Closure,
				[]program.VarID{cj, snj, cp, snp}, []program.VarID{cj, snj},
				func(st *program.State) bool {
					return st.Get(cj) == Green && st.Get(cp) == Red &&
						st.Bool(snj) != st.Bool(snp)
				},
				func(st *program.State) {
					st.Set(cj, st.Get(cp))
					st.SetBool(snj, st.Bool(snp))
				})
			b.Closure(propagate)
		}

		// Closure action 3 — reflect the wave at j once every child has
		// completed:
		//   c.j = red and (forall k : P.k = j : c.k = green and
		//   sn.j == sn.k) -> c.j := green
		kids := children[j]
		reads := []program.VarID{cj, snj}
		for _, k := range kids {
			reads = append(reads, c[k], sn[k])
		}
		reflect := program.NewAction(fmt.Sprintf("reflect(%d)", j), program.Closure,
			reads, []program.VarID{cj},
			func(st *program.State) bool {
				if st.Get(cj) != Red {
					return false
				}
				for _, k := range kids {
					if st.Get(c[k]) != Green || st.Bool(sn[k]) != st.Bool(snj) {
						return false
					}
				}
				return true
			},
			func(st *program.State) { st.Set(cj, Green) })
		b.Closure(reflect)

		if j != root {
			// Constraint R.j:
			//   (c.j = c.(P.j) and sn.j == sn.(P.j)) or
			//   (c.j = green and c.(P.j) = red)
			rj := program.NewPredicate(fmt.Sprintf("R[%d]", j),
				[]program.VarID{cj, snj, cp, snp},
				func(st *program.State) bool {
					if st.Get(cj) == st.Get(cp) && st.Bool(snj) == st.Bool(snp) {
						return true
					}
					return st.Get(cj) == Green && st.Get(cp) == Red
				})
			// Convergence action: not R.j -> "establish R.j" with the
			// chosen statement.
			body := func(st *program.State) {
				st.Set(cj, st.Get(cp))
				st.SetBool(snj, st.Bool(snp))
			}
			if variant == ConditionalGreen {
				body = func(st *program.State) {
					if st.Get(cp) == Red {
						st.Set(cj, Green)
						return
					}
					st.Set(cj, Green)
					st.SetBool(snj, st.Bool(snp))
				}
			}
			establish := program.NewAction(fmt.Sprintf("establish-R(%d)", j), program.Convergence,
				[]program.VarID{cj, snj, cp, snp}, []program.VarID{cj, snj},
				func(st *program.State) bool { return !rj.Eval(st) },
				body)
			b.Constraint(0, rj, establish)
		}
	}

	d, err := b.Build()
	if err != nil {
		return nil, err
	}
	inst.Design = d
	inst.Combined = buildCombined(d, inst, root, children)
	return inst, nil
}

// buildCombined assembles the paper's printed program: initiate, the merged
// propagate/convergence action, and reflect.
func buildCombined(d *core.Design, inst *Instance, root int, children [][]int) *program.Program {
	p := program.New(d.Name+"/combined", d.Schema)
	t := inst.Tree
	for _, a := range d.Closure {
		// Keep initiate and reflect; drop the separate propagate actions.
		if len(a.Name) >= 9 && a.Name[:9] == "propagate" {
			continue
		}
		p.Add(a)
	}
	for j := 0; j < t.N(); j++ {
		if j == root {
			continue
		}
		j := j
		pj := t.Parent[j]
		cj, snj := inst.C[j], inst.Sn[j]
		cp, snp := inst.C[pj], inst.Sn[pj]
		// sn.j != sn.(P.j) or (c.j = red and c.(P.j) = green)
		//   -> c.j, sn.j := c.(P.j), sn.(P.j)
		merged := program.NewAction(fmt.Sprintf("copy-parent(%d)", j), program.Closure,
			[]program.VarID{cj, snj, cp, snp}, []program.VarID{cj, snj},
			func(st *program.State) bool {
				if st.Bool(snj) != st.Bool(snp) {
					return true
				}
				return st.Get(cj) == Red && st.Get(cp) == Green
			},
			func(st *program.State) {
				st.Set(cj, st.Get(cp))
				st.SetBool(snj, st.Bool(snp))
			})
		p.Add(merged)
	}
	return p
}

// AllGreen returns the paper's initial state: every node green with equal
// session numbers.
func (inst *Instance) AllGreen() *program.State {
	st := inst.Design.Schema.NewState()
	for j := range inst.C {
		st.Set(inst.C[j], Green)
		st.SetBool(inst.Sn[j], false)
	}
	return st
}

// WaveObserver watches a run of the diffusing computation and counts
// completed wave cycles: a cycle completes when the tree returns to
// all-green after the root had been red. Note that the wave need not color
// the whole tree red simultaneously — leaves reflect to green as soon as
// they are red — so participation is tracked per node per cycle. Attach
// Observe to a sim.Runner's OnStep via a closure over the observer.
type WaveObserver struct {
	inst   *Instance
	root   int
	wasRed bool
	// Cycles counts completed root-red -> all-green wave cycles.
	Cycles int
	// FullCycles counts cycles in which every node was red at some point —
	// the "diffusing computation completely spans the system" property.
	FullCycles int
	// RedMax is the maximum number of simultaneously red nodes seen.
	RedMax  int
	seenRed []bool
}

// NewWaveObserver returns an observer for the instance.
func NewWaveObserver(inst *Instance) *WaveObserver {
	return &WaveObserver{
		inst:    inst,
		root:    inst.Tree.Root(),
		seenRed: make([]bool, inst.Tree.N()),
	}
}

// Observe processes one post-step state.
func (w *WaveObserver) Observe(st *program.State) {
	red := 0
	for j, cv := range w.inst.C {
		if st.Get(cv) == Red {
			red++
			w.seenRed[j] = true
		}
	}
	if red > w.RedMax {
		w.RedMax = red
	}
	rootRed := st.Get(w.inst.C[w.root]) == Red
	if w.wasRed && !rootRed && red == 0 {
		w.Cycles++
		full := true
		for j := range w.seenRed {
			if !w.seenRed[j] {
				full = false
			}
			w.seenRed[j] = false
		}
		if full {
			w.FullCycles++
		}
	}
	if rootRed {
		w.wasRed = true
	} else if red == 0 {
		w.wasRed = false
	}
}
