package diffusing

import (
	"context"
	"math/rand"
	"testing"

	"nonmask/internal/ctheory"
	"nonmask/internal/daemon"
	"nonmask/internal/fault"
	"nonmask/internal/program"
	"nonmask/internal/sim"
	"nonmask/internal/verify"
)

func TestTreeConstructors(t *testing.T) {
	tests := []struct {
		name  string
		tree  Tree
		n     int
		depth int
	}{
		{"chain", Chain(5), 5, 4},
		{"star", Star(5), 5, 1},
		{"binary", Binary(7), 7, 2},
		{"single", Chain(1), 1, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.tree.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if tt.tree.N() != tt.n {
				t.Errorf("N = %d, want %d", tt.tree.N(), tt.n)
			}
			if tt.tree.Root() != 0 {
				t.Errorf("Root = %d, want 0", tt.tree.Root())
			}
			if d := tt.tree.Depth(); d != tt.depth {
				t.Errorf("Depth = %d, want %d", d, tt.depth)
			}
		})
	}
}

func TestTreeValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		tree Tree
	}{
		{"empty", Tree{}},
		{"no root", Tree{Parent: []int{1, 0}}},
		{"two roots", Tree{Parent: []int{0, 1}}},
		{"out of range", Tree{Parent: []int{0, 5}}},
		{"cycle", Tree{Parent: []int{0, 2, 1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.tree.Validate(); err == nil {
				t.Error("invalid tree passed Validate")
			}
		})
	}
}

func TestRandomTreeValid(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		tr := Random(30, seed)
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestTreeChildren(t *testing.T) {
	tr := Binary(7)
	kids := tr.Children()
	if len(kids[0]) != 2 || kids[0][0] != 1 || kids[0][1] != 2 {
		t.Errorf("children of root = %v", kids[0])
	}
	if len(kids[3]) != 0 {
		t.Errorf("leaf has children %v", kids[3])
	}
}

// TestTheorem1Validates reproduces the Section 5.1 claim: the constraint
// graph is an out-tree (mirroring the process tree) and Theorem 1 applies,
// so the program is stabilizing fault-tolerant.
func TestTheorem1Validates(t *testing.T) {
	trees := map[string]Tree{
		"chain4":  Chain(4),
		"star5":   Star(5),
		"binary7": Binary(7),
		"random6": Random(6, 3),
	}
	for name, tr := range trees {
		t.Run(name, func(t *testing.T) {
			inst, err := New(tr)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			r, _, err := inst.Design.Validate(verify.Projected, verify.Options{})
			if err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if r == nil || r.Theorem != ctheory.Theorem1 {
				t.Fatalf("validated by %v, want Theorem 1", r)
			}
			// The constraint graph's root holds the tree root's variables.
			root, ok := r.Graph.IsOutTree()
			if !ok {
				t.Fatal("constraint graph not an out-tree")
			}
			if lbl := r.Graph.NodeLabel(inst.Design.Schema, root); lbl != "{c[0], sn[0]}" {
				t.Errorf("graph root = %s, want {c[0], sn[0]}", lbl)
			}
		})
	}
}

// TestStabilizing model-checks the headline claim exactly on small trees:
// from EVERY state (T = true), the program converges to S — even under the
// arbitrary (unfair) daemon, confirming the Section 8 fairness remark.
func TestStabilizing(t *testing.T) {
	trees := map[string]Tree{
		"chain3":  Chain(3),
		"chain5":  Chain(5),
		"star5":   Star(5),
		"binary7": Binary(7),
		"random7": Random(7, 11),
	}
	for name, tr := range trees {
		t.Run(name, func(t *testing.T) {
			inst, err := New(tr)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			res, err := inst.Design.Verify(verify.Options{})
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if res.Closure != nil {
				t.Fatalf("closure violated: %v", res.Closure)
			}
			if !res.Unfair.Converges {
				t.Fatalf("not stabilizing under arbitrary daemon: %s", res.Unfair.Summary())
			}
			if res.Classification != verify.Nonmasking {
				t.Errorf("classification = %v", res.Classification)
			}
			t.Logf("%s: worst %d steps, mean %.2f, |¬S| = %d",
				name, res.Unfair.WorstSteps, res.Unfair.MeanSteps, res.Unfair.StatesOutsideS)
		})
	}
}

// TestCombinedProgramStabilizes checks the paper's printed program (merged
// propagation/convergence action) against the same invariant.
func TestCombinedProgramStabilizes(t *testing.T) {
	inst, err := New(Binary(7))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sp, err := verify.NewSpaceContext(context.Background(), inst.Combined, inst.Design.S, program.True(), verify.Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	if v := sp.CheckClosed(inst.Design.S, nil); v != nil {
		t.Fatalf("combined program: S not closed: %v", v)
	}
	res := sp.CheckConvergence()
	if !res.Converges {
		t.Fatalf("combined program not stabilizing: %s", res.Summary())
	}
}

// TestCombinedEquivalentToDesign verifies the paper's combination claim:
// merged and separate forms have identical transition relations on every
// state (the merged action's guard is the union of the two originals and
// the bodies coincide).
func TestCombinedEquivalentToDesign(t *testing.T) {
	inst, err := New(Binary(5))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	full := inst.Design.TolerantProgram()
	schema := inst.Design.Schema
	count, _ := schema.StateCount()
	for i := int64(0); i < count; i++ {
		st := schema.StateAt(i)
		succA := successorSet(full, st, schema)
		succB := successorSet(inst.Combined, st, schema)
		if !sameSet(succA, succB) {
			t.Fatalf("transition relations differ at %s: %v vs %v", st, succA, succB)
		}
	}
}

func successorSet(p *program.Program, st *program.State, schema *program.Schema) map[int64]bool {
	out := map[int64]bool{}
	for _, a := range p.Actions {
		if a.Guard(st) {
			out[schema.Index(a.Apply(st))] = true
		}
	}
	return out
}

func sameSet(a, b map[int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestWavePropagates reproduces the fault-free specification: starting all
// green, the wave turns the tree red from root to leaves and reflects back
// to green, repeatedly.
func TestWavePropagates(t *testing.T) {
	inst, err := New(Binary(15))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	obs := NewWaveObserver(inst)
	r := &sim.Runner{
		P:        inst.Design.TolerantProgram(),
		S:        inst.Design.S,
		D:        daemon.NewRoundRobin(inst.Design.TolerantProgram()),
		MaxSteps: 2000,
		OnStep:   func(_ int, st *program.State, _ *program.Action) { obs.Observe(st) },
	}
	res := r.Run(inst.AllGreen(), nil)
	if res.Deadlocked {
		t.Fatalf("wave deadlocked: %s", res)
	}
	if obs.Cycles < 2 {
		t.Errorf("observed %d wave cycles in 2000 steps, want >= 2", obs.Cycles)
	}
	// Every completed cycle must span the whole tree: each node turned red
	// at some point ("having completely spanned the system, the computation
	// then collapses back").
	if obs.FullCycles != obs.Cycles {
		t.Errorf("only %d of %d cycles spanned all nodes", obs.FullCycles, obs.Cycles)
	}
	if obs.RedMax < 1 {
		t.Error("wave never colored any node red")
	}
	// In the fault-free run no convergence action may fire (closure: the
	// constraints hold throughout).
	if res.ActionCounts[program.Convergence] != 0 {
		t.Errorf("%d convergence actions fired on the fault-free run",
			res.ActionCounts[program.Convergence])
	}
}

// TestConvergenceAfterCorruption is the fault model of Section 5.1:
// arbitrarily corrupt the state of any number of nodes, then check every
// run converges and stays in S.
func TestConvergenceAfterCorruption(t *testing.T) {
	inst, err := New(Random(31, 7))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p := inst.Design.TolerantProgram()
	r := &sim.Runner{
		P: p, S: inst.Design.S,
		D:        daemon.NewRandom(99),
		MaxSteps: 100_000,
		StopAtS:  true,
	}
	rng := rand.New(rand.NewSource(5))
	batch := r.RunMany(100, rng, sim.RandomStates(inst.Design.Schema))
	if batch.ConvergenceRate() != 1 {
		t.Fatalf("convergence rate %.2f, want 1.0", batch.ConvergenceRate())
	}

	// Corrupting k nodes of a legitimate state must also recover.
	inj := &fault.CorruptGroups{Groups: inst.Groups, K: 5}
	batch = r.RunMany(100, rng, sim.CorruptedStates(inst.AllGreen(), inj))
	if batch.ConvergenceRate() != 1 {
		t.Fatalf("post-corruption convergence rate %.2f, want 1.0", batch.ConvergenceRate())
	}
}

// TestConvergenceUnderAdversarialDaemon exercises the unfair
// violation-maximizing daemon at a size beyond the model checker.
func TestConvergenceUnderAdversarialDaemon(t *testing.T) {
	inst, err := New(Binary(63))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var preds []*program.Predicate
	for _, c := range inst.Design.Set.Constraints {
		preds = append(preds, c.Pred)
	}
	r := &sim.Runner{
		P: inst.Design.TolerantProgram(), S: inst.Design.S,
		D:        daemon.NewAdversarial("max-violations", daemon.ViolationMetric(preds)),
		MaxSteps: 200_000,
		StopAtS:  true,
	}
	rng := rand.New(rand.NewSource(17))
	batch := r.RunMany(20, rng, sim.RandomStates(inst.Design.Schema))
	if batch.ConvergenceRate() != 1 {
		t.Fatalf("adversarial convergence rate %.2f, want 1.0", batch.ConvergenceRate())
	}
}

// TestFootprintsHonest audits all declared read/write sets, on which the
// projected theorem checking relies.
func TestFootprintsHonest(t *testing.T) {
	inst, err := New(Random(9, 2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(4))
	if err := inst.Design.TolerantProgram().Audit(rng, 100); err != nil {
		t.Error(err)
	}
	if err := inst.Combined.Audit(rng, 100); err != nil {
		t.Error(err)
	}
	for _, c := range inst.Design.Set.Constraints {
		if err := program.AuditPredicate(inst.Design.Schema, c.Pred, rng, 100); err != nil {
			t.Error(err)
		}
	}
}

// TestWorstStepsGrowWithDepth sanity-checks the convergence-cost trend the
// benchmarks measure: deeper trees take more worst-case steps.
func TestWorstStepsGrowWithDepth(t *testing.T) {
	worst := func(tr Tree) int {
		inst, err := New(tr)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		sp, err := inst.Design.Space(verify.Options{})
		if err != nil {
			t.Fatalf("Space: %v", err)
		}
		res := sp.CheckConvergence()
		if !res.Converges {
			t.Fatalf("not convergent")
		}
		return res.WorstSteps
	}
	shallow := worst(Star(6)) // depth 1
	deep := worst(Chain(6))   // depth 5
	if deep <= shallow {
		t.Errorf("worst steps: chain %d <= star %d; expected depth to dominate", deep, shallow)
	}
}

func TestNewRejectsInvalidTree(t *testing.T) {
	if _, err := New(Tree{Parent: []int{1, 0}}); err == nil {
		t.Error("New accepted an invalid tree")
	}
}
