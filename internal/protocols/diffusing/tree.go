// Package diffusing implements the paper's Section 5.1 worked design: a
// stabilizing diffusing computation on a finite rooted tree.
//
// Starting from a state where all nodes are green, the root initiates a
// diffusing computation; a red wave propagates to the leaves, is reflected
// back as a green wave, and the cycle repeats. The program tolerates faults
// that arbitrarily corrupt the state of any number of nodes: its fault-span
// is true and Theorem 1 (out-tree constraint graph) validates convergence.
package diffusing

import (
	"fmt"
	"math/rand"
)

// Tree is a finite rooted tree given by a parent vector: Parent[j] is the
// parent of node j, and the root r is the unique node with Parent[r] == r
// (the paper's convention "if j is the root then P.j is j").
type Tree struct {
	Parent []int
}

// N returns the number of nodes.
func (t Tree) N() int { return len(t.Parent) }

// Root returns the root node index. It panics on an invalid tree; call
// Validate first for untrusted input.
func (t Tree) Root() int {
	for j, p := range t.Parent {
		if p == j {
			return j
		}
	}
	panic("diffusing: tree has no root")
}

// Validate checks that the parent vector describes a rooted tree: exactly
// one self-parented root, all parents in range, and no cycles.
func (t Tree) Validate() error {
	n := t.N()
	if n == 0 {
		return fmt.Errorf("diffusing: empty tree")
	}
	root := -1
	for j, p := range t.Parent {
		if p < 0 || p >= n {
			return fmt.Errorf("diffusing: node %d has out-of-range parent %d", j, p)
		}
		if p == j {
			if root >= 0 {
				return fmt.Errorf("diffusing: nodes %d and %d are both self-parented", root, j)
			}
			root = j
		}
	}
	if root < 0 {
		return fmt.Errorf("diffusing: no root (no self-parented node)")
	}
	// Every node must reach the root by following parents.
	for j := range t.Parent {
		seen := 0
		for v := j; v != root; v = t.Parent[v] {
			seen++
			if seen > n {
				return fmt.Errorf("diffusing: parent cycle reachable from node %d", j)
			}
		}
	}
	return nil
}

// Children returns the children lists of every node.
func (t Tree) Children() [][]int {
	out := make([][]int, t.N())
	root := t.Root()
	for j, p := range t.Parent {
		if j != root {
			out[p] = append(out[p], j)
		}
	}
	return out
}

// Depth returns the maximum distance from the root to any node.
func (t Tree) Depth() int {
	root := t.Root()
	max := 0
	for j := range t.Parent {
		d := 0
		for v := j; v != root; v = t.Parent[v] {
			d++
		}
		if d > max {
			max = d
		}
	}
	return max
}

// Chain returns the path tree 0 -> 1 -> ... -> n-1 rooted at 0.
func Chain(n int) Tree {
	parent := make([]int, n)
	for j := 1; j < n; j++ {
		parent[j] = j - 1
	}
	return Tree{Parent: parent}
}

// Star returns the tree with root 0 and n-1 leaves.
func Star(n int) Tree {
	parent := make([]int, n)
	return Tree{Parent: parent}
}

// Binary returns the complete binary tree on n nodes rooted at 0 (node j's
// parent is (j-1)/2).
func Binary(n int) Tree {
	parent := make([]int, n)
	for j := 1; j < n; j++ {
		parent[j] = (j - 1) / 2
	}
	return Tree{Parent: parent}
}

// Random returns a random recursive tree on n nodes rooted at 0: node j
// attaches to a uniformly random earlier node.
func Random(n int, seed int64) Tree {
	rng := rand.New(rand.NewSource(seed))
	parent := make([]int, n)
	for j := 1; j < n; j++ {
		parent[j] = rng.Intn(j)
	}
	return Tree{Parent: parent}
}
