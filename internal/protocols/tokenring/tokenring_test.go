package tokenring

import (
	"context"
	"math/rand"
	"testing"

	"nonmask/internal/ctheory"
	"nonmask/internal/daemon"
	"nonmask/internal/program"
	"nonmask/internal/sim"
	"nonmask/internal/verify"
)

func TestNewPathRejectsBadParams(t *testing.T) {
	if _, err := NewPath(0, 4); err == nil {
		t.Error("NewPath(0, 4) succeeded")
	}
	if _, err := NewPath(3, 1); err == nil {
		t.Error("NewPath(3, 1) succeeded")
	}
}

func TestNewRingRejectsBadParams(t *testing.T) {
	if _, err := NewRing(0, 4); err == nil {
		t.Error("NewRing(0, 4) succeeded")
	}
	if _, err := NewRing(3, 1); err == nil {
		t.Error("NewRing(3, 1) succeeded")
	}
}

// TestPathTheorem3Validates reproduces the Section 7.1 design argument:
// the two-layer partition satisfies Theorem 3 (per-layer path graphs are
// self-looping; closure and higher-layer actions preserve lower layers
// while each layer's target is open).
func TestPathTheorem3Validates(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{2, 3}, {3, 4}, {4, 5}} {
		inst, err := NewPath(tc.n, tc.k)
		if err != nil {
			t.Fatalf("NewPath: %v", err)
		}
		r, all, err := inst.Design.Validate(verify.Exhaustive, verify.Options{})
		if err != nil {
			t.Fatalf("Validate: %v", err)
		}
		if r == nil {
			for _, rep := range all {
				t.Logf("%s", rep)
			}
			t.Fatalf("N=%d K=%d: no theorem applies", tc.n, tc.k)
		}
		if r.Theorem != ctheory.Theorem3 {
			t.Errorf("N=%d K=%d: validated by %v, want Theorem 3", tc.n, tc.k, r.Theorem)
		}
		if len(r.LayerGraphs) != 2 {
			t.Errorf("layer graphs = %d, want 2", len(r.LayerGraphs))
		}
	}
}

// TestPathStabilizes model-checks the ground truth: from every state the
// layered path program converges to S, under the arbitrary daemon.
func TestPathStabilizes(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{2, 3}, {3, 4}, {4, 4}, {4, 5}} {
		inst, err := NewPath(tc.n, tc.k)
		if err != nil {
			t.Fatalf("NewPath: %v", err)
		}
		res, err := inst.Design.Verify(verify.Options{})
		if err != nil {
			t.Fatalf("Verify: %v", err)
		}
		if res.Closure != nil {
			t.Fatalf("N=%d K=%d closure violated: %v", tc.n, tc.k, res.Closure)
		}
		if !res.Unfair.Converges {
			t.Fatalf("N=%d K=%d not stabilizing: %s", tc.n, tc.k, res.Unfair.Summary())
		}
		t.Logf("path N=%d K=%d: worst %d steps, mean %.2f",
			tc.n, tc.k, res.Unfair.WorstSteps, res.Unfair.MeanSteps)
	}
}

// TestPathSHasOnePrivilege checks the designed invariant's intent: in every
// S state, either all values are equal (node 0 privileged) or there is
// exactly one decrease (that node's successor privileged).
func TestPathSHasOnePrivilege(t *testing.T) {
	inst, err := NewPath(3, 4)
	if err != nil {
		t.Fatalf("NewPath: %v", err)
	}
	schema := inst.Design.Schema
	count, _ := schema.StateCount()
	inS := 0
	for i := int64(0); i < count; i++ {
		st := schema.StateAt(i)
		if !inst.Design.S.Holds(st) {
			continue
		}
		inS++
		decreases := 0
		for j := 0; j < inst.N; j++ {
			d := st.Get(inst.X[j]) - st.Get(inst.X[j+1])
			if d < 0 {
				t.Fatalf("S state %s has an increase", st)
			}
			if d > 0 {
				decreases++
				if d != 1 {
					t.Fatalf("S state %s decreases by %d", st, d)
				}
			}
		}
		if decreases > 1 {
			t.Fatalf("S state %s has %d decreases", st, decreases)
		}
	}
	if inS == 0 {
		t.Fatal("no S states found")
	}
}

// TestPathCombinedEquivalence verifies the paper's final combination step:
// the printed two-action program has the same transition relation as the
// design's separate closure + convergence actions.
func TestPathCombinedEquivalence(t *testing.T) {
	inst, err := NewPath(3, 3)
	if err != nil {
		t.Fatalf("NewPath: %v", err)
	}
	schema := inst.Design.Schema
	full := inst.Design.TolerantProgram()
	count, _ := schema.StateCount()
	for i := int64(0); i < count; i++ {
		st := schema.StateAt(i)
		a := successorSet(full, st, schema)
		b := successorSet(inst.Combined, st, schema)
		if !sameSet(a, b) {
			t.Fatalf("transition relations differ at %s", st)
		}
	}
}

func successorSet(p *program.Program, st *program.State, schema *program.Schema) map[int64]bool {
	out := map[int64]bool{}
	for _, a := range p.Actions {
		if a.Guard(st) {
			out[schema.Index(a.Apply(st))] = true
		}
	}
	return out
}

func sameSet(a, b map[int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestRingAtLeastOnePrivilege checks the pigeonhole property: every state
// of the ring has at least one privileged node.
func TestRingAtLeastOnePrivilege(t *testing.T) {
	inst, err := NewRing(3, 3)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	schema := inst.P.Schema
	count, _ := schema.StateCount()
	for i := int64(0); i < count; i++ {
		st := schema.StateAt(i)
		if inst.PrivilegeCount(st) < 1 {
			t.Fatalf("state %s has no privilege", st)
		}
	}
}

// TestRingStabilizesForLargeK model-checks Dijkstra's guarantee: with
// K >= N+1 (K at least the node count), the ring converges to exactly one
// privilege from every state, under the arbitrary daemon, and S is closed.
func TestRingStabilizesForLargeK(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{2, 3}, {2, 4}, {3, 4}, {4, 5}} {
		inst, err := NewRing(tc.n, tc.k)
		if err != nil {
			t.Fatalf("NewRing: %v", err)
		}
		sp, err := verify.NewSpaceContext(context.Background(), inst.P, inst.S, program.True(), verify.Options{})
		if err != nil {
			t.Fatalf("NewSpace: %v", err)
		}
		if v := sp.CheckClosed(inst.S, nil); v != nil {
			t.Fatalf("N=%d K=%d: S not closed: %v", tc.n, tc.k, v)
		}
		res := sp.CheckConvergence()
		if !res.Converges {
			t.Fatalf("N=%d K=%d: not stabilizing: %s", tc.n, tc.k, res.Summary())
		}
		t.Logf("ring N=%d K=%d: worst %d steps, mean %.2f",
			tc.n, tc.k, res.WorstSteps, res.MeanSteps)
	}
}

// TestRingSmallKFails demonstrates the K bound: with K = 2 and at least 4
// nodes the ring admits an execution that never reaches a single-privilege
// state.
func TestRingSmallKFails(t *testing.T) {
	inst, err := NewRing(3, 2) // 4 nodes, K=2
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	sp, err := verify.NewSpaceContext(context.Background(), inst.P, inst.S, program.True(), verify.Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	res := sp.CheckConvergence()
	if res.Converges {
		t.Fatal("N=3 K=2 ring reported stabilizing; expected a livelock")
	}
	if len(res.Cycle) == 0 {
		t.Errorf("no cycle witness: %s", res.Summary())
	}
}

// TestRingTokenCirculates checks the service property in the legitimate
// states: the privilege passes around the ring in order, visiting every
// node.
func TestRingTokenCirculates(t *testing.T) {
	inst, err := NewRing(4, 6)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	visited := make(map[int]int)
	r := &sim.Runner{
		P: inst.P, S: inst.S,
		D:        daemon.NewRoundRobin(inst.P),
		MaxSteps: 300,
		OnStep: func(_ int, st *program.State, _ *program.Action) {
			if h := inst.PrivilegeHolder(st); h >= 0 {
				visited[h]++
			}
		},
	}
	res := r.Run(inst.AllZero(), nil)
	if res.Deadlocked {
		t.Fatalf("ring deadlocked: %s", res)
	}
	for j := 0; j <= inst.N; j++ {
		if visited[j] < 5 {
			t.Errorf("node %d held the privilege %d times in 300 steps", j, visited[j])
		}
	}
}

// TestRingExactlyOnePrivilegeInSuffix: after stabilization from a corrupt
// state, every subsequent state has exactly one privilege (spec (i)), and
// privileges rotate (spec (ii)).
func TestRingExactlyOnePrivilegeInSuffix(t *testing.T) {
	inst, err := NewRing(6, 8)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		st := program.RandomState(inst.P.Schema, rng)
		r := &sim.Runner{
			P: inst.P, S: inst.S,
			D:        daemon.NewRandom(int64(trial)),
			MaxSteps: 5000,
			StopAtS:  true,
		}
		res := r.Run(st, rng)
		if !res.Converged {
			t.Fatalf("trial %d did not converge", trial)
		}
		// Continue from the converged state: exactly one privilege forever.
		cont := &sim.Runner{
			P: inst.P, S: inst.S,
			D:        daemon.NewRandom(int64(trial) + 1000),
			MaxSteps: 500,
			OnStep: func(_ int, st *program.State, _ *program.Action) {
				if c := inst.PrivilegeCount(st); c != 1 {
					t.Fatalf("trial %d: %d privileges after convergence", trial, c)
				}
			},
		}
		cont.Run(res.Final, rng)
	}
}

// TestRingConvergenceUnderAdversary drives a large ring (beyond the model
// checker) with the violation-maximizing unfair daemon.
func TestRingConvergenceUnderAdversary(t *testing.T) {
	inst, err := NewRing(63, 65)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	metric := func(st *program.State) float64 {
		return float64(inst.PrivilegeCount(st))
	}
	r := &sim.Runner{
		P: inst.P, S: inst.S,
		D:        daemon.NewAdversarial("max-privileges", metric),
		MaxSteps: 500_000,
		StopAtS:  true,
	}
	rng := rand.New(rand.NewSource(8))
	batch := r.RunMany(10, rng, sim.RandomStates(inst.P.Schema))
	if batch.ConvergenceRate() != 1 {
		t.Fatalf("adversarial convergence rate = %.2f", batch.ConvergenceRate())
	}
}

func TestFootprintsHonest(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pathInst, err := NewPath(4, 5)
	if err != nil {
		t.Fatalf("NewPath: %v", err)
	}
	if err := pathInst.Design.TolerantProgram().Audit(rng, 100); err != nil {
		t.Error(err)
	}
	if err := pathInst.Combined.Audit(rng, 100); err != nil {
		t.Error(err)
	}
	ringInst, err := NewRing(4, 5)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	if err := ringInst.P.Audit(rng, 100); err != nil {
		t.Error(err)
	}
}

// TestRingCirculationProved verifies the paper's spec (ii) — "each
// privileged node eventually yields its privilege to its successor in the
// ring" — exactly, with the leads-to checker: within S, Privileged(j)
// leads to Privileged(j+1), for every j, under the arbitrary daemon.
func TestRingCirculationProved(t *testing.T) {
	inst, err := NewRing(3, 5)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	// Region = S (after stabilization); closure of S is checked elsewhere.
	sp, err := verify.NewSpaceContext(context.Background(), inst.P, inst.S, inst.S, verify.Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	for j := 0; j <= inst.N; j++ {
		j := j
		next := (j + 1) % (inst.N + 1)
		pj := program.NewPredicate("priv j", inst.X,
			func(st *program.State) bool { return inst.Privileged(st, j) })
		pn := program.NewPredicate("priv j+1", inst.X,
			func(st *program.State) bool { return inst.Privileged(st, next) })
		res := sp.LeadsTo(pj, pn, false)
		if !res.Holds {
			t.Errorf("privilege does not pass from %d to %d: stuck at %v", j, next, res.Stuck)
		}
	}
}
