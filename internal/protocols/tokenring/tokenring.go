// Package tokenring implements the paper's Section 7.1 worked design: a
// stabilizing token-passing program for a ring of N+1 nodes, due to
// Dijkstra. Two faithful variants are provided.
//
// # Path variant (the paper's design formulation)
//
// The paper designs over a path 0..N with integer values x.j and invariant
//
//	S = (forall j : x.j >= x.(j+1)) and (x.0 = x.N or x.0 = x.N + 1)
//
// partitioned into two layers: the first conjunct's constraints
// x.j >= x.(j+1) (layer 0) and the helper constraints x.j = x.(j+1)
// (layer 1) that establish the second conjunct. Theorem 3 validates the
// design. The paper's integers are unbounded; this variant bounds them at
// 0..K-1 and saturates node 0's increment at the top, which preserves the
// layered convergence argument (documented in DESIGN.md).
//
// # Ring variant (the paper's printed program, mod-K)
//
// The classic K-state machine: node 0 increments modulo K when x.0 = x.N;
// node j copies its predecessor when x.j != x.(j-1). Node 0 is privileged
// when x.0 = x.N; node j when x.j != x.(j-1). The invariant is "exactly one
// node is privileged". Stabilization requires K large enough relative to N
// (experiment E8 finds the crossover exactly).
package tokenring

import (
	"fmt"

	"nonmask/internal/core"
	"nonmask/internal/program"
)

// PathInstance is the layered Section 7.1 design over bounded counters.
type PathInstance struct {
	// N is the highest node index (N+1 nodes, 0..N).
	N int
	// K is the counter domain size (values 0..K-1).
	K      int
	Design *core.Design
	// X holds the per-node counter variable IDs.
	X []program.VarID
	// Combined is the paper's printed program: node 0's increment plus the
	// merged closure/convergence copy action
	// "x.j != x.(j+1) -> x.(j+1) := x.j".
	Combined *program.Program
}

// NewPath builds the path variant. n is the highest node index (the paper's
// N); k is the counter domain size, k >= 2.
func NewPath(n, k int) (*PathInstance, error) {
	if n < 1 {
		return nil, fmt.Errorf("tokenring: need N >= 1, got %d", n)
	}
	if k < 2 {
		return nil, fmt.Errorf("tokenring: need K >= 2, got %d", k)
	}
	b := core.NewDesign(fmt.Sprintf("tokenring-path(N=%d,K=%d)", n, k))
	s := b.Schema()
	x := make([]program.VarID, n+1)
	for j := 0; j <= n; j++ {
		x[j] = s.MustDeclare(fmt.Sprintf("x[%d]", j), program.IntRange(0, int32(k-1)))
	}
	inst := &PathInstance{N: n, K: k, X: x}
	top := int32(k - 1)

	// Closure action of node 0: "x.0 = x.N -> x.0 := x.0 + 1", saturating
	// at the bounded domain's top.
	x0, xN := x[0], x[n]
	inc := program.NewAction("increment(0)", program.Closure,
		[]program.VarID{x0, xN}, []program.VarID{x0},
		func(st *program.State) bool {
			return st.Get(x0) == st.Get(xN) && st.Get(x0) < top
		},
		func(st *program.State) { st.Set(x0, st.Get(x0)+1) })
	b.Closure(inc)

	// Layer 0: constraints x.j >= x.(j+1) with convergence actions
	// "x.j < x.(j+1) -> x.(j+1) := x.j".
	// Layer 1: helper constraints x.j = x.(j+1) with convergence actions
	// "x.j > x.(j+1) -> x.(j+1) := x.j"; the layer's target is the second
	// conjunct of S, "x.0 = x.N or x.0 = x.N + 1".
	for j := 0; j < n; j++ {
		xj, xj1 := x[j], x[j+1]
		ge := program.NewPredicate(fmt.Sprintf("x[%d] >= x[%d]", j, j+1),
			[]program.VarID{xj, xj1},
			func(st *program.State) bool { return st.Get(xj) >= st.Get(xj1) })
		fixGE := program.NewAction(fmt.Sprintf("raise(%d)", j+1), program.Convergence,
			[]program.VarID{xj, xj1}, []program.VarID{xj1},
			func(st *program.State) bool { return st.Get(xj) < st.Get(xj1) },
			func(st *program.State) { st.Set(xj1, st.Get(xj)) })
		b.Constraint(0, ge, fixGE)

		eq := program.NewPredicate(fmt.Sprintf("x[%d] = x[%d]", j, j+1),
			[]program.VarID{xj, xj1},
			func(st *program.State) bool { return st.Get(xj) == st.Get(xj1) })
		fixEQ := program.NewAction(fmt.Sprintf("copy(%d)", j+1), program.Convergence,
			[]program.VarID{xj, xj1}, []program.VarID{xj1},
			func(st *program.State) bool { return st.Get(xj) > st.Get(xj1) },
			func(st *program.State) { st.Set(xj1, st.Get(xj)) })
		b.Constraint(1, eq, fixEQ)
	}
	// The second conjunct of S that layer 1 establishes.
	second := program.NewPredicate("x[0] = x[N] or x[0] = x[N]+1",
		[]program.VarID{x0, xN},
		func(st *program.State) bool {
			return st.Get(x0) == st.Get(xN) || st.Get(x0) == st.Get(xN)+1
		})
	b.Target(1, second)

	d, err := b.Build()
	if err != nil {
		return nil, err
	}
	inst.Design = d

	// The printed program: raise and copy merge into
	// "x.j != x.(j+1) -> x.(j+1) := x.j".
	p := program.New(d.Name+"/combined", d.Schema)
	p.Add(inc)
	for j := 0; j < n; j++ {
		xj, xj1 := x[j], x[j+1]
		p.Add(program.NewAction(fmt.Sprintf("pass(%d)", j+1), program.Closure,
			[]program.VarID{xj, xj1}, []program.VarID{xj1},
			func(st *program.State) bool { return st.Get(xj) != st.Get(xj1) },
			func(st *program.State) { st.Set(xj1, st.Get(xj)) }))
	}
	inst.Combined = p
	return inst, nil
}

// AllZero returns the legitimate state with every counter zero.
func (inst *PathInstance) AllZero() *program.State {
	return inst.Design.Schema.NewState()
}

// RingInstance is Dijkstra's K-state token ring.
type RingInstance struct {
	// N is the highest node index (N+1 nodes, 0..N).
	N int
	// K is the number of counter states.
	K int
	// P is the ring program (all actions are closure actions: the ring is
	// "self-stabilizing as printed" — its convergence actions coincide with
	// its closure actions, as the paper's combined form shows).
	P *program.Program
	// S holds exactly when exactly one node is privileged.
	S *program.Predicate
	// X holds the per-node counter variable IDs.
	X []program.VarID
	// Groups lists each node's variables for per-node fault injection.
	Groups [][]program.VarID
}

// NewRing builds the mod-K ring on n+1 nodes with counter domain 0..k-1.
func NewRing(n, k int) (*RingInstance, error) {
	if n < 1 {
		return nil, fmt.Errorf("tokenring: need N >= 1, got %d", n)
	}
	if k < 2 {
		return nil, fmt.Errorf("tokenring: need K >= 2, got %d", k)
	}
	s := program.NewSchema()
	x := make([]program.VarID, n+1)
	groups := make([][]program.VarID, n+1)
	for j := 0; j <= n; j++ {
		x[j] = s.MustDeclare(fmt.Sprintf("x[%d]", j), program.IntRange(0, int32(k-1)))
		groups[j] = []program.VarID{x[j]}
	}
	p := program.New(fmt.Sprintf("tokenring-ring(N=%d,K=%d)", n, k), s)
	x0, xN := x[0], x[n]
	kk := int32(k)
	p.Add(program.NewAction("advance(0)", program.Closure,
		[]program.VarID{x0, xN}, []program.VarID{x0},
		func(st *program.State) bool { return st.Get(x0) == st.Get(xN) },
		func(st *program.State) { st.Set(x0, (st.Get(x0)+1)%kk) }))
	for j := 1; j <= n; j++ {
		xj, xp := x[j], x[j-1]
		p.Add(program.NewAction(fmt.Sprintf("copy(%d)", j), program.Closure,
			[]program.VarID{xj, xp}, []program.VarID{xj},
			func(st *program.State) bool { return st.Get(xj) != st.Get(xp) },
			func(st *program.State) { st.Set(xj, st.Get(xp)) }))
	}
	inst := &RingInstance{N: n, K: k, P: p, X: x, Groups: groups}
	inst.S = program.NewPredicate("exactly one privilege", x,
		func(st *program.State) bool { return inst.PrivilegeCount(st) == 1 })
	return inst, nil
}

// Privileged reports whether node j holds the privilege at st: node 0 when
// x.0 = x.N, node j > 0 when x.j != x.(j-1).
func (inst *RingInstance) Privileged(st *program.State, j int) bool {
	if j == 0 {
		return st.Get(inst.X[0]) == st.Get(inst.X[inst.N])
	}
	return st.Get(inst.X[j]) != st.Get(inst.X[j-1])
}

// PrivilegeCount returns the number of privileged nodes at st. It is at
// least 1 in every state — the classic pigeonhole argument — which the
// tests confirm.
func (inst *RingInstance) PrivilegeCount(st *program.State) int {
	n := 0
	for j := 0; j <= inst.N; j++ {
		if inst.Privileged(st, j) {
			n++
		}
	}
	return n
}

// PrivilegeHolder returns the privileged node when exactly one exists,
// else -1.
func (inst *RingInstance) PrivilegeHolder(st *program.State) int {
	holder := -1
	for j := 0; j <= inst.N; j++ {
		if inst.Privileged(st, j) {
			if holder >= 0 {
				return -1
			}
			holder = j
		}
	}
	return holder
}

// AllZero returns the legitimate state with every counter zero (node 0
// privileged).
func (inst *RingInstance) AllZero() *program.State {
	return inst.P.Schema.NewState()
}
