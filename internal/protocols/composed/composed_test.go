package composed

import (
	"context"
	"math/rand"
	"testing"

	"nonmask/internal/daemon"
	"nonmask/internal/program"
	"nonmask/internal/protocols/spanningtree"
	"nonmask/internal/sim"
	"nonmask/internal/verify"
)

func mustNew(t *testing.T, g spanningtree.Graph) *Instance {
	t.Helper()
	inst, err := New(g)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return inst
}

func mustSpace(t *testing.T, inst *Instance) *verify.Space {
	t.Helper()
	sp, err := verify.NewSpaceContext(context.Background(), inst.P, inst.S, program.True(), verify.Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	return sp
}

func TestCorrectStateSatisfiesS(t *testing.T) {
	for _, g := range []spanningtree.Graph{
		spanningtree.Line(3), spanningtree.Ring(4), spanningtree.Complete(3),
	} {
		inst := mustNew(t, g)
		st := inst.Correct()
		if !inst.TreeOK.Holds(st) {
			t.Errorf("Correct() violates TreeOK: %s", st)
		}
		if !inst.S.Holds(st) {
			t.Errorf("Correct() violates S: %s", st)
		}
	}
}

func TestSIsClosed(t *testing.T) {
	inst := mustNew(t, spanningtree.Line(3))
	sp := mustSpace(t, inst)
	if v := sp.CheckClosed(inst.S, nil); v != nil {
		t.Errorf("S not closed: %v", v)
	}
	if v := sp.CheckClosed(inst.TreeOK, nil); v != nil {
		t.Errorf("TreeOK not closed: %v", v)
	}
}

// TestFairnessRequired is the composition's headline: unlike the paper's
// single-layer designs (Section 8: fairness unnecessary), the wave over a
// dynamic tree converges ONLY under the weakly fair daemon. The checker
// exhibits an unfair livelock — the root's wave cycling while a detached
// corrupted region never repairs — and proves fair convergence.
func TestFairnessRequired(t *testing.T) {
	inst := mustNew(t, spanningtree.Line(3))
	sp := mustSpace(t, inst)

	unfair := sp.CheckConvergence()
	if unfair.Converges {
		t.Fatal("composed protocol converges under the arbitrary daemon; expected a wave-spin livelock")
	}
	if len(unfair.Cycle) == 0 {
		t.Fatalf("no livelock witness: %s", unfair.Summary())
	}
	// The witness cycle must keep the tree variables fixed (only wave
	// actions spin) and the tree broken.
	first := unfair.Cycle[0]
	for _, st := range unfair.Cycle {
		if inst.TreeOK.Holds(st) {
			t.Errorf("livelock state has a correct tree: %s", st)
		}
		for _, dv := range inst.D {
			if st.Get(dv) != first.Get(dv) {
				t.Errorf("tree variables change along the wave livelock")
			}
		}
	}

	fair := sp.CheckFairConvergence()
	if !fair.Converges {
		t.Fatalf("composed protocol does not converge under the fair daemon: %s", fair.Summary())
	}
}

// TestStairVerifies checks the Gouda–Multari stair the paper's Section 7
// describes: true -> tree-correct -> S, each stage closed and (fairly)
// convergent.
func TestStairVerifies(t *testing.T) {
	inst := mustNew(t, spanningtree.Line(3))
	sp := mustSpace(t, inst)
	res := sp.CheckStair([]*program.Predicate{inst.TreeOK}, true)
	if !res.OK {
		for _, s := range res.Steps {
			t.Logf("step %s -> %s: closed=%v conv=%v %s", s.From, s.To, s.Closed, s.Converges, s.Detail)
		}
		t.Fatal("stair rejected")
	}
	if len(res.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(res.Steps))
	}
}

// TestStairSecondStageUnfair: once the tree is correct (the stair's second
// stage), the wave converges even unfairly — recovering the paper's
// fixed-tree result within the composition.
func TestStairSecondStageUnfair(t *testing.T) {
	inst := mustNew(t, spanningtree.Line(3))
	sp, err := verify.NewSpaceContext(context.Background(), inst.P, inst.S, inst.TreeOK, verify.Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	res := sp.CheckConvergence()
	if !res.Converges {
		t.Fatalf("wave over the stabilized tree does not converge unfairly: %s", res.Summary())
	}
}

// TestConvergesAtScale runs the composition on graphs beyond enumeration
// under a fair daemon.
func TestConvergesAtScale(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    spanningtree.Graph
	}{
		{"grid4x4", spanningtree.Grid(4, 4)},
		{"ring16", spanningtree.Ring(16)},
		{"complete8", spanningtree.Complete(8)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inst := mustNew(t, tc.g)
			r := &sim.Runner{
				P: inst.P, S: inst.S,
				D:        daemon.NewRoundRobin(inst.P),
				MaxSteps: 500_000,
				StopAtS:  true,
			}
			rng := rand.New(rand.NewSource(5))
			batch := r.RunMany(25, rng, sim.RandomStates(inst.P.Schema))
			if batch.ConvergenceRate() != 1 {
				t.Fatalf("convergence rate = %.2f", batch.ConvergenceRate())
			}
		})
	}
}

// TestWaveKeepsRunningInS: after stabilization the wave must keep cycling
// (liveness of the service), staying within S.
func TestWaveKeepsRunningInS(t *testing.T) {
	inst := mustNew(t, spanningtree.Grid(3, 3))
	left := 0
	r := &sim.Runner{
		P: inst.P, S: inst.S,
		D:        daemon.NewRoundRobin(inst.P),
		MaxSteps: 5000,
		OnStep: func(_ int, st *program.State, _ *program.Action) {
			if !inst.S.Holds(st) {
				left++
			}
		},
	}
	res := r.Run(inst.Correct(), nil)
	if left != 0 {
		t.Errorf("left S %d times from a correct start", left)
	}
	if res.Deadlocked {
		t.Error("wave deadlocked")
	}
	if res.TotalSteps != 5000 {
		t.Errorf("wave stopped after %d steps", res.TotalSteps)
	}
}

func TestFootprintsHonest(t *testing.T) {
	inst := mustNew(t, spanningtree.Ring(5))
	rng := rand.New(rand.NewSource(6))
	if err := inst.P.Audit(rng, 120); err != nil {
		t.Error(err)
	}
}
