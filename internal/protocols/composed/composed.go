// Package composed layers the Section 5.1 diffusing wave over the
// self-stabilizing spanning tree, yielding a wave protocol for arbitrary
// connected graphs — the composition the paper's concluding remarks point
// to ("we present a refinement of this system... We study refinement
// issues in a companion paper") and the heart of the authors' distributed
// reset.
//
// Layer 0 builds/maintains a BFS spanning tree (d.j, p.j per node); layer
// 1 runs the diffusing wave (c.j, sn.j) over the *current* parent
// pointers. Convergence is a stair (Section 7, Gouda & Multari): first the
// tree stabilizes, then the wave does.
//
// The composition exposes a subtlety the paper's single-layer designs
// avoid. Section 8 remarks that the paper's programs converge without
// fairness, and E3/E7 confirm it: on a FIXED tree, a violated constraint
// eventually blocks the wave (the broken node sits on the wave's path), so
// wave actions cannot cycle outside S. Here the wave runs over the
// CURRENT pointers, and a corrupted region that is detached from the
// root's pointer structure never blocks it: the root's wave cycles
// forever, legitimately, while the detached region stays broken. An
// unfair daemon can therefore starve the tree's convergence actions and
// prevent stabilization — the weakly fair daemon of the paper's Section 2
// computation model becomes genuinely necessary. The model checker
// demonstrates both facts exactly (see the package tests and experiment
// X1): arbitrary-daemon convergence fails with a concrete wave-spin
// witness, weakly-fair convergence holds, and the convergence stair
// true -> tree-correct -> S verifies stage by stage under fairness.
package composed

import (
	"fmt"

	"nonmask/internal/program"
	"nonmask/internal/protocols/spanningtree"
)

// Colors of the wave layer.
const (
	Green int32 = 0
	Red   int32 = 1
)

// Instance is one composed tree+wave protocol.
type Instance struct {
	Graph spanningtree.Graph
	// P is the full program: tree convergence actions plus wave actions.
	P *program.Program
	// TreeOK holds when every tree constraint holds (the stair's middle).
	TreeOK *program.Predicate
	// S holds when the tree is correct and every wave constraint holds.
	S *program.Predicate
	// D, Par are the tree layer's variables; C, Sn the wave layer's.
	D, Par, C, Sn []program.VarID
	// Groups lists each node's variables for fault injection.
	Groups [][]program.VarID
}

// New builds the composition for a connected graph (root 0).
func New(g spanningtree.Graph) (*Instance, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.N()
	maxD := int32(n)
	s := program.NewSchema()
	d := make([]program.VarID, n)
	par := make([]program.VarID, n)
	c := make([]program.VarID, n)
	sn := make([]program.VarID, n)
	groups := make([][]program.VarID, n)
	colors := program.Enum("green", "red")
	for j := 0; j < n; j++ {
		d[j] = s.MustDeclare(fmt.Sprintf("d[%d]", j), program.IntRange(0, maxD))
		deg := len(g.Adj[j])
		if j == 0 || deg == 0 {
			deg = 1
		}
		par[j] = s.MustDeclare(fmt.Sprintf("p[%d]", j), program.IntRange(0, int32(deg-1)))
		c[j] = s.MustDeclare(fmt.Sprintf("c[%d]", j), colors)
		sn[j] = s.MustDeclare(fmt.Sprintf("sn[%d]", j), program.Bool())
		groups[j] = []program.VarID{d[j], par[j], c[j], sn[j]}
	}
	inst := &Instance{Graph: g, D: d, Par: par, C: c, Sn: sn, Groups: groups}

	p := program.New(fmt.Sprintf("composed(n=%d)", n), s)

	// --- layer 0: the spanning tree (as in internal/protocols/spanningtree).
	treeLocal := make([]*program.Predicate, n) // per-node tree constraint
	treeLocal[0] = program.NewPredicate("tree[0]", []program.VarID{d[0]},
		func(st *program.State) bool { return st.Get(d[0]) == 0 })
	p.Add(program.NewAction("fix-root", program.Convergence,
		[]program.VarID{d[0]}, []program.VarID{d[0], par[0]},
		func(st *program.State) bool { return st.Get(d[0]) != 0 },
		func(st *program.State) {
			st.Set(d[0], 0)
			st.Set(par[0], 0)
		}))
	for j := 1; j < n; j++ {
		j := j
		nbrs := g.Adj[j]
		minNbr := func(st *program.State) (int32, int) {
			best := st.Get(d[nbrs[0]])
			arg := 0
			for i := 1; i < len(nbrs); i++ {
				if v := st.Get(d[nbrs[i]]); v < best {
					best = v
					arg = i
				}
			}
			return best, arg
		}
		reads := []program.VarID{d[j], par[j]}
		for _, k := range nbrs {
			reads = append(reads, d[k])
		}
		ok := func(st *program.State) bool {
			m, _ := minNbr(st)
			dj := m + 1
			if dj > maxD {
				dj = maxD
			}
			return st.Get(d[j]) == dj && st.Get(d[nbrs[st.Get(par[j])]]) == m
		}
		treeLocal[j] = program.NewPredicate(fmt.Sprintf("tree[%d]", j), reads, ok)
		p.Add(program.NewAction(fmt.Sprintf("recompute(%d)", j), program.Convergence,
			reads, []program.VarID{d[j], par[j]},
			func(st *program.State) bool { return !ok(st) },
			func(st *program.State) {
				m, arg := minNbr(st)
				dj := m + 1
				if dj > maxD {
					dj = maxD
				}
				st.Set(d[j], dj)
				st.Set(par[j], int32(arg))
			}))
	}

	// --- layer 1: the wave over the current pointers.
	// parentOf returns the node j's pointer currently selects.
	parentOf := func(st *program.State, j int) int {
		if j == 0 {
			return 0
		}
		return g.Adj[j][st.Get(par[j])]
	}
	// Root wave actions.
	p.Add(program.NewAction("initiate(0)", program.Closure,
		[]program.VarID{c[0], sn[0]}, []program.VarID{c[0], sn[0]},
		func(st *program.State) bool { return st.Get(c[0]) == Green },
		func(st *program.State) {
			st.Set(c[0], Red)
			st.SetBool(sn[0], !st.Bool(sn[0]))
		}))
	for j := 0; j < n; j++ {
		j := j
		nbrs := g.Adj[j]
		// Wave copy for non-root: fires when the (dynamic) parent's wave
		// state demands it; reads every neighbor (the pointer may select
		// any of them) plus p.j.
		if j != 0 {
			reads := []program.VarID{c[j], sn[j], par[j]}
			for _, k := range nbrs {
				reads = append(reads, c[k], sn[k])
			}
			p.Add(program.NewAction(fmt.Sprintf("copy(%d)", j), program.Closure,
				reads, []program.VarID{c[j], sn[j]},
				func(st *program.State) bool {
					pj := parentOf(st, j)
					if st.Bool(sn[j]) != st.Bool(sn[pj]) {
						return true
					}
					return st.Get(c[j]) == Red && st.Get(c[pj]) == Green
				},
				func(st *program.State) {
					pj := parentOf(st, j)
					st.Set(c[j], st.Get(c[pj]))
					st.SetBool(sn[j], st.Bool(sn[pj]))
				}))
		}
		// Reflect: all nodes whose pointer selects j must be green with
		// matching session; reads all neighbors' wave AND pointer state.
		reads := []program.VarID{c[j], sn[j]}
		for _, k := range nbrs {
			reads = append(reads, c[k], sn[k])
			if k != 0 {
				reads = append(reads, par[k])
			}
		}
		reads = program.SortVarIDs(reads)
		p.Add(program.NewAction(fmt.Sprintf("reflect(%d)", j), program.Closure,
			reads, []program.VarID{c[j]},
			func(st *program.State) bool {
				if st.Get(c[j]) != Red {
					return false
				}
				for _, k := range nbrs {
					if k == 0 {
						continue // the root never points at a child
					}
					if parentOf(st, k) != j {
						continue
					}
					if st.Get(c[k]) != Green || st.Bool(sn[k]) != st.Bool(sn[j]) {
						return false
					}
				}
				return true
			},
			func(st *program.State) { st.Set(c[j], Green) }))
	}
	inst.P = p

	inst.TreeOK = program.And("tree correct", treeLocal...)
	waveOK := program.NewPredicate("wave consistent", allVars(s),
		func(st *program.State) bool {
			for j := 1; j < n; j++ {
				pj := parentOf(st, j)
				if st.Get(c[j]) == st.Get(c[pj]) && st.Bool(sn[j]) == st.Bool(sn[pj]) {
					continue
				}
				if st.Get(c[j]) == Green && st.Get(c[pj]) == Red {
					continue
				}
				return false
			}
			return true
		})
	inst.S = program.And("S(composed)", inst.TreeOK, waveOK)
	return inst, nil
}

func allVars(s *program.Schema) []program.VarID {
	out := make([]program.VarID, s.Len())
	for i := range out {
		out[i] = program.VarID(i)
	}
	return out
}

// Correct returns a legitimate state: the BFS tree with all-green wave.
func (inst *Instance) Correct() *program.State {
	st := inst.P.Schema.NewState()
	dist := inst.Graph.BFSDistances()
	for j := 0; j < inst.Graph.N(); j++ {
		st.Set(inst.D[j], int32(dist[j]))
		if j > 0 {
			for i, k := range inst.Graph.Adj[j] {
				if dist[k] == dist[j]-1 {
					st.Set(inst.Par[j], int32(i))
					break
				}
			}
		}
		st.Set(inst.C[j], Green)
		st.SetBool(inst.Sn[j], false)
	}
	return st
}
