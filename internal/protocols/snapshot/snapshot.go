// Package snapshot implements a global-state snapshot service on the
// diffusing computation — the first application the paper lists for
// diffusing computations in Section 5.1 ("applications of diffusing
// computations include, for example, global state snapshot...").
//
// Each node j holds an application value a.j that closure actions change
// freely, and a recording slot rec.j. The Section 5.1 wave is extended so
// that a node records its value the moment the red wave reaches it
// (rec.j := a.j at propagation; the root records at initiation). When the
// wave completes, {rec.j} is a snapshot: every value was recorded during
// one wave session.
//
// The service is nonmasking: after state corruption the wave machinery
// stabilizes (Theorem 1, inherited from the diffusing design), and every
// snapshot taken by a wave initiated after stabilization is a true
// cut — each rec.j equals the value a.j held at j's recording moment.
// Because values change only by local increments, tests can certify a
// snapshot's consistency: each recorded value must lie between the value
// at wave start and the value at wave completion.
package snapshot

import (
	"fmt"

	"nonmask/internal/core"
	"nonmask/internal/program"
	"nonmask/internal/protocols/diffusing"
)

// ValueSpace is the application values' domain size (values are counted
// modulo ValueSpace to keep the space finite and exhaustively checkable:
// a node contributes 2 x 2 x ValueSpace^2 states).
const ValueSpace = 4

// Instance is a snapshot design on one tree.
type Instance struct {
	Tree   diffusing.Tree
	Design *core.Design
	// C, Sn are the wave variables; A the application values; Rec the
	// recording slots.
	C, Sn, A, Rec []program.VarID
	// Groups lists each node's variables for fault injection.
	Groups [][]program.VarID
}

// New builds the design for the given tree.
func New(t diffusing.Tree) (*Instance, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := t.N()
	root := t.Root()
	children := t.Children()

	b := core.NewDesign(fmt.Sprintf("snapshot(n=%d)", n))
	s := b.Schema()
	colors := program.Enum("green", "red")
	c := make([]program.VarID, n)
	sn := make([]program.VarID, n)
	a := make([]program.VarID, n)
	rec := make([]program.VarID, n)
	groups := make([][]program.VarID, n)
	for j := 0; j < n; j++ {
		c[j] = s.MustDeclare(fmt.Sprintf("c[%d]", j), colors)
		sn[j] = s.MustDeclare(fmt.Sprintf("sn[%d]", j), program.Bool())
		a[j] = s.MustDeclare(fmt.Sprintf("a[%d]", j), program.IntRange(0, ValueSpace-1))
		rec[j] = s.MustDeclare(fmt.Sprintf("rec[%d]", j), program.IntRange(0, ValueSpace-1))
		groups[j] = []program.VarID{c[j], sn[j], a[j], rec[j]}
	}
	inst := &Instance{Tree: t, C: c, Sn: sn, A: a, Rec: rec, Groups: groups}

	// The application: every node increments its value freely.
	for j := 0; j < n; j++ {
		aj := a[j]
		b.Closure(program.NewAction(fmt.Sprintf("work(%d)", j), program.Closure,
			[]program.VarID{aj}, []program.VarID{aj},
			func(st *program.State) bool { return true },
			func(st *program.State) { st.Set(aj, (st.Get(aj)+1)%ValueSpace) }))
	}

	// The wave, recording on the red front.
	cR, snR, aR, recR := c[root], sn[root], a[root], rec[root]
	b.Closure(program.NewAction("initiate(root)", program.Closure,
		[]program.VarID{cR, snR, aR}, []program.VarID{cR, snR, recR},
		func(st *program.State) bool { return st.Get(cR) == diffusing.Green },
		func(st *program.State) {
			st.Set(cR, diffusing.Red)
			st.SetBool(snR, !st.Bool(snR))
			st.Set(recR, st.Get(aR))
		}))

	for j := 0; j < n; j++ {
		j := j
		pj := t.Parent[j]
		cj, snj, aj, recj := c[j], sn[j], a[j], rec[j]
		cp, snp := c[pj], sn[pj]

		if j != root {
			b.Closure(program.NewAction(fmt.Sprintf("propagate(%d)", j), program.Closure,
				[]program.VarID{cj, snj, aj, cp, snp}, []program.VarID{cj, snj, recj},
				func(st *program.State) bool {
					return st.Get(cj) == diffusing.Green && st.Get(cp) == diffusing.Red &&
						st.Bool(snj) != st.Bool(snp)
				},
				func(st *program.State) {
					st.Set(cj, st.Get(cp))
					st.SetBool(snj, st.Bool(snp))
					st.Set(recj, st.Get(aj))
				}))
		}

		kids := children[j]
		reads := []program.VarID{cj, snj}
		for _, k := range kids {
			reads = append(reads, c[k], sn[k])
		}
		b.Closure(program.NewAction(fmt.Sprintf("reflect(%d)", j), program.Closure,
			reads, []program.VarID{cj},
			func(st *program.State) bool {
				if st.Get(cj) != diffusing.Red {
					return false
				}
				for _, k := range kids {
					if st.Get(c[k]) != diffusing.Green || st.Bool(sn[k]) != st.Bool(snj) {
						return false
					}
				}
				return true
			},
			func(st *program.State) { st.Set(cj, diffusing.Green) }))

		if j != root {
			rj := program.NewPredicate(fmt.Sprintf("R[%d]", j),
				[]program.VarID{cj, snj, cp, snp},
				func(st *program.State) bool {
					if st.Get(cj) == st.Get(cp) && st.Bool(snj) == st.Bool(snp) {
						return true
					}
					return st.Get(cj) == diffusing.Green && st.Get(cp) == diffusing.Red
				})
			b.Constraint(0, rj, program.NewAction(
				fmt.Sprintf("establish-R(%d)", j), program.Convergence,
				[]program.VarID{cj, snj, cp, snp}, []program.VarID{cj, snj},
				func(st *program.State) bool { return !rj.Eval(st) },
				func(st *program.State) {
					st.Set(cj, st.Get(cp))
					st.SetBool(snj, st.Bool(snp))
				}))
		}
	}

	d, err := b.Build()
	if err != nil {
		return nil, err
	}
	inst.Design = d
	return inst, nil
}

// Initial returns the all-green state with zero values.
func (inst *Instance) Initial() *program.State {
	return inst.Design.Schema.NewState()
}

// Snapshot extracts the recorded values.
func (inst *Instance) Snapshot(st *program.State) []int32 {
	out := make([]int32, len(inst.Rec))
	for j, r := range inst.Rec {
		out[j] = st.Get(r)
	}
	return out
}

// Values extracts the live application values.
func (inst *Instance) Values(st *program.State) []int32 {
	out := make([]int32, len(inst.A))
	for j, av := range inst.A {
		out[j] = st.Get(av)
	}
	return out
}

// Collector observes a run and closes a snapshot at each wave completion
// (root red -> green transition), recording the values before wave start
// and at completion so tests can certify cut consistency.
type Collector struct {
	inst        *Instance
	root        int
	prevRootRed bool
	// atStart holds Values() at the most recent wave initiation.
	atStart []int32
	// Snapshots collects one entry per completed wave.
	Snapshots []CollectedSnapshot
}

// CollectedSnapshot is one completed wave's snapshot with its bracketing
// live values.
type CollectedSnapshot struct {
	// Before is each node's live value at wave initiation; After at wave
	// completion; Recorded is the snapshot itself.
	Before, After, Recorded []int32
}

// NewCollector returns a collector for the instance.
func NewCollector(inst *Instance) *Collector {
	return &Collector{inst: inst, root: inst.Tree.Root()}
}

// Observe processes one post-step state.
func (col *Collector) Observe(st *program.State) {
	rootRed := st.Get(col.inst.C[col.root]) == diffusing.Red
	if !col.prevRootRed && rootRed {
		col.atStart = col.inst.Values(st)
	}
	if col.prevRootRed && !rootRed && col.atStart != nil {
		col.Snapshots = append(col.Snapshots, CollectedSnapshot{
			Before:   col.atStart,
			After:    col.inst.Values(st),
			Recorded: col.inst.Snapshot(st),
		})
	}
	col.prevRootRed = rootRed
}
