package snapshot

import (
	"math/rand"
	"strings"
	"testing"

	"nonmask/internal/ctheory"
	"nonmask/internal/daemon"
	"nonmask/internal/program"
	"nonmask/internal/protocols/diffusing"
	"nonmask/internal/sim"
	"nonmask/internal/verify"
)

func mustNew(t *testing.T, tr diffusing.Tree) *Instance {
	t.Helper()
	inst, err := New(tr)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return inst
}

func TestTheorem1Validates(t *testing.T) {
	inst := mustNew(t, diffusing.Binary(6))
	r, _, err := inst.Design.Validate(verify.Projected, verify.Options{})
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if r == nil || r.Theorem != ctheory.Theorem1 {
		t.Fatalf("validated by %v, want Theorem 1", r)
	}
}

// TestStabilizesFairly: the snapshot machinery stabilizes under the weakly
// fair daemon. Unlike the bare diffusing computation (E3/E9), unfair
// convergence CANNOT hold here: the application's work actions are always
// enabled, so an unfair daemon may spin a node's counter forever while the
// wave constraints stay violated. The checker exhibits exactly that cycle.
// This mirrors internal/protocols/composed: the Section 8 "fairness is
// unnecessary" remark is a property of the paper's self-contained designs,
// not of compositions with free-running layers.
func TestStabilizesFairly(t *testing.T) {
	// a/rec enlarge the space (4x4 per node); keep trees tiny.
	for _, tr := range []diffusing.Tree{diffusing.Chain(3), diffusing.Star(3)} {
		inst := mustNew(t, tr)
		sp, err := inst.Design.Space(verify.Options{})
		if err != nil {
			t.Fatalf("Space: %v", err)
		}
		if v := sp.CheckClosure(); v != nil {
			t.Fatalf("closure violated: %v", v)
		}
		unfair := sp.CheckConvergence()
		if unfair.Converges {
			t.Fatal("snapshot converges unfairly; expected a work-spin livelock")
		}
		fair := sp.CheckFairConvergence()
		if !fair.Converges {
			t.Fatalf("not fairly stabilizing: %s", fair.Summary())
		}
	}
}

// TestSnapshotsRecordDuringWave certifies the service semantics: at every
// wave completion, each node's recorded value is exactly the value sampled
// when the red front reached that node during this wave.
func TestSnapshotsRecordDuringWave(t *testing.T) {
	inst := mustNew(t, diffusing.Binary(7))
	p := inst.Design.TolerantProgram()
	col := NewCollector(inst)

	sampled := make([]int32, inst.Tree.N())
	seen := make([]bool, inst.Tree.N())
	waveChecks := 0
	r := &sim.Runner{
		P: p, S: inst.Design.S,
		D:        daemon.NewRoundRobin(p),
		MaxSteps: 4000,
		OnStep: func(_ int, st *program.State, a *program.Action) {
			// Record the sampling moments.
			switch {
			case a.Name == "initiate(root)":
				sampled[0] = st.Get(inst.Rec[0])
				seen[0] = true
			case strings.HasPrefix(a.Name, "propagate("):
				var j int
				if _, err := sscanParen(a.Name, &j); err == nil {
					sampled[j] = st.Get(inst.Rec[j])
					seen[j] = true
				}
			}
			before := len(col.Snapshots)
			col.Observe(st)
			if len(col.Snapshots) > before {
				// Wave completed: the snapshot must equal the sampled
				// values, and every node must have been sampled.
				snap := col.Snapshots[len(col.Snapshots)-1]
				for j := range sampled {
					if !seen[j] {
						t.Fatalf("node %d never sampled during the wave", j)
					}
					if snap.Recorded[j] != sampled[j] {
						t.Fatalf("node %d recorded %d, sampled %d",
							j, snap.Recorded[j], sampled[j])
					}
					seen[j] = false
				}
				waveChecks++
			}
		},
	}
	r.Run(inst.Initial(), nil)
	if waveChecks < 3 {
		t.Fatalf("only %d completed waves in 4000 steps", waveChecks)
	}
}

// TestRecoversAndSnapshotsAfterCorruption: after corrupting everything,
// the machinery stabilizes and subsequent waves complete with full
// snapshots.
func TestRecoversAndSnapshotsAfterCorruption(t *testing.T) {
	inst := mustNew(t, diffusing.Random(9, 3))
	p := inst.Design.TolerantProgram()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		start := program.RandomState(inst.Design.Schema, rng)
		r := &sim.Runner{
			P: p, S: inst.Design.S,
			D:        daemon.NewRandom(int64(trial)),
			MaxSteps: 100_000,
			StopAtS:  true,
		}
		res := r.Run(start, rng)
		if !res.Converged {
			t.Fatalf("trial %d did not converge", trial)
		}
		// A fresh wave must complete from here.
		col := NewCollector(inst)
		cont := &sim.Runner{
			P: p, S: inst.Design.S,
			D:        daemon.NewRoundRobin(p),
			MaxSteps: 4000,
			OnStep:   func(_ int, st *program.State, _ *program.Action) { col.Observe(st) },
		}
		cont.Run(res.Final, rng)
		if len(col.Snapshots) == 0 {
			t.Fatalf("trial %d: no wave completed after stabilization", trial)
		}
	}
}

// sscanParen parses "name(j)" extracting j.
func sscanParen(s string, j *int) (int, error) {
	open := strings.IndexByte(s, '(')
	close := strings.IndexByte(s, ')')
	if open < 0 || close <= open {
		return 0, errNoIndex
	}
	n := 0
	for _, r := range s[open+1 : close] {
		if r < '0' || r > '9' {
			return 0, errNoIndex
		}
		n = n*10 + int(r-'0')
	}
	*j = n
	return 1, nil
}

var errNoIndex = &parseError{}

type parseError struct{}

func (*parseError) Error() string { return "no index" }

func TestFootprintsHonest(t *testing.T) {
	inst := mustNew(t, diffusing.Chain(4))
	rng := rand.New(rand.NewSource(4))
	if err := inst.Design.TolerantProgram().Audit(rng, 100); err != nil {
		t.Error(err)
	}
}
