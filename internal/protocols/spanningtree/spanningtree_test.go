package spanningtree

import (
	"math/rand"
	"testing"

	"nonmask/internal/daemon"
	"nonmask/internal/program"
	"nonmask/internal/sim"
	"nonmask/internal/verify"
)

func TestGraphConstructors(t *testing.T) {
	tests := []struct {
		name  string
		g     Graph
		edges int
	}{
		{"line4", Line(4), 3},
		{"ring5", Ring(5), 5},
		{"complete4", Complete(4), 6},
		{"grid2x3", Grid(2, 3), 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.g.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			m := 0
			for _, adj := range tt.g.Adj {
				m += len(adj)
			}
			if m != 2*tt.edges {
				t.Errorf("edge endpoints = %d, want %d", m, 2*tt.edges)
			}
		})
	}
}

func TestGraphValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		g    Graph
	}{
		{"empty", Graph{}},
		{"asymmetric", Graph{Adj: [][]int{{1}, {}}}},
		{"self-loop", Graph{Adj: [][]int{{0, 1}, {0}}}},
		{"out of range", Graph{Adj: [][]int{{5}}}},
		{"disconnected", Graph{Adj: [][]int{{1}, {0}, {3}, {2}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.g.Validate(); err == nil {
				t.Error("invalid graph passed Validate")
			}
		})
	}
}

func TestBFSDistances(t *testing.T) {
	g := Grid(2, 3)
	// Layout: 0 1 2 / 3 4 5 with root 0.
	want := []int{0, 1, 2, 1, 2, 3}
	got := g.BFSDistances()
	for j := range want {
		if got[j] != want[j] {
			t.Errorf("dist[%d] = %d, want %d", j, got[j], want[j])
		}
	}
}

// TestSCharacterizesBFS enumerates all states of small instances and checks
// that S holds exactly at states whose parent pointers encode correct BFS
// distances — the Bellman fixed point is unique.
func TestSCharacterizesBFS(t *testing.T) {
	for _, g := range []Graph{Line(3), Ring(4), Complete(3)} {
		inst, err := New(g)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		schema := inst.Design.Schema
		count, _ := schema.StateCount()
		inS := 0
		for i := int64(0); i < count; i++ {
			st := schema.StateAt(i)
			if inst.Design.S.Holds(st) {
				inS++
				if !inst.IsValidTree(st) {
					t.Fatalf("S state %s is not a valid BFS tree", st)
				}
			}
		}
		if inS == 0 {
			t.Fatal("no S states")
		}
		// The designated correct state must be one of them.
		if !inst.Design.S.Holds(inst.Correct()) {
			t.Error("Correct() does not satisfy S")
		}
	}
}

// TestStabilizes model-checks convergence from every state on small graphs
// under the arbitrary daemon.
func TestStabilizes(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    Graph
	}{
		{"line3", Line(3)},
		{"line4", Line(4)},
		{"ring4", Ring(4)},
		{"complete4", Complete(4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inst, err := New(tc.g)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			res, err := inst.Design.Verify(verify.Options{})
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if res.Closure != nil {
				t.Fatalf("closure violated: %v", res.Closure)
			}
			if !res.Unfair.Converges {
				t.Fatalf("not stabilizing: %s", res.Unfair.Summary())
			}
			t.Logf("%s: worst %d steps, mean %.2f",
				tc.name, res.Unfair.WorstSteps, res.Unfair.MeanSteps)
		})
	}
}

// TestNoTheoremApplies documents the structural fact discussed in the
// package comment: the constraint reads span more than two variable
// groups, so no Section 4 constraint graph exists and none of the paper's
// sufficient conditions applies — yet the protocol stabilizes (previous
// test), showing the conditions are sufficient, not necessary.
func TestNoTheoremApplies(t *testing.T) {
	inst, err := New(Complete(4))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r, all, err := inst.Design.Validate(verify.Projected, verify.Options{})
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if r != nil {
		t.Errorf("theorem %v unexpectedly applies", r.Theorem)
	}
	if len(all) != 3 {
		t.Errorf("tried %d theorems, want 3", len(all))
	}
}

// TestConvergesAtScale runs the protocol on graphs beyond enumeration.
func TestConvergesAtScale(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    Graph
	}{
		{"grid5x5", Grid(5, 5)},
		{"ring30", Ring(30)},
		{"complete10", Complete(10)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inst, err := New(tc.g)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			p := inst.Design.TolerantProgram()
			r := &sim.Runner{
				P: p, S: inst.Design.S,
				D:        daemon.NewRandom(3),
				MaxSteps: 1_000_000,
				StopAtS:  true,
			}
			rng := rand.New(rand.NewSource(7))
			batch := r.RunMany(30, rng, sim.RandomStates(inst.Design.Schema))
			if batch.ConvergenceRate() != 1 {
				t.Fatalf("convergence rate = %.2f", batch.ConvergenceRate())
			}
			// Every converged run must encode the true BFS tree.
			res := r.Run(program.RandomState(inst.Design.Schema, rng), rng)
			if !res.Converged || !inst.IsValidTree(res.Final) {
				t.Error("converged state is not a valid BFS tree")
			}
		})
	}
}

// TestSilentProtocol: spanning-tree construction is silent — once S holds,
// no action is enabled.
func TestSilentProtocol(t *testing.T) {
	inst, err := New(Grid(2, 3))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p := inst.Design.TolerantProgram()
	st := inst.Correct()
	if n := p.EnabledCount(st); n != 0 {
		t.Errorf("%d actions enabled at the correct state", n)
	}
}

func TestFootprintsHonest(t *testing.T) {
	inst, err := New(Ring(5))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	if err := inst.Design.TolerantProgram().Audit(rng, 150); err != nil {
		t.Error(err)
	}
}

func TestTreeOf(t *testing.T) {
	inst, err := New(Line(4))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	parent := inst.TreeOf(inst.Correct())
	want := []int{0, 0, 1, 2}
	for j := range want {
		if parent[j] != want[j] {
			t.Errorf("parent[%d] = %d, want %d", j, parent[j], want[j])
		}
	}
}
