// Package spanningtree implements a self-stabilizing BFS spanning-tree
// protocol in the paper's constraint style. It is the substrate the
// Section 5.1 diffusing computation presupposes: "consider a finite,
// rooted tree" — on an arbitrary connected graph, this protocol builds and
// maintains that tree despite arbitrary state corruption.
//
// Each node j maintains a distance d.j and a parent pointer p.j. The root
// pins d = 0, p = self; every other node maintains
//
//	R.j = d.j = 1 + min{d.k : k neighbor of j}  and  p.j is a neighbor
//	      achieving that minimum
//
// with the convergence action "¬R.j -> recompute d.j, p.j from neighbors".
//
// The constraint structure here is NOT an out-tree: a node's constraint
// reads all its neighbors, so the Section 4 constraint graph (whose edges
// connect exactly two variable groups) does not exist for graphs with
// degree above two. Convergence instead follows the convergence-stair
// pattern the paper discusses in Section 7 (distances stabilize level by
// level); the package verifies it with the model checker on small graphs
// and statistically at scale.
package spanningtree

import (
	"fmt"

	"nonmask/internal/core"
	"nonmask/internal/program"
)

// Graph is an undirected connected graph over nodes 0..N-1, given by
// adjacency lists. Node 0 is the root by convention.
type Graph struct {
	Adj [][]int
}

// N returns the number of nodes.
func (g Graph) N() int { return len(g.Adj) }

// Validate checks symmetry, range, irreflexivity and connectivity.
func (g Graph) Validate() error {
	n := g.N()
	if n == 0 {
		return fmt.Errorf("spanningtree: empty graph")
	}
	nbr := make([]map[int]bool, n)
	for j := range nbr {
		nbr[j] = make(map[int]bool)
		for _, k := range g.Adj[j] {
			if k < 0 || k >= n {
				return fmt.Errorf("spanningtree: node %d has out-of-range neighbor %d", j, k)
			}
			if k == j {
				return fmt.Errorf("spanningtree: node %d has a self-loop", j)
			}
			nbr[j][k] = true
		}
	}
	for j := range nbr {
		for k := range nbr[j] {
			if !nbr[k][j] {
				return fmt.Errorf("spanningtree: edge %d-%d not symmetric", j, k)
			}
		}
	}
	// Connectivity from the root.
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, k := range g.Adj[v] {
			if !seen[k] {
				seen[k] = true
				count++
				stack = append(stack, k)
			}
		}
	}
	if count != n {
		return fmt.Errorf("spanningtree: graph not connected (%d of %d reachable)", count, n)
	}
	return nil
}

// Line returns the path graph 0-1-...-n-1.
func Line(n int) Graph {
	adj := make([][]int, n)
	for j := 0; j < n-1; j++ {
		adj[j] = append(adj[j], j+1)
		adj[j+1] = append(adj[j+1], j)
	}
	return Graph{Adj: adj}
}

// Ring returns the cycle graph on n nodes.
func Ring(n int) Graph {
	g := Line(n)
	if n > 2 {
		g.Adj[0] = append(g.Adj[0], n-1)
		g.Adj[n-1] = append(g.Adj[n-1], 0)
	}
	return g
}

// Complete returns the complete graph on n nodes.
func Complete(n int) Graph {
	adj := make([][]int, n)
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			if k != j {
				adj[j] = append(adj[j], k)
			}
		}
	}
	return Graph{Adj: adj}
}

// Grid returns the rows x cols grid graph, row-major numbering.
func Grid(rows, cols int) Graph {
	n := rows * cols
	adj := make([][]int, n)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			j := id(r, c)
			if c+1 < cols {
				adj[j] = append(adj[j], id(r, c+1))
				adj[id(r, c+1)] = append(adj[id(r, c+1)], j)
			}
			if r+1 < rows {
				adj[j] = append(adj[j], id(r+1, c))
				adj[id(r+1, c)] = append(adj[id(r+1, c)], j)
			}
		}
	}
	return Graph{Adj: adj}
}

// BFSDistances returns the true distance of each node from the root.
func (g Graph) BFSDistances() []int {
	n := g.N()
	dist := make([]int, n)
	for j := range dist {
		dist[j] = -1
	}
	dist[0] = 0
	queue := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, k := range g.Adj[v] {
			if dist[k] < 0 {
				dist[k] = dist[v] + 1
				queue = append(queue, k)
			}
		}
	}
	return dist
}

// Instance is one spanning-tree design.
type Instance struct {
	Graph  Graph
	Design *core.Design
	// D and P hold the per-node distance and parent-index variables.
	// P[j] stores an index into Graph.Adj[j] (the chosen neighbor), except
	// for the root, whose parent variable is pinned to 0.
	D, P []program.VarID
	// Groups lists each node's variables for fault injection.
	Groups [][]program.VarID
	// MaxD is the distance variables' domain top (>= true eccentricity).
	MaxD int32
}

// New builds the design for the given graph. Node 0 is the root.
func New(g Graph) (*Instance, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.N()
	maxD := int32(n) // distances are < n; the cap absorbs corrupt values
	b := core.NewDesign(fmt.Sprintf("spanningtree(n=%d)", n))
	s := b.Schema()
	d := make([]program.VarID, n)
	p := make([]program.VarID, n)
	groups := make([][]program.VarID, n)
	for j := 0; j < n; j++ {
		d[j] = s.MustDeclare(fmt.Sprintf("d[%d]", j), program.IntRange(0, maxD))
		deg := len(g.Adj[j])
		if j == 0 || deg == 0 {
			deg = 1
		}
		p[j] = s.MustDeclare(fmt.Sprintf("p[%d]", j), program.IntRange(0, int32(deg-1)))
		groups[j] = []program.VarID{d[j], p[j]}
	}
	inst := &Instance{Graph: g, D: d, P: p, Groups: groups, MaxD: maxD}

	// Root constraint: d.0 = 0 (p.0 is pinned by its singleton domain).
	rootOK := program.NewPredicate("d[0] = 0", []program.VarID{d[0]},
		func(st *program.State) bool { return st.Get(d[0]) == 0 })
	fixRoot := program.NewAction("fix-root", program.Convergence,
		[]program.VarID{d[0]}, []program.VarID{d[0], p[0]},
		func(st *program.State) bool { return st.Get(d[0]) != 0 },
		func(st *program.State) {
			st.Set(d[0], 0)
			st.Set(p[0], 0)
		})
	b.Constraint(0, rootOK, fixRoot)

	// Non-root constraints: d.j = 1 + min over neighbors, p.j achieves it.
	for j := 1; j < n; j++ {
		j := j
		nbrs := g.Adj[j]
		minNbr := func(st *program.State) (int32, int) {
			best := st.Get(d[nbrs[0]])
			arg := 0
			for i := 1; i < len(nbrs); i++ {
				if v := st.Get(d[nbrs[i]]); v < best {
					best = v
					arg = i
				}
			}
			return best, arg
		}
		reads := []program.VarID{d[j], p[j]}
		for _, k := range nbrs {
			reads = append(reads, d[k])
		}
		want := func(st *program.State) (int32, bool) {
			m, _ := minNbr(st)
			dj := m + 1
			if dj > maxD {
				dj = maxD
			}
			// p.j must point at a neighbor whose d equals the minimum.
			return dj, st.Get(d[j]) == dj && st.Get(d[nbrs[st.Get(p[j])]]) == m
		}
		rj := program.NewPredicate(fmt.Sprintf("R[%d]", j), reads,
			func(st *program.State) bool {
				_, ok := want(st)
				return ok
			})
		fix := program.NewAction(fmt.Sprintf("recompute(%d)", j), program.Convergence,
			reads, []program.VarID{d[j], p[j]},
			func(st *program.State) bool {
				_, ok := want(st)
				return !ok
			},
			func(st *program.State) {
				m, arg := minNbr(st)
				dj := m + 1
				if dj > maxD {
					dj = maxD
				}
				st.Set(d[j], dj)
				st.Set(p[j], int32(arg))
			})
		b.Constraint(0, rj, fix)
	}

	design, err := b.Build()
	if err != nil {
		return nil, err
	}
	inst.Design = design
	return inst, nil
}

// Correct returns the legitimate state: true BFS distances with first
// minimal neighbor as parent.
func (inst *Instance) Correct() *program.State {
	st := inst.Design.Schema.NewState()
	dist := inst.Graph.BFSDistances()
	for j, dj := range dist {
		st.Set(inst.D[j], int32(dj))
		if j == 0 {
			st.Set(inst.P[j], 0)
			continue
		}
		for i, k := range inst.Graph.Adj[j] {
			if dist[k] == dj-1 {
				st.Set(inst.P[j], int32(i))
				break
			}
		}
	}
	return st
}

// TreeOf extracts the parent vector encoded in a state satisfying S,
// mapping parent indices back to node ids.
func (inst *Instance) TreeOf(st *program.State) []int {
	n := inst.Graph.N()
	parent := make([]int, n)
	parent[0] = 0
	for j := 1; j < n; j++ {
		parent[j] = inst.Graph.Adj[j][st.Get(inst.P[j])]
	}
	return parent
}

// IsValidTree reports whether the state's parent pointers form a spanning
// tree with correct BFS distances.
func (inst *Instance) IsValidTree(st *program.State) bool {
	dist := inst.Graph.BFSDistances()
	if st.Get(inst.D[0]) != 0 {
		return false
	}
	for j := 1; j < inst.Graph.N(); j++ {
		if int(st.Get(inst.D[j])) != dist[j] {
			return false
		}
		parent := inst.Graph.Adj[j][st.Get(inst.P[j])]
		if dist[parent] != dist[j]-1 {
			return false
		}
	}
	return true
}
