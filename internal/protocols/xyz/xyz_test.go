package xyz

import (
	"math/rand"
	"testing"

	"nonmask/internal/ctheory"
	"nonmask/internal/program"
	"nonmask/internal/verify"
)

func mustNew(t *testing.T, v Variant) *Instance {
	t.Helper()
	inst, err := New(v)
	if err != nil {
		t.Fatalf("New(%v): %v", v, err)
	}
	return inst
}

func TestVariantsConstruct(t *testing.T) {
	for _, v := range Variants() {
		inst := mustNew(t, v)
		if inst.Design == nil {
			t.Errorf("%v: nil design", v)
		}
		if err := inst.Design.TolerantProgram().Validate(); err != nil {
			t.Errorf("%v: %v", v, err)
		}
	}
}

func TestFootprintsHonest(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, v := range Variants() {
		inst := mustNew(t, v)
		if err := inst.Design.TolerantProgram().Audit(rng, 200); err != nil {
			t.Errorf("%v: %v", v, err)
		}
		for _, c := range inst.Design.Set.Constraints {
			if err := program.AuditPredicate(inst.Design.Schema, c.Pred, rng, 200); err != nil {
				t.Errorf("%v: %v", v, err)
			}
		}
	}
}

// TestOutTreeValidatesByTheorem1 reproduces the Section 4 figure: the
// preferred design's constraint graph is the out-tree rooted at {x} and
// Theorem 1 applies.
func TestOutTreeValidatesByTheorem1(t *testing.T) {
	inst := mustNew(t, OutTree)
	r, _, err := inst.Design.Validate(verify.Exhaustive, verify.Options{})
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if r == nil || r.Theorem != ctheory.Theorem1 {
		t.Fatalf("OutTree validated by %v, want Theorem 1", r)
	}
	root, ok := r.Graph.IsOutTree()
	if !ok {
		t.Fatal("graph not an out-tree")
	}
	if lbl := r.Graph.NodeLabel(inst.Design.Schema, root); lbl != "{x}" {
		t.Errorf("root label = %s, want {x}", lbl)
	}
}

// TestOrderedValidatesByTheorem2 reproduces Section 6: the shared-target
// design with the decreasing fix admits a linear order and Theorem 2
// applies (Theorem 1 does not).
func TestOrderedValidatesByTheorem2(t *testing.T) {
	inst := mustNew(t, Ordered)
	r, all, err := inst.Design.Validate(verify.Exhaustive, verify.Options{})
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if r == nil || r.Theorem != ctheory.Theorem2 {
		t.Fatalf("Ordered validated by %v, want Theorem 2 (reports: %d)", r, len(all))
	}
	// The witness order must put the x<=z fix before the x!=y fix, since
	// lowering x can violate x != y but decreasing x preserves x <= z.
	if len(r.Orders) != 1 {
		t.Fatalf("Orders = %v", r.Orders)
	}
	for _, order := range r.Orders {
		if order[0] != "x <= z" || order[1] != "x != y" {
			t.Errorf("witness order = %v, want [x <= z, x != y]", order)
		}
	}
}

// TestInterferingValidatedByNoTheorem reproduces the Section 4/6 negative
// example: no sufficient condition applies.
func TestInterferingValidatedByNoTheorem(t *testing.T) {
	inst := mustNew(t, Interfering)
	r, all, err := inst.Design.Validate(verify.Exhaustive, verify.Options{})
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if r != nil {
		t.Fatalf("Interfering validated by %v", r.Theorem)
	}
	if len(all) != 3 {
		t.Errorf("tried %d theorems, want 3", len(all))
	}
}

// TestGroundTruthConvergence cross-checks the theorem verdicts against the
// model checker: the validated designs converge (even unfairly — the
// Section 8 remark), the interfering design livelocks.
func TestGroundTruthConvergence(t *testing.T) {
	tests := []struct {
		v        Variant
		converge bool
	}{
		{Interfering, false},
		{OutTree, true},
		{Ordered, true},
	}
	for _, tt := range tests {
		t.Run(tt.v.String(), func(t *testing.T) {
			inst := mustNew(t, tt.v)
			res, err := inst.Design.Verify(verify.Options{})
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if res.Closure != nil {
				t.Errorf("closure violated: %v", res.Closure)
			}
			if res.Unfair.Converges != tt.converge {
				t.Errorf("unfair convergence = %v, want %v: %s",
					res.Unfair.Converges, tt.converge, res.Unfair.Summary())
			}
			if tt.converge {
				if res.Classification != verify.Nonmasking {
					t.Errorf("classification = %v, want nonmasking", res.Classification)
				}
			} else {
				// The interfering design livelocks even under fairness:
				// the two convergence actions alternate forever.
				if res.FairOnly == nil || res.FairOnly.Converges {
					t.Error("interfering design converges under fair daemon")
				}
			}
		})
	}
}

// TestInterferingLivelockWitness checks the shape of the Section 6
// counterexample: a cycle alternating the two convergence actions.
func TestInterferingLivelockWitness(t *testing.T) {
	inst := mustNew(t, Interfering)
	sp, err := inst.Design.Space(verify.Options{})
	if err != nil {
		t.Fatalf("Space: %v", err)
	}
	res := sp.CheckConvergence()
	if res.Converges {
		t.Fatal("no livelock found")
	}
	if len(res.Cycle) < 2 {
		t.Fatalf("cycle witness = %v", res.Cycle)
	}
	// Every state on the cycle must violate S.
	for _, st := range res.Cycle {
		if inst.Design.S.Holds(st) {
			t.Errorf("cycle state %s satisfies S", st)
		}
	}
}

// TestWorstCaseSteps pins the exact worst-case convergence cost of the two
// valid designs on the 0..4 domains (regression values from the checker).
func TestWorstCaseSteps(t *testing.T) {
	for _, v := range []Variant{OutTree, Ordered} {
		inst := mustNew(t, v)
		sp, err := inst.Design.Space(verify.Options{})
		if err != nil {
			t.Fatalf("Space: %v", err)
		}
		res := sp.CheckConvergence()
		if !res.Converges {
			t.Fatalf("%v does not converge", v)
		}
		if res.WorstSteps < 1 || res.WorstSteps > 20 {
			t.Errorf("%v worst steps = %d, outside sane range", v, res.WorstSteps)
		}
		t.Logf("%v: worst %d steps, mean %.2f over %d bad states",
			v, res.WorstSteps, res.MeanSteps, res.StatesOutsideS)
	}
}
