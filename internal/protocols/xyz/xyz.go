// Package xyz implements the paper's running example (Sections 4 and 6):
// three integer variables x, y, z with the invariant
//
//	S = (x != y) && (x <= z)
//
// and the alternative convergence-action designs the paper contrasts:
//
//   - Interfering (Section 4's caution, Section 6's livelock): both
//     convergence actions write x; each can violate the other's constraint,
//     so no theorem applies and the design livelocks under an arbitrary
//     daemon.
//   - OutTree (Section 4's preferred design, the paper's figure): fix
//     x != y by changing y, fix x <= z by raising z. The constraint graph
//     is the out-tree {x} -> {y}, {x} -> {z}; Theorem 1 applies.
//   - Ordered (Section 6's resolution): fix x != y by decreasing x, fix
//     x <= z by lowering x to z. Both actions write x (shared target), but
//     the decrease preserves x <= z, so a linear order exists and
//     Theorem 2 applies.
//
// Domains are bounded at 0..Max (the paper's integers are unbounded); for
// the Ordered variant, y ranges over 1..Max so that "decrease x" is always
// possible when x = y — the bounded-domain analogue of the paper's
// unbounded decrement. The adjustment is documented in DESIGN.md.
package xyz

import (
	"fmt"

	"nonmask/internal/core"
	"nonmask/internal/program"
)

// Max is the top of each variable's domain.
const Max = 4

// Variant selects one of the paper's alternative designs.
type Variant int

// The designs contrasted by the paper.
const (
	// Interfering writes x in both convergence actions (Sections 4 and 6's
	// negative example).
	Interfering Variant = iota + 1
	// OutTree is the Section 4 figure's design (fix y, raise z).
	OutTree
	// Ordered is the Section 6 design (decrease x / lower x), valid by
	// Theorem 2.
	Ordered
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Interfering:
		return "interfering"
	case OutTree:
		return "out-tree"
	case Ordered:
		return "ordered"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Instance is one concrete xyz design.
type Instance struct {
	Variant Variant
	Design  *core.Design
	X, Y, Z program.VarID
}

// New builds the design for the given variant.
func New(v Variant) (*Instance, error) {
	b := core.NewDesign("xyz/" + v.String())
	s := b.Schema()
	x := s.MustDeclare("x", program.IntRange(0, Max))
	yDom := program.IntRange(0, Max)
	if v == Ordered {
		// Decreasing x below y must always be possible when x = y.
		yDom = program.IntRange(1, Max)
	}
	y := s.MustDeclare("y", yDom)
	z := s.MustDeclare("z", program.IntRange(0, Max))

	neq := program.NewPredicate("x != y", []program.VarID{x, y},
		func(st *program.State) bool { return st.Get(x) != st.Get(y) })
	leq := program.NewPredicate("x <= z", []program.VarID{x, z},
		func(st *program.State) bool { return st.Get(x) <= st.Get(z) })

	inst := &Instance{Variant: v, X: x, Y: y, Z: z}

	switch v {
	case Interfering:
		// "A convergence action satisfies the first constraint by changing
		// x if x = y" — here by incrementing modulo the domain — "it can
		// violate the second constraint"; and fixing the second by lowering
		// x can re-equal x and y.
		fixNeq := program.NewAction("change-x", program.Convergence,
			[]program.VarID{x, y}, []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) == st.Get(y) },
			func(st *program.State) { st.Set(x, (st.Get(x)+1)%(Max+1)) })
		fixLeq := program.NewAction("lower-x", program.Convergence,
			[]program.VarID{x, z}, []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) > st.Get(z) },
			func(st *program.State) { st.Set(x, st.Get(z)) })
		b.Constraint(0, neq, fixNeq)
		b.Constraint(0, leq, fixLeq)

	case OutTree:
		// "Consider for the first constraint a convergence action that
		// changes y if x equals y, and for the second constraint a
		// convergence action that changes z to be at least x if x exceeds
		// z."
		fixNeq := program.NewAction("change-y", program.Convergence,
			[]program.VarID{x, y}, []program.VarID{y},
			func(st *program.State) bool { return st.Get(x) == st.Get(y) },
			func(st *program.State) { st.Set(y, (st.Get(y)+1)%(Max+1)) })
		fixLeq := program.NewAction("raise-z", program.Convergence,
			[]program.VarID{x, z}, []program.VarID{z},
			func(st *program.State) bool { return st.Get(x) > st.Get(z) },
			func(st *program.State) { st.Set(z, st.Get(x)) })
		b.Constraint(0, neq, fixNeq)
		b.Constraint(0, leq, fixLeq)

	case Ordered:
		// "Consider for x != y a convergence action that decreases x if x
		// equals y, and for x <= z a convergence action that changes x to
		// be at most z if x exceeds z. The first action preserves the
		// constraint of the second action."
		fixNeq := program.NewAction("decrease-x", program.Convergence,
			[]program.VarID{x, y}, []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) == st.Get(y) },
			func(st *program.State) { st.Set(x, st.Get(x)-1) })
		fixLeq := program.NewAction("lower-x-to-z", program.Convergence,
			[]program.VarID{x, z}, []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) > st.Get(z) },
			func(st *program.State) { st.Set(x, st.Get(z)) })
		b.Constraint(0, neq, fixNeq)
		b.Constraint(0, leq, fixLeq)

	default:
		return nil, fmt.Errorf("xyz: unknown variant %v", v)
	}

	d, err := b.Build()
	if err != nil {
		return nil, err
	}
	inst.Design = d
	return inst, nil
}

// Variants lists all designs in presentation order.
func Variants() []Variant { return []Variant{Interfering, OutTree, Ordered} }
