package fourstate

import (
	"context"
	"math/rand"
	"testing"

	"nonmask/internal/daemon"
	"nonmask/internal/program"
	"nonmask/internal/sim"
	"nonmask/internal/verify"
)

func TestNewRejectsTiny(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("New(1) succeeded")
	}
}

// TestStabilizes model-checks Dijkstra's four-state algorithm exactly for
// every size up to 9 machines.
func TestStabilizes(t *testing.T) {
	for n := 2; n <= 8; n++ {
		inst, err := New(n)
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		sp, err := verify.NewSpaceContext(context.Background(), inst.P, inst.S, program.True(), verify.Options{})
		if err != nil {
			t.Fatalf("NewSpace: %v", err)
		}
		if v := sp.CheckClosed(inst.S, nil); v != nil {
			t.Fatalf("N=%d: S not closed: %v", n, v)
		}
		res := sp.CheckConvergence()
		if !res.Converges {
			t.Fatalf("N=%d: not stabilizing: %s", n, res.Summary())
		}
		t.Logf("N=%d: worst %d steps, mean %.2f over %d bad states",
			n, res.WorstSteps, res.MeanSteps, res.StatesOutsideS)
	}
}

// TestAtLeastOnePrivilege: no state is privilege-free.
func TestAtLeastOnePrivilege(t *testing.T) {
	inst, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	schema := inst.P.Schema
	count, _ := schema.StateCount()
	for i := int64(0); i < count; i++ {
		if inst.PrivilegeCount(schema.StateAt(i)) == 0 {
			t.Fatalf("state %s has no privilege", schema.StateAt(i))
		}
	}
}

// TestCirculationProved: within S, every machine's privilege reaches every
// other machine (exact leads-to check under the arbitrary daemon).
func TestCirculationProved(t *testing.T) {
	inst, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := verify.NewSpaceContext(context.Background(), inst.P, inst.S, inst.S, verify.Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	vars := inst.S.Vars
	for j := 0; j <= inst.N; j++ {
		for k := 0; k <= inst.N; k++ {
			if j == k {
				continue
			}
			j, k := j, k
			pj := program.NewPredicate("priv j", vars,
				func(st *program.State) bool { return inst.Privileged(st, j) })
			pk := program.NewPredicate("priv k", vars,
				func(st *program.State) bool { return inst.Privileged(st, k) })
			if res := sp.LeadsTo(pj, pk, false); !res.Holds {
				t.Errorf("privilege does not travel from %d to %d", j, k)
			}
		}
	}
}

// TestConvergesAtScale drives large lines statistically.
func TestConvergesAtScale(t *testing.T) {
	for _, n := range []int{31, 127} {
		inst, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		r := &sim.Runner{
			P: inst.P, S: inst.S,
			D:        daemon.NewRandom(7),
			MaxSteps: 5_000_000,
			StopAtS:  true,
		}
		rng := rand.New(rand.NewSource(11))
		batch := r.RunMany(20, rng, sim.RandomStates(inst.P.Schema))
		if batch.ConvergenceRate() != 1 {
			t.Fatalf("N=%d convergence rate = %.2f", n, batch.ConvergenceRate())
		}
	}
}

func TestFootprintsHonest(t *testing.T) {
	inst, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if err := inst.P.Audit(rng, 150); err != nil {
		t.Error(err)
	}
}
