// Package fourstate implements Dijkstra's four-state self-stabilizing
// machines — the third algorithm of the paper's citation [9] (Dijkstra,
// "Self-stabilizing systems in spite of distributed control", 1974),
// completing the trio alongside the K-state ring (Section 7.1 /
// internal/protocols/tokenring) and the three-state array
// (internal/protocols/threestate).
//
// Machines 0..N sit on a line. Each normal machine holds a bit x.j and an
// "up" pointer up.j; the bottom machine's up is permanently true and the
// top machine's permanently false (so they hold just the bit — hence four
// states for normal machines, two for the ends):
//
//	bottom (0):     if x[0] = x[1] and not up[1]            then x[0] := !x[0]
//	top (N):        if x[N] != x[N-1]                       then x[N] := x[N-1]
//	normal (0<j<N): if x[j] != x[j-1]                       then x[j] := x[j-1]; up[j] := true
//	                if x[j] = x[j+1] and up[j] and not up[j+1] then up[j] := false
//
// where up[N] reads as false and up for the bottom as true. A machine is
// privileged when one of its guards holds; legitimate states have exactly
// one privilege. The tests let the exact checker confirm stabilization.
package fourstate

import (
	"fmt"

	"nonmask/internal/program"
)

// Instance is one four-state machine line.
type Instance struct {
	// N is the highest machine index (N+1 machines).
	N int
	// P is the program (self-stabilizing as printed).
	P *program.Program
	// S holds exactly when exactly one machine is privileged.
	S *program.Predicate
	// X holds the per-machine bit; Up the pointers of machines 1..N-1
	// (Up[0] and Up[N] are unused — the ends' pointers are constant).
	X, Up []program.VarID
	// Groups lists each machine's variables for fault injection.
	Groups [][]program.VarID
}

// New builds the line on n+1 machines, n >= 2.
func New(n int) (*Instance, error) {
	if n < 2 {
		return nil, fmt.Errorf("fourstate: need N >= 2 (three machines), got %d", n)
	}
	s := program.NewSchema()
	x := make([]program.VarID, n+1)
	up := make([]program.VarID, n+1)
	groups := make([][]program.VarID, n+1)
	for j := 0; j <= n; j++ {
		x[j] = s.MustDeclare(fmt.Sprintf("x[%d]", j), program.Bool())
		groups[j] = []program.VarID{x[j]}
		if j > 0 && j < n {
			up[j] = s.MustDeclare(fmt.Sprintf("up[%d]", j), program.Bool())
			groups[j] = append(groups[j], up[j])
		}
	}
	inst := &Instance{N: n, X: x, Up: up, Groups: groups}

	// upAt reads machine k's pointer with the ends' constants.
	upAt := func(st *program.State, k int) bool {
		switch k {
		case 0:
			return true
		case n:
			return false
		default:
			return st.Bool(up[k])
		}
	}

	p := program.New(fmt.Sprintf("fourstate(N=%d)", n), s)

	// Bottom. Machine 1 is normal (n >= 2), so up[1] exists.
	p.Add(program.NewAction("bottom", program.Closure,
		[]program.VarID{x[0], x[1], up[1]}, []program.VarID{x[0]},
		func(st *program.State) bool {
			return st.Bool(x[0]) == st.Bool(x[1]) && !upAt(st, 1)
		},
		func(st *program.State) { st.SetBool(x[0], !st.Bool(x[0])) }))

	// Normal machines.
	for j := 1; j < n; j++ {
		j := j
		// Move the token up: adopt the lower neighbor's bit.
		p.Add(program.NewAction(fmt.Sprintf("adopt(%d)", j), program.Closure,
			[]program.VarID{x[j], x[j-1], up[j]}, []program.VarID{x[j], up[j]},
			func(st *program.State) bool { return st.Bool(x[j]) != st.Bool(x[j-1]) },
			func(st *program.State) {
				st.SetBool(x[j], st.Bool(x[j-1]))
				st.SetBool(up[j], true)
			}))
		// Reflect the token down: drop the up pointer.
		reads := []program.VarID{x[j], x[j+1], up[j]}
		if j+1 < n {
			reads = append(reads, up[j+1])
		}
		p.Add(program.NewAction(fmt.Sprintf("drop(%d)", j), program.Closure,
			reads, []program.VarID{up[j]},
			func(st *program.State) bool {
				return st.Bool(x[j]) == st.Bool(x[j+1]) && st.Bool(up[j]) && !upAt(st, j+1)
			},
			func(st *program.State) { st.SetBool(up[j], false) }))
	}

	// Top.
	p.Add(program.NewAction("top", program.Closure,
		[]program.VarID{x[n], x[n-1]}, []program.VarID{x[n]},
		func(st *program.State) bool { return st.Bool(x[n]) != st.Bool(x[n-1]) },
		func(st *program.State) { st.SetBool(x[n], st.Bool(x[n-1])) }))

	inst.P = p
	vars := append([]program.VarID{}, x...)
	for j := 1; j < n; j++ {
		vars = append(vars, up[j])
	}
	inst.S = program.NewPredicate("exactly one privilege", vars,
		func(st *program.State) bool { return inst.PrivilegeCount(st) == 1 })
	return inst, nil
}

// Privileged reports whether machine j holds a privilege at st.
func (inst *Instance) Privileged(st *program.State, j int) bool {
	n := inst.N
	upAt := func(k int) bool {
		switch k {
		case 0:
			return true
		case n:
			return false
		default:
			return st.Bool(inst.Up[k])
		}
	}
	xAt := func(k int) bool { return st.Bool(inst.X[k]) }
	switch j {
	case 0:
		return xAt(0) == xAt(1) && !upAt(1)
	case n:
		return xAt(n) != xAt(n-1)
	default:
		if xAt(j) != xAt(j-1) {
			return true
		}
		return xAt(j) == xAt(j+1) && upAt(j) && !upAt(j+1)
	}
}

// PrivilegeCount returns the number of privileged machines at st.
func (inst *Instance) PrivilegeCount(st *program.State) int {
	c := 0
	for j := 0; j <= inst.N; j++ {
		if inst.Privileged(st, j) {
			c++
		}
	}
	return c
}

// AllFalse returns the state with every bit and pointer false.
func (inst *Instance) AllFalse() *program.State {
	return inst.P.Schema.NewState()
}
