// Package mutex provides a mutual-exclusion service on top of the
// stabilizing token ring — the motivation the paper gives for token
// passing (Section 7.1: "the process possessing the token has the
// privilege to access the shared resource").
//
// The service wraps a tokenring.RingInstance: a node may enter its critical
// section exactly while it is privileged. Because the ring is nonmasking
// fault-tolerant, mutual exclusion may be violated for a bounded window
// after a fault (several nodes privileged) but is eventually restored; the
// package exposes the observables that quantify that window.
package mutex

import (
	"fmt"
	"math/rand"

	"nonmask/internal/daemon"
	"nonmask/internal/fault"
	"nonmask/internal/program"
	"nonmask/internal/protocols/tokenring"
	"nonmask/internal/sim"
)

// Service is a mutual-exclusion service over a stabilizing token ring.
type Service struct {
	Ring *tokenring.RingInstance
}

// New builds a service for n+1 nodes with counter space k.
func New(n, k int) (*Service, error) {
	ring, err := tokenring.NewRing(n, k)
	if err != nil {
		return nil, fmt.Errorf("mutex: %w", err)
	}
	return &Service{Ring: ring}, nil
}

// MayEnter reports whether node j may enter its critical section at st.
func (s *Service) MayEnter(st *program.State, j int) bool {
	return s.Ring.Privileged(st, j)
}

// Stats aggregates one measured run of the service.
type Stats struct {
	// Steps is the number of executed actions.
	Steps int
	// UnsafeSteps counts steps at which two or more nodes could enter
	// their critical sections simultaneously — the nonmasking violation
	// window.
	UnsafeSteps int
	// FirstSafe is the first step after which no unsafe step occurred
	// (the stabilization point), or -1 when the run never became safe.
	FirstSafe int
	// Entries counts critical-section opportunities per node.
	Entries []int
}

// MutualExclusionHolds reports whether the run was safe throughout.
func (st *Stats) MutualExclusionHolds() bool { return st.UnsafeSteps == 0 }

// Measure runs the service for steps actions from the given start state
// under the daemon and collects safety/liveness observables. A nil start
// means the legitimate all-zero state; faults (optional) are injected per
// the schedule.
func (s *Service) Measure(start *program.State, d daemon.Daemon, steps int,
	faults fault.Schedule, rng *rand.Rand) *Stats {
	if start == nil {
		start = s.Ring.AllZero()
	}
	if d == nil {
		d = daemon.NewRoundRobin(s.Ring.P)
	}
	stats := &Stats{Entries: make([]int, s.Ring.N+1), FirstSafe: -1}
	r := &sim.Runner{
		P: s.Ring.P, S: s.Ring.S,
		D:        d,
		MaxSteps: steps,
		Faults:   faults,
		OnStep: func(step int, st *program.State, _ *program.Action) {
			stats.Steps++
			count := 0
			for j := 0; j <= s.Ring.N; j++ {
				if s.Ring.Privileged(st, j) {
					count++
					stats.Entries[j]++
				}
			}
			if count > 1 {
				stats.UnsafeSteps++
				stats.FirstSafe = -1
			} else if stats.FirstSafe < 0 {
				stats.FirstSafe = step + 1
			}
		},
	}
	r.Run(start, rng)
	return stats
}
