package mutex

import (
	"math/rand"
	"testing"

	"nonmask/internal/daemon"
	"nonmask/internal/fault"
	"nonmask/internal/program"
)

func TestNewRejectsBadParams(t *testing.T) {
	if _, err := New(0, 3); err == nil {
		t.Error("New(0,3) succeeded")
	}
}

// TestMutualExclusionFaultFree: from the legitimate state, the service
// never admits two nodes to the critical section, and every node gets in.
func TestMutualExclusionFaultFree(t *testing.T) {
	s, err := New(5, 7)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	stats := s.Measure(nil, nil, 600, nil, nil)
	if !stats.MutualExclusionHolds() {
		t.Fatalf("%d unsafe steps in a fault-free run", stats.UnsafeSteps)
	}
	for j, e := range stats.Entries {
		if e == 0 {
			t.Errorf("node %d never eligible for the critical section", j)
		}
	}
	if stats.FirstSafe != 1 {
		t.Errorf("FirstSafe = %d, want 1", stats.FirstSafe)
	}
}

// TestNonmaskingWindow: corrupting the ring can violate mutual exclusion,
// but only for a bounded prefix; the violation window closes and never
// reopens.
func TestNonmaskingWindow(t *testing.T) {
	s, err := New(7, 9)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(33))
	sawViolation := false
	for trial := 0; trial < 25; trial++ {
		start := program.RandomState(s.Ring.P.Schema, rng)
		stats := s.Measure(start, daemon.NewRandom(int64(trial)), 3000, nil, rng)
		if stats.UnsafeSteps > 0 {
			sawViolation = true
		}
		if stats.FirstSafe < 0 {
			t.Fatalf("trial %d never stabilized (unsafe steps: %d)", trial, stats.UnsafeSteps)
		}
	}
	if !sawViolation {
		t.Error("no trial violated mutual exclusion; corruption too weak to exercise the window")
	}
}

// TestMidRunFault: a fault injected mid-run reopens the window briefly;
// the service re-stabilizes within the same run.
func TestMidRunFault(t *testing.T) {
	s, err := New(5, 7)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(44))
	faults := fault.Schedule{{Step: 500, Inj: &fault.CorruptGroups{Groups: s.Ring.Groups, K: 3}}}
	stats := s.Measure(nil, daemon.NewRandom(5), 5000, faults, rng)
	if stats.FirstSafe < 0 {
		t.Fatalf("service never re-stabilized after mid-run fault")
	}
	if stats.FirstSafe < 500 {
		t.Errorf("FirstSafe = %d, expected after the fault at step 500", stats.FirstSafe)
	}
}

func TestMayEnterMatchesPrivilege(t *testing.T) {
	s, err := New(3, 5)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st := s.Ring.AllZero() // node 0 privileged
	if !s.MayEnter(st, 0) {
		t.Error("node 0 cannot enter at all-zero")
	}
	for j := 1; j <= 3; j++ {
		if s.MayEnter(st, j) {
			t.Errorf("node %d can enter at all-zero", j)
		}
	}
}
