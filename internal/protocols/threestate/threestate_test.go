package threestate

import (
	"context"
	"math/rand"
	"testing"

	"nonmask/internal/daemon"
	"nonmask/internal/program"
	"nonmask/internal/sim"
	"nonmask/internal/verify"
)

func TestNewRejectsTiny(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("New(1) succeeded")
	}
}

// TestStabilizes model-checks Dijkstra's three-state algorithm exactly:
// from every state, under the arbitrary daemon, the array reaches exactly
// one privilege — with only 3 states per machine, for every size checked.
func TestStabilizes(t *testing.T) {
	for n := 2; n <= 8; n++ {
		inst, err := New(n)
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		sp, err := verify.NewSpaceContext(context.Background(), inst.P, inst.S, program.True(), verify.Options{})
		if err != nil {
			t.Fatalf("NewSpace: %v", err)
		}
		if v := sp.CheckClosed(inst.S, nil); v != nil {
			t.Fatalf("N=%d: S not closed: %v", n, v)
		}
		res := sp.CheckConvergence()
		if !res.Converges {
			t.Fatalf("N=%d: not stabilizing: %s", n, res.Summary())
		}
		t.Logf("N=%d: worst %d steps, mean %.2f over %d bad states",
			n, res.WorstSteps, res.MeanSteps, res.StatesOutsideS)
	}
}

// TestAtLeastOnePrivilege: the classic base fact — no state is
// privilege-free (otherwise the system would deadlock).
func TestAtLeastOnePrivilege(t *testing.T) {
	inst, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	schema := inst.P.Schema
	count, _ := schema.StateCount()
	for i := int64(0); i < count; i++ {
		st := schema.StateAt(i)
		if inst.PrivilegeCount(st) == 0 {
			t.Fatalf("state %s has no privilege", st)
		}
	}
}

// TestPrivilegeMatchesEnabledness: a machine is privileged iff one of its
// actions is enabled — the definition Dijkstra uses.
func TestPrivilegeMatchesEnabledness(t *testing.T) {
	inst, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	schema := inst.P.Schema
	count, _ := schema.StateCount()
	// Map actions to machines by name prefix.
	machineOf := func(name string) int {
		switch name {
		case "bottom":
			return 0
		case "top":
			return inst.N
		default:
			var j int
			if _, err := fmtscan(name, &j); err != nil {
				t.Fatalf("bad action name %q", name)
			}
			return j
		}
	}
	for i := int64(0); i < count; i++ {
		st := schema.StateAt(i)
		enabled := map[int]bool{}
		for _, a := range inst.P.Actions {
			if a.Guard(st) {
				enabled[machineOf(a.Name)] = true
			}
		}
		for j := 0; j <= inst.N; j++ {
			if enabled[j] != inst.Privileged(st, j) {
				t.Fatalf("machine %d: enabled=%v privileged=%v at %s",
					j, enabled[j], inst.Privileged(st, j), st)
			}
		}
	}
}

// fmtscan extracts the number inside "up(3)" / "down(2)".
func fmtscan(s string, j *int) (int, error) {
	n, seen := 0, false
	for _, r := range s {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
			seen = true
		}
	}
	if !seen {
		return 0, errNoDigit
	}
	*j = n
	return 1, nil
}

var errNoDigit = &noDigit{}

type noDigit struct{}

func (*noDigit) Error() string { return "no digit" }

// TestTokenTravelsBothWays: in legitimate operation the privilege moves up
// the array and back down — every machine is privileged infinitely often.
func TestTokenTravelsBothWays(t *testing.T) {
	inst, err := New(6)
	if err != nil {
		t.Fatal(err)
	}
	visits := make([]int, inst.N+1)
	r := &sim.Runner{
		P: inst.P, S: inst.S,
		D:        daemon.NewRoundRobin(inst.P),
		MaxSteps: 400,
		OnStep: func(_ int, st *program.State, _ *program.Action) {
			for j := 0; j <= inst.N; j++ {
				if inst.Privileged(st, j) {
					visits[j]++
				}
			}
		},
	}
	res := r.Run(inst.AllZero(), nil)
	if res.Deadlocked {
		t.Fatalf("three-state array deadlocked: %s", res)
	}
	for j, v := range visits {
		if v < 10 {
			t.Errorf("machine %d privileged only %d times in 400 steps", j, v)
		}
	}
}

// TestConvergesAtScale drives large arrays statistically.
func TestConvergesAtScale(t *testing.T) {
	for _, n := range []int{31, 127} {
		inst, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		r := &sim.Runner{
			P: inst.P, S: inst.S,
			D:        daemon.NewRandom(7),
			MaxSteps: 5_000_000,
			StopAtS:  true,
		}
		rng := rand.New(rand.NewSource(11))
		batch := r.RunMany(20, rng, sim.RandomStates(inst.P.Schema))
		if batch.ConvergenceRate() != 1 {
			t.Fatalf("N=%d convergence rate = %.2f", n, batch.ConvergenceRate())
		}
	}
}

func TestFootprintsHonest(t *testing.T) {
	inst, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if err := inst.P.Audit(rng, 150); err != nil {
		t.Error(err)
	}
}

// TestCirculationProved: within the legitimate states, every machine's
// privilege eventually reaches every other machine (the three-state
// token travels up and down the array). Verified exactly with the
// leads-to checker under the arbitrary daemon.
func TestCirculationProved(t *testing.T) {
	inst, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := verify.NewSpaceContext(context.Background(), inst.P, inst.S, inst.S, verify.Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	for j := 0; j <= inst.N; j++ {
		for k := 0; k <= inst.N; k++ {
			if j == k {
				continue
			}
			j, k := j, k
			pj := program.NewPredicate("priv j", inst.X,
				func(st *program.State) bool { return inst.Privileged(st, j) })
			pk := program.NewPredicate("priv k", inst.X,
				func(st *program.State) bool { return inst.Privileged(st, k) })
			if res := sp.LeadsTo(pj, pk, false); !res.Holds {
				t.Errorf("privilege does not travel from %d to %d", j, k)
			}
		}
	}
}
