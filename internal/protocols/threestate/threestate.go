// Package threestate implements Dijkstra's three-state self-stabilizing
// token array — the second algorithm of the paper's citation [9]
// (Dijkstra, "Self-stabilizing systems in spite of distributed control",
// 1974). Where the K-state ring of Section 7.1 needs a counter space that
// grows with the ring size, the three-state machines need exactly three
// states per node regardless of size:
//
//	bottom (node 0):  if x[1] = x[0]+1                      then x[0] := x[0]-1
//	normal (0<j<N):   if x[j+1] = x[j]+1                    then x[j] := x[j+1]
//	                  if x[j-1] = x[j]+1                    then x[j] := x[j-1]
//	top (node N):     if x[N-1] = x[0] and x[N-1]+1 != x[N] then x[N] := x[N-1]+1
//
// (arithmetic modulo 3). A machine is privileged exactly when one of its
// guards holds; the legitimate states are those with exactly one
// privilege. The tests let the exact checker confirm stabilization — a
// useful stress for the checker, since privileges here travel both up and
// down the array.
package threestate

import (
	"fmt"

	"nonmask/internal/program"
)

// Instance is one three-state token array.
type Instance struct {
	// N is the highest node index (N+1 nodes, 0..N).
	N int
	// P is the program; as in the K-state ring, the printed algorithm is
	// self-stabilizing as-is (closure and convergence coincide).
	P *program.Program
	// S holds exactly when exactly one machine is privileged.
	S *program.Predicate
	// X holds the per-node state variables (domain 0..2).
	X []program.VarID
	// Groups lists each node's variables for fault injection.
	Groups [][]program.VarID
}

// New builds the three-state array on n+1 nodes, n >= 2.
func New(n int) (*Instance, error) {
	if n < 2 {
		return nil, fmt.Errorf("threestate: need N >= 2 (three machines), got %d", n)
	}
	s := program.NewSchema()
	x := make([]program.VarID, n+1)
	groups := make([][]program.VarID, n+1)
	for j := 0; j <= n; j++ {
		x[j] = s.MustDeclare(fmt.Sprintf("x[%d]", j), program.IntRange(0, 2))
		groups[j] = []program.VarID{x[j]}
	}
	p := program.New(fmt.Sprintf("threestate(N=%d)", n), s)
	inc := func(v int32) int32 { return (v + 1) % 3 }
	dec := func(v int32) int32 { return (v + 2) % 3 }

	// Bottom.
	x0, x1 := x[0], x[1]
	p.Add(program.NewAction("bottom", program.Closure,
		[]program.VarID{x0, x1}, []program.VarID{x0},
		func(st *program.State) bool { return st.Get(x1) == inc(st.Get(x0)) },
		func(st *program.State) { st.Set(x0, dec(st.Get(x0))) }))

	// Normal machines: two actions each.
	for j := 1; j < n; j++ {
		xj, xl, xr := x[j], x[j-1], x[j+1]
		p.Add(program.NewAction(fmt.Sprintf("up(%d)", j), program.Closure,
			[]program.VarID{xj, xr}, []program.VarID{xj},
			func(st *program.State) bool { return st.Get(xr) == inc(st.Get(xj)) },
			func(st *program.State) { st.Set(xj, st.Get(xr)) }))
		p.Add(program.NewAction(fmt.Sprintf("down(%d)", j), program.Closure,
			[]program.VarID{xj, xl}, []program.VarID{xj},
			func(st *program.State) bool { return st.Get(xl) == inc(st.Get(xj)) },
			func(st *program.State) { st.Set(xj, st.Get(xl)) }))
	}

	// Top.
	xN, xN1 := x[n], x[n-1]
	p.Add(program.NewAction("top", program.Closure,
		[]program.VarID{xN, xN1, x0}, []program.VarID{xN},
		func(st *program.State) bool {
			return st.Get(xN1) == st.Get(x0) && inc(st.Get(xN1)) != st.Get(xN)
		},
		func(st *program.State) { st.Set(xN, inc(st.Get(xN1))) }))

	inst := &Instance{N: n, P: p, X: x, Groups: groups}
	inst.S = program.NewPredicate("exactly one privilege", x,
		func(st *program.State) bool { return inst.PrivilegeCount(st) == 1 })
	return inst, nil
}

// Privileged reports whether machine j holds a privilege at st (any of its
// guards enabled).
func (inst *Instance) Privileged(st *program.State, j int) bool {
	inc := func(v int32) int32 { return (v + 1) % 3 }
	get := func(k int) int32 { return st.Get(inst.X[k]) }
	switch j {
	case 0:
		return get(1) == inc(get(0))
	case inst.N:
		return get(inst.N-1) == get(0) && inc(get(inst.N-1)) != get(inst.N)
	default:
		return get(j+1) == inc(get(j)) || get(j-1) == inc(get(j))
	}
}

// PrivilegeCount returns the number of privileged machines at st.
func (inst *Instance) PrivilegeCount(st *program.State) int {
	n := 0
	for j := 0; j <= inst.N; j++ {
		if inst.Privileged(st, j) {
			n++
		}
	}
	return n
}

// AllZero returns the state with every machine at 0.
func (inst *Instance) AllZero() *program.State {
	return inst.P.Schema.NewState()
}
