package termination

import (
	"math/rand"
	"testing"

	"nonmask/internal/ctheory"
	"nonmask/internal/daemon"
	"nonmask/internal/program"
	"nonmask/internal/protocols/diffusing"
	"nonmask/internal/sim"
	"nonmask/internal/verify"
)

func mustNew(t *testing.T, tr diffusing.Tree) *Instance {
	t.Helper()
	inst, err := New(tr)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return inst
}

func TestTheorem1Validates(t *testing.T) {
	inst := mustNew(t, diffusing.Binary(7))
	r, _, err := inst.Design.Validate(verify.Projected, verify.Options{})
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if r == nil || r.Theorem != ctheory.Theorem1 {
		t.Fatalf("validated by %v, want Theorem 1", r)
	}
}

func TestStabilizes(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   diffusing.Tree
	}{
		{"chain3", diffusing.Chain(3)},
		{"star4", diffusing.Star(4)},
		{"binary5", diffusing.Binary(5)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inst := mustNew(t, tc.tr)
			res, err := inst.Design.Verify(verify.Options{})
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if res.Closure != nil {
				t.Fatalf("closure violated: %v", res.Closure)
			}
			if !res.Unfair.Converges {
				t.Fatalf("not stabilizing: %s", res.Unfair.Summary())
			}
		})
	}
}

// TestDetectsTermination: from all-active, under a fair daemon, nodes
// finish and the root eventually announces termination — correctly.
func TestDetectsTermination(t *testing.T) {
	inst := mustNew(t, diffusing.Binary(15))
	p := inst.Design.TolerantProgram()
	det := NewDetector(inst)
	r := &sim.Runner{
		P: p, S: inst.Design.S,
		D:        daemon.NewRoundRobin(p),
		MaxSteps: 5000,
		OnStep:   func(_ int, st *program.State, _ *program.Action) { det.Observe(st) },
	}
	r.Run(inst.AllActive(), nil)
	if det.Detections == 0 {
		t.Fatal("termination never detected")
	}
	if det.FalseDetections != 0 {
		t.Errorf("%d false detections on a fault-free run", det.FalseDetections)
	}
}

// TestNoFalseDetectionWhileActive: in fault-free runs the detector stays
// silent while any node is active... more precisely, every announcement
// happens at an all-idle state (idleness is stable, so this is the
// meaningful safety property).
func TestNoFalseDetectionWhileActive(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		inst := mustNew(t, diffusing.Random(10, seed))
		p := inst.Design.TolerantProgram()
		det := NewDetector(inst)
		r := &sim.Runner{
			P: p, S: inst.Design.S,
			D:        daemon.NewRandom(seed),
			MaxSteps: 20000,
			OnStep:   func(_ int, st *program.State, _ *program.Action) { det.Observe(st) },
		}
		r.Run(inst.AllActive(), nil)
		if det.FalseDetections != 0 {
			t.Fatalf("seed %d: %d false detections fault-free", seed, det.FalseDetections)
		}
	}
}

// TestTransientFalseDetectionThenRecovery demonstrates the nonmasking
// behaviour: from a corrupted state false announcements can occur; after
// stabilization at most one more can (the residual in-flight wave), and
// every announcement of a freshly initiated wave is correct.
func TestTransientFalseDetectionThenRecovery(t *testing.T) {
	inst := mustNew(t, diffusing.Chain(8))
	p := inst.Design.TolerantProgram()
	rng := rand.New(rand.NewSource(77))

	sawFalse := false
	for trial := 0; trial < 60; trial++ {
		start := program.RandomState(inst.Design.Schema, rng)
		det := NewDetector(inst)
		// Converge first, tracking detections on the way.
		r := &sim.Runner{
			P: p, S: inst.Design.S,
			D:        daemon.NewRandom(int64(trial)),
			MaxSteps: 50_000,
			StopAtS:  true,
			OnStep:   func(_ int, st *program.State, _ *program.Action) { det.Observe(st) },
		}
		res := r.Run(start, rng)
		if !res.Converged {
			t.Fatalf("trial %d did not converge", trial)
		}
		if det.FalseDetections > 0 {
			sawFalse = true
		}
		// After convergence: no more false detections, ever.
		post := NewDetector(inst)
		// Seed the detector's root-color memory with the converged state.
		post.Observe(res.Final)
		post.Detections, post.FalseDetections = 0, 0
		r2 := &sim.Runner{
			P: p, S: inst.Design.S,
			D:        daemon.NewRandom(int64(trial) + 500),
			MaxSteps: 3000,
			OnStep:   func(_ int, st *program.State, _ *program.Action) { post.Observe(st) },
		}
		r2.Run(res.Final, rng)
		// At most the residual in-flight wave may announce falsely.
		if post.FalseDetections > 1 {
			t.Fatalf("trial %d: %d false detections after stabilization, want <= 1",
				trial, post.FalseDetections)
		}
	}
	if !sawFalse {
		t.Log("no transient false detection observed in 60 corrupted trials (possible but unusual)")
	}
}

// TestWaveStallsAtActiveNodes: an active node blocks the green reflection
// below the root, so no announcement can occur while any node is active.
// The avoiding daemon delays finish(3) as long as any alternative exists;
// all detections must come after node 3 finally finished.
func TestWaveStallsAtActiveNodes(t *testing.T) {
	inst := mustNew(t, diffusing.Chain(4))
	p := inst.Design.TolerantProgram()
	det := NewDetector(inst)
	detectionsWhileActive := 0
	avoid := &avoidDaemon{inner: daemon.NewRoundRobin(p), avoid: "finish(3)"}
	r := &sim.Runner{
		P: p, S: inst.Design.S,
		D:        avoid,
		MaxSteps: 2000,
		OnStep: func(_ int, st *program.State, _ *program.Action) {
			before := det.Detections
			det.Observe(st)
			if det.Detections > before && st.Bool(inst.Active[3]) {
				detectionsWhileActive++
			}
		},
	}
	r.Run(inst.AllActive(), nil)
	if detectionsWhileActive != 0 {
		t.Errorf("%d detections while node 3 was active", detectionsWhileActive)
	}
	if det.FalseDetections != 0 {
		t.Errorf("%d false detections fault-free", det.FalseDetections)
	}
	if det.Detections == 0 {
		t.Error("no detection at all; scheduler starved the run")
	}
}

// avoidDaemon filters one action name out of the enabled set when
// alternatives exist.
type avoidDaemon struct {
	inner daemon.Daemon
	avoid string
}

func (d *avoidDaemon) Name() string { return "avoid(" + d.avoid + ")" }

func (d *avoidDaemon) Pick(st *program.State, enabled []*program.Action, step int) *program.Action {
	var filtered []*program.Action
	for _, a := range enabled {
		if a.Name != d.avoid {
			filtered = append(filtered, a)
		}
	}
	if len(filtered) == 0 {
		filtered = enabled
	}
	return d.inner.Pick(st, filtered, step)
}

func TestTerminatedGroundTruth(t *testing.T) {
	inst := mustNew(t, diffusing.Chain(3))
	st := inst.AllActive()
	if inst.Terminated(st) {
		t.Error("all-active reported terminated")
	}
	for _, a := range inst.Active {
		st.SetBool(a, false)
	}
	if !inst.Terminated(st) {
		t.Error("all-idle not reported terminated")
	}
}
