// Package termination implements termination detection via diffusing
// computations — the first application the paper names for them
// (Section 5.1: "applications of diffusing computations include, for
// example, global state snapshot, termination detection, ...").
//
// The underlying computation runs at each tree node: a node is active or
// idle, and active nodes may spontaneously finish (idleness is stable — the
// classic diffusing-computation setting). The detection layer is the
// Section 5.1 wave program with one refinement: a node reflects the wave
// (turns green) only while idle. A completed wave therefore certifies that
// every node was idle when it reflected, and by stability all nodes are
// idle when the root completes — termination detected.
//
// The design is nonmasking: state corruption can fake a completed wave and
// cause a transient false detection. The program stabilizes, after which at
// most one further announcement can be false — the residual wave that was
// already (spuriously) in flight when stabilization completed. Every
// announcement of a wave initiated after stabilization is correct: at
// initiation all nodes carry the previous session number, so each must
// propagate and then reflect while idle before the root can complete.
// Tests quantify this.
package termination

import (
	"fmt"

	"nonmask/internal/core"
	"nonmask/internal/program"
	"nonmask/internal/protocols/diffusing"
)

// Instance is a termination-detection design on one tree.
type Instance struct {
	Tree   diffusing.Tree
	Design *core.Design
	// C, Sn, Active hold per-node wave color, session and activity flags.
	C, Sn, Active []program.VarID
	// Groups lists each node's variables for fault injection.
	Groups [][]program.VarID
}

// New builds the design for the given tree.
func New(t diffusing.Tree) (*Instance, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := t.N()
	root := t.Root()
	children := t.Children()

	b := core.NewDesign(fmt.Sprintf("termination(n=%d)", n))
	s := b.Schema()
	colors := program.Enum("green", "red")
	c := make([]program.VarID, n)
	sn := make([]program.VarID, n)
	act := make([]program.VarID, n)
	groups := make([][]program.VarID, n)
	for j := 0; j < n; j++ {
		c[j] = s.MustDeclare(fmt.Sprintf("c[%d]", j), colors)
		sn[j] = s.MustDeclare(fmt.Sprintf("sn[%d]", j), program.Bool())
		act[j] = s.MustDeclare(fmt.Sprintf("active[%d]", j), program.Bool())
		groups[j] = []program.VarID{c[j], sn[j], act[j]}
	}
	inst := &Instance{Tree: t, C: c, Sn: sn, Active: act, Groups: groups}

	// The underlying computation: active nodes finish spontaneously.
	for j := 0; j < n; j++ {
		aj := act[j]
		b.Closure(program.NewAction(fmt.Sprintf("finish(%d)", j), program.Closure,
			[]program.VarID{aj}, []program.VarID{aj},
			func(st *program.State) bool { return st.Bool(aj) },
			func(st *program.State) { st.SetBool(aj, false) }))
	}

	// The wave, as in Section 5.1, except reflection requires idleness.
	cR, snR := c[root], sn[root]
	b.Closure(program.NewAction("initiate(root)", program.Closure,
		[]program.VarID{cR, snR}, []program.VarID{cR, snR},
		func(st *program.State) bool { return st.Get(cR) == diffusing.Green },
		func(st *program.State) {
			st.Set(cR, diffusing.Red)
			st.SetBool(snR, !st.Bool(snR))
		}))

	for j := 0; j < n; j++ {
		j := j
		pj := t.Parent[j]
		cj, snj, aj := c[j], sn[j], act[j]
		cp, snp := c[pj], sn[pj]

		if j != root {
			b.Closure(program.NewAction(fmt.Sprintf("propagate(%d)", j), program.Closure,
				[]program.VarID{cj, snj, cp, snp}, []program.VarID{cj, snj},
				func(st *program.State) bool {
					return st.Get(cj) == diffusing.Green && st.Get(cp) == diffusing.Red &&
						st.Bool(snj) != st.Bool(snp)
				},
				func(st *program.State) {
					st.Set(cj, st.Get(cp))
					st.SetBool(snj, st.Bool(snp))
				}))
		}

		kids := children[j]
		reads := []program.VarID{cj, snj, aj}
		for _, k := range kids {
			reads = append(reads, c[k], sn[k])
		}
		b.Closure(program.NewAction(fmt.Sprintf("reflect(%d)", j), program.Closure,
			reads, []program.VarID{cj},
			func(st *program.State) bool {
				if st.Get(cj) != diffusing.Red || st.Bool(aj) {
					return false
				}
				for _, k := range kids {
					if st.Get(c[k]) != diffusing.Green || st.Bool(sn[k]) != st.Bool(snj) {
						return false
					}
				}
				return true
			},
			func(st *program.State) { st.Set(cj, diffusing.Green) }))

		if j != root {
			rj := program.NewPredicate(fmt.Sprintf("R[%d]", j),
				[]program.VarID{cj, snj, cp, snp},
				func(st *program.State) bool {
					if st.Get(cj) == st.Get(cp) && st.Bool(snj) == st.Bool(snp) {
						return true
					}
					return st.Get(cj) == diffusing.Green && st.Get(cp) == diffusing.Red
				})
			b.Constraint(0, rj, program.NewAction(
				fmt.Sprintf("establish-R(%d)", j), program.Convergence,
				[]program.VarID{cj, snj, cp, snp}, []program.VarID{cj, snj},
				func(st *program.State) bool { return !rj.Eval(st) },
				func(st *program.State) {
					st.Set(cj, st.Get(cp))
					st.SetBool(snj, st.Bool(snp))
				}))
		}
	}

	d, err := b.Build()
	if err != nil {
		return nil, err
	}
	inst.Design = d
	return inst, nil
}

// AllActive returns the starting state: every node active, all green.
func (inst *Instance) AllActive() *program.State {
	st := inst.Design.Schema.NewState()
	for j := range inst.C {
		st.Set(inst.C[j], diffusing.Green)
		st.SetBool(inst.Sn[j], false)
		st.SetBool(inst.Active[j], true)
	}
	return st
}

// Terminated reports ground truth: every node idle.
func (inst *Instance) Terminated(st *program.State) bool {
	for _, a := range inst.Active {
		if st.Bool(a) {
			return false
		}
	}
	return true
}

// Detector observes a run and records detection events: each root
// red -> green transition announces "computation terminated".
type Detector struct {
	inst *Instance
	root int
	// prevRootRed tracks the root's color at the previous observation.
	prevRootRed bool
	// Detections counts announcements; FalseDetections counts those made
	// while some node was still active (possible only transiently, after
	// faults).
	Detections, FalseDetections int
	// FirstDetection is the step of the first announcement, or -1.
	FirstDetection int
	steps          int
}

// NewDetector returns a detector for the instance.
func NewDetector(inst *Instance) *Detector {
	return &Detector{inst: inst, root: inst.Tree.Root(), FirstDetection: -1}
}

// Observe processes one post-step state.
func (d *Detector) Observe(st *program.State) {
	d.steps++
	rootRed := st.Get(d.inst.C[d.root]) == diffusing.Red
	if d.prevRootRed && !rootRed {
		d.Detections++
		if d.FirstDetection < 0 {
			d.FirstDetection = d.steps
		}
		if !d.inst.Terminated(st) {
			d.FalseDetections++
		}
	}
	d.prevRootRed = rootRed
}
