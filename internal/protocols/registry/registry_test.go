package registry

import (
	"context"
	"testing"

	"nonmask/internal/verify"
)

func TestCatalogBuildsEveryEntry(t *testing.T) {
	for _, e := range Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			inst, err := Build(e.Name, Params{N: 3})
			if err != nil {
				t.Fatalf("Build(%s): %v", e.Name, err)
			}
			if inst.Program == nil || inst.S == nil {
				t.Fatalf("Build(%s): incomplete instance %+v", e.Name, inst)
			}
			if inst.Name == "" {
				t.Fatalf("Build(%s): empty instance name", e.Name)
			}
			if err := inst.Program.Validate(); err != nil {
				t.Fatalf("Build(%s): invalid program: %v", e.Name, err)
			}
		})
	}
}

func TestNormalizeIsCanonical(t *testing.T) {
	// Defaults fill in: an empty Params and the explicitly spelled-out
	// defaults must normalize identically.
	got, err := Normalize("tokenring-ring", Params{})
	if err != nil {
		t.Fatal(err)
	}
	want := Params{N: 5, K: 7}
	if got != want {
		t.Fatalf("Normalize(tokenring-ring, {}) = %+v, want %+v", got, want)
	}
	// Unused fields are zeroed so they cannot split the cache.
	got, err = Normalize("threestate", Params{N: 4, K: 9, Tree: "star", Graph: "ring", Variant: "x", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if (got != Params{N: 4}) {
		t.Fatalf("Normalize(threestate) kept unused fields: %+v", got)
	}
	// Seed only matters for random trees.
	got, _ = Normalize("diffusing", Params{N: 3, Tree: "binary", Seed: 42})
	if got.Seed != 0 {
		t.Fatalf("Normalize(diffusing, binary) kept seed: %+v", got)
	}
	got, _ = Normalize("diffusing", Params{N: 3, Tree: "random"})
	if got.Seed != 1 {
		t.Fatalf("Normalize(diffusing, random) did not default seed: %+v", got)
	}
	if _, err := Normalize("no-such-protocol", Params{}); err == nil {
		t.Fatal("Normalize(unknown) succeeded")
	}
}

func TestParamsString(t *testing.T) {
	p := Params{N: 4, K: 6, Tree: "random", Seed: 2}
	if got, want := p.String(), "n=4 k=6 tree=random seed=2"; got != want {
		t.Fatalf("Params.String() = %q, want %q", got, want)
	}
	if got := (Params{}).String(); got != "" {
		t.Fatalf("zero Params.String() = %q, want empty", got)
	}
}

func TestBuiltInstanceIsCheckable(t *testing.T) {
	inst, err := Build("tokenring-ring", Params{N: 3, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := verify.Check(context.Background(), inst.Program, inst.S, inst.T)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Tolerant() {
		t.Fatalf("tokenring-ring(3,5) not tolerant:\n%s", rep.Summary())
	}
}

func TestBuildRejectsBadParams(t *testing.T) {
	if _, err := Build("diffusing", Params{Tree: "moebius"}); err == nil {
		t.Fatal("bad tree shape accepted")
	}
	if _, err := Build("spanningtree", Params{Graph: "torus"}); err == nil {
		t.Fatal("bad graph accepted")
	}
	if _, err := Build("xyz", Params{Variant: "bogus"}); err == nil {
		t.Fatal("bad variant accepted")
	}
}
