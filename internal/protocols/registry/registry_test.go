package registry

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"nonmask/internal/verify"
)

func TestCatalogBuildsEveryEntry(t *testing.T) {
	for _, e := range Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			inst, err := Build(e.Name, Params{N: 3})
			if err != nil {
				t.Fatalf("Build(%s): %v", e.Name, err)
			}
			if inst.Program == nil || inst.S == nil {
				t.Fatalf("Build(%s): incomplete instance %+v", e.Name, inst)
			}
			if inst.Name == "" {
				t.Fatalf("Build(%s): empty instance name", e.Name)
			}
			if err := inst.Program.Validate(); err != nil {
				t.Fatalf("Build(%s): invalid program: %v", e.Name, err)
			}
		})
	}
}

func TestNormalizeIsCanonical(t *testing.T) {
	// Defaults fill in: an empty Params and the explicitly spelled-out
	// defaults must normalize identically.
	got, err := Normalize("tokenring-ring", Params{})
	if err != nil {
		t.Fatal(err)
	}
	want := Params{N: 5, K: 7}
	if got != want {
		t.Fatalf("Normalize(tokenring-ring, {}) = %+v, want %+v", got, want)
	}
	// Unused fields are zeroed so they cannot split the cache.
	got, err = Normalize("threestate", Params{N: 4, K: 9, Tree: "star", Graph: "ring", Variant: "x", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if (got != Params{N: 4}) {
		t.Fatalf("Normalize(threestate) kept unused fields: %+v", got)
	}
	// Seed only matters for random trees.
	got, _ = Normalize("diffusing", Params{N: 3, Tree: "binary", Seed: 42})
	if got.Seed != 0 {
		t.Fatalf("Normalize(diffusing, binary) kept seed: %+v", got)
	}
	got, _ = Normalize("diffusing", Params{N: 3, Tree: "random"})
	if got.Seed != 1 {
		t.Fatalf("Normalize(diffusing, random) did not default seed: %+v", got)
	}
	if _, err := Normalize("no-such-protocol", Params{}); err == nil {
		t.Fatal("Normalize(unknown) succeeded")
	}
}

func TestParamsString(t *testing.T) {
	p := Params{N: 4, K: 6, Tree: "random", Seed: 2}
	if got, want := p.String(), "n=4 k=6 tree=random seed=2"; got != want {
		t.Fatalf("Params.String() = %q, want %q", got, want)
	}
	if got := (Params{}).String(); got != "" {
		t.Fatalf("zero Params.String() = %q, want empty", got)
	}
}

func TestBuiltInstanceIsCheckable(t *testing.T) {
	inst, err := Build("tokenring-ring", Params{N: 3, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := verify.Check(context.Background(), inst.Program, inst.S, inst.T)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Tolerant() {
		t.Fatalf("tokenring-ring(3,5) not tolerant:\n%s", rep.Summary())
	}
}

func TestValidateAgainstBounds(t *testing.T) {
	// Every entry's defaults must pass its own advertised bounds —
	// otherwise the service would reject a bare {"protocol": name} job.
	for _, e := range Entries() {
		if err := Validate(e.Name, Params{}); err != nil {
			t.Errorf("%s: defaults fail own bounds: %v", e.Name, err)
		}
	}

	// In-range explicit params pass.
	if err := Validate("tokenring-ring", Params{N: 3, K: 5}); err != nil {
		t.Fatalf("in-range ring rejected: %v", err)
	}

	// Out-of-range integers are rejected with the advertised range in the
	// error text (clients echo it to users).
	err := Validate("tokenring-ring", Params{N: 3, K: 500})
	if err == nil {
		t.Fatal("k=500 accepted")
	}
	if !strings.Contains(err.Error(), "advertised range [2, 64]") {
		t.Fatalf("rejection does not name the advertised range: %v", err)
	}
	if err := Validate("diffusing", Params{N: 1000}); err == nil {
		t.Fatal("n=1000 tree accepted")
	}

	// String vocabularies are enforced too.
	if err := Validate("spanningtree", Params{Graph: "torus"}); err == nil {
		t.Fatal("graph=torus accepted")
	}
	if err := Validate("xyz", Params{Variant: "bogus"}); err == nil {
		t.Fatal("variant=bogus accepted")
	}

	// Unknown protocols error like Normalize does.
	if err := Validate("no-such", Params{}); err == nil {
		t.Fatal("unknown protocol validated")
	}
}

func TestBoundsAdmitBuildableEdges(t *testing.T) {
	// The advertised Min/Max endpoints must actually build: bounds that
	// promise more than Build delivers would turn a pre-validated batch
	// point into a 400 at admission.
	for _, e := range Entries() {
		for _, p := range []Params{
			boundEdge(e.Bounds, false), // all mins
			boundEdge(e.Bounds, true),  // all maxes (may be slow to CHECK, but must BUILD)
		} {
			if _, err := e.Build(e.Normalize(p)); err != nil {
				t.Errorf("%s: advertised edge %+v does not build: %v", e.Name, p, err)
			}
		}
	}
}

// boundEdge picks the advertised extreme of every bounded field.
func boundEdge(b Bounds, max bool) Params {
	var p Params
	pick := func(r *IntRange) int {
		if r == nil {
			return 0
		}
		if max {
			return r.Max
		}
		return r.Min
	}
	p.N = pick(b.N)
	p.K = pick(b.K)
	return p
}

func TestBuildRejectsBadParams(t *testing.T) {
	if _, err := Build("diffusing", Params{Tree: "moebius"}); err == nil {
		t.Fatal("bad tree shape accepted")
	}
	if _, err := Build("spanningtree", Params{Graph: "torus"}); err == nil {
		t.Fatal("bad graph accepted")
	}
	if _, err := Build("xyz", Params{Variant: "bogus"}); err == nil {
		t.Fatal("bad variant accepted")
	}
}

func TestSupportedAnalyses(t *testing.T) {
	for _, e := range Entries() {
		got := e.SupportedAnalyses()
		if len(got) == 0 {
			t.Errorf("%s: advertises no analyses", e.Name)
		}
		found := false
		for _, a := range got {
			if a == AnalysisVerdict {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: does not advertise %q: %v", e.Name, AnalysisVerdict, got)
		}
	}
}

func TestValidateAnalyses(t *testing.T) {
	// Enumerable instance, every advertised analysis accepted.
	if err := ValidateAnalyses("diffusing", Params{N: 3},
		[]string{AnalysisVerdict, AnalysisMetrics, AnalysisSaboteur}, 0); err != nil {
		t.Errorf("enumerable saboteur rejected: %v", err)
	}
	// Unknown analysis named in the error.
	err := ValidateAnalyses("diffusing", Params{N: 3}, []string{"seance"}, 0)
	if err == nil || !strings.Contains(err.Error(), "seance") {
		t.Errorf("unknown analysis error = %v", err)
	}
	// Saboteur on a non-enumerable instance is rejected pre-queue with
	// the advertised bound in the error; the verdict analysis on the
	// same instance stays accepted (it can still be capped at runtime).
	big := Params{N: 12, K: 64} // 64^13 states, far beyond any cap
	if err := ValidateAnalyses("tokenring-ring", big, []string{AnalysisVerdict}, 0); err != nil {
		t.Errorf("verdict on big instance rejected: %v", err)
	}
	err = ValidateAnalyses("tokenring-ring", big, []string{AnalysisSaboteur}, 0)
	if err == nil || !strings.Contains(err.Error(), "enumerable") {
		t.Fatalf("saboteur on big instance: %v", err)
	}
	if !strings.Contains(err.Error(), fmt.Sprint(int64(1)<<26)) {
		t.Errorf("error does not name the advertised bound: %v", err)
	}
	// A custom cap is honoured and named.
	err = ValidateAnalyses("diffusing", Params{N: 5}, []string{AnalysisSaboteur}, 100)
	if err == nil || !strings.Contains(err.Error(), "100") {
		t.Errorf("custom cap error = %v", err)
	}
	// Out-of-bounds params still fail with the advertised range.
	err = ValidateAnalyses("tokenring-ring", Params{N: 99}, []string{AnalysisVerdict}, 0)
	if err == nil || !strings.Contains(err.Error(), "advertised range") {
		t.Errorf("bounds error = %v", err)
	}
	if err := ValidateAnalyses("no-such", Params{}, nil, 0); err == nil {
		t.Error("unknown protocol accepted")
	}
}
