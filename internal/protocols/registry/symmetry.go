package registry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"nonmask/internal/program"
	"nonmask/internal/verify"
)

// Symmetry advertisement (DESIGN §13). A catalog entry that knows a group
// of program automorphisms of its state space attaches a canonicalization
// hook to the built Instance; the verifier's quotient tier then runs every
// pass on orbit representatives alone. Advertising is the entry's
// responsibility and carries the soundness obligation spelled out on
// verify.Symmetry — the registry's symmetry tests discharge it by running
// verify.ValidateSymmetry exhaustively on small instances of every
// advertising family.
//
// Two groups are advertised today:
//
//	value rotation:      the mod-K token ring's actions and privilege
//	                     predicate only compare counters, so adding a
//	                     constant (mod K) to every x.j is an automorphism;
//	                     the orbit representative is the state with x.0 = 0
//	                     (factor K fewer states);
//	subtree isomorphism: the tree-wave protocols treat children
//	                     symmetrically, so exchanging isomorphic sibling
//	                     subtrees (equal per-node variable signatures and
//	                     equal shapes, recursively) is an automorphism; the
//	                     representative sorts each class of isomorphic
//	                     sibling subtrees by canonical value vector.

// ringRotation is the Z_K value-rotation group of the mod-K token ring:
// canonicalize by subtracting x[0] from every counter (mod K), making
// x[0] = 0 the representative. Every orbit has exactly K members, so the
// quotient has K^N states of the full K^(N+1).
//
// This is a symmetry of the ring variant only: guards compare counters for
// (in)equality and the effects (+1 mod K, copy) commute with rotation. The
// path variant's saturating increment does not commute, so NewPath
// advertises nothing.
func ringRotation(x []program.VarID, k int32) *verify.Symmetry {
	return &verify.Symmetry{
		Name: fmt.Sprintf("value-rotation(%d)", k),
		Canonicalize: func(st *program.State) {
			d := st.Get(x[0])
			if d == 0 {
				return
			}
			for _, id := range x {
				v := st.Get(id) - d
				if v < 0 {
					v += k
				}
				st.Set(id, v)
			}
		},
	}
}

// treeSymmetry builds the subtree-isomorphism group of a per-node tree
// program: nodes are identified from indexed variable names ("c[3]",
// "sn[3]" → node 3), two sibling subtrees are isomorphic when their
// variable signatures and child shapes match recursively, and
// canonicalization sorts each class of isomorphic sibling subtrees by its
// subtree value vector. Returns nil when the tree admits no exchange (no
// node has two isomorphic child subtrees) or when some variable does not
// fit the per-node naming scheme — advertising nothing is always sound.
func treeSymmetry(schema *program.Schema, parent []int) *verify.Symmetry {
	n := len(parent)
	if n < 2 {
		return nil
	}
	type nodeVar struct {
		base string
		id   program.VarID
	}
	perNode := make([][]nodeVar, n)
	for id := 0; id < schema.Len(); id++ {
		spec := schema.Spec(program.VarID(id))
		base, idx, ok := splitIndexed(spec.Name)
		if !ok {
			// A variable outside the name[j] scheme (reset's global "req")
			// is a fixed point of the exchange: sound as long as its role is
			// node-agnostic, which the registry's ValidateSymmetry tests
			// check exhaustively per advertising family.
			continue
		}
		if idx < 0 || idx >= n {
			return nil
		}
		perNode[idx] = append(perNode[idx], nodeVar{base: base, id: program.VarID(id)})
	}

	// Per-node variable order and signature. Cross-node alignment is by
	// base name, so isomorphic nodes exchange same-named variables.
	nodeVars := make([][]program.VarID, n)
	sig := make([]string, n)
	for j := 0; j < n; j++ {
		vars := perNode[j]
		sort.Slice(vars, func(a, b int) bool { return vars[a].base < vars[b].base })
		ids := make([]program.VarID, len(vars))
		var sb strings.Builder
		for i, v := range vars {
			ids[i] = v.id
			d := schema.Spec(v.id).Dom
			fmt.Fprintf(&sb, "%s:%d:%d:%d:%d;", v.base, d.Kind, d.Min, d.Max, len(d.Labels))
		}
		nodeVars[j] = ids
		sig[j] = sb.String()
	}

	root := -1
	children := make([][]int, n)
	for j, p := range parent {
		if p == j {
			if root >= 0 {
				return nil
			}
			root = j
			continue
		}
		if p < 0 || p >= n {
			return nil
		}
		children[p] = append(children[p], j)
	}
	if root < 0 {
		return nil
	}

	// Shape classes: two nodes share a class iff their signatures match
	// and their child class multisets match, recursively.
	shapeOf := map[string]int{}
	shape := make([]int, n)
	vecLen := make([]int, n)
	var classify func(j int) int
	classify = func(j int) int {
		ks := children[j]
		ids := make([]int, len(ks))
		vecLen[j] = len(nodeVars[j])
		for i, k := range ks {
			ids[i] = classify(k)
			vecLen[j] += vecLen[k]
		}
		sort.Ints(ids)
		key := sig[j] + fmt.Sprint(ids)
		v, ok := shapeOf[key]
		if !ok {
			v = len(shapeOf)
			shapeOf[key] = v
		}
		shape[j] = v
		return v
	}
	classify(root)

	// classGroups[j] lists the groups of j's children (node ids, ascending)
	// sharing a shape class, groups of size >= 2 only — the exchangeable
	// sibling sets.
	classGroups := make([][][]int, n)
	exchangeable := false
	for j := 0; j < n; j++ {
		byShape := map[int][]int{}
		for _, k := range children[j] {
			byShape[shape[k]] = append(byShape[shape[k]], k)
		}
		for _, grp := range byShape {
			if len(grp) >= 2 {
				classGroups[j] = append(classGroups[j], grp)
				exchangeable = true
			}
		}
		sort.Slice(classGroups[j], func(a, b int) bool { return classGroups[j][a][0] < classGroups[j][b][0] })
	}
	if !exchangeable {
		return nil
	}

	// Arena layout: each node's canonical subtree vector lives at a fixed
	// offset; the root's vector is the whole canonical value assignment in
	// pre-order (own variables, then children's vectors).
	off := make([]int, n)
	total := 0
	var layout func(j int)
	layout = func(j int) {
		off[j] = total
		total += vecLen[j]
		for _, k := range children[j] {
			layout(k)
		}
	}
	layout(root)

	// Canonicalize is hot (called per state from every sharded pass), so
	// scratch arenas are pooled rather than allocated per call.
	pool := &sync.Pool{New: func() any {
		return &treeScratch{arena: make([]int32, total), order: make([]int, n)}
	}}

	return &verify.Symmetry{
		Name: fmt.Sprintf("subtree-iso(%d)", n),
		Canonicalize: func(st *program.State) {
			sc := pool.Get().(*treeScratch)
			arena := sc.arena
			vec := func(j int) []int32 { return arena[off[j] : off[j]+vecLen[j]] }
			var rec func(j int)
			rec = func(j int) {
				v := arena[off[j]:off[j]]
				for _, id := range nodeVars[j] {
					v = append(v, st.Get(id))
				}
				for _, k := range children[j] {
					rec(k)
				}
				// Within each isomorphism class, feed the child vectors in
				// ascending lexicographic order; classes keep their slots
				// (identical shapes make the exchange slot-compatible).
				order := sc.order[:0]
				order = append(order, children[j]...)
				for _, grp := range classGroups[j] {
					pos := make([]int, 0, len(grp))
					for i, k := range order {
						if shape[k] == shape[grp[0]] {
							pos = append(pos, i)
						}
					}
					members := make([]int, len(pos))
					for i, p := range pos {
						members[i] = order[p]
					}
					sort.Slice(members, func(a, b int) bool {
						return lexLess(vec(members[a]), vec(members[b]))
					})
					for i, p := range pos {
						order[p] = members[i]
					}
				}
				for _, k := range order {
					v = append(v, vec(k)...)
				}
			}
			rec(root)
			rootVec := vec(root)
			pos := 0
			var wb func(j int)
			wb = func(j int) {
				for _, id := range nodeVars[j] {
					st.Set(id, rootVec[pos])
					pos++
				}
				for _, k := range children[j] {
					wb(k)
				}
			}
			wb(root)
			pool.Put(sc)
		},
	}
}

type treeScratch struct {
	arena []int32
	order []int
}

func lexLess(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// splitIndexed parses "base[idx]" variable names.
func splitIndexed(name string) (base string, idx int, ok bool) {
	open := strings.IndexByte(name, '[')
	if open <= 0 || !strings.HasSuffix(name, "]") {
		return "", 0, false
	}
	v, err := strconv.Atoi(name[open+1 : len(name)-1])
	if err != nil {
		return "", 0, false
	}
	return name[:open], v, true
}
