package registry

import (
	"context"
	"math"
	"testing"

	"nonmask/internal/program"
	"nonmask/internal/verify"
)

// advertisingCases lists small instances of every catalog family that
// advertises a symmetry group, sized so ValidateSymmetry's exhaustive
// successor-multiset check stays fast.
var advertisingCases = []struct {
	protocol string
	params   Params
}{
	{"tokenring-ring", Params{N: 3, K: 4}},
	{"tokenring-ring", Params{N: 4, K: 3}},
	{"diffusing", Params{N: 4, Tree: "star"}},
	{"diffusing", Params{N: 5, Tree: "binary"}},
	{"reset", Params{N: 3, Tree: "star"}},
	{"termination", Params{N: 4, Tree: "star"}},
	{"snapshot", Params{N: 3, Tree: "star"}},
}

// instancePreds gathers the predicates the advertised group must preserve:
// S, T and the stair chain. The per-constraint decomposition is
// deliberately NOT included — see Instance.Symmetry and
// TestConstraintDecompositionNotSymmetric.
func instancePreds(inst *Instance) []*program.Predicate {
	preds := []*program.Predicate{inst.S, inst.T}
	return append(preds, inst.Stair...)
}

// TestSymmetryAdvertisementsValid discharges the soundness obligation of
// every advertised group: exhaustive idempotence, predicate-invariance and
// successor-multiset checks on small instances of each advertising family.
func TestSymmetryAdvertisementsValid(t *testing.T) {
	for _, tc := range advertisingCases {
		tc := tc
		t.Run(tc.protocol+"/"+tc.params.String(), func(t *testing.T) {
			t.Parallel()
			inst, err := Build(tc.protocol, tc.params)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if inst.Symmetry == nil {
				t.Fatalf("%s %s advertises no symmetry", tc.protocol, tc.params)
			}
			if err := verify.ValidateSymmetry(context.Background(), inst.Program, inst.Symmetry, instancePreds(inst)...); err != nil {
				t.Fatalf("advertised symmetry %q is unsound: %v", inst.Symmetry.Name, err)
			}
		})
	}
}

// TestNoSymmetryWhereNoneExists pins the families and shapes that must NOT
// advertise: the path token ring (saturating increment does not commute
// with rotation) and chain trees (no isomorphic sibling subtrees).
func TestNoSymmetryWhereNoneExists(t *testing.T) {
	cases := []struct {
		protocol string
		params   Params
	}{
		{"tokenring-path", Params{N: 3, K: 4}},
		{"diffusing", Params{N: 4, Tree: "chain"}},
		{"reset", Params{N: 3, Tree: "chain"}},
		{"threestate", Params{N: 4}},
	}
	for _, tc := range cases {
		inst, err := Build(tc.protocol, tc.params)
		if err != nil {
			t.Fatalf("Build(%s): %v", tc.protocol, err)
		}
		if inst.Symmetry != nil {
			t.Errorf("%s %s advertises %q; want none", tc.protocol, tc.params, inst.Symmetry.Name)
		}
	}
}

// TestConstraintDecompositionNotSymmetric pins the documented boundary of
// the tree advertisement: the layered designs' per-constraint predicates
// are node-indexed, so the subtree exchange permutes them among each other
// instead of preserving each pointwise. ValidateSymmetry must therefore
// reject them — which is exactly why per-constraint recovery costs run on
// the full space (see Instance.Symmetry).
func TestConstraintDecompositionNotSymmetric(t *testing.T) {
	inst, err := Build("diffusing", Params{N: 4, Tree: "star"})
	if err != nil {
		t.Fatal(err)
	}
	specs := ConstraintSpecs(inst)
	if len(specs) == 0 {
		t.Fatal("diffusing advertises no constraint decomposition")
	}
	preds := make([]*program.Predicate, 0, len(specs))
	for _, s := range specs {
		preds = append(preds, s.Pred)
	}
	if err := verify.ValidateSymmetry(context.Background(), inst.Program, inst.Symmetry, preds...); err == nil {
		t.Fatal("per-constraint predicates validated as symmetric; the full-space requirement for constraint costs would be obsolete")
	}
}

// TestQuotientMatchesFull is the metamorphic core of the symmetry tier:
// checking an advertising instance on the quotient must reproduce the full
// product's verdict and weighted metrics (exact for counts, 1e-9 relative
// for value-iteration floats), at a strictly smaller representative count.
func TestQuotientMatchesFull(t *testing.T) {
	cases := []struct {
		protocol string
		params   Params
	}{
		{"tokenring-ring", Params{N: 3, K: 5}},
		{"diffusing", Params{N: 5, Tree: "binary"}},
		{"termination", Params{N: 4, Tree: "star"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.protocol+"/"+tc.params.String(), func(t *testing.T) {
			t.Parallel()
			inst, err := Build(tc.protocol, tc.params)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			// No constraint specs: the per-constraint decomposition is not
			// quotient-safe (TestConstraintDecompositionNotSymmetric).
			ctx := context.Background()
			full, err := verify.Check(ctx, inst.Program, inst.S, inst.T,
				verify.WithMetrics(), verify.WithSpaceMode(verify.SpaceFull))
			if err != nil {
				t.Fatalf("full check: %v", err)
			}
			quot, err := verify.Check(ctx, inst.Program, inst.S, inst.T,
				verify.WithMetrics(),
				verify.WithSpaceMode(verify.SpaceQuotient), verify.WithSymmetry(inst.Symmetry))
			if err != nil {
				t.Fatalf("quotient check: %v", err)
			}
			reps, _ := quot.Space.QuotientStats()
			if reps == 0 || reps >= full.Space.Count {
				t.Fatalf("quotient did not reduce: %d reps of %d states", reps, full.Space.Count)
			}
			if quot.Space.CountS() != full.Space.CountS() || quot.Space.CountT() != full.Space.CountT() {
				t.Fatalf("weighted |S|/|T| differ: quotient %d/%d, full %d/%d",
					quot.Space.CountS(), quot.Space.CountT(), full.Space.CountS(), full.Space.CountT())
			}
			if quot.Tolerant() != full.Tolerant() || quot.Classification != full.Classification {
				t.Fatalf("verdicts differ: quotient (%v, %s), full (%v, %s)",
					quot.Tolerant(), quot.Classification, full.Tolerant(), full.Classification)
			}
			fm, qm := full.Metrics, quot.Metrics
			if len(fm.Profile) != len(qm.Profile) {
				t.Fatalf("profile lengths differ: %v vs %v", fm.Profile, qm.Profile)
			}
			for d := range fm.Profile {
				if fm.Profile[d] != qm.Profile[d] {
					t.Fatalf("profile[%d]: full %d, quotient %d", d, fm.Profile[d], qm.Profile[d])
				}
			}
			if fm.MaxDistance != qm.MaxDistance || fm.UnreachableStates != qm.UnreachableStates ||
				fm.WorstMeasured != qm.WorstMeasured || fm.WorstSteps != qm.WorstSteps ||
				fm.ExpectedMeasured != qm.ExpectedMeasured {
				t.Fatalf("discrete metrics differ:\nfull:     %+v\nquotient: %+v", fm, qm)
			}
			for _, f := range []struct {
				name   string
				fv, qv float64
				relEps float64
			}{
				{"MeanDistance", fm.MeanDistance, qm.MeanDistance, 0},
				{"MeanWorstSteps", fm.MeanWorstSteps, qm.MeanWorstSteps, 0},
				{"ExpectedSteps", fm.ExpectedSteps, qm.ExpectedSteps, 1e-9},
				{"MeanExpectedSteps", fm.MeanExpectedSteps, qm.MeanExpectedSteps, 1e-9},
			} {
				if f.relEps == 0 {
					// Integer-weighted ratios: bit-identical by construction.
					if f.fv != f.qv {
						t.Errorf("%s: full %v, quotient %v", f.name, f.fv, f.qv)
					}
					continue
				}
				if diff := math.Abs(f.fv - f.qv); diff > f.relEps*math.Max(1, math.Abs(f.fv)) {
					t.Errorf("%s: full %v, quotient %v (diff %g)", f.name, f.fv, f.qv, diff)
				}
			}
		})
	}
}

// TestRingQuotientFactor pins the exact orbit structure of the ring's value
// rotation: every orbit has K members, so the quotient has K^N
// representatives of the full K^(N+1) states.
func TestRingQuotientFactor(t *testing.T) {
	inst, err := Build("tokenring-ring", Params{N: 3, K: 6})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := verify.Check(context.Background(), inst.Program, inst.S, inst.T,
		verify.WithSpaceMode(verify.SpaceQuotient), verify.WithSymmetry(inst.Symmetry))
	if err != nil {
		t.Fatal(err)
	}
	reps, _ := rep.Space.QuotientStats()
	want := int64(6 * 6 * 6) // K^N
	if reps != want {
		t.Fatalf("rotation quotient has %d reps; want %d", reps, want)
	}
	if rep.Space.FullCount != 6*want {
		t.Fatalf("full count %d; want %d", rep.Space.FullCount, 6*want)
	}
}
