// Package registry is the shared catalog of built-in protocol instances.
// It factors the construction switch that used to live in cmd/csverify into
// one table that the CLI and the verification service (internal/service)
// both consult, so a protocol added here is immediately checkable from the
// command line, servable over HTTP, and listable in GET /v1/protocols.
//
// Every entry normalizes its parameters (defaults filled in, unused fields
// zeroed) before building, which gives the service a canonical parameter
// vector to content-address results by: two requests that differ only in
// irrelevant or defaulted parameters hash to the same cache key.
package registry

import (
	"fmt"
	"sort"

	"nonmask/internal/core"
	"nonmask/internal/program"
	"nonmask/internal/protocols/composed"
	"nonmask/internal/protocols/diffusing"
	"nonmask/internal/protocols/fourstate"
	"nonmask/internal/protocols/reset"
	"nonmask/internal/protocols/snapshot"
	"nonmask/internal/protocols/spanningtree"
	"nonmask/internal/protocols/termination"
	"nonmask/internal/protocols/threestate"
	"nonmask/internal/protocols/tokenring"
	"nonmask/internal/protocols/xyz"
	"nonmask/internal/verify"
)

// Params is the instance-size parameter vector shared by every catalog
// entry. Each protocol reads the fields it cares about; Normalize zeroes
// the rest so that a Params value is canonical for caching.
type Params struct {
	// N is the instance size (nodes; for rings/paths the highest index).
	N int `json:"n,omitempty"`
	// K is the counter domain size for token rings (0 means N+2).
	K int `json:"k,omitempty"`
	// Tree is the tree shape for tree protocols: chain | star | binary | random.
	Tree string `json:"tree,omitempty"`
	// Graph is the topology for graph protocols: line | ring | complete | grid.
	Graph string `json:"graph,omitempty"`
	// Variant selects a protocol variant (xyz: interfering | out-tree | ordered).
	Variant string `json:"variant,omitempty"`
	// Seed drives random topologies (tree == "random").
	Seed int64 `json:"seed,omitempty"`
}

// String renders the canonical textual form used in cache keys and
// listings: fixed field order, zero-valued fields omitted.
func (p Params) String() string {
	s := ""
	app := func(format string, v interface{}) {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf(format, v)
	}
	if p.N != 0 {
		app("n=%d", p.N)
	}
	if p.K != 0 {
		app("k=%d", p.K)
	}
	if p.Tree != "" {
		app("tree=%s", p.Tree)
	}
	if p.Graph != "" {
		app("graph=%s", p.Graph)
	}
	if p.Variant != "" {
		app("variant=%s", p.Variant)
	}
	if p.Seed != 0 {
		app("seed=%d", p.Seed)
	}
	return s
}

// Instance is a built protocol instance reduced to the checkable triple
// the unified verify.Check entry point wants, plus the richer structures
// the CLI uses when they exist.
type Instance struct {
	// Name is the instance-qualified program name (e.g. "tokenring-ring(N=4,K=6)").
	Name string
	// Program is the program to check (for layered designs, p ∪ q).
	Program *program.Program
	// S is the invariant.
	S *program.Predicate
	// T is the fault-span; nil means true (stabilizing instance).
	T *program.Predicate
	// Design is the layered candidate triple when the protocol is built
	// with the paper's design method, nil for plain programs; the CLI uses
	// it for theorem validation.
	Design *core.Design
	// Stair lists intermediate predicates of a convergence stair
	// (true -> Stair... -> S) for protocols that have one, outermost first.
	Stair []*program.Predicate
	// Symmetry is the instance's advertised automorphism group (a
	// canonicalization hook for verify's quotient tier), nil when the entry
	// knows none. The advertised group preserves S, T and every Stair
	// predicate — the registry's tests discharge that obligation with
	// verify.ValidateSymmetry on small instances of every advertising
	// family (see symmetry.go). It does NOT preserve the per-constraint
	// decomposition of layered designs (ConstraintSpecs): those predicates
	// are node-indexed, so a subtree exchange permutes them among each
	// other instead of fixing each one. Consumers that want per-constraint
	// recovery costs must therefore check on the full space; verdicts,
	// stairs and the whole-invariant metrics are quotient-safe.
	Symmetry *verify.Symmetry
}

// IntRange is an inclusive validation range for an integer parameter.
type IntRange struct {
	Min int `json:"min"`
	Max int `json:"max"`
}

func (r *IntRange) contains(v int) bool { return r == nil || (v >= r.Min && v <= r.Max) }

// Bounds declares a catalog entry's parameter validation ranges. The
// service enforces them at single-job submission and batch-sweep
// expansion, and GET /v1/protocols advertises them so clients can
// pre-validate. Integer ranges are resource guards (the checker
// enumerates the state space, so oversized instances waste a queue slot
// before failing); string lists enumerate the accepted spellings. A nil
// range or empty list leaves that field unconstrained. Simulation
// (cssim) and the CLI bypass Bounds deliberately: cssim never enumerates
// and scales far past these, and csverify is the power-user escape hatch.
type Bounds struct {
	// N bounds the instance size.
	N *IntRange `json:"n,omitempty"`
	// K bounds the token-ring counter domain.
	K *IntRange `json:"k,omitempty"`
	// Tree lists the accepted tree shapes.
	Tree []string `json:"tree,omitempty"`
	// Graph lists the accepted graph topologies.
	Graph []string `json:"graph,omitempty"`
	// Variant lists the accepted protocol variants.
	Variant []string `json:"variant,omitempty"`
}

// check validates normalized parameters against the bounds, naming the
// advertised range in every rejection.
func (b Bounds) check(p Params) error {
	if !b.N.contains(p.N) {
		return fmt.Errorf("n=%d outside advertised range [%d, %d]", p.N, b.N.Min, b.N.Max)
	}
	if !b.K.contains(p.K) {
		return fmt.Errorf("k=%d outside advertised range [%d, %d]", p.K, b.K.Min, b.K.Max)
	}
	if err := inList("tree", p.Tree, b.Tree); err != nil {
		return err
	}
	if err := inList("graph", p.Graph, b.Graph); err != nil {
		return err
	}
	return inList("variant", p.Variant, b.Variant)
}

func inList(field, v string, allowed []string) error {
	if len(allowed) == 0 || v == "" {
		return nil
	}
	for _, a := range allowed {
		if v == a {
			return nil
		}
	}
	return fmt.Errorf("%s=%q not in advertised set %v", field, v, allowed)
}

// Shared string-parameter vocabularies, advertised in Bounds and resolved
// by PickTree / PickGraph / the xyz variant switch.
var (
	treeShapes  = []string{"chain", "star", "binary", "random"}
	graphNames  = []string{"line", "ring", "complete", "grid"}
	xyzVariants = []string{"interfering", "out-tree", "ordered"}
)

// Entry describes one catalog protocol.
type Entry struct {
	// Name is the catalog key (what csverify -protocol and the service's
	// job spec "protocol" field accept).
	Name string
	// Description is a one-line human summary for listings.
	Description string
	// Bounds are the advertised parameter validation ranges (see Bounds).
	Bounds Bounds
	// Normalize fills defaults into used fields and zeroes unused ones.
	Normalize func(Params) Params
	// Build constructs the instance from normalized parameters.
	Build func(Params) (*Instance, error)
	// Analyses lists the analyses/job types the entry supports, as
	// advertised by GET /v1/protocols. Empty means the full default set
	// (see SupportedAnalyses); entries with structural restrictions list
	// their subset explicitly.
	Analyses []string
}

// Analysis names entries advertise and ValidateAnalyses checks. They
// mirror the service's job-option spellings.
const (
	// AnalysisVerdict is the plain closure+convergence verdict.
	AnalysisVerdict = "verdict"
	// AnalysisMetrics is the quantitative tolerance-metrics suite.
	AnalysisMetrics = "metrics"
	// AnalysisSaboteur is the adversarial fault-schedule search; it
	// additionally requires the instance to be enumerable (the search
	// runs on the full transition graph).
	AnalysisSaboteur = "saboteur"
)

// allAnalyses is the default advertisement: every current catalog entry
// supports every analysis, saboteur subject to the per-instance
// enumerability check in ValidateAnalyses.
var allAnalyses = []string{AnalysisVerdict, AnalysisMetrics, AnalysisSaboteur}

// SupportedAnalyses returns the entry's advertised analyses (the default
// set when the entry lists none).
func (e *Entry) SupportedAnalyses() []string {
	if len(e.Analyses) > 0 {
		return e.Analyses
	}
	return allAnalyses
}

// fromDesign adapts a layered design to an Instance.
func fromDesign(d *core.Design) *Instance {
	return &Instance{
		Name:    d.Name,
		Program: d.TolerantProgram(),
		S:       d.S,
		T:       d.T,
		Design:  d,
	}
}

// PickTree resolves a tree-shape name for tree protocols; it is exported
// so front ends can build trees for protocol constructors not yet in the
// catalog.
func PickTree(shape string, n int, seed int64) (diffusing.Tree, error) {
	switch shape {
	case "chain":
		return diffusing.Chain(n), nil
	case "star":
		return diffusing.Star(n), nil
	case "binary":
		return diffusing.Binary(n), nil
	case "random":
		return diffusing.Random(n, seed), nil
	default:
		return diffusing.Tree{}, fmt.Errorf("unknown tree shape %q (want chain | star | binary | random)", shape)
	}
}

// PickGraph resolves a topology name for graph protocols.
func PickGraph(name string, n int) (spanningtree.Graph, error) {
	switch name {
	case "line":
		return spanningtree.Line(n), nil
	case "ring":
		return spanningtree.Ring(n), nil
	case "complete":
		return spanningtree.Complete(n), nil
	case "grid":
		return spanningtree.Grid(n, n), nil
	default:
		return spanningtree.Graph{}, fmt.Errorf("unknown graph %q (want line | ring | complete | grid)", name)
	}
}

// Parameter normalizers. Each fills defaults for the fields its protocols
// read and zeroes everything else, making the result canonical.

func normTree(defaultN int) func(Params) Params {
	return func(p Params) Params {
		out := Params{N: p.N, Tree: p.Tree, Seed: p.Seed}
		if out.N == 0 {
			out.N = defaultN
		}
		if out.Tree == "" {
			out.Tree = "binary"
		}
		if out.Tree != "random" {
			out.Seed = 0
		} else if out.Seed == 0 {
			out.Seed = 1
		}
		return out
	}
}

func normRing(defaultN int) func(Params) Params {
	return func(p Params) Params {
		out := Params{N: p.N, K: p.K}
		if out.N == 0 {
			out.N = defaultN
		}
		if out.K == 0 {
			out.K = out.N + 2
		}
		return out
	}
}

func normN(defaultN int) func(Params) Params {
	return func(p Params) Params {
		out := Params{N: p.N}
		if out.N == 0 {
			out.N = defaultN
		}
		return out
	}
}

func normGraph(defaultN int) func(Params) Params {
	return func(p Params) Params {
		out := Params{N: p.N, Graph: p.Graph}
		if out.N == 0 {
			out.N = defaultN
		}
		if out.Graph == "" {
			out.Graph = "line"
		}
		return out
	}
}

func normVariant(p Params) Params {
	out := Params{Variant: p.Variant}
	if out.Variant == "" {
		out.Variant = "out-tree"
	}
	return out
}

func buildTreeDesign(build func(diffusing.Tree) (*core.Design, error)) func(Params) (*Instance, error) {
	return func(p Params) (*Instance, error) {
		tr, err := PickTree(p.Tree, p.N, p.Seed)
		if err != nil {
			return nil, err
		}
		d, err := build(tr)
		if err != nil {
			return nil, err
		}
		inst := fromDesign(d)
		// The tree-wave protocols treat children uniformly, so exchanging
		// isomorphic sibling subtrees is an automorphism. Star and balanced
		// binary shapes have many such exchanges; chains have none (nil).
		inst.Symmetry = treeSymmetry(inst.Program.Schema, tr.Parent)
		return inst, nil
	}
}

// treeBounds is shared by the four tree-wave protocols; their state
// spaces grow with node count, so N is a resource guard.
var treeBounds = Bounds{N: &IntRange{Min: 2, Max: 32}, Tree: treeShapes}

var catalog = []*Entry{
	{
		Name:        "diffusing",
		Description: "diffusing computation on a tree (paper Section 4)",
		Bounds:      treeBounds,
		Normalize:   normTree(5),
		Build: buildTreeDesign(func(tr diffusing.Tree) (*core.Design, error) {
			inst, err := diffusing.New(tr)
			if err != nil {
				return nil, err
			}
			return inst.Design, nil
		}),
	},
	{
		Name:        "tokenring-path",
		Description: "token ring on a path, layered design (paper Section 5)",
		Bounds:      Bounds{N: &IntRange{Min: 1, Max: 12}, K: &IntRange{Min: 2, Max: 64}},
		Normalize:   normRing(5),
		Build: func(p Params) (*Instance, error) {
			inst, err := tokenring.NewPath(p.N, p.K)
			if err != nil {
				return nil, err
			}
			return fromDesign(inst.Design), nil
		},
	},
	{
		Name:        "tokenring-ring",
		Description: "Dijkstra-style mod-K token ring (paper Section 5)",
		Bounds:      Bounds{N: &IntRange{Min: 2, Max: 12}, K: &IntRange{Min: 2, Max: 64}},
		Normalize:   normRing(5),
		Build: func(p Params) (*Instance, error) {
			inst, err := tokenring.NewRing(p.N, p.K)
			if err != nil {
				return nil, err
			}
			return &Instance{
				Name:    inst.P.Name,
				Program: inst.P,
				S:       inst.S,
				// Adding a constant to every counter mod K commutes with
				// both ring actions and preserves the privilege counts, so
				// Z_K value rotation is an automorphism group; the quotient
				// is K times smaller. The path variant's saturating
				// increment does not commute, so it advertises nothing.
				Symmetry: ringRotation(inst.X, int32(inst.K)),
			}, nil
		},
	},
	{
		Name:        "threestate",
		Description: "Dijkstra's three-state machines on a line",
		Bounds:      Bounds{N: &IntRange{Min: 2, Max: 16}},
		Normalize:   normN(5),
		Build: func(p Params) (*Instance, error) {
			inst, err := threestate.New(p.N)
			if err != nil {
				return nil, err
			}
			return &Instance{Name: inst.P.Name, Program: inst.P, S: inst.S}, nil
		},
	},
	{
		Name:        "fourstate",
		Description: "Dijkstra's four-state machines on a line",
		Bounds:      Bounds{N: &IntRange{Min: 2, Max: 16}},
		Normalize:   normN(5),
		Build: func(p Params) (*Instance, error) {
			inst, err := fourstate.New(p.N)
			if err != nil {
				return nil, err
			}
			return &Instance{Name: inst.P.Name, Program: inst.P, S: inst.S}, nil
		},
	},
	{
		Name:        "spanningtree",
		Description: "self-stabilizing spanning tree over a graph (paper Section 6)",
		Bounds:      Bounds{N: &IntRange{Min: 2, Max: 10}, Graph: graphNames},
		Normalize:   normGraph(4),
		Build: func(p Params) (*Instance, error) {
			g, err := PickGraph(p.Graph, p.N)
			if err != nil {
				return nil, err
			}
			inst, err := spanningtree.New(g)
			if err != nil {
				return nil, err
			}
			return fromDesign(inst.Design), nil
		},
	},
	{
		Name:        "composed",
		Description: "spanning tree composed with tree-based mutual exclusion",
		Bounds:      Bounds{N: &IntRange{Min: 2, Max: 10}, Graph: graphNames},
		Normalize:   normGraph(4),
		Build: func(p Params) (*Instance, error) {
			g, err := PickGraph(p.Graph, p.N)
			if err != nil {
				return nil, err
			}
			inst, err := composed.New(g)
			if err != nil {
				return nil, err
			}
			return &Instance{
				Name:    inst.P.Name,
				Program: inst.P,
				S:       inst.S,
				Stair:   []*program.Predicate{inst.TreeOK},
			}, nil
		},
	},
	{
		Name:        "xyz",
		Description: "the paper's x/y/z interference example (Section 7)",
		Bounds:      Bounds{Variant: xyzVariants},
		Normalize:   normVariant,
		Build: func(p Params) (*Instance, error) {
			var v xyz.Variant
			switch p.Variant {
			case "interfering":
				v = xyz.Interfering
			case "out-tree":
				v = xyz.OutTree
			case "ordered":
				v = xyz.Ordered
			default:
				return nil, fmt.Errorf("unknown xyz variant %q (want interfering | out-tree | ordered)", p.Variant)
			}
			inst, err := xyz.New(v)
			if err != nil {
				return nil, err
			}
			return fromDesign(inst.Design), nil
		},
	},
	{
		Name:        "reset",
		Description: "diffusing reset wave on a tree",
		Bounds:      treeBounds,
		Normalize:   normTree(5),
		Build: buildTreeDesign(func(tr diffusing.Tree) (*core.Design, error) {
			inst, err := reset.New(tr)
			if err != nil {
				return nil, err
			}
			return inst.Design, nil
		}),
	},
	{
		Name:        "termination",
		Description: "termination detection on a tree",
		Bounds:      treeBounds,
		Normalize:   normTree(5),
		Build: buildTreeDesign(func(tr diffusing.Tree) (*core.Design, error) {
			inst, err := termination.New(tr)
			if err != nil {
				return nil, err
			}
			return inst.Design, nil
		}),
	},
	{
		Name:        "snapshot",
		Description: "snapshot collection on a tree",
		Bounds:      treeBounds,
		Normalize:   normTree(5),
		Build: buildTreeDesign(func(tr diffusing.Tree) (*core.Design, error) {
			inst, err := snapshot.New(tr)
			if err != nil {
				return nil, err
			}
			return inst.Design, nil
		}),
	},
}

var byName = func() map[string]*Entry {
	m := make(map[string]*Entry, len(catalog))
	for _, e := range catalog {
		m[e.Name] = e
	}
	return m
}()

// Entries returns the catalog sorted by name.
func Entries() []*Entry {
	out := make([]*Entry, len(catalog))
	copy(out, catalog)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted catalog keys.
func Names() []string {
	out := make([]string, 0, len(catalog))
	for _, e := range catalog {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// Lookup finds a catalog entry by name.
func Lookup(name string) (*Entry, bool) {
	e, ok := byName[name]
	return e, ok
}

// Normalize canonicalizes parameters for the named protocol: defaults are
// filled in and fields the protocol does not read are zeroed.
func Normalize(name string, p Params) (Params, error) {
	e, ok := byName[name]
	if !ok {
		return Params{}, fmt.Errorf("unknown protocol %q (known: %v)", name, Names())
	}
	return e.Normalize(p), nil
}

// Validate normalizes parameters for the named protocol and checks them
// against the entry's advertised Bounds. The service calls it before
// admitting single jobs and before expanding batch sweeps, so oversized
// instances are rejected pre-queue with the advertised range in the
// error; CLI front ends may skip it.
func Validate(name string, p Params) error {
	e, ok := byName[name]
	if !ok {
		return fmt.Errorf("unknown protocol %q (known: %v)", name, Names())
	}
	if err := e.Bounds.check(e.Normalize(p)); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	return nil
}

// ValidateAnalyses extends Validate with per-analysis requirements: each
// requested analysis must be advertised by the entry, and the saboteur —
// whose product-graph search needs the fully enumerated transition graph
// — rejects instances whose state space is not enumerable within
// maxStates (<= 0 means verify.DefaultMaxStates), naming the advertised
// bound in the error. Like Validate, it runs pre-queue: Build here only
// constructs the schema, it does not enumerate anything.
func ValidateAnalyses(name string, p Params, analyses []string, maxStates int64) error {
	e, ok := byName[name]
	if !ok {
		return fmt.Errorf("unknown protocol %q (known: %v)", name, Names())
	}
	norm := e.Normalize(p)
	if err := e.Bounds.check(norm); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if maxStates <= 0 {
		maxStates = verify.DefaultMaxStates
	}
	for _, an := range analyses {
		supported := false
		for _, s := range e.SupportedAnalyses() {
			if s == an {
				supported = true
				break
			}
		}
		if !supported {
			return fmt.Errorf("%s: analysis %q not supported (advertised: %v)", name, an, e.SupportedAnalyses())
		}
		if an != AnalysisSaboteur {
			continue
		}
		inst, err := e.Build(norm)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		count, ok := inst.Program.Schema.StateCount()
		if !ok {
			return fmt.Errorf("%s: saboteur requires an enumerable instance: state count overflows int64 (advertised bound: %d states)", name, maxStates)
		}
		if count > maxStates {
			return fmt.Errorf("%s: saboteur requires an enumerable instance: %d states exceeds the advertised bound of %d states", name, count, maxStates)
		}
	}
	return nil
}

// ConstraintSpecs returns the instance's invariant conjuncts as
// recovery-cost specs for the quantitative metrics analyses, in
// declaration (layer) order. Instances built without the paper's layered
// design method (plain programs like threestate or fourstate) expose no
// constraint decomposition and yield nil — the metrics then report only
// the whole-invariant numbers.
func ConstraintSpecs(inst *Instance) []verify.ConstraintSpec {
	if inst == nil {
		return nil
	}
	if inst.Design != nil && inst.Design.Set != nil {
		specs := make([]verify.ConstraintSpec, 0, len(inst.Design.Set.Constraints))
		for _, c := range inst.Design.Set.Constraints {
			specs = append(specs, verify.ConstraintSpec{Name: c.Pred.Name, Pred: c.Pred})
		}
		return specs
	}
	// Plain instances have no constraint set; the declared convergence
	// stair is the next best per-layer breakdown (each stair predicate is
	// a "holds and stays held" milestone on the way to S).
	specs := make([]verify.ConstraintSpec, 0, len(inst.Stair))
	for _, pred := range inst.Stair {
		specs = append(specs, verify.ConstraintSpec{Name: pred.Name, Pred: pred})
	}
	return specs
}

// Build normalizes parameters and constructs the named instance.
func Build(name string, p Params) (*Instance, error) {
	e, ok := byName[name]
	if !ok {
		return nil, fmt.Errorf("unknown protocol %q (known: %v)", name, Names())
	}
	return e.Build(e.Normalize(p))
}
