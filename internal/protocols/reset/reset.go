// Package reset implements a nonmasking fault-tolerant distributed reset
// on a rooted tree — the canonical application of diffusing computations
// the paper cites in Section 5.1 ("applications of diffusing computations
// include ... distributed reset") and the companion work [12] develops.
//
// Each node carries an application version v.j. A reset request at the root
// starts a diffusing wave (the Section 5.1 program extended to carry the
// new version): the red wave installs the root's fresh version down the
// tree; the green reflection acknowledges completion. The design inherits
// the diffusing computation's constraints, extended with version
// consistency along the red wave front:
//
//	R'.j = R.j  and  (c.j = red => v.j = v.(P.j))
//
// Whose convergence action copies color, session and version from the
// parent. The constraint graph is the same out-tree, so Theorem 1 validates
// the whole design: the reset is stabilizing fault-tolerant.
package reset

import (
	"fmt"

	"nonmask/internal/core"
	"nonmask/internal/program"
	"nonmask/internal/protocols/diffusing"
)

// Versions is the size of the version-number space (versions are counted
// modulo Versions).
const Versions = 4

// Instance is a distributed-reset design on one tree.
type Instance struct {
	Tree   diffusing.Tree
	Design *core.Design
	// C, Sn, V hold per-node color, session and version variables.
	C, Sn, V []program.VarID
	// Req is the root's pending-reset flag.
	Req program.VarID
	// Groups lists each node's variables for fault injection.
	Groups [][]program.VarID
}

// New builds the reset design for the given tree.
func New(t diffusing.Tree) (*Instance, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := t.N()
	root := t.Root()
	children := t.Children()

	b := core.NewDesign(fmt.Sprintf("reset(n=%d)", n))
	s := b.Schema()
	colors := program.Enum("green", "red")
	c := make([]program.VarID, n)
	sn := make([]program.VarID, n)
	v := make([]program.VarID, n)
	groups := make([][]program.VarID, n)
	for j := 0; j < n; j++ {
		c[j] = s.MustDeclare(fmt.Sprintf("c[%d]", j), colors)
		sn[j] = s.MustDeclare(fmt.Sprintf("sn[%d]", j), program.Bool())
		v[j] = s.MustDeclare(fmt.Sprintf("v[%d]", j), program.IntRange(0, Versions-1))
		groups[j] = []program.VarID{c[j], sn[j], v[j]}
	}
	req := s.MustDeclare("req", program.Bool())
	groups[root] = append(groups[root], req)

	inst := &Instance{Tree: t, C: c, Sn: sn, V: v, Req: req, Groups: groups}

	// Initiate: a pending request starts a wave carrying a fresh version.
	cR, snR, vR := c[root], sn[root], v[root]
	initiate := program.NewAction("initiate(root)", program.Closure,
		[]program.VarID{cR, snR, vR, req}, []program.VarID{cR, snR, vR, req},
		func(st *program.State) bool { return st.Get(cR) == diffusing.Green && st.Bool(req) },
		func(st *program.State) {
			st.Set(cR, diffusing.Red)
			st.SetBool(snR, !st.Bool(snR))
			st.Set(vR, (st.Get(vR)+1)%Versions)
			st.SetBool(req, false)
		})
	b.Closure(initiate)

	for j := 0; j < n; j++ {
		j := j
		pj := t.Parent[j]
		cj, snj, vj := c[j], sn[j], v[j]
		cp, snp, vp := c[pj], sn[pj], v[pj]

		if j != root {
			// Propagate the wave and install the parent's version.
			propagate := program.NewAction(fmt.Sprintf("propagate(%d)", j), program.Closure,
				[]program.VarID{cj, snj, cp, snp, vp}, []program.VarID{cj, snj, vj},
				func(st *program.State) bool {
					return st.Get(cj) == diffusing.Green && st.Get(cp) == diffusing.Red &&
						st.Bool(snj) != st.Bool(snp)
				},
				func(st *program.State) {
					st.Set(cj, st.Get(cp))
					st.SetBool(snj, st.Bool(snp))
					st.Set(vj, st.Get(vp))
				})
			b.Closure(propagate)
		}

		// Reflect once every child has completed.
		kids := children[j]
		reads := []program.VarID{cj, snj}
		for _, k := range kids {
			reads = append(reads, c[k], sn[k])
		}
		reflect := program.NewAction(fmt.Sprintf("reflect(%d)", j), program.Closure,
			reads, []program.VarID{cj},
			func(st *program.State) bool {
				if st.Get(cj) != diffusing.Red {
					return false
				}
				for _, k := range kids {
					if st.Get(c[k]) != diffusing.Green || st.Bool(sn[k]) != st.Bool(snj) {
						return false
					}
				}
				return true
			},
			func(st *program.State) { st.Set(cj, diffusing.Green) })
		b.Closure(reflect)

		if j != root {
			// R'.j = R.j and (c.j = red => v.j = v.(P.j)).
			rj := program.NewPredicate(fmt.Sprintf("R'[%d]", j),
				[]program.VarID{cj, snj, vj, cp, snp, vp},
				func(st *program.State) bool {
					base := (st.Get(cj) == st.Get(cp) && st.Bool(snj) == st.Bool(snp)) ||
						(st.Get(cj) == diffusing.Green && st.Get(cp) == diffusing.Red)
					if !base {
						return false
					}
					if st.Get(cj) == diffusing.Red && st.Get(vj) != st.Get(vp) {
						return false
					}
					return true
				})
			establish := program.NewAction(fmt.Sprintf("establish-R(%d)", j), program.Convergence,
				[]program.VarID{cj, snj, vj, cp, snp, vp}, []program.VarID{cj, snj, vj},
				func(st *program.State) bool { return !rj.Eval(st) },
				func(st *program.State) {
					st.Set(cj, st.Get(cp))
					st.SetBool(snj, st.Bool(snp))
					st.Set(vj, st.Get(vp))
				})
			b.Constraint(0, rj, establish)
		}
	}

	d, err := b.Build()
	if err != nil {
		return nil, err
	}
	inst.Design = d
	return inst, nil
}

// Quiet returns the quiescent legitimate state: all green, equal sessions,
// equal versions, no pending request.
func (inst *Instance) Quiet() *program.State {
	st := inst.Design.Schema.NewState()
	for j := range inst.C {
		st.Set(inst.C[j], diffusing.Green)
		st.SetBool(inst.Sn[j], false)
		st.Set(inst.V[j], 0)
	}
	st.SetBool(inst.Req, false)
	return st
}

// Request returns a copy of st with the reset request raised.
func (inst *Instance) Request(st *program.State) *program.State {
	next := st.Clone()
	next.SetBool(inst.Req, true)
	return next
}

// Completed reports whether a reset has fully installed: all nodes green
// with the root's version, no wave in flight.
func (inst *Instance) Completed(st *program.State) bool {
	rootV := st.Get(inst.V[inst.Tree.Root()])
	for j := range inst.C {
		if st.Get(inst.C[j]) != diffusing.Green || st.Get(inst.V[j]) != rootV {
			return false
		}
	}
	return true
}
