package reset

import (
	"math/rand"
	"testing"

	"nonmask/internal/ctheory"
	"nonmask/internal/daemon"
	"nonmask/internal/fault"
	"nonmask/internal/program"
	"nonmask/internal/protocols/diffusing"
	"nonmask/internal/sim"
	"nonmask/internal/verify"
)

func mustNew(t *testing.T, tr diffusing.Tree) *Instance {
	t.Helper()
	inst, err := New(tr)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return inst
}

// TestTheorem1Validates: the reset design's constraint graph is the same
// out-tree as the diffusing computation's, so Theorem 1 applies.
func TestTheorem1Validates(t *testing.T) {
	inst := mustNew(t, diffusing.Binary(7))
	r, _, err := inst.Design.Validate(verify.Projected, verify.Options{})
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if r == nil || r.Theorem != ctheory.Theorem1 {
		t.Fatalf("validated by %v, want Theorem 1", r)
	}
}

// TestStabilizes model-checks stabilization on small trees. The version
// variables enlarge the space, so trees stay small.
func TestStabilizes(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   diffusing.Tree
	}{
		{"chain3", diffusing.Chain(3)},
		{"star4", diffusing.Star(4)},
		{"binary4", diffusing.Binary(4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inst := mustNew(t, tc.tr)
			res, err := inst.Design.Verify(verify.Options{})
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if res.Closure != nil {
				t.Fatalf("closure violated: %v", res.Closure)
			}
			if !res.Unfair.Converges {
				t.Fatalf("not stabilizing: %s", res.Unfair.Summary())
			}
			t.Logf("%s: worst %d steps", tc.name, res.Unfair.WorstSteps)
		})
	}
}

// TestResetInstallsNewVersion is the service property: requesting a reset
// from the quiescent state installs a fresh version at every node and
// completes (root returns to green).
func TestResetInstallsNewVersion(t *testing.T) {
	inst := mustNew(t, diffusing.Binary(15))
	p := inst.Design.TolerantProgram()
	start := inst.Request(inst.Quiet())
	oldV := int32(0)

	r := &sim.Runner{
		P: p, S: inst.Design.S,
		D:        daemon.NewRoundRobin(p),
		MaxSteps: 5000,
	}
	res := r.Run(start, nil)
	final := res.Final
	if !inst.Completed(final) {
		t.Fatalf("reset did not complete: %s", final)
	}
	newV := final.Get(inst.V[0])
	if newV == oldV {
		t.Errorf("version not bumped: still %d", newV)
	}
	for j := range inst.V {
		if got := final.Get(inst.V[j]); got != newV {
			t.Errorf("node %d version = %d, want %d", j, got, newV)
		}
	}
	// No convergence actions on a fault-free run.
	if res.ActionCounts[program.Convergence] != 0 {
		t.Errorf("%d convergence actions fired fault-free", res.ActionCounts[program.Convergence])
	}
}

// TestRepeatedResets: each request installs a strictly newer version
// (mod Versions).
func TestRepeatedResets(t *testing.T) {
	inst := mustNew(t, diffusing.Chain(6))
	p := inst.Design.TolerantProgram()
	st := inst.Quiet()
	for round := 1; round <= 5; round++ {
		r := &sim.Runner{P: p, S: inst.Design.S, D: daemon.NewRoundRobin(p), MaxSteps: 2000}
		res := r.Run(inst.Request(st), nil)
		if !inst.Completed(res.Final) {
			t.Fatalf("round %d did not complete", round)
		}
		want := int32(round % Versions)
		if got := res.Final.Get(inst.V[0]); got != want {
			t.Fatalf("round %d version = %d, want %d", round, got, want)
		}
		st = res.Final
	}
}

// TestRecoversFromCorruption: corrupt any number of nodes mid-flight; the
// system reconverges and a subsequent reset still works end-to-end.
func TestRecoversFromCorruption(t *testing.T) {
	inst := mustNew(t, diffusing.Random(12, 5))
	p := inst.Design.TolerantProgram()
	rng := rand.New(rand.NewSource(9))
	inj := &fault.CorruptGroups{Groups: inst.Groups, K: 6}

	r := &sim.Runner{
		P: p, S: inst.Design.S,
		D:        daemon.NewRandom(31),
		MaxSteps: 200_000,
		StopAtS:  true,
	}
	batch := r.RunMany(50, rng, sim.CorruptedStates(inst.Request(inst.Quiet()), inj))
	if batch.ConvergenceRate() != 1 {
		t.Fatalf("convergence rate = %.2f", batch.ConvergenceRate())
	}

	// After recovery, a fresh request completes.
	res := r.Run(sim.CorruptedStates(inst.Quiet(), inj)(0, rng), rng)
	if !res.Converged {
		t.Fatal("did not reconverge")
	}
	follow := &sim.Runner{P: p, S: inst.Design.S, D: daemon.NewRoundRobin(p), MaxSteps: 5000}
	res2 := follow.Run(inst.Request(res.Final), nil)
	if !inst.Completed(res2.Final) {
		t.Error("post-recovery reset did not complete")
	}
}

func TestFootprintsHonest(t *testing.T) {
	inst := mustNew(t, diffusing.Binary(6))
	rng := rand.New(rand.NewSource(12))
	if err := inst.Design.TolerantProgram().Audit(rng, 100); err != nil {
		t.Error(err)
	}
	for _, c := range inst.Design.Set.Constraints {
		if err := program.AuditPredicate(inst.Design.Schema, c.Pred, rng, 100); err != nil {
			t.Error(err)
		}
	}
}

func TestNewRejectsInvalidTree(t *testing.T) {
	if _, err := New(diffusing.Tree{Parent: []int{1, 0}}); err == nil {
		t.Error("New accepted an invalid tree")
	}
}
