// Package cluster is csserved's peer layer: static membership over a
// -peers list, rendezvous (HRW) hashing from job fingerprints to owner
// nodes, forwarding clients, id-prefix reverse proxies, and the
// gossip-free anti-entropy loop that converges the replicas' verdict
// stores. It implements service.Router; cmd/csserved wires a Cluster
// into service.Config, and a single-node server never loads this
// package's code path (Router stays nil).
//
// The design leans on the content-addressed fingerprints the service
// already computes: the same spec hashes to the same key on every node,
// so ownership needs no coordination — every replica independently
// agrees on the owner. Verdicts are immutable (a fingerprint fully
// determines its result), which is what makes last-writer-wins
// anti-entropy safe: shipping any node's record for a key to any other
// node can never ship a conflicting value.
package cluster

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nonmask/internal/service"
	"nonmask/internal/service/client"
	"nonmask/internal/store"
)

// DefaultReplicateInterval is the anti-entropy pull cadence.
const DefaultReplicateInterval = 2 * time.Second

// forwardTimeout bounds one forwarded submission; forwarded submissions
// are admission calls (the remote returns once queued or cached), not
// full check runs.
const forwardTimeout = 15 * time.Second

// Config describes one node's view of the cluster.
type Config struct {
	// Self is this node's advertised base URL; it must appear in Peers.
	Self string
	// Peers lists every replica's base URL, self included. Node names
	// (n0..nK) follow the sorted URL order, so every replica derives the
	// same naming without coordination.
	Peers []string
	// ClusterToken is the shared secret peer calls authenticate with.
	// Empty works only when the service runs without tenant auth.
	ClusterToken string
	// Store, when set, is pulled from and applied to by the anti-entropy
	// loop. Nil disables replication (routing and proxying still work).
	Store *store.Store
	// ReplicateInterval is the anti-entropy cadence (default 2s).
	ReplicateInterval time.Duration
	// HTTPClient is the transport for peer calls (default
	// http.DefaultClient; tests inject httptest clients).
	HTTPClient *http.Client
	// Logger receives peer-layer records. Nil discards them.
	Logger *slog.Logger
}

// peer is one remote replica: its name, URL, forwarding client, and
// reverse proxy.
type peer struct {
	name  string
	url   string
	cli   *client.Client
	proxy *httputil.ReverseProxy

	// gen and offset are this node's anti-entropy cursor into the peer's
	// store log (guarded by the Cluster's replication loop, which is the
	// only writer).
	gen    uint64
	offset int64
}

// Cluster implements service.Router over a static peer set.
type Cluster struct {
	self     string // this node's name
	selfURL  string
	token    string
	store    *store.Store
	interval time.Duration
	hc       *http.Client
	log      *slog.Logger

	// nodes maps name → peer for every *remote* replica; names lists
	// every member (self included) in sorted-URL order.
	nodes map[string]*peer
	names []string

	// Anti-entropy counters (WriteMetrics renders them).
	replicatedRecords atomic.Int64
	replicateRounds   atomic.Int64
	replicateErrors   atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New validates the membership list and builds the peer table. Start
// launches the anti-entropy loop; a Cluster that is never started still
// routes and proxies.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Peers) < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 peers, have %d", len(cfg.Peers))
	}
	urls := make([]string, 0, len(cfg.Peers))
	seen := make(map[string]bool, len(cfg.Peers))
	for _, p := range cfg.Peers {
		u := strings.TrimRight(strings.TrimSpace(p), "/")
		if u == "" {
			return nil, fmt.Errorf("cluster: empty peer URL")
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate peer %s", u)
		}
		seen[u] = true
		urls = append(urls, u)
	}
	sort.Strings(urls)
	selfURL := strings.TrimRight(strings.TrimSpace(cfg.Self), "/")
	if !seen[selfURL] {
		return nil, fmt.Errorf("cluster: -self %s is not in the peer list %v", selfURL, urls)
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	interval := cfg.ReplicateInterval
	if interval <= 0 {
		interval = DefaultReplicateInterval
	}
	c := &Cluster{
		selfURL:  selfURL,
		token:    cfg.ClusterToken,
		store:    cfg.Store,
		interval: interval,
		hc:       hc,
		log:      logger,
		nodes:    make(map[string]*peer, len(urls)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for i, u := range urls {
		name := fmt.Sprintf("n%d", i)
		c.names = append(c.names, name)
		if u == selfURL {
			c.self = name
			continue
		}
		target, err := url.Parse(u)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %s: %w", u, err)
		}
		p := &peer{
			name: name,
			url:  u,
			// The replication client retries pushback itself; forwarding
			// clients are built per call with the caller's tenant headers.
			cli: client.New(u, hc).WithToken(cfg.ClusterToken),
		}
		p.proxy = newProxy(target, name, logger)
		c.nodes[name] = p
	}
	return c, nil
}

// newProxy builds the reverse proxy for id-addressed requests owned by
// a peer. FlushInterval is negative so proxied SSE streams flush every
// event immediately instead of buffering.
func newProxy(target *url.URL, name string, logger *slog.Logger) *httputil.ReverseProxy {
	rp := httputil.NewSingleHostReverseProxy(target)
	rp.FlushInterval = -1
	rp.ErrorLog = slog.NewLogLogger(logger.Handler(), slog.LevelWarn)
	rp.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		logger.Warn("proxy failed", "node", name, "path", r.URL.Path, "error", err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprintf(w, `{"error":%q}`, "node "+name+" unreachable: "+err.Error())
	}
	return rp
}

// Nodes lists every member's name in sorted-URL order (self included).
func (c *Cluster) Nodes() []string { return append([]string(nil), c.names...) }

// NodeName implements service.Router.
func (c *Cluster) NodeName() string { return c.self }

// Owner implements service.Router: rendezvous hashing picks, for each
// fingerprint, the member whose (node, key) hash is highest. Every
// replica computes the same winner, and removing a node only remaps the
// keys that node owned.
func (c *Cluster) Owner(key string) (string, bool) {
	var (
		best     string
		bestHash uint64
	)
	for _, name := range c.names {
		if s := rendezvousScore(name, key); best == "" || s > bestHash || (s == bestHash && name < best) {
			best, bestHash = name, s
		}
	}
	return best, best == c.self
}

// rendezvousScore hashes one (node, key) pair. FNV-1a alone is not
// enough here: a difference only in the key's trailing bytes barely
// perturbs the sum's high bits, so keys sharing a long prefix would
// rank the members identically and ownership would collapse onto one
// node. The splitmix64 finalizer avalanches every input bit across the
// whole word, which is what makes the per-key member ranking
// independent across keys.
func rendezvousScore(name, key string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, name)
	h.Write([]byte{0})
	io.WriteString(h, key)
	s := h.Sum64()
	s ^= s >> 30
	s *= 0xbf58476d1ce4e5b9
	s ^= s >> 27
	s *= 0x94d049bb133111eb
	s ^= s >> 31
	return s
}

// forwardClient builds the per-call client a forwarded submission uses:
// cluster-authenticated, attributing the originating tenant, marked
// forwarded so the owner runs it locally (loop-freedom).
func (c *Cluster) forwardClient(p *peer, tenant string) *client.Client {
	fc := client.New(p.url, c.hc).WithToken(c.token).
		WithHeader(service.ForwardedHeader, "1")
	if tenant != "" {
		fc = fc.WithHeader(service.TenantHeader, tenant)
	}
	return fc
}

// SubmitRemote implements service.Router.
func (c *Cluster) SubmitRemote(ctx context.Context, node, tenant string, spec service.JobSpec) (service.JobStatus, error) {
	p, ok := c.nodes[node]
	if !ok {
		return service.JobStatus{}, fmt.Errorf("cluster: unknown node %s", node)
	}
	ctx, cancel := context.WithTimeout(ctx, forwardTimeout)
	defer cancel()
	return c.forwardClient(p, tenant).Submit(ctx, spec)
}

// RunRemote implements service.Router: it forwards the submission and
// waits for the terminal state — the batch fan-out's member path. No
// timeout beyond ctx: the check may legitimately run to its deadline.
func (c *Cluster) RunRemote(ctx context.Context, node, tenant string, spec service.JobSpec) (service.JobStatus, error) {
	p, ok := c.nodes[node]
	if !ok {
		return service.JobStatus{}, fmt.Errorf("cluster: unknown node %s", node)
	}
	return c.forwardClient(p, tenant).Run(ctx, spec)
}

// ProxyHTTP implements service.Router.
func (c *Cluster) ProxyHTTP(node string, w http.ResponseWriter, r *http.Request) bool {
	p, ok := c.nodes[node]
	if !ok {
		return false
	}
	p.proxy.ServeHTTP(w, r)
	return true
}

// Start launches the anti-entropy loop. No-op without a store.
func (c *Cluster) Start() {
	if c.store == nil {
		close(c.done)
		return
	}
	go c.replicateLoop()
}

// Close stops the anti-entropy loop and waits for it to exit.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// replicateLoop pulls every peer's store log on the configured cadence.
// Pull (not push) keeps the protocol gossip-free and self-healing: a
// node that was down simply resumes from its cursors, and a peer that
// compacted or restarted bumps its generation, which resets the cursor
// to a full re-read — idempotent Apply makes the re-read cheap.
func (c *Cluster) replicateLoop() {
	defer close(c.done)
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.replicateOnce(context.Background())
		case <-c.stop:
			return
		}
	}
}

// replicateOnce runs one anti-entropy round: for each peer, drain its
// log from the cursor to the tip, applying every record to the local
// store. Errors count and log but never stop the round — a dead peer
// must not block convergence with the live ones.
func (c *Cluster) replicateOnce(ctx context.Context) {
	c.replicateRounds.Add(1)
	for _, name := range c.names {
		p, ok := c.nodes[name]
		if !ok {
			continue // self
		}
		if err := c.pullPeer(ctx, p); err != nil {
			c.replicateErrors.Add(1)
			c.log.Debug("anti-entropy pull failed", "peer", p.name, "error", err)
		}
	}
}

// pullPeer drains one peer's log from the saved cursor.
func (c *Cluster) pullPeer(ctx context.Context, p *peer) error {
	for {
		ctx, cancel := context.WithTimeout(ctx, forwardTimeout)
		resp, err := p.cli.Replicate(ctx, service.ReplicateRequest{Gen: p.gen, Offset: p.offset})
		cancel()
		if err != nil {
			return err
		}
		applied := 0
		for _, rec := range resp.Records {
			fresh, aerr := c.store.Apply(rec.Key, rec.Value)
			if aerr != nil {
				return fmt.Errorf("apply %s: %w", rec.Key, aerr)
			}
			if fresh {
				applied++
			}
		}
		p.gen, p.offset = resp.Gen, resp.Next
		if applied > 0 {
			c.replicatedRecords.Add(int64(applied))
			c.log.Info("replicated records", "peer", p.name, "records", applied)
		}
		if !resp.More {
			return nil
		}
	}
}

// WriteMetrics implements service.Router: the peer layer's Prometheus
// text metrics, appended to the service's /metrics exposition.
func (c *Cluster) WriteMetrics(w io.Writer) {
	line := func(name, typ, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, typ, name, v)
	}
	line("csserved_cluster_peers", "gauge", "Cluster membership size (self included).", int64(len(c.names)))
	line("csserved_replicated_records_total", "counter", "Store records applied from peers by anti-entropy pulls.", c.replicatedRecords.Load())
	line("csserved_replicate_rounds_total", "counter", "Completed anti-entropy rounds.", c.replicateRounds.Load())
	line("csserved_replicate_errors_total", "counter", "Failed anti-entropy pulls (dead or lagging peers).", c.replicateErrors.Load())
}
