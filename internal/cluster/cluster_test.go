package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nonmask/internal/protocols/registry"
	"nonmask/internal/service"
	"nonmask/internal/service/client"
	"nonmask/internal/store"
)

func TestNewValidatesMembership(t *testing.T) {
	for name, cfg := range map[string]Config{
		"too-few":     {Self: "http://a", Peers: []string{"http://a"}},
		"self-absent": {Self: "http://c", Peers: []string{"http://a", "http://b"}},
		"duplicate":   {Self: "http://a", Peers: []string{"http://a", "http://a/"}},
		"empty-peer":  {Self: "http://a", Peers: []string{"http://a", "  "}},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNodeNamesFollowSortedURLOrder(t *testing.T) {
	// Peer order in the flag must not matter: every replica sorts the URLs
	// and derives the same n0..nK naming.
	urls := []string{"http://host-b:1", "http://host-a:1", "http://host-c:1"}
	c, err := New(Config{Self: "http://host-c:1", Peers: urls})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Nodes(); len(got) != 3 || got[0] != "n0" || got[2] != "n2" {
		t.Fatalf("nodes = %v", got)
	}
	if c.NodeName() != "n2" { // host-c sorts last
		t.Fatalf("self = %s, want n2", c.NodeName())
	}
}

// TestOwnerIsDeterministicAndSpread checks the rendezvous hash: every
// member computes the same owner for every key, and ownership spreads
// across the members rather than collapsing onto one.
func TestOwnerIsDeterministicAndSpread(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	members := make([]*Cluster, len(urls))
	for i, u := range urls {
		c, err := New(Config{Self: u, Peers: urls})
		if err != nil {
			t.Fatal(err)
		}
		members[i] = c
	}
	counts := map[string]int{}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("sha256:%064d", i)
		owner, _ := members[0].Owner(key)
		for _, m := range members[1:] {
			if got, _ := m.Owner(key); got != owner {
				t.Fatalf("members disagree on %s: %s vs %s", key, owner, got)
			}
		}
		counts[owner]++
	}
	for _, name := range members[0].Nodes() {
		if counts[name] == 0 {
			t.Fatalf("node %s owns nothing across 200 keys: %v", name, counts)
		}
	}
	// local must be true exactly on the owner.
	key := "sha256:deadbeef"
	owner, _ := members[0].Owner(key)
	for i, m := range members {
		_, local := m.Owner(key)
		if local != (m.NodeName() == owner) {
			t.Fatalf("member %d: local=%v, owner=%s, self=%s", i, local, owner, m.NodeName())
		}
	}
}

// swapHandler lets an httptest server come up before the service that
// will back it exists — the cluster needs the listener URLs, the
// service needs the cluster.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "not wired yet", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// testNode is one replica of the in-process 3-node cluster.
type testNode struct {
	ts      *httptest.Server
	store   *store.Store
	cluster *Cluster
	srv     *service.Server
	cli     *client.Client
}

const testClusterToken = "ct-secret"

// newTestCluster boots n replicas, each with its own store, wired into
// one membership list.
func newTestCluster(t *testing.T, n int) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	urls := make([]string, n)
	for i := range nodes {
		sh := &swapHandler{}
		ts := httptest.NewServer(sh)
		st, err := store.Open(t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = &testNode{ts: ts, store: st}
		urls[i] = ts.URL
		t.Cleanup(ts.Close)
		t.Cleanup(func() { st.Close() })
		// Rebind the handler at the end of setup.
		defer func(i int, sh *swapHandler) { sh.set(nodes[i].srv.Handler()) }(i, sh)
	}
	for i, node := range nodes {
		cl, err := New(Config{
			Self:         urls[i],
			Peers:        urls,
			ClusterToken: testClusterToken,
			Store:        node.store,
			HTTPClient:   node.ts.Client(),
		})
		if err != nil {
			t.Fatal(err)
		}
		node.cluster = cl
		node.srv = service.New(service.Config{
			NodeName:     cl.NodeName(),
			Router:       cl,
			Store:        node.store,
			ClusterToken: testClusterToken,
		})
		node.cli = client.New(urls[i], node.ts.Client())
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = node.srv.Shutdown(ctx)
		})
	}
	return nodes
}

// antiEntropy runs rounds of pulls on every node until every store holds
// the same key set (or the deadline passes).
func antiEntropy(t *testing.T, nodes []*testNode) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, n := range nodes {
			n.cluster.replicateOnce(context.Background())
		}
		if storesConverged(nodes) {
			return
		}
		if time.Now().After(deadline) {
			for i, n := range nodes {
				t.Logf("node %d keys: %v", i, n.store.Keys())
			}
			t.Fatal("stores never converged")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func storesConverged(nodes []*testNode) bool {
	want := nodes[0].store.Keys()
	if len(want) == 0 {
		return false
	}
	for _, n := range nodes[1:] {
		got := n.store.Keys()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
	}
	return true
}

func ringSpec(n, k int) service.JobSpec {
	return service.JobSpec{Protocol: "tokenring-ring", Params: registry.Params{N: n, K: k}}
}

// TestClusterMetamorphic is the single-node vs 3-node metamorphic
// check: the Result a client reads must be byte-identical no matter
// which replica receives the request, and after anti-entropy every
// replica's store holds the same key set.
func TestClusterMetamorphic(t *testing.T) {
	nodes := newTestCluster(t, 3)
	ctx := context.Background()
	spec := ringSpec(3, 5)

	// Single-node reference: a plain server with no Router.
	ref := service.New(service.Config{})
	defer ref.Shutdown(ctx)
	refSt, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	refDone, _ := ref.WaitJob(ctx, refSt.ID, 30*time.Second)

	// Run the job through node 0 (whichever node owns it, the submission
	// is routed there) and wait for the verdict.
	first, err := nodes[0].cli.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.State != service.StateDone || first.Result == nil {
		t.Fatalf("cluster run ended %s (%s)", first.State, first.Error)
	}
	owner, _ := nodes[0].cluster.Owner(first.Key)
	if first.Node != owner {
		t.Fatalf("job ran on %s, owner is %s", first.Node, owner)
	}
	if !strings.HasPrefix(first.ID, owner+".") {
		t.Fatalf("id %s not prefixed with owner %s", first.ID, owner)
	}

	// The cluster's verdict must match the single-node server's on every
	// semantic field (wall-clock fields differ by construction).
	if refDone.Result.Verdict != first.Result.Verdict ||
		refDone.Result.States != first.Result.States ||
		refDone.Result.Daemon != first.Result.Daemon {
		t.Fatalf("cluster verdict diverges from single-node:\n%+v\nvs\n%+v",
			first.Result, refDone.Result)
	}

	// Metamorphic leg: resubmit the same spec through every replica. Each
	// must serve the cached verdict, byte-identical on the wire.
	var wire [][]byte
	for i, n := range nodes {
		st, err := n.cli.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("node %d resubmit: %v", i, err)
		}
		if st.State != service.StateDone || st.Result == nil || !st.Result.Cached {
			t.Fatalf("node %d resubmit not a warm hit: %+v", i, st)
		}
		st.Result.Cached = false // receiving-path flag, not verdict content
		b, err := json.Marshal(st.Result)
		if err != nil {
			t.Fatal(err)
		}
		wire = append(wire, b)
	}
	for i := 1; i < len(wire); i++ {
		if !bytes.Equal(wire[0], wire[i]) {
			t.Fatalf("result bytes differ between node 0 and node %d:\n%s\nvs\n%s",
				i, wire[0], wire[i])
		}
	}

	// Anti-entropy leg: every store converges to the same key set.
	antiEntropy(t, nodes)
	for i, n := range nodes {
		keys := n.store.Keys()
		if len(keys) != 1 || keys[0] != first.Key {
			t.Fatalf("node %d store keys = %v, want [%s]", i, keys, first.Key)
		}
	}
}

// TestDeadOwnerServesWarmCache kills the owner after replication and
// checks a survivor answers the same submission from its replicated
// store — zero new check runs.
func TestDeadOwnerServesWarmCache(t *testing.T) {
	nodes := newTestCluster(t, 3)
	ctx := context.Background()
	spec := ringSpec(4, 6)

	first, err := nodes[0].cli.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	antiEntropy(t, nodes)

	owner, _ := nodes[0].cluster.Owner(first.Key)
	var survivor *testNode
	for _, n := range nodes {
		if n.cluster.NodeName() == owner {
			n.ts.Close() // kill the owner
		} else if survivor == nil {
			survivor = n
		}
	}

	before := survivor.srv.Metrics().Completed.Load()
	st, err := survivor.cli.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("survivor submit: %v", err)
	}
	if st.State != service.StateDone || st.Result == nil || !st.Result.Cached {
		t.Fatalf("survivor did not serve the warm verdict: %+v", st)
	}
	if got := survivor.srv.Metrics().Completed.Load(); got != before {
		t.Fatalf("survivor ran %d new checks, want 0", got-before)
	}
}

// TestForwardFallbackRunsLocally covers the availability trade: when
// the owner is dead and the verdict is not replicated yet, the entry
// node runs the job itself instead of failing the submission.
func TestForwardFallbackRunsLocally(t *testing.T) {
	nodes := newTestCluster(t, 3)
	ctx := context.Background()

	// Find a spec owned by a node other than nodes[0]: fingerprint each
	// candidate on a throwaway executor-less server and hash it.
	var spec service.JobSpec
	var owner string
	for k := 5; k < 25; k++ {
		cand := ringSpec(3, k)
		ref := service.New(service.Config{Executors: -1})
		rst, rerr := ref.Submit(cand)
		if rerr != nil {
			t.Fatal(rerr)
		}
		ref.Shutdown(ctx)
		if o, local := nodes[0].cluster.Owner(rst.Key); !local {
			spec, owner = cand, o
			break
		}
	}
	if owner == "" {
		t.Fatal("no remotely-owned spec found")
	}
	for _, n := range nodes {
		if n.cluster.NodeName() == owner {
			n.ts.Close()
		}
	}
	st, err := nodes[0].cli.Run(ctx, spec)
	if err != nil {
		t.Fatalf("run with dead owner: %v", err)
	}
	if st.State != service.StateDone || st.Result == nil {
		t.Fatalf("fallback run ended %s (%s)", st.State, st.Error)
	}
	if st.Node != nodes[0].cluster.NodeName() {
		t.Fatalf("fallback ran on %s, want local %s", st.Node, nodes[0].cluster.NodeName())
	}
	if got := nodes[0].srv.Metrics().ForwardFallbacks.Load(); got != 1 {
		t.Fatalf("forward fallbacks = %d, want 1", got)
	}
}

// TestProxyRoutesByIDPrefix reads a job owned by one node through
// another node's API: the id prefix routes the GET.
func TestProxyRoutesByIDPrefix(t *testing.T) {
	nodes := newTestCluster(t, 3)
	ctx := context.Background()

	first, err := nodes[0].cli.Run(ctx, ringSpec(5, 7))
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range nodes {
		st, err := n.cli.Job(ctx, first.ID, 0)
		if err != nil {
			t.Fatalf("node %d: GET %s: %v", i, first.ID, err)
		}
		if st.ID != first.ID || st.State != service.StateDone {
			t.Fatalf("node %d sees %+v", i, st)
		}
	}
	// An id naming an unknown node falls through to the local 404.
	if _, err := nodes[0].cli.Job(ctx, "n9.j-00000001", 0); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown-node id: %v, want 404", err)
	}
}

// TestBatchFansAcrossReplicas sweeps k over a ring through one node and
// checks members actually ran on more than one replica — the shadow-job
// fan-out — while the batch's own record stays on the entry node.
func TestBatchFansAcrossReplicas(t *testing.T) {
	nodes := newTestCluster(t, 3)
	ctx := context.Background()

	bst, err := nodes[0].cli.SubmitBatch(ctx, service.BatchSpec{
		Sweep: &service.SweepSpec{
			Protocol: "tokenring-ring",
			Params:   registry.Params{N: 3},
			Ranges:   map[string]service.RangeSpec{"k": {From: 5, To: 12}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done, err := nodes[0].cli.WaitBatch(ctx, bst.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != service.BatchDone {
		t.Fatalf("batch ended %s: %+v", done.State, done.Counts)
	}
	if done.Counts.Done != 8 {
		t.Fatalf("members done = %d, want 8", done.Counts.Done)
	}
	// Member records live on the entry node (remote runs are mirrored by
	// local shadow jobs), so fan-out shows up in where checks executed:
	// more than one replica must have completed work.
	spread := 0
	for _, n := range nodes {
		if n.srv.Metrics().Completed.Load() > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("checks completed on %d node(s), want >= 2", spread)
	}
	if got := nodes[0].srv.Metrics().Forwarded.Load(); got == 0 {
		t.Fatal("entry node forwarded no members")
	}
	// Replicated verdicts converge onto every store.
	antiEntropy(t, nodes)
	if got := len(nodes[0].store.Keys()); got != 8 {
		t.Fatalf("node 0 store has %d keys after anti-entropy, want 8", got)
	}
	if got := nodes[0].cluster.replicatedRecords.Load(); got == 0 {
		t.Fatal("anti-entropy applied no records")
	}
}

// TestWriteMetricsRendersCounters spot-checks the peer layer's
// exposition fragment.
func TestWriteMetricsRendersCounters(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1"}
	c, err := New(Config{Self: urls[0], Peers: urls})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	c.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"csserved_cluster_peers 2",
		"csserved_replicated_records_total 0",
		"csserved_replicate_rounds_total 0",
		"csserved_replicate_errors_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
