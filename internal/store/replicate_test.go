package store

import (
	"fmt"
	"reflect"
	"testing"
)

func openTest(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{SyncInterval: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// drain pulls every record from src via the cursor protocol, as the
// anti-entropy loop does.
func drain(t *testing.T, src *Store, gen uint64, off int64, maxBytes int) ([]Record, uint64, int64) {
	t.Helper()
	var out []Record
	for {
		recs, g, next, more, err := src.Since(gen, off, maxBytes)
		if err != nil {
			t.Fatalf("since(%d,%d): %v", gen, off, err)
		}
		out = append(out, recs...)
		gen, off = g, next
		if !more {
			return out, gen, off
		}
	}
}

func TestSinceReturnsAppendsInOrder(t *testing.T) {
	s := openTest(t, t.TempDir())
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf(`{"v":%d}`, i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	recs, gen, off := drain(t, s, 0, 0, 0)
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if want := fmt.Sprintf("k%d", i); r.Key != want {
			t.Fatalf("record %d key %q, want %q", i, r.Key, want)
		}
	}
	// The cursor is caught up: a fresh pull returns nothing until a write.
	more, g2, off2 := mustSinceEmpty(t, s, gen, off)
	if more || g2 != gen || off2 != off {
		t.Fatalf("caught-up cursor moved: more=%v gen %d->%d off %d->%d", more, gen, g2, off, off2)
	}
	if err := s.Put("k9", []byte(`{"v":9}`)); err != nil {
		t.Fatalf("put: %v", err)
	}
	recs2, _, _ := drain(t, s, gen, off, 0)
	if len(recs2) != 1 || recs2[0].Key != "k9" {
		t.Fatalf("incremental pull got %+v, want just k9", recs2)
	}
}

func mustSinceEmpty(t *testing.T, s *Store, gen uint64, off int64) (bool, uint64, int64) {
	t.Helper()
	recs, g, next, more, err := s.Since(gen, off, 0)
	if err != nil {
		t.Fatalf("since: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("expected empty page, got %d records", len(recs))
	}
	return more, g, next
}

func TestSincePagesBySmallMaxBytes(t *testing.T) {
	s := openTest(t, t.TempDir())
	for i := 0; i < 20; i++ {
		if err := s.Put(fmt.Sprintf("key-%02d", i), []byte(`{"payload":"0123456789"}`)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	// A page far smaller than the log forces the straddling-record retry
	// path; every record must still arrive exactly once, in order.
	recs, _, _ := drain(t, s, 0, 0, 100)
	if len(recs) != 20 {
		t.Fatalf("paged drain got %d records, want 20", len(recs))
	}
	for i, r := range recs {
		if want := fmt.Sprintf("key-%02d", i); r.Key != want {
			t.Fatalf("record %d key %q, want %q", i, r.Key, want)
		}
	}
}

func TestSinceStaleGenerationRestartsFromZero(t *testing.T) {
	s := openTest(t, t.TempDir())
	for i := 0; i < 6; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i%2), []byte(fmt.Sprintf(`{"v":%d}`, i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	_, gen, off := drain(t, s, 0, 0, 0)
	if err := s.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if s.Generation() == gen {
		t.Fatalf("compaction did not bump the generation")
	}
	// The pre-compaction cursor restarts from zero and re-reads the whole
	// (compacted) log: newest record per key.
	recs, _, _ := drain(t, s, gen, off, 0)
	if len(recs) != 2 {
		t.Fatalf("post-compaction drain got %d records, want 2 live keys", len(recs))
	}
}

func TestApplyIsIdempotentAndConverges(t *testing.T) {
	dir := t.TempDir()
	a := openTest(t, dir+"/a")
	b := openTest(t, dir+"/b")
	if err := a.Put("shared", []byte(`{"v":1}`)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := a.Put("only-a", []byte(`{"v":2}`)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := b.Put("only-b", []byte(`{"v":3}`)); err != nil {
		t.Fatalf("put: %v", err)
	}

	// One mutual anti-entropy round: a→b, b→a.
	pull := func(dst, src *Store) int {
		applied := 0
		recs, _, _ := drain(t, src, 0, 0, 0)
		for _, r := range recs {
			did, err := dst.Apply(r.Key, r.Value)
			if err != nil {
				t.Fatalf("apply: %v", err)
			}
			if did {
				applied++
			}
		}
		return applied
	}
	if n := pull(b, a); n != 2 {
		t.Fatalf("b applied %d records from a, want 2", n)
	}
	if n := pull(a, b); n != 1 {
		t.Fatalf("a applied %d records from b, want 1 (shared and only-a must be skipped)", n)
	}
	if !reflect.DeepEqual(a.Keys(), b.Keys()) {
		t.Fatalf("key sets diverge: a=%v b=%v", a.Keys(), b.Keys())
	}
	// A second round is fully quiescent: no record ping-pongs.
	if n := pull(b, a); n != 0 {
		t.Fatalf("second round applied %d records into b, want 0", n)
	}
	if n := pull(a, b); n != 0 {
		t.Fatalf("second round applied %d records into a, want 0", n)
	}
	for _, key := range []string{"shared", "only-a", "only-b"} {
		va, ok := a.Get(key)
		if !ok {
			t.Fatalf("a missing %q", key)
		}
		vb, ok := b.Get(key)
		if !ok {
			t.Fatalf("b missing %q", key)
		}
		if string(va) != string(vb) {
			t.Fatalf("value for %q diverges: %s vs %s", key, va, vb)
		}
	}
}

func TestSinceSkipsCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	if err := s.Put("good-1", []byte(`{"v":1}`)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := s.Put("bad", []byte(`{"v":2}`)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := s.Put("good-2", []byte(`{"v":3}`)); err != nil {
		t.Fatalf("put: %v", err)
	}
	// Flip one payload byte of the middle record on disk.
	s.mu.Lock()
	var buf [1]byte
	// The middle record starts after record 1; find "bad" by scanning the
	// raw page we just wrote.
	page := make([]byte, s.size)
	if _, err := s.f.ReadAt(page, 0); err != nil {
		s.mu.Unlock()
		t.Fatalf("read: %v", err)
	}
	idx := int64(-1)
	for i := range page {
		if i+3 <= len(page) && string(page[i:i+3]) == "bad" {
			idx = int64(i)
			break
		}
	}
	if idx < 0 {
		s.mu.Unlock()
		t.Fatalf("marker not found in log")
	}
	buf[0] = page[idx] ^ 0xFF
	if _, err := s.f.WriteAt(buf[:], idx); err != nil {
		s.mu.Unlock()
		t.Fatalf("corrupt write: %v", err)
	}
	s.mu.Unlock()

	recs, _, _ := drain(t, s, 0, 0, 0)
	keys := make([]string, 0, len(recs))
	for _, r := range recs {
		keys = append(keys, r.Key)
	}
	if !reflect.DeepEqual(keys, []string{"good-1", "good-2"}) {
		t.Fatalf("replication served corrupt record: got %v", keys)
	}
}
