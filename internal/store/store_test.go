package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// openT opens a store with immediate fsync (no batching) so every test
// write is on disk before the next step.
func openT(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	if opts.SyncInterval == 0 {
		opts.SyncInterval = -1
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func logPath(dir string) string { return filepath.Join(dir, logName) }

func TestPutGetSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf(`{"n":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite one key: the newest record must win on recovery.
	if err := s.Put("key-3", []byte(`{"n":333}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{})
	st := s2.Stats()
	if st.RecoveredRecords != 11 {
		t.Fatalf("recovered %d records, want 11", st.RecoveredRecords)
	}
	if st.Keys != 10 {
		t.Fatalf("recovered %d keys, want 10", st.Keys)
	}
	if v, ok := s2.Get("key-3"); !ok || string(v) != `{"n":333}` {
		t.Fatalf("key-3 = %q %v, want newest record", v, ok)
	}
	if v, ok := s2.Get("key-7"); !ok || string(v) != `{"n":7}` {
		t.Fatalf("key-7 = %q %v", v, ok)
	}
	if _, ok := s2.Get("nope"); ok {
		t.Fatal("missing key reported present")
	}
}

// TestRecoveryTruncatedTail cuts the log mid-record (a torn final append,
// as a crash between write and fsync leaves it) and checks that recovery
// keeps every whole record, drops the tail, and leaves the store
// appendable.
func TestRecoveryTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), []byte(`{"v":true}`)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Chop 7 bytes off the last record (payload and part of its header
	// would both do; any non-boundary cut is a torn tail).
	info, err := os.Stat(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath(dir), info.Size()-7); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{})
	st := s2.Stats()
	if st.RecoveredRecords != 4 {
		t.Fatalf("recovered %d records, want 4", st.RecoveredRecords)
	}
	if st.TruncatedBytes == 0 {
		t.Fatal("torn tail not counted")
	}
	if _, ok := s2.Get("key-4"); ok {
		t.Fatal("torn record served")
	}
	// The tail was truncated away, so a fresh append lands on a clean
	// boundary and a third open sees everything.
	if err := s2.Put("key-4", []byte(`{"v":"again"}`)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := openT(t, dir, Options{})
	if st := s3.Stats(); st.RecoveredRecords != 5 || st.TruncatedBytes != 0 || st.SkippedCorrupt != 0 {
		t.Fatalf("after repair: %+v", st)
	}
	if v, ok := s3.Get("key-4"); !ok || string(v) != `{"v":"again"}` {
		t.Fatalf("key-4 = %q %v", v, ok)
	}
}

// TestRecoverySkipsCorruptRecord flips a payload byte in a mid-log record:
// recovery must skip exactly that record (counted), keep its neighbours,
// and not fail.
func TestRecoverySkipsCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), []byte(`{"v":1}`)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	data, err := os.ReadFile(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Walk to the second record and flip a byte inside its payload.
	len0 := binary.LittleEndian.Uint32(data[0:4])
	off1 := headerSize + int(len0)
	data[off1+headerSize+4] ^= 0xFF
	if err := os.WriteFile(logPath(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{})
	st := s2.Stats()
	if st.SkippedCorrupt != 1 {
		t.Fatalf("skipped %d corrupt records, want 1", st.SkippedCorrupt)
	}
	if st.RecoveredRecords != 2 {
		t.Fatalf("recovered %d records, want 2", st.RecoveredRecords)
	}
	if _, ok := s2.Get("key-1"); ok {
		t.Fatal("corrupt record served")
	}
	for _, k := range []string{"key-0", "key-2"} {
		if _, ok := s2.Get(k); !ok {
			t.Fatalf("%s lost alongside the corrupt record", k)
		}
	}
}

// TestRecoveryBogusLength corrupts a record's length field to an
// implausible value: the scan cannot realign past it, so everything from
// that point is a torn tail.
func TestRecoveryBogusLength(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), []byte(`{"v":1}`)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	data, err := os.ReadFile(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	len0 := binary.LittleEndian.Uint32(data[0:4])
	off1 := headerSize + int(len0)
	binary.LittleEndian.PutUint32(data[off1:off1+4], 0xFFFFFFFF)
	if err := os.WriteFile(logPath(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{})
	st := s2.Stats()
	if st.RecoveredRecords != 1 || st.TruncatedBytes == 0 {
		t.Fatalf("stats after bogus length: %+v", st)
	}
	if _, ok := s2.Get("key-0"); !ok {
		t.Fatal("record before the corruption lost")
	}
}

// TestCompactionKeepsNewestPerKey overwrites a small key set until the
// size trigger fires, then checks the rewritten log holds exactly the
// newest record per key — across the live handle and a reopen.
func TestCompactionKeepsNewestPerKey(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{CompactAt: 4 << 10})
	var last [4]int
	i := 0
	for s.Stats().Compactions == 0 {
		k := i % 4
		if err := s.Put(fmt.Sprintf("key-%d", k),
			[]byte(fmt.Sprintf(`{"gen":%d,"pad":%q}`, i, bytes.Repeat([]byte("x"), 128)))); err != nil {
			t.Fatal(err)
		}
		last[k] = i
		i++
		if i > 10_000 {
			t.Fatal("compaction never triggered")
		}
	}
	st := s.Stats()
	if st.LogBytes != st.LiveBytes {
		t.Fatalf("post-compaction log has garbage: log=%d live=%d", st.LogBytes, st.LiveBytes)
	}
	check := func(s *Store, when string) {
		t.Helper()
		for k := 0; k < 4; k++ {
			v, ok := s.Get(fmt.Sprintf("key-%d", k))
			if !ok {
				t.Fatalf("%s: key-%d lost", when, k)
			}
			want := fmt.Sprintf(`"gen":%d,`, last[k])
			if !bytes.Contains(v, []byte(want)) {
				t.Fatalf("%s: key-%d = %.60q..., want generation %d", when, k, v, last[k])
			}
		}
	}
	check(s, "live")
	s.Close()
	s2 := openT(t, dir, Options{})
	if got := s2.Stats().RecoveredRecords; got != 4 {
		t.Fatalf("compacted log recovered %d records, want 4", got)
	}
	check(s2, "reopened")
}

// TestConcurrentPutGet hammers the store from many goroutines (run under
// -race in CI) and verifies a reopen sees a consistent newest-wins image.
func TestConcurrentPutGet(t *testing.T) {
	dir := t.TempDir()
	// Batched sync + tiny compaction threshold: exercises the flusher and
	// inline compaction racing readers.
	s := openT(t, dir, Options{SyncInterval: time.Millisecond, CompactAt: 2 << 10})
	const (
		workers = 8
		keys    = 5
		rounds  = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := fmt.Sprintf("key-%d", (w+r)%keys)
				if err := s.Put(k, []byte(fmt.Sprintf(`{"w":%d,"r":%d}`, w, r))); err != nil {
					t.Error(err)
					return
				}
				if _, ok := s.Get(k); !ok {
					t.Errorf("%s missing right after put", k)
					return
				}
				s.Stats()
			}
		}(w)
	}
	wg.Wait()
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openT(t, dir, Options{})
	if got := s2.Len(); got != keys {
		t.Fatalf("reopened with %d keys, want %d", got, keys)
	}
}

func TestPutRejectsBadInput(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	if err := s.Put("", []byte(`{}`)); err == nil {
		t.Fatal("empty key accepted")
	}
	s.Close()
	if err := s.Put("k", []byte(`{}`)); err == nil {
		t.Fatal("put after close accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestOpenSweepsStaleCompactionTemp simulates a process killed between
// the compaction temp write and its rename commit: the leftover
// <log>.compact must be removed by the next Open, the old log stays
// authoritative, and a subsequent compaction works from a clean slate.
func TestOpenSweepsStaleCompactionTemp(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.Put("k", []byte(`{"n":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	stale := logPath(dir) + compactSuffix
	if err := os.WriteFile(stale, []byte("partial compaction output"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{})
	if got := s2.Stats().SweptTempFiles; got != 1 {
		t.Fatalf("SweptTempFiles = %d, want 1", got)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale compaction temp still present: %v", err)
	}
	if v, ok := s2.Get("k"); !ok || string(v) != `{"n":1}` {
		t.Fatalf("old log no longer authoritative: %q %v", v, ok)
	}
	if err := s2.Compact(); err != nil {
		t.Fatalf("compaction after sweep: %v", err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("compaction left its temp behind")
	}
	s2.Close()

	// A clean reopen sweeps nothing.
	s3 := openT(t, dir, Options{})
	if got := s3.Stats().SweptTempFiles; got != 0 {
		t.Fatalf("clean open swept %d temps, want 0", got)
	}
}
