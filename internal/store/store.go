// Package store is a dependency-free, crash-safe, append-only key/value
// store for verification verdicts. The on-disk format is a single log file
// of length-prefixed, CRC32C-checksummed JSON records keyed by the
// service's content-address fingerprint; the read path is an in-memory
// index rebuilt by a recovery scan at Open.
//
// The durability model is deliberately modest — entries are cache lines,
// not ledger rows. Appends are batched to one fsync per SyncInterval, so a
// crash can lose at most the last interval's records; the recovery scan
// tolerates a torn tail (truncated, not failed) and skips records whose
// checksum does not match (counted and logged, not failed). A
// size-triggered compaction rewrites the newest record per key into a
// fresh log and swaps it in with an atomic rename.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

const (
	// logName is the log file inside the store directory.
	logName = "verdicts.log"
	// compactSuffix names the compaction rewrite temp next to the log;
	// its rename over logName is the commit point, and Open sweeps any
	// crash leftover.
	compactSuffix = ".compact"
	// headerSize is the per-record prefix: uint32 payload length plus
	// uint32 CRC32C of the payload, both little-endian.
	headerSize = 8
	// maxRecordBytes bounds one record's payload. Verdict JSON is a few KiB
	// even with full pass spans; the bound exists so a corrupted length
	// field cannot send the recovery scan gigabytes off the rails.
	maxRecordBytes = 16 << 20

	defaultSyncInterval = 100 * time.Millisecond
	defaultCompactAt    = 8 << 20
)

// castagnoli is the CRC32C polynomial table (the same checksum SSDs and
// gRPC use; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a store. The zero value is production-ready.
type Options struct {
	// SyncInterval batches fsyncs: appends mark the log dirty and a
	// background flusher syncs at this cadence (default 100ms). Negative
	// syncs on every Put (slow; tests and one-shot CLI use).
	SyncInterval time.Duration
	// CompactAt is the log size in bytes past which an append triggers a
	// compaction rewrite, provided the log is also at least twice the live
	// data size (default 8 MiB). Negative disables auto-compaction.
	CompactAt int64
	// Logger receives recovery and compaction records. Nil discards.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.SyncInterval == 0 {
		o.SyncInterval = defaultSyncInterval
	}
	if o.CompactAt == 0 {
		o.CompactAt = defaultCompactAt
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return o
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	// Keys is the number of live keys in the index.
	Keys int
	// LogBytes is the current log file size.
	LogBytes int64
	// LiveBytes is the space the newest record per key occupies; the gap
	// to LogBytes is garbage a compaction would reclaim.
	LiveBytes int64
	// RecoveredRecords counts valid records read back by the Open scan.
	RecoveredRecords int64
	// SkippedCorrupt counts records the Open scan dropped on a CRC or
	// decode mismatch.
	SkippedCorrupt int64
	// TruncatedBytes counts trailing bytes the Open scan cut off as a torn
	// tail.
	TruncatedBytes int64
	// SweptTempFiles counts crash-leftover compaction temps removed at
	// Open (a kill between the temp write and its rename commit leaks the
	// temp; the old log stays authoritative, so the leftover is garbage).
	SweptTempFiles int64
	// Appends counts Put calls that reached the log.
	Appends int64
	// Compactions counts completed compaction rewrites.
	Compactions int64
	// Syncs counts fsyncs issued (batched flushes, compactions, Close).
	Syncs int64
}

// record is the JSON payload of one log entry.
type record struct {
	Key   string          `json:"k"`
	Value json.RawMessage `json:"v"`
}

// entry is one live index slot.
type entry struct {
	value []byte
	size  int64 // full on-disk record size (header + payload)
}

// Store is an open verdict store. All methods are safe for concurrent use.
type Store struct {
	dir  string
	path string
	opts Options
	log  *slog.Logger

	mu    sync.Mutex
	f     *os.File
	size  int64 // current log file size
	live  int64 // sum of entry.size over the index
	index map[string]entry
	dirty bool
	stats Stats
	done  bool
	// gen identifies this log's byte layout for replication cursors; it is
	// process-unique at Open and bumps on every compaction, which rewrites
	// the log and invalidates byte offsets (see Since in replicate.go).
	gen uint64

	flushStop chan struct{}
	flushDone chan struct{}
}

// Open creates dir if needed, replays the log into the in-memory index
// (tolerating a torn tail and skipping corrupt records), truncates any
// trailing garbage, and starts the batched-fsync flusher.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, logName)
	// Sweep crash leftovers before touching the log: a process killed
	// mid-compaction leaves <log>.compact behind (the rename never
	// committed, so the old log is still the authoritative copy).
	swept := int64(0)
	if err := os.Remove(path + compactSuffix); err == nil {
		swept++
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: sweep stale compaction temp: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:       dir,
		path:      path,
		opts:      opts,
		log:       opts.Logger,
		f:         f,
		index:     make(map[string]entry),
		gen:       newGeneration(),
		flushStop: make(chan struct{}),
		flushDone: make(chan struct{}),
	}
	s.stats.SweptTempFiles = swept
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	if swept > 0 {
		s.log.Info("store: swept stale compaction temp", "path", path+compactSuffix)
	}
	go s.flusher()
	return s, nil
}

// recover scans the log from the start, rebuilding the index. Valid
// records win newest-last; corrupt records are skipped and counted; a torn
// tail (short header, short payload, or implausible length) ends the scan
// and is truncated away so future appends start on a clean boundary.
func (s *Store) recover() error {
	data, err := io.ReadAll(s.f)
	if err != nil {
		return fmt.Errorf("store: read log: %w", err)
	}
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) < headerSize {
			if len(rest) > 0 {
				s.stats.TruncatedBytes = int64(len(rest))
			}
			break
		}
		length := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if length == 0 || length > maxRecordBytes {
			// A corrupted length field: nothing beyond this point can be
			// trusted to be record-aligned, so the rest is a torn tail.
			s.stats.TruncatedBytes = int64(len(rest))
			break
		}
		if int64(len(rest)) < headerSize+int64(length) {
			s.stats.TruncatedBytes = int64(len(rest))
			break
		}
		payload := rest[headerSize : headerSize+int64(length)]
		recSize := headerSize + int64(length)
		if crc32.Checksum(payload, castagnoli) != sum {
			s.stats.SkippedCorrupt++
			s.log.Warn("store: skipping corrupt record (crc mismatch)",
				"offset", off, "bytes", recSize)
			off += recSize
			continue
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil || rec.Key == "" {
			s.stats.SkippedCorrupt++
			s.log.Warn("store: skipping undecodable record", "offset", off, "bytes", recSize)
			off += recSize
			continue
		}
		if old, ok := s.index[rec.Key]; ok {
			s.live -= old.size
		}
		s.index[rec.Key] = entry{value: rec.Value, size: recSize}
		s.live += recSize
		s.stats.RecoveredRecords++
		off += recSize
	}
	if s.stats.TruncatedBytes > 0 {
		s.log.Warn("store: truncating torn tail", "offset", off, "bytes", s.stats.TruncatedBytes)
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncate torn tail: %w", err)
		}
	}
	if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.size = off
	if s.stats.RecoveredRecords > 0 || s.stats.SkippedCorrupt > 0 {
		s.log.Info("store: recovered",
			"keys", len(s.index),
			"records", s.stats.RecoveredRecords,
			"skipped_corrupt", s.stats.SkippedCorrupt,
			"truncated_bytes", s.stats.TruncatedBytes,
			"log_bytes", s.size)
	}
	return nil
}

// flusher batches appends into one fsync per SyncInterval.
func (s *Store) flusher() {
	defer close(s.flushDone)
	if s.opts.SyncInterval < 0 {
		return // every Put syncs inline
	}
	t := time.NewTicker(s.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.Lock()
			if s.dirty && !s.done {
				if err := s.syncLocked(); err != nil {
					s.log.Warn("store: batched fsync failed", "error", err)
				}
			}
			s.mu.Unlock()
		case <-s.flushStop:
			return
		}
	}
}

// syncLocked fsyncs the log (s.mu held).
func (s *Store) syncLocked() error {
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.dirty = false
	s.stats.Syncs++
	return nil
}

// Get returns a copy of the newest value stored under key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[key]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(e.value))
	copy(out, e.value)
	return out, true
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Put appends a record for key and updates the index. The write is
// durable after the next batched fsync (or immediately with a negative
// SyncInterval). Crossing the compaction threshold triggers an inline
// compaction rewrite.
func (s *Store) Put(key string, value []byte) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	payload, err := json.Marshal(record{Key: key, Value: json.RawMessage(value)})
	if err != nil {
		return fmt.Errorf("store: encode record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("store: record %d bytes exceeds cap %d", len(payload), maxRecordBytes)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return fmt.Errorf("store: closed")
	}
	if _, err := s.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if _, err := s.f.Write(payload); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	recSize := int64(headerSize + len(payload))
	s.size += recSize
	if old, ok := s.index[key]; ok {
		s.live -= old.size
	}
	v := make([]byte, len(value))
	copy(v, value)
	s.index[key] = entry{value: v, size: recSize}
	s.live += recSize
	s.stats.Appends++
	s.dirty = true
	if s.opts.SyncInterval < 0 {
		if err := s.syncLocked(); err != nil {
			return fmt.Errorf("store: sync: %w", err)
		}
	}
	if s.opts.CompactAt > 0 && s.size >= s.opts.CompactAt && s.size >= 2*s.live {
		if err := s.compactLocked(); err != nil {
			// The log is still valid (compaction swaps atomically), so a
			// failed rewrite degrades to a bigger file, not data loss.
			s.log.Warn("store: compaction failed", "error", err)
		}
	}
	return nil
}

// Sync forces an fsync of any buffered appends.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return fmt.Errorf("store: closed")
	}
	if !s.dirty {
		return nil
	}
	return s.syncLocked()
}

// Compact rewrites the log to hold only the newest record per key and
// atomically swaps it in.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return fmt.Errorf("store: closed")
	}
	return s.compactLocked()
}

// compactLocked writes every live record to a temp file, fsyncs, renames
// it over the log, and reopens the handle (s.mu held). The rename is the
// commit point: a crash before it leaves the old log untouched, a crash
// after it leaves the compacted log.
func (s *Store) compactLocked() error {
	tmpPath := s.path + compactSuffix
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmpPath) // no-op after the rename commits
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var newSize int64
	newIndex := make(map[string]entry, len(keys))
	for _, k := range keys {
		payload, err := json.Marshal(record{Key: k, Value: json.RawMessage(s.index[k].value)})
		if err != nil {
			tmp.Close()
			return err
		}
		var hdr [headerSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
		if _, err := tmp.Write(hdr[:]); err != nil {
			tmp.Close()
			return err
		}
		if _, err := tmp.Write(payload); err != nil {
			tmp.Close()
			return err
		}
		recSize := headerSize + int64(len(payload))
		newIndex[k] = entry{value: s.index[k].value, size: recSize}
		newSize += recSize
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		return err
	}
	syncDir(s.dir)
	old := s.f
	f, err := os.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		// The data on disk is the compacted log; losing the handle means
		// losing the ability to append, which is fatal for this Store.
		return fmt.Errorf("reopen after compaction: %w", err)
	}
	old.Close()
	reclaimed := s.size - newSize
	s.f = f
	s.gen = newGeneration() // byte offsets changed; invalidate replication cursors
	s.size = newSize
	s.live = newSize
	s.index = newIndex
	s.dirty = false
	s.stats.Compactions++
	s.stats.Syncs++
	s.log.Info("store: compacted", "keys", len(newIndex),
		"log_bytes", newSize, "reclaimed_bytes", reclaimed)
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's entry is durable;
// best-effort (some platforms reject directory fsync).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Keys = len(s.index)
	st.LogBytes = s.size
	st.LiveBytes = s.live
	return st
}

// Close flushes pending appends and closes the log. The store is unusable
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return nil
	}
	s.done = true
	var err error
	if s.dirty {
		err = s.syncLocked()
	}
	cerr := s.f.Close()
	s.mu.Unlock()
	close(s.flushStop)
	<-s.flushDone
	if err != nil {
		return err
	}
	return cerr
}
