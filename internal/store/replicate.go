package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"sort"
	"sync/atomic"
	"time"
)

// The replication surface turns the store's append-only log into an
// anti-entropy unit: a peer pulls records it has not seen yet with Since
// and applies them with Apply, which skips values it already holds, so
// two stores pulling from each other converge on the union of their
// records without echoing entries back and forth forever.
//
// Cursors are (generation, offset) pairs. The offset is a byte position
// in the log file, valid only while the bytes before it are unchanged;
// compaction rewrites the log, so it bumps the generation, and a cursor
// carrying a stale generation restarts from offset zero. Generations are
// process-unique (open time plus a counter), so a restarted store also
// invalidates old cursors — idempotent Apply makes the resulting re-pull
// a cheap no-op stream.

// genCounter disambiguates stores opened within the same nanosecond.
var genCounter atomic.Uint64

// newGeneration returns a fresh, process-unique log generation.
func newGeneration() uint64 {
	return uint64(time.Now().UnixNano()) + genCounter.Add(1)
}

// Record is one replicated log entry: the content-address key and the
// raw value bytes exactly as stored.
type Record struct {
	Key   string
	Value []byte
}

// DefaultSinceBytes bounds one Since page when the caller passes a
// non-positive maxBytes.
const DefaultSinceBytes = 1 << 20

// Since returns the log records starting at the (gen, offset) cursor, up
// to maxBytes of on-disk record data per page (non-positive means the
// 1 MiB default). It returns the records in log order, the cursor for
// the next page, and whether more records already exist past it. A
// cursor whose generation does not match the live log (compaction or
// restart happened) is reset to the start of the current log; callers
// keep pulling until more is false.
//
// Records the recovery scan would skip (corrupt CRC, undecodable) are
// skipped here too, so replication never propagates a record the origin
// itself refuses to serve.
func (s *Store) Since(gen uint64, offset int64, maxBytes int) (recs []Record, nextGen uint64, nextOffset int64, more bool, err error) {
	if maxBytes <= 0 {
		maxBytes = DefaultSinceBytes
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil, 0, 0, false, fmt.Errorf("store: closed")
	}
	if gen != s.gen || offset < 0 || offset > s.size {
		offset = 0
	}
	end := offset + int64(maxBytes)
	if end > s.size {
		end = s.size
	}
	if offset >= s.size {
		return nil, s.gen, offset, false, nil
	}
	buf := make([]byte, end-offset)
	if _, err := s.f.ReadAt(buf, offset); err != nil {
		return nil, 0, 0, false, fmt.Errorf("store: read log page: %w", err)
	}
	pos := int64(0)
	for {
		rest := buf[pos:]
		if len(rest) < headerSize {
			break
		}
		length := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if length == 0 || length > maxRecordBytes {
			// recover() would have truncated this at Open; mid-log it cannot
			// happen short of external corruption. Stop the page here.
			break
		}
		recSize := headerSize + int64(length)
		if int64(len(rest)) < recSize {
			break // record straddles the page boundary; next page re-reads it
		}
		payload := rest[headerSize:recSize]
		pos += recSize
		if crc32.Checksum(payload, castagnoli) != sum {
			continue
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil || rec.Key == "" {
			continue
		}
		recs = append(recs, Record{Key: rec.Key, Value: rec.Value})
	}
	nextOffset = offset + pos
	return recs, s.gen, nextOffset, nextOffset < s.size, nil
}

// Apply stores a replicated record unless an identical value is already
// held under the key, reporting whether anything was appended. The skip
// is what keeps mutual anti-entropy loops quiescent: a record pulled
// from a peer and applied here will not be re-appended when the peer
// pulls it back.
func (s *Store) Apply(key string, value []byte) (bool, error) {
	if key == "" {
		return false, fmt.Errorf("store: empty key")
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return false, fmt.Errorf("store: closed")
	}
	if e, ok := s.index[key]; ok && bytes.Equal(e.value, value) {
		s.mu.Unlock()
		return false, nil
	}
	s.mu.Unlock()
	if err := s.Put(key, value); err != nil {
		return false, err
	}
	return true, nil
}

// Generation returns the live log generation (see Since for the cursor
// contract).
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Keys returns the live key set, sorted. Replication convergence tests
// compare peers by it.
func (s *Store) Keys() []string {
	s.mu.Lock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return keys
}
