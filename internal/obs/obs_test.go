package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNopTracerAllocationFree pins the overhead contract: the no-op tracer
// costs nothing on either side of a span.
func TestNopTracerAllocationFree(t *testing.T) {
	var tr Tracer = Nop{}
	stat := PassStat{Pass: "closure", States: 1 << 20, Workers: 8, ElapsedMS: 12.5}
	if n := testing.AllocsPerRun(100, func() {
		tr.PassStart("closure", 0)
		tr.PassEnd(stat)
	}); n != 0 {
		t.Fatalf("Nop tracer allocates %.1f per span, want 0", n)
	}
}

// TestNilProgressAllocationFree pins the other half of the contract: hot
// loops may call a nil *Progress unconditionally.
func TestNilProgressAllocationFree(t *testing.T) {
	var p *Progress
	if n := testing.AllocsPerRun(100, func() {
		p.StartPass("enumerate", 1<<20)
		p.Add(1 << 14)
		_ = p.Snapshot()
	}); n != 0 {
		t.Fatalf("nil Progress allocates %.1f per call set, want 0", n)
	}
}

func TestProgressSampling(t *testing.T) {
	p := &Progress{}
	if s := p.Snapshot(); s.Pass != "" || s.Done != 0 {
		t.Fatalf("fresh snapshot = %+v, want zero", s)
	}

	p.StartPass("enumerate", 1000)
	p.Add(400)
	p.Add(200)
	s := p.Snapshot()
	if s.Pass != "enumerate" || s.Done != 600 || s.Total != 1000 {
		t.Fatalf("snapshot = %+v, want pass=enumerate done=600 total=1000", s)
	}
	if s.Elapsed < 0 {
		t.Fatalf("negative elapsed %v", s.Elapsed)
	}

	// A new pass resets the counter and swaps the header atomically.
	p.StartPass("closure", 0)
	s = p.Snapshot()
	if s.Pass != "closure" || s.Done != 0 || s.Total != 0 {
		t.Fatalf("after StartPass: %+v, want pass=closure done=0", s)
	}
}

func TestProgressWatch(t *testing.T) {
	p := &Progress{}
	p.StartPass("succ_table", 100)
	p.Add(42)

	var mu sync.Mutex
	var got []Snapshot
	stop := p.Watch(time.Millisecond, func(s Snapshot) {
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
	})
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent

	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("watcher never sampled")
	}
	if s := got[0]; s.Pass != "succ_table" || s.Done != 42 {
		t.Fatalf("sampled %+v, want pass=succ_table done=42", s)
	}
}

// TestProgressWatchFinalSnapshot pins the stop contract: a pass
// finishing between ticks is still reported with its final counts — the
// watcher delivers one last snapshot on stop instead of leaving the
// consumer on a stale sample.
func TestProgressWatchFinalSnapshot(t *testing.T) {
	p := &Progress{}
	p.StartPass("convergence", 100)
	var mu sync.Mutex
	var got []Snapshot
	// An hour-long interval guarantees no tick fires: every delivery below
	// must come from the stop path.
	stop := p.Watch(time.Hour, func(s Snapshot) {
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
	})
	p.Add(100)
	stop()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("stop delivered %d snapshots, want exactly 1", len(got))
	}
	if s := got[0]; s.Pass != "convergence" || s.Done != 100 {
		t.Fatalf("final snapshot %+v, want pass=convergence done=100", s)
	}
}

func TestNilProgressWatch(t *testing.T) {
	var p *Progress
	stop := p.Watch(time.Millisecond, func(Snapshot) {
		t.Error("nil progress watcher fired")
	})
	time.Sleep(5 * time.Millisecond)
	stop()
}

// TestCollectorOrder checks spans come back in completion order and that
// Passes returns an independent copy.
func TestCollectorOrder(t *testing.T) {
	c := &Collector{}
	names := []string{"enumerate", "succ_table", "closure", "converge_unfair"}
	for i, name := range names {
		c.PassStart(name, 0)
		c.PassEnd(PassStat{Pass: name, States: int64(i + 1)})
	}
	got := c.Passes()
	if len(got) != len(names) {
		t.Fatalf("collected %d spans, want %d", len(got), len(names))
	}
	for i, name := range names {
		if got[i].Pass != name || got[i].States != int64(i+1) {
			t.Fatalf("span %d = %+v, want pass %s", i, got[i], name)
		}
	}
	got[0].Pass = "mutated"
	if c.Passes()[0].Pass != "enumerate" {
		t.Fatal("Passes returned the internal slice, not a copy")
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := &Collector{}
	var wg sync.WaitGroup
	const emitters, spans = 8, 100
	for i := 0; i < emitters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < spans; j++ {
				c.PassEnd(PassStat{Pass: "stage"})
			}
		}()
	}
	wg.Wait()
	if n := len(c.Passes()); n != emitters*spans {
		t.Fatalf("collected %d spans, want %d", n, emitters*spans)
	}
}

func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Fatal("empty Tee should collapse to nil")
	}
	c := &Collector{}
	if got := Tee(nil, c); got != Tracer(c) {
		t.Fatalf("single-sink Tee should return the sink itself, got %T", got)
	}
	c2 := &Collector{}
	both := Tee(c, c2)
	both.PassStart("x", 0)
	both.PassEnd(PassStat{Pass: "x"})
	if len(c.Passes()) != 1 || len(c2.Passes()) != 1 {
		t.Fatalf("tee did not fan out: %d / %d", len(c.Passes()), len(c2.Passes()))
	}
}

func TestLogTracer(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	tr := LogTracer{Logger: logger}
	tr.PassEnd(PassStat{Pass: "fault_span", States: 99, Workers: 2, ElapsedMS: 1.5})
	out := buf.String()
	for _, want := range []string{"pass=fault_span", "states=99", "workers=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("log record %q missing %q", out, want)
		}
	}
	// A zero LogTracer must be safe (the "logging off" spelling).
	LogTracer{}.PassEnd(PassStat{Pass: "x"})
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]PassStat{
		{Pass: "enumerate", States: 16384, Workers: 4, ElapsedMS: 2},
		{Pass: "converge_unfair", States: 16384, Frontier: 1074, Workers: 4, ElapsedMS: 8},
	})
	for _, want := range []string{"enumerate", "converge_unfair", "1074", "total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestWriteBreakdown(t *testing.T) {
	var buf bytes.Buffer
	WriteBreakdown(&buf, []PassStat{
		{Pass: "closure", States: 100, ElapsedMS: 1},
		{Pass: "closure", States: 100, ElapsedMS: 1},
		{Pass: "enumerate", States: 100, ElapsedMS: 6},
	})
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("breakdown has %d lines, want 2 (aggregated):\n%s", len(lines), out)
	}
	// enumerate dominates (6ms of 8ms) and must sort first.
	if !strings.HasPrefix(lines[0], "enumerate") {
		t.Fatalf("breakdown not sorted by share:\n%s", out)
	}
	if !strings.Contains(lines[1], "(2 spans)") {
		t.Fatalf("closure spans not aggregated:\n%s", out)
	}
}

func TestPassStatDerived(t *testing.T) {
	s := PassStat{Pass: "x", States: 2000, ElapsedMS: 2000}
	if got := s.Elapsed(); got != 2*time.Second {
		t.Fatalf("Elapsed = %v, want 2s", got)
	}
	if got := s.StatesPerSecond(); got != 1000 {
		t.Fatalf("StatesPerSecond = %v, want 1000", got)
	}
	if got := (PassStat{}).StatesPerSecond(); got != 0 {
		t.Fatalf("zero-span rate = %v, want 0", got)
	}
}
