package obs

import (
	"sync/atomic"
	"time"
)

// passInfo is the immutable per-pass header a Progress swaps atomically on
// pass boundaries, so Snapshot never sees a name from one pass with a
// counter from another without at least agreeing on which pass it reports.
type passInfo struct {
	name    string
	total   int64
	started time.Time
}

// Progress is a cheap, atomically updated work counter the verifier's hot
// loops bump once per chunk (one nil-check and one atomic add per ~16k
// states). It is written by the pass internals and sampled from outside —
// a ticker goroutine (Watch), the CLIs' -progress stream, or a test.
//
// All methods are nil-safe: a nil *Progress is the "progress off"
// default and costs callers exactly the nil-check.
type Progress struct {
	info atomic.Pointer[passInfo]
	done atomic.Int64
}

// StartPass resets the counter for a new pass. total is a best-effort
// size hint (0 when unknown, e.g. frontier-driven passes).
func (p *Progress) StartPass(name string, total int64) {
	if p == nil {
		return
	}
	p.done.Store(0)
	p.info.Store(&passInfo{name: name, total: total, started: time.Now()})
}

// Add records n more processed states/work items. This is the hot-path
// entry point.
func (p *Progress) Add(n int64) {
	if p == nil {
		return
	}
	p.done.Add(n)
}

// Snapshot is one sampled view of a Progress.
type Snapshot struct {
	// Pass is the currently running pass ("" before the first pass).
	Pass string
	// Done is the number of states/work items processed so far in it.
	Done int64
	// Total is the pass's size hint (0 when unknown).
	Total int64
	// Elapsed is the time since the pass started.
	Elapsed time.Duration
}

// Rate returns the pass's observed throughput in states per second.
func (s Snapshot) Rate() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Done) / s.Elapsed.Seconds()
}

// Snapshot samples the counter. Safe to call concurrently with updates;
// a nil receiver returns the zero Snapshot.
func (p *Progress) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	info := p.info.Load()
	if info == nil {
		return Snapshot{Done: p.done.Load()}
	}
	return Snapshot{
		Pass:    info.name,
		Done:    p.done.Load(),
		Total:   info.total,
		Elapsed: time.Since(info.started),
	}
}

// Watch starts a goroutine sampling p every interval and invoking fn with
// each snapshot; fn runs on the watcher goroutine. The returned stop
// function halts the sampling after delivering one final snapshot (so the
// last sample always reflects the counter's final counts) and waits for
// in-flight fn calls; it is idempotent. A nil Progress yields a no-op stop.
func (p *Progress) Watch(interval time.Duration, fn func(Snapshot)) (stop func()) {
	if p == nil || interval <= 0 {
		return func() {}
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fn(p.Snapshot())
			case <-quit:
				// One final snapshot, so a pass finishing between ticks is
				// reported with its true final counts instead of leaving the
				// consumer on a stale sample.
				fn(p.Snapshot())
				return
			}
		}
	}()
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			close(quit)
			<-done
		}
	}
}
