package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"
)

// The event layer turns the pass spans and counters of this package into
// a live, replayable stream. A Bus holds one Stream per source (the
// service keys streams by job and batch id); each Stream assigns its
// events a monotonically increasing per-source sequence number, keeps a
// bounded in-memory replay ring, and fans events out to subscribers over
// bounded buffered channels. Publishing never blocks: a subscriber whose
// buffer is full loses the event and its drop counter advances, so a
// slow SSE client can never stall the verifier hot path.
//
// Overhead contract (the extension of the package's tracing contract):
// with no subscriber attached, publishing an event is one mutex
// round-trip, one time.Now, and a copy into a pre-grown ring slot — zero
// allocations in steady state, pinned by an AllocsPerRun test here and
// the events-idle Check benchmark in internal/verify.

// EventType classifies bus events.
type EventType string

// Event types carried on the bus.
const (
	// EventPassStart marks the beginning of a verifier pass; Pass names
	// it and Total carries the size hint (0 when unknown).
	EventPassStart EventType = "pass_start"
	// EventPassEnd delivers a completed pass span in Stat.
	EventPassEnd EventType = "pass_end"
	// EventProgress is a sampled progress snapshot: Pass, Done, Total.
	EventProgress EventType = "progress"
	// EventJob is a job lifecycle transition; State holds the new state
	// and Detail the verdict or error.
	EventJob EventType = "job"
	// EventBatch is a batch lifecycle transition (running/done/canceled).
	EventBatch EventType = "batch"
	// EventBatchMember reports one batch member reaching a terminal
	// state; Member is the job id, Data the member's curve point if it
	// produced one.
	EventBatchMember EventType = "batch_member"
	// EventSaboteur reports a saboteur incumbent improvement: Cost is the
	// new objective value, Faults the schedule's fault count, Done the
	// nodes expanded so far.
	EventSaboteur EventType = "saboteur"
	// EventServer is a server lifecycle announcement (e.g. "draining").
	EventServer EventType = "server"
)

// knownEventTypes validates firehose type filters.
var knownEventTypes = map[EventType]bool{
	EventPassStart: true, EventPassEnd: true, EventProgress: true,
	EventJob: true, EventBatch: true, EventBatchMember: true,
	EventSaboteur: true, EventServer: true,
}

// KnownEventType reports whether t is one of the defined event types.
func KnownEventType(t EventType) bool { return knownEventTypes[t] }

// Event is one bus event: a flat, wire-ready record. Only the fields the
// Type calls for are set; everything else stays at its zero value and is
// omitted from the JSON encoding.
type Event struct {
	// Seq is the per-source monotonic sequence number, assigned by
	// Publish. SSE streams over one source use it as the event id, so
	// Last-Event-ID resume is exact.
	Seq uint64 `json:"seq"`
	// BusSeq is the bus-global sequence number, assigned by Publish; the
	// firehose stream uses it as the event id.
	BusSeq uint64 `json:"bus_seq,omitempty"`
	// Type classifies the event.
	Type EventType `json:"type"`
	// Source identifies the publishing stream (job id, batch id, "server").
	Source string `json:"source,omitempty"`
	// Node names the cluster node that published the event (Bus.SetNode).
	// Empty on a single-node server. It makes a firehose merged across
	// replicas — or one forwarded from a job's owner — attributable.
	Node string `json:"node,omitempty"`
	// Time stamps publication.
	Time time.Time `json:"time"`
	// Pass names the verifier pass (pass_start, pass_end, progress).
	Pass string `json:"pass,omitempty"`
	// Done and Total carry progress counts (progress, batch progress) and
	// the pass_start size hint (Total alone).
	Done  int64 `json:"done,omitempty"`
	Total int64 `json:"total,omitempty"`
	// Stat is the completed span (pass_end).
	Stat *PassStat `json:"stat,omitempty"`
	// State is the new lifecycle state (job, batch, server events).
	State string `json:"state,omitempty"`
	// Detail is the human-readable particular: a verdict, an error, a
	// cancellation reason.
	Detail string `json:"detail,omitempty"`
	// Member is the member job id (batch_member).
	Member string `json:"member,omitempty"`
	// Cost and Faults describe a saboteur incumbent (saboteur).
	Cost   int64 `json:"cost,omitempty"`
	Faults int   `json:"faults,omitempty"`
	// Data is an optional source-specific JSON payload (e.g. a batch
	// member's tolerance-curve point).
	Data json.RawMessage `json:"data,omitempty"`
}

// BusStats is a snapshot of the bus's fan-out counters.
type BusStats struct {
	// Subscribers is the number of currently attached subscribers
	// (stream-scoped and firehose together).
	Subscribers int64
	// Published counts events accepted by Publish (recorded to replay
	// rings whether or not anyone was listening).
	Published int64
	// Emitted counts deliveries into subscriber buffers — zero when no
	// subscriber ever attached, however many events were published.
	Emitted int64
	// Dropped counts events lost at full subscriber buffers (slow
	// consumers).
	Dropped int64
}

// defaultHistory bounds a stream's replay ring when NewBus is given a
// non-positive history.
const defaultHistory = 1024

// Bus is the process-wide event fan-out: per-source Streams with bounded
// replay rings, plus bus-wide firehose subscribers. All methods are safe
// for concurrent use. A single mutex guards the whole bus — event rates
// are a handful per pass plus a governed progress sample, far below
// contention range.
type Bus struct {
	history int

	mu      sync.Mutex
	node    string
	closed  bool
	busSeq  uint64
	streams map[string]*Stream
	subs    map[*Subscription]struct{} // firehose subscribers
	global  ring                       // firehose replay ring

	subscribers int64
	published   int64
	emitted     int64
	dropped     int64
}

// NewBus creates a bus whose streams each retain up to history events
// for replay (non-positive means a 1024-event default). The firehose
// replay ring has the same bound.
func NewBus(history int) *Bus {
	if history <= 0 {
		history = defaultHistory
	}
	return &Bus{
		history: history,
		streams: make(map[string]*Stream),
		subs:    make(map[*Subscription]struct{}),
		global:  ring{cap: history},
	}
}

// SetNode sets the node name stamped onto every subsequently published
// event (cluster mode). Events already in replay rings keep the name
// they were published under.
func (b *Bus) SetNode(node string) {
	b.mu.Lock()
	b.node = node
	b.mu.Unlock()
}

// Stream returns the source's stream, creating it on first use.
func (b *Bus) Stream(source string) *Stream {
	b.mu.Lock()
	defer b.mu.Unlock()
	if st, ok := b.streams[source]; ok {
		return st
	}
	st := &Stream{
		bus:    b,
		source: source,
		hist:   ring{cap: b.history},
		subs:   make(map[*Subscription]struct{}),
	}
	b.streams[source] = st
	return st
}

// Remove drops a source's stream, closing its subscribers; publishing on
// the removed stream becomes a no-op. Used when the record backing the
// source is evicted.
func (b *Bus) Remove(source string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.streams[source]
	if !ok {
		return
	}
	delete(b.streams, source)
	st.removed = true
	for sub := range st.subs {
		sub.closeLocked()
	}
}

// Subscribe attaches a firehose subscriber: it first returns the
// retained events with BusSeq > after (filtered to types when any are
// given, all types otherwise), then delivers every subsequent matching
// event from any stream on the subscription's channel. buf bounds the
// channel (non-positive means 1). The replay and the registration are
// atomic: no event is missed or duplicated between them. A closed bus
// returns the history and an already-closed subscription.
func (b *Bus) Subscribe(after uint64, buf int, types ...EventType) ([]Event, *Subscription) {
	filter := typeFilter(types)
	b.mu.Lock()
	defer b.mu.Unlock()
	history := b.global.collect(after, true, filter, nil)
	sub := newSubscription(b, nil, buf, filter)
	if b.closed {
		close(sub.ch)
		sub.closed = true
		return history, sub
	}
	b.subs[sub] = struct{}{}
	b.subscribers++
	return history, sub
}

// Close shuts the bus down: every subscriber's channel is closed and all
// further publishes are dropped. Idempotent.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for sub := range b.subs {
		sub.closeLocked()
	}
	for _, st := range b.streams {
		for sub := range st.subs {
			sub.closeLocked()
		}
	}
}

// Stats snapshots the fan-out counters.
func (b *Bus) Stats() BusStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BusStats{
		Subscribers: b.subscribers,
		Published:   b.published,
		Emitted:     b.emitted,
		Dropped:     b.dropped,
	}
}

func typeFilter(types []EventType) map[EventType]bool {
	if len(types) == 0 {
		return nil
	}
	m := make(map[EventType]bool, len(types))
	for _, t := range types {
		m[t] = true
	}
	return m
}

// ring is a bounded event log: it grows to cap, then wraps, overwriting
// the oldest entry. Growing lazily keeps an idle stream at one small
// allocation instead of cap pre-allocated slots.
type ring struct {
	buf   []Event
	cap   int
	start int // index of the oldest entry once wrapped
}

func (r *ring) push(ev Event) {
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.start] = ev
	r.start = (r.start + 1) % r.cap
}

// collect appends retained events in order, keeping those whose sequence
// (BusSeq when busSeq, Seq otherwise) exceeds after and whose type passes
// the filter (nil = all).
func (r *ring) collect(after uint64, busSeq bool, filter map[EventType]bool, out []Event) []Event {
	n := len(r.buf)
	for k := 0; k < n; k++ {
		ev := r.buf[(r.start+k)%n]
		seq := ev.Seq
		if busSeq {
			seq = ev.BusSeq
		}
		if seq <= after {
			continue
		}
		if filter != nil && !filter[ev.Type] {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// Stream is one source's event sequence: monotonically numbered, logged
// to a bounded replay ring, fanned out to the stream's subscribers and
// the bus firehose. The zero value is not usable; obtain streams from
// Bus.Stream. A nil *Stream ignores publishes, so optional wiring costs
// callers one nil-check.
type Stream struct {
	bus    *Bus
	source string

	// All fields below are guarded by bus.mu.
	seq     uint64
	hist    ring
	subs    map[*Subscription]struct{}
	removed bool
}

// Source returns the stream's source id.
func (s *Stream) Source() string { return s.source }

// Publish stamps ev with the stream's next sequence number, the bus
// sequence number, and the current time (when unset), records it in the
// replay ring, and offers it to every subscriber without blocking —
// subscribers with full buffers lose the event and are counted as drops.
func (s *Stream) Publish(ev Event) {
	if s == nil {
		return
	}
	b := s.bus
	b.mu.Lock()
	if b.closed || s.removed {
		b.mu.Unlock()
		return
	}
	s.seq++
	b.busSeq++
	ev.Seq = s.seq
	ev.BusSeq = b.busSeq
	ev.Source = s.source
	if ev.Node == "" {
		// Forwarded events keep their origin node; local ones get ours.
		ev.Node = b.node
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	s.hist.push(ev)
	b.global.push(ev)
	b.published++
	for sub := range s.subs {
		sub.offer(ev)
	}
	for sub := range b.subs {
		sub.offer(ev)
	}
	b.mu.Unlock()
}

// LastSeq returns the stream's most recently assigned sequence number.
func (s *Stream) LastSeq() uint64 {
	if s == nil {
		return 0
	}
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	return s.seq
}

// Subscribe attaches a subscriber to this stream: it first returns the
// retained events with Seq > after, then delivers every subsequent event
// on the subscription's channel. buf bounds the channel (non-positive
// means 1). Replay and registration are atomic under the bus lock, so
// attaching mid-run yields exactly the sequence an attach-from-the-start
// subscriber saw: no gap, no duplicate. On a removed stream or closed
// bus the subscription comes back already closed (history still
// replays).
func (s *Stream) Subscribe(after uint64, buf int) ([]Event, *Subscription) {
	b := s.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	history := s.hist.collect(after, false, nil, nil)
	sub := newSubscription(b, s, buf, nil)
	if b.closed || s.removed {
		close(sub.ch)
		sub.closed = true
		return history, sub
	}
	s.subs[sub] = struct{}{}
	b.subscribers++
	return history, sub
}

// PassStart implements Tracer: the pass beginning becomes a pass_start
// event carrying the size hint.
func (s *Stream) PassStart(pass string, total int64) {
	s.Publish(Event{Type: EventPassStart, Pass: pass, Total: total})
}

// PassEnd implements Tracer: the completed span becomes a pass_end event.
func (s *Stream) PassEnd(stat PassStat) {
	st := stat
	s.Publish(Event{Type: EventPassEnd, Pass: stat.Pass, Stat: &st})
}

// Subscription is one subscriber's bounded event feed. Receive from
// Events; the channel closes when the subscription, its stream, or the
// bus is closed.
type Subscription struct {
	bus    *Bus
	stream *Stream // nil for firehose subscribers
	ch     chan Event
	filter map[EventType]bool // nil = all (firehose only)

	// closed and drops are guarded by bus.mu; the publisher only sends
	// while holding it, so Close never races a send on the closed channel.
	closed bool
	drops  int64
}

func newSubscription(b *Bus, s *Stream, buf int, filter map[EventType]bool) *Subscription {
	if buf <= 0 {
		buf = 1
	}
	return &Subscription{bus: b, stream: s, ch: make(chan Event, buf), filter: filter}
}

// Events is the subscriber's feed. It closes on Close, stream removal,
// or bus shutdown; events published while the buffer was full are
// missing from it and counted by Dropped.
func (sub *Subscription) Events() <-chan Event { return sub.ch }

// Dropped returns how many events this subscriber lost to a full buffer.
func (sub *Subscription) Dropped() int64 {
	sub.bus.mu.Lock()
	defer sub.bus.mu.Unlock()
	return sub.drops
}

// Close detaches the subscriber and closes its channel. Idempotent.
func (sub *Subscription) Close() {
	b := sub.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	if sub.closed {
		return
	}
	if sub.stream != nil {
		delete(sub.stream.subs, sub)
	} else {
		delete(b.subs, sub)
	}
	sub.closeLocked()
}

// closeLocked closes the channel and releases the subscriber count; the
// caller removes the subscription from its container. bus.mu held.
func (sub *Subscription) closeLocked() {
	if sub.closed {
		return
	}
	sub.closed = true
	sub.bus.subscribers--
	close(sub.ch)
}

// offer delivers without blocking; bus.mu held (so the channel cannot be
// concurrently closed).
func (sub *Subscription) offer(ev Event) {
	if sub.filter != nil && !sub.filter[ev.Type] {
		return
	}
	select {
	case sub.ch <- ev:
		sub.bus.emitted++
	default:
		sub.drops++
		sub.bus.dropped++
	}
}

// FormatEventLine renders one event as the single human-readable line
// the watch CLIs print (csverify -watch, gclrun -remote). Events with no
// line form (pass_end, whose data feeds the final pass table instead)
// return "".
func FormatEventLine(ev Event) string {
	switch ev.Type {
	case EventPassStart:
		if ev.Total > 0 {
			return fmt.Sprintf("pass %-16s started (%d states expected)", ev.Pass, ev.Total)
		}
		return fmt.Sprintf("pass %-16s started", ev.Pass)
	case EventPassEnd:
		return ""
	case EventProgress:
		var b strings.Builder
		fmt.Fprintf(&b, "pass %-16s %12d", ev.Pass, ev.Done)
		if ev.Total > 0 {
			fmt.Fprintf(&b, " / %d (%.1f%%)", ev.Total, 100*float64(ev.Done)/float64(ev.Total))
		}
		return b.String()
	case EventJob:
		line := fmt.Sprintf("job %s: %s", ev.Source, ev.State)
		if ev.Detail != "" {
			line += " — " + ev.Detail
		}
		return line
	case EventBatch:
		return fmt.Sprintf("batch %s: %s (%d/%d members terminal)", ev.Source, ev.State, ev.Done, ev.Total)
	case EventBatchMember:
		line := fmt.Sprintf("member %s: %s", ev.Member, ev.State)
		if ev.Detail != "" {
			line += " — " + ev.Detail
		}
		return line
	case EventSaboteur:
		return fmt.Sprintf("saboteur: incumbent cost %d with %d faults (%d nodes expanded)", ev.Cost, ev.Faults, ev.Done)
	case EventServer:
		line := "server: " + ev.State
		if ev.Detail != "" {
			line += " — " + ev.Detail
		}
		return line
	}
	return ""
}
