// Package obs is the checker's observability layer: pass-level tracing
// and a cheap atomic progress counter, with zero dependencies beyond the
// standard library and a guaranteed no-op default.
//
// The verifier (internal/verify) runs as a sequence of sharded passes —
// space enumeration, successor-table build, closure scans, convergence
// fixpoints, fault-span and leads-to reachability. Each pass emits one
// span: a PassStat carrying the pass name, exact state count, peak
// frontier size, worker count and wall time. A Tracer receives span
// start/end events; a Progress counter is bumped once per work chunk by
// the hot loops and sampled from outside by a ticker (Watch).
//
// Overhead contract: everything here is safe and free to leave off. A nil
// *Progress accepts Add/StartPass calls (one nil-check, no allocation),
// Nop is an allocation-free Tracer, and the per-span bookkeeping is a
// handful of time.Now calls per pass — invisible next to passes that scan
// millions of states. The contract is pinned by AllocsPerRun tests in
// this package and the nop-vs-untraced Check benchmarks in
// internal/verify.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"
)

// PassStat is the completed span of one verifier pass: the wire-ready
// record shared by verify.Report, service.Result, and the /metrics
// histograms.
type PassStat struct {
	// Pass is the pass name (see the Pass* constants in internal/verify
	// and the taxonomy in DESIGN §8).
	Pass string `json:"pass"`
	// States is the exact number of states (or work items, for
	// frontier-driven passes) the pass processed.
	States int64 `json:"states"`
	// Frontier is the peak BFS frontier / wave size, for the passes that
	// have one (fault-span, leads-to, the convergence wave loop).
	Frontier int64 `json:"frontier,omitempty"`
	// Workers is the goroutine count the pass was sharded across.
	Workers int `json:"workers"`
	// Edges is the number of enabled transitions the pass measured or
	// materialized — set by the index-building passes (succ_table,
	// pred_table), 0 elsewhere.
	Edges int64 `json:"edges,omitempty"`
	// Bytes is the memory footprint of the structure the pass built
	// (succ_table, pred_table). 0 when nothing was materialized — e.g. a
	// succ_table span whose measured edge set busted the budget.
	Bytes int64 `json:"bytes,omitempty"`
	// SpilledBytes is the number of bytes the pass wrote to disk-backed
	// spill storage (mmap'd CSR segment files, sorted frontier runs). Set
	// only by spill-mode verification runs; the summary `spill` span
	// carries the run's totals.
	SpilledBytes int64 `json:"spilled_bytes,omitempty"`
	// ElapsedMS is the pass's wall-clock time in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// Elapsed returns the span's wall time as a duration.
func (p PassStat) Elapsed() time.Duration {
	return time.Duration(p.ElapsedMS * float64(time.Millisecond))
}

// StatesPerSecond returns the pass's throughput, or 0 for an
// instantaneous span.
func (p PassStat) StatesPerSecond() float64 {
	if p.ElapsedMS <= 0 {
		return 0
	}
	return float64(p.States) / (p.ElapsedMS / 1000)
}

// Tracer receives pass span events. Implementations must be safe for
// concurrent use: stage passes (stair steps, leads-to's embedded
// convergence check) can emit while an outer span is open, and the
// service traces many jobs at once through one sink.
type Tracer interface {
	// PassStart marks the beginning of the named pass. total is the
	// pass's size hint in states/work items (0 when unknown), the same
	// hint Progress.StartPass receives — live consumers use it to render
	// completion percentages before the span ends.
	PassStart(pass string, total int64)
	// PassEnd delivers the completed pass's statistics.
	PassEnd(stat PassStat)
}

// Nop is the allocation-free no-op Tracer: the explicit spelling of
// "tracing off" for benchmarks and default wiring.
type Nop struct{}

// PassStart does nothing.
func (Nop) PassStart(string, int64) {}

// PassEnd does nothing.
func (Nop) PassEnd(PassStat) {}

// Collector is a Tracer that accumulates completed spans in emission
// order. The zero value is ready to use; it is safe for concurrent use.
type Collector struct {
	mu    sync.Mutex
	stats []PassStat
}

// PassStart implements Tracer; the collector only records completions.
func (c *Collector) PassStart(string, int64) {}

// PassEnd appends the completed span.
func (c *Collector) PassEnd(stat PassStat) {
	c.mu.Lock()
	c.stats = append(c.stats, stat)
	c.mu.Unlock()
}

// Passes returns a copy of the collected spans, in completion order.
func (c *Collector) Passes() []PassStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]PassStat(nil), c.stats...)
}

// tee fans span events out to multiple tracers.
type tee struct{ sinks []Tracer }

func (t tee) PassStart(pass string, total int64) {
	for _, s := range t.sinks {
		s.PassStart(pass, total)
	}
}

func (t tee) PassEnd(stat PassStat) {
	for _, s := range t.sinks {
		s.PassEnd(stat)
	}
}

// Tee combines tracers into one, dropping nils. It returns nil when
// nothing remains, and the tracer itself when only one remains, so the
// hot path never pays for an empty fan-out.
func Tee(tracers ...Tracer) Tracer {
	var live []Tracer
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return tee{sinks: live}
}

// LogTracer emits one structured slog record per completed span — the
// service's per-job trace stream. Attach job/request attributes by
// passing a logger pre-bound with logger.With(...).
type LogTracer struct {
	Logger *slog.Logger
}

// PassStart is silent; the completion record carries the timing.
func (LogTracer) PassStart(string, int64) {}

// PassEnd logs the span at debug level.
func (t LogTracer) PassEnd(stat PassStat) {
	if t.Logger == nil {
		return
	}
	t.Logger.Debug("pass",
		"pass", stat.Pass,
		"states", stat.States,
		"frontier", stat.Frontier,
		"edges", stat.Edges,
		"bytes", stat.Bytes,
		"workers", stat.Workers,
		"elapsed_ms", stat.ElapsedMS,
	)
}

// FormatTable renders spans as the fixed-width, human-readable pass table
// printed by csverify -trace and gclrun -trace.
func FormatTable(stats []PassStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %10s %12s %10s %8s %12s %12s\n",
		"pass", "states", "frontier", "edges", "bytes", "workers", "elapsed", "states/s")
	var totalMS float64
	for _, s := range stats {
		frontier := "-"
		if s.Frontier > 0 {
			frontier = fmt.Sprintf("%d", s.Frontier)
		}
		edges := "-"
		if s.Edges > 0 {
			edges = fmt.Sprintf("%d", s.Edges)
		}
		bytes := "-"
		if s.Bytes > 0 {
			bytes = formatBytes(s.Bytes)
		}
		fmt.Fprintf(&b, "%-16s %12d %10s %12s %10s %8d %12s %12s\n",
			s.Pass, s.States, frontier, edges, bytes, s.Workers,
			s.Elapsed().Round(time.Microsecond), formatRate(s.StatesPerSecond()))
		totalMS += s.ElapsedMS
	}
	fmt.Fprintf(&b, "%-16s %12s %10s %12s %10s %8s %12s\n", "total", "", "", "", "", "",
		(time.Duration(totalMS * float64(time.Millisecond))).Round(time.Microsecond))
	return b.String()
}

// formatBytes renders a byte count compactly (1.2GB, 850MB, 64kB, ...).
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fkB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// formatRate renders a states/second figure compactly (1.2M, 850k, ...).
func formatRate(r float64) string {
	switch {
	case r <= 0:
		return "-"
	case r >= 1e6:
		return fmt.Sprintf("%.1fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	default:
		return fmt.Sprintf("%.0f", r)
	}
}

// WriteBreakdown writes a one-line-per-pass share-of-total breakdown,
// aggregating repeated passes (closure runs once per predicate, stages
// re-enter convergence) by name. Used by csserved -load and debugging
// sessions that want "where did the time go" without the full table.
func WriteBreakdown(w io.Writer, stats []PassStat) {
	type agg struct {
		name   string
		ms     float64
		states int64
		n      int
	}
	byName := map[string]*agg{}
	var order []string
	var totalMS float64
	for _, s := range stats {
		a, ok := byName[s.Pass]
		if !ok {
			a = &agg{name: s.Pass}
			byName[s.Pass] = a
			order = append(order, s.Pass)
		}
		a.ms += s.ElapsedMS
		a.states += s.States
		a.n++
		totalMS += s.ElapsedMS
	}
	sort.SliceStable(order, func(i, j int) bool {
		return byName[order[i]].ms > byName[order[j]].ms
	})
	for _, name := range order {
		a := byName[name]
		share := 0.0
		if totalMS > 0 {
			share = 100 * a.ms / totalMS
		}
		fmt.Fprintf(w, "%-16s %6.1f%% %10.2fms %12d states (%d spans)\n",
			a.name, share, a.ms, a.states, a.n)
	}
}
