package obs

import (
	"fmt"
	"sync"
	"testing"
)

// collect drains everything currently buffered on the subscription.
func drainBuffered(sub *Subscription) []Event {
	var out []Event
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return out
			}
			out = append(out, ev)
		default:
			return out
		}
	}
}

func TestStreamSequencing(t *testing.T) {
	b := NewBus(16)
	s1 := b.Stream("j-1")
	s2 := b.Stream("j-2")
	for i := 0; i < 3; i++ {
		s1.Publish(Event{Type: EventProgress})
		s2.Publish(Event{Type: EventProgress})
	}
	if got := s1.LastSeq(); got != 3 {
		t.Errorf("s1 LastSeq = %d, want 3 (per-source numbering)", got)
	}
	if got := s2.LastSeq(); got != 3 {
		t.Errorf("s2 LastSeq = %d, want 3 (per-source numbering)", got)
	}
	hist, sub := s1.Subscribe(0, 4)
	defer sub.Close()
	for i, ev := range hist {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d has Seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Source != "j-1" {
			t.Errorf("event %d has Source %q, want j-1", i, ev.Source)
		}
		if ev.Time.IsZero() {
			t.Errorf("event %d missing publish timestamp", i)
		}
	}
	// Bus-global numbering is strictly increasing across sources.
	all, fsub := b.Subscribe(0, 4)
	defer fsub.Close()
	if len(all) != 6 {
		t.Fatalf("firehose history has %d events, want 6", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].BusSeq <= all[i-1].BusSeq {
			t.Fatalf("BusSeq not increasing: %d after %d", all[i].BusSeq, all[i-1].BusSeq)
		}
	}
}

// TestSubscribeReplayIdentity is the replay contract: a subscriber
// attaching mid-run sees exactly the sequence (history + live tail) that
// an attach-from-the-start subscriber saw — same ids, same order.
func TestSubscribeReplayIdentity(t *testing.T) {
	b := NewBus(64)
	s := b.Stream("j-1")
	earlyHist, early := s.Subscribe(0, 64)
	if len(earlyHist) != 0 {
		t.Fatalf("fresh stream replayed %d events", len(earlyHist))
	}
	for i := 0; i < 5; i++ {
		s.Publish(Event{Type: EventProgress, Done: int64(i)})
	}
	midHist, mid := s.Subscribe(0, 64)
	for i := 5; i < 10; i++ {
		s.Publish(Event{Type: EventProgress, Done: int64(i)})
	}
	s.Publish(Event{Type: EventJob, State: "done"})
	lateHist, late := s.Subscribe(0, 64)
	late.Close()

	seqs := func(evs []Event) []uint64 {
		out := make([]uint64, len(evs))
		for i, ev := range evs {
			out[i] = ev.Seq
		}
		return out
	}
	earlySeen := seqs(drainBuffered(early))
	midSeen := append(seqs(midHist), seqs(drainBuffered(mid))...)
	lateSeen := seqs(lateHist)
	early.Close()
	mid.Close()

	want := fmt.Sprint(earlySeen)
	if got := fmt.Sprint(midSeen); got != want {
		t.Errorf("mid-run attach saw %s, attach-from-start saw %s", got, want)
	}
	if got := fmt.Sprint(lateSeen); got != want {
		t.Errorf("after-completion attach saw %s, attach-from-start saw %s", got, want)
	}
	if len(earlySeen) != 11 {
		t.Errorf("attach-from-start saw %d events, want 11", len(earlySeen))
	}
}

func TestSubscribeResume(t *testing.T) {
	b := NewBus(64)
	s := b.Stream("j-1")
	for i := 1; i <= 8; i++ {
		s.Publish(Event{Type: EventProgress, Done: int64(i)})
	}
	hist, sub := s.Subscribe(5, 8)
	defer sub.Close()
	if len(hist) != 3 {
		t.Fatalf("resume after seq 5 replayed %d events, want 3", len(hist))
	}
	for i, ev := range hist {
		if want := uint64(6 + i); ev.Seq != want {
			t.Errorf("resumed event %d has Seq %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestSlowConsumerDrops(t *testing.T) {
	b := NewBus(64)
	s := b.Stream("j-1")
	_, sub := s.Subscribe(0, 2)
	defer sub.Close()
	for i := 0; i < 10; i++ {
		s.Publish(Event{Type: EventProgress, Done: int64(i)})
	}
	if got := sub.Dropped(); got != 8 {
		t.Errorf("subscriber dropped %d events, want 8 (buffer 2, published 10)", got)
	}
	st := b.Stats()
	if st.Dropped != 8 || st.Emitted != 2 {
		t.Errorf("bus counted emitted=%d dropped=%d, want 2/8", st.Emitted, st.Dropped)
	}
	// The replay ring is unaffected by the subscriber's losses.
	hist, sub2 := s.Subscribe(0, 16)
	sub2.Close()
	if len(hist) != 10 {
		t.Errorf("replay ring has %d events, want 10", len(hist))
	}
	// Publishing never blocked: we got here.
}

func TestHistoryBound(t *testing.T) {
	b := NewBus(4)
	s := b.Stream("j-1")
	for i := 1; i <= 10; i++ {
		s.Publish(Event{Type: EventProgress, Done: int64(i)})
	}
	hist, sub := s.Subscribe(0, 16)
	sub.Close()
	if len(hist) != 4 {
		t.Fatalf("ring retained %d events, want 4", len(hist))
	}
	for i, ev := range hist {
		if want := uint64(7 + i); ev.Seq != want {
			t.Errorf("retained event %d has Seq %d, want %d (oldest evicted first)", i, ev.Seq, want)
		}
	}
}

func TestFirehoseFilterAndResume(t *testing.T) {
	b := NewBus(64)
	s := b.Stream("j-1")
	s.Publish(Event{Type: EventJob, State: "queued"})
	s.Publish(Event{Type: EventProgress, Done: 1})
	s.Publish(Event{Type: EventJob, State: "running"})
	hist, sub := b.Subscribe(0, 8, EventJob)
	defer sub.Close()
	if len(hist) != 2 {
		t.Fatalf("filtered firehose replayed %d events, want 2", len(hist))
	}
	s.Publish(Event{Type: EventProgress, Done: 2}) // filtered out
	s.Publish(Event{Type: EventJob, State: "done"})
	live := drainBuffered(sub)
	if len(live) != 1 || live[0].State != "done" {
		t.Fatalf("filtered live feed = %+v, want the single job event", live)
	}
	// Resume by BusSeq skips what was already seen.
	hist2, sub2 := b.Subscribe(hist[1].BusSeq, 8, EventJob)
	sub2.Close()
	if len(hist2) != 1 || hist2[0].State != "done" {
		t.Fatalf("firehose resume replayed %+v, want just the final job event", hist2)
	}
}

func TestRemoveClosesSubscribers(t *testing.T) {
	b := NewBus(16)
	s := b.Stream("j-1")
	_, sub := s.Subscribe(0, 4)
	b.Remove("j-1")
	if _, ok := <-sub.Events(); ok {
		t.Fatal("subscription channel still open after stream removal")
	}
	s.Publish(Event{Type: EventProgress}) // no-op, must not panic
	if got := b.Stats().Subscribers; got != 0 {
		t.Errorf("Subscribers = %d after removal, want 0", got)
	}
	// Subscribing to a fresh stream under the same id starts over.
	if got := b.Stream("j-1").LastSeq(); got != 0 {
		t.Errorf("recreated stream LastSeq = %d, want 0", got)
	}
}

func TestBusClose(t *testing.T) {
	b := NewBus(16)
	s := b.Stream("j-1")
	s.Publish(Event{Type: EventJob, State: "done"})
	_, streamSub := s.Subscribe(0, 4)
	_, fireSub := b.Subscribe(0, 4)
	drainBuffered(streamSub)
	drainBuffered(fireSub)
	b.Close()
	b.Close() // idempotent
	if _, ok := <-streamSub.Events(); ok {
		t.Fatal("stream subscription open after bus close")
	}
	if _, ok := <-fireSub.Events(); ok {
		t.Fatal("firehose subscription open after bus close")
	}
	s.Publish(Event{Type: EventProgress}) // dropped, must not panic
	// History still replays from a closed bus; the subscription comes
	// back already closed.
	hist, sub := s.Subscribe(0, 4)
	if len(hist) != 1 {
		t.Errorf("closed-bus replay has %d events, want 1", len(hist))
	}
	if _, ok := <-sub.Events(); ok {
		t.Fatal("closed-bus subscription channel open")
	}
}

// TestStreamIsTracer pins the Stream side of the Tracer interface: pass
// spans become pass_start/pass_end events with the span attached.
func TestStreamIsTracer(t *testing.T) {
	b := NewBus(16)
	s := b.Stream("j-1")
	var tr Tracer = s
	tr.PassStart("closure", 42)
	tr.PassEnd(PassStat{Pass: "closure", States: 42})
	hist, sub := s.Subscribe(0, 4)
	sub.Close()
	if len(hist) != 2 {
		t.Fatalf("got %d events, want 2", len(hist))
	}
	if hist[0].Type != EventPassStart || hist[0].Pass != "closure" || hist[0].Total != 42 {
		t.Errorf("pass_start = %+v", hist[0])
	}
	if hist[1].Type != EventPassEnd || hist[1].Stat == nil || hist[1].Stat.States != 42 {
		t.Errorf("pass_end = %+v", hist[1])
	}
}

func TestNilStreamIsSafe(t *testing.T) {
	var s *Stream
	s.Publish(Event{Type: EventProgress})
	s.PassStart("x", 0)
	s.PassEnd(PassStat{Pass: "x"})
	if got := s.LastSeq(); got != 0 {
		t.Errorf("nil stream LastSeq = %d", got)
	}
}

// TestPublishNoSubscriberAllocs pins the overhead-when-off contract:
// once a stream's replay ring has grown to capacity, publishing with no
// subscriber attached allocates nothing.
func TestPublishNoSubscriberAllocs(t *testing.T) {
	b := NewBus(64)
	s := b.Stream("j-1")
	// Warm the rings past capacity so steady state is pure overwrite.
	for i := 0; i < 130; i++ {
		s.Publish(Event{Type: EventProgress, Done: int64(i)})
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.Publish(Event{Type: EventProgress, Done: 1})
	})
	if allocs != 0 {
		t.Errorf("Publish with no subscriber allocates %.1f times per event, want 0", allocs)
	}
	if st := b.Stats(); st.Emitted != 0 || st.Subscribers != 0 {
		t.Errorf("no-subscriber run emitted=%d subscribers=%d, want 0/0", st.Emitted, st.Subscribers)
	}
}

// TestBusConcurrency exercises publish/subscribe/close races under the
// race detector.
func TestBusConcurrency(t *testing.T) {
	b := NewBus(32)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s := b.Stream(fmt.Sprintf("j-%d", p))
			for i := 0; i < 200; i++ {
				s.Publish(Event{Type: EventProgress, Done: int64(i)})
			}
		}(p)
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sub := b.Subscribe(0, 8)
			for i := 0; i < 50; i++ {
				select {
				case <-sub.Events():
				default:
				}
			}
			sub.Close()
		}()
	}
	wg.Wait()
	st := b.Stats()
	if st.Published != 800 {
		t.Errorf("Published = %d, want 800", st.Published)
	}
	if st.Subscribers != 0 {
		t.Errorf("Subscribers = %d after all closed, want 0", st.Subscribers)
	}
	b.Close()
}

// BenchmarkPublishNoSubscriber measures the no-listener publish cost the
// <5% overhead-when-off contract leans on (one mutex round-trip, one
// time.Now, one ring-slot copy).
func BenchmarkPublishNoSubscriber(b *testing.B) {
	bus := NewBus(1024)
	s := bus.Stream("bench")
	for i := 0; i < 2048; i++ {
		s.Publish(Event{Type: EventProgress, Done: int64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Publish(Event{Type: EventProgress, Done: int64(i)})
	}
}

func TestSetNodeStampsEvents(t *testing.T) {
	b := NewBus(8)
	s := b.Stream("j-1")
	s.Publish(Event{Type: EventJob, State: "queued"})
	b.SetNode("n1")
	s.Publish(Event{Type: EventJob, State: "running"})
	// A forwarded event keeps the node it was published under.
	s.Publish(Event{Type: EventJob, State: "done", Node: "n0"})
	history, sub := s.Subscribe(0, 1)
	sub.Close()
	if len(history) != 3 {
		t.Fatalf("got %d events, want 3", len(history))
	}
	if history[0].Node != "" {
		t.Errorf("pre-SetNode event node = %q, want empty", history[0].Node)
	}
	if history[1].Node != "n1" {
		t.Errorf("local event node = %q, want n1", history[1].Node)
	}
	if history[2].Node != "n0" {
		t.Errorf("forwarded event node = %q, want n0 preserved", history[2].Node)
	}
	b.Close()
}
