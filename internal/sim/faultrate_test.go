package sim

import (
	"math/rand"
	"testing"

	"nonmask/internal/daemon"
	"nonmask/internal/fault"
	"nonmask/internal/program"
)

// stabilizingPair builds x,y with S = (y = x): convergence copies x to y,
// a closure action advances both together.
func stabilizingPair(t *testing.T) (*program.Program, *program.Predicate, [][]program.VarID) {
	t.Helper()
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 7))
	y := s.MustDeclare("y", program.IntRange(0, 7))
	p := program.New("pair", s)
	p.Add(
		program.NewAction("advance", program.Closure,
			[]program.VarID{x, y}, []program.VarID{x, y},
			func(st *program.State) bool { return st.Get(x) == st.Get(y) },
			func(st *program.State) {
				v := (st.Get(x) + 1) % 8
				st.Set(x, v)
				st.Set(y, v)
			}),
		program.NewAction("sync", program.Convergence,
			[]program.VarID{x, y}, []program.VarID{y},
			func(st *program.State) bool { return st.Get(y) != st.Get(x) },
			func(st *program.State) { st.Set(y, st.Get(x)) }),
	)
	S := program.NewPredicate("y=x", []program.VarID{x, y},
		func(st *program.State) bool { return st.Get(y) == st.Get(x) })
	return p, S, [][]program.VarID{{x}, {y}}
}

func TestFaultRateInjects(t *testing.T) {
	p, S, groups := stabilizingPair(t)
	r := &Runner{
		P: p, S: S,
		D:            daemon.NewRoundRobin(p),
		MaxSteps:     10_000,
		FaultRate:    0.05,
		RateInjector: &fault.CorruptGroups{Groups: groups, K: 1},
	}
	rng := rand.New(rand.NewSource(3))
	res := r.Run(p.Schema.NewState(), rng)
	// Expect roughly 0.05 * 10000 = 500 injections; allow wide slack.
	if res.FaultsInjected < 300 || res.FaultsInjected > 700 {
		t.Errorf("FaultsInjected = %d, want ~500", res.FaultsInjected)
	}
}

func TestFaultRateZeroInjectsNothing(t *testing.T) {
	p, S, _ := stabilizingPair(t)
	r := &Runner{P: p, S: S, D: daemon.NewRoundRobin(p), MaxSteps: 1000}
	res := r.Run(p.Schema.NewState(), rand.New(rand.NewSource(1)))
	if res.FaultsInjected != 0 {
		t.Errorf("FaultsInjected = %d without FaultRate", res.FaultsInjected)
	}
}

// stabilizingChain builds x -> y1 -> y2: each sync copies one link, so a
// corruption of x needs two steps to heal and availability genuinely drops
// below 1 under continuous faults.
func stabilizingChain(t *testing.T) (*program.Program, *program.Predicate, [][]program.VarID) {
	t.Helper()
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 7))
	y1 := s.MustDeclare("y1", program.IntRange(0, 7))
	y2 := s.MustDeclare("y2", program.IntRange(0, 7))
	p := program.New("chain", s)
	p.Add(
		program.NewAction("sync1", program.Convergence,
			[]program.VarID{x, y1}, []program.VarID{y1},
			func(st *program.State) bool { return st.Get(y1) != st.Get(x) },
			func(st *program.State) { st.Set(y1, st.Get(x)) }),
		program.NewAction("sync2", program.Convergence,
			[]program.VarID{y1, y2}, []program.VarID{y2},
			func(st *program.State) bool { return st.Get(y2) != st.Get(y1) },
			func(st *program.State) { st.Set(y2, st.Get(y1)) }),
	)
	S := program.NewPredicate("chain equal", []program.VarID{x, y1, y2},
		func(st *program.State) bool {
			return st.Get(y1) == st.Get(x) && st.Get(y2) == st.Get(y1)
		})
	return p, S, [][]program.VarID{{x}, {y1}, {y2}}
}

func TestAvailabilityDecreasesWithRate(t *testing.T) {
	p, S, groups := stabilizingChain(t)
	measure := func(rate float64) float64 {
		r := &Runner{
			P: p, S: S,
			D:            daemon.NewRoundRobin(p),
			MaxSteps:     20_000,
			FaultRate:    rate,
			RateInjector: &fault.CorruptGroups{Groups: groups, K: 1},
		}
		rng := rand.New(rand.NewSource(9))
		return r.Availability(p.Schema.NewState(), rng).Availability
	}
	clean := measure(0)
	light := measure(0.01)
	heavy := measure(0.3)
	if clean != 1 {
		t.Errorf("availability without faults = %v, want 1", clean)
	}
	if !(light > heavy) {
		t.Errorf("availability not monotone: light %.3f <= heavy %.3f", light, heavy)
	}
	if light < 0.9 {
		t.Errorf("light-fault availability = %.3f, suspiciously low", light)
	}
	if heavy > 0.95 {
		t.Errorf("heavy-fault availability = %.3f, suspiciously high", heavy)
	}
}

// TestAvailabilityDistanceObservable wires the runner's Distance to the
// chain's exact shortest-path distance (the number of out-of-sync links,
// since each sync action heals exactly one) and checks the aggregate
// behaves like the verifier's distance profile: zero on a fault-free run
// from S, strictly positive under continuous corruption.
func TestAvailabilityDistanceObservable(t *testing.T) {
	p, S, groups := stabilizingChain(t)
	x, y1, y2 := groups[0][0], groups[1][0], groups[2][0]
	dist := func(st *program.State) int {
		d := 0
		if st.Get(y1) != st.Get(x) {
			d++
		}
		if st.Get(y2) != st.Get(y1) {
			d++
		}
		return d
	}
	measure := func(rate float64) AvailabilityStats {
		r := &Runner{
			P: p, S: S,
			D:            daemon.NewRoundRobin(p),
			MaxSteps:     20_000,
			FaultRate:    rate,
			RateInjector: &fault.CorruptGroups{Groups: groups, K: 1},
			Distance:     dist,
		}
		return r.Availability(p.Schema.NewState(), rand.New(rand.NewSource(9)))
	}
	clean := measure(0)
	if !clean.DistanceMeasured || clean.MeanDistance != 0 || clean.MaxDistance != 0 {
		t.Errorf("fault-free distance stats = %+v, want measured mean 0 max 0", clean)
	}
	faulty := measure(0.3)
	if !faulty.DistanceMeasured || faulty.MeanDistance <= 0 {
		t.Errorf("faulty mean distance = %v, want > 0", faulty.MeanDistance)
	}
	if faulty.MaxDistance < 1 || faulty.MaxDistance > 2 {
		t.Errorf("faulty max distance = %d, want within [1,2]", faulty.MaxDistance)
	}
}

// TestAvailabilityWithoutDistance pins that a runner with no Distance
// observable reports DistanceMeasured false rather than a fake zero.
func TestAvailabilityWithoutDistance(t *testing.T) {
	p, S, _ := stabilizingPair(t)
	r := &Runner{P: p, S: S, D: daemon.NewRoundRobin(p), MaxSteps: 100}
	stats := r.Availability(p.Schema.NewState(), rand.New(rand.NewSource(1)))
	if stats.DistanceMeasured {
		t.Error("DistanceMeasured = true with no Distance observable")
	}
	if stats.Availability != 1 {
		t.Errorf("availability from S without faults = %v, want 1", stats.Availability)
	}
}

func TestAvailabilityRestoresOnTick(t *testing.T) {
	p, S, groups := stabilizingPair(t)
	called := 0
	r := &Runner{
		P: p, S: S,
		D:            daemon.NewRoundRobin(p),
		MaxSteps:     100,
		FaultRate:    0.1,
		RateInjector: &fault.CorruptGroups{Groups: groups, K: 1},
		OnTick:       func(int, *program.State) { called++ },
	}
	r.Availability(p.Schema.NewState(), rand.New(rand.NewSource(2)))
	if called != 100 {
		t.Errorf("caller's OnTick called %d times, want 100", called)
	}
	if r.OnTick == nil {
		t.Error("Availability cleared the caller's OnTick")
	}
}
