package sim

import (
	"nonmask/internal/program"
)

// SyncStep executes one step of the fully synchronous (distributed) daemon:
// every enabled action fires simultaneously, guards and bodies evaluated
// against the old state. When two actions write the same variable, the
// earlier action in program order wins; the number of such write conflicts
// is reported. The paper's computations interleave one action at a time
// (central daemon); the synchronous daemon is the opposite extreme, and
// stabilization under it is NOT implied by Theorems 1-3.
func SyncStep(p *program.Program, st *program.State) (next *program.State, fired, conflicts int) {
	next = st.Clone()
	written := make(map[program.VarID]bool)
	for _, a := range p.Actions {
		if !a.Guard(st) {
			continue
		}
		fired++
		// Evaluate the body against the old state.
		out := a.Apply(st)
		for _, w := range a.Writes {
			v := out.Get(w)
			if v == st.Get(w) {
				continue // no-op write: no conflict, no effect
			}
			if written[w] {
				conflicts++
				continue // earlier action in program order wins
			}
			written[w] = true
			next.Set(w, v)
		}
	}
	return next, fired, conflicts
}

// SyncResult reports an exhaustive synchronous-daemon analysis.
type SyncResult struct {
	// Converges is true when from every state the (deterministic)
	// synchronous execution reaches S.
	Converges bool
	// CycleWitness is a state on a non-converging synchronous cycle.
	CycleWitness *program.State
	// WorstSteps is the maximum number of synchronous rounds to reach S.
	WorstSteps int
	// Conflicts counts states whose synchronous step has a write conflict.
	Conflicts int64
}

// SyncExhaustive decides stabilization under the fully synchronous daemon
// by following every state's (deterministic) successor chain with
// memoization. S states are absorbing for the analysis: once S is reached
// the execution is considered converged (S's closure under synchronous
// steps is the caller's separate concern, checkable with SyncStep).
func SyncExhaustive(p *program.Program, S *program.Predicate) (*SyncResult, error) {
	count, ok := p.Schema.StateCount()
	if !ok {
		return nil, errTooLarge
	}
	const (
		unknown int8 = iota
		inProgress
		good
		bad
	)
	status := make([]int8, count)
	steps := make([]int32, count)
	res := &SyncResult{Converges: true}

	for start := int64(0); start < count; start++ {
		if status[start] != unknown {
			continue
		}
		// Follow the deterministic chain, marking the path.
		var path []int64
		cur := start
		verdict := good
		var tail int32 // steps from the chain's end state
		for {
			st := p.Schema.StateAt(cur)
			if S.Holds(st) {
				tail = 0
				break
			}
			if status[cur] == good {
				tail = steps[cur]
				break
			}
			if status[cur] == bad {
				verdict = bad
				break
			}
			if status[cur] == inProgress {
				// Synchronous cycle outside S.
				verdict = bad
				if res.CycleWitness == nil {
					res.CycleWitness = st
				}
				break
			}
			status[cur] = inProgress
			path = append(path, cur)
			next, fired, conflicts := SyncStep(p, st)
			if conflicts > 0 {
				res.Conflicts++
			}
			if fired == 0 {
				// Terminal state outside S: never converges.
				verdict = bad
				if res.CycleWitness == nil {
					res.CycleWitness = st
				}
				break
			}
			cur = p.Schema.Index(next)
		}
		// Unwind the path.
		for i := len(path) - 1; i >= 0; i-- {
			idx := path[i]
			status[idx] = verdict
			if verdict == good {
				tail++
				steps[idx] = tail
				if int(tail) > res.WorstSteps {
					res.WorstSteps = int(tail)
				}
			}
		}
		if verdict == bad {
			res.Converges = false
		}
	}
	return res, nil
}

var errTooLarge = &tooLarge{}

type tooLarge struct{}

func (*tooLarge) Error() string { return "sim: state space too large for synchronous analysis" }
