// Package sim executes guarded-command programs under a daemon with
// optional fault injection, recording convergence behaviour. It is the
// statistical counterpart of internal/verify: the checker proves
// convergence exactly on small instances, the simulator measures
// convergence times on instances far beyond enumeration (e.g. diffusing
// computations on thousand-node trees).
package sim

import (
	"fmt"
	"math/rand"

	"nonmask/internal/daemon"
	"nonmask/internal/fault"
	"nonmask/internal/program"
)

// Runner drives one program under one daemon.
type Runner struct {
	// P is the program to execute (closure + convergence actions).
	P *program.Program
	// S is the invariant; a run "converges" at the first step where S holds.
	S *program.Predicate
	// D schedules the actions. Required.
	D daemon.Daemon
	// MaxSteps bounds each run; a run that has not converged by then is
	// reported as not converged. Zero means DefaultMaxSteps.
	MaxSteps int
	// Faults schedules mid-run injections (measured runs usually inject at
	// step 0 and measure recovery).
	Faults fault.Schedule
	// FaultRate, when positive, additionally fires RateInjector before each
	// step with this probability — the continuous-fault regime in which a
	// nonmasking program lives between recoveries.
	FaultRate float64
	// RateInjector is the injector FaultRate fires. Required when
	// FaultRate > 0.
	RateInjector fault.Injector
	// StopAtS stops the run at the first state satisfying S when true.
	// When false the run continues (measuring post-convergence behaviour,
	// e.g. that closure actions keep S) until MaxSteps.
	StopAtS bool
	// OnStep, when non-nil, observes every executed step.
	OnStep func(step int, st *program.State, a *program.Action)
	// OnTick, when non-nil, observes every loop iteration's current state
	// (after scheduled/rate injections, before action selection) — unlike
	// OnStep it also fires on quiescent iterations under FaultRate.
	OnTick func(step int, st *program.State)
	// Distance, when non-nil, scores a state with its distance to the
	// invariant. For comparability with the verifier, wire it to the exact
	// shortest-path table (verify's Space.DistancesContext) whenever the
	// instance is enumerable — that is the observable the metrics passes
	// define. A negative score means "unmeasured" (e.g. a state outside
	// the fault span) and is excluded from aggregates.
	Distance func(st *program.State) int
}

// DefaultMaxSteps bounds runs whose Runner does not set MaxSteps.
const DefaultMaxSteps = 1_000_000

// Result describes one run.
type Result struct {
	// Converged reports whether S held at some visited state.
	Converged bool
	// Steps is the number of actions executed before S first held
	// (or the total executed when it never did).
	Steps int
	// TotalSteps is the total number of actions executed in the run.
	TotalSteps int
	// Deadlocked reports that the run ended with no enabled actions while S
	// did not hold (a maximal finite computation outside S).
	Deadlocked bool
	// Final is the last state of the run.
	Final *program.State
	// ActionCounts tallies executed actions by kind.
	ActionCounts map[program.ActionKind]int
	// FaultsInjected counts rate-based injections during the run.
	FaultsInjected int
}

// AvailabilityStats aggregates what one Availability probe observed.
type AvailabilityStats struct {
	// Availability is the fraction of observed ticks at which S held.
	Availability float64
	// Ticks is the number of observed loop iterations.
	Ticks int
	// FaultsInjected counts rate-based injections during the run.
	FaultsInjected int
	// DistanceMeasured reports whether the runner had a Distance
	// observable and at least one tick scored non-negative.
	DistanceMeasured bool
	// MeanDistance and MaxDistance aggregate the distance-to-invariant
	// observable over the measured ticks. When Runner.Distance is backed
	// by the verifier's exact shortest-path table these are in the same
	// unit as the checker's distance profile, so sampled and exact
	// numbers compare directly.
	MeanDistance float64
	MaxDistance  int
}

// Availability measures how the invariant fares during a run with
// continuous faults — the natural quality metric for nonmasking programs
// (the input-output relation is "violated only temporarily"; this
// quantifies how temporarily). It re-runs the runner with an observing
// hook and reports the fraction of ticks in S plus, when the runner has a
// Distance observable, the mean and peak distance to the invariant.
func (r *Runner) Availability(init *program.State, rng *rand.Rand) AvailabilityStats {
	var stats AvailabilityStats
	inS, measured := 0, 0
	distSum := 0.0
	prev := r.OnTick
	r.OnTick = func(step int, st *program.State) {
		stats.Ticks++
		if r.S.Holds(st) {
			inS++
		}
		if r.Distance != nil {
			if d := r.Distance(st); d >= 0 {
				measured++
				distSum += float64(d)
				if d > stats.MaxDistance {
					stats.MaxDistance = d
				}
			}
		}
		if prev != nil {
			prev(step, st)
		}
	}
	defer func() { r.OnTick = prev }()
	res := r.Run(init, rng)
	stats.FaultsInjected = res.FaultsInjected
	if stats.Ticks > 0 {
		stats.Availability = float64(inS) / float64(stats.Ticks)
	}
	if measured > 0 {
		stats.DistanceMeasured = true
		stats.MeanDistance = distSum / float64(measured)
	}
	return stats
}

// String renders a one-line result.
func (r *Result) String() string {
	if r.Deadlocked {
		return fmt.Sprintf("deadlocked after %d steps at %s", r.TotalSteps, r.Final)
	}
	if !r.Converged {
		return fmt.Sprintf("did not converge within %d steps", r.TotalSteps)
	}
	return fmt.Sprintf("converged in %d steps", r.Steps)
}

// Run executes one run from the given initial state. The initial state is
// not mutated. rng drives fault injection (may be nil when Faults is
// empty).
func (r *Runner) Run(init *program.State, rng *rand.Rand) *Result {
	maxSteps := r.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	st := init.Clone()
	res := &Result{
		ActionCounts: make(map[program.ActionKind]int, 3),
	}
	for step := 0; step < maxSteps; step++ {
		for _, inj := range r.Faults.At(step) {
			inj.Inject(st, rng)
			res.Converged = false // a fault voids earlier convergence
		}
		if r.FaultRate > 0 && rng.Float64() < r.FaultRate {
			r.RateInjector.Inject(st, rng)
			res.Converged = false
			res.FaultsInjected++
		}
		if r.OnTick != nil {
			r.OnTick(step, st)
		}
		if !res.Converged && r.S.Holds(st) {
			res.Converged = true
			res.Steps = res.TotalSteps
			if r.StopAtS {
				res.Final = st
				return res
			}
		}
		enabled := r.P.Enabled(st)
		if len(enabled) == 0 {
			// Under continuous faults, quiescence is not the end: a later
			// injection may re-enable actions. Stutter through the tick.
			if r.FaultRate > 0 {
				continue
			}
			res.Final = st
			res.Deadlocked = !r.S.Holds(st)
			if !res.Converged {
				res.Steps = res.TotalSteps
			}
			return res
		}
		a := r.D.Pick(st, enabled, step)
		st = a.Apply(st)
		res.TotalSteps++
		res.ActionCounts[a.Kind]++
		if r.OnStep != nil {
			r.OnStep(step, st, a)
		}
	}
	res.Final = st
	// A run can converge exactly at the step budget's edge.
	if !res.Converged && r.S.Holds(st) {
		res.Converged = true
		res.Steps = res.TotalSteps
	}
	if !res.Converged {
		res.Steps = res.TotalSteps
	}
	return res
}

// Batch aggregates many runs.
type Batch struct {
	// Runs is the number of runs executed.
	Runs int
	// ConvergedRuns counts runs that reached S.
	ConvergedRuns int
	// Steps holds the per-run steps-to-convergence for converged runs.
	Steps []int
}

// ConvergenceRate returns the fraction of runs that converged.
func (b *Batch) ConvergenceRate() float64 {
	if b.Runs == 0 {
		return 0
	}
	return float64(b.ConvergedRuns) / float64(b.Runs)
}

// RunMany performs n runs from initial states drawn by nextInit (called
// with the run index) and aggregates convergence statistics.
func (r *Runner) RunMany(n int, rng *rand.Rand, nextInit func(i int, rng *rand.Rand) *program.State) *Batch {
	b := &Batch{Runs: n}
	for i := 0; i < n; i++ {
		res := r.Run(nextInit(i, rng), rng)
		if res.Converged {
			b.ConvergedRuns++
			b.Steps = append(b.Steps, res.Steps)
		}
	}
	return b
}

// RandomStates returns a nextInit function drawing uniformly random states
// — the "started in an arbitrary state" setting of stabilization.
func RandomStates(schema *program.Schema) func(int, *rand.Rand) *program.State {
	return func(_ int, rng *rand.Rand) *program.State {
		return program.RandomState(schema, rng)
	}
}

// CorruptedStates returns a nextInit function that starts from the given
// good state and applies the injector — the "k nodes corrupted" setting.
func CorruptedStates(good *program.State, inj fault.Injector) func(int, *rand.Rand) *program.State {
	return func(_ int, rng *rand.Rand) *program.State {
		st := good.Clone()
		inj.Inject(st, rng)
		return st
	}
}

// Trace records the state sequence of a run for assertions and display.
type Trace struct {
	States  []*program.State
	Actions []*program.Action
}

// Record runs the runner once and captures the full trace, including the
// initial state.
func (r *Runner) Record(init *program.State, rng *rand.Rand) (*Result, *Trace) {
	tr := &Trace{States: []*program.State{init.Clone()}}
	prev := r.OnStep
	r.OnStep = func(step int, st *program.State, a *program.Action) {
		tr.States = append(tr.States, st.Clone())
		tr.Actions = append(tr.Actions, a)
		if prev != nil {
			prev(step, st, a)
		}
	}
	defer func() { r.OnStep = prev }()
	res := r.Run(init, rng)
	return res, tr
}

// Len returns the number of steps in the trace.
func (t *Trace) Len() int { return len(t.Actions) }

// HoldsFromUntilEnd returns the first index from which pred holds at every
// subsequent state, or -1 if pred does not hold at the final state. It is
// the natural check for the paper's convergence requirement: the
// computation has a suffix where S always holds.
func (t *Trace) HoldsFromUntilEnd(pred *program.Predicate) int {
	first := -1
	for i, st := range t.States {
		if pred.Holds(st) {
			if first == -1 {
				first = i
			}
		} else {
			first = -1
		}
	}
	return first
}
