package sim

import (
	"math/rand"
	"testing"

	"nonmask/internal/daemon"
	"nonmask/internal/fault"
	"nonmask/internal/program"
)

// counterProgram: x counts up to target; S = x = target.
func counterProgram(t *testing.T, max, target int32) (*program.Program, *program.Predicate, program.VarID) {
	t.Helper()
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, max))
	p := program.New("counter", s)
	p.Add(program.NewAction("inc", program.Closure,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) < target },
		func(st *program.State) { st.Set(x, st.Get(x)+1) }))
	S := program.NewPredicate("done", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == target })
	return p, S, x
}

func TestRunConverges(t *testing.T) {
	p, S, _ := counterProgram(t, 10, 10)
	r := &Runner{P: p, S: S, D: daemon.NewRoundRobin(p), StopAtS: true}
	res := r.Run(p.Schema.NewState(), nil)
	if !res.Converged {
		t.Fatalf("did not converge: %s", res)
	}
	if res.Steps != 10 {
		t.Errorf("Steps = %d, want 10", res.Steps)
	}
	if res.ActionCounts[program.Closure] != 10 {
		t.Errorf("closure count = %d, want 10", res.ActionCounts[program.Closure])
	}
	if !S.Holds(res.Final) {
		t.Error("final state does not satisfy S")
	}
}

func TestRunDoesNotMutateInit(t *testing.T) {
	p, S, x := counterProgram(t, 10, 10)
	r := &Runner{P: p, S: S, D: daemon.NewRoundRobin(p), StopAtS: true}
	init := p.Schema.NewState()
	r.Run(init, nil)
	if init.Get(x) != 0 {
		t.Error("Run mutated the initial state")
	}
}

func TestRunAlreadyConverged(t *testing.T) {
	p, S, x := counterProgram(t, 10, 10)
	r := &Runner{P: p, S: S, D: daemon.NewRoundRobin(p), StopAtS: true}
	init := p.Schema.NewState()
	init.Set(x, 10)
	res := r.Run(init, nil)
	if !res.Converged || res.Steps != 0 {
		t.Errorf("already-converged run = %s", res)
	}
}

func TestRunDeadlock(t *testing.T) {
	// S = x=5 but action stops at 3: terminal state outside S.
	p, S, _ := counterProgram(t, 10, 3)
	S5 := program.NewPredicate("x=5", []program.VarID{0},
		func(st *program.State) bool { return st.Get(0) == 5 })
	_ = S
	r := &Runner{P: p, S: S5, D: daemon.NewRoundRobin(p), StopAtS: true}
	res := r.Run(p.Schema.NewState(), nil)
	if res.Converged {
		t.Error("deadlocked run reported converged")
	}
	if !res.Deadlocked {
		t.Errorf("Deadlocked = false: %s", res)
	}
	if res.TotalSteps != 3 {
		t.Errorf("TotalSteps = %d, want 3", res.TotalSteps)
	}
}

func TestRunMaxStepsExceeded(t *testing.T) {
	// Oscillator never reaches S.
	s := program.NewSchema()
	x := s.MustDeclare("x", program.Bool())
	p := program.New("osc", s)
	p.Add(program.NewAction("flip", program.Closure,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return true },
		func(st *program.State) { st.SetBool(x, !st.Bool(x)) }))
	S := program.False()
	r := &Runner{P: p, S: S, D: daemon.NewRoundRobin(p), MaxSteps: 50, StopAtS: true}
	res := r.Run(s.NewState(), nil)
	if res.Converged || res.Deadlocked {
		t.Errorf("oscillator run = %s", res)
	}
	if res.TotalSteps != 50 {
		t.Errorf("TotalSteps = %d, want 50", res.TotalSteps)
	}
}

func TestRunWithFaultSchedule(t *testing.T) {
	p, S, x := counterProgram(t, 10, 10)
	// Fault at step 5 resets x to 0; convergence must be re-achieved.
	snapshot := p.Schema.NewState()
	r := &Runner{
		P: p, S: S, D: daemon.NewRoundRobin(p), StopAtS: true,
		Faults: fault.Schedule{{Step: 5, Inj: &fault.ResetTo{Snapshot: snapshot}}},
	}
	rng := rand.New(rand.NewSource(1))
	res := r.Run(p.Schema.NewState(), rng)
	if !res.Converged {
		t.Fatalf("did not reconverge after fault: %s", res)
	}
	// 5 steps wasted + 10 steps after reset.
	if res.Steps != 15 {
		t.Errorf("Steps = %d, want 15", res.Steps)
	}
	_ = x
}

func TestRunContinuesPastSWhenStopAtSFalse(t *testing.T) {
	p, S, _ := counterProgram(t, 10, 5)
	r := &Runner{P: p, S: S, D: daemon.NewRoundRobin(p), MaxSteps: 100, StopAtS: false}
	res := r.Run(p.Schema.NewState(), nil)
	if !res.Converged || res.Steps != 5 {
		t.Errorf("res = %s, want convergence at step 5", res)
	}
	// After x=5 the action is disabled: run ends by deadlock-in-S, which is
	// a legal maximal computation.
	if res.Deadlocked {
		t.Error("terminal state in S flagged as deadlock")
	}
	if res.TotalSteps != 5 {
		t.Errorf("TotalSteps = %d, want 5", res.TotalSteps)
	}
}

func TestRunManyAndBatch(t *testing.T) {
	p, S, _ := counterProgram(t, 10, 10)
	r := &Runner{P: p, S: S, D: daemon.NewRoundRobin(p), StopAtS: true}
	rng := rand.New(rand.NewSource(11))
	b := r.RunMany(20, rng, RandomStates(p.Schema))
	if b.Runs != 20 || b.ConvergedRuns != 20 {
		t.Errorf("batch = %d/%d converged", b.ConvergedRuns, b.Runs)
	}
	if b.ConvergenceRate() != 1 {
		t.Errorf("rate = %v", b.ConvergenceRate())
	}
	if len(b.Steps) != 20 {
		t.Errorf("Steps sample = %d entries", len(b.Steps))
	}
	for _, s := range b.Steps {
		if s < 0 || s > 10 {
			t.Errorf("steps %d out of range", s)
		}
	}
	empty := &Batch{}
	if empty.ConvergenceRate() != 0 {
		t.Error("empty batch rate != 0")
	}
}

func TestCorruptedStates(t *testing.T) {
	p, _, x := counterProgram(t, 10, 10)
	good := p.Schema.NewState()
	good.Set(x, 10)
	gen := CorruptedStates(good, &fault.CorruptVars{K: 1})
	rng := rand.New(rand.NewSource(2))
	st := gen(0, rng)
	if st == good {
		t.Error("generator returned the snapshot itself")
	}
	if good.Get(x) != 10 {
		t.Error("generator mutated the good state")
	}
}

func TestRecordTrace(t *testing.T) {
	p, S, _ := counterProgram(t, 10, 3)
	r := &Runner{P: p, S: S, D: daemon.NewRoundRobin(p), StopAtS: true}
	res, tr := r.Record(p.Schema.NewState(), nil)
	if !res.Converged {
		t.Fatalf("res = %s", res)
	}
	if tr.Len() != 3 {
		t.Errorf("trace len = %d, want 3", tr.Len())
	}
	if len(tr.States) != 4 {
		t.Errorf("trace states = %d, want 4 (incl. initial)", len(tr.States))
	}
	if got := tr.HoldsFromUntilEnd(S); got != 3 {
		t.Errorf("HoldsFromUntilEnd = %d, want 3", got)
	}
	notYet := program.NewPredicate("x>=2", []program.VarID{0},
		func(st *program.State) bool { return st.Get(0) >= 2 })
	if got := tr.HoldsFromUntilEnd(notYet); got != 2 {
		t.Errorf("HoldsFromUntilEnd(x>=2) = %d, want 2", got)
	}
	never := program.False()
	if got := tr.HoldsFromUntilEnd(never); got != -1 {
		t.Errorf("HoldsFromUntilEnd(false) = %d, want -1", got)
	}
	// OnStep restored after Record.
	if r.OnStep != nil {
		t.Error("Record left OnStep installed")
	}
}

func TestResultString(t *testing.T) {
	p, S, _ := counterProgram(t, 10, 3)
	r := &Runner{P: p, S: S, D: daemon.NewRoundRobin(p), StopAtS: true}
	res := r.Run(p.Schema.NewState(), nil)
	if got := res.String(); got != "converged in 3 steps" {
		t.Errorf("String = %q", got)
	}
}
