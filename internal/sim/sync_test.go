package sim

import (
	"testing"

	"nonmask/internal/program"
)

func TestSyncStepBasics(t *testing.T) {
	// Two actions on disjoint variables fire together.
	s := program.NewSchema()
	a := s.MustDeclare("a", program.IntRange(0, 3))
	b := s.MustDeclare("b", program.IntRange(0, 3))
	p := program.New("p", s)
	p.Add(
		program.NewAction("incA", program.Closure,
			[]program.VarID{a}, []program.VarID{a},
			func(st *program.State) bool { return st.Get(a) < 3 },
			func(st *program.State) { st.Set(a, st.Get(a)+1) }),
		program.NewAction("incB", program.Closure,
			[]program.VarID{b}, []program.VarID{b},
			func(st *program.State) bool { return st.Get(b) < 3 },
			func(st *program.State) { st.Set(b, st.Get(b)+1) }),
	)
	st := s.NewState()
	next, fired, conflicts := SyncStep(p, st)
	if fired != 2 || conflicts != 0 {
		t.Errorf("fired=%d conflicts=%d", fired, conflicts)
	}
	if next.Get(a) != 1 || next.Get(b) != 1 {
		t.Errorf("next = %s", next)
	}
	if st.Get(a) != 0 {
		t.Error("SyncStep mutated the input")
	}
}

func TestSyncStepOldStateSemantics(t *testing.T) {
	// Swap pair: a := b and b := a simultaneously must exchange values.
	s := program.NewSchema()
	a := s.MustDeclare("a", program.IntRange(0, 9))
	b := s.MustDeclare("b", program.IntRange(0, 9))
	p := program.New("p", s)
	p.Add(
		program.NewAction("a<-b", program.Closure,
			[]program.VarID{a, b}, []program.VarID{a},
			func(st *program.State) bool { return st.Get(a) != st.Get(b) },
			func(st *program.State) { st.Set(a, st.Get(b)) }),
		program.NewAction("b<-a", program.Closure,
			[]program.VarID{a, b}, []program.VarID{b},
			func(st *program.State) bool { return st.Get(a) != st.Get(b) },
			func(st *program.State) { st.Set(b, st.Get(a)) }),
	)
	st := s.NewState()
	st.Set(a, 3)
	st.Set(b, 7)
	next, _, _ := SyncStep(p, st)
	if next.Get(a) != 7 || next.Get(b) != 3 {
		t.Errorf("synchronous swap = %s, want a=7 b=3", next)
	}
}

func TestSyncStepConflictResolution(t *testing.T) {
	// Two actions write the same variable different values: program order
	// wins, one conflict reported.
	s := program.NewSchema()
	a := s.MustDeclare("a", program.IntRange(0, 9))
	p := program.New("p", s)
	p.Add(
		program.NewAction("set1", program.Closure,
			[]program.VarID{a}, []program.VarID{a},
			func(st *program.State) bool { return st.Get(a) == 0 },
			func(st *program.State) { st.Set(a, 1) }),
		program.NewAction("set2", program.Closure,
			[]program.VarID{a}, []program.VarID{a},
			func(st *program.State) bool { return st.Get(a) == 0 },
			func(st *program.State) { st.Set(a, 2) }),
	)
	next, fired, conflicts := SyncStep(p, s.NewState())
	if fired != 2 || conflicts != 1 {
		t.Errorf("fired=%d conflicts=%d", fired, conflicts)
	}
	if next.Get(a) != 1 {
		t.Errorf("a = %d, want 1 (program order wins)", next.Get(a))
	}
}

func TestSyncExhaustiveConverging(t *testing.T) {
	// Decrement chain converges synchronously: all counters fall to 0.
	s := program.NewSchema()
	ids := s.MustDeclareArray("v", 3, program.IntRange(0, 3))
	p := program.New("dec", s)
	for _, id := range ids {
		id := id
		p.Add(program.NewAction("dec"+string(rune('0'+id)), program.Closure,
			[]program.VarID{id}, []program.VarID{id},
			func(st *program.State) bool { return st.Get(id) > 0 },
			func(st *program.State) { st.Set(id, st.Get(id)-1) }))
	}
	S := program.NewPredicate("all zero", ids, func(st *program.State) bool {
		for _, id := range ids {
			if st.Get(id) != 0 {
				return false
			}
		}
		return true
	})
	res, err := SyncExhaustive(p, S)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converges {
		t.Fatalf("decrement chain does not converge synchronously: %+v", res)
	}
	if res.WorstSteps != 3 {
		t.Errorf("worst rounds = %d, want 3", res.WorstSteps)
	}
}

func TestSyncExhaustiveOscillator(t *testing.T) {
	// Two nodes copying each other's complement oscillate forever under
	// the synchronous daemon (the classic synchrony pathology).
	s := program.NewSchema()
	a := s.MustDeclare("a", program.Bool())
	b := s.MustDeclare("b", program.Bool())
	p := program.New("osc", s)
	p.Add(
		program.NewAction("a<-!b", program.Closure,
			[]program.VarID{a, b}, []program.VarID{a},
			func(st *program.State) bool { return st.Bool(a) == st.Bool(b) },
			func(st *program.State) { st.SetBool(a, !st.Bool(b)) }),
		program.NewAction("b<-a", program.Closure,
			[]program.VarID{a, b}, []program.VarID{b},
			func(st *program.State) bool { return st.Bool(a) == st.Bool(b) },
			func(st *program.State) { st.SetBool(b, !st.Bool(a)) }),
	)
	S := program.NewPredicate("differ", []program.VarID{a, b},
		func(st *program.State) bool { return st.Bool(a) != st.Bool(b) })
	res, err := SyncExhaustive(p, S)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converges {
		t.Fatal("oscillator converges synchronously?")
	}
	if res.CycleWitness == nil {
		t.Error("no cycle witness")
	}
}

func TestSyncExhaustiveDeadlockOutsideS(t *testing.T) {
	s := program.NewSchema()
	a := s.MustDeclare("a", program.IntRange(0, 2))
	p := program.New("stuck", s)
	p.Add(program.NewAction("go", program.Closure,
		[]program.VarID{a}, []program.VarID{a},
		func(st *program.State) bool { return st.Get(a) == 2 },
		func(st *program.State) { st.Set(a, 0) }))
	S := program.NewPredicate("a=0", []program.VarID{a},
		func(st *program.State) bool { return st.Get(a) == 0 })
	res, err := SyncExhaustive(p, S)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converges {
		t.Fatal("deadlocked program converges? a=1 is terminal outside S")
	}
}
