package ctheory

import (
	"fmt"

	"nonmask/internal/constraint"
	"nonmask/internal/program"
	"nonmask/internal/verify"
)

// CheckTheorem1 verifies the antecedents of Theorem 1 (Section 5):
//
//	If every closure action of p preserves each constraint in S, and the
//	constraint graph of q is an out-tree, then p ∪ q is T-tolerant for S.
//
// Additionally, the well-formedness of each convergence action (Section 3
// form: ¬c -> establish c while preserving T) is checked, since the proof's
// rank induction relies on one-step establishment.
func CheckTheorem1(in *Input) (*Report, error) {
	if err := in.Set.Validate(); err != nil {
		return nil, err
	}
	r := &Report{Theorem: Theorem1, Applies: true, Orders: map[string][]string{}}

	cs := in.Set.Constraints
	cg, err := constraint.BuildGraph(cs)
	if err != nil {
		r.add("constraint graph construction", false, err.Error())
		return r, nil
	}
	r.Graph = cg

	root, isTree := cg.IsOutTree()
	detail := ""
	if isTree {
		detail = fmt.Sprintf("root %s", cg.NodeLabel(in.Schema, root))
	}
	r.add("constraint graph is an out-tree", isTree, detail)

	in.checkWellFormed(r, cs, nil)
	in.checkClosurePreserves(r, cs, nil, "")
	return r, nil
}

// CheckTheorem2 verifies the antecedents of Theorem 2 (Section 6):
//
//	If every closure action of p preserves each constraint in S, the
//	constraint graph of q is self-looping, and for each node j the
//	convergence actions of edges with target j can be linearly ordered so
//	that each action in the order preserves the constraints of the
//	preceding actions, then p ∪ q is T-tolerant for S.
func CheckTheorem2(in *Input) (*Report, error) {
	if err := in.Set.Validate(); err != nil {
		return nil, err
	}
	r := &Report{Theorem: Theorem2, Applies: true, Orders: map[string][]string{}}

	cs := in.Set.Constraints
	cg, err := constraint.BuildGraph(cs)
	if err != nil {
		r.add("constraint graph construction", false, err.Error())
		return r, nil
	}
	r.Graph = cg

	r.add("constraint graph is self-looping", cg.IsSelfLooping(), "")

	in.checkOrders(r, cg, nil)
	in.checkWellFormed(r, cs, nil)
	in.checkClosurePreserves(r, cs, nil, "")
	return r, nil
}

// checkOrders verifies the per-node linear-order antecedent for one
// constraint graph and records witness orders in the report.
func (in *Input) checkOrders(r *Report, cg *constraint.Graph, given []*program.Predicate) {
	for node := 0; node < cg.G.N(); node++ {
		into := cg.EdgesInto(node)
		if len(into) <= 1 {
			continue
		}
		label := cg.NodeLabel(in.Schema, node)
		name := fmt.Sprintf("same-target actions at node %s admit a linear order", label)
		order, why, err := in.linearOrder(into, given)
		if err != nil {
			r.add(name, false, err.Error())
			continue
		}
		if order == nil {
			r.add(name, false, why)
			continue
		}
		names := orderNames(order)
		r.Orders[label] = names
		r.add(name, true, fmt.Sprintf("order: %v", names))
	}
}

// CheckTheorem3 verifies the antecedents of Theorem 3 (Section 7) for the
// layering given by the constraints' Layer fields:
//
//	(1) for each partition, each closure action of p preserves each
//	    constraint in that partition whenever all constraints in lower
//	    numbered partitions hold,
//	(2) for each partition, each convergence action in higher numbered
//	    partitions preserves each constraint in that partition whenever all
//	    constraints in lower numbered partitions hold,
//	(3) for each partition, the constraint graph is self-looping, and
//	(4) for each partition, the convergence actions of edges adjacent to
//	    each node can be linearly ordered so that each action preserves the
//	    constraints of the preceding actions.
//
// The checker implements the refinement the paper's own token-ring
// verification uses (Section 7.1): a layer's constraints may strictly
// strengthen the S-conjunct — the layer *target* — they establish ("we
// propose to satisfy the second conjunct by satisfying the constraints
// x.j = x.(j+1)"), and the preservation obligations (1) and (2) apply only
// while the target is not yet established ("the first closure action is
// not enabled when the first conjunct holds but the second does not").
// Lower layers are therefore represented by their targets, which must
// themselves be closed; two extra conditions make the stage-wise argument
// sound:
//
//	(a) each layer's constraint conjunction implies its target, and
//	(b) each layer's target, once established, is preserved by every
//	    program action whenever the lower targets hold.
func CheckTheorem3(in *Input) (*Report, error) {
	if err := in.Set.Validate(); err != nil {
		return nil, err
	}
	r := &Report{Theorem: Theorem3, Applies: true, Orders: map[string][]string{}}

	layers := in.Set.Layers()
	if len(layers) < 2 {
		r.add("partition has at least two layers", false,
			fmt.Sprintf("%d layer(s); use Theorem 2 for single-layer designs", len(layers)))
	}

	// lowerTargets(k) collects the targets of layers < k.
	lowerTargets := func(k int) []*program.Predicate {
		var given []*program.Predicate
		for l := 0; l < k; l++ {
			given = append(given, in.Set.Target(l))
		}
		return given
	}

	// allActions: closure plus every convergence action, for target closure.
	allActions := append([]*program.Action{}, in.Closure...)
	allActions = append(allActions, in.Set.ConvergenceActions()...)

	for k, layer := range layers {
		if len(layer) == 0 {
			continue
		}
		target := in.Set.Target(k)
		lower := lowerTargets(k)
		// Preservation obligations for helper constraints apply only while
		// the target is not yet established.
		givenOpen := append(append([]*program.Predicate{}, lower...), program.Not(target))
		layerLabel := fmt.Sprintf(" [layer %d]", k)

		// (a) Layer constraints imply the target.
		in.checkTargetImplication(r, layer, target, layerLabel)

		// (b) The target is closed under every action, given lower targets.
		for _, a := range allActions {
			name := fmt.Sprintf("action %q preserves target%s", a.Name, layerLabel)
			res, err := in.preserves(a, target, lower)
			if err != nil {
				r.add(name, false, err.Error())
				continue
			}
			if !res.Preserves {
				r.add(name, false, fmt.Sprintf("%s -> %s", res.State, res.Next))
				continue
			}
			r.add(name, true, "")
		}

		// (3) Per-layer constraint graph is self-looping.
		cg, err := constraint.BuildGraph(layer)
		if err != nil {
			r.add("constraint graph construction"+layerLabel, false, err.Error())
			continue
		}
		r.LayerGraphs = append(r.LayerGraphs, cg)
		r.add("constraint graph is self-looping"+layerLabel, cg.IsSelfLooping(), "")

		// (4) Per-node orders within the layer, while the target is open.
		in.checkOrders(r, cg, givenOpen)

		// Well-formedness of the layer's convergence actions. Establishment
		// may rely on lower targets; completeness applies while the
		// target is open.
		in.checkWellFormed(r, layer, givenOpen)

		// (1) Closure actions preserve the layer's constraints while the
		// target is open.
		in.checkClosurePreserves(r, layer, givenOpen, layerLabel)

		// (2) Higher-layer convergence actions preserve this layer's
		// constraints while the target is open.
		for l := k + 1; l < len(layers); l++ {
			for _, hc := range layers[l] {
				for _, c := range layer {
					name := fmt.Sprintf("convergence action %q (layer %d) preserves %q%s",
						hc.Action.Name, l, c.Name(), layerLabel)
					res, err := in.preserves(hc.Action, c.Pred, givenOpen)
					if err != nil {
						r.add(name, false, err.Error())
						continue
					}
					if !res.Preserves {
						r.add(name, false, fmt.Sprintf("%s -> %s", res.State, res.Next))
						continue
					}
					r.add(name, true, "")
				}
			}
		}
	}
	return r, nil
}

// checkTargetImplication verifies that the conjunction of a layer's
// constraints implies the layer's target.
func (in *Input) checkTargetImplication(r *Report, layer []*constraint.Constraint,
	target *program.Predicate, layerLabel string) {
	name := "layer constraints imply target" + layerLabel
	if target.IsConstTrue() {
		r.add(name, true, "")
		return
	}
	var vars []program.VarID
	for _, c := range layer {
		vars = append(vars, c.Pred.Vars...)
	}
	vars = append(vars, target.Vars...)
	ce, err := verify.FindProjected(in.Schema, vars, in.Opts, func(st *program.State) bool {
		for _, c := range layer {
			if !c.Pred.Holds(st) {
				return false
			}
		}
		return !target.Holds(st)
	})
	if err != nil {
		r.add(name, false, err.Error())
		return
	}
	if ce != nil {
		r.add(name, false, fmt.Sprintf("constraints hold but target fails at %s", ce))
		return
	}
	r.add(name, true, "")
}

// Validate tries the theorems from most to least specific and returns the
// first applicable report; if none applies, it returns all reports so the
// caller can inspect which antecedents failed.
func Validate(in *Input) (applicable *Report, all []*Report, err error) {
	checkers := []func(*Input) (*Report, error){CheckTheorem1, CheckTheorem2, CheckTheorem3}
	for _, check := range checkers {
		r, err := check(in)
		if err != nil {
			return nil, all, err
		}
		all = append(all, r)
		if r.Applies {
			return r, all, nil
		}
	}
	return nil, all, nil
}
