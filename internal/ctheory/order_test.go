package ctheory

import (
	"context"
	"testing"

	"nonmask/internal/constraint"
	"nonmask/internal/program"
	"nonmask/internal/verify"
)

// threeChainFixture builds three nested-threshold constraints whose
// convergence actions all write w: cA: w >= 1, cB: w >= 2, cC: w >= 3,
// each fixed by "w < k -> w := k". All three edges share the target node
// {w} — the maximal same-target case for Theorem 2's third antecedent.
// Because each action fires only below its own threshold, it never fires
// while a higher constraint holds, so every pair preserves vacuously and
// every permutation is a valid order; the checker must still find one and
// emit it deterministically (insertion order).
func threeChainFixture(t *testing.T) *Input {
	t.Helper()
	s := program.NewSchema()
	w := s.MustDeclare("w", program.IntRange(0, 4))
	trigger := s.MustDeclare("t", program.Bool()) // source node for the edges
	mk := func(name string, threshold int32) (*program.Predicate, *program.Action) {
		pred := program.NewPredicate(name, []program.VarID{w},
			func(st *program.State) bool { return st.Get(w) >= threshold })
		act := program.NewAction("fix-"+name, program.Convergence,
			[]program.VarID{w, trigger}, []program.VarID{w},
			func(st *program.State) bool { return st.Get(w) < threshold },
			func(st *program.State) { st.Set(w, threshold) })
		return pred, act
	}
	pA, fA := mk("w>=1", 1)
	pB, fB := mk("w>=2", 2)
	pC, fC := mk("w>=3", 3)
	return &Input{
		T: program.True(),
		Set: constraint.NewSet(
			&constraint.Constraint{Pred: pA, Action: fA},
			&constraint.Constraint{Pred: pB, Action: fB},
			&constraint.Constraint{Pred: pC, Action: fC},
		),
		Schema:   s,
		Strategy: verify.Exhaustive,
	}
}

func TestTheorem2ThreeActionOrder(t *testing.T) {
	in := threeChainFixture(t)
	r, err := CheckTheorem2(in)
	if err != nil {
		t.Fatalf("CheckTheorem2: %v", err)
	}
	if !r.Applies {
		t.Fatalf("Theorem 2 rejected the chain:\n%s", r)
	}
	if len(r.Orders) != 1 {
		t.Fatalf("Orders = %v", r.Orders)
	}
	for _, order := range r.Orders {
		// Every permutation is valid here (vacuous preservation); the
		// checker emits the deterministic insertion order.
		want := []string{"w>=1", "w>=2", "w>=3"}
		if len(order) != 3 {
			t.Fatalf("order = %v", order)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Errorf("order = %v, want deterministic %v", order, want)
				break
			}
		}
	}
}

// TestTheorem2ChainGroundTruth cross-checks: the three-action design
// actually converges, even though every pair of actions shares the target
// node.
func TestTheorem2ChainGroundTruth(t *testing.T) {
	in := threeChainFixture(t)
	p := program.New("chain3", in.Schema)
	p.Add(in.Set.ConvergenceActions()...)
	S := in.Set.Conjunction("S")
	sp, err := verify.NewSpaceContext(context.Background(), p, S, program.True(), verify.Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	res := sp.CheckConvergence()
	if !res.Converges {
		t.Fatalf("chain does not converge: %s", res.Summary())
	}
	// Worst case: daemon plays fixA, fixB, fixC in the worst order — the
	// precedence chain means at most 3 productive steps... the unfair
	// daemon can stretch: from w=0: fixA(w:=1), fixB(w:=2), fixC(w:=3) is
	// forced monotone (each action only raises w to its threshold when
	// below). Worst = 3.
	if res.WorstSteps != 3 {
		t.Errorf("worst steps = %d, want 3", res.WorstSteps)
	}
}

// forcedOrderFixture builds three same-target constraints whose violation
// regions overlap so the precedence relation forces a unique order:
//
//	c1: w >= 2   fix1: w < 2 -> w := 5   (violates c2 and c3)
//	c2: w <= 3   fix2: w > 3 -> w := 3   (preserves c1, violates c3)
//	c3: w even   fix3: w odd -> w := w-1 (preserves c1 and c2)
//
// mustPrecede is exactly {1->2, 1->3, 2->3}: the only witness order is
// [w>=2, w<=3, w even].
func forcedOrderFixture(t *testing.T) *Input {
	t.Helper()
	s := program.NewSchema()
	w := s.MustDeclare("w", program.IntRange(0, 5))
	c1 := program.NewPredicate("w>=2", []program.VarID{w},
		func(st *program.State) bool { return st.Get(w) >= 2 })
	f1 := program.NewAction("fix1", program.Convergence,
		[]program.VarID{w}, []program.VarID{w},
		func(st *program.State) bool { return st.Get(w) < 2 },
		func(st *program.State) { st.Set(w, 5) })
	c2 := program.NewPredicate("w<=3", []program.VarID{w},
		func(st *program.State) bool { return st.Get(w) <= 3 })
	f2 := program.NewAction("fix2", program.Convergence,
		[]program.VarID{w}, []program.VarID{w},
		func(st *program.State) bool { return st.Get(w) > 3 },
		func(st *program.State) { st.Set(w, 3) })
	c3 := program.NewPredicate("w even", []program.VarID{w},
		func(st *program.State) bool { return st.Get(w)%2 == 0 })
	f3 := program.NewAction("fix3", program.Convergence,
		[]program.VarID{w}, []program.VarID{w},
		func(st *program.State) bool { return st.Get(w)%2 == 1 },
		func(st *program.State) { st.Set(w, st.Get(w)-1) })
	return &Input{
		T: program.True(),
		Set: constraint.NewSet(
			// Deliberately inserted in the WRONG order: the checker must
			// reorder them.
			&constraint.Constraint{Pred: c3, Action: f3},
			&constraint.Constraint{Pred: c1, Action: f1},
			&constraint.Constraint{Pred: c2, Action: f2},
		),
		Schema:   s,
		Strategy: verify.Exhaustive,
	}
}

func TestTheorem2ForcedUniqueOrder(t *testing.T) {
	in := forcedOrderFixture(t)
	r, err := CheckTheorem2(in)
	if err != nil {
		t.Fatalf("CheckTheorem2: %v", err)
	}
	if !r.Applies {
		t.Fatalf("Theorem 2 rejected the forced chain:\n%s", r)
	}
	for _, order := range r.Orders {
		want := []string{"w>=2", "w<=3", "w even"}
		if len(order) != 3 {
			t.Fatalf("order = %v", order)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("order = %v, want the forced %v", order, want)
			}
		}
	}
	// Ground truth: the design converges to the single S state w=2.
	p := program.New("forced", in.Schema)
	p.Add(in.Set.ConvergenceActions()...)
	S := in.Set.Conjunction("S")
	sp, err := verify.NewSpaceContext(context.Background(), p, S, program.True(), verify.Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	res := sp.CheckConvergence()
	if !res.Converges {
		t.Fatalf("forced chain does not converge: %s", res.Summary())
	}
	if sp.CountS() != 1 {
		t.Errorf("|S| = %d, want 1 (w=2)", sp.CountS())
	}
}

// TestStrategyDefaultsToProjected covers the Input.strategy default.
func TestStrategyDefaultsToProjected(t *testing.T) {
	in := threeChainFixture(t)
	in.Strategy = 0
	if got := in.strategy(); got != verify.Projected {
		t.Errorf("default strategy = %v, want projected", got)
	}
	r, err := CheckTheorem2(in)
	if err != nil {
		t.Fatalf("CheckTheorem2 (projected): %v", err)
	}
	if !r.Applies {
		t.Fatalf("projected strategy rejected the chain:\n%s", r)
	}
}

// TestTheorem3TargetImplicationFailure covers the target-implication
// condition: a declared target NOT implied by the layer constraints is
// rejected.
func TestTheorem3TargetImplicationFailure(t *testing.T) {
	s := program.NewSchema()
	a := s.MustDeclare("a", program.IntRange(0, 3))
	b := s.MustDeclare("b", program.IntRange(0, 3))
	aZero := program.NewPredicate("a=0", []program.VarID{a},
		func(st *program.State) bool { return st.Get(a) == 0 })
	fixA := program.NewAction("fix-a", program.Convergence,
		[]program.VarID{a}, []program.VarID{a},
		func(st *program.State) bool { return st.Get(a) != 0 },
		func(st *program.State) { st.Set(a, 0) })
	bZero := program.NewPredicate("b=0", []program.VarID{b},
		func(st *program.State) bool { return st.Get(b) == 0 })
	fixB := program.NewAction("fix-b", program.Convergence,
		[]program.VarID{b}, []program.VarID{b},
		func(st *program.State) bool { return st.Get(b) != 0 },
		func(st *program.State) { st.Set(b, 0) })
	set := constraint.NewSet(
		&constraint.Constraint{Pred: aZero, Action: fixA, Layer: 0},
		&constraint.Constraint{Pred: bZero, Action: fixB, Layer: 1},
	)
	// Bogus target: b = 3 is not implied by b = 0.
	set.SetTarget(1, program.NewPredicate("b=3", []program.VarID{b},
		func(st *program.State) bool { return st.Get(b) == 3 }))
	in := &Input{T: program.True(), Set: set, Schema: s, Strategy: verify.Exhaustive}
	r, err := CheckTheorem3(in)
	if err != nil {
		t.Fatalf("CheckTheorem3: %v", err)
	}
	if r.Applies {
		t.Fatal("Theorem 3 accepted an unimplied target")
	}
	found := false
	for _, c := range r.Conditions {
		if !c.Holds && c.Name == "layer constraints imply target [layer 1]" {
			found = true
		}
	}
	if !found {
		t.Errorf("target-implication failure not reported:\n%s", r)
	}
}
