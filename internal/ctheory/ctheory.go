// Package ctheory mechanizes the paper's three sufficient conditions for
// convergence validation:
//
//	Theorem 1 (Section 5): out-tree constraint graphs.
//	Theorem 2 (Section 6): self-looping constraint graphs with a per-node
//	                       linear order on same-target convergence actions.
//	Theorem 3 (Section 7): hierarchical partitions of the convergence
//	                       actions whose per-layer constraint graphs are
//	                       self-looping.
//
// Each theorem becomes a checker that evaluates every antecedent —
// structurally on the constraint graph, semantically via internal/verify
// preservation checks — and returns a Report saying whether the theorem
// applies and, therefore, whether the augmented program p ∪ q is provably
// T-tolerant for S.
package ctheory

import (
	"fmt"
	"strings"

	"nonmask/internal/constraint"
	"nonmask/internal/program"
	"nonmask/internal/verify"
)

// TheoremID identifies one of the paper's sufficient conditions.
type TheoremID int

// The paper's theorems.
const (
	Theorem1 TheoremID = iota + 1
	Theorem2
	Theorem3
)

// String returns the theorem's paper name.
func (t TheoremID) String() string {
	switch t {
	case Theorem1:
		return "Theorem 1 (out-tree)"
	case Theorem2:
		return "Theorem 2 (self-looping)"
	case Theorem3:
		return "Theorem 3 (layered)"
	default:
		return fmt.Sprintf("TheoremID(%d)", int(t))
	}
}

// Input is a candidate triple (p, S, T) presented as its parts: the closure
// actions of p, the fault-span T, and the constraint set whose conjunction
// with T is S, each constraint carrying its convergence action.
type Input struct {
	// Closure holds the candidate program's closure actions.
	Closure []*program.Action
	// T is the fault-span; nil means true (stabilization).
	T *program.Predicate
	// Set holds the constraints in S with their convergence actions,
	// layered for Theorem 3 (single-layer sets use layer 0 only).
	Set *constraint.Set
	// Schema is the program's variable table.
	Schema *program.Schema
	// Strategy selects exhaustive or projected preservation checking;
	// zero means Projected.
	Strategy verify.Strategy
	// Opts bounds enumeration sizes.
	Opts verify.Options
}

func (in *Input) strategy() verify.Strategy {
	if in.Strategy == 0 {
		return verify.Projected
	}
	return in.Strategy
}

// preserves runs one preservation query under the input's strategy.
func (in *Input) preserves(a *program.Action, c *program.Predicate,
	given []*program.Predicate) (*verify.PreserveResult, error) {
	return verify.Preserves(in.strategy(), in.Schema, a, c, given, in.Opts)
}

// Condition is one checked antecedent.
type Condition struct {
	// Name identifies the antecedent, e.g. "constraint graph is an out-tree".
	Name string
	// Holds reports whether the antecedent was verified.
	Holds bool
	// Detail carries the witness or counterexample description.
	Detail string
}

// Report is the outcome of checking one theorem's antecedents.
type Report struct {
	Theorem TheoremID
	// Applies is the conjunction of all conditions: when true, the theorem
	// guarantees that p ∪ q is T-tolerant for S.
	Applies bool
	// Conditions lists every antecedent with its verdict.
	Conditions []Condition
	// Graph is the constraint graph (Theorems 1 and 2; layer graphs for
	// Theorem 3 are in LayerGraphs).
	Graph *constraint.Graph
	// LayerGraphs holds the per-layer constraint graphs for Theorem 3.
	LayerGraphs []*constraint.Graph
	// Orders holds, per graph node with multiple incoming edges, a witness
	// linear order of constraint names (Theorems 2 and 3).
	Orders map[string][]string
}

func (r *Report) add(name string, holds bool, detail string) {
	r.Conditions = append(r.Conditions, Condition{Name: name, Holds: holds, Detail: detail})
	if !holds {
		r.Applies = false
	}
}

// String renders the report as a checklist.
func (r *Report) String() string {
	var b strings.Builder
	verdict := "APPLIES"
	if !r.Applies {
		verdict = "does NOT apply"
	}
	fmt.Fprintf(&b, "%s %s\n", r.Theorem, verdict)
	for _, c := range r.Conditions {
		mark := "ok  "
		if !c.Holds {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %s", mark, c.Name)
		if c.Detail != "" {
			fmt.Fprintf(&b, " — %s", c.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// checkWellFormed verifies, for every constraint, the Section 3 form of its
// convergence action "¬c -> establish c while preserving T": the action is
// enabled only when the constraint is violated, enabled whenever the
// constraint is violated (modulo the given lower-layer constraints),
// establishes the constraint in one step, and preserves T. The given
// predicates condition the completeness and establishment checks
// (Theorem 3 layers).
func (in *Input) checkWellFormed(r *Report, cs []*constraint.Constraint, given []*program.Predicate) {
	for _, c := range cs {
		name := fmt.Sprintf("convergence action %q well-formed for %q", c.Action.Name, c.Name())
		st, err := verify.GuardImpliesNot(in.Schema, c.Action, c.Pred, in.Opts)
		if err != nil {
			r.add(name, false, err.Error())
			continue
		}
		if st != nil {
			r.add(name, false, fmt.Sprintf("guard holds where constraint holds: %s", st))
			continue
		}
		// Completeness: (¬c ∧ given) => guard; otherwise a violated
		// constraint could sit with no convergence action enabled.
		vars := append(append([]program.VarID{}, c.Action.Reads...), c.Pred.Vars...)
		for _, g := range given {
			vars = append(vars, g.Vars...)
		}
		act, pred := c.Action, c.Pred
		stuck, err := verify.FindProjected(in.Schema, vars, in.Opts, func(st *program.State) bool {
			if pred.Holds(st) || act.Guard(st) {
				return false
			}
			for _, g := range given {
				if !g.Holds(st) {
					return false
				}
			}
			return true
		})
		if err != nil {
			r.add(name, false, err.Error())
			continue
		}
		if stuck != nil {
			r.add(name, false, fmt.Sprintf("constraint violated but action disabled at %s", stuck))
			continue
		}
		res, err := verify.CheckEstablishes(in.strategy(), in.Schema, c.Action, c.Pred, given, in.Opts)
		if err != nil {
			r.add(name, false, err.Error())
			continue
		}
		if !res.Preserves {
			r.add(name, false, fmt.Sprintf("does not establish constraint: %s -> %s", res.State, res.Next))
			continue
		}
		if !in.T.IsConstTrue() {
			pres, err := verify.Preserves(in.strategy(), in.Schema, c.Action, in.T, given, in.Opts)
			if err != nil {
				r.add(name, false, err.Error())
				continue
			}
			if !pres.Preserves {
				r.add(name, false, fmt.Sprintf("does not preserve T: %s -> %s", pres.State, pres.Next))
				continue
			}
		}
		r.add(name, true, "")
	}
}

// checkClosurePreserves verifies that every closure action preserves every
// constraint in cs, given the predicates (empty for Theorems 1 and 2).
func (in *Input) checkClosurePreserves(r *Report, cs []*constraint.Constraint,
	given []*program.Predicate, label string) {
	for _, a := range in.Closure {
		for _, c := range cs {
			res, err := verify.Preserves(in.strategy(), in.Schema, a, c.Pred, given, in.Opts)
			name := fmt.Sprintf("closure action %q preserves %q%s", a.Name, c.Name(), label)
			if err != nil {
				r.add(name, false, err.Error())
				continue
			}
			if !res.Preserves {
				r.add(name, false, fmt.Sprintf("%s -> %s", res.State, res.Next))
				continue
			}
			r.add(name, true, "")
		}
	}
}

// linearOrder attempts to order the constraints so that each constraint's
// action preserves the constraints of all predecessors (Theorem 2's third
// antecedent). It returns the witness order, or nil with an explanation.
//
// An order exists iff the precedence relation "a must precede b because a's
// action does not preserve b's constraint" is acyclic; a topological sort
// of that relation is a witness.
func (in *Input) linearOrder(cs []*constraint.Constraint,
	given []*program.Predicate) ([]*constraint.Constraint, string, error) {
	n := len(cs)
	if n <= 1 {
		return cs, "", nil
	}
	// mustPrecede[i][j]: i's action does not preserve j's constraint, so i
	// must come before j (otherwise i would appear after j and be required
	// to preserve j's constraint).
	mustPrecede := make([][]bool, n)
	for i := range mustPrecede {
		mustPrecede[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			res, err := verify.Preserves(in.strategy(), in.Schema, cs[i].Action, cs[j].Pred, given, in.Opts)
			if err != nil {
				return nil, "", err
			}
			if !res.Preserves {
				mustPrecede[i][j] = true
			}
		}
	}
	// Kahn's algorithm over the precedence relation.
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if mustPrecede[i][j] {
				indeg[j]++
			}
		}
	}
	var queue, order []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for j := 0; j < n; j++ {
			if mustPrecede[v][j] {
				indeg[j]--
				if indeg[j] == 0 {
					queue = append(queue, j)
				}
			}
		}
	}
	if len(order) != n {
		// Report a mutually-violating pair for the diagnosis.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if mustPrecede[i][j] && mustPrecede[j][i] {
					return nil, fmt.Sprintf("actions %q and %q violate each other's constraints",
						cs[i].Action.Name, cs[j].Action.Name), nil
				}
			}
		}
		return nil, "precedence relation is cyclic", nil
	}
	out := make([]*constraint.Constraint, n)
	for pos, idx := range order {
		out[pos] = cs[idx]
	}
	return out, "", nil
}

// orderNames renders a witness order.
func orderNames(cs []*constraint.Constraint) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Name()
	}
	return out
}
