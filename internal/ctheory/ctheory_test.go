package ctheory

import (
	"context"
	"strings"
	"testing"

	"nonmask/internal/constraint"
	"nonmask/internal/program"
	"nonmask/internal/verify"
)

// outTreeFixture models the paper's Section 4 preferred design for
// S = (x != y) && (x <= z): fix x!=y by changing y, fix x<=z by raising z.
// Its constraint graph is the out-tree {x} -> {y}, {x} -> {z}.
func outTreeFixture(t *testing.T) *Input {
	t.Helper()
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 4))
	y := s.MustDeclare("y", program.IntRange(0, 4))
	z := s.MustDeclare("z", program.IntRange(0, 4))
	neq := program.NewPredicate("x!=y", []program.VarID{x, y},
		func(st *program.State) bool { return st.Get(x) != st.Get(y) })
	leq := program.NewPredicate("x<=z", []program.VarID{x, z},
		func(st *program.State) bool { return st.Get(x) <= st.Get(z) })

	fixY := program.NewAction("fix-y", program.Convergence,
		[]program.VarID{x, y}, []program.VarID{y},
		func(st *program.State) bool { return st.Get(x) == st.Get(y) },
		func(st *program.State) { st.Set(y, (st.Get(y)+1)%5) })
	fixZ := program.NewAction("fix-z", program.Convergence,
		[]program.VarID{x, z}, []program.VarID{z},
		func(st *program.State) bool { return st.Get(x) > st.Get(z) },
		func(st *program.State) { st.Set(z, st.Get(x)) })

	// One closure action that preserves both constraints: raise z when
	// there is room and S holds locally.
	closure := program.NewAction("grow-z", program.Closure,
		[]program.VarID{x, z}, []program.VarID{z},
		func(st *program.State) bool { return st.Get(z) < 4 && st.Get(x) <= st.Get(z) },
		func(st *program.State) { st.Set(z, st.Get(z)+1) })

	return &Input{
		Closure: []*program.Action{closure},
		T:       program.True(),
		Set: constraint.NewSet(
			&constraint.Constraint{Pred: neq, Action: fixY},
			&constraint.Constraint{Pred: leq, Action: fixZ},
		),
		Schema: s,
	}
}

// sharedTargetFixture is a Theorem 2 design: two constraints whose
// convergence actions both write c, but each preserves the other.
func sharedTargetFixture(t *testing.T) *Input {
	t.Helper()
	s := program.NewSchema()
	a := s.MustDeclare("a", program.IntRange(0, 4))
	b := s.MustDeclare("b", program.IntRange(0, 4))
	c := s.MustDeclare("c", program.IntRange(0, 4))
	geA := program.NewPredicate("c>=a", []program.VarID{a, c},
		func(st *program.State) bool { return st.Get(c) >= st.Get(a) })
	geB := program.NewPredicate("c>=b", []program.VarID{b, c},
		func(st *program.State) bool { return st.Get(c) >= st.Get(b) })
	fixA := program.NewAction("raise-to-a", program.Convergence,
		[]program.VarID{a, c}, []program.VarID{c},
		func(st *program.State) bool { return st.Get(c) < st.Get(a) },
		func(st *program.State) { st.Set(c, st.Get(a)) })
	fixB := program.NewAction("raise-to-b", program.Convergence,
		[]program.VarID{b, c}, []program.VarID{c},
		func(st *program.State) bool { return st.Get(c) < st.Get(b) },
		func(st *program.State) { st.Set(c, st.Get(b)) })
	return &Input{
		T: program.True(),
		Set: constraint.NewSet(
			&constraint.Constraint{Pred: geA, Action: fixA},
			&constraint.Constraint{Pred: geB, Action: fixB},
		),
		Schema: s,
	}
}

// mutualViolationFixture is Section 6's cautionary example: each action can
// violate the other's constraint, so no linear order exists.
func mutualViolationFixture(t *testing.T) *Input {
	t.Helper()
	s := program.NewSchema()
	a := s.MustDeclare("a", program.IntRange(0, 4))
	b := s.MustDeclare("b", program.IntRange(0, 4))
	c := s.MustDeclare("c", program.IntRange(0, 4))
	eqA := program.NewPredicate("c=a", []program.VarID{a, c},
		func(st *program.State) bool { return st.Get(c) == st.Get(a) })
	eqB := program.NewPredicate("c=b", []program.VarID{b, c},
		func(st *program.State) bool { return st.Get(c) == st.Get(b) })
	fixA := program.NewAction("copy-a", program.Convergence,
		[]program.VarID{a, c}, []program.VarID{c},
		func(st *program.State) bool { return st.Get(c) != st.Get(a) },
		func(st *program.State) { st.Set(c, st.Get(a)) })
	fixB := program.NewAction("copy-b", program.Convergence,
		[]program.VarID{b, c}, []program.VarID{c},
		func(st *program.State) bool { return st.Get(c) != st.Get(b) },
		func(st *program.State) { st.Set(c, st.Get(b)) })
	return &Input{
		T: program.True(),
		Set: constraint.NewSet(
			&constraint.Constraint{Pred: eqA, Action: fixA},
			&constraint.Constraint{Pred: eqB, Action: fixB},
		),
		Schema: s,
	}
}

// layeredFixture is a minimal Theorem 3 design: layer 0 pins a to 0, layer
// 1 copies a to b once layer 0 holds.
func layeredFixture(t *testing.T) *Input {
	t.Helper()
	s := program.NewSchema()
	a := s.MustDeclare("a", program.IntRange(0, 3))
	b := s.MustDeclare("b", program.IntRange(0, 3))
	aZero := program.NewPredicate("a=0", []program.VarID{a},
		func(st *program.State) bool { return st.Get(a) == 0 })
	bEqA := program.NewPredicate("b=a", []program.VarID{a, b},
		func(st *program.State) bool { return st.Get(b) == st.Get(a) })
	fixA := program.NewAction("zero-a", program.Convergence,
		[]program.VarID{a}, []program.VarID{a},
		func(st *program.State) bool { return st.Get(a) != 0 },
		func(st *program.State) { st.Set(a, 0) })
	fixB := program.NewAction("copy-a-to-b", program.Convergence,
		[]program.VarID{a, b}, []program.VarID{b},
		func(st *program.State) bool { return st.Get(b) != st.Get(a) && st.Get(a) == 0 },
		func(st *program.State) { st.Set(b, st.Get(a)) })
	return &Input{
		T: program.True(),
		Set: constraint.NewSet(
			&constraint.Constraint{Pred: aZero, Action: fixA, Layer: 0},
			&constraint.Constraint{Pred: bEqA, Action: fixB, Layer: 1},
		),
		Schema: s,
	}
}

func TestTheorem1Applies(t *testing.T) {
	in := outTreeFixture(t)
	r, err := CheckTheorem1(in)
	if err != nil {
		t.Fatalf("CheckTheorem1: %v", err)
	}
	if !r.Applies {
		t.Fatalf("Theorem 1 does not apply:\n%s", r)
	}
	if !strings.Contains(r.String(), "out-tree") {
		t.Errorf("report missing out-tree line:\n%s", r)
	}
	if r.Graph == nil {
		t.Error("report has no constraint graph")
	}
}

func TestTheorem1RejectsSharedTarget(t *testing.T) {
	in := sharedTargetFixture(t)
	r, err := CheckTheorem1(in)
	if err != nil {
		t.Fatalf("CheckTheorem1: %v", err)
	}
	if r.Applies {
		t.Fatal("Theorem 1 applied to a non-out-tree graph")
	}
	found := false
	for _, c := range r.Conditions {
		if strings.Contains(c.Name, "out-tree") && !c.Holds {
			found = true
		}
	}
	if !found {
		t.Errorf("out-tree condition not reported failed:\n%s", r)
	}
}

func TestTheorem1RejectsViolatingClosureAction(t *testing.T) {
	in := outTreeFixture(t)
	x := in.Schema.MustLookup("x")
	// A closure action that bumps x can violate both constraints.
	in.Closure = append(in.Closure, program.NewAction("bump-x", program.Closure,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) < 4 },
		func(st *program.State) { st.Set(x, st.Get(x)+1) }))
	r, err := CheckTheorem1(in)
	if err != nil {
		t.Fatalf("CheckTheorem1: %v", err)
	}
	if r.Applies {
		t.Fatal("Theorem 1 applied despite violating closure action")
	}
}

func TestTheorem1RejectsIncompleteGuard(t *testing.T) {
	// Convergence action whose guard misses part of ¬c: x=y && x>0.
	in := outTreeFixture(t)
	x := in.Schema.MustLookup("x")
	y := in.Schema.MustLookup("y")
	in.Set.Constraints[0].Action = program.NewAction("fix-y-partial", program.Convergence,
		[]program.VarID{x, y}, []program.VarID{y},
		func(st *program.State) bool { return st.Get(x) == st.Get(y) && st.Get(x) > 0 },
		func(st *program.State) { st.Set(y, (st.Get(y)+1)%5) })
	r, err := CheckTheorem1(in)
	if err != nil {
		t.Fatalf("CheckTheorem1: %v", err)
	}
	if r.Applies {
		t.Fatal("Theorem 1 applied despite incomplete convergence guard")
	}
	var detail string
	for _, c := range r.Conditions {
		if !c.Holds {
			detail = c.Detail
		}
	}
	if !strings.Contains(detail, "disabled") {
		t.Errorf("failure detail = %q, want disabled-at-state witness", detail)
	}
}

func TestTheorem1RejectsNonEstablishingAction(t *testing.T) {
	in := outTreeFixture(t)
	x := in.Schema.MustLookup("x")
	z := in.Schema.MustLookup("z")
	// "Fix" x<=z by raising z by one — may not establish in one step.
	in.Set.Constraints[1].Action = program.NewAction("nudge-z", program.Convergence,
		[]program.VarID{x, z}, []program.VarID{z},
		func(st *program.State) bool { return st.Get(x) > st.Get(z) },
		func(st *program.State) { st.Set(z, st.Get(z)+1) })
	r, err := CheckTheorem1(in)
	if err != nil {
		t.Fatalf("CheckTheorem1: %v", err)
	}
	if r.Applies {
		t.Fatal("Theorem 1 applied despite non-establishing convergence action")
	}
}

func TestTheorem2AppliesToSharedTarget(t *testing.T) {
	in := sharedTargetFixture(t)
	r, err := CheckTheorem2(in)
	if err != nil {
		t.Fatalf("CheckTheorem2: %v", err)
	}
	if !r.Applies {
		t.Fatalf("Theorem 2 does not apply:\n%s", r)
	}
	// The {c} node has two incoming edges; a witness order must be present.
	if len(r.Orders) != 1 {
		t.Errorf("Orders = %v, want one node entry", r.Orders)
	}
	for _, order := range r.Orders {
		if len(order) != 2 {
			t.Errorf("witness order = %v, want 2 entries", order)
		}
	}
}

func TestTheorem2RejectsMutualViolation(t *testing.T) {
	in := mutualViolationFixture(t)
	r, err := CheckTheorem2(in)
	if err != nil {
		t.Fatalf("CheckTheorem2: %v", err)
	}
	if r.Applies {
		t.Fatal("Theorem 2 applied to mutually violating actions")
	}
	var detail string
	for _, c := range r.Conditions {
		if strings.Contains(c.Name, "linear order") && !c.Holds {
			detail = c.Detail
		}
	}
	if !strings.Contains(detail, "violate each other") {
		t.Errorf("linear-order failure detail = %q", detail)
	}
}

// TestMutualViolationActuallyLivelocks cross-checks the theorem rejection
// against ground truth: the mutually-violating design really does admit a
// non-converging computation.
func TestMutualViolationActuallyLivelocks(t *testing.T) {
	in := mutualViolationFixture(t)
	p := program.New("mutual", in.Schema)
	p.Add(in.Set.ConvergenceActions()...)
	S := in.Set.Conjunction("S")
	sp, err := verify.NewSpaceContext(context.Background(), p, S, program.True(), verify.Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	res := sp.CheckConvergence()
	if res.Converges {
		t.Error("mutually violating design converges under arbitrary daemon")
	}
	fair := sp.CheckFairConvergence()
	if fair.Converges {
		t.Error("mutually violating design converges under fair daemon")
	}
}

// TestSharedTargetActuallyConverges cross-checks the Theorem 2 acceptance.
func TestSharedTargetActuallyConverges(t *testing.T) {
	in := sharedTargetFixture(t)
	p := program.New("shared", in.Schema)
	p.Add(in.Set.ConvergenceActions()...)
	S := in.Set.Conjunction("S")
	sp, err := verify.NewSpaceContext(context.Background(), p, S, program.True(), verify.Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	res := sp.CheckConvergence()
	if !res.Converges {
		t.Errorf("Theorem 2-validated design does not converge: %s", res.Summary())
	}
}

func TestTheorem3Applies(t *testing.T) {
	in := layeredFixture(t)
	r, err := CheckTheorem3(in)
	if err != nil {
		t.Fatalf("CheckTheorem3: %v", err)
	}
	if !r.Applies {
		t.Fatalf("Theorem 3 does not apply:\n%s", r)
	}
	if len(r.LayerGraphs) != 2 {
		t.Errorf("LayerGraphs = %d, want 2", len(r.LayerGraphs))
	}
}

func TestTheorem3RejectsSingleLayer(t *testing.T) {
	in := sharedTargetFixture(t)
	r, err := CheckTheorem3(in)
	if err != nil {
		t.Fatalf("CheckTheorem3: %v", err)
	}
	if r.Applies {
		t.Error("Theorem 3 applied to a single-layer design")
	}
}

func TestTheorem3RejectsHigherLayerInterference(t *testing.T) {
	in := layeredFixture(t)
	a := in.Schema.MustLookup("a")
	b := in.Schema.MustLookup("b")
	// Higher-layer action that writes a violates the layer-0 constraint.
	in.Set.Constraints[1].Action = program.NewAction("clobber", program.Convergence,
		[]program.VarID{a, b}, []program.VarID{a, b},
		func(st *program.State) bool { return st.Get(b) != st.Get(a) && st.Get(a) == 0 },
		func(st *program.State) {
			st.Set(b, 0)
			st.Set(a, 1)
		})
	r, err := CheckTheorem3(in)
	if err != nil {
		t.Fatalf("CheckTheorem3: %v", err)
	}
	if r.Applies {
		t.Fatal("Theorem 3 applied despite higher-layer interference")
	}
}

func TestTheorem3ConditionalPreservation(t *testing.T) {
	// The layered fixture's copy action does NOT unconditionally preserve
	// b=a... it does actually (it writes b := a). Make a fixture where the
	// closure action preserves layer 1 only given layer 0: closure bumps b
	// when a != 0 — given a=0 it is disabled, so preservation holds
	// conditionally but not unconditionally.
	in := layeredFixture(t)
	a := in.Schema.MustLookup("a")
	b := in.Schema.MustLookup("b")
	in.Closure = []*program.Action{program.NewAction("chaos-b", program.Closure,
		[]program.VarID{a, b}, []program.VarID{b},
		func(st *program.State) bool { return st.Get(a) != 0 && st.Get(b) < 3 },
		func(st *program.State) { st.Set(b, st.Get(b)+1) })}
	r, err := CheckTheorem3(in)
	if err != nil {
		t.Fatalf("CheckTheorem3: %v", err)
	}
	if !r.Applies {
		t.Fatalf("Theorem 3 rejected conditionally-preserving closure action:\n%s", r)
	}
	// Sanity: unconditionally, chaos-b does not preserve b=a.
	res, err := verify.CheckPreservesContext(context.Background(), in.Schema, in.Closure[0], in.Set.Constraints[1].Pred, nil, verify.Options{})
	if err != nil {
		t.Fatalf("CheckPreserves: %v", err)
	}
	if res.Preserves {
		t.Error("chaos-b unexpectedly preserves b=a unconditionally")
	}
}

func TestValidatePicksFirstApplicable(t *testing.T) {
	r, all, err := Validate(outTreeFixture(t))
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if r == nil || r.Theorem != Theorem1 {
		t.Errorf("Validate picked %v, want Theorem 1", r)
	}
	if len(all) != 1 {
		t.Errorf("all = %d reports, want 1 (stopped at first applicable)", len(all))
	}

	r, all, err = Validate(sharedTargetFixture(t))
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if r == nil || r.Theorem != Theorem2 {
		t.Errorf("Validate picked %v, want Theorem 2", r)
	}
	if len(all) != 2 {
		t.Errorf("all = %d reports, want 2", len(all))
	}

	r, all, err = Validate(mutualViolationFixture(t))
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if r != nil {
		t.Errorf("Validate found %v applicable for mutually violating design", r.Theorem)
	}
	if len(all) != 3 {
		t.Errorf("all = %d reports, want 3", len(all))
	}
}

func TestTheoremIDString(t *testing.T) {
	if !strings.Contains(Theorem1.String(), "Theorem 1") ||
		!strings.Contains(Theorem2.String(), "Theorem 2") ||
		!strings.Contains(Theorem3.String(), "Theorem 3") {
		t.Error("TheoremID.String wrong")
	}
}

func TestReportString(t *testing.T) {
	in := outTreeFixture(t)
	r, err := CheckTheorem1(in)
	if err != nil {
		t.Fatalf("CheckTheorem1: %v", err)
	}
	out := r.String()
	if !strings.Contains(out, "APPLIES") {
		t.Errorf("report lacks verdict:\n%s", out)
	}
	if !strings.Contains(out, "[ok  ]") {
		t.Errorf("report lacks ok marks:\n%s", out)
	}
}
