// Package saboteur synthesizes worst-case bounded fault schedules — the
// adversarial counterpart of internal/verify. Where the checker proves
// that *every* schedule of at most k transient faults recovers, the
// saboteur searches the same enumerated transition graph for the *one*
// schedule an adversary would pick: an interleaving of fault actions with
// daemon moves, starting inside the invariant, that maximizes an
// objective. Two objectives are supported:
//
//	recovery: maximize the worst-case recovery time after the last fault,
//	          scored by the checker's exact worst-case distance table
//	          (Space.WorstDistances) so the claimed cost is the same
//	          number the metrics passes report.
//	escape:   minimize the number of faults needed to leave the fault
//	          span T — a probe of how tight the declared span is.
//
// The search is best-first branch-and-bound over the product graph of
// (state, faults spent): nodes are expanded in decreasing order of the
// admissible bound worst(i) + (k−f)·Δmax (program moves never increase
// the worst table — that is its fixpoint equation — and one fault gains
// at most Δmax), and an exclusion set of states already reached with
// fewer faults prunes dominated schedules. Each round of the loop either
// improves the incumbent schedule or, when the best outstanding bound
// falls to the incumbent, proves k-bounded optimality. Every result
// carries a Witness that replays independently (witness.go), closing the
// loop between exact search and simulation.
package saboteur

import (
	"container/heap"
	"context"
	"fmt"
	"sync"
	"time"

	"nonmask/internal/fault"
	"nonmask/internal/obs"
	"nonmask/internal/program"
	"nonmask/internal/verify"
)

const (
	// ObjectiveRecovery maximizes post-schedule worst-case recovery time.
	ObjectiveRecovery = "recovery"
	// ObjectiveEscape minimizes the faults needed to leave the span T.
	ObjectiveEscape = "escape"

	// MaxK bounds the fault budget (the product graph carries the spent
	// count in 5 bits; realistic adversaries are far below this).
	MaxK = 16

	// DefaultBudget is the expansion budget when Options.Budget is zero.
	DefaultBudget = 1 << 22

	// PassSearch is the pass name the search emits on the space's tracer,
	// joining the checker's span taxonomy (DESIGN §8).
	PassSearch = "saboteur_search"
)

// Options configures one search.
type Options struct {
	// K is the fault budget: schedules use at most K fault steps.
	// Required, in [1, MaxK].
	K int
	// Objective is ObjectiveRecovery (the default when empty) or
	// ObjectiveEscape.
	Objective string
	// Budget caps product-graph node expansions; zero means
	// DefaultBudget. An exhausted budget returns the incumbent with
	// Optimal=false.
	Budget int64
	// Faults overrides the fault alphabet; nil means Alphabet(p).
	Faults []*program.Action
	// OnImprove, when non-nil, is invoked on the search goroutine each
	// time the incumbent improves: cost is the new objective value,
	// faults the schedule's fault count, expanded the product-graph
	// nodes expanded so far. Observation only — it must not block long
	// and cannot influence the search, so setting it never perturbs the
	// result (or any fingerprint derived from the other options).
	OnImprove func(cost, faults int, expanded int64)
}

// Normalized validates the options against the engine's own bounds and
// fills defaults (objective, budget). Front ends (csserved, csverify)
// call it at submission time so a bad fault budget or objective fails
// fast with the same wording the engine itself would use.
func (o Options) Normalized() (Options, error) { return o.normalize() }

func (o Options) normalize() (Options, error) {
	if o.K < 1 || o.K > MaxK {
		return o, fmt.Errorf("saboteur: k must be in [1, %d], got %d", MaxK, o.K)
	}
	switch o.Objective {
	case "":
		o.Objective = ObjectiveRecovery
	case ObjectiveRecovery, ObjectiveEscape:
	default:
		return o, fmt.Errorf("saboteur: unknown objective %q (want %q or %q)",
			o.Objective, ObjectiveRecovery, ObjectiveEscape)
	}
	if o.Budget < 0 {
		return o, fmt.Errorf("saboteur: budget must be non-negative, got %d", o.Budget)
	}
	if o.Budget == 0 {
		o.Budget = DefaultBudget
	}
	return o, nil
}

// Result reports what one search established.
type Result struct {
	// Objective and K echo the normalized options.
	Objective string
	K         int
	// Cost is the objective value of the incumbent schedule: worst-case
	// recovery steps after the schedule (recovery), or the number of
	// faults spent to leave the span (escape, when Escaped).
	Cost int
	// Escaped reports that an escape-objective search left the span.
	Escaped bool
	// Optimal reports that the search proved no k-bounded schedule beats
	// the incumbent (false only when Budget ran out first).
	Optimal bool
	// Expanded is the number of product-graph nodes expanded.
	Expanded int64
	// Rounds counts incumbent improvements — the iterations of the
	// iterate-and-exclude loop that found a strictly better schedule.
	Rounds int
	// DeltaMax is the largest one-fault gain of the worst-case distance
	// across the span (the Δ of the admissible bound; recovery only).
	DeltaMax int
	// Witness is the replayable schedule, nil when Cost is 0 (no fault
	// does damage) or no escape was found.
	Witness *Witness
	// Elapsed is the search wall-clock time.
	Elapsed time.Duration
}

// Alphabet returns the fault actions the saboteur schedules for a
// program: the program's own Fault-kind actions when it declares any
// (GCL fault sections), otherwise the universal single-variable
// corruptions over the schema — the transient-fault model of the paper's
// Section 2, under which any one variable may be perturbed to any value
// in its domain.
func Alphabet(p *program.Program) []*program.Action {
	if own := p.OfKind(program.Fault); len(own) > 0 {
		return own
	}
	vars := make([]program.VarID, p.Schema.Len())
	for i := range vars {
		vars[i] = program.VarID(i)
	}
	return fault.Actions(p.Schema, vars)
}

// Search synthesizes a worst-case k-fault schedule over the space's
// transition graph. The space must carry the fault span the schedule is
// confined to (its T); for the recovery objective the space must converge
// under the arbitrary daemon, since the objective is scored by the
// worst-case distance table. Spans are emitted on the space's tracer
// under PassSearch.
func Search(ctx context.Context, sp *verify.Space, opts Options) (*Result, error) {
	o, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	alphabet := o.Faults
	if alphabet == nil {
		alphabet = Alphabet(sp.P)
	}
	if len(alphabet) == 0 {
		return nil, fmt.Errorf("saboteur: empty fault alphabet for %q", sp.P.Name)
	}
	e := &engine{
		sp:        sp,
		cur:       sp.NewSuccCursor(),
		st:        sp.P.Schema.NewState(),
		tmp:       sp.P.Schema.NewState(),
		k:         o.K,
		budget:    o.Budget,
		alphabet:  alphabet,
		onImprove: o.OnImprove,
		minF:      make([]uint8, sp.Count),
		parents:   make(map[uint64]parent),
	}
	for i := range e.minF {
		e.minF[i] = unseen
	}

	tracer := sp.Tracer()
	if tracer != nil {
		tracer.PassStart(PassSearch, 0)
	}
	start := time.Now()
	var res *Result
	if o.Objective == ObjectiveEscape {
		res, err = e.searchEscape(ctx)
	} else {
		res, err = e.searchRecovery(ctx)
	}
	elapsed := time.Since(start)
	if tracer != nil {
		stat := obs.PassStat{Pass: PassSearch, Workers: sp.Workers(), ElapsedMS: float64(elapsed) / float64(time.Millisecond)}
		if res != nil {
			stat.States = res.Expanded
		}
		tracer.PassEnd(stat)
	}
	if err != nil {
		return nil, err
	}
	res.Objective, res.K, res.Elapsed = o.Objective, o.K, elapsed
	if res.Witness != nil {
		res.Witness.Objective = o.Objective
		res.Witness.K = o.K
		res.Witness.Cost = res.Cost
	}
	return res, nil
}

// unseen marks states no schedule has reached yet in the exclusion set.
const unseen = 0xFF

// nkey packs a product-graph node (state, faults spent) into a map key;
// MaxK ≤ 16 fits the low 5 bits.
func nkey(i int64, f int) uint64 { return uint64(i)<<5 | uint64(f) }

// parent records how a node was first reached, for witness back-walks.
// Seeds (invariant states at f=0) have no entry — the walk stops there.
type parent struct {
	key uint64
	act *program.Action
}

type engine struct {
	sp       *verify.Space
	cur      *verify.SuccCursor
	st, tmp  *program.State
	k        int
	budget   int64
	alphabet []*program.Action

	// minF[i] is the fewest faults any enqueued schedule spent reaching
	// state i — the exclusion set of the iterate-and-exclude loop. A node
	// (i, f) with f ≥ minF[i] is dominated (same state, no more budget
	// left) and is never expanded again.
	minF    []uint8
	parents map[uint64]parent
	h       nodeHeap

	// onImprove mirrors Options.OnImprove (nil when unset).
	onImprove func(cost, faults int, expanded int64)

	expanded int64
}

// node is a heap entry; prio orders expansion (higher first): the
// admissible upper bound for recovery, k−f for escape (so fewer faults
// pop first and the first escape found is minimal).
type node struct {
	i    int64
	f    int32
	prio int32
}

type nodeHeap []node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(a, b int) bool {
	// Canonical total order so witnesses are identical across runs and
	// worker counts: bound desc, then state asc, then faults asc.
	if h[a].prio != h[b].prio {
		return h[a].prio > h[b].prio
	}
	if h[a].i != h[b].i {
		return h[a].i < h[b].i
	}
	return h[a].f < h[b].f
}
func (h nodeHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(node)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// push enqueues (i, f) unless the exclusion set dominates it.
func (e *engine) push(i int64, f int, prio int32, par parent) {
	if e.minF[i] <= uint8(f) {
		return
	}
	e.minF[i] = uint8(f)
	e.parents[nkey(i, f)] = par
	heap.Push(&e.h, node{i: i, f: int32(f), prio: prio})
}

func (e *engine) poll(ctx context.Context) error {
	if e.expanded&1023 == 0 {
		return ctx.Err()
	}
	return nil
}

// searchRecovery finds the k-fault schedule maximizing worst-case
// recovery time. Seeds are all invariant states (the system is at a
// legitimate state when the faults strike); fault steps are confined to
// the span T, matching the convergence premise the cost is scored by.
func (e *engine) searchRecovery(ctx context.Context) (*Result, error) {
	sp := e.sp
	worst, ok, err := sp.WorstDistancesContext(ctx)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("saboteur: recovery objective requires arbitrary-daemon convergence of %q (no finite worst-case distance table exists)", sp.P.Name)
	}
	dmax, err := e.deltaMax(ctx, worst)
	if err != nil {
		return nil, err
	}
	if dmax <= 0 {
		// No single fault gains distance anywhere in the span: every
		// k-fault schedule recovers for free, nothing to hunt.
		return &Result{Optimal: true, DeltaMax: dmax}, nil
	}
	ub := func(i int64, f int) int32 { return worst[i] + int32((e.k-f)*dmax) }

	// Seed layer: the f=0 invariant states are all equivalent roots
	// (closure keeps program moves inside S at worst 0), so instead of
	// heaping |S| identical nodes, expand their fault edges directly.
	for i := int64(0); i < sp.Count; i++ {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if !sp.InS(i) {
			continue
		}
		e.minF[i] = 0
		sp.P.Schema.StateInto(i, e.st)
		for _, a := range e.alphabet {
			if !a.Guard(e.st) {
				continue
			}
			a.ApplyInto(e.st, e.tmp)
			j := sp.P.Schema.Index(e.tmp)
			if !sp.InT(j) {
				continue
			}
			e.push(j, 1, ub(j, 1), parent{key: nkey(i, 0), act: a})
		}
	}

	incumbent := 0 // zero faults, zero recovery: always achievable
	var peak uint64
	havePeak := false
	rounds := 0
	optimal := false
	for e.h.Len() > 0 {
		n := heap.Pop(&e.h).(node)
		if int(n.prio) <= incumbent {
			// Admissible bound: nothing outstanding beats the incumbent.
			optimal = true
			break
		}
		if e.minF[n.i] < uint8(n.f) {
			continue // excluded: a thriftier schedule reached this state
		}
		if e.expanded >= e.budget {
			break
		}
		e.expanded++
		if err := e.poll(ctx); err != nil {
			return nil, err
		}
		f := int(n.f)
		if w := int(worst[n.i]); w > incumbent {
			incumbent, peak, havePeak = w, nkey(n.i, f), true
			rounds++
			if e.onImprove != nil {
				e.onImprove(incumbent, f, e.expanded)
			}
		}
		if f < e.k {
			sp.P.Schema.StateInto(n.i, e.st)
			for _, a := range e.alphabet {
				if !a.Guard(e.st) {
					continue
				}
				a.ApplyInto(e.st, e.tmp)
				j := sp.P.Schema.Index(e.tmp)
				if !sp.InT(j) {
					continue
				}
				e.push(j, f+1, ub(j, f+1), parent{key: nkey(n.i, f), act: a})
			}
		}
		e.cur.ForEach(n.i, func(a *program.Action, j int64) bool {
			// Fault-kind actions of the program are scheduled through the
			// alphabet above, where they spend budget — not as free moves.
			if a.Kind != program.Fault {
				e.push(j, f, ub(j, f), parent{key: nkey(n.i, f), act: a})
			}
			return true
		})
	}
	if e.h.Len() == 0 {
		optimal = true
	}

	res := &Result{Cost: incumbent, Optimal: optimal, Expanded: e.expanded, Rounds: rounds, DeltaMax: dmax}
	if havePeak && incumbent > 0 {
		w, err := e.buildWitness(peak, nil)
		if err != nil {
			return nil, err
		}
		if err := e.appendRecovery(w, int64(peak>>5), worst); err != nil {
			return nil, err
		}
		res.Witness = w
	}
	return res, nil
}

// searchEscape finds the fewest faults that carry the system from the
// invariant out of the span T — uniform-cost search over the same product
// graph (prio k−f pops thriftier schedules first). Cost counts faults; a
// zero-fault escape would be a closure violation of T, which is the
// closure checker's verdict, not the saboteur's.
func (e *engine) searchEscape(ctx context.Context) (*Result, error) {
	sp := e.sp
	type escape struct {
		key  uint64 // node the escaping step fires from
		act  *program.Action
		cost int
	}
	var best *escape
	rounds := 0
	record := func(key uint64, act *program.Action, cost int) {
		if best == nil || cost < best.cost {
			best = &escape{key: key, act: act, cost: cost}
			rounds++
			if e.onImprove != nil {
				e.onImprove(cost, cost, e.expanded)
			}
		}
	}

	for i := int64(0); i < sp.Count; i++ {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if !sp.InS(i) {
			continue
		}
		e.minF[i] = 0
		sp.P.Schema.StateInto(i, e.st)
		for _, a := range e.alphabet {
			if !a.Guard(e.st) {
				continue
			}
			a.ApplyInto(e.st, e.tmp)
			j := sp.P.Schema.Index(e.tmp)
			if !sp.InT(j) {
				if best == nil {
					record(nkey(i, 0), a, 1)
				}
				continue
			}
			if best == nil {
				e.push(j, 1, int32(e.k-1), parent{key: nkey(i, 0), act: a})
			}
		}
	}

	optimal := best != nil // a 1-fault escape cannot be beaten
	exhausted := false
	if best == nil {
		for e.h.Len() > 0 {
			n := heap.Pop(&e.h).(node)
			f := int(n.f)
			if best != nil && f >= best.cost {
				// Any escape from a level-f node costs ≥ f faults.
				optimal = true
				break
			}
			if e.minF[n.i] < uint8(n.f) {
				continue
			}
			if e.expanded >= e.budget {
				exhausted = true
				break
			}
			e.expanded++
			if err := e.poll(ctx); err != nil {
				return nil, err
			}
			e.cur.ForEach(n.i, func(a *program.Action, j int64) bool {
				if a.Kind == program.Fault {
					return true
				}
				if !sp.InT(j) {
					record(nkey(n.i, f), a, f)
					return false
				}
				e.push(j, f, int32(e.k-f), parent{key: nkey(n.i, f), act: a})
				return true
			})
			if best != nil && best.cost == f {
				optimal = true
				break
			}
			if f < e.k {
				sp.P.Schema.StateInto(n.i, e.st)
				for _, a := range e.alphabet {
					if !a.Guard(e.st) {
						continue
					}
					a.ApplyInto(e.st, e.tmp)
					j := sp.P.Schema.Index(e.tmp)
					if !sp.InT(j) {
						record(nkey(n.i, f), a, f+1)
						continue
					}
					e.push(j, f+1, int32(e.k-f-1), parent{key: nkey(n.i, f), act: a})
				}
			}
		}
		if e.h.Len() == 0 && !exhausted {
			optimal = true // the whole k-fault reachable set stayed in T
		}
	}

	res := &Result{Optimal: optimal, Expanded: e.expanded, Rounds: rounds}
	if best != nil {
		res.Escaped = true
		res.Cost = best.cost
		w, err := e.buildWitness(best.key, best.act)
		if err != nil {
			return nil, err
		}
		res.Witness = w
	}
	return res, nil
}

// deltaMax computes Δmax, the largest one-fault gain of the worst-case
// distance across the span, sharded over the space's worker count.
// Program moves strictly decrease the worst table (its fixpoint
// equation), so only fault steps gain distance — by at most Δmax each;
// induction over remaining budget makes worst(i) + (k−f)·Δmax an
// admissible bound on any k-fault schedule through (i, f).
func (e *engine) deltaMax(ctx context.Context, worst []int32) (int, error) {
	sp := e.sp
	workers := sp.Workers()
	count := sp.Count
	chunk := (count + int64(workers) - 1) / int64(workers)
	gains := make([]int32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := int64(w) * chunk
		hi := lo + chunk
		if hi > count {
			hi = count
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w int, lo, hi int64) {
			defer wg.Done()
			st, tmp := sp.P.Schema.NewState(), sp.P.Schema.NewState()
			g := int32(0)
			for i := lo; i < hi; i++ {
				if i&4095 == 0 && ctx.Err() != nil {
					return
				}
				if !sp.InT(i) {
					continue
				}
				sp.P.Schema.StateInto(i, st)
				for _, a := range e.alphabet {
					if !a.Guard(st) {
						continue
					}
					a.ApplyInto(st, tmp)
					j := sp.P.Schema.Index(tmp)
					if !sp.InT(j) {
						continue
					}
					if d := worst[j] - worst[i]; d > g {
						g = d
					}
				}
			}
			gains[w] = g
		}(w, lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	dmax := int32(0)
	for _, g := range gains {
		if g > dmax {
			dmax = g
		}
	}
	return int(dmax), nil
}

// buildWitness back-walks the parent chain from the given node to its
// invariant seed, then replays forward to record per-step valuations.
// For escape witnesses, final is the escaping action appended after the
// chain; nil for recovery witnesses (the peak is the chain's last node).
func (e *engine) buildWitness(key uint64, final *program.Action) (*Witness, error) {
	sp := e.sp
	var acts []*program.Action
	at := key
	for {
		i, f := int64(at>>5), int(at&31)
		if f == 0 && sp.InS(i) {
			break
		}
		p, ok := e.parents[at]
		if !ok {
			return nil, fmt.Errorf("saboteur: internal: broken parent chain at state %d", i)
		}
		acts = append(acts, p.act)
		at = p.key
	}
	for l, r := 0, len(acts)-1; l < r; l, r = l+1, r-1 {
		acts[l], acts[r] = acts[r], acts[l]
	}
	if final != nil {
		acts = append(acts, final)
	}

	start := int64(at >> 5)
	st := sp.P.Schema.StateAt(start)
	w := &Witness{
		Version: WitnessVersion,
		Program: sp.P.Name,
		Vars:    sp.P.Schema.Names(),
		Start:   st.Values(),
	}
	for _, a := range acts {
		if !a.Guard(st) {
			return nil, fmt.Errorf("saboteur: internal: %q disabled during witness replay at %s", a.Name, st)
		}
		st = a.Apply(st)
		w.Steps = append(w.Steps, step(a, st))
	}
	return w, nil
}

// appendRecovery extends a recovery witness with the greedy worst-case
// descent from the peak: at each state take the successor maximizing the
// worst table, first maximum winning — exactly the choice the simulator's
// worst-case daemon (daemon.NewWorstCase) makes, so the recovery replays
// verbatim under it. The fixpoint equation worst(i) = 1 + max over
// successors makes the descent exactly worst(peak) steps long.
func (e *engine) appendRecovery(w *Witness, peak int64, worst []int32) error {
	sp := e.sp
	i := peak
	for !sp.InS(i) {
		if len(w.Recovery) > int(worst[peak]) {
			return fmt.Errorf("saboteur: internal: recovery from %s exceeds worst distance %d", sp.State(peak), worst[peak])
		}
		var bestA *program.Action
		var bestJ int64
		bestW := int32(-1)
		e.cur.ForEach(i, func(a *program.Action, j int64) bool {
			if worst[j] > bestW {
				bestW, bestJ, bestA = worst[j], j, a
			}
			return true
		})
		if bestA == nil {
			return fmt.Errorf("saboteur: internal: deadlock during recovery at %s", sp.State(i))
		}
		i = bestJ
		w.Recovery = append(w.Recovery, step(bestA, sp.State(i)))
	}
	if got, want := len(w.Recovery), int(worst[peak]); got != want {
		return fmt.Errorf("saboteur: internal: greedy recovery took %d steps, worst table says %d", got, want)
	}
	return nil
}
