package saboteur_test

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"nonmask/internal/daemon"
	"nonmask/internal/obs"
	"nonmask/internal/program"
	"nonmask/internal/protocols/registry"
	"nonmask/internal/saboteur"
	"nonmask/internal/sim"
	"nonmask/internal/verify"
)

// chain builds the hand-solvable oracle program: one counter x in [0, hi]
// with the single action x>0 -> x:=x-1 and invariant x=0. The worst-case
// distance of state x is exactly x, so a k-fault saboteur's best schedule
// is one fault x:=min(hi, span) and its cost is that value.
func chain(t *testing.T, hi int32, spanMax int32) (*program.Program, *program.Predicate, *program.Predicate) {
	t.Helper()
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, hi))
	p := program.New("chain", s)
	p.Add(program.NewAction("dec", program.Convergence,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) > 0 },
		func(st *program.State) { st.Set(x, st.Get(x)-1) }))
	S := program.NewPredicate("x=0", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == 0 })
	T := program.True()
	if spanMax >= 0 {
		T = program.NewPredicate("x<=span", []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) <= spanMax })
	}
	return p, S, T
}

func mustSpace(t *testing.T, p *program.Program, S, T *program.Predicate, opts verify.Options) *verify.Space {
	t.Helper()
	sp, err := verify.NewSpaceContext(context.Background(), p, S, T, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// mustReplayBoth replays the witness at program level and through the
// space's transition graph and requires both to reproduce the claimed
// cost exactly.
func mustReplayBoth(t *testing.T, sp *verify.Space, res *saboteur.Result) *saboteur.Replayed {
	t.Helper()
	if res.Witness == nil {
		t.Fatal("result has no witness")
	}
	rp, err := res.Witness.Replay(sp.P, sp.S, sp.T)
	if err != nil {
		t.Fatalf("program-level replay: %v", err)
	}
	rs, err := res.Witness.ReplaySpace(context.Background(), sp)
	if err != nil {
		t.Fatalf("space replay: %v", err)
	}
	if rp.Cost != res.Cost || rs.Cost != res.Cost {
		t.Fatalf("replayed costs (program %d, space %d) != claimed %d", rp.Cost, rs.Cost, res.Cost)
	}
	if rp.Escaped != res.Escaped || rs.Escaped != res.Escaped {
		t.Fatalf("replayed escape (program %v, space %v) != claimed %v", rp.Escaped, rs.Escaped, res.Escaped)
	}
	return rp
}

// bruteForce enumerates every k-fault schedule by exhaustive BFS over the
// (state, faults-spent) product graph — no heuristic, no dominance — and
// returns the maximum worst-table score over all reachable nodes: the
// ground-truth optimum the engine must match.
func bruteForce(t *testing.T, sp *verify.Space, k int) int {
	t.Helper()
	worst, ok := sp.WorstDistances()
	if !ok {
		t.Fatal("no worst-case distance table")
	}
	alphabet := saboteur.Alphabet(sp.P)
	type node struct {
		i int64
		f int
	}
	seen := make(map[node]bool)
	var queue []node
	push := func(n node) {
		if !seen[n] {
			seen[n] = true
			queue = append(queue, n)
		}
	}
	for i := int64(0); i < sp.Count; i++ {
		if sp.InS(i) {
			push(node{i, 0})
		}
	}
	best := 0
	cur := sp.NewSuccCursor()
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if int(worst[n.i]) > best {
			best = int(worst[n.i])
		}
		if n.f < k {
			st := sp.State(n.i)
			for _, a := range alphabet {
				if !a.Guard(st) {
					continue
				}
				j := sp.P.Schema.Index(a.Apply(st))
				if sp.InT(j) {
					push(node{j, n.f + 1})
				}
			}
		}
		cur.ForEach(n.i, func(a *program.Action, j int64) bool {
			if a.Kind != program.Fault {
				push(node{j, n.f})
			}
			return true
		})
	}
	return best
}

func TestChainHandSolved(t *testing.T) {
	p, S, T := chain(t, 5, -1)
	sp := mustSpace(t, p, S, T, verify.Options{})
	for _, k := range []int{1, 2} {
		res, err := saboteur.Search(context.Background(), sp, saboteur.Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost != 5 {
			t.Fatalf("k=%d: cost = %d, want 5 (one fault x:=5)", k, res.Cost)
		}
		if !res.Optimal {
			t.Fatalf("k=%d: search did not prove optimality", k)
		}
		if res.DeltaMax != 5 {
			t.Errorf("k=%d: DeltaMax = %d, want 5", k, res.DeltaMax)
		}
		rp := mustReplayBoth(t, sp, res)
		if got := rp.Peak.String(); !strings.Contains(got, "5") {
			t.Errorf("k=%d: peak = %s, want x=5", k, got)
		}
		if len(res.Witness.Recovery) != 5 {
			t.Errorf("k=%d: recovery has %d steps, want 5", k, len(res.Witness.Recovery))
		}
	}
}

// TestInterleavingBruteForce uses a two-variable program where the best
// 2-fault schedule must corrupt both variables: x in [0,3] decremented
// only while the lock b is clear, plus an unlock action. worst(x,b)=x+b,
// so k=1 yields 3 and k=2 yields 4.
func TestInterleavingBruteForce(t *testing.T) {
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 3))
	b := s.MustDeclare("b", program.Bool())
	p := program.New("locked-chain", s)
	p.Add(
		program.NewAction("dec", program.Convergence,
			[]program.VarID{x, b}, []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) > 0 && st.Get(b) == 0 },
			func(st *program.State) { st.Set(x, st.Get(x)-1) }),
		program.NewAction("unlock", program.Convergence,
			[]program.VarID{b}, []program.VarID{b},
			func(st *program.State) bool { return st.Get(b) == 1 },
			func(st *program.State) { st.Set(b, 0) }),
	)
	S := program.NewPredicate("x=0 && !b", []program.VarID{x, b},
		func(st *program.State) bool { return st.Get(x) == 0 && st.Get(b) == 0 })
	sp := mustSpace(t, p, S, program.True(), verify.Options{})

	for k, want := range map[int]int{1: 3, 2: 4} {
		res, err := saboteur.Search(context.Background(), sp, saboteur.Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost != want {
			t.Errorf("k=%d: cost = %d, want %d", k, res.Cost, want)
		}
		if got := bruteForce(t, sp, k); res.Cost != got {
			t.Errorf("k=%d: engine cost %d != brute force %d", k, res.Cost, got)
		}
		if !res.Optimal {
			t.Errorf("k=%d: optimality not proven", k)
		}
		mustReplayBoth(t, sp, res)
	}
}

// TestRegistryProtocolsAcceptance is the issue's acceptance criterion on
// two catalog protocols: the engine's claimed cost must equal the
// brute-force optimum over all k-fault schedules, both replay paths must
// reproduce it bit for bit, and it must strictly exceed the mean cost a
// random daemon samples from the same peak.
func TestRegistryProtocolsAcceptance(t *testing.T) {
	cases := []struct {
		protocol string
		params   registry.Params
	}{
		{"diffusing", registry.Params{N: 3}},
		{"tokenring-ring", registry.Params{N: 3, K: 5}},
	}
	for _, tc := range cases {
		t.Run(tc.protocol, func(t *testing.T) {
			inst, err := registry.Build(tc.protocol, tc.params)
			if err != nil {
				t.Fatal(err)
			}
			T := inst.T
			if T == nil {
				T = program.True()
			}
			sp := mustSpace(t, inst.Program, inst.S, T, verify.Options{})
			res, err := saboteur.Search(context.Background(), sp, saboteur.Options{K: 2})
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost <= 0 {
				t.Fatalf("cost = %d, want > 0", res.Cost)
			}
			if !res.Optimal {
				t.Fatal("optimality not proven within default budget")
			}
			if got := bruteForce(t, sp, 2); res.Cost != got {
				t.Fatalf("engine cost %d != brute-force optimum %d", res.Cost, got)
			}
			rp := mustReplayBoth(t, sp, res)

			// The claimed cost is the worst case over daemon choices from
			// the peak; a random daemon averaged over many runs must do
			// strictly better.
			r := &sim.Runner{P: inst.Program, S: inst.S, D: daemon.NewRandom(7), StopAtS: true}
			rng := rand.New(rand.NewSource(7))
			sum, runs := 0, 200
			for i := 0; i < runs; i++ {
				one := r.Run(rp.Peak, rng)
				if !one.Converged {
					t.Fatal("random-daemon run from the peak did not converge")
				}
				if one.Steps > res.Cost {
					t.Fatalf("random daemon took %d steps from the peak, exceeding the claimed worst case %d", one.Steps, res.Cost)
				}
				sum += one.Steps
			}
			mean := float64(sum) / float64(runs)
			if !(mean < float64(res.Cost)) {
				t.Fatalf("mean random-daemon cost %.2f does not lie strictly below the claimed worst case %d", mean, res.Cost)
			}
			t.Logf("%s: cost %d (brute-force match), mean random cost %.2f over %d runs", tc.protocol, res.Cost, mean, runs)
		})
	}
}

// TestSpanConfinement pins the span semantics: with T = {x<=3} the
// recovery saboteur cannot push x past 3, and the escape saboteur leaves
// the span with a single fault.
func TestSpanConfinement(t *testing.T) {
	p, S, T := chain(t, 5, 3)
	sp := mustSpace(t, p, S, T, verify.Options{})

	res, err := saboteur.Search(context.Background(), sp, saboteur.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 3 || !res.Optimal {
		t.Fatalf("recovery in span x<=3: cost %d (optimal %v), want 3 (true)", res.Cost, res.Optimal)
	}
	mustReplayBoth(t, sp, res)

	esc, err := saboteur.Search(context.Background(), sp, saboteur.Options{K: 2, Objective: saboteur.ObjectiveEscape})
	if err != nil {
		t.Fatal(err)
	}
	if !esc.Escaped || esc.Cost != 1 || !esc.Optimal {
		t.Fatalf("escape from x<=3: escaped %v cost %d optimal %v, want true 1 true", esc.Escaped, esc.Cost, esc.Optimal)
	}
	mustReplayBoth(t, sp, esc)
}

// TestEscapeConfined: with the trivial span T=true no schedule can
// escape, and the search proves it.
func TestEscapeConfined(t *testing.T) {
	p, S, T := chain(t, 5, -1)
	sp := mustSpace(t, p, S, T, verify.Options{})
	res, err := saboteur.Search(context.Background(), sp, saboteur.Options{K: 2, Objective: saboteur.ObjectiveEscape})
	if err != nil {
		t.Fatal(err)
	}
	if res.Escaped || !res.Optimal || res.Witness != nil {
		t.Fatalf("escape from T=true: escaped %v optimal %v witness %v, want false true nil", res.Escaped, res.Optimal, res.Witness)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	inst, err := registry.Build("diffusing", registry.Params{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	sp := mustSpace(t, inst.Program, inst.S, inst.T, verify.Options{})
	res, err := saboteur.Search(context.Background(), sp, saboteur.Options{K: 2, Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimal {
		t.Fatal("a 1-expansion budget cannot prove optimality")
	}
	if res.Expanded > 1 {
		t.Fatalf("expanded %d nodes past a budget of 1", res.Expanded)
	}
}

// TestDeterminism: the synthesized witness must be byte-identical across
// worker counts — the canonical heap order makes the search sequentially
// deterministic, and worker count only shards the Δmax scan.
func TestDeterminism(t *testing.T) {
	inst, err := registry.Build("tokenring-ring", registry.Params{N: 3, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	var golden []byte
	for _, workers := range []int{1, 4} {
		sp := mustSpace(t, inst.Program, inst.S, program.True(), verify.Options{Workers: workers})
		res, err := saboteur.Search(context.Background(), sp, saboteur.Options{K: 2})
		if err != nil {
			t.Fatal(err)
		}
		enc, err := res.Witness.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = enc
		} else if string(golden) != string(enc) {
			t.Fatalf("witness differs between worker counts:\n%s\nvs\n%s", golden, enc)
		}
	}
}

func TestSearchEmitsSpan(t *testing.T) {
	p, S, T := chain(t, 5, -1)
	col := &obs.Collector{}
	sp := mustSpace(t, p, S, T, verify.Options{Tracer: col})
	if _, err := saboteur.Search(context.Background(), sp, saboteur.Options{K: 1}); err != nil {
		t.Fatal(err)
	}
	for _, stat := range col.Passes() {
		if stat.Pass == saboteur.PassSearch {
			if stat.States <= 0 {
				t.Errorf("span reports %d expansions, want > 0", stat.States)
			}
			return
		}
	}
	t.Fatalf("no %q span collected; got %v", saboteur.PassSearch, col.Passes())
}

func TestReplayRejectsTampering(t *testing.T) {
	p, S, T := chain(t, 5, -1)
	sp := mustSpace(t, p, S, T, verify.Options{})
	res, err := saboteur.Search(context.Background(), sp, saboteur.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}

	tamper := func(mut func(w *saboteur.Witness)) *saboteur.Witness {
		enc, err := res.Witness.Encode()
		if err != nil {
			t.Fatal(err)
		}
		w, err := saboteur.DecodeWitness(enc)
		if err != nil {
			t.Fatal(err)
		}
		mut(w)
		return w
	}

	cases := map[string]*saboteur.Witness{
		"inflated cost":    tamper(func(w *saboteur.Witness) { w.Cost++ }),
		"wrong after":      tamper(func(w *saboteur.Witness) { w.Steps[0].After[0]++ }),
		"unknown action":   tamper(func(w *saboteur.Witness) { w.Steps[0].Action = "no-such-fault" }),
		"truncated":        tamper(func(w *saboteur.Witness) { w.Recovery = w.Recovery[:len(w.Recovery)-1] }),
		"start outside S":  tamper(func(w *saboteur.Witness) { w.Start[0] = 2 }),
		"overspent budget": tamper(func(w *saboteur.Witness) { w.K = 0 }),
	}
	for name, w := range cases {
		if _, err := w.Replay(p, S, T); err == nil {
			t.Errorf("%s: program-level replay accepted a tampered witness", name)
		}
		if _, err := w.ReplaySpace(context.Background(), sp); err == nil {
			t.Errorf("%s: space replay accepted a tampered witness", name)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	p, S, T := chain(t, 2, -1)
	sp := mustSpace(t, p, S, T, verify.Options{})
	for name, opts := range map[string]saboteur.Options{
		"k too small":     {K: 0},
		"k too large":     {K: saboteur.MaxK + 1},
		"bad objective":   {K: 1, Objective: "explode"},
		"negative budget": {K: 1, Budget: -5},
	} {
		if _, err := saboteur.Search(context.Background(), sp, opts); err == nil {
			t.Errorf("%s: Search accepted invalid options", name)
		}
	}
}
