// Metamorphic replay suite (the issue's test-coverage satellite): on
// every enumerable testdata/*.gcl model, a synthesized witness must
// replay to the exact claimed cost through both independent paths —
// program-level execution and the space's schedule-constrained transition
// graph — and the whole result must be bit-identical across worker
// counts. Models that do not converge under the arbitrary daemon have no
// worst-case distance table; for those the suite pins the escape
// objective and the recovery objective's refusal.
package saboteur_test

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"nonmask/internal/gcl"
	"nonmask/internal/saboteur"
	"nonmask/internal/verify"
)

func gclModels(t *testing.T) map[string]*gcl.Module {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.gcl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no testdata/*.gcl models found")
	}
	models := make(map[string]*gcl.Module, len(paths))
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		file, err := gcl.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: parse: %v", path, err)
		}
		m, err := gcl.Compile(file)
		if err != nil {
			t.Fatalf("%s: compile: %v", path, err)
		}
		models[filepath.Base(path)] = m
	}
	return models
}

func TestWitnessReplayMetamorphic(t *testing.T) {
	ctx := context.Background()
	for name, m := range gclModels(t) {
		t.Run(name, func(t *testing.T) {
			if count, ok := m.Program.Schema.StateCount(); !ok || count > verify.DefaultMaxStates {
				t.Skipf("not enumerable (%d states)", count)
			}
			var golden []byte
			for _, workers := range []int{1, 2, runtime.NumCPU()} {
				sp, err := verify.NewSpaceContext(ctx, m.Program, m.S, m.T, verify.Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				_, converges, err := sp.WorstDistancesContext(ctx)
				if err != nil {
					t.Fatal(err)
				}

				res, err := saboteur.Search(ctx, sp, saboteur.Options{K: 2})
				if !converges {
					if err == nil {
						t.Fatal("recovery objective must refuse a non-convergent model")
					}
					res, err = saboteur.Search(ctx, sp, saboteur.Options{K: 2, Objective: saboteur.ObjectiveEscape})
				}
				if err != nil {
					t.Fatal(err)
				}
				if !res.Optimal {
					t.Fatalf("workers=%d: default budget did not prove optimality", workers)
				}

				if res.Witness != nil {
					rp, err := res.Witness.Replay(m.Program, m.S, m.T)
					if err != nil {
						t.Fatalf("workers=%d: program-level replay: %v", workers, err)
					}
					rs, err := res.Witness.ReplaySpace(ctx, sp)
					if err != nil {
						t.Fatalf("workers=%d: space replay: %v", workers, err)
					}
					if rp.Cost != res.Cost || rs.Cost != res.Cost {
						t.Fatalf("workers=%d: replayed costs (program %d, space %d) != claimed %d",
							workers, rp.Cost, rs.Cost, res.Cost)
					}
				}

				enc := []byte("no witness")
				if res.Witness != nil {
					if enc, err = res.Witness.Encode(); err != nil {
						t.Fatal(err)
					}
				}
				if golden == nil {
					golden = enc
					t.Logf("workers=%d: objective %s cost %d (witness %d attack + %d recovery steps)",
						workers, res.Objective, res.Cost, len(witnessSteps(res)), len(witnessRecovery(res)))
				} else if string(golden) != string(enc) {
					t.Fatalf("workers=%d: witness differs from the single-worker run:\n%s\nvs\n%s",
						workers, golden, enc)
				}
			}
		})
	}
}

func witnessSteps(r *saboteur.Result) []saboteur.Step {
	if r.Witness == nil {
		return nil
	}
	return r.Witness.Steps
}

func witnessRecovery(r *saboteur.Result) []saboteur.Step {
	if r.Witness == nil {
		return nil
	}
	return r.Witness.Recovery
}
