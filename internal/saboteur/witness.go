package saboteur

import (
	"context"
	"encoding/json"
	"fmt"

	"nonmask/internal/program"
	"nonmask/internal/protocols/registry"
	"nonmask/internal/verify"
)

// WitnessVersion is the wire version of the witness schedule format.
const WitnessVersion = 1

// Witness is the replayable form of a synthesized schedule: the seed
// state, the attack interleaving of fault and program steps, and (for the
// recovery objective) the worst-case recovery the daemon then forces.
// Each step records the full valuation it produces, so replay verifies
// the schedule transition by transition rather than trusting the engine.
type Witness struct {
	// Version is WitnessVersion.
	Version int `json:"version"`
	// Program names the program the schedule was synthesized on.
	Program string `json:"program"`
	// Protocol and Params identify the registry instance when the program
	// came from the catalog, letting cssim -replay rebuild it. Empty for
	// GCL-sourced programs.
	Protocol string           `json:"protocol,omitempty"`
	Params   *registry.Params `json:"params,omitempty"`
	// Objective, K and Cost echo the search result the witness backs.
	Objective string `json:"objective"`
	K         int    `json:"k"`
	Cost      int    `json:"cost"`
	// Vars is the schema's variable names in declaration order; Start and
	// every Step.After are valuations in that order.
	Vars  []string `json:"vars"`
	Start []int32  `json:"start"`
	// Steps is the attack: fault steps (spending the budget) interleaved
	// with program steps (daemon moves steering between faults). For the
	// escape objective the final step is the one leaving the span.
	Steps []Step `json:"steps"`
	// Recovery is the worst-case daemon's descent after the attack
	// (recovery objective only), exactly Cost steps ending in S.
	Recovery []Step `json:"recovery,omitempty"`
}

// Step is one scheduled transition.
type Step struct {
	// Kind is "fault" or "program".
	Kind string `json:"kind"`
	// Action is the action name, resolved on replay against the program's
	// actions (program steps) or its fault alphabet (fault steps).
	Action string `json:"action"`
	// After is the valuation the step produces.
	After []int32 `json:"after"`
}

// step builds the wire form of applying a at the resulting state st.
func step(a *program.Action, st *program.State) Step {
	kind := "program"
	if a.Kind == program.Fault {
		kind = "fault"
	}
	return Step{Kind: kind, Action: a.Name, After: st.Values()}
}

// Encode renders the witness as indented JSON, the format cssim -replay
// and csverify -witness-out exchange.
func (w *Witness) Encode() ([]byte, error) {
	return json.MarshalIndent(w, "", "  ")
}

// DecodeWitness parses an encoded witness, rejecting unknown versions.
func DecodeWitness(data []byte) (*Witness, error) {
	var w Witness
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("saboteur: bad witness: %w", err)
	}
	if w.Version != WitnessVersion {
		return nil, fmt.Errorf("saboteur: witness version %d not supported (want %d)", w.Version, WitnessVersion)
	}
	return &w, nil
}

// Replayed reports what a replay reproduced.
type Replayed struct {
	// Peak is the state after the attack steps (before recovery).
	Peak *program.State
	// Cost is the independently recomputed objective value: recovery
	// steps replayed, or faults spent escaping.
	Cost int
	// Escaped reports the final attack step left the span.
	Escaped bool
}

// actionTable resolves step references: program steps against the
// program's non-fault actions, fault steps against the alphabet.
type actionTable struct {
	prog, flt map[string]*program.Action
}

func tableFor(p *program.Program, alphabet []*program.Action) actionTable {
	t := actionTable{
		prog: make(map[string]*program.Action, len(p.Actions)),
		flt:  make(map[string]*program.Action, len(alphabet)),
	}
	for _, a := range p.Actions {
		if a.Kind != program.Fault {
			t.prog[a.Name] = a
		}
	}
	for _, a := range alphabet {
		t.flt[a.Name] = a
	}
	return t
}

func (t actionTable) resolve(s Step) (*program.Action, error) {
	var a *program.Action
	switch s.Kind {
	case "fault":
		a = t.flt[s.Action]
	case "program":
		a = t.prog[s.Action]
	default:
		return nil, fmt.Errorf("saboteur: witness step has unknown kind %q", s.Kind)
	}
	if a == nil {
		return nil, fmt.Errorf("saboteur: witness references unknown %s action %q", s.Kind, s.Action)
	}
	return a, nil
}

func valuesEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (w *Witness) checkSchema(p *program.Program) error {
	if w.Version != WitnessVersion {
		return fmt.Errorf("saboteur: witness version %d not supported (want %d)", w.Version, WitnessVersion)
	}
	names := p.Schema.Names()
	if len(names) != len(w.Vars) {
		return fmt.Errorf("saboteur: witness has %d vars, program %q has %d", len(w.Vars), p.Name, len(names))
	}
	for i, n := range names {
		if w.Vars[i] != n {
			return fmt.Errorf("saboteur: witness var %d is %q, program declares %q", i, w.Vars[i], n)
		}
	}
	return nil
}

// Replay executes the witness at program level — no enumerated space
// needed — verifying every transition: each step's action must exist and
// be enabled, produce exactly the recorded valuation, keep the attack
// inside T (recovery objective), spend at most K fault steps, and end
// with a recovery that leaves S only behind it (recovery objective,
// exactly Cost steps) or a final state outside T (escape objective,
// Cost fault steps). Nil S or T mean the constant-true predicate.
func (w *Witness) Replay(p *program.Program, S, T *program.Predicate) (*Replayed, error) {
	if err := w.checkSchema(p); err != nil {
		return nil, err
	}
	if T == nil {
		T = program.True()
	}
	tab := tableFor(p, Alphabet(p))

	st := p.Schema.NewState()
	if err := st.SetValues(w.Start); err != nil {
		return nil, fmt.Errorf("saboteur: bad witness start: %w", err)
	}
	if S != nil && !S.Holds(st) {
		return nil, fmt.Errorf("saboteur: witness does not start in the invariant: %s", st)
	}
	faults := 0
	for n, s := range w.Steps {
		a, err := tab.resolve(s)
		if err != nil {
			return nil, fmt.Errorf("saboteur: attack step %d: %w", n, err)
		}
		if !a.Guard(st) {
			return nil, fmt.Errorf("saboteur: attack step %d: %q is disabled at %s", n, a.Name, st)
		}
		st = a.Apply(st)
		if !valuesEqual(st.Values(), s.After) {
			return nil, fmt.Errorf("saboteur: attack step %d: %q produced %s, witness claims %v", n, a.Name, st, s.After)
		}
		if s.Kind == "fault" {
			faults++
		}
		inT := T.Holds(st)
		if w.Objective == ObjectiveEscape && n == len(w.Steps)-1 {
			if inT {
				return nil, fmt.Errorf("saboteur: escape witness ends inside the span at %s", st)
			}
		} else if !inT {
			return nil, fmt.Errorf("saboteur: attack step %d leaves the span at %s", n, st)
		}
	}
	if faults > w.K {
		return nil, fmt.Errorf("saboteur: witness spends %d faults, budget is %d", faults, w.K)
	}
	rep := &Replayed{Peak: st.Clone()}

	if w.Objective == ObjectiveEscape {
		if len(w.Recovery) != 0 {
			return nil, fmt.Errorf("saboteur: escape witness carries %d recovery steps", len(w.Recovery))
		}
		if faults != w.Cost {
			return nil, fmt.Errorf("saboteur: escape witness spends %d faults, claims cost %d", faults, w.Cost)
		}
		rep.Cost = faults
		rep.Escaped = true
		return rep, nil
	}

	for n, s := range w.Recovery {
		if S != nil && S.Holds(st) {
			return nil, fmt.Errorf("saboteur: recovery reaches the invariant after %d steps, witness claims %d", n, len(w.Recovery))
		}
		a, err := tab.resolve(s)
		if err != nil {
			return nil, fmt.Errorf("saboteur: recovery step %d: %w", n, err)
		}
		if !a.Guard(st) {
			return nil, fmt.Errorf("saboteur: recovery step %d: %q is disabled at %s", n, a.Name, st)
		}
		st = a.Apply(st)
		if !valuesEqual(st.Values(), s.After) {
			return nil, fmt.Errorf("saboteur: recovery step %d: %q produced %s, witness claims %v", n, a.Name, st, s.After)
		}
	}
	if S != nil && !S.Holds(st) {
		return nil, fmt.Errorf("saboteur: recovery ends outside the invariant at %s", st)
	}
	if len(w.Recovery) != w.Cost {
		return nil, fmt.Errorf("saboteur: witness replays %d recovery steps, claims cost %d", len(w.Recovery), w.Cost)
	}
	rep.Cost = len(w.Recovery)
	return rep, nil
}

// ReplaySpace replays the witness through an enumerated space's own
// transition graph: every program step must be an actual edge of the CSR
// index (schedule-constrained successor iteration), every intermediate
// state a member of the space's bitsets, and — for the recovery objective
// — the space's worst-case distance table must score the peak at exactly
// the claimed cost, bit for bit. This is the strongest check: the replay
// consults the same structures the verifier's verdicts are made of.
func (w *Witness) ReplaySpace(ctx context.Context, sp *verify.Space) (*Replayed, error) {
	if err := w.checkSchema(sp.P); err != nil {
		return nil, err
	}
	tab := tableFor(sp.P, Alphabet(sp.P))
	ownFaults := len(sp.P.OfKind(program.Fault)) > 0
	cur := sp.NewSuccCursor()

	st := sp.P.Schema.NewState()
	if err := st.SetValues(w.Start); err != nil {
		return nil, fmt.Errorf("saboteur: bad witness start: %w", err)
	}
	i := sp.P.Schema.Index(st)
	if !sp.InS(i) {
		return nil, fmt.Errorf("saboteur: witness does not start in the invariant: %s", st)
	}

	// stepTo takes one witness step from state index i, program steps
	// strictly along graph edges.
	stepTo := func(i int64, s Step, what string, n int) (int64, error) {
		a, err := tab.resolve(s)
		if err != nil {
			return 0, fmt.Errorf("saboteur: %s step %d: %w", what, n, err)
		}
		j := int64(-1)
		if s.Kind == "fault" && !ownFaults {
			// Injected faults are not edges of a fault-free program's
			// graph; apply the alphabet action directly. (Programs that
			// declare their own fault actions carry them as graph edges
			// and take the edge-matching path below.)
			from := sp.State(i)
			if !a.Guard(from) {
				return 0, fmt.Errorf("saboteur: %s step %d: %q is disabled at %s", what, n, a.Name, from)
			}
			j = sp.P.Schema.Index(a.Apply(from))
		} else {
			cur.ForEach(i, func(b *program.Action, to int64) bool {
				if b.Name == a.Name {
					j = to
					return false
				}
				return true
			})
			if j < 0 {
				return 0, fmt.Errorf("saboteur: %s step %d: %q is not an enabled edge of state %s", what, n, a.Name, sp.State(i))
			}
		}
		if !valuesEqual(sp.State(j).Values(), s.After) {
			return 0, fmt.Errorf("saboteur: %s step %d: %q reaches %s, witness claims %v", what, n, a.Name, sp.State(j), s.After)
		}
		return j, nil
	}

	faults := 0
	for n, s := range w.Steps {
		j, err := stepTo(i, s, "attack", n)
		if err != nil {
			return nil, err
		}
		if s.Kind == "fault" {
			faults++
		}
		if w.Objective == ObjectiveEscape && n == len(w.Steps)-1 {
			if sp.InT(j) {
				return nil, fmt.Errorf("saboteur: escape witness ends inside the span at %s", sp.State(j))
			}
		} else if !sp.InT(j) {
			return nil, fmt.Errorf("saboteur: attack step %d leaves the span at %s", n, sp.State(j))
		}
		i = j
	}
	if faults > w.K {
		return nil, fmt.Errorf("saboteur: witness spends %d faults, budget is %d", faults, w.K)
	}
	rep := &Replayed{Peak: sp.State(i)}

	if w.Objective == ObjectiveEscape {
		if faults != w.Cost {
			return nil, fmt.Errorf("saboteur: escape witness spends %d faults, claims cost %d", faults, w.Cost)
		}
		rep.Cost = faults
		rep.Escaped = true
		return rep, nil
	}

	worst, ok, err := sp.WorstDistancesContext(ctx)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("saboteur: space has no worst-case distance table to score the witness against")
	}
	if int(worst[i]) != w.Cost {
		return nil, fmt.Errorf("saboteur: worst table scores the peak at %d, witness claims %d", worst[i], w.Cost)
	}
	for n, s := range w.Recovery {
		if sp.InS(i) {
			return nil, fmt.Errorf("saboteur: recovery reaches the invariant after %d steps, witness claims %d", n, len(w.Recovery))
		}
		j, err := stepTo(i, s, "recovery", n)
		if err != nil {
			return nil, err
		}
		i = j
	}
	if !sp.InS(i) {
		return nil, fmt.Errorf("saboteur: recovery ends outside the invariant at %s", sp.State(i))
	}
	if len(w.Recovery) != w.Cost {
		return nil, fmt.Errorf("saboteur: witness replays %d recovery steps, claims cost %d", len(w.Recovery), w.Cost)
	}
	rep.Cost = len(w.Recovery)
	return rep, nil
}
