package service_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"nonmask/internal/obs"
	"nonmask/internal/protocols/registry"
	"nonmask/internal/service"
	"nonmask/internal/service/client"
)

// TestClientWatchJob drives the typed watcher end to end: submit, watch,
// and read the replayed lifecycle through the terminal event.
func TestClientWatchJob(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()
	st, err := c.Run(ctx, service.JobSpec{Protocol: "tokenring-ring", Params: registry.Params{N: 3, K: 5}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.WatchJob(ctx, st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var types []string
	for {
		ev, done, err := w.Next()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		types = append(types, string(ev.Type))
	}
	joined := strings.Join(types, " ")
	if !strings.HasPrefix(joined, "job job") { // queued, running
		t.Errorf("stream begins %q, want two job lifecycle events", joined)
	}
	if types[len(types)-1] != "job" {
		t.Errorf("stream ends with %q, want the terminal job event", types[len(types)-1])
	}
	if !strings.Contains(joined, "pass_start") || !strings.Contains(joined, "pass_end") {
		t.Errorf("stream carries no pass spans: %q", joined)
	}
}

// TestClientWatchUnknownJob maps the 404 to a typed APIError.
func TestClientWatchUnknownJob(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	_, err := c.WatchJob(context.Background(), "nope", 0)
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.Code != 404 {
		t.Fatalf("err = %v, want APIError 404", err)
	}
}

// TestClientTailJob covers the CLI helper: it renders event lines,
// collects pass spans, and reports the terminal state.
func TestClientTailJob(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()
	st, err := c.Run(ctx, service.JobSpec{Protocol: "tokenring-ring", Params: registry.Params{N: 3, K: 5}})
	if err != nil {
		t.Fatal(err)
	}
	var lines strings.Builder
	state, detail, stats, err := c.TailJob(ctx, st.ID, 0, &lines)
	if err != nil {
		t.Fatal(err)
	}
	if state != service.StateDone {
		t.Errorf("terminal state %s, want done", state)
	}
	if detail != service.VerdictSatisfied {
		t.Errorf("terminal detail %q, want the verdict", detail)
	}
	if len(stats) == 0 {
		t.Error("no pass spans collected")
	}
	if !strings.Contains(lines.String(), "pass ") || !strings.Contains(lines.String(), "job ") {
		t.Errorf("rendered lines missing pass/job output:\n%s", lines.String())
	}
	// The collected spans feed the same table -trace prints locally.
	if table := obs.FormatTable(stats); !strings.Contains(table, "pass") {
		t.Errorf("span table unrenderable:\n%s", table)
	}
}

// TestClientWatchBatch tails an aggregated batch stream to its terminal
// event.
func TestClientWatchBatch(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()
	bst, err := c.SubmitBatch(ctx, service.BatchSpec{Sweep: &service.SweepSpec{
		Protocol: "tokenring-ring",
		Params:   registry.Params{N: 3},
		Ranges:   map[string]service.RangeSpec{"k": {From: 4, To: 6}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitBatch(ctx, bst.ID); err != nil {
		t.Fatal(err)
	}
	w, err := c.WatchBatch(ctx, bst.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	members := 0
	var last obs.Event
	for {
		ev, done, err := w.Next()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		if ev.Type == obs.EventBatchMember {
			members++
		}
		last = ev
	}
	if members != 3 {
		t.Errorf("saw %d member completions, want 3", members)
	}
	if last.Type != obs.EventBatch || last.State != string(service.BatchDone) {
		t.Errorf("stream ended on %s/%s, want batch/done", last.Type, last.State)
	}
}

// TestClientWatchEvents reads the firehose with a type filter and
// cancels out (the firehose has no terminal event).
func TestClientWatchEvents(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()
	if _, err := c.Run(ctx, service.JobSpec{Protocol: "tokenring-ring", Params: registry.Params{N: 3, K: 5}}); err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	w, err := c.WatchEvents(wctx, 0, obs.EventJob)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for seen := 0; seen < 3; seen++ {
		ev, done, err := w.Next()
		if err != nil || done {
			t.Fatalf("firehose ended early (done=%v err=%v) after %d events", done, err, seen)
		}
		if ev.Type != obs.EventJob {
			t.Fatalf("filter leaked a %s event", ev.Type)
		}
	}
}

// TestClientVersion exercises GET /v1/version through the typed client.
func TestClientVersion(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	bi, err := c.Version(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if bi.Module == "" || !strings.HasPrefix(bi.GoVersion, "go") {
		t.Errorf("build info %+v incomplete", bi)
	}
}
