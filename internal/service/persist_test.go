package service

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"nonmask/internal/store"
)

// openStoreT opens a verdict store with per-put syncing so tests never
// race the flusher.
func openStoreT(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	// First server lifetime: run one check, write it through to the store.
	st := openStoreT(t, dir)
	s := New(Config{Store: st})
	j, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	if done := waitTerminal(t, s, j.ID); done.State != StateDone {
		t.Fatalf("job ended %s (err %q)", done.State, done.Error)
	}
	if got := s.metrics.StorePuts.Load(); got != 1 {
		t.Fatalf("store puts = %d, want 1", got)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh store handle over the same directory, fresh server
	// with an empty memory cache. The recovery scan must find the verdict
	// and the resubmission must be served without a fresh check.
	st2 := openStoreT(t, dir)
	defer st2.Close()
	if got := st2.Stats().RecoveredRecords; got < 1 {
		t.Fatalf("recovered records = %d, want >= 1", got)
	}
	s2 := New(Config{Store: st2})
	defer s2.Shutdown(context.Background())
	hit, err := s2.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.State != StateDone || hit.Result == nil {
		t.Fatalf("restarted server missed the store: %+v", hit)
	}
	if hit.Result.Verdict != VerdictSatisfied || !hit.Result.Cached {
		t.Fatalf("stored verdict mangled: %+v", hit.Result)
	}
	if got := s2.metrics.Completed.Load(); got != 0 {
		t.Fatalf("completed = %d after restart, want 0 (store hit must not re-run the check)", got)
	}
	if got := s2.metrics.StoreHits.Load(); got != 1 {
		t.Fatalf("store hits = %d, want 1", got)
	}

	// The store hit promoted the verdict into the memory tier: the next
	// lookup must not touch the backend again.
	again, err := s2.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("promoted entry missed the memory tier")
	}
	if got := s2.metrics.StoreHits.Load(); got != 1 {
		t.Fatalf("store hits = %d after promotion, want still 1", got)
	}
}

func TestStoreMetricsExposed(t *testing.T) {
	dir := t.TempDir()
	st := openStoreT(t, dir)
	defer st.Close()
	s := New(Config{Store: st})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, j.ID)

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"csserved_store_keys 1",
		"csserved_store_appends_total 1",
		"csserved_store_puts_total 1",
		"csserved_store_recovered_records_total 0",
		"csserved_store_skipped_corrupt_records_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestNoStoreConfiguredStaysMemoryOnly(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	j, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, j.ID)
	if got := s.metrics.StorePuts.Load(); got != 0 {
		t.Fatalf("store puts = %d without a store, want 0", got)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if strings.Contains(rec.Body.String(), "csserved_store_keys") {
		t.Fatal("store gauges rendered without a configured store")
	}
}
