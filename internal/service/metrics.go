package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"nonmask/internal/metrics"
	"nonmask/internal/obs"
	"nonmask/internal/verify"
)

// maxLatencySamples bounds the retained check-latency sample window the
// /metrics quantiles are computed over.
const maxLatencySamples = 4096

// passBuckets are the upper bounds (seconds) of the per-pass latency
// histograms — exponential-ish from half a millisecond to a minute, the
// plausible span between a cached three-node ring and a 60s-deadline
// multi-million-state check.
var passBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// queueWaitBuckets are the upper bounds (seconds) of the admit→run
// latency histogram: sub-millisecond pickup on an idle server up to a
// minute of queueing behind a saturated executor pool.
var queueWaitBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// passHist is one pass's cumulative latency histogram plus the totals
// backing its states/sec gauge and the index-size counters. Guarded by
// Metrics.passMu.
type passHist struct {
	buckets []int64 // observation counts per passBuckets bound
	count   int64
	sum     float64 // seconds
	states  int64
	edges   int64 // enabled transitions measured by index-building passes
	bytes   int64 // bytes materialized by index-building passes
}

func (h *passHist) observe(seconds float64, states, edges, bytes int64) {
	for i, le := range passBuckets {
		if seconds <= le {
			h.buckets[i]++
		}
	}
	h.count++
	h.sum += seconds
	h.states += states
	h.edges += edges
	h.bytes += bytes
}

// Metrics holds the service's counters and gauges. All fields are updated
// atomically; the latency sample window has its own lock. Rendered as
// Prometheus text exposition format by WritePrometheus.
type Metrics struct {
	// Submitted counts accepted job submissions (including cache hits).
	Submitted atomic.Int64
	// Rejected counts submissions turned away with 429 (queue full) or
	// 503 (draining).
	Rejected atomic.Int64
	// Completed counts jobs whose verify.Check run finished successfully.
	Completed atomic.Int64
	// Failed counts jobs whose check returned an error (including
	// deadline expiry).
	Failed atomic.Int64
	// Canceled counts jobs canceled before or during execution.
	Canceled atomic.Int64
	// CacheHits / CacheMisses count content-addressed cache lookups at
	// submission time.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// Coalesced counts submissions that attached to an identical in-flight
	// job (single-flight) instead of enqueueing their own check.
	Coalesced atomic.Int64
	// StoreHits counts cache hits served by the persistent backend (a
	// subset of CacheHits: the memory tier missed, the log had it).
	StoreHits atomic.Int64
	// StorePuts counts verdicts written through to the persistent backend.
	StorePuts atomic.Int64
	// StoreErrors counts failed persistent reads/writes (the verdict still
	// lands in memory; durability is degraded, correctness is not).
	StoreErrors atomic.Int64
	// BatchesSubmitted / BatchesCompleted / BatchesCanceled count batch
	// lifecycles; BatchJobs counts member jobs admitted through batches.
	BatchesSubmitted atomic.Int64
	BatchesCompleted atomic.Int64
	BatchesCanceled  atomic.Int64
	BatchJobs        atomic.Int64
	// BatchesInFlight is the number of batches not yet terminal.
	BatchesInFlight atomic.Int64
	// QueueDepth is the number of jobs waiting in the queue.
	QueueDepth atomic.Int64
	// InFlight is the number of executor goroutines currently inside
	// verify.Check.
	InFlight atomic.Int64
	// Satisfied / Violated count completed jobs by verdict.
	Satisfied atomic.Int64
	Violated  atomic.Int64
	// SaboteurJobs counts completed jobs that ran the adversarial
	// fault-schedule search; SaboteurOptimal counts those that proved
	// k-bounded optimality, SaboteurBudgetExhausted those that returned
	// the incumbent after the expansion budget ran out, and
	// SaboteurExpanded totals product-graph node expansions.
	SaboteurJobs            atomic.Int64
	SaboteurOptimal         atomic.Int64
	SaboteurBudgetExhausted atomic.Int64
	SaboteurExpanded        atomic.Int64
	// SpilledBytes totals bytes the checker's disk tier wrote (mmap'd CSR
	// segments plus frontier spool runs), summed over every completed
	// job's pass spans.
	SpilledBytes atomic.Int64
	// AuthFailures counts requests rejected with 401 (bad or missing
	// bearer token, or a replication call without the cluster token).
	AuthFailures atomic.Int64
	// RateLimited counts submissions bounced by a tenant's token bucket;
	// QuotaRejected counts those bounced by an in-flight quota. Both are
	// subsets of Rejected.
	RateLimited   atomic.Int64
	QuotaRejected atomic.Int64
	// HighPriority counts jobs admitted to the high-priority queue.
	HighPriority atomic.Int64
	// Forwarded counts submissions shipped to their owner node (direct
	// forwards plus batch shadow members); ForwardFallbacks counts
	// forwards that failed in transport and ran locally instead.
	Forwarded        atomic.Int64
	ForwardFallbacks atomic.Int64
	// Proxied counts id-addressed requests reverse-proxied to the node
	// named in the id prefix.
	Proxied atomic.Int64

	mu        sync.Mutex
	latencies []float64 // seconds, newest-last, bounded window

	passMu sync.Mutex
	passes map[string]*passHist // by pass name

	// queueMu guards the admit→run wait histogram (queueWaitBuckets).
	queueMu          sync.Mutex
	queueWaitBuckets []int64
	queueWaitCount   int64
	queueWaitSum     float64 // seconds
}

// ObserveLatency records one check duration (in seconds).
func (m *Metrics) ObserveLatency(seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.latencies) >= maxLatencySamples {
		copy(m.latencies, m.latencies[1:])
		m.latencies = m.latencies[:len(m.latencies)-1]
	}
	m.latencies = append(m.latencies, seconds)
}

// ObservePass records one completed verifier pass span into the per-pass
// latency histogram and throughput totals.
func (m *Metrics) ObservePass(stat obs.PassStat) {
	m.passMu.Lock()
	defer m.passMu.Unlock()
	if m.passes == nil {
		m.passes = make(map[string]*passHist)
	}
	h, ok := m.passes[stat.Pass]
	if !ok {
		h = &passHist{buckets: make([]int64, len(passBuckets))}
		m.passes[stat.Pass] = h
	}
	h.observe(stat.ElapsedMS/1000, stat.States, stat.Edges, stat.Bytes)
	// Only the per-check "spill" summary span counts toward the spill
	// total: the index-building spans carry their own segment bytes, which
	// the summary already includes — adding both would double-count.
	if stat.Pass == verify.PassSpill && stat.SpilledBytes > 0 {
		m.SpilledBytes.Add(stat.SpilledBytes)
	}
}

// ObserveQueueWait records one job's admit→run latency (in seconds): the
// time between queue admission and executor pickup.
func (m *Metrics) ObserveQueueWait(seconds float64) {
	m.queueMu.Lock()
	defer m.queueMu.Unlock()
	if m.queueWaitBuckets == nil {
		m.queueWaitBuckets = make([]int64, len(queueWaitBuckets))
	}
	for i, le := range queueWaitBuckets {
		if seconds <= le {
			m.queueWaitBuckets[i]++
		}
	}
	m.queueWaitCount++
	m.queueWaitSum += seconds
}

// LatencySummary returns order statistics over the retained check-latency
// window (seconds).
func (m *Metrics) LatencySummary() metrics.Summary {
	m.mu.Lock()
	sample := make([]float64, len(m.latencies))
	copy(sample, m.latencies)
	m.mu.Unlock()
	return metrics.Summarize(sample)
}

// WritePrometheus renders every counter and gauge in Prometheus text
// exposition format under the csserved_ prefix.
func (m *Metrics) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("csserved_jobs_submitted_total", "Accepted job submissions (including cache hits).", m.Submitted.Load())
	counter("csserved_jobs_rejected_total", "Submissions rejected by admission control.", m.Rejected.Load())
	counter("csserved_jobs_completed_total", "Jobs whose check ran to completion.", m.Completed.Load())
	counter("csserved_jobs_failed_total", "Jobs whose check returned an error.", m.Failed.Load())
	counter("csserved_jobs_canceled_total", "Jobs canceled before or during execution.", m.Canceled.Load())
	counter("csserved_cache_hits_total", "Content-addressed cache hits at submission.", m.CacheHits.Load())
	counter("csserved_cache_misses_total", "Content-addressed cache misses at submission.", m.CacheMisses.Load())
	counter("csserved_jobs_coalesced_total", "Submissions coalesced onto an identical in-flight job.", m.Coalesced.Load())
	counter("csserved_store_hits_total", "Cache hits served by the persistent store backend.", m.StoreHits.Load())
	counter("csserved_store_puts_total", "Verdicts written through to the persistent store backend.", m.StorePuts.Load())
	counter("csserved_store_errors_total", "Failed persistent store reads/writes.", m.StoreErrors.Load())
	counter("csserved_batches_submitted_total", "Accepted batch submissions.", m.BatchesSubmitted.Load())
	counter("csserved_batches_completed_total", "Batches that ran every member to a terminal state.", m.BatchesCompleted.Load())
	counter("csserved_batches_canceled_total", "Batches canceled before completion.", m.BatchesCanceled.Load())
	counter("csserved_batch_jobs_total", "Member jobs admitted through batches.", m.BatchJobs.Load())
	counter("csserved_verdict_satisfied_total", "Completed checks with a satisfied verdict.", m.Satisfied.Load())
	counter("csserved_verdict_violated_total", "Completed checks with a violated verdict.", m.Violated.Load())
	counter("csserved_saboteur_jobs_total", "Completed jobs that ran the saboteur search.", m.SaboteurJobs.Load())
	counter("csserved_saboteur_optimal_total", "Saboteur searches that proved k-bounded optimality.", m.SaboteurOptimal.Load())
	counter("csserved_saboteur_budget_exhausted_total", "Saboteur searches cut off by the expansion budget.", m.SaboteurBudgetExhausted.Load())
	counter("csserved_saboteur_expanded_nodes_total", "Product-graph nodes expanded by saboteur searches.", m.SaboteurExpanded.Load())
	counter("csserved_spill_bytes_total", "Bytes written by the checker's disk tier (CSR segments plus frontier spool runs).", m.SpilledBytes.Load())
	counter("csserved_auth_failures_total", "Requests rejected for a bad or missing bearer token.", m.AuthFailures.Load())
	counter("csserved_rate_limited_total", "Submissions bounced by a tenant's token-bucket rate limit.", m.RateLimited.Load())
	counter("csserved_quota_rejected_total", "Submissions bounced by a tenant's in-flight quota.", m.QuotaRejected.Load())
	counter("csserved_high_priority_jobs_total", "Jobs admitted to the high-priority queue.", m.HighPriority.Load())
	counter("csserved_forwarded_jobs_total", "Submissions forwarded to their owner node.", m.Forwarded.Load())
	counter("csserved_forward_fallbacks_total", "Forwards that failed in transport and ran locally instead.", m.ForwardFallbacks.Load())
	counter("csserved_proxied_requests_total", "Id-addressed requests reverse-proxied to the owning node.", m.Proxied.Load())
	gauge("csserved_queue_depth", "Jobs waiting in the queue.", m.QueueDepth.Load())
	gauge("csserved_inflight_workers", "Executors currently running a check.", m.InFlight.Load())
	gauge("csserved_batches_inflight", "Batches not yet terminal.", m.BatchesInFlight.Load())

	s := m.LatencySummary()
	fmt.Fprintf(w, "# HELP csserved_check_latency_seconds Check latency over the last %d checks.\n", maxLatencySamples)
	fmt.Fprintf(w, "# TYPE csserved_check_latency_seconds summary\n")
	fmt.Fprintf(w, "csserved_check_latency_seconds{quantile=\"0.5\"} %g\n", s.Median)
	fmt.Fprintf(w, "csserved_check_latency_seconds{quantile=\"0.95\"} %g\n", s.P95)
	fmt.Fprintf(w, "csserved_check_latency_seconds{quantile=\"0.99\"} %g\n", s.P99)
	fmt.Fprintf(w, "csserved_check_latency_seconds_sum %g\n", s.Mean*float64(s.N))
	fmt.Fprintf(w, "csserved_check_latency_seconds_count %d\n", s.N)

	m.writeQueueWait(w)
	m.writePassMetrics(w)
}

// writeQueueWait renders the admit→run latency histogram. Emitted even
// before the first observation, so dashboards can key off its presence.
func (m *Metrics) writeQueueWait(w io.Writer) {
	m.queueMu.Lock()
	defer m.queueMu.Unlock()
	fmt.Fprintf(w, "# HELP csserved_job_queue_wait_seconds Time jobs spent queued between admission and executor pickup.\n")
	fmt.Fprintf(w, "# TYPE csserved_job_queue_wait_seconds histogram\n")
	for i, le := range queueWaitBuckets {
		var v int64
		if m.queueWaitBuckets != nil {
			// observe() increments every bucket at or above the value, so
			// the stored counts are already cumulative as "le" expects.
			v = m.queueWaitBuckets[i]
		}
		fmt.Fprintf(w, "csserved_job_queue_wait_seconds_bucket{le=\"%g\"} %d\n", le, v)
	}
	fmt.Fprintf(w, "csserved_job_queue_wait_seconds_bucket{le=\"+Inf\"} %d\n", m.queueWaitCount)
	fmt.Fprintf(w, "csserved_job_queue_wait_seconds_sum %g\n", m.queueWaitSum)
	fmt.Fprintf(w, "csserved_job_queue_wait_seconds_count %d\n", m.queueWaitCount)
}

// writePassMetrics renders the per-pass latency histograms and
// throughput gauges, pass names sorted for deterministic scrapes.
func (m *Metrics) writePassMetrics(w io.Writer) {
	m.passMu.Lock()
	defer m.passMu.Unlock()
	if len(m.passes) == 0 {
		return
	}
	names := make([]string, 0, len(m.passes))
	for name := range m.passes {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "# HELP csserved_pass_latency_seconds Verifier pass latency by pass name.\n")
	fmt.Fprintf(w, "# TYPE csserved_pass_latency_seconds histogram\n")
	for _, name := range names {
		h := m.passes[name]
		// observe() increments every bucket at or above the value, so the
		// stored counts are already cumulative as Prometheus "le" expects.
		for i, le := range passBuckets {
			fmt.Fprintf(w, "csserved_pass_latency_seconds_bucket{pass=%q,le=\"%g\"} %d\n", name, le, h.buckets[i])
		}
		fmt.Fprintf(w, "csserved_pass_latency_seconds_bucket{pass=%q,le=\"+Inf\"} %d\n", name, h.count)
		fmt.Fprintf(w, "csserved_pass_latency_seconds_sum{pass=%q} %g\n", name, h.sum)
		fmt.Fprintf(w, "csserved_pass_latency_seconds_count{pass=%q} %d\n", name, h.count)
	}

	fmt.Fprintf(w, "# HELP csserved_pass_states_total States processed by pass name.\n")
	fmt.Fprintf(w, "# TYPE csserved_pass_states_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "csserved_pass_states_total{pass=%q} %d\n", name, m.passes[name].states)
	}

	fmt.Fprintf(w, "# HELP csserved_pass_edges_total Enabled transitions measured by index-building passes, by pass name.\n")
	fmt.Fprintf(w, "# TYPE csserved_pass_edges_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "csserved_pass_edges_total{pass=%q} %d\n", name, m.passes[name].edges)
	}

	fmt.Fprintf(w, "# HELP csserved_pass_bytes_total Bytes materialized by index-building passes, by pass name.\n")
	fmt.Fprintf(w, "# TYPE csserved_pass_bytes_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "csserved_pass_bytes_total{pass=%q} %d\n", name, m.passes[name].bytes)
	}

	fmt.Fprintf(w, "# HELP csserved_pass_states_per_second Cumulative pass throughput (states / pass-seconds).\n")
	fmt.Fprintf(w, "# TYPE csserved_pass_states_per_second gauge\n")
	for _, name := range names {
		h := m.passes[name]
		rate := 0.0
		if h.sum > 0 {
			rate = float64(h.states) / h.sum
		}
		fmt.Fprintf(w, "csserved_pass_states_per_second{pass=%q} %g\n", name, rate)
	}
}
