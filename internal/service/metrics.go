package service

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"nonmask/internal/metrics"
)

// maxLatencySamples bounds the retained check-latency sample window the
// /metrics quantiles are computed over.
const maxLatencySamples = 4096

// Metrics holds the service's counters and gauges. All fields are updated
// atomically; the latency sample window has its own lock. Rendered as
// Prometheus text exposition format by WritePrometheus.
type Metrics struct {
	// Submitted counts accepted job submissions (including cache hits).
	Submitted atomic.Int64
	// Rejected counts submissions turned away with 429 (queue full) or
	// 503 (draining).
	Rejected atomic.Int64
	// Completed counts jobs whose verify.Check run finished successfully.
	Completed atomic.Int64
	// Failed counts jobs whose check returned an error (including
	// deadline expiry).
	Failed atomic.Int64
	// Canceled counts jobs canceled before or during execution.
	Canceled atomic.Int64
	// CacheHits / CacheMisses count content-addressed cache lookups at
	// submission time.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// QueueDepth is the number of jobs waiting in the queue.
	QueueDepth atomic.Int64
	// InFlight is the number of executor goroutines currently inside
	// verify.Check.
	InFlight atomic.Int64
	// Satisfied / Violated count completed jobs by verdict.
	Satisfied atomic.Int64
	Violated  atomic.Int64

	mu        sync.Mutex
	latencies []float64 // seconds, newest-last, bounded window
}

// ObserveLatency records one check duration (in seconds).
func (m *Metrics) ObserveLatency(seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.latencies) >= maxLatencySamples {
		copy(m.latencies, m.latencies[1:])
		m.latencies = m.latencies[:len(m.latencies)-1]
	}
	m.latencies = append(m.latencies, seconds)
}

// LatencySummary returns order statistics over the retained check-latency
// window (seconds).
func (m *Metrics) LatencySummary() metrics.Summary {
	m.mu.Lock()
	sample := make([]float64, len(m.latencies))
	copy(sample, m.latencies)
	m.mu.Unlock()
	return metrics.Summarize(sample)
}

// WritePrometheus renders every counter and gauge in Prometheus text
// exposition format under the csserved_ prefix.
func (m *Metrics) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("csserved_jobs_submitted_total", "Accepted job submissions (including cache hits).", m.Submitted.Load())
	counter("csserved_jobs_rejected_total", "Submissions rejected by admission control.", m.Rejected.Load())
	counter("csserved_jobs_completed_total", "Jobs whose check ran to completion.", m.Completed.Load())
	counter("csserved_jobs_failed_total", "Jobs whose check returned an error.", m.Failed.Load())
	counter("csserved_jobs_canceled_total", "Jobs canceled before or during execution.", m.Canceled.Load())
	counter("csserved_cache_hits_total", "Content-addressed cache hits at submission.", m.CacheHits.Load())
	counter("csserved_cache_misses_total", "Content-addressed cache misses at submission.", m.CacheMisses.Load())
	counter("csserved_verdict_satisfied_total", "Completed checks with a satisfied verdict.", m.Satisfied.Load())
	counter("csserved_verdict_violated_total", "Completed checks with a violated verdict.", m.Violated.Load())
	gauge("csserved_queue_depth", "Jobs waiting in the queue.", m.QueueDepth.Load())
	gauge("csserved_inflight_workers", "Executors currently running a check.", m.InFlight.Load())

	s := m.LatencySummary()
	fmt.Fprintf(w, "# HELP csserved_check_latency_seconds Check latency over the last %d checks.\n", maxLatencySamples)
	fmt.Fprintf(w, "# TYPE csserved_check_latency_seconds summary\n")
	fmt.Fprintf(w, "csserved_check_latency_seconds{quantile=\"0.5\"} %g\n", s.Median)
	fmt.Fprintf(w, "csserved_check_latency_seconds{quantile=\"0.95\"} %g\n", s.P95)
	fmt.Fprintf(w, "csserved_check_latency_seconds{quantile=\"0.99\"} %g\n", s.P99)
	fmt.Fprintf(w, "csserved_check_latency_seconds_sum %g\n", s.Mean*float64(s.N))
	fmt.Fprintf(w, "csserved_check_latency_seconds_count %d\n", s.N)
}
