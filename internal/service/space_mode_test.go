package service

import (
	"context"
	"net/http"
	"testing"
)

// TestSubmitRejectsQuotientMisuse exercises the submission-time policy
// boundary for the symmetry quotient: every spec here must fail with 400
// (and a reason), never occupy a queue slot, and never reach the checker.
func TestSubmitRejectsQuotientMisuse(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	quot := JobOptions{SpaceMode: "quotient"}
	for name, spec := range map[string]JobSpec{
		// tokenring-path advertises no symmetry group (the endpoints break
		// the rotation).
		"no-symmetry": {Protocol: "tokenring-path", Options: quot},
		// GCL source jobs never carry a group: there is no catalog entry to
		// advertise one.
		"source": {Source: "program p; var x : 0..1;", Options: quot},
		// The diffusing design is layered; per-constraint recovery costs
		// are permuted, not preserved, by any group, so metrics on the
		// quotient would be unsound.
		"metrics-layered": {Protocol: "diffusing",
			Options: JobOptions{SpaceMode: "quotient", Analyses: []string{AnalysisMetrics}}},
		// The saboteur's witness must replay on concrete states.
		"saboteur": {Protocol: "tokenring-ring",
			Options: JobOptions{SpaceMode: "quotient", Saboteur: &SaboteurOptions{K: 1}}},
		"bad-mode": {Protocol: "tokenring-ring", Options: JobOptions{SpaceMode: "psychic"}},
	} {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("%s: accepted", name)
		} else if errorCode(err) != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", name, errorCode(err))
		}
	}
}

// TestSubmitQuotientRunsAndReports runs a ring job on the quotient and
// checks the wire result reports the tier, both state counts, and the
// same verdict the full product gives.
func TestSubmitQuotientRunsAndReports(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())

	full, err := s.Submit(ringSpec(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	fullSt := waitTerminal(t, s, full.ID)
	if fullSt.State != StateDone {
		t.Fatalf("full job %s: %s", fullSt.State, fullSt.Error)
	}

	spec := ringSpec(3, 4)
	spec.Options.SpaceMode = "quotient"
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, s, st.ID)
	if st.State != StateDone {
		t.Fatalf("quotient job %s: %s", st.State, st.Error)
	}
	res := st.Result
	if res.SpaceMode != "quotient" {
		t.Fatalf("space_mode = %q, want quotient", res.SpaceMode)
	}
	if res.FullStates != fullSt.Result.States {
		t.Fatalf("full_states = %d, want the full product's %d",
			res.FullStates, fullSt.Result.States)
	}
	if res.States >= res.FullStates {
		t.Fatalf("quotient did not shrink the space: %d reps of %d states",
			res.States, res.FullStates)
	}
	if res.Verdict != fullSt.Result.Verdict || res.Classification != fullSt.Result.Classification {
		t.Fatalf("quotient verdict %s/%s, full %s/%s",
			res.Verdict, res.Classification, fullSt.Result.Verdict, fullSt.Result.Classification)
	}
}

// TestSubmitSpillRunsAndReports pins the server's operator-owned spill
// directory into a forced-spill job and checks the tier is reported.
func TestSubmitSpillRunsAndReports(t *testing.T) {
	s := New(Config{SpillDir: t.TempDir()})
	defer s.Shutdown(context.Background())
	spec := ringSpec(3, 4)
	spec.Options.SpaceMode = "spill"
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, s, st.ID)
	if st.State != StateDone {
		t.Fatalf("spill job %s: %s", st.State, st.Error)
	}
	if st.Result.SpaceMode != "spill" {
		t.Fatalf("space_mode = %q, want spill", st.Result.SpaceMode)
	}
	if st.Result.Verdict != VerdictSatisfied {
		t.Fatalf("verdict = %s, want satisfied", st.Result.Verdict)
	}
}

// TestSpaceModeCacheKeys checks the tier is part of the content address
// exactly when it changes what runs: auto is the default spelling (same
// key as leaving the option out), explicit tiers get their own entries.
func TestSpaceModeCacheKeys(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	cfg := s.cfg
	base := ringSpec(3, 4)
	auto := ringSpec(3, 4)
	auto.Options.SpaceMode = "auto"
	if mustKey(t, base, cfg) != mustKey(t, auto, cfg) {
		t.Fatal("space_mode=auto changed the cache key of the default spelling")
	}
	keys := map[string]string{"": mustKey(t, base, cfg)}
	for _, mode := range []string{"full", "quotient", "spill"} {
		spec := ringSpec(3, 4)
		spec.Options.SpaceMode = mode
		keys[mode] = mustKey(t, spec, cfg)
	}
	seen := map[string]string{}
	for mode, key := range keys {
		if prev, dup := seen[key]; dup {
			t.Fatalf("space_mode %q and %q share cache key %s", mode, prev, key)
		}
		seen[key] = mode
	}
}
