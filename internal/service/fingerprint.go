package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"nonmask/internal/protocols/registry"
	"nonmask/internal/saboteur"
	"nonmask/internal/verify"
)

// The result cache is content-addressed: a job's key is a SHA-256 over a
// canonical rendering of WHAT is being checked (the pretty-printed GCL
// source, or the protocol name plus normalized parameters) and the
// semantically relevant check options. Two options are deliberately
// excluded from the key:
//
//   - Workers: verdicts and witnesses are identical for every worker count
//     (internal/verify's metamorphic worker-invariance tests pin this), so
//     a result computed with 8 workers answers a 1-worker request.
//   - Deadline: it bounds wall-clock time, not the answer.
//
// MaxStates stays in the key because it changes which instances error out,
// and Strategy stays because it is recorded on the report the result is
// rendered from.

// optionsKey renders the semantically relevant options with defaults
// resolved, so "0 = default" spellings share a cache line with the
// explicit default.
func optionsKey(o verify.Options) string {
	max := o.MaxStates
	if max <= 0 {
		max = verify.DefaultMaxStates
	}
	strat := o.Strategy
	if strat == 0 {
		strat = verify.Projected
	}
	key := fmt.Sprintf("max=%d strategy=%s", max, strat)
	// The analyses selector joins the key only when it changes the result
	// payload: a metrics job must not be answered by a verdict-only cache
	// line (it would lack the metrics block). Verdict-only keys stay
	// byte-identical to pre-analyses versions, so existing persistent
	// stores keep answering verdict jobs across the upgrade.
	if o.Metrics {
		key += " analyses=metrics"
	}
	// The space-mode tier joins the key only when pinned away from auto:
	// an explicit tier changes the result payload (a quotient result's
	// "states" counts orbit representatives, and the pass list gains
	// canonicalize/spill spans), so it must not share a cache line with the
	// auto spelling. Auto itself contributes nothing, keeping pre-tier keys
	// byte-identical so persistent stores keep answering across the upgrade.
	if o.SpaceMode != verify.SpaceAuto {
		key += " space_mode=" + o.SpaceMode.String()
	}
	return key
}

// saboteurKey renders the normalized saboteur request. The caller must
// pass normalized options (engineOptions) so "0 = default" budget
// spellings share a cache line; verdict-only jobs (nil) contribute
// nothing, keeping their keys byte-identical to pre-saboteur versions.
func saboteurKey(sab *saboteur.Options) string {
	if sab == nil {
		return ""
	}
	return fmt.Sprintf(" saboteur=k:%d,objective:%s,budget:%d", sab.K, sab.Objective, sab.Budget)
}

func digest(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// FingerprintProtocol exposes the catalog job content-address to offline
// tools (csverify -store) that share the service's verdict store: the same
// protocol, normalized params, and options hash to the same key whether
// the check ran in-process or behind csserved.
func FingerprintProtocol(name string, p registry.Params, o verify.Options) string {
	return fingerprintProtocol(name, p, o, nil)
}

// fingerprintSource keys a GCL job by its canonical (pretty-printed)
// source, so submissions differing only in whitespace or comments share a
// cache entry.
func fingerprintSource(canonical string, o verify.Options, sab *saboteur.Options) string {
	return digest("gcl", canonical, optionsKey(o)+saboteurKey(sab))
}

// fingerprintProtocol keys a catalog job by protocol name and normalized
// parameters.
func fingerprintProtocol(name string, p registry.Params, o verify.Options, sab *saboteur.Options) string {
	return digest("protocol", name, p.String(), optionsKey(o)+saboteurKey(sab))
}
