package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nonmask/internal/protocols/registry"
)

// kSweep declares a tokenring-ring batch sweeping k over [from, to].
func kSweep(from, to int) BatchSpec {
	return BatchSpec{Sweep: &SweepSpec{
		Protocol: "tokenring-ring",
		Params:   registry.Params{N: 3},
		Ranges:   map[string]RangeSpec{"k": {From: from, To: to}},
	}}
}

func waitBatch(t *testing.T, s *Server, id string) BatchStatus {
	t.Helper()
	st, ok := s.WaitBatch(context.Background(), id, 15*time.Second)
	if !ok {
		t.Fatalf("batch %s disappeared", id)
	}
	if !st.State.terminal() {
		t.Fatalf("batch %s still %s after wait", id, st.State)
	}
	return st
}

func TestBatchSweepRunsAndAggregates(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())

	bst, err := s.SubmitBatch(kSweep(4, 6))
	if err != nil {
		t.Fatal(err)
	}
	if bst.Counts.Total != 3 {
		t.Fatalf("sweep expanded to %d jobs, want 3", bst.Counts.Total)
	}
	final := waitBatch(t, s, bst.ID)
	if final.State != BatchDone {
		t.Fatalf("batch ended %s, want done", final.State)
	}
	if c := final.Counts; c.Done != 3 || c.Failed != 0 || c.Pending != 0 {
		t.Fatalf("counts %+v, want 3 done", c)
	}
	if len(final.Jobs) != 3 {
		t.Fatalf("job refs = %d, want 3", len(final.Jobs))
	}
	for _, ref := range final.Jobs {
		if ref.State != StateDone || ref.Verdict != VerdictSatisfied {
			t.Fatalf("member %s: state %s verdict %q", ref.ID, ref.State, ref.Verdict)
		}
	}
	if got := s.metrics.BatchJobs.Load(); got != 3 {
		t.Fatalf("batch jobs metric = %d, want 3", got)
	}
	if got := s.metrics.BatchesCompleted.Load(); got != 1 {
		t.Fatalf("batches completed = %d, want 1", got)
	}

	// The same sweep again: every member answered from the cache.
	b2, err := s.SubmitBatch(kSweep(4, 6))
	if err != nil {
		t.Fatal(err)
	}
	final2 := waitBatch(t, s, b2.ID)
	if final2.State != BatchDone || final2.Counts.Cached != 3 {
		t.Fatalf("warm sweep: state %s cached %d, want done/3", final2.State, final2.Counts.Cached)
	}
}

func TestBatchExplicitSpecs(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	bst, err := s.SubmitBatch(BatchSpec{Specs: []JobSpec{ringSpec(3, 5), ringSpec(4, 6)}})
	if err != nil {
		t.Fatal(err)
	}
	final := waitBatch(t, s, bst.ID)
	if final.State != BatchDone || final.Counts.Done != 2 {
		t.Fatalf("explicit batch: state %s counts %+v", final.State, final.Counts)
	}
}

func TestBatchRejectsBadSpecs(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	cases := []struct {
		name string
		spec BatchSpec
		want string
	}{
		{"out-of-range sweep", kSweep(60, 70), "advertised range [2, 64]"},
		{"unknown sweep param", BatchSpec{Sweep: &SweepSpec{
			Protocol: "tokenring-ring",
			Ranges:   map[string]RangeSpec{"m": {From: 1, To: 2}},
		}}, "sweepable: n, k, seed"},
		{"unknown protocol", BatchSpec{Sweep: &SweepSpec{
			Protocol: "nope",
			Ranges:   map[string]RangeSpec{"n": {From: 2, To: 3}},
		}}, "unknown protocol"},
		{"inverted range", kSweep(6, 4), "below from"},
		{"both forms", BatchSpec{Specs: []JobSpec{ringSpec(3, 5)},
			Sweep: &SweepSpec{Protocol: "tokenring-ring"}}, "pick one"},
		{"empty", BatchSpec{}, "neither specs nor sweep"},
		{"oversized sweep", BatchSpec{Sweep: &SweepSpec{
			Protocol: "tokenring-ring",
			Ranges:   map[string]RangeSpec{"seed": {From: 1, To: 1000}},
		}}, "cap"},
	}
	for _, tc := range cases {
		_, err := s.SubmitBatch(tc.spec)
		if errorCode(err) != http.StatusBadRequest {
			t.Fatalf("%s: err %v, want 400", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
	// Rejection is all-or-nothing and pre-queue: nothing was admitted.
	if got := s.metrics.Submitted.Load(); got != 0 {
		t.Fatalf("submitted = %d after rejected batches, want 0", got)
	}
}

func TestBatchCancelStopsAdmission(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	testHookJobRunning = func(id string) {
		started <- id
		<-release
	}
	defer func() { testHookJobRunning = nil }()

	s := New(Config{Executors: 1, QueueSize: 4})
	defer s.Shutdown(context.Background())

	// Concurrency 1: members are admitted one at a time, so when the first
	// blocks in flight the other four are still pending in the runner.
	spec := kSweep(4, 8)
	spec.Concurrency = 1
	bst, err := s.SubmitBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-started // member 1 is in flight and holding the only window slot

	if _, ok := s.CancelBatch(bst.ID); !ok {
		t.Fatal("batch not found for cancel")
	}
	close(release)
	final := waitBatch(t, s, bst.ID)
	if final.State != BatchCanceled {
		t.Fatalf("batch ended %s, want canceled", final.State)
	}
	if final.Counts.Pending == 0 {
		t.Fatalf("counts %+v: cancel admitted every member", final.Counts)
	}
	if got := s.metrics.BatchesCanceled.Load(); got != 1 {
		t.Fatalf("batches canceled = %d, want 1", got)
	}
	if _, ok := s.CancelBatch("b-99999999"); ok {
		t.Fatal("cancel of unknown batch reported found")
	}
}

func TestBatchRetriesQueuePushback(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	testHookJobRunning = func(id string) {
		started <- id
		<-release
	}
	defer func() { testHookJobRunning = nil }()

	// Queue bound 1 with a wide-open batch window: once the executor and
	// the queue slot are occupied, the remaining members get 429 from
	// admission and the runner must wait its turn instead of failing.
	s := New(Config{Executors: 1, QueueSize: 1})
	defer s.Shutdown(context.Background())
	spec := kSweep(4, 7)
	spec.Concurrency = 4
	bst, err := s.SubmitBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	close(release)
	final := waitBatch(t, s, bst.ID)
	if final.State != BatchDone || final.Counts.Done != 4 {
		t.Fatalf("pushback batch: state %s counts %+v, want 4 done", final.State, final.Counts)
	}
}

func TestBatchHTTPRoundTrip(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	post := func(body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", "/v1/batches", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}
	rec := post(`{"sweep":{"protocol":"tokenring-ring","params":{"n":3},"ranges":{"k":{"from":4,"to":5}}}}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202: %s", rec.Code, rec.Body)
	}
	var st BatchStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/batches/"+st.ID+"?wait=15s", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("get status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != BatchDone || st.Counts.Done != 2 {
		t.Fatalf("long-poll returned %s %+v", st.State, st.Counts)
	}

	rec = post(`{"sweep":{"protocol":"tokenring-ring","ranges":{"k":{"from":1,"to":1}}}}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range sweep status %d, want 400: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "advertised range") {
		t.Fatalf("rejection does not advertise bounds: %s", rec.Body)
	}
}
