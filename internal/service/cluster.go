package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
)

// This file is the service's cluster surface: the Router the peer layer
// (internal/cluster) plugs in, the forwarding headers, the bearer-token
// auth middleware, and the anti-entropy pull endpoint. The service never
// imports the cluster package — cmd/csserved wires a cluster.Cluster
// into Config.Router — so a single-node server carries no peer code.

// Forwarding headers. Both are trusted only on cluster-authenticated
// requests (the shared -cluster-token); a regular client setting them
// changes nothing.
const (
	// TenantHeader carries the originating tenant of a forwarded request,
	// so quota is charged to the real principal on the node that runs the
	// job. On 401/429 responses it names the rejected tenant.
	TenantHeader = "X-CSServed-Tenant"
	// ForwardedHeader marks a submission already routed by a peer; the
	// receiving node runs it locally instead of re-forwarding, which is
	// what makes the routing loop-free even under membership disagreement.
	ForwardedHeader = "X-CSServed-Forwarded"
)

// Router is the peer layer's surface as the service sees it. Implemented
// by internal/cluster; nil means single-node (every key is local).
type Router interface {
	// NodeName returns this node's cluster name (n0..nK).
	NodeName() string
	// Owner maps a job fingerprint to its owning node via rendezvous
	// hashing; local reports that this node is the owner.
	Owner(key string) (node string, local bool)
	// SubmitRemote forwards a submission to the owner node on behalf of
	// tenant and returns the remote admission status. Errors that carry an
	// HTTPStatus are the remote's verdict (pass them through); anything
	// else is transport failure (the caller falls back to running
	// locally).
	SubmitRemote(ctx context.Context, node, tenant string, spec JobSpec) (JobStatus, error)
	// RunRemote forwards a submission and waits for its terminal status
	// (batch fan-out members).
	RunRemote(ctx context.Context, node, tenant string, spec JobSpec) (JobStatus, error)
	// ProxyHTTP reverse-proxies the request to the named node, reporting
	// whether it handled the request (false: unknown node).
	ProxyHTTP(node string, w http.ResponseWriter, r *http.Request) bool
	// WriteMetrics appends the peer layer's Prometheus text metrics.
	WriteMetrics(w io.Writer)
}

// HTTPStatusError is an error that carries an HTTP status — the typed
// client's APIError and the service's own submission errors both
// implement it, which is how a remote rejection (429 quota, 400 bad
// spec) crosses the forwarding hop without being mistaken for a
// transport failure.
type HTTPStatusError interface {
	error
	HTTPStatus() int
}

// HTTPStatus implements HTTPStatusError.
func (e *submitError) HTTPStatus() int { return e.code }

// errorTenant extracts the tenant a submission error charges, for the
// X-CSServed-Tenant response header.
func errorTenant(err error) string {
	var se *submitError
	if errors.As(err, &se) {
		return se.tenant
	}
	return ""
}

// bearerToken extracts the Authorization bearer token ("" when absent).
func bearerToken(r *http.Request) string {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) > len(prefix) && strings.EqualFold(h[:len(prefix)], prefix) {
		return h[len(prefix):]
	}
	return ""
}

// tenantCtxKey keys the request's resolved tenant identity.
type tenantCtxKey struct{}

// tenantInfo is the auth middleware's verdict on a request.
type tenantInfo struct {
	// name is the tenant to account the request to ("" when auth is off).
	name string
	// cluster marks peer-authenticated requests: exempt from rate limits,
	// trusted to carry forwarding headers.
	cluster bool
}

func tenantFrom(ctx context.Context) tenantInfo {
	info, _ := ctx.Value(tenantCtxKey{}).(tenantInfo)
	return info
}

// withAuth authenticates /v1/* requests when a tokens file is loaded:
// the bearer token must resolve to a tenant (401 otherwise), and the
// resolved identity rides the request context. The shared cluster token
// authenticates peers as the _cluster pseudo-tenant, attributed to the
// TenantHeader principal when one is forwarded. Liveness, readiness,
// and metrics stay unauthenticated — load balancers and scrapers probe
// them.
func (s *Server) withAuth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tok := bearerToken(r)
		if ct := s.cfg.ClusterToken; ct != "" && tok == ct {
			info := tenantInfo{name: r.Header.Get(TenantHeader), cluster: true}
			if info.name == "" {
				info.name = ClusterTenant
			}
			next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, info)))
			return
		}
		if s.cfg.Tenants == nil {
			next.ServeHTTP(w, r)
			return
		}
		switch r.URL.Path {
		case "/healthz", "/readyz", "/metrics":
			next.ServeHTTP(w, r)
			return
		}
		tn, ok := s.cfg.Tenants.Lookup(tok)
		if !ok {
			s.metrics.AuthFailures.Add(1)
			writeError(w, http.StatusUnauthorized, "invalid or missing bearer token")
			return
		}
		info := tenantInfo{name: tn.Name()}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, info)))
	})
}

// rateLimit consumes one submission from the tenant's token bucket,
// returning the 429 to send when the bucket is empty. Cluster-forwarded
// submissions pass (the entry node already charged them).
func (s *Server) rateLimit(info tenantInfo) *submitError {
	if s.cfg.Tenants == nil || info.cluster {
		return nil
	}
	tn := s.cfg.Tenants.ByName(info.name)
	if tn.AllowSubmit() {
		return nil
	}
	s.metrics.RateLimited.Add(1)
	return &submitError{code: http.StatusTooManyRequests,
		msg:    "tenant " + info.name + " rate limit exceeded; retry later",
		tenant: info.name}
}

// proxyByID routes id-addressed requests (job/batch status, cancel,
// event streams) to the node that owns the record: clustered ids are
// node-prefixed ("n1.j-00000042"), so the owner is read off the id
// instead of re-hashing. Returns true when the request was proxied.
func (s *Server) proxyByID(w http.ResponseWriter, r *http.Request, id string) bool {
	rt := s.cfg.Router
	if rt == nil {
		return false
	}
	node, _, ok := strings.Cut(id, ".")
	if !ok || node == rt.NodeName() {
		return false
	}
	if !rt.ProxyHTTP(node, w, r) {
		return false // unknown node; fall through to the local 404
	}
	s.metrics.Proxied.Add(1)
	return true
}

// handleReplicate serves POST /v1/replicate: one page of the local
// store's log from the caller's cursor. Peer-only when a cluster token
// is configured.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if ct := s.cfg.ClusterToken; ct != "" && bearerToken(r) != ct {
		s.metrics.AuthFailures.Add(1)
		writeError(w, http.StatusUnauthorized, "replication requires the cluster token")
		return
	}
	if s.cfg.Store == nil {
		writeError(w, http.StatusNotFound, "no persistent store configured (-store); nothing to replicate")
		return
	}
	var req ReplicateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode replicate request: %v", err)
		return
	}
	recs, gen, next, more, err := s.cfg.Store.Since(req.Gen, req.Offset, req.MaxBytes)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "read log: %v", err)
		return
	}
	resp := ReplicateResponse{Node: s.cfg.NodeName, Gen: gen, Next: next, More: more}
	for _, rec := range recs {
		resp.Records = append(resp.Records, ReplicateRecord{Key: rec.Key, Value: json.RawMessage(rec.Value)})
	}
	writeJSON(w, http.StatusOK, resp)
}
