package service_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"nonmask/internal/gcl"
	"nonmask/internal/service"
	"nonmask/internal/verify"
)

// TestGoldenGCLRoundTrip submits every testdata/*.gcl file through the
// service client and asserts that the served verdicts match a direct
// verify.Check run on the same compiled module — the wire path (JSON in,
// queue, cache, JSON out) must not change any answer.
func TestGoldenGCLRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.gcl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata/*.gcl files found")
	}
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()

	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			// Direct run: compile and check in-process.
			file, err := gcl.Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			m, err := gcl.Compile(file)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := verify.Check(ctx, m.Program, m.S, m.T)
			if err != nil {
				t.Fatal(err)
			}
			want := service.ResultFromReport(m.Name, rep)

			// Served run: same source through the HTTP API.
			st, err := c.Run(ctx, service.JobSpec{Source: string(src)})
			if err != nil {
				t.Fatal(err)
			}
			if st.State != service.StateDone || st.Result == nil {
				t.Fatalf("service run ended %s: %s", st.State, st.Error)
			}
			got := st.Result

			if got.Verdict != want.Verdict {
				t.Errorf("verdict: served %q, direct %q", got.Verdict, want.Verdict)
			}
			if got.Program != want.Program {
				t.Errorf("program: served %q, direct %q", got.Program, want.Program)
			}
			if got.States != want.States || got.StatesS != want.StatesS || got.StatesT != want.StatesT {
				t.Errorf("counts: served (%d,%d,%d), direct (%d,%d,%d)",
					got.States, got.StatesS, got.StatesT, want.States, want.StatesS, want.StatesT)
			}
			if got.Classification != want.Classification {
				t.Errorf("classification: served %q, direct %q", got.Classification, want.Classification)
			}
			if got.ClosureOK != want.ClosureOK || got.Closure != want.Closure {
				t.Errorf("closure: served (%v,%q), direct (%v,%q)",
					got.ClosureOK, got.Closure, want.ClosureOK, want.Closure)
			}
			if got.Unfair.Converges != want.Unfair.Converges || got.Unfair.Summary != want.Unfair.Summary {
				t.Errorf("unfair: served %+v, direct %+v", got.Unfair, want.Unfair)
			}
			if (got.Fair == nil) != (want.Fair == nil) {
				t.Errorf("fair: served %+v, direct %+v", got.Fair, want.Fair)
			} else if got.Fair != nil && (got.Fair.Converges != want.Fair.Converges || got.Fair.Summary != want.Fair.Summary) {
				t.Errorf("fair: served %+v, direct %+v", got.Fair, want.Fair)
			}
			if got.Unfair.WorstSteps != want.Unfair.WorstSteps {
				t.Errorf("worst steps: served %d, direct %d", got.Unfair.WorstSteps, want.Unfair.WorstSteps)
			}

			// Resubmission of the identical file is a cache hit with the
			// same payload.
			st2, err := c.Run(ctx, service.JobSpec{Source: string(src)})
			if err != nil {
				t.Fatal(err)
			}
			if !st2.Cached {
				t.Error("resubmission missed the cache")
			}
			if st2.Result.Verdict != got.Verdict || st2.Result.States != got.States {
				t.Errorf("cached result drifted: %+v vs %+v", st2.Result, got)
			}
		})
	}
}
