package service_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nonmask/internal/gcl"
	"nonmask/internal/service"
	"nonmask/internal/verify"
)

// TestGoldenGCLRoundTrip submits every testdata/*.gcl file through the
// service client and asserts that the served verdicts match a direct
// verify.Check run on the same compiled module — the wire path (JSON in,
// queue, cache, JSON out) must not change any answer.
func TestGoldenGCLRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.gcl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata/*.gcl files found")
	}
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()

	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			// Direct run: compile and check in-process.
			file, err := gcl.Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			m, err := gcl.Compile(file)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := verify.Check(ctx, m.Program, m.S, m.T)
			if err != nil {
				t.Fatal(err)
			}
			want := service.ResultFromReport(m.Name, rep)

			// Served run: same source through the HTTP API.
			st, err := c.Run(ctx, service.JobSpec{Source: string(src)})
			if err != nil {
				t.Fatal(err)
			}
			if st.State != service.StateDone || st.Result == nil {
				t.Fatalf("service run ended %s: %s", st.State, st.Error)
			}
			got := st.Result

			if got.Verdict != want.Verdict {
				t.Errorf("verdict: served %q, direct %q", got.Verdict, want.Verdict)
			}
			if got.Program != want.Program {
				t.Errorf("program: served %q, direct %q", got.Program, want.Program)
			}
			if got.States != want.States || got.StatesS != want.StatesS || got.StatesT != want.StatesT {
				t.Errorf("counts: served (%d,%d,%d), direct (%d,%d,%d)",
					got.States, got.StatesS, got.StatesT, want.States, want.StatesS, want.StatesT)
			}
			if got.Classification != want.Classification {
				t.Errorf("classification: served %q, direct %q", got.Classification, want.Classification)
			}
			if got.ClosureOK != want.ClosureOK || got.Closure != want.Closure {
				t.Errorf("closure: served (%v,%q), direct (%v,%q)",
					got.ClosureOK, got.Closure, want.ClosureOK, want.Closure)
			}
			if got.Unfair.Converges != want.Unfair.Converges || got.Unfair.Summary != want.Unfair.Summary {
				t.Errorf("unfair: served %+v, direct %+v", got.Unfair, want.Unfair)
			}
			if (got.Fair == nil) != (want.Fair == nil) {
				t.Errorf("fair: served %+v, direct %+v", got.Fair, want.Fair)
			} else if got.Fair != nil && (got.Fair.Converges != want.Fair.Converges || got.Fair.Summary != want.Fair.Summary) {
				t.Errorf("fair: served %+v, direct %+v", got.Fair, want.Fair)
			}
			if got.Unfair.WorstSteps != want.Unfair.WorstSteps {
				t.Errorf("worst steps: served %d, direct %d", got.Unfair.WorstSteps, want.Unfair.WorstSteps)
			}

			// Resubmission of the identical file is a cache hit with the
			// same payload.
			st2, err := c.Run(ctx, service.JobSpec{Source: string(src)})
			if err != nil {
				t.Fatal(err)
			}
			if !st2.Cached {
				t.Error("resubmission missed the cache")
			}
			if st2.Result.Verdict != got.Verdict || st2.Result.States != got.States {
				t.Errorf("cached result drifted: %+v vs %+v", st2.Result, got)
			}
		})
	}
}

// TestGoldenMetricsWire submits every testdata/*.gcl with
// analyses:["metrics"] and asserts the served metrics block is exactly
// the wire rendering of a direct verify run with the same constraint
// specs — the golden contract for the quantitative fields. It also pins
// the schema_version stamp and that verdict-only jobs carry no block.
func TestGoldenMetricsWire(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.gcl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata/*.gcl files found")
	}
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()

	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			file, err := gcl.Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			m, err := gcl.Compile(file)
			if err != nil {
				t.Fatal(err)
			}
			// Same constraint specs the server derives from the module.
			specs := make([]verify.ConstraintSpec, 0, len(m.Set.Constraints))
			for _, cn := range m.Set.Constraints {
				specs = append(specs, verify.ConstraintSpec{Name: cn.Pred.Name, Pred: cn.Pred})
			}
			rep, err := verify.Check(ctx, m.Program, m.S, m.T,
				verify.WithMetrics(), verify.WithConstraints(specs...))
			if err != nil {
				t.Fatal(err)
			}
			want := service.ResultFromReport(m.Name, rep)
			if want.Metrics == nil {
				t.Fatal("direct metrics run produced no metrics block")
			}

			st, err := c.Run(ctx, service.JobSpec{
				Source:  string(src),
				Options: service.JobOptions{Analyses: []string{service.AnalysisVerdict, service.AnalysisMetrics}},
			})
			if err != nil {
				t.Fatal(err)
			}
			if st.State != service.StateDone || st.Result == nil {
				t.Fatalf("service run ended %s: %s", st.State, st.Error)
			}
			got := st.Result
			if got.SchemaVersion != service.ResultSchemaVersion {
				t.Errorf("schema_version = %d, want %d", got.SchemaVersion, service.ResultSchemaVersion)
			}
			if !reflect.DeepEqual(got.Metrics, want.Metrics) {
				t.Errorf("metrics block drifted:\nserved %+v\ndirect %+v", got.Metrics, want.Metrics)
			}
			if got.Verdict != want.Verdict {
				t.Errorf("verdict: served %q, direct %q", got.Verdict, want.Verdict)
			}

			// A verdict-only submission of the same source must not carry a
			// metrics block (and must not be answered by the metrics cache
			// line, nor vice versa).
			plain, err := c.Run(ctx, service.JobSpec{Source: string(src)})
			if err != nil {
				t.Fatal(err)
			}
			if plain.Result == nil || plain.Result.Metrics != nil {
				t.Errorf("verdict-only result carries a metrics block: %+v", plain.Result)
			}

			// Resubmission with metrics is a cache hit with the block intact.
			st2, err := c.Run(ctx, service.JobSpec{
				Source:  string(src),
				Options: service.JobOptions{Analyses: []string{service.AnalysisMetrics}},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !st2.Cached {
				t.Error("metrics resubmission missed the cache")
			}
			if !reflect.DeepEqual(st2.Result.Metrics, got.Metrics) {
				t.Error("cached metrics block drifted")
			}
		})
	}
}
