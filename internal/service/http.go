package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"nonmask/internal/protocols/registry"
)

// maxBodyBytes bounds POST /v1/jobs request bodies (GCL sources are small;
// 1 MiB is generous).
const maxBodyBytes = 1 << 20

// ProtocolInfo is one GET /v1/protocols catalog row.
type ProtocolInfo struct {
	// Name is the job spec "protocol" value.
	Name string `json:"name"`
	// Description is a one-line human summary.
	Description string `json:"description"`
	// Defaults shows the normalized zero-Params defaults for the entry.
	Defaults registry.Params `json:"defaults"`
	// Bounds advertises the validated parameter ranges enforced at
	// submission and batch-sweep expansion.
	Bounds registry.Bounds `json:"bounds"`
	// Analyses lists the analyses/job types the entry supports
	// ("verdict", "metrics", "saboteur"); submissions requesting an
	// unsupported one are rejected with 400.
	Analyses []string `json:"analyses"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs          submit a job (JobSpec) → JobStatus (202, or 200 on cache hit)
//	GET    /v1/jobs          list retained job records; ?limit=&offset= paginate
//	GET    /v1/jobs/{id}     job status; ?wait=2s long-polls for completion
//	DELETE /v1/jobs/{id}     cancel a queued or running job
//	POST   /v1/batches       submit a batch (BatchSpec) → BatchStatus (202)
//	GET    /v1/batches/{id}  batch status; ?wait=5s long-polls for the whole set
//	DELETE /v1/batches/{id}  cancel a batch and its non-terminal members
//	GET    /v1/jobs/{id}/events     SSE stream of one job's events (replay + tail)
//	GET    /v1/batches/{id}/events  SSE stream of one batch's events
//	GET    /v1/events        SSE firehose across every source; ?types=a,b filters
//	GET    /v1/protocols     built-in protocol catalog with advertised bounds
//	GET    /v1/version       build identity (module, version, go toolchain)
//	POST   /v1/replicate     anti-entropy pull: one page of the store log (peers)
//	GET    /healthz          liveness (always "ok" while the process serves)
//	GET    /readyz           readiness ("ok", or 503 once draining begins)
//	GET    /metrics          Prometheus text exposition
//
// With a tokens file loaded, /v1/* requires a bearer token; in a
// cluster, id-addressed requests for records on other nodes are
// reverse-proxied to them, and submissions are forwarded to the
// fingerprint's owner node. Every request is logged to the server's
// Logger with a request id, which is also echoed in the X-Request-Id
// response header.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("POST /v1/batches", s.handleSubmitBatch)
	mux.HandleFunc("GET /v1/batches/{id}", s.handleGetBatch)
	mux.HandleFunc("DELETE /v1/batches/{id}", s.handleCancelBatch)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/batches/{id}/events", s.handleBatchEvents)
	mux.HandleFunc("GET /v1/events", s.handleFirehose)
	mux.HandleFunc("GET /v1/protocols", s.handleProtocols)
	mux.HandleFunc("GET /v1/version", s.handleVersion)
	mux.HandleFunc("POST /v1/replicate", s.handleReplicate)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.withRequestLog(s.withAuth(mux))
}

// reqSeq numbers requests across all servers in the process; the ids only
// need to be unique within one log stream.
var reqSeq atomic.Uint64

// statusRecorder captures the response code for the request log.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer, so the SSE handlers can stream
// through the request-log middleware.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withRequestLog assigns each request an id, echoes it as X-Request-Id,
// and logs method, path, status and latency at debug level (health and
// metrics probes would drown info-level logs).
func (s *Server) withRequestLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := "r-" + strconv.FormatUint(reqSeq.Add(1), 10)
		w.Header().Set("X-Request-Id", id)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		s.log.Debug("http request",
			"request", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.code,
			"elapsed_ms", float64(time.Since(start))/float64(time.Millisecond),
		)
	})
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit, err := queryInt(q.Get("limit"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad limit %q: want a non-negative integer", q.Get("limit"))
		return
	}
	offset, err := queryInt(q.Get("offset"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad offset %q: want a non-negative integer", q.Get("offset"))
		return
	}
	writeJSON(w, http.StatusOK, s.ListJobs(limit, offset))
}

// queryInt parses a non-negative integer query parameter, empty meaning
// the default.
func queryInt(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	return n, nil
}

// writeSubmitError renders a submission error, naming the charged tenant
// in the X-CSServed-Tenant header so a 429's principal is identifiable
// without parsing the body.
func writeSubmitError(w http.ResponseWriter, err error) {
	if tenant := errorTenant(err); tenant != "" {
		w.Header().Set(TenantHeader, tenant)
	}
	writeError(w, errorCode(err), "%v", err)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decode job spec: %v", err)
		return
	}
	info := tenantFrom(r.Context())
	// The entry node charges the tenant's submission rate; forwarded
	// hops must not double-charge.
	if se := s.rateLimit(info); se != nil {
		writeSubmitError(w, se)
		return
	}
	forwarded := info.cluster && r.Header.Get(ForwardedHeader) != ""
	st, err := s.SubmitAs(spec, info.name, forwarded)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	code := http.StatusAccepted
	if st.State.terminal() {
		code = http.StatusOK // served from cache
	}
	writeJSON(w, code, st)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.proxyByID(w, r, id) {
		return
	}
	var wait time.Duration
	if ws := r.URL.Query().Get("wait"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, "bad wait %q (want a duration like 2s)", ws)
			return
		}
		wait = d
	}
	st, ok := s.WaitJob(r.Context(), id, wait)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	if s.proxyByID(w, r, r.PathValue("id")) {
		return
	}
	st, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	var spec BatchSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decode batch spec: %v", err)
		return
	}
	info := tenantFrom(r.Context())
	// One batch consumes one submission from the rate bucket; its
	// members are bounded by the tenant's in-flight quota as they admit.
	if se := s.rateLimit(info); se != nil {
		writeSubmitError(w, se)
		return
	}
	st, err := s.SubmitBatchAs(spec, info.name)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleGetBatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.proxyByID(w, r, id) {
		return
	}
	var wait time.Duration
	if ws := r.URL.Query().Get("wait"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, "bad wait %q (want a duration like 5s)", ws)
			return
		}
		wait = d
	}
	st, ok := s.WaitBatch(r.Context(), id, wait)
	if !ok {
		writeError(w, http.StatusNotFound, "no batch %q", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancelBatch(w http.ResponseWriter, r *http.Request) {
	if s.proxyByID(w, r, r.PathValue("id")) {
		return
	}
	st, ok := s.CancelBatch(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no batch %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleProtocols(w http.ResponseWriter, _ *http.Request) {
	entries := registry.Entries()
	out := make([]ProtocolInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, ProtocolInfo{
			Name:        e.Name,
			Description: e.Description,
			Defaults:    e.Normalize(registry.Params{}),
			Bounds:      e.Bounds,
			Analyses:    e.SupportedAnalyses(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz is pure liveness: the process is up and serving. It
// stays 200 through a drain — restarting a draining node would destroy
// the very work the drain is preserving. Routability is /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: whether this node should receive new work.
// Shutdown flips it before admission closes (DrainGrace), so balancers
// and peers stop routing here while submissions still succeed.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ready := !s.notReady && !s.draining
	s.mu.Unlock()
	if !ready {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
	s.writeEventMetrics(w)
	writeBuildInfo(w)
	s.writeStoreMetrics(w)
	if rt := s.cfg.Router; rt != nil {
		rt.WriteMetrics(w)
	}
}
