package service

import "encoding/json"

// Wire types for POST /v1/replicate, the anti-entropy pull endpoint. A
// peer presents its cursor for this node's store log and receives the
// next page of records plus the advanced cursor; it keeps pulling while
// More is set, then sleeps until the next round. The cursor contract
// (generation bumps invalidating byte offsets) is store.Since's; this
// layer only ferries it over HTTP.

// ReplicateRequest is the puller's cursor into the serving node's log.
type ReplicateRequest struct {
	// Gen is the log generation the Offset is valid for; zero (or any
	// stale value) restarts the cursor from the top of the live log.
	Gen uint64 `json:"gen"`
	// Offset is the byte position to resume from.
	Offset int64 `json:"offset"`
	// MaxBytes bounds the page of on-disk record data returned;
	// non-positive means the server default (store.DefaultSinceBytes).
	MaxBytes int `json:"max_bytes,omitempty"`
}

// ReplicateRecord is one replicated verdict: the content-address
// fingerprint key and the stored result document.
type ReplicateRecord struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// ReplicateResponse is one page of the serving node's log.
type ReplicateResponse struct {
	// Node names the serving node (cluster mode; empty single-node).
	Node string `json:"node,omitempty"`
	// Gen and Next form the cursor for the next pull.
	Gen  uint64 `json:"gen"`
	Next int64  `json:"next"`
	// More reports that records past Next already exist; the puller
	// should continue immediately rather than sleep.
	More bool `json:"more"`
	// Records is the page, in log order.
	Records []ReplicateRecord `json:"records,omitempty"`
}
