package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"nonmask/internal/obs"
)

// sseFrame is one parsed text/event-stream frame.
type sseFrame struct {
	id   uint64
	typ  string
	data obs.Event
}

// readSSE consumes an event stream until it ends (the server closes
// finished job/batch streams at their terminal event), skipping
// heartbeat comments.
func readSSE(t *testing.T, r io.Reader) []sseFrame {
	t.Helper()
	var (
		frames []sseFrame
		cur    sseFrame
		data   []byte
	)
	br := bufio.NewReader(r)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			if err != io.EOF {
				t.Fatalf("read stream: %v", err)
			}
			return frames
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if len(data) == 0 {
				continue
			}
			if err := json.Unmarshal(data, &cur.data); err != nil {
				t.Fatalf("decode %q: %v", data, err)
			}
			frames = append(frames, cur)
			cur, data = sseFrame{}, nil
		case strings.HasPrefix(line, ":"):
			// heartbeat
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			cur.id = n
		case strings.HasPrefix(line, "event: "):
			cur.typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = append(data, strings.TrimPrefix(line, "data: ")...)
		default:
			t.Fatalf("unexpected stream line %q", line)
		}
	}
}

// frameSig flattens a stream to a comparable "id/type" signature.
func frameSig(frames []sseFrame) string {
	parts := make([]string, len(frames))
	for i, f := range frames {
		parts[i] = fmt.Sprintf("%d/%s", f.id, f.typ)
	}
	return strings.Join(parts, " ")
}

// eventServer is newTestServer's white-box sibling: it exposes the raw
// base URL (the typed client lives downstream of this package).
func eventServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts.URL
}

func getStream(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	return resp
}

// TestJobStreamReplayIdentity is the acceptance criterion: watchers
// attaching before the job starts, mid-run, and after completion read
// identical event sequences — same ids, same types, same order.
func TestJobStreamReplayIdentity(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	testHookJobRunning = func(id string) {
		started <- id
		<-release
	}
	defer func() { testHookJobRunning = nil }()

	s, base := eventServer(t, Config{Executors: 1})
	st, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	streamURL := base + "/v1/jobs/" + st.ID + "/events"

	// Attach before the job starts (it is queued, held by the hook gate).
	befResp := getStream(t, streamURL)
	defer befResp.Body.Close()
	befCh := make(chan []sseFrame, 1)
	go func() { befCh <- readSSE(t, befResp.Body) }()

	<-started
	// Attach mid-run: history (queued, running) replays, then the tail.
	midResp := getStream(t, streamURL)
	defer midResp.Body.Close()
	midCh := make(chan []sseFrame, 1)
	go func() { midCh <- readSSE(t, midResp.Body) }()

	close(release)
	waitTerminal(t, s, st.ID)

	bef, mid := <-befCh, <-midCh
	// Attach after completion: pure replay, stream still ends cleanly.
	aftResp := getStream(t, streamURL)
	aft := readSSE(t, aftResp.Body)
	aftResp.Body.Close()

	want := frameSig(bef)
	if got := frameSig(mid); got != want {
		t.Errorf("mid-run attach read\n  %s\nfrom-start read\n  %s", got, want)
	}
	if got := frameSig(aft); got != want {
		t.Errorf("after-completion attach read\n  %s\nfrom-start read\n  %s", got, want)
	}

	// The sequence itself: queued first, then running, terminal done last,
	// with per-source ids numbering 1..n without gaps.
	if len(bef) < 3 {
		t.Fatalf("stream has %d events, want at least queued/running/done", len(bef))
	}
	if bef[0].typ != "job" || bef[0].data.State != string(StateQueued) {
		t.Errorf("first event %s/%s, want job/queued", bef[0].typ, bef[0].data.State)
	}
	if bef[1].typ != "job" || bef[1].data.State != string(StateRunning) {
		t.Errorf("second event %s/%s, want job/running", bef[1].typ, bef[1].data.State)
	}
	last := bef[len(bef)-1]
	if last.typ != "job" || last.data.State != string(StateDone) {
		t.Errorf("last event %s/%s, want job/done", last.typ, last.data.State)
	}
	for i, f := range bef {
		if f.id != uint64(i+1) {
			t.Fatalf("event %d has id %d, want %d (dense per-source numbering)", i, f.id, i+1)
		}
	}
}

// TestJobStreamMatchesReportPasses pins the span fidelity contract: the
// pass_end events a watcher streams are exactly the Result.Passes table
// the verdict reports, in order.
func TestJobStreamMatchesReportPasses(t *testing.T) {
	s, base := eventServer(t, Config{})
	st, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, st.ID)
	if final.Result == nil || len(final.Result.Passes) == 0 {
		t.Fatalf("job finished without pass spans: %+v", final)
	}

	resp := getStream(t, base+"/v1/jobs/"+st.ID+"/events")
	frames := readSSE(t, resp.Body)
	resp.Body.Close()
	var streamed []string
	for _, f := range frames {
		if f.typ == string(obs.EventPassEnd) {
			if f.data.Stat == nil {
				t.Fatalf("pass_end without span: %+v", f.data)
			}
			streamed = append(streamed, f.data.Stat.Pass)
		}
	}
	var reported []string
	for _, p := range final.Result.Passes {
		reported = append(reported, p.Pass)
	}
	if fmt.Sprint(streamed) != fmt.Sprint(reported) {
		t.Errorf("streamed pass_end spans %v\nreport has %v", streamed, reported)
	}
}

// TestJobStreamResume pins Last-Event-ID: a reconnect carrying the last
// seen id receives only the events after it, no duplicates.
func TestJobStreamResume(t *testing.T) {
	s, base := eventServer(t, Config{})
	st, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, st.ID)

	resp := getStream(t, base+"/v1/jobs/"+st.ID+"/events")
	all := readSSE(t, resp.Body)
	resp.Body.Close()
	if len(all) < 3 {
		t.Fatalf("full stream has %d events", len(all))
	}
	cut := len(all) / 2
	req, _ := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+st.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", strconv.FormatUint(all[cut-1].id, 10))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resumed := readSSE(t, resp2.Body)
	resp2.Body.Close()
	if got, want := frameSig(resumed), frameSig(all[cut:]); got != want {
		t.Errorf("resume after id %d read\n  %s\nwant the tail\n  %s", all[cut-1].id, got, want)
	}

	// ?after= is the curl-friendly alias for the header.
	resp3 := getStream(t, base+"/v1/jobs/"+st.ID+"/events?after="+strconv.FormatUint(all[len(all)-2].id, 10))
	tail := readSSE(t, resp3.Body)
	resp3.Body.Close()
	if len(tail) != 1 || tail[0].id != all[len(all)-1].id {
		t.Errorf("?after= tail = %s, want just the final event", frameSig(tail))
	}

	// A malformed id is rejected, not treated as zero.
	resp4, err := http.Get(base + "/v1/jobs/" + st.ID + "/events?after=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusBadRequest {
		t.Errorf("bad ?after= got %d, want 400", resp4.StatusCode)
	}
}

// TestSlowSubscriberDropsAccounted pins the backpressure contract: a
// subscriber that never drains loses events past its buffer — counted,
// never blocking the publisher — while the replay ring stays complete.
func TestSlowSubscriberDropsAccounted(t *testing.T) {
	s, base := eventServer(t, Config{})
	st, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Subscribe straight on the bus with a one-event buffer and never
	// read: every event past the first is a drop.
	_, sub := s.Bus().Stream(st.ID).Subscribe(0, 1)
	defer sub.Close()
	waitTerminal(t, s, st.ID)

	if drops := sub.Dropped(); drops == 0 {
		t.Error("undrained one-slot subscriber recorded no drops")
	}
	bs := s.Bus().Stats()
	if bs.Dropped == 0 || bs.Emitted != 1 {
		t.Errorf("bus stats emitted=%d dropped=%d, want 1 emitted and the rest dropped", bs.Emitted, bs.Dropped)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), fmt.Sprintf("csserved_events_dropped_total %d", bs.Dropped)) {
		t.Errorf("metrics missing csserved_events_dropped_total %d:\n%s", bs.Dropped, body)
	}
	// The losses are the subscriber's alone: a fresh replay is complete.
	resp2 := getStream(t, base+"/v1/jobs/"+st.ID+"/events")
	frames := readSSE(t, resp2.Body)
	resp2.Body.Close()
	if uint64(len(frames)) != s.Bus().Stream(st.ID).LastSeq() {
		t.Errorf("replay has %d events, stream published %d", len(frames), s.Bus().Stream(st.ID).LastSeq())
	}
}

// TestDisconnectFreesSubscriber pins teardown: closing the client
// connection releases the server-side subscription.
func TestDisconnectFreesSubscriber(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	testHookJobRunning = func(id string) {
		started <- id
		<-release
	}
	defer func() { testHookJobRunning = nil }()

	s, base := eventServer(t, Config{Executors: 1})
	st, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+st.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	waitFor(t, "subscriber attach", func() bool { return s.Bus().Stats().Subscribers == 1 })
	cancel()
	waitFor(t, "subscriber teardown", func() bool { return s.Bus().Stats().Subscribers == 0 })
	close(release)
	waitTerminal(t, s, st.ID)
}

// waitFor polls cond until it holds or a 5s deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDrainEndsFirehose pins shutdown: the firehose announces draining
// and stopping, then the stream closes cleanly.
func TestDrainEndsFirehose(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, st.ID)

	resp := getStream(t, ts.URL+"/v1/events")
	defer resp.Body.Close()
	framesCh := make(chan []sseFrame, 1)
	go func() { framesCh <- readSSE(t, resp.Body) }()
	waitFor(t, "firehose attach", func() bool { return s.Bus().Stats().Subscribers == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	frames := <-framesCh
	if len(frames) < 2 {
		t.Fatalf("firehose delivered %d events before close, want at least the job replay + server events", len(frames))
	}
	var states []string
	for _, f := range frames {
		if f.typ == string(obs.EventServer) {
			states = append(states, f.data.State)
		}
	}
	if fmt.Sprint(states) != fmt.Sprint([]string{"draining", "stopped"}) {
		t.Errorf("server lifecycle events %v, want [draining stopped]", states)
	}
}

// TestFirehoseTypeFilter covers ?types= validation and filtering.
func TestFirehoseTypeFilter(t *testing.T) {
	s, base := eventServer(t, Config{})
	st, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, st.ID)

	resp, err := http.Get(base + "/v1/events?types=job,nonsense")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown type got %d, want 400", resp.StatusCode)
	}

	// Filtered replay: only job transitions, with an early disconnect
	// (the firehose never ends on its own).
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/events?types=job", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	br := bufio.NewReader(resp2.Body)
	seen := 0
	for seen < 3 {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("filtered firehose ended after %d job events: %v", seen, err)
		}
		if strings.HasPrefix(line, "event: ") {
			if typ := strings.TrimSpace(strings.TrimPrefix(line, "event: ")); typ != "job" {
				t.Fatalf("filtered firehose leaked a %q event", typ)
			}
			seen++
		}
	}
}

// TestVerdictJobNoSubscribersEmitsNothing is the overhead-when-off
// guard at the service layer: a job running with nobody watching emits
// zero events into subscriber buffers (the replay ring still fills, so
// late watchers lose nothing).
func TestVerdictJobNoSubscribersEmitsNothing(t *testing.T) {
	s, base := eventServer(t, Config{})
	st, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, st.ID)

	bs := s.Bus().Stats()
	if bs.Emitted != 0 || bs.Dropped != 0 || bs.Subscribers != 0 {
		t.Errorf("no-subscriber run: emitted=%d dropped=%d subscribers=%d, want all zero",
			bs.Emitted, bs.Dropped, bs.Subscribers)
	}
	if bs.Published == 0 {
		t.Error("no events recorded for replay at all")
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"csserved_events_emitted_total 0",
		"csserved_events_dropped_total 0",
		"csserved_events_subscribers 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestBatchStream covers the aggregated batch feed: opening running
// event, one batch_member per member with its curve point, a progress
// event per completion, and the terminal batch event strictly last.
func TestBatchStream(t *testing.T) {
	s, base := eventServer(t, Config{})
	spec := kSweep(4, 6)
	// Metrics give every member a tolerance-curve point, so the stream's
	// member events carry running curve updates in Data.
	spec.Sweep.Options.Analyses = []string{"verdict", "metrics"}
	bst, err := s.SubmitBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, s, bst.ID)

	resp := getStream(t, base+"/v1/batches/"+bst.ID+"/events")
	frames := readSSE(t, resp.Body)
	resp.Body.Close()
	if len(frames) == 0 {
		t.Fatal("batch stream empty")
	}
	if first := frames[0]; first.typ != "batch" || first.data.State != string(BatchRunning) || first.data.Total != 3 {
		t.Errorf("first event %s/%s total=%d, want batch/running total=3", first.typ, first.data.State, first.data.Total)
	}
	last := frames[len(frames)-1]
	if last.typ != "batch" || last.data.State != string(BatchDone) || last.data.Done != 3 {
		t.Errorf("last event %s/%s done=%d, want batch/done done=3", last.typ, last.data.State, last.data.Done)
	}
	members, progress := 0, 0
	for _, f := range frames[1 : len(frames)-1] {
		switch f.typ {
		case "batch_member":
			members++
			if f.data.Member == "" || f.data.State != string(StateDone) {
				t.Errorf("member event %+v", f.data)
			}
			var pt CurvePoint
			if err := json.Unmarshal(f.data.Data, &pt); err != nil {
				t.Errorf("member curve point: %v", err)
			}
		case "progress":
			progress++
		default:
			t.Errorf("unexpected %s event inside batch stream", f.typ)
		}
	}
	if members != 3 || progress != 3 {
		t.Errorf("saw %d member and %d progress events, want 3 and 3", members, progress)
	}
}

// TestEventStream404s covers the not-found paths.
func TestEventStream404s(t *testing.T) {
	_, base := eventServer(t, Config{})
	for _, path := range []string{"/v1/jobs/nope/events", "/v1/batches/nope/events"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestVersionEndpointAndBuildInfo covers GET /v1/version and its
// info-gauge twin in /metrics.
func TestVersionEndpointAndBuildInfo(t *testing.T) {
	_, base := eventServer(t, Config{})
	resp, err := http.Get(base + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	var bi BuildInfo
	if err := json.NewDecoder(resp.Body).Decode(&bi); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if bi.Module == "" || bi.Version == "" || !strings.HasPrefix(bi.GoVersion, "go") {
		t.Errorf("build info %+v incomplete", bi)
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	want := fmt.Sprintf("csserved_build_info{module=%q,version=%q,go=%q} 1", bi.Module, bi.Version, bi.GoVersion)
	if !strings.Contains(string(body), want) {
		t.Errorf("metrics missing %s", want)
	}
}

// TestQueueWaitHistogram covers the admit→run latency histogram: it is
// always exposed and counts one observation per executed job.
func TestQueueWaitHistogram(t *testing.T) {
	s, base := eventServer(t, Config{})
	probe := func() string {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return string(body)
	}
	if body := probe(); !strings.Contains(body, "csserved_job_queue_wait_seconds_count 0") {
		t.Errorf("fresh server missing zero-count queue-wait histogram:\n%s", body)
	}
	st, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, st.ID)
	body := probe()
	if !strings.Contains(body, "csserved_job_queue_wait_seconds_count 1") {
		t.Errorf("queue-wait histogram did not count the executed job:\n%s", body)
	}
	if !strings.Contains(body, `csserved_job_queue_wait_seconds_bucket{le="+Inf"} 1`) {
		t.Errorf("queue-wait histogram missing +Inf bucket:\n%s", body)
	}
}
