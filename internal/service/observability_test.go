package service

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nonmask/internal/verify"
)

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// TestMetricsExposePassHistograms is the observability acceptance check:
// after one job, /metrics carries a latency histogram and throughput gauge
// for every pass the check ran.
func TestMetricsExposePassHistograms(t *testing.T) {
	s := newServer(t, Config{})
	st, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, st.ID)

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()

	for _, pass := range []string{verify.PassEnumerate, verify.PassSuccTable,
		verify.PassClosure, verify.PassConvergeUnfair} {
		bucket := fmt.Sprintf("csserved_pass_latency_seconds_bucket{pass=%q,le=\"+Inf\"} 1", pass)
		if !strings.Contains(body, bucket) {
			t.Errorf("/metrics missing %s", bucket)
		}
		count := fmt.Sprintf("csserved_pass_latency_seconds_count{pass=%q} 1", pass)
		if !strings.Contains(body, count) {
			t.Errorf("/metrics missing %s", count)
		}
		if !strings.Contains(body, fmt.Sprintf("csserved_pass_states_total{pass=%q}", pass)) {
			t.Errorf("/metrics missing states counter for %s", pass)
		}
		if !strings.Contains(body, fmt.Sprintf("csserved_pass_states_per_second{pass=%q}", pass)) {
			t.Errorf("/metrics missing throughput gauge for %s", pass)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}
}

// TestResultCarriesDaemonAndPasses pins the satellite fix: the wire result
// names the daemon that produced the converging verdict and carries the
// per-pass breakdown.
func TestResultCarriesDaemonAndPasses(t *testing.T) {
	s := newServer(t, Config{})
	st, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, s, st.ID)
	if st.Result == nil {
		t.Fatalf("no result: %+v", st)
	}
	// Dijkstra's ring converges under the arbitrary daemon.
	if st.Result.Daemon != DaemonArbitrary {
		t.Errorf("daemon = %q, want %q", st.Result.Daemon, DaemonArbitrary)
	}
	if len(st.Result.Passes) < 4 {
		t.Fatalf("result has %d passes, want at least 4: %+v", len(st.Result.Passes), st.Result.Passes)
	}
	if st.Result.Passes[0].Pass != verify.PassEnumerate {
		t.Errorf("first pass = %q, want %q", st.Result.Passes[0].Pass, verify.PassEnumerate)
	}
	for _, p := range st.Result.Passes {
		if p.States <= 0 {
			t.Errorf("pass %s has no states: %+v", p.Pass, p)
		}
	}
}

func TestListJobsPagination(t *testing.T) {
	s := newServer(t, Config{})
	var ids []string
	for k := 4; k <= 6; k++ { // three distinct cache keys
		st, err := s.Submit(ringSpec(3, k))
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, s, st.ID)
		ids = append(ids, st.ID)
	}

	page := s.ListJobs(2, 0)
	if page.Total != 3 || len(page.Jobs) != 2 {
		t.Fatalf("page = total %d, %d jobs; want total 3, 2 jobs", page.Total, len(page.Jobs))
	}
	// Newest first.
	if page.Jobs[0].ID != ids[2] || page.Jobs[1].ID != ids[1] {
		t.Fatalf("page order %s, %s; want %s, %s", page.Jobs[0].ID, page.Jobs[1].ID, ids[2], ids[1])
	}
	next := s.ListJobs(2, 2)
	if len(next.Jobs) != 1 || next.Jobs[0].ID != ids[0] {
		t.Fatalf("second page = %+v, want just %s", next.Jobs, ids[0])
	}
	if past := s.ListJobs(10, 99); len(past.Jobs) != 0 || past.Total != 3 {
		t.Fatalf("past-the-end page = %+v, want empty with total 3", past)
	}
	if all := s.ListJobs(0, 0); len(all.Jobs) != 3 {
		t.Fatalf("limit 0 returned %d jobs, want all 3", len(all.Jobs))
	}
}

// TestSweepExpired drives the TTL sweep directly: finished records older
// than RecordTTL go away, live (queued) jobs stay.
func TestSweepExpired(t *testing.T) {
	// No executors: submissions park in the queue and stay non-terminal.
	s := newServer(t, Config{Executors: -1, RecordTTL: time.Minute})
	queued, err := s.Submit(ringSpec(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	// A cache-primed terminal record: put a result in the cache under a
	// different key, then submit it for an instantly-done job.
	done, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	if j, ok := s.jobs[done.ID]; ok {
		j.transition(StateCanceled, nil, nil, time.Now())
	} else {
		t.Fatalf("no record for %s", done.ID)
	}

	// Not yet expired: nothing to sweep.
	if n := s.sweepExpired(time.Now()); n != 0 {
		t.Fatalf("swept %d records before the TTL elapsed", n)
	}
	// Past the TTL: the terminal record goes, the queued one stays.
	if n := s.sweepExpired(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("swept %d records, want 1", n)
	}
	if _, ok := s.Job(done.ID); ok {
		t.Error("terminal record survived the sweep")
	}
	if _, ok := s.Job(queued.ID); !ok {
		t.Error("live queued job was swept")
	}
	if page := s.ListJobs(0, 0); page.Total != 1 {
		t.Errorf("ListJobs total = %d after sweep, want 1", page.Total)
	}
}

// TestRequestIDHeader checks every response carries the X-Request-Id the
// request log is keyed by.
func TestRequestIDHeader(t *testing.T) {
	s := newServer(t, Config{})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Header().Get("X-Request-Id") == "" {
		t.Fatal("response missing X-Request-Id")
	}
}
