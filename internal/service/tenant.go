package service

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The tenant layer is the service's multi-tenant admission control:
// bearer tokens map to named tenants (csserved -tokens-file), each with
// an optional token-bucket submission rate and an in-flight job quota.
// Rates are consumed where a submission enters the cluster; quotas are
// held on the node that runs (or coalesces/caches) the job and released
// on its terminal transition, so a tenant's concurrent footprint is
// bounded cluster-wide without any cross-node accounting protocol.

// ClusterTenant is the pseudo-tenant peer nodes authenticate as with the
// shared -cluster-token; it is exempt from rate limits (forwarded work
// was already limited at its entry node).
const ClusterTenant = "_cluster"

// TenantLimits are one tenant's admission bounds. Zero values mean
// unlimited.
type TenantLimits struct {
	// Quota caps the tenant's in-flight (queued or running) jobs.
	Quota int
	// Rate is the sustained submission rate (submissions per second).
	Rate float64
	// Burst is the token-bucket depth; defaults to ceil(Rate) (min 1)
	// when a rate is set.
	Burst int
}

// Tenant is one named principal with its live admission state.
type Tenant struct {
	name   string
	limits TenantLimits

	mu       sync.Mutex
	tokens   float64
	last     time.Time
	inflight int
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// Limits returns the tenant's configured bounds.
func (t *Tenant) Limits() TenantLimits { return t.limits }

// InFlight returns the tenant's current in-flight job count.
func (t *Tenant) InFlight() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.inflight
}

// AllowSubmit consumes one submission from the tenant's token bucket,
// reporting whether the submission is within the rate. Tenants without a
// rate always pass.
func (t *Tenant) AllowSubmit() bool {
	if t == nil || t.limits.Rate <= 0 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	if !t.last.IsZero() {
		t.tokens += now.Sub(t.last).Seconds() * t.limits.Rate
	} else {
		t.tokens = float64(t.limits.Burst) // a fresh bucket starts full
	}
	t.last = now
	if max := float64(t.limits.Burst); t.tokens > max {
		t.tokens = max
	}
	if t.tokens < 1 {
		return false
	}
	t.tokens--
	return true
}

// tryAcquire takes one in-flight quota slot, reporting false when the
// quota is exhausted. Tenants without a quota always succeed.
func (t *Tenant) tryAcquire() bool {
	if t == nil {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.limits.Quota > 0 && t.inflight >= t.limits.Quota {
		return false
	}
	t.inflight++
	return true
}

// release returns one in-flight quota slot.
func (t *Tenant) release() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.inflight > 0 {
		t.inflight--
	}
	t.mu.Unlock()
}

// Tenants is the token → tenant registry. Safe for concurrent use.
type Tenants struct {
	mu      sync.Mutex
	byToken map[string]*Tenant
	byName  map[string]*Tenant
}

// NewTenants returns an empty registry.
func NewTenants() *Tenants {
	return &Tenants{byToken: make(map[string]*Tenant), byName: make(map[string]*Tenant)}
}

// Add registers a token for a tenant. Multiple tokens may map to the
// same tenant (they share its limits and live state); the first token's
// limits win and later ones must not contradict them.
func (ts *Tenants) Add(token, name string, lim TenantLimits) error {
	if token == "" || name == "" {
		return fmt.Errorf("tenant entry needs a token and a name")
	}
	if strings.HasPrefix(name, "_") {
		return fmt.Errorf("tenant name %q: the underscore prefix is reserved", name)
	}
	if lim.Rate > 0 && lim.Burst <= 0 {
		lim.Burst = int(lim.Rate)
		if float64(lim.Burst) < lim.Rate {
			lim.Burst++
		}
		if lim.Burst < 1 {
			lim.Burst = 1
		}
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, dup := ts.byToken[token]; dup {
		return fmt.Errorf("duplicate token")
	}
	t, ok := ts.byName[name]
	if !ok {
		t = &Tenant{name: name, limits: lim}
		ts.byName[name] = t
	} else if t.limits != lim {
		return fmt.Errorf("tenant %q: conflicting limits across tokens", name)
	}
	ts.byToken[token] = t
	return nil
}

// Lookup resolves a bearer token.
func (ts *Tenants) Lookup(token string) (*Tenant, bool) {
	if ts == nil {
		return nil, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t, ok := ts.byToken[token]
	return t, ok
}

// ByName resolves a tenant by name, creating an unlimited record on the
// first reference. The create-on-miss path serves forwarded identities:
// a peer attributes a job to a tenant this node's tokens file may not
// list (files should match cluster-wide, but a mismatch must degrade to
// unlimited accounting, not a dropped job).
func (ts *Tenants) ByName(name string) *Tenant {
	if ts == nil || name == "" {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t, ok := ts.byName[name]
	if !ok {
		t = &Tenant{name: name}
		ts.byName[name] = t
	}
	return t
}

// Names lists the registered tenant names, sorted.
func (ts *Tenants) Names() []string {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	names := make([]string, 0, len(ts.byName))
	for n := range ts.byName {
		names = append(names, n)
	}
	ts.mu.Unlock()
	sort.Strings(names)
	return names
}

// LoadTenantsFile parses a tokens file: one entry per line,
//
//	<token> <tenant> [quota=N] [rate=R] [burst=B]
//
// with #-comments and blank lines ignored. quota bounds in-flight jobs,
// rate is submissions per second (fractional allowed), burst the bucket
// depth (default ceil(rate)).
func LoadTenantsFile(path string) (*Tenants, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ts := NewTenants()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("%s:%d: want \"<token> <tenant> [quota=N] [rate=R] [burst=B]\"", path, lineNo)
		}
		var lim TenantLimits
		for _, opt := range fields[2:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("%s:%d: bad option %q (want key=value)", path, lineNo, opt)
			}
			switch k {
			case "quota":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("%s:%d: bad quota %q", path, lineNo, v)
				}
				lim.Quota = n
			case "rate":
				r, err := strconv.ParseFloat(v, 64)
				if err != nil || r < 0 {
					return nil, fmt.Errorf("%s:%d: bad rate %q", path, lineNo, v)
				}
				lim.Rate = r
			case "burst":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("%s:%d: bad burst %q", path, lineNo, v)
				}
				lim.Burst = n
			default:
				return nil, fmt.Errorf("%s:%d: unknown option %q (want quota, rate, or burst)", path, lineNo, k)
			}
		}
		if err := ts.Add(fields[0], fields[1], lim); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ts, nil
}
