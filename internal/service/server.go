// Package service turns the one-shot checker pipeline (gcl compile +
// verify.Check) into a long-running verification service: an HTTP/JSON API
// over a bounded in-process job queue with per-job deadlines and
// cancellation, admission control, a content-addressed result cache, and
// Prometheus-text metrics. cmd/csserved is the binary; package client is
// the typed caller.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"nonmask/internal/obs"
	"nonmask/internal/saboteur"
	"nonmask/internal/store"
	"nonmask/internal/verify"
)

// Defaults for Config's zero values.
const (
	defaultQueueSize        = 64
	defaultExecutors        = 4
	defaultMaxDeadline      = 60 * time.Second
	defaultMaxRecords       = 4096
	defaultCacheSize        = 1024
	defaultRecordTTL        = 15 * time.Minute
	defaultEventHistory     = 1024
	defaultEventBuffer      = 256
	defaultProgressInterval = 250 * time.Millisecond
	defaultHeartbeat        = 15 * time.Second
)

// Config sizes the server. The zero value is ready for production-ish
// defaults; tests shrink the queue to exercise admission control.
type Config struct {
	// QueueSize bounds the number of jobs waiting for an executor;
	// submissions beyond it are rejected with 429 (default 64).
	QueueSize int
	// Executors is the number of goroutines running checks (default 4;
	// negative means none, which parks every submission in the queue —
	// used by tests exercising admission control). Each check additionally
	// shards its own passes across CheckWorkers goroutines, so total
	// parallelism is Executors × CheckWorkers.
	Executors int
	// CheckWorkers is the default verify worker count per job (0 = all
	// CPUs); jobs may override it, it does not affect cache keys.
	CheckWorkers int
	// MaxStates is the default state-space cap (0 = verify default).
	MaxStates int64
	// SpillDir is where the checker's disk tier puts CSR segment and
	// frontier-run files when a job escalates (or pins itself) to spill
	// mode. Empty means the OS temp directory. Server policy, never client
	// input; cmd/csserved exposes it as -spill-dir.
	SpillDir string
	// MaxDeadline caps each job's wall-clock budget; job-requested
	// deadlines beyond it are clamped (default 60s).
	MaxDeadline time.Duration
	// MaxRecords bounds retained job records; the oldest finished records
	// are evicted past it (default 4096).
	MaxRecords int
	// CacheSize bounds the content-addressed result cache (default 1024).
	CacheSize int
	// RecordTTL bounds how long finished job records are retained: a
	// background sweep evicts records whose terminal transition is older.
	// Zero means the 15-minute default; negative disables the sweep
	// (records then live until MaxRecords evicts them). Live jobs are
	// never swept.
	RecordTTL time.Duration
	// Store is an optional persistent backend layered under the result
	// cache (read-through/write-through): verdicts survive restarts and
	// memory-tier eviction. The caller owns the store's lifecycle — open
	// it before New, close it after Shutdown.
	Store *store.Store
	// Logger receives the server's structured job-lifecycle and pass
	// trace records (log/slog). Nil discards them.
	Logger *slog.Logger
	// EventHistory bounds each event stream's in-memory replay ring (the
	// per-job/per-batch event log SSE attaches drain before tailing).
	// Zero means 1024.
	EventHistory int
	// EventBuffer bounds each SSE subscriber's channel; a consumer
	// falling further behind than this loses events (counted in
	// csserved_events_dropped_total). Zero means 256.
	EventBuffer int
	// ProgressInterval governs how often a running job samples its
	// progress counter into a "progress" event. Zero means 250ms;
	// negative disables progress events (passes and lifecycle still
	// stream).
	ProgressInterval time.Duration
	// Heartbeat is the SSE keepalive comment interval that keeps idle
	// streams alive through proxies. Zero means 15s.
	Heartbeat time.Duration
	// NodeName names this node in a cluster (n0..nK). Job and batch ids
	// are prefixed with it ("n1.j-00000042") so any peer can route an
	// id-addressed request to the record's node; events carry it as their
	// node field. Empty on a single-node server.
	NodeName string
	// Router is the peer layer (internal/cluster) that owns fingerprint
	// routing, forwarding, and anti-entropy. Nil means single-node.
	Router Router
	// Tenants enables bearer-token auth and per-tenant admission limits
	// (csserved -tokens-file). Nil disables auth entirely.
	Tenants *Tenants
	// ClusterToken is the shared secret peers authenticate with; requests
	// carrying it bypass tenant rate limits and may assert a forwarded
	// tenant identity. Empty disables peer auth (and locks down
	// /v1/replicate only by Tenants, when set).
	ClusterToken string
	// DrainGrace is how long Shutdown keeps accepting work after flipping
	// /readyz to 503, giving load balancers and peers time to stop
	// routing here before submissions start bouncing.
	DrainGrace time.Duration
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = defaultQueueSize
	}
	if c.Executors == 0 {
		c.Executors = defaultExecutors
	} else if c.Executors < 0 {
		c.Executors = 0
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = defaultMaxDeadline
	}
	if c.MaxRecords <= 0 {
		c.MaxRecords = defaultMaxRecords
	}
	if c.CacheSize <= 0 {
		c.CacheSize = defaultCacheSize
	}
	if c.RecordTTL == 0 {
		c.RecordTTL = defaultRecordTTL
	} else if c.RecordTTL < 0 {
		c.RecordTTL = 0
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.EventHistory <= 0 {
		c.EventHistory = defaultEventHistory
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = defaultEventBuffer
	}
	if c.ProgressInterval == 0 {
		c.ProgressInterval = defaultProgressInterval
	} else if c.ProgressInterval < 0 {
		c.ProgressInterval = 0
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = defaultHeartbeat
	}
	return c
}

// Server is the verification service: it owns the job queue, the executor
// pool, the job records, and the result cache. Create with New, mount
// Handler on an http.Server, and stop with Shutdown.
type Server struct {
	cfg     Config
	metrics Metrics
	cache   *cache
	log     *slog.Logger

	// bus fans live events out to SSE subscribers; serverEvents is the
	// bus's "server" stream, carrying lifecycle announcements (draining).
	bus          *obs.Bus
	serverEvents *obs.Stream

	baseCtx context.Context // parent of every check context
	stop    context.CancelFunc

	mu       sync.Mutex
	notReady bool // /readyz fails; admission still open (drain grace)
	draining bool
	// queue and queueHigh are the two-level admission queues: executors
	// drain queueHigh first (biased select), so high-priority jobs
	// preempt queue order — never running work.
	queue     chan *job
	queueHigh chan *job
	jobs      map[string]*job
	order    []string // job ids, admission order, for record eviction
	seq      uint64
	// inflight maps a content-address to its leader job from enqueue until
	// the leader's terminal transition; identical submissions in that
	// window coalesce onto the leader instead of running their own check.
	inflight map[string]*job
	// batches are the batch records (internal/service/batch.go), bounded
	// like job records; batchOrder is admission order for eviction.
	batches    map[string]*batch
	batchOrder []string
	batchSeq   uint64

	wg        sync.WaitGroup // executor goroutines
	batchWG   sync.WaitGroup // batch runner goroutines
	sweepStop chan struct{}  // closed by Shutdown to halt the TTL sweeper
	sweepDone chan struct{}
}

// New starts a server: Config.Executors goroutines begin waiting on the
// queue immediately.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		cache:     newCache(cfg.CacheSize, cfg.Store),
		log:       cfg.Logger,
		baseCtx:   ctx,
		stop:      cancel,
		queue:     make(chan *job, cfg.QueueSize),
		queueHigh: make(chan *job, cfg.QueueSize),
		jobs:      make(map[string]*job),
		inflight:  make(map[string]*job),
		batches:   make(map[string]*batch),
		bus:       obs.NewBus(cfg.EventHistory),
		sweepStop: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	s.bus.SetNode(cfg.NodeName)
	s.serverEvents = s.bus.Stream("server")
	for i := 0; i < cfg.Executors; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	go s.sweeper()
	return s
}

// sweeper periodically evicts finished job records older than RecordTTL,
// so the record map and GET /v1/jobs stay bounded under sustained load
// even below the MaxRecords ceiling.
func (s *Server) sweeper() {
	defer close(s.sweepDone)
	if s.cfg.RecordTTL <= 0 {
		return
	}
	interval := s.cfg.RecordTTL / 4
	if interval < time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if n := s.sweepExpired(time.Now()); n > 0 {
				s.log.Info("swept job records", "evicted", n, "ttl", s.cfg.RecordTTL)
			}
		case <-s.sweepStop:
			return
		}
	}
}

// sweepExpired removes finished records whose terminal transition is older
// than RecordTTL, returning how many were evicted.
func (s *Server) sweepExpired(now time.Time) int {
	cutoff := now.Add(-s.cfg.RecordTTL)
	s.mu.Lock()
	defer s.mu.Unlock()
	evicted := 0
	kept := s.order[:0]
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			continue // already evicted by the MaxRecords bound
		}
		j.mu.Lock()
		expired := j.state.terminal() && !j.finished.IsZero() && j.finished.Before(cutoff)
		j.mu.Unlock()
		if expired {
			delete(s.jobs, id)
			s.bus.Remove(id)
			evicted++
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
	return evicted
}

// Metrics exposes the server's counters (read-only use).
func (s *Server) Metrics() *Metrics { return &s.metrics }

// writeStoreMetrics renders the persistent backend's counters in
// Prometheus text form; without -store nothing is emitted (scrapers can
// key dashboards off the metric's presence).
func (s *Server) writeStoreMetrics(w io.Writer) {
	if s.cfg.Store == nil {
		return
	}
	st := s.cfg.Store.Stats()
	line := func(name, typ, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, typ, name, v)
	}
	line("csserved_store_keys", "gauge", "Live keys in the persistent verdict store.", int64(st.Keys))
	line("csserved_store_log_bytes", "gauge", "Persistent store log file size.", st.LogBytes)
	line("csserved_store_live_bytes", "gauge", "Bytes the newest record per key occupies (gap to log_bytes is compactable garbage).", st.LiveBytes)
	line("csserved_store_recovered_records_total", "counter", "Valid records replayed by the store's recovery scan at open.", st.RecoveredRecords)
	line("csserved_store_skipped_corrupt_records_total", "counter", "Records the recovery scan dropped on checksum or decode mismatch.", st.SkippedCorrupt)
	line("csserved_store_truncated_bytes_total", "counter", "Torn-tail bytes the recovery scan cut off.", st.TruncatedBytes)
	line("csserved_store_appends_total", "counter", "Records appended to the store log.", st.Appends)
	line("csserved_store_compactions_total", "counter", "Completed store compaction rewrites.", st.Compactions)
	line("csserved_store_syncs_total", "counter", "fsyncs issued by the store (batched flushes, compactions, close).", st.Syncs)
}

// submitError carries an HTTP status for the transport layer, plus the
// tenant a rejection charges (echoed as X-CSServed-Tenant).
type submitError struct {
	code   int
	msg    string
	tenant string
}

func (e *submitError) Error() string { return e.msg }

// errorCode maps an error to its HTTP status (500 for unknown errors).
func errorCode(err error) int {
	var he HTTPStatusError
	if errors.As(err, &he) {
		return he.HTTPStatus()
	}
	return http.StatusInternalServerError
}

// Submit validates, content-addresses, and admits a job without a
// tenant, as the entry node: the single-node path and the tests' front
// door.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	return s.SubmitAs(spec, "", false)
}

// SubmitAs validates, content-addresses, and admits a job on behalf of
// tenant. Cache hits return an already-done job without touching the
// queue. In a cluster, a submission whose fingerprint another node owns
// is forwarded there (forwarded marks a submission already routed by a
// peer, which always runs locally — the loop-free guarantee); if the
// owner is unreachable the job runs here instead, trading placement for
// availability. Misses are enqueued unless the tenant's quota is
// exhausted (429), the queue is full (429), or the server is draining
// (503).
func (s *Server) SubmitAs(spec JobSpec, tenant string, forwarded bool) (JobStatus, error) {
	c, err := compileSpec(spec, s.cfg)
	if err != nil {
		s.metrics.Rejected.Add(1)
		return JobStatus{}, &submitError{code: http.StatusBadRequest, msg: err.Error(), tenant: tenant}
	}
	c.tenant = tenant
	if rt := s.cfg.Router; rt != nil && !forwarded {
		if node, local := rt.Owner(c.key); !local {
			// A replicated verdict already on this node is served from here
			// — any node can answer for any cached fingerprint.
			if hit, _ := s.cache.get(c.key); hit == nil {
				if st, err := s.forward(rt, node, tenant, spec); err == nil {
					return st, nil
				} else if he := HTTPStatusError(nil); errors.As(err, &he) {
					// The owner answered: its rejection is the verdict.
					return JobStatus{}, &submitError{code: he.HTTPStatus(), msg: err.Error(), tenant: tenant}
				}
				// Transport failure: the owner is unreachable. Run the job
				// here so a dead peer degrades placement, not service.
				s.metrics.ForwardFallbacks.Add(1)
				s.log.Warn("forward failed; running locally", "owner", node, "key", c.key)
			}
		}
	}
	j, err := s.admit(c)
	if err != nil {
		return JobStatus{}, err
	}
	return j.status(), nil
}

// forward ships a submission to its owner node.
func (s *Server) forward(rt Router, node, tenant string, spec JobSpec) (JobStatus, error) {
	ctx, cancel := context.WithTimeout(s.baseCtx, 15*time.Second)
	defer cancel()
	st, err := rt.SubmitRemote(ctx, node, tenant, spec)
	if err != nil {
		return JobStatus{}, err
	}
	s.metrics.Forwarded.Add(1)
	return st, nil
}

// admit content-addresses and admits a compiled job: the shared back half
// of Submit and the batch runner's member fan-out. Cache lookups consult
// the persistent backend on a memory miss; identical in-flight
// submissions coalesce; fresh work is enqueued unless the queue is full
// (429) or the server is draining (503).
func (s *Server) admit(c *compiled) (*job, error) {
	now := time.Now()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.metrics.Rejected.Add(1)
		return nil, &submitError{code: http.StatusServiceUnavailable, msg: "server is draining", tenant: c.tenant}
	}
	if hit, fromStore := s.cache.get(c.key); hit != nil {
		j := s.admitLocked(c, now)
		s.mu.Unlock()
		s.metrics.Submitted.Add(1)
		s.metrics.CacheHits.Add(1)
		if fromStore {
			s.metrics.StoreHits.Add(1)
		}
		j.mu.Lock()
		j.cached = true
		j.mu.Unlock()
		j.transition(StateDone, hit, nil, now)
		s.log.Info("job done", "job", j.id, "program", c.name, "cached", true,
			"store", fromStore, "verdict", hit.Verdict)
		return j, nil
	}
	// Single-flight: an identical submission already queued or running
	// coalesces onto that leader — the follower gets its own job record
	// (and id) but no queue slot or check run; it inherits the leader's
	// terminal state when the leader finishes.
	if leader, ok := s.inflight[c.key]; ok {
		j := s.admitLocked(c, now)
		j.coalesced = true
		s.mu.Unlock()
		s.metrics.Submitted.Add(1)
		s.metrics.Coalesced.Add(1)
		leader.attachFollower(j, now)
		s.log.Info("job coalesced", "job", j.id, "leader", leader.id,
			"program", c.name, "key", c.key)
		return j, nil
	}
	// Fresh work holds one of its tenant's in-flight quota slots from
	// here to the terminal transition. Cache hits and coalesced followers
	// never reach this point — they consume no executor, so no quota.
	var tn *Tenant
	if s.cfg.Tenants != nil && c.tenant != "" && c.tenant != ClusterTenant {
		tn = s.cfg.Tenants.ByName(c.tenant)
		if !tn.tryAcquire() {
			s.mu.Unlock()
			s.metrics.Rejected.Add(1)
			s.metrics.QuotaRejected.Add(1)
			return nil, &submitError{code: http.StatusTooManyRequests,
				msg:    fmt.Sprintf("tenant %q quota exhausted (%d jobs in flight); retry later", c.tenant, tn.Limits().Quota),
				tenant: c.tenant}
		}
	}
	// Reserve a queue slot before registering the record so a rejected
	// submission leaves no trace.
	j := newJob(s.nextIDLocked(), c, now)
	// The terminal transition releases the in-flight entry and the quota
	// slot; wire the hook before the enqueue so an executor cannot finish
	// the job first. The pointer comparison guards against a later leader
	// reusing the key.
	j.onTerminal = func() {
		tn.release()
		s.mu.Lock()
		if s.inflight[c.key] == j {
			delete(s.inflight, c.key)
		}
		s.mu.Unlock()
	}
	q := s.queue
	if c.priority {
		q = s.queueHigh
	}
	select {
	case q <- j:
	default:
		tn.release()
		s.mu.Unlock()
		s.metrics.Rejected.Add(1)
		return nil, &submitError{code: http.StatusTooManyRequests,
			msg:    fmt.Sprintf("queue full (%d queued); retry later", s.cfg.QueueSize),
			tenant: c.tenant}
	}
	s.inflight[c.key] = j
	s.registerLocked(j)
	s.mu.Unlock()
	s.metrics.Submitted.Add(1)
	s.metrics.CacheMisses.Add(1)
	s.metrics.QueueDepth.Add(1)
	if c.priority {
		s.metrics.HighPriority.Add(1)
	}
	s.log.Info("job queued", "job", j.id, "program", c.name, "key", c.key,
		"tenant", c.tenant, "priority", c.priority)
	return j, nil
}

// JobsPage is one page of job records returned by ListJobs and
// GET /v1/jobs.
type JobsPage struct {
	// Jobs is the page, newest submissions first.
	Jobs []JobStatus `json:"jobs"`
	// Total is the number of retained records before paging.
	Total int `json:"total"`
	// Limit and Offset echo the effective paging window.
	Limit  int `json:"limit"`
	Offset int `json:"offset"`
}

// maxJobsPageSize caps one ListJobs page.
const maxJobsPageSize = 500

// ListJobs returns a page of retained job records, newest first. limit is
// clamped to [1, 500] (0 means the cap); a negative or past-the-end offset
// yields an empty page with the true total.
func (s *Server) ListJobs(limit, offset int) JobsPage {
	if limit <= 0 || limit > maxJobsPageSize {
		limit = maxJobsPageSize
	}
	if offset < 0 {
		offset = 0
	}
	s.mu.Lock()
	// Snapshot the page's job pointers under s.mu, then render statuses
	// outside it: status() takes each job's own lock.
	total := 0
	var page []*job
	for i := len(s.order) - 1; i >= 0; i-- {
		j, ok := s.jobs[s.order[i]]
		if !ok {
			continue
		}
		if total >= offset && len(page) < limit {
			page = append(page, j)
		}
		total++
	}
	s.mu.Unlock()
	out := JobsPage{Jobs: make([]JobStatus, 0, len(page)), Total: total, Limit: limit, Offset: offset}
	for _, j := range page {
		out.Jobs = append(out.Jobs, j.status())
	}
	return out
}

// admitLocked creates and registers a job record (s.mu held).
func (s *Server) admitLocked(c *compiled, now time.Time) *job {
	j := newJob(s.nextIDLocked(), c, now)
	s.registerLocked(j)
	return j
}

func (s *Server) nextIDLocked() string {
	s.seq++
	return s.prefixID(fmt.Sprintf("j-%08d", s.seq))
}

// prefixID stamps the node name onto an id in cluster mode
// ("n1.j-00000042"): any peer routes an id-addressed request by the
// prefix, without re-hashing or a lookup table.
func (s *Server) prefixID(id string) string {
	if s.cfg.NodeName == "" {
		return id
	}
	return s.cfg.NodeName + "." + id
}

// registerLocked records a job, attaches its event stream (publishing the
// "queued" lifecycle event every job's sequence starts with), and evicts
// the oldest finished records past the retention bound (s.mu held).
func (s *Server) registerLocked(j *job) {
	j.node = s.cfg.NodeName
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	j.events = s.bus.Stream(j.id)
	j.events.Publish(obs.Event{Type: obs.EventJob, State: string(StateQueued)})
	for len(s.jobs) > s.cfg.MaxRecords {
		evicted := false
		for i, id := range s.order {
			if jj, ok := s.jobs[id]; ok {
				jj.mu.Lock()
				terminal := jj.state.terminal()
				jj.mu.Unlock()
				if terminal {
					delete(s.jobs, id)
					s.bus.Remove(id)
					s.order = append(s.order[:i], s.order[i+1:]...)
					evicted = true
					break
				}
			} else {
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything live; let the map grow rather than drop state
		}
	}
}

// Job returns a job's status by id.
func (s *Server) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// WaitJob blocks until the job reaches a terminal state, the wait elapses,
// or ctx is done, then returns the current status.
func (s *Server) WaitJob(ctx context.Context, id string, wait time.Duration) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case <-j.done:
		case <-t.C:
		case <-ctx.Done():
		}
	}
	return j.status(), true
}

// Cancel cancels a queued or running job. It reports whether the job
// exists; already-terminal jobs are left untouched.
func (s *Server) Cancel(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	j.requestCancel(time.Now())
	return j.status(), true
}

// executor pulls jobs off the queues and runs them through verify.Check.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		j, ok := s.nextJob()
		if !ok {
			return
		}
		s.metrics.QueueDepth.Add(-1)
		s.runJob(j)
	}
}

// nextJob dequeues the next job, high-priority first: a non-blocking
// probe of queueHigh precedes every blocking wait, so a waiting
// high-priority job always beats a waiting normal one — queue order,
// never running work, is what priority preempts. Returns false once
// both queues are closed and drained (shutdown).
func (s *Server) nextJob() (*job, bool) {
	for {
		select {
		case j, ok := <-s.queueHigh:
			if ok {
				return j, true
			}
			// High queue closed (shutdown): drain what's left of normal.
			j, ok = <-s.queue
			return j, ok
		default:
		}
		select {
		case j, ok := <-s.queueHigh:
			if ok {
				return j, true
			}
			j, ok = <-s.queue
			return j, ok
		case j, ok := <-s.queue:
			if ok {
				return j, true
			}
			j, ok = <-s.queueHigh
			return j, ok
		}
	}
}

// testHookJobRunning, when non-nil, runs after a job transitions to
// running and before its check starts; white-box tests use it to hold a
// job deterministically in flight.
var testHookJobRunning func(id string)

// runJob executes one job. The check context is the server's base context
// (so Shutdown's hard-stop cancels in-flight checks) plus the job's
// deadline; verify.Check applies Options.Deadline itself.
func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if !j.markRunning(cancel) {
		// Canceled while queued.
		s.metrics.Canceled.Add(1)
		return
	}
	if testHookJobRunning != nil {
		testHookJobRunning(j.id)
	}
	s.metrics.ObserveQueueWait(time.Since(j.submitted).Seconds())
	s.metrics.InFlight.Add(1)
	defer s.metrics.InFlight.Add(-1)

	jlog := s.log.With("job", j.id, "program", j.c.name)
	jlog.Info("job running")
	start := time.Now()
	// Sample the job's progress counter into "progress" events at the
	// governed interval; the final snapshot on stop lands before the
	// terminal transition, so a tailing stream always ends on the true
	// final counts.
	var prog *obs.Progress
	stopProg := func() {}
	if s.cfg.ProgressInterval > 0 {
		prog = &obs.Progress{}
		stopProg = prog.Watch(s.cfg.ProgressInterval, func(snap obs.Snapshot) {
			if snap.Pass == "" {
				return
			}
			j.events.Publish(obs.Event{Type: obs.EventProgress,
				Pass: snap.Pass, Done: snap.Done, Total: snap.Total})
		})
	}
	defer stopProg()
	// The per-job LogTracer streams each pass span as a debug record tagged
	// with the job id, in addition to the report's own span collection; the
	// job's event stream turns the same spans into pass_start/pass_end
	// events for live subscribers.
	rep, err := verify.Check(ctx, j.c.prog, j.c.s, j.c.t,
		verify.WithOptions(j.c.opts), verify.WithConstraints(j.c.constraints...),
		verify.WithTracer(obs.Tee(obs.LogTracer{Logger: jlog}, j.events)),
		verify.WithProgress(prog))
	if rep != nil {
		// Release the space's disk tier (mmap'd CSR segments) once the job
		// is settled; a no-op for in-RAM spaces.
		defer func() {
			if cerr := rep.Close(); cerr != nil {
				jlog.Warn("space close failed", "error", cerr)
			}
		}()
	}
	var sabRes *saboteur.Result
	if err == nil && j.c.saboteur != nil {
		// The search runs on the check's own space, so its pass span joins
		// the report's span collection (and the per-job debug log) like any
		// verifier pass. Incumbent improvements stream as saboteur events.
		sopts := *j.c.saboteur
		sopts.OnImprove = func(cost, faults int, expanded int64) {
			j.events.Publish(obs.Event{Type: obs.EventSaboteur,
				Cost: int64(cost), Faults: faults, Done: expanded})
		}
		sabRes, err = saboteur.Search(ctx, rep.Space, sopts)
	}
	// Stop the progress watcher before the terminal transition: streams
	// end at the terminal job event, so nothing may publish after it.
	stopProg()
	now := time.Now()
	if err != nil {
		state := StateFailed
		if ctx.Err() == context.Canceled {
			// Explicit cancel or hard shutdown, not a job failure; a
			// deadline expiry surfaces as DeadlineExceeded from the
			// check's own timeout context and stays a failure.
			state = StateCanceled
			err = fmt.Errorf("canceled: %w", err)
		}
		if state == StateCanceled {
			s.metrics.Canceled.Add(1)
		} else {
			s.metrics.Failed.Add(1)
		}
		j.transition(state, nil, err, now)
		jlog.Warn("job "+string(state), "error", err, "elapsed_ms", now.Sub(start).Seconds()*1000)
		return
	}
	res := ResultFromReport(j.c.name, rep)
	if sabRes != nil {
		if w := sabRes.Witness; w != nil && j.c.protocol != "" {
			// Stamp the catalog identity onto the witness so cssim -replay
			// can rebuild the instance from the file alone.
			w.Protocol = j.c.protocol
			params := j.c.params
			w.Params = &params
		}
		res.Saboteur = SaboteurResultFrom(sabRes)
		s.metrics.SaboteurJobs.Add(1)
		s.metrics.SaboteurExpanded.Add(sabRes.Expanded)
		if sabRes.Optimal {
			s.metrics.SaboteurOptimal.Add(1)
		} else {
			s.metrics.SaboteurBudgetExhausted.Add(1)
		}
	}
	if perr := s.cache.put(j.c.key, res); perr != nil {
		// A failed persistent write degrades durability, not correctness:
		// the verdict still lands in the memory tier and the job record.
		s.metrics.StoreErrors.Add(1)
		jlog.Warn("persistent store write failed", "error", perr)
	} else if s.cfg.Store != nil {
		s.metrics.StorePuts.Add(1)
	}
	s.metrics.Completed.Add(1)
	if res.Verdict == VerdictSatisfied {
		s.metrics.Satisfied.Add(1)
	} else {
		s.metrics.Violated.Add(1)
	}
	s.metrics.ObserveLatency(now.Sub(start).Seconds())
	for _, p := range res.Passes {
		s.metrics.ObservePass(p)
	}
	j.transition(StateDone, res, nil, now)
	jlog.Info("job done", "verdict", res.Verdict, "daemon", res.Daemon,
		"states", res.States, "elapsed_ms", res.ElapsedMS)
}

// Shutdown drains the server. Readiness flips first: /readyz fails while
// admission stays open for DrainGrace, so load balancers and peers stop
// routing here before anything bounces. Then new submissions get 503,
// queued jobs are canceled, and in-flight checks are given until ctx is
// done to finish before being cancelled hard. It returns nil when every
// executor exited cleanly.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.notReady || s.draining {
		s.mu.Unlock()
		return fmt.Errorf("service: Shutdown called twice")
	}
	s.notReady = true
	s.mu.Unlock()
	// Announce the drain on the firehose before canceling anything, so
	// operators tailing /v1/events see why the job streams are ending.
	s.serverEvents.Publish(obs.Event{Type: obs.EventServer, State: "draining"})
	if g := s.cfg.DrainGrace; g > 0 {
		s.log.Info("drain grace: readiness down, admission still open", "grace", g)
		t := time.NewTimer(g)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	// Cancel everything still waiting in the queues. Draining the channels
	// here (rather than letting executors see the canceled jobs) frees the
	// executors to exit as soon as their current check completes. This runs
	// outside s.mu: draining is set, so no new submission can race the
	// close, and the queued-cancel transitions must be free to take s.mu
	// when they release their coalescing entries.
	now := time.Now()
	for _, q := range []chan *job{s.queueHigh, s.queue} {
	loop:
		for {
			select {
			case j := <-q:
				s.metrics.QueueDepth.Add(-1)
				j.requestCancel(now)
				s.metrics.Canceled.Add(1)
			default:
				break loop
			}
		}
		close(q)
	}
	s.log.Info("draining")
	close(s.sweepStop)
	<-s.sweepDone
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.stop()
		s.batchWG.Wait()
		s.closeBus()
		return nil
	case <-ctx.Done():
		s.stop() // hard-cancel in-flight checks
		<-done
		s.batchWG.Wait()
		s.closeBus()
		return ctx.Err()
	}
}

// closeBus publishes the terminal server event and shuts the event bus
// down, ending every SSE stream. It runs after the executors and batch
// runners exit, so every job and batch stream has already carried its
// terminal event.
func (s *Server) closeBus() {
	s.serverEvents.Publish(obs.Event{Type: obs.EventServer, State: "stopped"})
	s.bus.Close()
}

// Bus exposes the server's event bus (read-only use: stats, test
// subscriptions).
func (s *Server) Bus() *obs.Bus { return s.bus }
