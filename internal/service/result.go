package service

import (
	"encoding/json"
	"reflect"
	"strings"
	"time"

	"nonmask/internal/obs"
	"nonmask/internal/saboteur"
	"nonmask/internal/verify"
)

// ResultSchemaVersion is the current Result wire-format version, stamped
// into every freshly computed Result's "schema_version" field.
//
// Compatibility policy (DESIGN §10): the version bumps only on breaking
// changes — a field removed, renamed, or re-interpreted. Purely additive
// fields (new optional blocks like "metrics") do NOT bump the version.
// Consumers must ignore unknown fields and treat an absent schema_version
// as version 1 (results persisted before versioning existed). Version 2
// introduced the selectable-analyses API: the optional "metrics" block and
// the schema_version field itself.
const ResultSchemaVersion = 2

// Verdict values for Result.Verdict.
const (
	// VerdictSatisfied means the checked triple met the paper's definition
	// of fault-tolerance: closure of S and T plus convergence under the
	// (at-worst weakly fair) daemon.
	VerdictSatisfied = "satisfied"
	// VerdictViolated means closure or convergence failed.
	VerdictViolated = "violated"
)

// Daemon values for Result.Daemon: the weakest daemon that produced the
// converging verdict, matching the wording of Report.Summary.
const (
	// DaemonArbitrary means the arbitrary (unfair) daemon already
	// converges — the strongest possible verdict.
	DaemonArbitrary = "arbitrary"
	// DaemonWeaklyFair means convergence needed the weak fairness of the
	// paper's computation model.
	DaemonWeaklyFair = "weakly_fair"
)

// Convergence is the wire encoding of one daemon's convergence verdict.
type Convergence struct {
	// Converges reports whether every computation from T reaches S.
	Converges bool `json:"converges"`
	// Fair is true for the weakly fair daemon, false for the arbitrary one.
	Fair bool `json:"fair"`
	// WorstSteps is the exact worst-case convergence length (arbitrary
	// daemon only, when convergence holds).
	WorstSteps int `json:"worst_steps,omitempty"`
	// Summary is the human-readable one-line verdict.
	Summary string `json:"summary"`
}

// ConstraintCostResult is the wire form of one constraint's recovery cost
// inside a metrics block ("holds and stays held": the target is the
// constraint's stable subset, not its first satisfaction).
type ConstraintCostResult struct {
	// Name labels the constraint (its predicate name).
	Name string `json:"name"`
	// Measured reports whether the cost exists: every daemon is forced
	// into the constraint's stable subset from everywhere in T.
	Measured bool `json:"measured"`
	// WorstSteps is the exact worst-case step count until the constraint
	// holds and keeps holding (valid when Measured).
	WorstSteps int `json:"worst_steps"`
	// StableStates counts the T states where the constraint holds and,
	// under any daemon, keeps holding.
	StableStates int64 `json:"stable_states"`
}

// ToleranceMetrics is the wire form of the quantitative tolerance
// analyses, present on a Result only when the job selected the "metrics"
// analysis. Each group carries its own validity flag because the numbers
// exist under different conditions (see verify.ToleranceMetrics).
type ToleranceMetrics struct {
	// Profile is the distance-to-invariant histogram over the fault span:
	// Profile[d] counts T states whose shortest path to S takes d steps.
	Profile []int64 `json:"profile"`
	// MaxDistance is the largest d with Profile[d] > 0.
	MaxDistance int `json:"max_distance"`
	// MeanDistance is the mean shortest distance over reachable T states.
	MeanDistance float64 `json:"mean_distance"`
	// UnreachableStates counts T states with no path to S.
	UnreachableStates int64 `json:"unreachable_states"`
	// WorstMeasured reports whether worst-case stabilization time exists
	// (arbitrary-daemon convergence holds); WorstSteps and MeanWorstSteps
	// are valid only when it does.
	WorstMeasured  bool    `json:"worst_measured"`
	WorstSteps     int     `json:"worst_steps"`
	MeanWorstSteps float64 `json:"mean_worst_steps"`
	// ExpectedMeasured reports whether the expected stabilization time
	// under the uniform-random daemon exists for every T state.
	ExpectedMeasured  bool    `json:"expected_measured"`
	ExpectedSteps     float64 `json:"expected_steps"`
	MeanExpectedSteps float64 `json:"mean_expected_steps"`
	// ExpectedIterations is the number of value-iteration sweeps run.
	ExpectedIterations int `json:"expected_iterations"`
	// Constraints is the per-constraint recovery-cost breakdown, in the
	// design's declaration order; empty when the program has no layered
	// constraint decomposition.
	Constraints []ConstraintCostResult `json:"constraints,omitempty"`
}

// metricsJSON converts the checker's metrics into the wire form.
func metricsJSON(m *verify.ToleranceMetrics) *ToleranceMetrics {
	if m == nil {
		return nil
	}
	out := &ToleranceMetrics{
		Profile:            m.Profile,
		MaxDistance:        m.MaxDistance,
		MeanDistance:       m.MeanDistance,
		UnreachableStates:  m.UnreachableStates,
		WorstMeasured:      m.WorstMeasured,
		WorstSteps:         m.WorstSteps,
		MeanWorstSteps:     m.MeanWorstSteps,
		ExpectedMeasured:   m.ExpectedMeasured,
		ExpectedSteps:      m.ExpectedSteps,
		MeanExpectedSteps:  m.MeanExpectedSteps,
		ExpectedIterations: m.ExpectedIterations,
	}
	for _, c := range m.Constraints {
		out.Constraints = append(out.Constraints, ConstraintCostResult{
			Name: c.Name, Measured: c.Measured,
			WorstSteps: c.WorstSteps, StableStates: c.StableStates,
		})
	}
	return out
}

// SaboteurResult is the wire form of one adversarial fault-schedule
// search, present on a Result only when the job set options.saboteur.
// Additive under the schema_version policy: version 2 consumers that
// predate the saboteur simply ignore the block.
type SaboteurResult struct {
	// K and Objective echo the normalized search request.
	K         int    `json:"k"`
	Objective string `json:"objective"`
	// Cost is the incumbent schedule's objective value: worst-case
	// recovery steps after the schedule (recovery), or faults spent to
	// leave the span (escape, when Escaped).
	Cost int `json:"cost"`
	// Optimal reports that the search proved no k-bounded schedule beats
	// the incumbent (false only when the expansion budget ran out).
	Optimal bool `json:"optimal"`
	// Escaped reports that an escape-objective search left the span.
	Escaped bool `json:"escaped,omitempty"`
	// Expanded counts product-graph node expansions; Rounds counts
	// incumbent improvements of the iterate-and-exclude loop.
	Expanded int64 `json:"expanded"`
	Rounds   int   `json:"rounds"`
	// DeltaMax is the admissible bound's per-fault gain (recovery only).
	DeltaMax int `json:"delta_max,omitempty"`
	// Witness is the replayable schedule (cssim -replay), nil when no
	// fault does damage or no escape exists within the budget.
	Witness *saboteur.Witness `json:"witness,omitempty"`
}

// SaboteurResultFrom converts an engine result into the wire form shared
// by the job API and csverify -json.
func SaboteurResultFrom(r *saboteur.Result) *SaboteurResult {
	if r == nil {
		return nil
	}
	return &SaboteurResult{
		K: r.K, Objective: r.Objective, Cost: r.Cost,
		Optimal: r.Optimal, Escaped: r.Escaped,
		Expanded: r.Expanded, Rounds: r.Rounds, DeltaMax: r.DeltaMax,
		Witness: r.Witness,
	}
}

// Result is the machine-readable verdict of one verification: the JSON
// encoding shared by the service's job API, csverify -json, and
// gclrun -json, so every entry point emits the same shape.
type Result struct {
	// SchemaVersion is the wire-format version this result was rendered
	// with (see ResultSchemaVersion for the compatibility policy). Zero in
	// decoded JSON means a pre-versioning (version 1) producer.
	SchemaVersion int `json:"schema_version"`
	// Program is the checked program's name.
	Program string `json:"program"`
	// States is the size of the enumerated state space. When a symmetry
	// quotient was engaged it counts orbit representatives; FullStates then
	// carries the full product.
	States int64 `json:"states"`
	// SpaceMode names the state-space tier the check ran on ("quotient",
	// "spill"); omitted for the default full-product tier. Additive under
	// the schema_version policy.
	SpaceMode string `json:"space_mode,omitempty"`
	// FullStates is the full-product state count when a symmetry quotient
	// was engaged (zero otherwise). Additive.
	FullStates int64 `json:"full_states,omitempty"`
	// StatesS and StatesT count the states satisfying S and T.
	StatesS int64 `json:"states_s"`
	// StatesT counts the states satisfying the fault-span T.
	StatesT int64 `json:"states_t"`
	// Classification is "masking" or "nonmasking" (paper Section 3).
	Classification string `json:"classification"`
	// ClosureOK reports whether S and T are closed in the program.
	ClosureOK bool `json:"closure_ok"`
	// Closure details the first closure violation when ClosureOK is false.
	Closure string `json:"closure,omitempty"`
	// Unfair is the arbitrary-daemon convergence verdict.
	Unfair *Convergence `json:"unfair"`
	// Fair is the weakly-fair-daemon verdict, present only when the
	// arbitrary daemon failed (the paper's Section 8 remark).
	Fair *Convergence `json:"fair,omitempty"`
	// Daemon names the weakest daemon under which convergence holds:
	// "arbitrary" or "weakly_fair", empty when the program does not
	// converge at all. It makes the JSON agree with Report.Summary, which
	// always reports which daemon the verdict is for.
	Daemon string `json:"daemon,omitempty"`
	// Verdict is "satisfied" or "violated" (see Report.Tolerant).
	Verdict string `json:"verdict"`
	// Metrics is the quantitative tolerance analysis, present only when
	// the job selected the "metrics" analysis.
	Metrics *ToleranceMetrics `json:"metrics,omitempty"`
	// Saboteur is the adversarial fault-schedule search outcome, present
	// only when the job set options.saboteur.
	Saboteur *SaboteurResult `json:"saboteur,omitempty"`
	// Passes is the per-pass breakdown of the check: one span per
	// verifier pass with exact state counts and wall time (see
	// internal/obs and DESIGN §8). For a cached result it describes the
	// original check.
	Passes []obs.PassStat `json:"passes,omitempty"`
	// ElapsedMS is the checker's wall-clock time in milliseconds. For a
	// cached result it is the original check's time, not the lookup's.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Workers is the effective checker worker count.
	Workers int `json:"workers"`
	// Cached reports whether this result was served from the
	// content-addressed cache rather than a fresh verify.Check run.
	Cached bool `json:"cached,omitempty"`

	// extra preserves JSON fields this build does not recognize, so a
	// record written by a newer (additive) producer survives this build's
	// decode/re-encode round trip — the persistent store's read path
	// re-stamps and re-serves records, and the schema policy promises
	// additive fields are never silently dropped on the way through.
	extra map[string]json.RawMessage
}

// resultAlias strips Result's methods so the custom (un)marshalers can
// delegate to the standard struct encoding without recursing.
type resultAlias Result

// knownResultKeys is the JSON key set of the current schema, derived from
// the struct tags so it cannot drift from the field list.
var knownResultKeys = func() map[string]bool {
	keys := make(map[string]bool)
	t := reflect.TypeOf(Result{})
	for i := 0; i < t.NumField(); i++ {
		if name, _, _ := strings.Cut(t.Field(i).Tag.Get("json"), ","); name != "" && name != "-" {
			keys[name] = true
		}
	}
	return keys
}()

// UnmarshalJSON decodes the known schema and stashes every unrecognized
// top-level field, so future additive blocks round-trip losslessly
// through this build's cache and store.
func (r *Result) UnmarshalJSON(data []byte) error {
	var a resultAlias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	for key := range raw {
		if knownResultKeys[key] {
			delete(raw, key)
		}
	}
	if len(raw) == 0 {
		raw = nil
	}
	*r = Result(a)
	r.extra = raw
	return nil
}

// MarshalJSON re-emits the preserved unknown fields alongside the known
// schema. Known fields always win a name collision, so re-stamped values
// (schema_version, cached) are never shadowed by a stale preserved copy.
func (r Result) MarshalJSON() ([]byte, error) {
	base, err := json.Marshal(resultAlias(r))
	if err != nil || len(r.extra) == 0 {
		return base, err
	}
	var merged map[string]json.RawMessage
	if err := json.Unmarshal(base, &merged); err != nil {
		return nil, err
	}
	for key, val := range r.extra {
		if !knownResultKeys[key] {
			merged[key] = val
		}
	}
	return json.Marshal(merged)
}

func convergenceJSON(r *verify.ConvergenceResult) *Convergence {
	if r == nil {
		return nil
	}
	c := &Convergence{Converges: r.Converges, Fair: r.Fair, Summary: r.Summary()}
	if r.Converges && !r.Fair {
		c.WorstSteps = r.WorstSteps
	}
	return c
}

// ResultFromReport converts a verify.Check report into the shared wire
// encoding. name overrides the program name recorded on the result (pass
// "" to keep the report's space program name implicit — callers always
// know the name they checked).
func ResultFromReport(name string, rep *verify.Report) *Result {
	res := &Result{
		SchemaVersion:  ResultSchemaVersion,
		Program:        name,
		States:         rep.Space.Count,
		StatesS:        rep.Space.CountS(),
		StatesT:        rep.Space.CountT(),
		Classification: rep.Classification.String(),
		ClosureOK:      rep.Closure == nil,
		Unfair:         convergenceJSON(rep.Unfair),
		Fair:           convergenceJSON(rep.Fair),
		ElapsedMS:      float64(rep.Elapsed) / float64(time.Millisecond),
		Workers:        rep.Options.Workers,
	}
	if rep.Closure != nil {
		res.Closure = rep.Closure.Error()
	}
	if mode := rep.Space.Mode(); mode != verify.SpaceFull {
		res.SpaceMode = mode.String()
	}
	if rep.Space.FullCount != rep.Space.Count {
		res.FullStates = rep.Space.FullCount
	}
	switch {
	case rep.Unfair != nil && rep.Unfair.Converges:
		res.Daemon = DaemonArbitrary
	case rep.Fair != nil && rep.Fair.Converges:
		res.Daemon = DaemonWeaklyFair
	}
	res.Passes = rep.PassStats()
	res.Metrics = metricsJSON(rep.Metrics)
	if rep.Tolerant() {
		res.Verdict = VerdictSatisfied
	} else {
		res.Verdict = VerdictViolated
	}
	return res
}

// clone returns a shallow copy so per-response mutation (the Cached flag)
// never touches the cached canonical value.
func (r *Result) clone() *Result {
	cp := *r
	return &cp
}
