package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"nonmask/internal/obs"
)

// The SSE layer surfaces the event bus over HTTP:
//
//	GET /v1/jobs/{id}/events     one job's stream (ends after its terminal event)
//	GET /v1/batches/{id}/events  one batch's stream (ends after its terminal event)
//	GET /v1/events?types=a,b     the operator firehose across every source
//
// Frames follow the text/event-stream format: "id:" carries the event's
// sequence number (per-source for job/batch streams, bus-global for the
// firehose) so a dropped client resumes exactly via the Last-Event-ID
// header, "event:" the event type, "data:" the JSON-encoded obs.Event.
// Comment lines (": heartbeat") flow at the configured interval to keep
// idle streams alive through proxies. A subscriber attaching at any point
// first drains the stream's retained history, then tails live — replay
// and registration are atomic on the bus, so the sequence a late
// subscriber sees is identical to what a from-the-start one saw.

// sseConn wraps a flushable response writer with event-stream framing.
type sseConn struct {
	w http.ResponseWriter
	f http.Flusher
}

// newSSEConn negotiates the stream: it needs a flushable writer (the
// net/http server and httptest recorders both are).
func newSSEConn(w http.ResponseWriter) (*sseConn, bool) {
	f, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	f.Flush()
	return &sseConn{w: w, f: f}, true
}

// event writes one framed event and flushes it out.
func (c *sseConn) event(id uint64, ev obs.Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(c.w, "id: %d\nevent: %s\ndata: %s\n\n", id, ev.Type, data); err != nil {
		return err
	}
	c.f.Flush()
	return nil
}

// comment writes a keepalive comment frame.
func (c *sseConn) comment(text string) error {
	if _, err := fmt.Fprintf(c.w, ": %s\n\n", text); err != nil {
		return err
	}
	c.f.Flush()
	return nil
}

// lastEventID parses the SSE resume position: the Last-Event-ID header
// (set by browsers and the typed client on reconnect), overridable by an
// ?after= query parameter for plain curl use.
func lastEventID(r *http.Request) (uint64, error) {
	raw := r.Header.Get("Last-Event-ID")
	if q := r.URL.Query().Get("after"); q != "" {
		raw = q
	}
	if raw == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad event id %q: want an unsigned integer", raw)
	}
	return n, nil
}

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.proxyByID(w, r, id) {
		return
	}
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	after, err := lastEventID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	history, sub := j.events.Subscribe(after, s.cfg.EventBuffer)
	defer sub.Close()
	s.streamSSE(w, r, history, sub, perSourceID, func(ev obs.Event) bool {
		return ev.Type == obs.EventJob && JobState(ev.State).terminal()
	})
}

func (s *Server) handleBatchEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.proxyByID(w, r, id) {
		return
	}
	s.mu.Lock()
	b, ok := s.batches[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no batch %q", id)
		return
	}
	after, err := lastEventID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	history, sub := b.events.Subscribe(after, s.cfg.EventBuffer)
	defer sub.Close()
	s.streamSSE(w, r, history, sub, perSourceID, func(ev obs.Event) bool {
		return ev.Type == obs.EventBatch && BatchState(ev.State).terminal()
	})
}

func (s *Server) handleFirehose(w http.ResponseWriter, r *http.Request) {
	after, err := lastEventID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var types []obs.EventType
	if raw := r.URL.Query().Get("types"); raw != "" {
		for _, t := range strings.Split(raw, ",") {
			et := obs.EventType(strings.TrimSpace(t))
			if !obs.KnownEventType(et) {
				writeError(w, http.StatusBadRequest, "unknown event type %q", et)
				return
			}
			types = append(types, et)
		}
	}
	history, sub := s.bus.Subscribe(after, s.cfg.EventBuffer, types...)
	defer sub.Close()
	// The firehose has no terminal event of its own; it runs until the
	// client disconnects or the bus closes on drain.
	s.streamSSE(w, r, history, sub, busID, nil)
}

// perSourceID and busID select which sequence number frames an SSE id:
// job and batch streams resume by their own sequence, the firehose by the
// bus-global one.
func perSourceID(ev obs.Event) uint64 { return ev.Seq }
func busID(ev obs.Event) uint64       { return ev.BusSeq }

// streamSSE drains the replayed history, then tails the subscription:
// the shared back half of the three event handlers. done, when non-nil,
// marks the stream's terminal event — the handler writes it and returns,
// closing the response. Teardown paths: client disconnect (request
// context), bus shutdown (subscription channel closes), terminal event.
func (s *Server) streamSSE(w http.ResponseWriter, r *http.Request, history []obs.Event,
	sub *obs.Subscription, id func(obs.Event) uint64, done func(obs.Event) bool) {
	conn, ok := newSSEConn(w)
	if !ok {
		return
	}
	for _, ev := range history {
		if err := conn.event(id(ev), ev); err != nil {
			return
		}
		if done != nil && done(ev) {
			return
		}
	}
	heartbeat := time.NewTicker(s.cfg.Heartbeat)
	defer heartbeat.Stop()
	ctx := r.Context()
	for {
		select {
		case ev, open := <-sub.Events():
			if !open {
				return
			}
			if err := conn.event(id(ev), ev); err != nil {
				return
			}
			if done != nil && done(ev) {
				return
			}
		case <-heartbeat.C:
			if err := conn.comment("heartbeat"); err != nil {
				return
			}
		case <-ctx.Done():
			return
		}
	}
}

// writeEventMetrics renders the bus's fan-out counters.
func (s *Server) writeEventMetrics(w io.Writer) {
	st := s.bus.Stats()
	fmt.Fprintf(w, "# HELP csserved_events_subscribers Currently attached event-stream subscribers.\n# TYPE csserved_events_subscribers gauge\ncsserved_events_subscribers %d\n", st.Subscribers)
	fmt.Fprintf(w, "# HELP csserved_events_emitted_total Events delivered into subscriber buffers (zero while nobody listens).\n# TYPE csserved_events_emitted_total counter\ncsserved_events_emitted_total %d\n", st.Emitted)
	fmt.Fprintf(w, "# HELP csserved_events_dropped_total Events lost at full subscriber buffers (slow consumers).\n# TYPE csserved_events_dropped_total counter\ncsserved_events_dropped_total %d\n", st.Dropped)
}
