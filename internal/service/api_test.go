package service_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nonmask/internal/protocols/registry"
	"nonmask/internal/service"
	"nonmask/internal/service/client"
)

// newTestServer starts a service on an httptest listener and returns a
// typed client for it.
func newTestServer(t *testing.T, cfg service.Config) (*service.Server, *client.Client) {
	t.Helper()
	srv := service.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, client.New(ts.URL, ts.Client())
}

func metric(t *testing.T, c *client.Client, name string) float64 {
	t.Helper()
	text, err := c.MetricsText(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	v, ok := client.MetricValue(text, name)
	if !ok {
		t.Fatalf("metric %s missing from exposition:\n%s", name, text)
	}
	return v
}

// TestResubmitIsOneCheckOneCacheHit is the acceptance scenario: submitting
// the same program twice yields exactly one verify.Check execution and one
// cache hit, observed through /metrics.
func TestResubmitIsOneCheckOneCacheHit(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()

	spec := service.JobSpec{Protocol: "tokenring-ring", Params: registry.Params{N: 3, K: 5}}
	st, err := c.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone || st.Result == nil {
		t.Fatalf("first run: %+v", st)
	}
	if st.Result.Verdict != service.VerdictSatisfied {
		t.Fatalf("verdict %q, want satisfied", st.Result.Verdict)
	}
	if st.Cached {
		t.Fatal("first run claimed to be cached")
	}

	st2, err := c.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || !st2.Result.Cached {
		t.Fatalf("second run not served from cache: %+v", st2)
	}
	if got := metric(t, c, "csserved_jobs_completed_total"); got != 1 {
		t.Fatalf("jobs_completed_total = %v, want 1", got)
	}
	if got := metric(t, c, "csserved_cache_hits_total"); got != 1 {
		t.Fatalf("cache_hits_total = %v, want 1", got)
	}
	if got := metric(t, c, "csserved_cache_misses_total"); got != 1 {
		t.Fatalf("cache_misses_total = %v, want 1", got)
	}
	if got := metric(t, c, "csserved_verdict_satisfied_total"); got != 1 {
		t.Fatalf("verdict_satisfied_total = %v, want 1", got)
	}
}

func TestHTTPStatusCodes(t *testing.T) {
	srv, c := newTestServer(t, service.Config{})
	ctx := context.Background()

	// Bad spec → 400 with the service's error envelope.
	_, err := c.Submit(ctx, service.JobSpec{Protocol: "no-such"})
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.Code != http.StatusBadRequest {
		t.Fatalf("unknown protocol: %v", err)
	}
	if !strings.Contains(apiErr.Msg, "unknown protocol") {
		t.Fatalf("error envelope lost the detail: %q", apiErr.Msg)
	}

	// Unknown job → 404.
	_, err = c.Job(ctx, "j-12345678", 0)
	if !asAPIError(err, &apiErr) || apiErr.Code != http.StatusNotFound {
		t.Fatalf("unknown job: %v", err)
	}

	// Bad wait parameter → 400 (raw request: the typed client cannot send
	// a malformed duration).
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/j-12345678?wait=forever", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad wait: code %d, want 400", rec.Code)
	}

	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
}

func asAPIError(err error, out **client.APIError) bool {
	if e, ok := err.(*client.APIError); ok {
		*out = e
		return true
	}
	return false
}

func TestProtocolCatalog(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	infos, err := c.Protocols(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(registry.Entries()) {
		t.Fatalf("catalog lists %d protocols, registry has %d", len(infos), len(registry.Entries()))
	}
	seen := map[string]bool{}
	for _, info := range infos {
		seen[info.Name] = true
		if info.Description == "" {
			t.Errorf("%s: empty description", info.Name)
		}
	}
	for _, name := range []string{"diffusing", "tokenring-ring", "threestate", "composed"} {
		if !seen[name] {
			t.Errorf("catalog missing %s", name)
		}
	}
}

func TestClientListsJobs(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()
	if _, err := c.Run(ctx, service.JobSpec{Protocol: "threestate", Params: registry.Params{N: 5}}); err != nil {
		t.Fatal(err)
	}
	page, err := c.Jobs(ctx, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 1 || len(page.Jobs) != 1 {
		t.Fatalf("page = %+v, want one job", page)
	}
	if page.Jobs[0].State != service.StateDone {
		t.Fatalf("listed job state = %s, want done", page.Jobs[0].State)
	}
}

func TestLongPollWait(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	ctx := context.Background()
	st, err := c.Submit(ctx, service.JobSpec{Protocol: "threestate", Params: registry.Params{N: 6}})
	if err != nil {
		t.Fatal(err)
	}
	// A long-poll with a generous window returns the terminal state in one
	// round trip.
	st, err = c.Job(ctx, st.ID, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone {
		t.Fatalf("long-poll returned %s", st.State)
	}
}

func TestConcurrentMixedLoad(t *testing.T) {
	// A small always-accepting config: big queue, several executors.
	_, c := newTestServer(t, service.Config{QueueSize: 256, Executors: 4})
	ctx := context.Background()
	specs := []service.JobSpec{
		{Protocol: "tokenring-ring", Params: registry.Params{N: 2, K: 4}},
		{Protocol: "threestate", Params: registry.Params{N: 4}},
		{Protocol: "fourstate", Params: registry.Params{N: 4}},
		{Protocol: "xyz"},
	}
	const loops = 8
	errs := make(chan error, loops*len(specs))
	for i := 0; i < loops; i++ {
		for _, spec := range specs {
			spec := spec
			go func() {
				st, err := c.Run(ctx, spec)
				if err == nil && st.State != service.StateDone {
					err = &client.APIError{Code: 500, Msg: "state " + string(st.State) + ": " + st.Error}
				}
				errs <- err
			}()
		}
	}
	for i := 0; i < loops*len(specs); i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Every spec ran at least once and the rest hit the cache or coalesced
	// onto an identical in-flight job; exactly how many of each is
	// scheduling-dependent, but the three outcomes partition the
	// submissions and misses ≥ len(specs).
	hits := metric(t, c, "csserved_cache_hits_total")
	misses := metric(t, c, "csserved_cache_misses_total")
	coalesced := metric(t, c, "csserved_jobs_coalesced_total")
	if hits+misses+coalesced != loops*float64(len(specs)) {
		t.Fatalf("hits %v + misses %v + coalesced %v != %d submissions",
			hits, misses, coalesced, loops*len(specs))
	}
	if misses < float64(len(specs)) {
		t.Fatalf("misses %v < %d distinct specs", misses, len(specs))
	}
}

// TestProtocolsAdvertiseAnalyses: every catalog row must list its
// supported analyses/job types so clients can discover the saboteur
// without probing 400s.
func TestProtocolsAdvertiseAnalyses(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	entries, err := c.Protocols(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty catalog")
	}
	for _, e := range entries {
		found := map[string]bool{}
		for _, a := range e.Analyses {
			found[a] = true
		}
		for _, want := range []string{"verdict", "metrics", "saboteur"} {
			if !found[want] {
				t.Errorf("%s: analyses %v missing %q", e.Name, e.Analyses, want)
			}
		}
	}
}
