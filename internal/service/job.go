package service

import (
	"fmt"
	"sync"
	"time"

	"nonmask/internal/constraint"
	"nonmask/internal/gcl"
	"nonmask/internal/obs"
	"nonmask/internal/program"
	"nonmask/internal/protocols/registry"
	"nonmask/internal/saboteur"
	"nonmask/internal/verify"
)

// JobSpec is the submission payload of POST /v1/jobs. Exactly one of
// Source (GCL program text) or Protocol (catalog name, with Params) must
// be set.
type JobSpec struct {
	// Source is a guarded-command program in the paper's Section 2
	// notation, as accepted by internal/gcl.
	Source string `json:"source,omitempty"`
	// Protocol names a built-in catalog instance (see GET /v1/protocols).
	Protocol string `json:"protocol,omitempty"`
	// Params sizes the catalog instance; defaults are filled per protocol.
	Params registry.Params `json:"params,omitempty"`
	// Options tunes the check.
	Options JobOptions `json:"options,omitempty"`
}

// JobOptions is the wire form of the checker options a job may set.
type JobOptions struct {
	// Workers shards the checker's passes (0 = all CPUs).
	Workers int `json:"workers,omitempty"`
	// MaxStates caps the enumerated state space (0 = server default).
	MaxStates int64 `json:"max_states,omitempty"`
	// Strategy is "projected" (default) or "exhaustive".
	Strategy string `json:"strategy,omitempty"`
	// DeadlineMS bounds the check's wall-clock time in milliseconds
	// (0 = server default; capped at the server's maximum).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// SpaceMode pins the state-space tier: "auto" (default — escalate from
	// the full product to a symmetry quotient to disk spill as the instance
	// outgrows RAM), "full", "quotient", or "spill". "quotient" requires a
	// catalog instance that advertises a symmetry group and is rejected for
	// GCL source jobs, for saboteur jobs (the witness search runs on the
	// concrete graph) and for metrics jobs on layered designs (per-constraint
	// recovery costs are not symmetry-invariant; see registry.Instance).
	SpaceMode string `json:"space_mode,omitempty"`
	// Analyses selects what the job computes. "verdict" (the closure /
	// convergence / classification check) is always on and is the default
	// when the list is empty; adding "metrics" additionally runs the
	// quantitative tolerance analyses and attaches the result's "metrics"
	// block. Unknown analysis names are rejected at submission (400).
	Analyses []string `json:"analyses,omitempty"`
	// Saboteur, when set, runs the adversarial fault-schedule search
	// after the check and attaches the result's "saboteur" block with a
	// replayable witness. Requires an enumerable instance; non-enumerable
	// submissions are rejected with 400 naming the advertised bound.
	Saboteur *SaboteurOptions `json:"saboteur,omitempty"`
	// Priority is the admission class: "" or "normal" (default), or
	// "high". High-priority jobs go to a queue executors drain first, so
	// they preempt queue *order* — running checks are never interrupted.
	// Priority does not enter the content-address: the verdict is the
	// same either way, so both classes share cache entries.
	Priority string `json:"priority,omitempty"`
}

// SaboteurOptions is the wire form of the saboteur search knobs
// (internal/saboteur.Options).
type SaboteurOptions struct {
	// K is the fault budget, in [1, 16].
	K int `json:"k"`
	// Objective is "recovery" (default) or "escape".
	Objective string `json:"objective,omitempty"`
	// Budget caps product-graph node expansions (0 = engine default).
	Budget int64 `json:"budget,omitempty"`
}

// engineOptions validates the wire block and resolves the engine's
// defaults, so submissions fail with 400 on a bad fault budget or
// objective and the cache key sees one canonical spelling.
func (o *SaboteurOptions) engineOptions() (*saboteur.Options, error) {
	so, err := saboteur.Options{K: o.K, Objective: o.Objective, Budget: o.Budget}.Normalized()
	if err != nil {
		return nil, err
	}
	return &so, nil
}

// Analysis names accepted in JobOptions.Analyses.
const (
	// AnalysisVerdict is the boolean closure/convergence check; always
	// computed, listing it is allowed but redundant.
	AnalysisVerdict = "verdict"
	// AnalysisMetrics adds the quantitative tolerance metrics: distance
	// profile, worst/expected stabilization times, per-constraint costs.
	AnalysisMetrics = "metrics"
)

// JobState enumerates a job's lifecycle.
type JobState string

// Job lifecycle states.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Terminal reports whether the state is final — exported for stream
// consumers deciding when a job's event feed is complete.
func (s JobState) Terminal() bool { return s.terminal() }

// JobStatus is the wire form of a job returned by the submission and
// status endpoints.
type JobStatus struct {
	// ID addresses the job in GET /v1/jobs/{id}.
	ID string `json:"id"`
	// State is the lifecycle state.
	State JobState `json:"state"`
	// Key is the job's content-address (cache fingerprint).
	Key string `json:"key"`
	// Program is the compiled program's name.
	Program string `json:"program"`
	// Cached reports that the result was served from the cache without a
	// fresh check.
	Cached bool `json:"cached,omitempty"`
	// Coalesced reports that the submission attached to an identical
	// in-flight job instead of running its own check; the result (when
	// terminal) is the leader's.
	Coalesced bool `json:"coalesced,omitempty"`
	// Node names the cluster node holding this job record (empty on a
	// single-node server). Forwarded submissions return the owner's node.
	Node string `json:"node,omitempty"`
	// Tenant is the principal the job is accounted to (empty without
	// bearer-token auth).
	Tenant string `json:"tenant,omitempty"`
	// Error is the failure detail when State is "failed".
	Error string `json:"error,omitempty"`
	// Result is the verdict when State is "done".
	Result *Result `json:"result,omitempty"`
	// SubmittedAt stamps admission.
	SubmittedAt time.Time `json:"submitted_at"`
	// FinishedAt stamps the terminal transition (zero until then).
	FinishedAt time.Time `json:"finished_at"`
}

// compiled is a validated, runnable job payload: the checkable triple plus
// its content-address and effective options. Compilation (GCL parse/compile
// or catalog build) happens synchronously at submission so malformed jobs
// fail with 400 instead of occupying the queue.
type compiled struct {
	name string
	prog *program.Program
	s, t *program.Predicate
	key  string
	opts verify.Options
	// constraints are the invariant conjuncts the metrics analyses break
	// recovery costs down by (empty without a layered design, or when the
	// job did not select metrics).
	constraints []verify.ConstraintSpec
	// protocol and params identify a catalog job for batch curve
	// aggregation (empty/zero for GCL source jobs).
	protocol string
	params   registry.Params
	// saboteur is the normalized adversarial-search request, nil for
	// verdict-only jobs.
	saboteur *saboteur.Options
	// spec is the submission as received, retained so a cluster node can
	// forward it to the owner verbatim (same spec → same fingerprint).
	spec JobSpec
	// priority routes the job to the high-priority queue.
	priority bool
	// tenant is the principal the job is accounted to ("" untenanted).
	tenant string
}

// verifyOptions resolves wire options against server defaults.
func (o JobOptions) verifyOptions(cfg Config) (verify.Options, error) {
	opts := verify.Options{Workers: o.Workers, MaxStates: o.MaxStates}
	if opts.Workers == 0 {
		opts.Workers = cfg.CheckWorkers
	}
	if opts.MaxStates == 0 {
		opts.MaxStates = cfg.MaxStates
	}
	switch o.Strategy {
	case "", "projected":
		opts.Strategy = verify.Projected
	case "exhaustive":
		opts.Strategy = verify.Exhaustive
	default:
		return opts, fmt.Errorf("unknown strategy %q (want projected | exhaustive)", o.Strategy)
	}
	deadline := time.Duration(o.DeadlineMS) * time.Millisecond
	if deadline <= 0 || (cfg.MaxDeadline > 0 && deadline > cfg.MaxDeadline) {
		deadline = cfg.MaxDeadline
	}
	opts.Deadline = deadline
	mode, err := verify.ParseSpaceMode(o.SpaceMode)
	if err != nil {
		return opts, err
	}
	opts.SpaceMode = mode
	// The spill directory is server policy, never client input: a job may
	// request the spill tier, but where segment and run files land is the
	// operator's -spill-dir.
	opts.SpillDir = cfg.SpillDir
	for _, a := range o.Analyses {
		switch a {
		case AnalysisVerdict:
			// Always computed.
		case AnalysisMetrics:
			opts.Metrics = true
		default:
			return opts, fmt.Errorf("unknown analysis %q (want %s | %s)",
				a, AnalysisVerdict, AnalysisMetrics)
		}
	}
	return opts, nil
}

// compileSpec validates and compiles a submission into a runnable job.
func compileSpec(spec JobSpec, cfg Config) (*compiled, error) {
	opts, err := spec.Options.verifyOptions(cfg)
	if err != nil {
		return nil, err
	}
	if err := validateStaticOptions(opts); err != nil {
		return nil, err
	}
	var sab *saboteur.Options
	if spec.Options.Saboteur != nil {
		if sab, err = spec.Options.Saboteur.engineOptions(); err != nil {
			return nil, err
		}
	}
	var priority bool
	switch spec.Options.Priority {
	case "", "normal":
	case "high":
		priority = true
	default:
		return nil, fmt.Errorf("unknown priority %q (want normal | high)", spec.Options.Priority)
	}
	switch {
	case spec.Source != "" && spec.Protocol != "":
		return nil, fmt.Errorf("job sets both source and protocol; pick one")
	case spec.Source != "":
		if opts.SpaceMode == verify.SpaceQuotient {
			return nil, fmt.Errorf("space_mode=quotient requires a catalog protocol that advertises a symmetry group; GCL source jobs have none")
		}
		file, err := gcl.Parse(spec.Source)
		if err != nil {
			return nil, fmt.Errorf("parse: %w", err)
		}
		// Content-address the canonical pretty-printed form, so
		// formatting- or comment-only variations share a cache entry.
		canonical := gcl.Print(file)
		m, err := gcl.Compile(file)
		if err != nil {
			return nil, fmt.Errorf("compile: %w", err)
		}
		if sab != nil {
			// The saboteur enumerates the full space; reject instances
			// over the effective cap at submission, like the catalog path.
			max := opts.MaxStates
			if max <= 0 {
				max = verify.DefaultMaxStates
			}
			if count, ok := m.Program.Schema.StateCount(); !ok || count > max {
				return nil, fmt.Errorf("saboteur requires an enumerable instance: %d states exceeds the advertised bound of %d states", count, max)
			}
		}
		return &compiled{
			name:        m.Name,
			prog:        m.Program,
			s:           m.S,
			t:           m.T,
			key:         fingerprintSource(canonical, opts, sab),
			opts:        opts,
			constraints: specsFromSet(m.Set),
			saboteur:    sab,
			spec:        spec,
			priority:    priority,
		}, nil
	case spec.Protocol != "":
		params, err := registry.Normalize(spec.Protocol, spec.Params)
		if err != nil {
			return nil, err
		}
		// Enforce the catalog's advertised parameter bounds before the job
		// can occupy a queue slot; the error names the advertised range.
		if err := registry.Validate(spec.Protocol, params); err != nil {
			return nil, err
		}
		if sab != nil {
			// The registry advertises which analyses each entry supports
			// and checks enumerability against the effective state cap;
			// its error names the advertised bound.
			if err := registry.ValidateAnalyses(spec.Protocol, params,
				[]string{registry.AnalysisSaboteur}, opts.MaxStates); err != nil {
				return nil, err
			}
		}
		inst, err := registry.Build(spec.Protocol, params)
		if err != nil {
			return nil, err
		}
		constraints := registry.ConstraintSpecs(inst)
		// Attach the advertised symmetry group only to jobs the quotient is
		// sound for: the saboteur searches the concrete transition graph
		// (its witness must replay on real states), and the per-constraint
		// recovery costs of layered designs are permuted — not preserved —
		// by the group (registry.Instance documents the boundary). Auto mode
		// silently stays on the full/spill ladder for those; an explicit
		// quotient request is rejected with the reason.
		sym := inst.Symmetry
		switch {
		case sab != nil:
			if opts.SpaceMode == verify.SpaceQuotient {
				return nil, fmt.Errorf("space_mode=quotient is incompatible with the saboteur: the fault-schedule witness must replay on concrete states, not orbit representatives")
			}
			sym = nil
		case opts.Metrics && len(constraints) > 0:
			if opts.SpaceMode == verify.SpaceQuotient {
				return nil, fmt.Errorf("space_mode=quotient is incompatible with analyses=metrics on a layered design: per-constraint recovery costs are not symmetry-invariant; use space_mode=full or drop metrics")
			}
			sym = nil
		}
		if opts.SpaceMode == verify.SpaceQuotient && sym == nil {
			return nil, fmt.Errorf("%s advertises no symmetry group; space_mode=quotient needs one", spec.Protocol)
		}
		opts.Symmetry = sym
		return &compiled{
			name:        inst.Name,
			prog:        inst.Program,
			s:           inst.S,
			t:           inst.T,
			key:         fingerprintProtocol(spec.Protocol, params, opts, sab),
			opts:        opts,
			constraints: constraints,
			protocol:    spec.Protocol,
			params:      params,
			saboteur:    sab,
			spec:        spec,
			priority:    priority,
		}, nil
	default:
		return nil, fmt.Errorf("job sets neither source nor protocol")
	}
}

// specsFromSet converts a compiled constraint decomposition into the
// metric engine's cost specs, in declaration order. Nil-safe: GCL modules
// without invariants (or with a bare program) yield no specs.
func specsFromSet(set *constraint.Set) []verify.ConstraintSpec {
	if set == nil {
		return nil
	}
	specs := make([]verify.ConstraintSpec, 0, len(set.Constraints))
	for _, c := range set.Constraints {
		specs = append(specs, verify.ConstraintSpec{Name: c.Pred.Name, Pred: c.Pred})
	}
	return specs
}

// validateStatic rejects option values that verify.Check would reject, so
// the error surfaces at submission (400) instead of execution (failed job).
func validateStaticOptions(o verify.Options) error {
	if o.MaxStates < 0 {
		return fmt.Errorf("negative max_states %d", o.MaxStates)
	}
	if o.Workers < 0 {
		return fmt.Errorf("negative workers %d", o.Workers)
	}
	return nil
}

// job is the server-side record of one submission.
type job struct {
	id string
	c  *compiled
	// node is the server's cluster node name (registerLocked stamps it).
	node string

	mu        sync.Mutex
	state     JobState
	cached    bool
	coalesced bool
	err       error
	result    *Result
	submitted time.Time
	finished  time.Time
	cancel    func() // non-nil while running; cancels the check context

	// followers are coalesced jobs waiting on this job's terminal
	// transition; they inherit it verbatim (single-flight).
	followers []*job

	// onTerminal, when non-nil, runs once after the terminal transition
	// (outside j.mu); the server uses it to release the job's in-flight
	// coalescing entry.
	onTerminal func()

	// events is the job's bus stream (registerLocked attaches it); its
	// sequence is the replayable event log SSE subscribers drain. Nil on
	// jobs never registered with a server (tests), which Publish tolerates.
	events *obs.Stream

	// done is closed on the terminal transition; long-polls wait on it.
	done chan struct{}
}

func newJob(id string, c *compiled, now time.Time) *job {
	return &job{id: id, c: c, state: StateQueued, submitted: now, done: make(chan struct{})}
}

// status snapshots the wire form.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Key:         j.c.key,
		Program:     j.c.name,
		Node:        j.node,
		Tenant:      j.c.tenant,
		Cached:      j.cached,
		Coalesced:   j.coalesced,
		SubmittedAt: j.submitted,
		FinishedAt:  j.finished,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.result != nil {
		r := j.result.clone()
		r.Cached = j.cached
		st.Result = r
	}
	return st
}

// transition moves the job to a terminal state exactly once and wakes
// long-polls. Coalesced followers inherit the same terminal state, and
// the server's in-flight entry (if any) is released. Returns false if the
// job was already terminal.
func (j *job) transition(state JobState, res *Result, err error, now time.Time) bool {
	j.mu.Lock()
	followers, ok := j.terminateLocked(state, res, err, now)
	j.mu.Unlock()
	if !ok {
		return false
	}
	j.settle(followers, state, res, err, now)
	return true
}

// terminateLocked applies the terminal transition with j.mu held and
// returns the coalesced followers to notify. Callers must hand them to
// settle after releasing j.mu — follower transitions take the followers'
// own locks, and the lock order is strictly leader before follower.
func (j *job) terminateLocked(state JobState, res *Result, err error, now time.Time) ([]*job, bool) {
	if j.state.terminal() {
		return nil, false
	}
	j.state = state
	j.result = res
	j.err = err
	j.finished = now
	j.cancel = nil
	followers := j.followers
	j.followers = nil
	ev := obs.Event{Type: obs.EventJob, State: string(state)}
	switch {
	case err != nil:
		ev.Detail = err.Error()
	case res != nil:
		ev.Detail = res.Verdict
		if j.cached {
			ev.Detail += " (cached)"
		} else if j.coalesced {
			ev.Detail += " (coalesced)"
		}
	}
	j.events.Publish(ev)
	close(j.done)
	return followers, true
}

// settle runs the post-terminal notifications outside j.mu: followers are
// completed with the leader's terminal state, then the server-side hook
// (the in-flight coalescing entry) is released.
func (j *job) settle(followers []*job, state JobState, res *Result, err error, now time.Time) {
	for _, f := range followers {
		f.transition(state, res, err, now)
	}
	if j.onTerminal != nil {
		j.onTerminal()
	}
}

// attachFollower links a coalesced submission to this job. A leader that
// already reached a terminal state completes the follower immediately;
// otherwise the follower inherits the leader's eventual transition.
func (j *job) attachFollower(f *job, now time.Time) {
	j.mu.Lock()
	if j.state.terminal() {
		state, res, err := j.state, j.result, j.err
		j.mu.Unlock()
		f.transition(state, res, err, now)
		return
	}
	j.followers = append(j.followers, f)
	j.mu.Unlock()
}

// markRunning records the executor pickup and its cancel hook; it returns
// false when the job was canceled while queued.
func (j *job) markRunning(cancel func()) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.cancel = cancel
	j.events.Publish(obs.Event{Type: obs.EventJob, State: string(StateRunning)})
	return true
}

// requestCancel cancels a queued job immediately, or interrupts a running
// one via its check context. Terminal jobs are left alone.
func (j *job) requestCancel(now time.Time) (affected bool) {
	j.mu.Lock()
	if j.state == StateQueued {
		// Route through the shared terminal path so coalesced followers
		// are canceled with their leader and the in-flight entry drops.
		err := fmt.Errorf("canceled while queued")
		followers, _ := j.terminateLocked(StateCanceled, nil, err, now)
		j.mu.Unlock()
		j.settle(followers, StateCanceled, nil, err, now)
		return true
	}
	cancel := j.cancel
	running := j.state == StateRunning
	j.mu.Unlock()
	if running && cancel != nil {
		cancel()
	}
	return running
}
