package service

import "sync"

// cache is the content-addressed result store: fingerprint → Result. It is
// bounded; when full, the oldest entry is evicted (insertion-order FIFO —
// results are immutable and cheap to recompute relative to tracking
// recency on the read path).
type cache struct {
	mu    sync.RWMutex
	max   int
	m     map[string]*Result
	order []string
}

func newCache(max int) *cache {
	if max <= 0 {
		max = defaultCacheSize
	}
	return &cache{max: max, m: make(map[string]*Result, max)}
}

// get returns the cached result for key, or nil.
func (c *cache) get(key string) *Result {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m[key]
}

// put stores a result, evicting the oldest entry when full. Re-putting an
// existing key overwrites in place (results for a key are identical by
// construction, so which copy wins is irrelevant).
func (c *cache) put(key string, r *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.m[key]; !exists {
		for len(c.order) >= c.max {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.m, oldest)
		}
		c.order = append(c.order, key)
	}
	c.m[key] = r
}

// len returns the number of cached results.
func (c *cache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
