package service

import (
	"encoding/json"
	"fmt"
	"sync"

	"nonmask/internal/store"
)

// cache is the content-addressed result store: fingerprint → Result. The
// in-memory map is bounded; when full, the oldest entry is evicted
// (insertion-order FIFO — results are immutable and cheap to recompute
// relative to tracking recency on the read path).
//
// With a persistent backend (csserved -store), the map becomes a
// read-through/write-through front: puts append the result to the
// backend's crash-safe log, and a memory miss falls through to the
// backend, so warm verdicts survive both FIFO eviction and restarts.
// Admission and coalescing logic never sees the difference — a backend
// hit looks exactly like a memory hit, one layer slower.
type cache struct {
	mu      sync.RWMutex
	max     int
	m       map[string]*Result
	order   []string
	backend *store.Store // nil without -store
}

func newCache(max int, backend *store.Store) *cache {
	if max <= 0 {
		max = defaultCacheSize
	}
	return &cache{max: max, m: make(map[string]*Result, max), backend: backend}
}

// get returns the cached result for key, or nil. The boolean reports that
// the hit was served by the persistent backend rather than memory (the
// result is promoted into the memory tier on the way out).
func (c *cache) get(key string) (*Result, bool) {
	c.mu.RLock()
	r := c.m[key]
	c.mu.RUnlock()
	if r != nil || c.backend == nil {
		return r, false
	}
	raw, ok := c.backend.Get(key)
	if !ok {
		return nil, false
	}
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		// A decodable-but-wrong record cannot happen short of schema drift
		// across versions; treat it as a miss and let a fresh check
		// overwrite it.
		return nil, false
	}
	// Records persisted before the wire format was versioned carry no
	// schema_version; the compatibility policy (ResultSchemaVersion) says
	// they are version 1. Verdict-only fields are unchanged since v1, so
	// the record stays servable — it is re-stamped rather than discarded.
	if res.SchemaVersion == 0 {
		res.SchemaVersion = 1
	}
	c.mu.Lock()
	c.insertLocked(key, &res)
	c.mu.Unlock()
	return &res, true
}

// put stores a result in memory and, when a backend is configured,
// appends it to the persistent log (write-through). The returned error is
// the backend's only — the memory tier always succeeds.
func (c *cache) put(key string, r *Result) error {
	c.mu.Lock()
	c.insertLocked(key, r)
	c.mu.Unlock()
	if c.backend == nil {
		return nil
	}
	raw, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("encode result: %w", err)
	}
	return c.backend.Put(key, raw)
}

// insertLocked adds an entry to the memory tier, evicting the oldest when
// full (c.mu held). Re-putting an existing key overwrites in place
// (results for a key are identical by construction, so which copy wins is
// irrelevant).
func (c *cache) insertLocked(key string, r *Result) {
	if _, exists := c.m[key]; !exists {
		for len(c.order) >= c.max {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.m, oldest)
		}
		c.order = append(c.order, key)
	}
	c.m[key] = r
}

// len returns the number of results in the memory tier.
func (c *cache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
