package service

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"nonmask/internal/protocols/registry"
	"nonmask/internal/verify"
)

func ringSpec(n, k int) JobSpec {
	return JobSpec{Protocol: "tokenring-ring", Params: registry.Params{N: n, K: k}}
}

func waitTerminal(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	st, ok := s.WaitJob(context.Background(), id, 10*time.Second)
	if !ok {
		t.Fatalf("job %s disappeared", id)
	}
	if !st.State.terminal() {
		t.Fatalf("job %s still %s after wait", id, st.State)
	}
	return st
}

func TestSubmitRunsAndCaches(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())

	st, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached {
		t.Fatal("first submission reported cached")
	}
	st = waitTerminal(t, s, st.ID)
	if st.State != StateDone || st.Result == nil {
		t.Fatalf("job ended %s (err %q)", st.State, st.Error)
	}
	if st.Result.Verdict != VerdictSatisfied {
		t.Fatalf("verdict %q, want satisfied", st.Result.Verdict)
	}

	// Same instance again: served from cache, no new check.
	st2, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.State != StateDone || st2.Result == nil || !st2.Result.Cached {
		t.Fatalf("second submission not a cache hit: %+v", st2)
	}
	if st2.Key != st.Key {
		t.Fatalf("cache keys differ: %s vs %s", st2.Key, st.Key)
	}
	if got := s.metrics.Completed.Load(); got != 1 {
		t.Fatalf("completed = %d, want 1 (cache hit must not re-run the check)", got)
	}
	if got := s.metrics.CacheHits.Load(); got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}

	// Defaulted parameters share the cache line with their explicit
	// spelling (registry normalization): K=0 means N+2.
	st3, err := s.Submit(JobSpec{Protocol: "tokenring-ring", Params: registry.Params{N: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !st3.Cached {
		t.Fatalf("normalized-params submission missed the cache: key %s vs %s", st3.Key, st.Key)
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	for name, spec := range map[string]JobSpec{
		"empty":         {},
		"both":          {Source: "program p; var x : 0..1;", Protocol: "xyz"},
		"unknown-proto": {Protocol: "no-such"},
		"bad-strategy":  {Protocol: "xyz", Options: JobOptions{Strategy: "psychic"}},
		"bad-source":    {Source: "this is not gcl"},
		"neg-workers":   {Protocol: "xyz", Options: JobOptions{Workers: -2}},
	} {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("%s: accepted", name)
		} else if errorCode(err) != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", name, errorCode(err))
		}
	}
}

func TestQueueOverflowRejectsWith429(t *testing.T) {
	// No executors: everything parks in the queue.
	s := New(Config{QueueSize: 2, Executors: -1})
	if _, err := s.Submit(ringSpec(2, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(ringSpec(3, 5)); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(ringSpec(4, 6))
	if err == nil {
		t.Fatal("third submission accepted past the queue bound")
	}
	if errorCode(err) != http.StatusTooManyRequests {
		t.Fatalf("overflow code %d, want 429", errorCode(err))
	}
	if got := s.metrics.Rejected.Load(); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	// A cache hit does not need a queue slot, so it is admitted even when
	// the queue is full (seed the cache directly: no executors running).
	key := mustKey(t, ringSpec(2, 4), s.cfg)
	s.cache.put(key, &Result{Verdict: VerdictSatisfied})
	st, err := s.Submit(ringSpec(2, 4))
	if err != nil {
		t.Fatalf("cache-hit submission rejected while queue full: %v", err)
	}
	if !st.Cached {
		t.Fatalf("expected cache hit, got %+v", st)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Queued jobs were canceled by the drain.
	if got := s.metrics.Canceled.Load(); got != 2 {
		t.Fatalf("canceled = %d, want 2", got)
	}
}

func mustKey(t *testing.T, spec JobSpec, cfg Config) string {
	t.Helper()
	c, err := compileSpec(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c.key
}

func TestShutdownDrainsInFlight(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	testHookJobRunning = func(id string) {
		started <- id
		<-release
	}
	defer func() { testHookJobRunning = nil }()

	s := New(Config{Executors: 1, QueueSize: 4})
	inflight, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	<-started // the executor holds the job in flight until release closes
	queued, err := s.Submit(ringSpec(4, 6))
	if err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()

	// Shutdown must cancel the queued job promptly even while the
	// in-flight one is still running.
	qst := waitTerminal(t, s, queued.ID)
	if qst.State != StateCanceled {
		t.Fatalf("queued job ended %s, want canceled", qst.State)
	}

	// New submissions are refused while draining.
	if _, err := s.Submit(ringSpec(2, 4)); errorCode(err) != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain: err %v, want 503", err)
	}

	close(release) // let the in-flight check proceed
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	ist := waitTerminal(t, s, inflight.ID)
	if ist.State != StateDone || ist.Result == nil || ist.Result.Verdict != VerdictSatisfied {
		t.Fatalf("in-flight job was not drained to completion: %+v", ist)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	testHookJobRunning = func(id string) {
		started <- id
		<-release
	}
	defer func() { testHookJobRunning = nil }()

	s := New(Config{Executors: 1, QueueSize: 4})
	running, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit(ringSpec(4, 6))
	if err != nil {
		t.Fatal(err)
	}

	// Cancel the queued job: immediate terminal state.
	qst, ok := s.Cancel(queued.ID)
	if !ok || qst.State != StateCanceled {
		t.Fatalf("cancel queued: ok=%v state=%s", ok, qst.State)
	}

	// Cancel the running job: its check context is canceled, so once
	// released it must end canceled, not done.
	if _, ok := s.Cancel(running.ID); !ok {
		t.Fatal("cancel running: job not found")
	}
	close(release)
	rst := waitTerminal(t, s, running.ID)
	if rst.State != StateCanceled {
		t.Fatalf("running job ended %s, want canceled", rst.State)
	}
	if _, ok := s.Cancel("j-99999999"); ok {
		t.Fatal("cancel of unknown job reported found")
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlineFailsJob(t *testing.T) {
	started := make(chan string, 1)
	testHookJobRunning = func(id string) {
		started <- id
		time.Sleep(20 * time.Millisecond) // outlive the 1ms deadline below
	}
	defer func() { testHookJobRunning = nil }()

	s := New(Config{Executors: 1})
	defer s.Shutdown(context.Background())
	// The deadline is applied by verify.Check as a context timeout, so a
	// 1ms budget expires while the hook sleeps and the check aborts.
	st, err := s.Submit(JobSpec{Protocol: "tokenring-ring",
		Params: registry.Params{N: 6, K: 8}, Options: JobOptions{DeadlineMS: 1}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	st = waitTerminal(t, s, st.ID)
	if st.State != StateFailed {
		t.Fatalf("deadline job ended %s (err %q), want failed", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Fatalf("deadline failure not surfaced: %q", st.Error)
	}
}

func TestFingerprints(t *testing.T) {
	cfg := Config{}.withDefaults()
	base := mustKey(t, ringSpec(3, 5), cfg)
	if k := mustKey(t, ringSpec(3, 5), cfg); k != base {
		t.Fatal("identical specs hash differently")
	}
	if k := mustKey(t, ringSpec(3, 6), cfg); k == base {
		t.Fatal("different params share a key")
	}
	// Workers and deadline are excluded from the key (worker-invariant
	// verdicts; deadline only bounds time).
	spec := ringSpec(3, 5)
	spec.Options = JobOptions{Workers: 1, DeadlineMS: 5000}
	if k := mustKey(t, spec, cfg); k != base {
		t.Fatal("workers/deadline changed the cache key")
	}
	// MaxStates is semantically relevant and stays in the key.
	spec = ringSpec(3, 5)
	spec.Options = JobOptions{MaxStates: 1 << 10}
	if k := mustKey(t, spec, cfg); k == base {
		t.Fatal("max_states did not change the cache key")
	}
	// The explicit default MaxStates equals the zero spelling.
	spec.Options = JobOptions{MaxStates: verify.DefaultMaxStates}
	if k := mustKey(t, spec, cfg); k != base {
		t.Fatal("explicit default max_states missed the zero-default key")
	}

	// GCL jobs key on the canonical pretty-printed source: whitespace and
	// comment changes do not split the cache.
	src := "program p;\nvar x : 0..2;\ninvariant I : x = 0;\naction fix convergence establishes I : x != 0 -> x := 0;\n"
	noisy := "// a comment\nprogram p;\n\n\nvar x : 0..2;\n  invariant I : x = 0;\naction fix convergence establishes I :\n    x != 0 -> x := 0;\n"
	k1 := mustKey(t, JobSpec{Source: src}, cfg)
	k2 := mustKey(t, JobSpec{Source: noisy}, cfg)
	if k1 != k2 {
		t.Fatal("formatting-only source change split the cache")
	}
	k3 := mustKey(t, JobSpec{Source: strings.Replace(src, "0..2", "0..3", 1)}, cfg)
	if k3 == k1 {
		t.Fatal("semantic source change shared a key")
	}
}

func TestCacheEviction(t *testing.T) {
	c := newCache(2, nil)
	mustGet := func(key string) *Result {
		r, _ := c.get(key)
		return r
	}
	_ = c.put("a", &Result{Program: "a"})
	_ = c.put("b", &Result{Program: "b"})
	_ = c.put("c", &Result{Program: "c"})
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if mustGet("a") != nil {
		t.Fatal("oldest entry survived eviction")
	}
	if mustGet("b") == nil || mustGet("c") == nil {
		t.Fatal("newer entries evicted")
	}
	// Overwriting an existing key must not grow the order log.
	_ = c.put("c", &Result{Program: "c2"})
	if c.len() != 2 || mustGet("b") == nil {
		t.Fatal("re-put evicted a live entry")
	}
}

func TestRecordEviction(t *testing.T) {
	s := New(Config{MaxRecords: 3, Executors: 1})
	defer s.Shutdown(context.Background())
	var last JobStatus
	for i := 0; i < 6; i++ {
		st, err := s.Submit(ringSpec(2, 4+i)) // distinct keys: no cache hits
		if err != nil {
			t.Fatal(err)
		}
		last = waitTerminal(t, s, st.ID)
	}
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n > 3 {
		t.Fatalf("retained %d job records, want <= 3", n)
	}
	if _, ok := s.Job(last.ID); !ok {
		t.Fatal("newest record evicted")
	}
	if _, ok := s.Job("j-00000001"); ok {
		t.Fatal("oldest finished record survived")
	}
}
